// Quickstart: build one circuit-switched router with its data converters,
// establish a circuit from the tile port out to the East port and back in
// from a second router, stream words under window-counter flow control and
// print a power report — the whole public surface in ~100 lines.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

func main() {
	p := core.DefaultParams()
	fmt.Printf("router: %d ports, %d lanes x %d bits, %d-bit tile interface\n",
		p.Ports, p.LanesPerPort, p.LaneWidth, p.TileWidth)
	fmt.Printf("config memory: %d bits (%d per output lane), command width: %d bits\n\n",
		p.ConfigBits(), p.ConfigBitsPerLane(), p.ConfigWordBits())

	// Two router assemblies A and B, linked East(A) <-> West(B).
	opt := core.DefaultAssemblyOptions() // WC=8, X=4 window flow control
	a, b := core.NewAssembly(p, opt), core.NewAssembly(p, opt)
	for l := 0; l < p.LanesPerPort; l++ {
		ea := p.Global(core.LaneID{Port: core.East, Lane: l})
		wb := p.Global(core.LaneID{Port: core.West, Lane: l})
		b.R.ConnectIn(wb, &a.R.Out[ea])
		a.R.ConnectAckIn(ea, &b.R.AckOut[wb])
	}

	// Attach a power meter to router A (0.13 µm library, 25 MHz clock).
	lib := stdcell.Default013()
	meter := power.NewMeter(core.Netlist(p, lib), lib, 25)
	a.BindMeter(meter, lib, false)

	// One circuit: A.Tile.0 -> A.East.0 -> B.West.0 -> B.Tile.0.
	must(a.EstablishLocal(core.Circuit{
		In:  core.LaneID{Port: core.Tile, Lane: 0},
		Out: core.LaneID{Port: core.East, Lane: 0},
	}))
	must(b.EstablishLocal(core.Circuit{
		In:  core.LaneID{Port: core.West, Lane: 0},
		Out: core.LaneID{Port: core.Tile, Lane: 0},
	}))

	// Stream 200 words and consume them at the far tile.
	world := sim.NewWorld()
	world.Add(a, b)
	const total = 200
	sent, got := 0, 0
	world.Add(&sim.Func{OnEval: func() {
		if sent < total && a.Tx[0].Ready() {
			if a.Tx[0].Push(core.DataWord(uint16(sent))) {
				sent++
			}
		}
		if w, ok := b.Rx[0].Pop(); ok {
			if w.Data != uint16(got) {
				panic("out of order delivery")
			}
			got++
		}
	}})
	for got < total {
		world.Step()
	}

	fmt.Printf("streamed %d words over the circuit in %d cycles "+
		"(line rate: 1 word / %d cycles = 80 Mbit/s at 25 MHz)\n",
		got, world.Cycle(), p.PacketNibbles())
	fmt.Printf("flow control: window=%d, ack batch=%d, stalls=%d, drops=%d\n\n",
		opt.Flow.WC, opt.Flow.X, a.Tx[0].Stalled(), b.Rx[0].Dropped())

	rep := meter.Report("quickstart")
	fmt.Printf("router A power at 25 MHz: static %.1f uW, internal %.1f uW, "+
		"switching %.1f uW, total %.1f uW (%.2f uW/MHz dynamic)\n",
		rep.StaticUW, rep.InternalUW, rep.SwitchingUW, rep.TotalUW(), rep.DynamicPerMHz())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
