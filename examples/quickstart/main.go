// Quickstart: the public noc API in ~60 lines. Build one Simulator over
// all three fabrics of the paper — the proposed lane-division
// circuit-switched router, the packet-switched virtual-channel baseline
// and the Æthereal-style TDM comparator — run the paper's heaviest test
// scenario (IV: three concurrent streams, Fig. 8) on each, and print the
// structured results side by side, finishing with the JSON form that
// `nocbench -json` and downstream tooling consume.
package main

import (
	"fmt"

	"repro/noc"
)

func main() {
	sim, err := noc.NewSimulator(
		noc.CircuitSwitched(),
		noc.PacketSwitched(),
		noc.AetherealTDM(),
	)
	if err != nil {
		panic(err)
	}

	sc, err := noc.PaperScenario("IV")
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario %s: %d streams, %.0f MHz, %d cycles, random data at 100%% load\n\n",
		sc.Name, len(sc.Streams), sc.FreqMHz, sc.Cycles)

	results, err := sim.Run(sc)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-10s %10s %10s %12s %12s %12s %10s\n",
		"fabric", "sent", "delivered", "Mbit/s", "power [uW]", "mean lat", "jitter")
	for _, r := range results {
		mean, jitter := 0.0, 0.0
		if r.Latency != nil {
			mean, jitter = r.Latency.MeanCycles, r.Latency.JitterCycles
		}
		fmt.Printf("%-10s %10d %10d %12.1f %12.1f %9.1f cy %7.1f cy\n",
			r.Fabric, r.WordsSent, r.WordsDelivered, r.ThroughputMbps,
			r.Power.TotalUW, mean, jitter)
	}

	fmt.Println("\nthe established circuit delivers with zero jitter (the paper's")
	fmt.Println("guaranteed-throughput class in its strongest form) at a fraction of the")
	fmt.Println("packet-switched router's power — the paper's headline ~3.5x advantage")

	// Every Result marshals to JSON for downstream tooling.
	b, err := results[0].JSON()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncircuit-switched result as JSON:\n%s\n", b)
}
