// Powerstudy example: the paper's evaluation methodology end to end —
// synthesize both routers (Table 4), run the four traffic scenarios at
// three bit-flip levels (Figures 9 and 10), then apply the future-work
// clock gating and quantify the saving. A compact version of what
// `nocbench` does, showing how to use the synth/traffic/power packages
// directly.
package main

import (
	"fmt"
	"os"

	"repro/internal/stdcell"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func main() {
	lib := stdcell.Default013()

	fmt.Println("== synthesis (Table 4) ==")
	if err := synth.Render(os.Stdout, synth.Table4(lib)); err != nil {
		panic(err)
	}

	cfg := traffic.RunConfig{Cycles: 4000, FreqMHz: 25, Lib: lib}
	fmt.Println("\n== scenario power at 25 MHz, random data (Figure 9) ==")
	fmt.Printf("%-10s %-9s %10s %12s %12s\n", "router", "scenario", "total", "dynamic", "uW/MHz")
	for _, sc := range traffic.Scenarios() {
		pat := traffic.Pattern{FlipProb: 0.5, Load: 1}
		rc, err := traffic.RunCircuit(sc, pat, cfg)
		if err != nil {
			panic(err)
		}
		rp, err := traffic.RunPacket(sc, pat, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %-9s %7.0f uW %9.0f uW %12.2f\n", "circuit", sc.Name,
			rc.Power.TotalUW(), rc.Power.DynamicUW(), rc.Power.DynamicPerMHz())
		fmt.Printf("%-10s %-9s %7.0f uW %9.0f uW %12.2f\n", "packet", sc.Name,
			rp.Power.TotalUW(), rp.Power.DynamicUW(), rp.Power.DynamicPerMHz())
	}

	fmt.Println("\n== bit-flip sensitivity, scenario IV (Figure 10) ==")
	sc := traffic.Scenarios()[3]
	for _, flips := range traffic.BitFlipCases() {
		rc, err := traffic.RunCircuit(sc, traffic.Pattern{FlipProb: flips, Load: 1}, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  circuit, %3.0f%% flips: %.2f uW/MHz\n",
			flips*100, rc.Power.DynamicPerMHz())
	}
	fmt.Println("  -> the number of streams matters more than the data (Section 7.3)")

	fmt.Println("\n== clock gating (the paper's future work) ==")
	gatedCfg := cfg
	gatedCfg.Gated = true
	for _, s := range []traffic.Scenario{traffic.Scenarios()[0], traffic.Scenarios()[3]} {
		pat := traffic.Pattern{FlipProb: 0.5, Load: 1}
		ungated, err := traffic.RunCircuit(s, pat, cfg)
		if err != nil {
			panic(err)
		}
		gated, err := traffic.RunCircuit(s, pat, gatedCfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  scenario %-3s dynamic %6.1f -> %6.1f uW (%.0f%% saved)\n",
			s.Name, ungated.Power.DynamicUW(), gated.Power.DynamicUW(),
			(1-gated.Power.DynamicUW()/ungated.Power.DynamicUW())*100)
	}
}
