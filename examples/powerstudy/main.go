// Powerstudy example: the paper's evaluation methodology end to end
// through the public noc API — synthesize the three routers (Table 4),
// run the four traffic scenarios on both routers (Figure 9), sweep the
// data bit-flip rate (Figure 10), then apply the future-work clock
// gating with the WithClockGating option and quantify the saving. A
// compact version of what `nocbench` does.
package main

import (
	"fmt"
	"os"

	"repro/noc"
)

func main() {
	fmt.Println("== synthesis (Table 4) ==")
	if err := noc.RenderSynthTable(os.Stdout, "nominal"); err != nil {
		panic(err)
	}

	cs := noc.CircuitSwitched(noc.WithLatencyWords(0))
	ps := noc.PacketSwitched(noc.WithLatencyWords(0))

	fmt.Println("\n== scenario power at 25 MHz, random data (Figure 9) ==")
	fmt.Printf("%-10s %-9s %10s %12s %12s\n", "router", "scenario", "total", "dynamic", "uW/MHz")
	for _, sc := range noc.PaperScenarios() {
		sc.Cycles = 4000
		for _, f := range []noc.Fabric{cs, ps} {
			r, err := f.Run(sc)
			if err != nil {
				panic(err)
			}
			dyn := r.Power.InternalUW + r.Power.SwitchingUW
			fmt.Printf("%-10s %-9s %7.0f uW %9.0f uW %12.2f\n",
				r.Fabric, sc.Name, r.Power.TotalUW, dyn, r.Power.DynamicUWPerMHz)
		}
	}

	fmt.Println("\n== bit-flip sensitivity, scenario IV (Figure 10) ==")
	scIV, err := noc.PaperScenario("IV")
	if err != nil {
		panic(err)
	}
	scIV.Cycles = 4000
	for _, flips := range []float64{0, 0.5, 1} {
		sc := scIV
		sc.Data = noc.Pattern{FlipProb: flips, Load: 1}
		r, err := cs.Run(sc)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  circuit, %3.0f%% flips: %.2f uW/MHz\n", flips*100, r.Power.DynamicUWPerMHz)
	}
	fmt.Println("  -> the number of streams matters more than the data (Section 7.3)")

	fmt.Println("\n== clock gating (the paper's future work) ==")
	gated := noc.CircuitSwitched(noc.WithClockGating(true), noc.WithLatencyWords(0))
	for _, name := range []string{"I", "IV"} {
		sc, err := noc.PaperScenario(name)
		if err != nil {
			panic(err)
		}
		sc.Cycles = 4000
		u, err := cs.Run(sc)
		if err != nil {
			panic(err)
		}
		g, err := gated.Run(sc)
		if err != nil {
			panic(err)
		}
		uDyn := u.Power.InternalUW + u.Power.SwitchingUW
		gDyn := g.Power.InternalUW + g.Power.SwitchingUW
		fmt.Printf("  scenario %-3s dynamic %6.1f -> %6.1f uW (%.0f%% saved)\n",
			sc.Name, uDyn, gDyn, (1-gDyn/uDyn)*100)
	}
}
