// HiperLAN/2 example: the paper's motivating OFDM workload (Section 3.1)
// through the public noc API. Prints Table 1 (the bandwidths derived from
// the standard's parameters), then maps the baseband pipeline onto a 4x3
// mesh at 200 MHz — at that clock one lane carries 640 Mbit/s, exactly
// the front-end requirement — and verifies every guaranteed-throughput
// channel sustains its rate.
package main

import (
	"fmt"
	"os"

	"repro/noc"
)

func main() {
	if err := noc.RunExperiment(os.Stdout, "table1"); err != nil {
		panic(err)
	}

	const freqMHz = 200
	res, err := noc.CircuitSwitched().Run(noc.Scenario{
		Name:       "hiperlan2",
		FreqMHz:    freqMHz,
		Cycles:     20000,
		MeshWidth:  4,
		MeshHeight: 3,
		Workloads:  []string{"hiperlan2"},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("mapped %d processes, %d GT channels at %d MHz:\n",
		len(res.Placements), len(res.Channels), freqMHz)
	for _, p := range res.Placements {
		fmt.Printf("  %-14s tile (%d,%d)\n", p.Process, p.X, p.Y)
	}

	fmt.Printf("\n%-12s %6s %14s %14s %6s\n", "channel", "lanes", "required", "achieved", "ok")
	for _, c := range res.Channels {
		fmt.Printf("%-12s %6d %9.2f Mb/s %9.2f Mb/s %6v\n",
			c.Name, c.Lanes, c.RequiredMbps, c.AchievedMbps, c.Met)
	}
	if !res.MetAllRequirements() {
		panic("guaranteed throughput violated")
	}

	// Aggregate rate is necessary but not sufficient: stream whole OFDM
	// symbols block-wise and check every 4 us symbol deadline.
	sym, err := noc.StreamOFDMSymbols(10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nstreamed %d OFDM symbols (%d words each) over the front-end channel\n",
		sym.Symbols, sym.WordsPerSymbol)
	fmt.Printf("framing errors: %d; symbol deadlines met (4 us + pipeline fill): %d/%d\n",
		sym.FramingErrors, sym.DeadlinesMet, sym.Symbols)
	if !sym.Met() {
		panic("guaranteed throughput violated")
	}

	fmt.Println("\nblock-based OFDM communication sustained with guaranteed throughput,")
	fmt.Println("as the paper requires: \"each 4 us a new OFDM symbol can be processed\" —")
	fmt.Println("one symbol is 80 complex samples = 160 words, and one lane at 200 MHz")
	fmt.Println("moves exactly 160 words per 4 us symbol period")
}
