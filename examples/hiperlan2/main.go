// HiperLAN/2 example: the paper's motivating OFDM workload (Section 3.1).
// Derives Table 1 from the standard's parameters, lets the CCN map the
// baseband pipeline onto a 4x3 mesh at 200 MHz, and verifies that one
// OFDM symbol (80 complex samples) flows through the mapped front-end
// channel every 4 µs — the guaranteed-throughput requirement.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sim"
)

func main() {
	h := apps.DefaultHiperLAN()
	fmt.Println("Table 1 (derived from OFDM parameters):")
	for _, row := range apps.Table1(h) {
		fmt.Printf("  %-26s edges %-10s %6.0f Mbit/s\n", row.Stream, row.Edges, row.Mbps)
	}

	// Map the pipeline. At 200 MHz one lane carries 640 Mbit/s of data —
	// exactly the front-end requirement.
	const freqMHz = 200
	graph := apps.HiperLANGraph(h, apps.HiperLANModulations()[3]) // QAM-64
	m := mesh.New(4, 3, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, freqMHz)
	mp, err := mgr.MapApplication(graph)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmapped %d processes, %d GT channels at %d MHz (lane rate %.0f Mbit/s):\n",
		len(mp.Placement), len(mp.Connections), freqMHz, mgr.LaneRateMbps())
	for _, procName := range []string{"S/P", "FreqOffset", "PrefixRemoval", "FFT",
		"PhaseOffset", "ChannelEq", "Demapping", "Sync"} {
		fmt.Printf("  %-14s tile %v\n", procName, mp.Placement[procName])
	}

	// Stream OFDM symbols over the S/P -> FreqOffset channel: 80 complex
	// samples per symbol; each 32-bit sample is two 16-bit words, so one
	// symbol is 160 words. At 200 MHz, 4 µs is 800 cycles; one lane moves
	// a word every 5 cycles, i.e. exactly 160 words per symbol period.
	conn := mp.Connections["1"]
	src, dst := m.At(conn.Src), m.At(conn.Dst)
	txLane := conn.Segments[0][0].Circuit.In.Lane
	rxLane := conn.Segments[0][len(conn.Segments[0])-1].Circuit.Out.Lane

	const (
		wordsPerSymbol  = 160 // 80 samples x 2 words
		symbols         = 10
		cyclesPerSymbol = 800 // 4 µs at 200 MHz
	)
	btx := core.NewBlockTx(src.Tx[txLane])
	brx := core.NewBlockRx(dst.Rx[rxLane])
	nextSymbol, gotSymbols := 0, 0
	symbolDeadlinesMet := 0
	m.World().Add(&sim.Func{OnEval: func() {
		if btx.Idle() && nextSymbol < symbols {
			symbol := make([]uint16, wordsPerSymbol)
			for i := range symbol {
				symbol[i] = uint16(nextSymbol*wordsPerSymbol + i)
			}
			if btx.Start(symbol) == nil {
				nextSymbol++
			}
		}
		btx.Pump()
		brx.Pump()
		if blk, ok := brx.Pop(); ok {
			gotSymbols++
			if len(blk) != wordsPerSymbol {
				panic("symbol truncated")
			}
			if m.World().Cycle() <= uint64(cyclesPerSymbol*gotSymbols+64) {
				symbolDeadlinesMet++
			}
		}
	}})
	m.Run(symbols*cyclesPerSymbol + 200)

	fmt.Printf("\nstreamed %d OFDM symbols (%d words) over the front-end channel\n",
		gotSymbols, gotSymbols*wordsPerSymbol)
	fmt.Printf("framing errors: %d; symbol deadlines met (4 us + pipeline fill): %d/%d\n",
		brx.FramingErrors(), symbolDeadlinesMet, symbols)
	if symbolDeadlinesMet != symbols || brx.FramingErrors() != 0 {
		panic("guaranteed throughput violated")
	}
	fmt.Println("\nblock-based OFDM communication sustained with guaranteed throughput,")
	fmt.Println("as the paper requires: \"each 4 us a new OFDM symbol can be processed\"")
}
