// Example sweep runs a parameter sweep across all CPU cores: the three
// fabrics crossed with a load × frequency grid on scenario III, streamed
// as cells in deterministic order. The same spec, written as JSON,
// drives `nocbench -sweep spec.json`.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/noc"
)

func main() {
	spec := noc.SweepSpec{
		Name: "load-frequency grid",
		Fabrics: []noc.FabricSpec{
			{Kind: noc.KindCircuit},
			{Kind: noc.KindCircuit, Gated: true},
			{Kind: noc.KindPacket},
			{Kind: noc.KindTDM},
		},
		Grid: &noc.Grid{
			Scenarios: []string{"III"},
			FreqsMHz:  []float64{25, 100},
			Loads:     []float64{0.25, 1},
			Cycles:    []int{2000},
		},
		Seed: 1,
	}

	fmt.Printf("%-10s %-28s %10s %12s %14s\n",
		"fabric", "scenario", "sent", "tput [Mb/s]", "power [uW]")
	err := noc.Sweep(context.Background(), spec, func(c noc.SweepCell) error {
		if c.Error != "" {
			fmt.Printf("%-10s %-28s  FAILED: %s\n", c.Fabric.Kind, c.Scenario.Name, c.Error)
			return nil
		}
		label := string(c.Fabric.Kind)
		if c.Fabric.Gated {
			label += "+gate"
		}
		fmt.Printf("%-10s %-28s %10d %12.1f %14.1f\n",
			label, c.Scenario.Name, c.Result.WordsSent,
			c.Result.ThroughputMbps, c.Result.Power.TotalUW)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same sweep as CSV, the format the CI benchmark job archives.
	fmt.Println("\nCSV:")
	if err := noc.SweepCSV(context.Background(), spec, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
