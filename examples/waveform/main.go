// Waveform example: debugging a circuit with the trace recorder. Probes
// the lane wires of a router while a circuit is configured and a word is
// serialized across it, prints an ASCII timing diagram of the 20-bit
// packet crossing the crossbar, and writes a VCD file any waveform viewer
// (e.g. GTKWave) can open.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	p := core.DefaultParams()
	a := core.NewAssembly(p, core.DefaultAssemblyOptions())

	rec := trace.NewRecorder(64)
	east0 := p.Global(core.LaneID{Port: core.East, Lane: 0})
	rec.Add(
		trace.U8("tx0.lane", p.LaneWidth, &a.Tx[0].Out),
		trace.U8("east0.lane", p.LaneWidth, &a.R.Out[east0]),
	)

	w := sim.NewWorld()
	w.Add(a)

	// Cycle 2: the CCN's configuration command arrives; one cycle later
	// the circuit Tile.0 -> East.0 is live.
	pushed := false
	w.Add(&sim.Func{OnEval: func() {
		switch w.Cycle() {
		case 2:
			if err := a.EstablishLocal(core.Circuit{
				In:  core.LaneID{Port: core.Tile, Lane: 0},
				Out: core.LaneID{Port: core.East, Lane: 0},
			}); err != nil {
				panic(err)
			}
		case 6:
			// One word with SOB|EOB (a single-word block).
			if !pushed {
				a.Tx[0].Push(core.Word{
					Hdr:  core.HdrValid | core.HdrSOB | core.HdrEOB,
					Data: 0xCAFE,
				})
				pushed = true
			}
		}
	}})
	w.Add(rec) // last: samples post-edge values
	w.Run(24)

	fmt.Println("ASCII waveform (hex lane values, '.' = unchanged):")
	fmt.Println()
	if err := rec.RenderASCII(os.Stdout, 0, 24); err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println("reading it: the word {V|SOB|EOB 0xCAFE} packs to the 20-bit packet")
	fmt.Println("0x7CAFE; the tx lane carries nibbles 7,C,A,F,E and the East output")
	fmt.Println("repeats them one clock edge later (registered crossbar outputs).")

	const vcdPath = "waveform.vcd"
	f, err := os.Create(vcdPath)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := rec.WriteVCD(f, "quicklook", "40ns"); err != nil { // 25 MHz
		panic(err)
	}
	fmt.Printf("\nwrote %s (open with any VCD viewer)\n", vcdPath)

	// The trace recorder doubles as an activity profiler — the same
	// signal changes the power meter charges energy for.
	for _, name := range rec.MostActive() {
		n, _ := rec.Changes(name)
		fmt.Printf("  %-12s %d transitions in %d cycles\n", name, n, rec.Cycles())
	}
}
