// Waveform example: debugging a circuit with the trace subsystem through
// the public noc API. CaptureWaveform probes the lane wires of a router
// while a circuit is configured and a word is serialized across it; the
// example prints the ASCII timing diagram of the 20-bit packet crossing
// the crossbar, writes a VCD file any waveform viewer (e.g. GTKWave) can
// open, and lists the probes by activity — the same signal changes the
// power meter charges energy for.
package main

import (
	"fmt"
	"os"

	"repro/noc"
)

func main() {
	wf, err := noc.CaptureWaveform()
	if err != nil {
		panic(err)
	}

	fmt.Println("ASCII waveform (hex lane values, '.' = unchanged):")
	fmt.Println()
	fmt.Print(wf.ASCII)
	fmt.Println()
	fmt.Println("reading it: the word {V|SOB|EOB 0xCAFE} packs to the 20-bit packet")
	fmt.Println("0x7CAFE; the tx lane carries nibbles 7,C,A,F,E and the East output")
	fmt.Println("repeats them one clock edge later (registered crossbar outputs).")

	const vcdPath = "waveform.vcd"
	if err := os.WriteFile(vcdPath, wf.VCD, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s (open with any VCD viewer)\n", vcdPath)

	for _, s := range wf.Signals {
		fmt.Printf("  %-12s %d transitions in %d cycles\n", s.Name, s.Transitions, wf.Cycles)
	}
}
