// Command meshgrid is the large-mesh placement stress example: a sweep
// over mesh sizes up to 16×16 that maps all three wireless applications
// concurrently via the CCN and reports placement, link utilization and
// the per-router power attribution. The idle majority of a 256-node mesh
// made runs like this expensive under per-cycle simulation; the event
// kernel's activity tracking and fast-forward make the grid axis
// affordable, which is exactly why the sweep spec grew it.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/noc"
)

func main() {
	spec := noc.SweepSpec{
		Name:    "meshgrid",
		Fabrics: []noc.FabricSpec{{Kind: noc.KindCircuit, Gated: true}},
		Grid: &noc.Grid{
			// All three applications of the paper's Section 3, mapped
			// concurrently — the CCN places processes and allocates
			// guaranteed-throughput lane paths on every mesh size.
			Workloads: []string{"hiperlan2,umts,drm"},
			MeshSizes: []int{4, 8, 16},
			// 200 MHz raises the lane rate so HiperLAN/2's 640 Mbit/s
			// channel fits the 4-lane links (as in the hiperlan2 example).
			FreqsMHz: []float64{200},
			Cycles:   []int{20000},
		},
		Kernel: string(noc.KernelEvent),
		Seed:   1,
	}

	cells, err := noc.SweepAll(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	for _, cell := range cells {
		if cell.Error != "" {
			fmt.Printf("%s: %s\n", cell.Scenario.Name, cell.Error)
			continue
		}
		r := cell.Result
		fmt.Printf("\n=== %s (%dx%d mesh) ===\n",
			cell.Scenario.Name, cell.Scenario.MeshWidth, cell.Scenario.MeshHeight)
		fmt.Printf("channels: %d  placements: %d  link utilization: %.1f%%\n",
			len(r.Channels), len(r.Placements), 100*r.LinkUtilization)
		met := 0
		for _, ch := range r.Channels {
			if ch.Met {
				met++
			}
		}
		fmt.Printf("requirements met: %d/%d  throughput: %.1f Mbit/s  total power: %.1f uW\n",
			met, len(r.Channels), r.ThroughputMbps, r.Power.TotalUW)

		// Per-router attribution: the handful of routers carrying circuits
		// dominate; the idle majority cost clock+leakage only — the
		// paper's clock-gating argument, visible per router.
		top := append([]noc.ComponentPower(nil), r.PerComponent...)
		sort.Slice(top, func(i, j int) bool { return top[i].TotalUW > top[j].TotalUW })
		fmt.Println("hottest routers:")
		for _, c := range top[:3] {
			fmt.Printf("  %-12s %8.2f uW (dynamic %.2f)\n",
				c.Component, c.TotalUW, c.DynamicUW)
		}
		var idleUW float64
		for _, c := range top[3:] {
			idleUW += c.TotalUW
		}
		if n := len(top) - 3; n > 0 {
			fmt.Printf("  remaining %d routers average %.2f uW\n",
				n, idleUW/float64(n))
		}
	}
}
