// Multimode example: the paper's "multi-mode transceiver system"
// (Section 1) — one SoC concurrently running two wireless standards
// (UMTS + DRM, e.g. a phone call while the digital radio plays). The CCN
// maps both applications onto one mesh, configuration travels over the
// best-effort network with measured latency, and both sets of streams run
// concurrently without interfering: their circuits are physically
// separated lanes.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/benet"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	const freqMHz = 100
	m := mesh.New(5, 4, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, freqMHz)

	umts := apps.UMTSGraph(apps.DefaultUMTS())
	drm := apps.DRMGraph()

	mpU, err := mgr.MapApplication(umts)
	if err != nil {
		panic(err)
	}
	mpD, err := mgr.MapApplication(drm)
	if err != nil {
		panic(err)
	}
	fmt.Printf("multi-mode terminal on a 5x4 mesh at %d MHz:\n", freqMHz)
	fmt.Printf("  %-24s %2d processes, %2d GT channels\n",
		umts.Name, len(mpU.Placement), len(mpU.Connections))
	fmt.Printf("  %-24s %2d processes, %2d GT channels\n",
		drm.Name, len(mpD.Placement), len(mpD.Connections))
	fmt.Printf("  link utilization: %.1f%%\n\n", mgr.LinkUtilization()*100)

	// Reconfigure one DRM connection over the BE network, demonstrating
	// in-band control while UMTS streams keep running.
	be := benet.New(5, 4, packetsw.DefaultParams())
	bc := &ccn.BEConfigurator{Net: be, Mesh: m, CCNNode: mesh.Coord{X: 0, Y: 0}}
	var anyDRM *ccn.Connection
	for _, c := range mpD.Connections {
		anyDRM = c
		break
	}
	res, err := bc.Configure(anyDRM) // idempotent re-send of its commands
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-sent %d configuration commands over the BE network in %d cycles "+
		"(%.4f ms at %d MHz; paper budget 1 ms/lane)\n\n",
		res.Commands, res.Cycles, res.TimeMS(freqMHz), freqMHz)

	// Drive one stream of each application concurrently and check both
	// meet their rates: physically separated lanes cannot collide.
	type streamRun struct {
		name     string
		conn     *ccn.Connection
		reqMbps  float64
		received uint64
	}
	runs := []*streamRun{
		{name: "UMTS chips-1", conn: mpU.Connections["chips-1"], reqMbps: 61.44},
		{name: "DRM front-end", conn: mpD.Connections["1"], reqMbps: 0.64},
	}
	for _, r := range runs {
		r := r
		src, dst := m.At(r.conn.Src), m.At(r.conn.Dst)
		txLane := r.conn.Segments[0][0].Circuit.In.Lane
		rxLane := r.conn.Segments[0][len(r.conn.Segments[0])-1].Circuit.Out.Lane
		wordsPerCycle := r.reqMbps / freqMHz / 16
		acc, n := 0.0, uint16(0)
		m.World().Add(&sim.Func{OnEval: func() {
			acc += wordsPerCycle
			if acc >= 1 && src.Tx[txLane].Ready() {
				if src.Tx[txLane].Push(core.DataWord(n)) {
					n++
					acc--
				}
			}
			if _, ok := dst.Rx[rxLane].Pop(); ok {
				r.received++
			}
		}})
	}
	const cycles = 40000
	m.Run(cycles)
	for _, r := range runs {
		fmt.Printf("%-14s required %6.2f Mbit/s, achieved %6.2f Mbit/s\n",
			r.name, r.reqMbps, stats.Rate(r.received, 16, cycles, freqMHz))
	}

	// Tear down DRM (radio off); UMTS circuits are untouched.
	if err := mgr.UnmapApplication(mpD); err != nil {
		panic(err)
	}
	fmt.Printf("\nDRM unmapped; link utilization now %.1f%%, UMTS connections intact: %d\n",
		mgr.LinkUtilization()*100, len(mpU.Connections))
	fmt.Println("resource sharing across standards with zero stream interaction —")
	fmt.Println("the reconfigurable multi-mode SoC of the paper's introduction")
}
