// Multimode example: the paper's "multi-mode transceiver system"
// (Section 1) — one SoC concurrently running two wireless standards
// (UMTS + DRM, e.g. a phone call while the digital radio plays). Through
// the public noc API this is one workload Scenario naming both
// applications: the CCN maps them onto one 5x4 mesh and both sets of
// streams run concurrently without interfering, because their circuits
// are physically separated lanes.
package main

import (
	"fmt"

	"repro/noc"
)

func main() {
	const freqMHz = 100
	res, err := noc.CircuitSwitched().Run(noc.Scenario{
		Name:       "multimode",
		FreqMHz:    freqMHz,
		Cycles:     40000,
		MeshWidth:  5,
		MeshHeight: 4,
		Workloads:  []string{"umts", "drm"},
	})
	if err != nil {
		panic(err)
	}

	perWorkload := map[string]int{}
	for _, c := range res.Channels {
		perWorkload[c.Workload]++
	}
	fmt.Printf("multi-mode terminal on a 5x4 mesh at %d MHz:\n", freqMHz)
	for _, wl := range []string{"umts", "drm"} {
		fmt.Printf("  %-8s %2d GT channels\n", wl, perWorkload[wl])
	}
	fmt.Printf("  link utilization: %.1f%%, NoC power %.1f uW\n\n",
		res.LinkUtilization*100, res.Power.TotalUW)

	fmt.Printf("%-10s %-12s %6s %14s %14s %6s\n",
		"workload", "channel", "lanes", "required", "achieved", "ok")
	for _, c := range res.Channels {
		fmt.Printf("%-10s %-12s %6d %9.2f Mb/s %9.2f Mb/s %6v\n",
			c.Workload, c.Name, c.Lanes, c.RequiredMbps, c.AchievedMbps, c.Met)
	}
	if !res.MetAllRequirements() {
		panic("guaranteed throughput violated")
	}

	fmt.Println("\nboth standards hold their guaranteed rates concurrently: resource")
	fmt.Println("sharing across standards with zero stream interaction — the")
	fmt.Println("reconfigurable multi-mode SoC of the paper's introduction")

	// Tear down DRM (radio off) on a persistent Network; the UMTS
	// mapping keeps its circuits untouched.
	net, err := noc.NewNetwork(5, 4, freqMHz)
	if err != nil {
		panic(err)
	}
	umts, err := net.Map("umts")
	if err != nil {
		panic(err)
	}
	drm, err := net.Map("drm")
	if err != nil {
		panic(err)
	}
	both := net.LinkUtilization()
	if err := net.Unmap(drm.ID); err != nil {
		panic(err)
	}
	fmt.Printf("\nDRM unmapped: link utilization %.1f%% -> %.1f%%, UMTS intact with %d channels\n",
		both*100, net.LinkUtilization()*100, umts.Channels)
}
