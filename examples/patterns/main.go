// Command patterns is the synthetic-traffic study: a 16×16 mesh under a
// hotspot pattern versus uniform-random traffic, on all three fabrics,
// comparing delivery, latency and power. It shows the three designs'
// characteristic answers to overload: the circuit-switched fabric
// admits flows at setup time (a hotspot shows up as rejected circuits,
// with the admitted ones keeping their zero-jitter latency), the TDM
// fabric admits slot reservations (the same answer in time instead of
// space), and the packet-switched fabric admits everything and queues
// (latency grows instead). The sources are event-scheduled, so at the
// sparse 0.05 flits/cycle/node operating point the event kernel
// fast-forwards the idle windows between words — which is what makes a
// 256-node study like this cheap to run.
package main

import (
	"fmt"
	"log"

	"repro/noc"
)

func study(name, spatial string, inj noc.Injection) {
	sc := noc.Scenario{
		Name:      name,
		Pattern:   spatial,
		MeshWidth: 16, MeshHeight: 16,
		Cycles:    4000,
		Injection: &inj,
		Seed:      7,
	}
	sim, err := noc.NewSimulator()
	if err != nil {
		log.Fatal(err)
	}
	results, err := sim.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== %s (%s, %s:%g flits/cycle/node, 16x16) ===\n",
		name, spatial, inj.Process, inj.Rate)
	fmt.Printf("%-10s %9s %9s %9s %12s %12s %12s\n",
		"fabric", "flows", "sent", "delivered", "mean lat", "jitter", "power uW")
	for _, r := range results {
		lat, jit := "-", "-"
		if r.Latency != nil {
			lat = fmt.Sprintf("%.1f cyc", r.Latency.MeanCycles)
			jit = fmt.Sprintf("%.1f cyc", r.Latency.JitterCycles)
		}
		fmt.Printf("%-10s %4d/%4d %9d %9d %12s %12s %12.1f\n",
			r.Fabric, r.FlowsEstablished, r.FlowsRequested,
			r.WordsSent, r.WordsDelivered, lat, jit, r.Power.TotalUW)
	}
}

func main() {
	// The sparse operating point: Poisson word arrivals at 0.05
	// flits/cycle/node — underloaded everywhere except where the
	// pattern concentrates traffic.
	inj := noc.Injection{Process: "poisson", Rate: 0.05}

	// Uniform-random: traffic spreads evenly; the circuit mesh routes
	// most flows, every fabric keeps up.
	study("uniform", "uniform", inj)

	// Hotspot: 70% of every node's traffic converges on the mesh
	// centre. The circuit and TDM fabrics reject what the centre
	// cannot carry (admission control); the packet fabric takes it all
	// and pays in queueing latency at the centre router.
	study("hotspot", "hotspot:0.7", inj)

	// The same hotspot under bursty on-off arrivals (mean burst 8
	// words): the jitter columns show how each fabric passes bursts
	// through — reserved bandwidth is burst-immune, shared bandwidth
	// is not.
	study("bursty hotspot", "hotspot:0.7",
		noc.Injection{Process: "onoff", Rate: 0.05, Burstiness: 8})
}
