// UMTS example: the paper's streaming workload (Section 3.2) through the
// public noc API. Prints Table 2 (the W-CDMA rake receiver's bandwidth
// requirements), maps the receiver onto a 4x3 mesh at 100 MHz and checks
// every chip/coefficient stream holds its rate — the sample-streaming
// traffic style, one small packet at a regular short interval. The
// structured Result is also emitted as JSON, the form a monitoring
// pipeline would ingest.
package main

import (
	"fmt"
	"os"

	"repro/noc"
)

func main() {
	if err := noc.RunExperiment(os.Stdout, "table2"); err != nil {
		panic(err)
	}

	const freqMHz = 100
	res, err := noc.CircuitSwitched().Run(noc.Scenario{
		Name:       "umts",
		FreqMHz:    freqMHz,
		Cycles:     20000,
		MeshWidth:  4,
		MeshHeight: 3,
		Workloads:  []string{"umts"},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("mapped rake receiver: %d processes, %d channels, link utilization %.1f%%\n\n",
		len(res.Placements), len(res.Channels), res.LinkUtilization*100)

	fmt.Printf("%-12s %6s %14s %14s %6s\n", "channel", "lanes", "required", "achieved", "ok")
	for _, c := range res.Channels {
		fmt.Printf("%-12s %6d %9.2f Mb/s %9.2f Mb/s %6v\n",
			c.Name, c.Lanes, c.RequiredMbps, c.AchievedMbps, c.Met)
	}
	if !res.MetAllRequirements() {
		panic("guaranteed throughput violated")
	}
	fmt.Println("\nat 100 MHz a lane delivers 320 Mbit/s, so each 61.44 Mbit/s chip stream")
	fmt.Println("occupies ~19% of its lane — periodic streaming, never a big block; the")
	fmt.Println("semi-static stream lifetime of Section 3.3 is what makes circuit")
	fmt.Println("switching pay off")

	// Run-time adaptation (Section 1: reconfigure "due to changes in the
	// reception quality"): drop to 2 fingers and remap on a persistent
	// Network — released lanes are immediately reusable.
	net, err := noc.NewNetwork(4, 3, freqMHz)
	if err != nil {
		panic(err)
	}
	mp4, err := net.Map("umts")
	if err != nil {
		panic(err)
	}
	util4 := net.LinkUtilization()
	if err := net.Unmap(mp4.ID); err != nil {
		panic(err)
	}
	mp2, err := net.Map("umts:2")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nre-mapped with 2 fingers: %d channels, link utilization %.1f%% "+
		"(was %.1f%% with 4 fingers)\n",
		mp2.Channels, net.LinkUtilization()*100, util4*100)

	b, err := res.JSON()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nstructured result (JSON):\n%s\n", b)
}
