// UMTS example: the paper's streaming workload (Section 3.2). A W-CDMA
// rake receiver with 4 fingers at spreading factor 4 is mapped onto the
// mesh; the chip streams are sample-streaming (one small packet at a
// regular short interval), the second traffic style the NoC must carry.
// The example also exercises run-time reconfiguration: after streaming,
// the receiver is re-mapped with 2 fingers (better channel conditions),
// showing connection release and re-allocation.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	u := apps.DefaultUMTS()
	fmt.Println("Table 2 (derived from W-CDMA parameters):")
	for _, row := range apps.Table2(u) {
		fmt.Printf("  %-30s edge %d  %7.2f Mbit/s\n", row.Stream, row.Edge, row.Mbps)
	}
	fmt.Printf("total for %d fingers at SF=%d: %.1f Mbit/s (paper: ~320)\n\n",
		u.Fingers, u.SF, u.TotalMbps())

	const freqMHz = 100
	m := mesh.New(4, 3, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, freqMHz)
	mp, err := mgr.MapApplication(apps.UMTSGraph(u))
	if err != nil {
		panic(err)
	}
	fmt.Printf("mapped rake receiver: %d processes, %d channels, link utilization %.1f%%\n",
		len(mp.Placement), len(mp.Connections), mgr.LinkUtilization()*100)

	// Stream chips to finger 1 at the required 61.44 Mbit/s: at 100 MHz a
	// lane delivers 320 Mbit/s, so the stream occupies ~19% of its lane —
	// one small packet at a regular short interval, never a big block.
	conn := mp.Connections["chips-1"]
	src, dst := m.At(conn.Src), m.At(conn.Dst)
	txLane := conn.Segments[0][0].Circuit.In.Lane
	rxLane := conn.Segments[0][len(conn.Segments[0])-1].Circuit.Out.Lane
	wordsPerCycle := u.ChipsPerFingerMbps() / freqMHz / 16
	acc, sent := 0.0, uint64(0)
	var gaps stats.Series
	lastArrival := uint64(0)
	received := uint64(0)
	m.World().Add(&sim.Func{OnEval: func() {
		acc += wordsPerCycle
		if acc >= 1 && src.Tx[txLane].Ready() {
			if src.Tx[txLane].Push(core.DataWord(uint16(sent))) {
				sent++
				acc--
			}
		}
		if _, ok := dst.Rx[rxLane].Pop(); ok {
			if received > 0 {
				gaps.Add(float64(m.World().Cycle() - lastArrival))
			}
			lastArrival = m.World().Cycle()
			received++
		}
	}})
	const cycles = 20000
	m.Run(cycles)
	fmt.Printf("\nchips-1 stream: %d words sent, %d received, achieved %.2f Mbit/s "+
		"(required %.2f)\n", sent, received,
		stats.Rate(received, 16, cycles, freqMHz), u.ChipsPerFingerMbps())
	fmt.Printf("inter-arrival: mean %.1f cycles, max %.0f — periodic streaming, no bursts\n",
		gaps.Mean(), gaps.Max())

	// Run-time adaptation (Section 1: reconfigure "due to changes in the
	// reception quality"): drop to 2 fingers and remap.
	if err := mgr.UnmapApplication(mp); err != nil {
		panic(err)
	}
	u2 := u
	u2.Fingers = 2
	mp2, err := mgr.MapApplication(apps.UMTSGraph(u2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nre-mapped with %d fingers: %d channels, link utilization %.1f%% "+
		"(was %.1f%% with %d fingers)\n",
		u2.Fingers, len(mp2.Connections), mgr.LinkUtilization()*100,
		16.9, u.Fingers)
	fmt.Println("released lanes are immediately reusable — the semi-static stream")
	fmt.Println("lifetime of Section 3.3 is what makes circuit switching pay off")
}
