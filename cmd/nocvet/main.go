// Command nocvet is the repo's custom vet tool: a go/analysis checker
// bundling the five determinism/kernel-contract analyzers (nondeterm,
// maporder, kernelcontract, evalpure, obspure). It speaks the go vet -vettool
// protocol via the x/tools unitchecker driver, so it is invoked through
// the go command, which supplies package facts and type information:
//
//	go build -o /tmp/nocvet ./cmd/nocvet
//	go vet -vettool=/tmp/nocvet ./...
//
// (or `make vet`). A finding is suppressed by a //nocvet:allow <analyzer>
// comment on the flagged line or the line above; see DESIGN.md "Static
// determinism contracts".
//
// The unitchecker driver cannot load packages standalone (that needs
// go/packages, outside the toolchain-vendored x/tools subset this repo
// builds against), so running nocvet without go vet prints usage and
// exits non-zero — same as the stock vet tool binaries.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/evalpure"
	"repro/internal/analysis/kernelcontract"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nondeterm"
	"repro/internal/analysis/obspure"
)

func main() {
	unitchecker.Main(
		nondeterm.Analyzer,
		maporder.Analyzer,
		kernelcontract.Analyzer,
		evalpure.Analyzer,
		obspure.Analyzer,
	)
}
