// Command nocsynth prints the synthesis model's results: Table 4, the
// per-block area report of each router, and the lane design sweep.
//
// Usage:
//
//	nocsynth                    print Table 4
//	nocsynth -design circuit    per-block report of one router
//	nocsynth -sweep             lane count/width sweep
//	nocsynth -corner hvt        use the low-leakage library corner
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/noc"
)

func main() {
	design := flag.String("design", "", "report one design: circuit, packet, aethereal")
	sweep := flag.Bool("sweep", false, "print the lane count/width sweep")
	corner := flag.String("corner", "nominal", "library corner: nominal (LVT) or hvt (low leakage)")
	flag.Parse()

	name, err := noc.LibraryName(*corner)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("library: %s\n\n", name)
	switch {
	case *design != "":
		err = noc.RenderSynthDesign(os.Stdout, *design, *corner)
	case *sweep:
		err = noc.RenderLaneSweep(os.Stdout, *corner)
	default:
		err = noc.RenderSynthTable(os.Stdout, *corner)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsynth:", err)
	os.Exit(1)
}
