// Command nocsynth prints the synthesis model's results: Table 4, the
// per-block area report of each router, and the lane design sweep.
//
// Usage:
//
//	nocsynth                    print Table 4
//	nocsynth -design circuit    per-block report of one router
//	nocsynth -sweep             lane count/width sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

func main() {
	design := flag.String("design", "", "report one design: circuit, packet, aethereal")
	sweep := flag.Bool("sweep", false, "print the lane count/width sweep")
	corner := flag.String("corner", "nominal", "library corner: nominal (LVT) or hvt (low leakage)")
	flag.Parse()

	var lib stdcell.Lib
	switch *corner {
	case "nominal":
		lib = experiments.Lib()
	case "hvt":
		lib = stdcell.HighVT013()
	default:
		fmt.Fprintf(os.Stderr, "nocsynth: unknown corner %q\n", *corner)
		os.Exit(1)
	}
	fmt.Printf("library: %s\n\n", lib.Name)
	switch {
	case *design != "":
		d, err := synth.Design(*design, lib)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocsynth:", err)
			os.Exit(1)
		}
		fmt.Print(d.Report(lib))
		fmt.Printf("  leakage: %.1f uW, clock energy: %.1f pJ/cycle\n",
			d.LeakageUW(lib), d.ClockEnergyPerCycle(lib)/1e3)
	case *sweep:
		pts := synth.LaneSweep(lib, []int{2, 4, 6, 8}, []int{2, 4, 8})
		fmt.Printf("%-6s %-6s %12s %10s %14s\n", "lanes", "width", "area [mm2]", "fmax", "link bw")
		for _, p := range pts {
			fmt.Printf("%-6d %-6d %12.4f %6.0f MHz %9.1f Gb/s\n",
				p.Lanes, p.Width, p.AreaMM2, p.MaxFreqMHz, p.LinkGbps)
		}
	default:
		if err := synth.Render(os.Stdout, synth.Table4(lib)); err != nil {
			fmt.Fprintln(os.Stderr, "nocsynth:", err)
			os.Exit(1)
		}
	}
}
