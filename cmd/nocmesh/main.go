// Command nocmesh drives a mesh-level simulation: it builds a W×H
// circuit-switched NoC, lets the CCN map one of the paper's wireless
// applications onto it, streams traffic over every configured channel and
// reports the achieved bandwidth against the requirement.
//
// Usage:
//
//	nocmesh -app umts -w 4 -h 3 -freq 100
//	nocmesh -app hiperlan -freq 200
//	nocmesh -app drm -freq 25
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	app := flag.String("app", "umts", "application: hiperlan, umts, drm")
	w := flag.Int("w", 4, "mesh width")
	h := flag.Int("h", 3, "mesh height")
	freq := flag.Float64("freq", 100, "network clock in MHz")
	cycles := flag.Int("cycles", 20000, "simulation length in cycles")
	vcd := flag.String("vcd", "", "dump a waveform of node (0,0)'s lanes to this VCD file")
	flag.Parse()

	var graph *kpn.Graph
	switch *app {
	case "hiperlan":
		graph = apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3])
	case "umts":
		graph = apps.UMTSGraph(apps.DefaultUMTS())
	case "drm":
		graph = apps.DRMGraph()
	default:
		fmt.Fprintf(os.Stderr, "nocmesh: unknown app %q\n", *app)
		os.Exit(1)
	}

	m := mesh.New(*w, *h, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, *freq)
	mp, err := mgr.MapApplication(graph)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocmesh: mapping failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s mapped onto %dx%d mesh at %.0f MHz (lane rate %.0f Mbit/s)\n",
		graph.Name, *w, *h, *freq, mgr.LaneRateMbps())
	for name, c := range mp.Placement {
		fmt.Printf("  %-14s -> tile %v\n", name, c)
	}
	fmt.Printf("link utilization: %.1f%%, total hops: %d\n\n",
		mgr.LinkUtilization()*100, mp.TotalHops())

	// Drive every GT channel at its required rate and measure delivery.
	type chanState struct {
		ch       kpn.Channel
		conn     *ccn.Connection
		received *uint64
		offered  *uint64
	}
	var states []chanState
	world := m.World()
	for _, ch := range graph.GTChannels() {
		conn := mp.Connections[ch.Name]
		src := m.At(conn.Src)
		dst := m.At(conn.Dst)
		received := new(uint64)
		offered := new(uint64)
		// Words per cycle required across the ganged lanes.
		wordsPerCycle := ch.BandwidthMbps / (*freq) / 16
		acc := 0.0
		n := uint16(0)
		txLanes := make([]int, 0, conn.Lanes)
		rxLanes := make([]int, 0, conn.Lanes)
		for _, lane := range conn.Segments {
			txLanes = append(txLanes, lane[0].Circuit.In.Lane)
			rxLanes = append(rxLanes, lane[len(lane)-1].Circuit.Out.Lane)
		}
		gtx, grx, err := core.GangFor(src, dst, txLanes, rxLanes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocmesh:", err)
			os.Exit(1)
		}
		world.Add(&sim.Func{OnEval: func() {
			acc += wordsPerCycle
			for acc >= 1 && gtx.Ready() {
				if !gtx.Push(core.DataWord(n)) {
					break
				}
				n++
				acc--
				*offered++
			}
			for {
				if _, ok := grx.Pop(); !ok {
					break
				}
				*received++
			}
		}})
		states = append(states, chanState{ch: ch, conn: conn, received: received, offered: offered})
	}

	var rec *trace.Recorder
	if *vcd != "" {
		rec = trace.NewRecorder(4096)
		node := m.At(mesh.Coord{X: 0, Y: 0})
		for g := 0; g < m.P.TotalLanes(); g++ {
			lane := m.P.LaneOf(g)
			rec.Add(trace.U8(fmt.Sprintf("out.%v.%d", lane.Port, lane.Lane),
				m.P.LaneWidth, &node.R.Out[g]))
		}
		m.World().Add(rec)
	}

	m.Run(*cycles)

	if rec != nil {
		f, err := os.Create(*vcd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocmesh:", err)
			os.Exit(1)
		}
		nsPerCycle := int(1e3 / *freq)
		if nsPerCycle < 1 {
			nsPerCycle = 1
		}
		if err := rec.WriteVCD(f, "node00", fmt.Sprintf("%dns", nsPerCycle)); err != nil {
			fmt.Fprintln(os.Stderr, "nocmesh:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d-cycle waveform of node (0,0) to %s\n\n", rec.Cycles(), *vcd)
	}

	// A channel keeps up when everything offered arrives, minus the words
	// still in flight in converters, windows and link registers.
	const inFlightAllowance = 32
	fmt.Printf("%-12s %10s %14s %14s %6s\n", "channel", "lanes", "required", "achieved", "ok")
	allOK := true
	for _, st := range states {
		got := stats.Rate(*st.received, 16, uint64(*cycles), *freq)
		ok := *st.received+inFlightAllowance >= *st.offered
		if !ok {
			allOK = false
		}
		fmt.Printf("%-12s %10d %9.2f Mb/s %9.2f Mb/s %6v\n",
			st.ch.Name, st.conn.Lanes, st.ch.BandwidthMbps, got, ok)
	}
	if allOK {
		fmt.Println("\nall guaranteed-throughput requirements met (paper Section 7.3)")
	} else {
		fmt.Println("\nWARNING: some channels below requirement")
		os.Exit(1)
	}
}
