// Command nocmesh drives a mesh-level simulation through the public noc
// API: it builds a W×H circuit-switched NoC, lets the CCN map one or
// more of the paper's wireless applications onto it, streams traffic
// over every configured channel and reports the achieved bandwidth
// against the requirement.
//
// Usage:
//
//	nocmesh -app umts -w 4 -h 3 -freq 100
//	nocmesh -app hiperlan2 -freq 200
//	nocmesh -app umts,drm -w 5 -h 4 -freq 100
//	nocmesh -app umts -json
//	nocmesh -app umts -vcd node00.vcd
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/noc"
)

func main() {
	app := flag.String("app", "umts", "comma-separated applications: hiperlan2, umts, drm")
	w := flag.Int("w", 4, "mesh width")
	h := flag.Int("h", 3, "mesh height")
	freq := flag.Float64("freq", 100, "network clock in MHz")
	cycles := flag.Int("cycles", 20000, "simulation length in cycles")
	vcd := flag.String("vcd", "", "dump a waveform of node (0,0)'s lanes to this VCD file")
	jsonOut := flag.Bool("json", false, "emit the structured result as JSON")
	flag.Parse()

	var opts []noc.Option
	if *vcd != "" {
		opts = append(opts, noc.WithNodeTrace(4096))
	}
	fabric := noc.CircuitSwitched(opts...)

	var workloads []string
	for _, wl := range strings.Split(*app, ",") {
		workloads = append(workloads, strings.TrimSpace(wl))
	}
	sc := noc.Scenario{
		Name:       *app,
		FreqMHz:    *freq,
		Cycles:     *cycles,
		MeshWidth:  *w,
		MeshHeight: *h,
		Workloads:  workloads,
	}
	res, err := fabric.Run(sc)
	if err != nil {
		fatal(err)
	}

	if *vcd != "" {
		if err := os.WriteFile(*vcd, res.NodeVCD, 0o644); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		b, err := res.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		if !res.MetAllRequirements() {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%s mapped onto %dx%d mesh at %.0f MHz\n", *app, *w, *h, *freq)
	for _, p := range res.Placements {
		fmt.Printf("  %-10s %-14s -> tile (%d,%d)\n", p.Workload, p.Process, p.X, p.Y)
	}
	fmt.Printf("link utilization: %.1f%%\n\n", res.LinkUtilization*100)

	if *vcd != "" {
		fmt.Printf("wrote waveform of node (0,0) to %s\n\n", *vcd)
	}

	fmt.Printf("%-10s %-12s %6s %6s %14s %14s %6s\n",
		"workload", "channel", "lanes", "hops", "required", "achieved", "ok")
	for _, c := range res.Channels {
		fmt.Printf("%-10s %-12s %6d %6d %9.2f Mb/s %9.2f Mb/s %6v\n",
			c.Workload, c.Name, c.Lanes, c.Hops, c.RequiredMbps, c.AchievedMbps, c.Met)
	}
	fmt.Printf("\naggregate: %d words delivered, %.1f Mbit/s, NoC power %.1f uW\n",
		res.WordsDelivered, res.ThroughputMbps, res.Power.TotalUW)
	if res.MetAllRequirements() {
		fmt.Println("all guaranteed-throughput requirements met (paper Section 7.3)")
	} else {
		fmt.Println("WARNING: some channels below requirement")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocmesh:", err)
	os.Exit(1)
}
