package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops content into a temp file and returns its path.
func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const benchText = `goos: linux
goarch: amd64
pkg: repro
BenchmarkMeshSparseGatedKernel-8 	   20000	      1000 ns/op
BenchmarkSweepReplicated-8 	      50	    400000 ns/op
PASS
ok  	repro	1.0s
`

// slowerText is the same run with the kernel benchmark 20% slower —
// past the 15% gate.
const slowerText = `goos: linux
goarch: amd64
pkg: repro
BenchmarkMeshSparseGatedKernel-8 	   20000	      1200 ns/op
BenchmarkSweepReplicated-8 	      50	    410000 ns/op
PASS
ok  	repro	1.0s
`

// parseTo runs benchdiff -parse and returns the canonical file's path.
func parseTo(t *testing.T, text, name string) string {
	t.Helper()
	in := write(t, name+".txt", text)
	out := filepath.Join(t.TempDir(), name+".json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-parse", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseWritesCanonicalJSON(t *testing.T) {
	out := parseTo(t, benchText, "base")
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": 1`, `"BenchmarkMeshSparseGatedKernel"`, `"ns_per_op": 1000`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("canonical output missing %q:\n%s", want, b)
		}
	}
}

// TestGateFailsOnRegression is the end-to-end fixture the acceptance
// criteria name: a >15% ns/op regression must exit non-zero.
func TestGateFailsOnRegression(t *testing.T) {
	base := parseTo(t, benchText, "base")
	cur := parseTo(t, slowerText, "cur")
	var buf bytes.Buffer
	err := run(&buf, []string{"-base", base, "-cur", cur})
	if !errors.Is(err, errGate) {
		t.Fatalf("gate error = %v, want errGate", err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("delta table missing REGRESSED marker:\n%s", buf.String())
	}
}

func TestGatePassesOnIdenticalRun(t *testing.T) {
	base := parseTo(t, benchText, "base")
	cur := parseTo(t, benchText, "cur")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-base", base, "-cur", cur}); err != nil {
		t.Fatalf("identical runs failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate passed") {
		t.Fatalf("no pass line:\n%s", buf.String())
	}
}

func TestGateMatchFilterAndMissing(t *testing.T) {
	base := parseTo(t, benchText, "base")
	// Current run lost the sweep benchmark entirely.
	curText := `pkg: repro
BenchmarkMeshSparseGatedKernel-8 	   20000	      1000 ns/op
`
	cur := parseTo(t, curText, "cur")
	var buf bytes.Buffer
	err := run(&buf, []string{"-base", base, "-cur", cur})
	if !errors.Is(err, errGate) || !strings.Contains(buf.String(), "MISSING") {
		t.Fatalf("missing benchmark not gated: %v\n%s", err, buf.String())
	}
	// Filtered to the kernel benchmark only, the gate passes.
	buf.Reset()
	if err := run(&buf, []string{"-base", base, "-cur", cur, "-match", "MeshSparse"}); err != nil {
		t.Fatalf("filtered gate failed: %v\n%s", err, buf.String())
	}
	// A filter matching nothing is an error, not a silent pass.
	if err := run(&buf, []string{"-base", base, "-cur", cur, "-match", "NoSuchBenchmark"}); err == nil {
		t.Fatal("empty gate passed silently")
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil {
		t.Fatal("no-mode invocation accepted")
	}
	if err := run(&buf, []string{"-parse", "x", "-base", "y", "-cur", "z"}); err == nil {
		t.Fatal("conflicting modes accepted")
	}
	if err := run(&buf, []string{"-base", "only"}); err == nil {
		t.Fatal("-base without -cur accepted")
	}
}

// pairText is one bench run holding a twin pair: the nil-tracer twin
// 1% slower than its reference (within a 2% gate) plus an unrelated
// benchmark.
const pairText = `goos: linux
goarch: amd64
pkg: repro
BenchmarkMeshSparseGatedKernel-8 	   20000	      1000 ns/op
BenchmarkMeshSparseTracerNilKernel-8 	   20000	      1010 ns/op
BenchmarkSweepReplicated-8 	      50	    400000 ns/op
PASS
ok  	repro	1.0s
`

// TestPairGatePasses: a within-file pair inside the threshold passes.
func TestPairGatePasses(t *testing.T) {
	cur := parseTo(t, pairText, "cur")
	var buf bytes.Buffer
	err := run(&buf, []string{"-cur", cur, "-threshold", "0.02",
		"-pair", "BenchmarkMeshSparseTracerNilKernel=BenchmarkMeshSparseGatedKernel"})
	if err != nil {
		t.Fatalf("pair gate failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "gate passed: 1 pairs") {
		t.Fatalf("missing pass summary:\n%s", buf.String())
	}
}

// TestPairGateFails: past the threshold the pair gate exits non-zero,
// and a missing benchmark also fails rather than silently passing.
func TestPairGateFails(t *testing.T) {
	cur := parseTo(t, pairText, "cur")
	var buf bytes.Buffer
	err := run(&buf, []string{"-cur", cur, "-threshold", "0.005",
		"-pair", "BenchmarkMeshSparseTracerNilKernel=BenchmarkMeshSparseGatedKernel"})
	if !errors.Is(err, errGate) {
		t.Fatalf("gate error = %v, want errGate", err)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("delta table missing REGRESSED marker:\n%s", buf.String())
	}

	buf.Reset()
	err = run(&buf, []string{"-cur", cur, "-threshold", "0.02",
		"-pair", "BenchmarkNoSuch=BenchmarkMeshSparseGatedKernel"})
	if !errors.Is(err, errGate) {
		t.Fatalf("missing-benchmark error = %v, want errGate", err)
	}
	if !strings.Contains(buf.String(), "MISSING") {
		t.Fatalf("delta table missing MISSING marker:\n%s", buf.String())
	}
}

// TestPairFlagValidation: -pair composes only with -cur.
func TestPairFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-pair", "A=B"}); err == nil {
		t.Fatal("-pair without -cur must fail")
	}
	if err := run(&buf, []string{"-pair", "AB", "-cur", "x.json"}); err == nil {
		t.Fatal("malformed pair must fail")
	}
	if err := run(&buf, []string{"-base", "x", "-cur", "y", "-pair", "A=B"}); err == nil {
		t.Fatal("-pair with -base must fail")
	}
}
