// Command benchdiff turns `go test -bench` output into the repo's
// canonical benchmark JSON and gates the current figures against a
// tracked baseline. It is the benchmark-regression gate CI runs on
// every PR: the tracked BENCH_<n>.json files record the simulator's
// perf trajectory in-repo, and a kernel/sweep/pattern benchmark that
// slows down past the threshold fails the build.
//
// Usage:
//
//	go test -bench . | benchdiff -parse - -out BENCH_ci.json
//	benchdiff -parse bench.txt -out BENCH_ci.json
//	benchdiff -base BENCH_7.json -cur BENCH_ci.json
//	benchdiff -base BENCH_7.json -cur BENCH_ci.json -threshold 0.15 -match 'Kernel|Sweep|Pattern'
//	benchdiff -cur BENCH_ci.json -pair BenchmarkA=BenchmarkB -threshold 0.02
//
// -parse reads bench text (or stdin with "-") and writes the canonical
// file: benchmarks sorted, duplicates resolved to the best-measured
// run, schema-versioned. -base/-cur compares two canonical files and
// exits non-zero when any base benchmark matching -match is missing
// from the current file or its ns/op grew by more than -threshold
// (default 0.15 = 15%). Benchmarks only in the current file are listed
// as new and never gate, so adding benchmarks cannot break the build.
//
// -pair gates two benchmarks of the SAME file against each other:
// -pair A=B (repeatable, comma-separable) fails when A's ns/op exceeds
// B's by more than -threshold. Both runs come from the same process on
// the same machine, so the comparison is immune to host-speed drift —
// the form the observability layer's disabled-tracer overhead contract
// uses (nil-tracer kernel within 2% of its untouched twin).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// errGate marks a gate failure (regressions found), distinct from
// operational errors; both exit non-zero.
var errGate = fmt.Errorf("benchmark gate failed")

// run executes one benchdiff invocation; tests drive it directly.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.String("parse", "", `parse 'go test -bench' text from this file ("-" = stdin) into canonical JSON`)
	out := fs.String("out", "", "with -parse: write the canonical JSON here instead of stdout")
	base := fs.String("base", "", "tracked baseline canonical JSON (the committed BENCH_<n>.json)")
	cur := fs.String("cur", "", "current canonical JSON to gate against the baseline")
	threshold := fs.Float64("threshold", 0.15, "allowed ns/op growth fraction before a benchmark fails the gate")
	match := fs.String("match", "", "regexp selecting which baseline benchmarks gate (default: all)")
	var pairs pairList
	fs.Var(&pairs, "pair", "gate benchmark A against B within -cur, as A=B (repeatable, comma-separable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *parse != "" && (*base != "" || *cur != "" || len(pairs) > 0):
		return fmt.Errorf("-parse and -base/-cur/-pair are mutually exclusive")
	case *parse != "":
		return runParse(w, *parse, *out)
	case len(pairs) > 0 && *base != "":
		return fmt.Errorf("-pair compares within one file; drop -base")
	case len(pairs) > 0 && *cur != "":
		return runPairs(w, *cur, pairs, *threshold)
	case len(pairs) > 0:
		return fmt.Errorf("-pair needs -cur")
	case *base != "" && *cur != "":
		return runCompare(w, *base, *cur, *threshold, *match)
	default:
		return fmt.Errorf("need either -parse, -base and -cur, or -cur and -pair")
	}
}

// pairList collects repeated -pair A=B flags, splitting on commas.
type pairList []string

func (p *pairList) String() string { return strings.Join(*p, ",") }

func (p *pairList) Set(v string) error {
	for _, one := range strings.Split(v, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		if !strings.Contains(one, "=") {
			return fmt.Errorf("pair %q is not of the form A=B", one)
		}
		*p = append(*p, one)
	}
	return nil
}

// runParse converts bench text to the canonical file.
func runParse(w io.Writer, in, out string) error {
	var r io.Reader
	if in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	parsed, err := benchfmt.Parse(r)
	if err != nil {
		return err
	}
	b, err := parsed.Encode()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = w.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// runCompare gates cur against base and prints the delta table.
func runCompare(w io.Writer, basePath, curPath string, threshold float64, match string) error {
	var filter *regexp.Regexp
	if match != "" {
		var err error
		if filter, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}
	base, err := decodeFile(basePath)
	if err != nil {
		return err
	}
	cur, err := decodeFile(curPath)
	if err != nil {
		return err
	}
	deltas, ok := benchfmt.Compare(base, cur, threshold, filter)
	if len(deltas) == 0 {
		return fmt.Errorf("no baseline benchmarks match %q", match)
	}
	fmt.Fprintf(w, "%-45s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "%-45s %14.1f %14s %9s  MISSING\n", d.Name, d.BaseNs, "-", "-")
		case d.Regressed:
			fmt.Fprintf(w, "%-45s %14.1f %14.1f %+8.1f%%  REGRESSED\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100)
		default:
			fmt.Fprintf(w, "%-45s %14.1f %14.1f %+8.1f%%\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100)
		}
	}
	if !ok {
		return fmt.Errorf("%w: ns/op grew >%.0f%% (or a gated benchmark vanished); see table above",
			errGate, threshold*100)
	}
	fmt.Fprintf(w, "gate passed: %d benchmarks within %.0f%%\n", len(deltas), threshold*100)
	return nil
}

// runPairs gates each A=B pair within one canonical file: A's ns/op
// may exceed B's by at most the threshold fraction.
func runPairs(w io.Writer, curPath string, pairs []string, threshold float64) error {
	cur, err := decodeFile(curPath)
	if err != nil {
		return err
	}
	byName := map[string]benchfmt.Benchmark{}
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}
	ok := true
	fmt.Fprintf(w, "%-45s %14s %14s %9s\n", "pair (A vs B)", "A ns/op", "B ns/op", "delta")
	for _, p := range pairs {
		name, refName, _ := strings.Cut(p, "=")
		a, aOK := byName[name]
		ref, refOK := byName[refName]
		if !aOK {
			fmt.Fprintf(w, "%-45s %14s %14s %9s  MISSING\n", name, "-", "-", "-")
		}
		if !refOK {
			fmt.Fprintf(w, "%-45s %14s %14s %9s  MISSING\n", refName, "-", "-", "-")
		}
		if !aOK || !refOK {
			ok = false
			continue
		}
		if ref.NsPerOp <= 0 {
			return fmt.Errorf("%s has non-positive ns/op", refName)
		}
		ratio := a.NsPerOp / ref.NsPerOp
		status := ""
		if ratio > 1+threshold {
			status = "  REGRESSED"
			ok = false
		}
		fmt.Fprintf(w, "%-45s %14.1f %14.1f %+8.1f%%%s\n",
			name, a.NsPerOp, ref.NsPerOp, (ratio-1)*100, status)
	}
	if !ok {
		return fmt.Errorf("%w: a pair exceeded %.1f%% (or a benchmark is missing); see table above",
			errGate, threshold*100)
	}
	fmt.Fprintf(w, "gate passed: %d pairs within %.1f%%\n", len(pairs), threshold*100)
	return nil
}

// decodeFile reads and decodes one canonical benchmark file.
func decodeFile(path string) (*benchfmt.File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := benchfmt.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
