// Command benchdiff turns `go test -bench` output into the repo's
// canonical benchmark JSON and gates the current figures against a
// tracked baseline. It is the benchmark-regression gate CI runs on
// every PR: the tracked BENCH_<n>.json files record the simulator's
// perf trajectory in-repo, and a kernel/sweep/pattern benchmark that
// slows down past the threshold fails the build.
//
// Usage:
//
//	go test -bench . | benchdiff -parse - -out BENCH_ci.json
//	benchdiff -parse bench.txt -out BENCH_ci.json
//	benchdiff -base BENCH_7.json -cur BENCH_ci.json
//	benchdiff -base BENCH_7.json -cur BENCH_ci.json -threshold 0.15 -match 'Kernel|Sweep|Pattern'
//
// -parse reads bench text (or stdin with "-") and writes the canonical
// file: benchmarks sorted, duplicates resolved to the best-measured
// run, schema-versioned. -base/-cur compares two canonical files and
// exits non-zero when any base benchmark matching -match is missing
// from the current file or its ns/op grew by more than -threshold
// (default 0.15 = 15%). Benchmarks only in the current file are listed
// as new and never gate, so adding benchmarks cannot break the build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/benchfmt"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// errGate marks a gate failure (regressions found), distinct from
// operational errors; both exit non-zero.
var errGate = fmt.Errorf("benchmark gate failed")

// run executes one benchdiff invocation; tests drive it directly.
func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.String("parse", "", `parse 'go test -bench' text from this file ("-" = stdin) into canonical JSON`)
	out := fs.String("out", "", "with -parse: write the canonical JSON here instead of stdout")
	base := fs.String("base", "", "tracked baseline canonical JSON (the committed BENCH_<n>.json)")
	cur := fs.String("cur", "", "current canonical JSON to gate against the baseline")
	threshold := fs.Float64("threshold", 0.15, "allowed ns/op growth fraction before a benchmark fails the gate")
	match := fs.String("match", "", "regexp selecting which baseline benchmarks gate (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *parse != "" && (*base != "" || *cur != ""):
		return fmt.Errorf("-parse and -base/-cur are mutually exclusive")
	case *parse != "":
		return runParse(w, *parse, *out)
	case *base != "" && *cur != "":
		return runCompare(w, *base, *cur, *threshold, *match)
	default:
		return fmt.Errorf("need either -parse, or both -base and -cur")
	}
}

// runParse converts bench text to the canonical file.
func runParse(w io.Writer, in, out string) error {
	var r io.Reader
	if in == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	parsed, err := benchfmt.Parse(r)
	if err != nil {
		return err
	}
	b, err := parsed.Encode()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = w.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// runCompare gates cur against base and prints the delta table.
func runCompare(w io.Writer, basePath, curPath string, threshold float64, match string) error {
	var filter *regexp.Regexp
	if match != "" {
		var err error
		if filter, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}
	base, err := decodeFile(basePath)
	if err != nil {
		return err
	}
	cur, err := decodeFile(curPath)
	if err != nil {
		return err
	}
	deltas, ok := benchfmt.Compare(base, cur, threshold, filter)
	if len(deltas) == 0 {
		return fmt.Errorf("no baseline benchmarks match %q", match)
	}
	fmt.Fprintf(w, "%-45s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, d := range deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "%-45s %14.1f %14s %9s  MISSING\n", d.Name, d.BaseNs, "-", "-")
		case d.Regressed:
			fmt.Fprintf(w, "%-45s %14.1f %14.1f %+8.1f%%  REGRESSED\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100)
		default:
			fmt.Fprintf(w, "%-45s %14.1f %14.1f %+8.1f%%\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100)
		}
	}
	if !ok {
		return fmt.Errorf("%w: ns/op grew >%.0f%% (or a gated benchmark vanished); see table above",
			errGate, threshold*100)
	}
	fmt.Fprintf(w, "gate passed: %d benchmarks within %.0f%%\n", len(deltas), threshold*100)
	return nil
}

// decodeFile reads and decodes one canonical benchmark file.
func decodeFile(path string) (*benchfmt.File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := benchfmt.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
