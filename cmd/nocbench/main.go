// Command nocbench regenerates the paper's tables and figures plus the
// reproduction's ablation experiments, as text or as structured JSON,
// and runs parameter sweeps across all CPU cores.
//
// Usage:
//
//	nocbench -list                 list all experiments
//	nocbench -run fig9             run one experiment
//	nocbench -run table4,fig10     run several
//	nocbench -run fig9 -json       emit the typed result as JSON
//	nocbench                       run everything
//	nocbench -parallel             run everything on all cores
//	nocbench -out results.txt      also write to a file
//	nocbench -sweep spec.json      run a parallel sweep from a spec file
//	nocbench -sweep spec.json -csv same, as CSV
//	nocbench -sweep spec.json -workers 4
//	nocbench -sweep spec.json -kernel naive
//	nocbench -sweep spec.json -kernel active -simworkers 8
//	nocbench -sweep spec.json -reps 8
//	nocbench -pattern hotspot:0.7 -inject poisson:0.05 -mesh 16
//	nocbench -pattern uniform -reps 8 -warmup auto
//	nocbench -run fig9 -cpuprofile cpu.pprof
//
// A sweep spec is a JSON-encoded noc.SweepSpec: a set of fabrics crossed
// with an explicit scenario list or a cartesian parameter grid. The
// sweep engine fans the cells across a bounded worker pool and emits
// them in deterministic order, so the output is byte-identical for any
// worker count.
//
// -pattern runs a synthetic traffic pattern on all three fabrics:
// a spatial pattern name ("uniform", "transpose", "bitcomp", "bitrev",
// "hotspot[:frac]", "neighbour", "perm") optionally combined with
// -inject "process:rate[:burstiness]" ("cbr", "bernoulli", "poisson",
// "onoff") and -mesh N for an N×N mesh (default 8). The circuit fabric
// simulates the whole mesh; the packet and TDM fabrics are driven with
// the pattern's projection onto the mesh-centre router. Output is one
// JSON result per fabric.
//
// -reps runs every cell of a -sweep, or every fabric of a -pattern run,
// that many times with independent replication seeds and attaches
// mean/min/max/CI95 aggregates to each result (the "replication" JSON
// object, or the *_mean/*_ci95 CSV columns). -warmup truncates a
// -pattern run's measurement window: an explicit cycle count, or "auto"
// for MSER steady-state detection.
//
// -kernel selects the simulation kernel of a -sweep or -pattern run:
// "event" (the default: fully quiescent windows are fast-forwarded),
// "gated" (activity tracking only), "naive" (evaluate everything) or
// "active" (explicit active/parked component lists with a sharded
// parallel Eval sweep; -simworkers N bounds the goroutine pool, 0
// means GOMAXPROCS). Results are byte-identical under all of them —
// the CI equivalence job runs the same sweep under each and
// byte-compares, including the active kernel at different worker
// counts. The experiments (-run/-parallel) always use the default, so
// the flags are rejected without -sweep or -pattern rather than
// silently ignored.
//
// -cpuprofile / -memprofile write pprof profiles covering the whole run
// (flushed on errors and Ctrl-C too), so kernel work is measurable
// without editing code:
//
//	go tool pprof cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/noc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
}

// run owns every deferred cleanup (profile flushes, file closes), so any
// exit path — error, Ctrl-C cancellation, success — leaves complete,
// loadable pprof files behind.
func run() (err error) {
	list := flag.Bool("list", false, "list available experiments")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write output to this file")
	jsonOut := flag.Bool("json", false, "emit typed experiment results as JSON instead of text")
	sweepFile := flag.String("sweep", "", "run a parallel sweep from this JSON spec file")
	workers := flag.Int("workers", 0, "worker pool size for -sweep and -parallel (default GOMAXPROCS)")
	parallel := flag.Bool("parallel", false, "measure experiments on all cores (text output unchanged)")
	csvOut := flag.Bool("csv", false, "with -sweep: emit CSV instead of JSON")
	kernel := flag.String("kernel", "", `with -sweep/-pattern: simulation kernel, "event" (default), "gated", "naive" or "active"`)
	simWorkers := flag.Int("simworkers", 0, `with -sweep/-pattern: active-kernel Eval shard bound (default GOMAXPROCS)`)
	patternName := flag.String("pattern", "", `run a synthetic traffic pattern on all three fabrics (e.g. "uniform", "hotspot:0.7")`)
	inject := flag.String("inject", "", `with -pattern: injection process as "process:rate[:burstiness]" (e.g. "poisson:0.05", "onoff:0.1:8")`)
	meshSize := flag.Int("mesh", 0, "with -pattern: mesh size N for an NxN mesh (default 8)")
	cycles := flag.Int("cycles", 0, "with -pattern: simulated cycles (default 5000)")
	reps := flag.Int("reps", 0, "with -sweep/-pattern: replications per cell, aggregated as mean/CI95 (default single run)")
	warmup := flag.String("warmup", "", `with -pattern: warm-up truncation, a cycle count or "auto" (MSER steady-state detection)`)
	cacheDir := flag.String("cache", "", "with -sweep: serve cells from a content-addressed result cache in this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if _, kerr := noc.ParseKernel(*kernel); kerr != nil {
		return kerr
	}
	if *kernel != "" && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-kernel only applies to -sweep and -pattern runs (experiments always use the default)")
	}
	if *simWorkers < 0 {
		return fmt.Errorf("-simworkers must be non-negative, got %d", *simWorkers)
	}
	if *simWorkers != 0 && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-simworkers only applies to -sweep and -pattern runs")
	}
	if (*inject != "" || *meshSize != 0 || *cycles != 0) && *patternName == "" {
		return fmt.Errorf("-inject, -mesh and -cycles only apply to -pattern runs")
	}
	if *reps < 0 {
		return fmt.Errorf("-reps must be non-negative, got %d", *reps)
	}
	if *reps != 0 && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-reps only applies to -sweep and -pattern runs")
	}
	if *warmup != "" && *patternName == "" {
		return fmt.Errorf("-warmup only applies to -pattern runs")
	}
	if *cacheDir != "" && *sweepFile == "" {
		return fmt.Errorf("-cache only applies to -sweep runs")
	}

	if *cpuProfile != "" {
		f, ferr := os.Create(*cpuProfile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			return perr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			werr := writeHeapProfile(*memProfile)
			if err == nil {
				err = werr
			}
		}()
	}

	if *list {
		for _, e := range noc.Experiments() {
			fmt.Printf("%-10s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *sweepFile != "" {
		return runSweep(w, *sweepFile, *workers, *csvOut, *kernel, *simWorkers, *reps, *cacheDir)
	}
	if *patternName != "" {
		return runPattern(w, *patternName, *inject, *meshSize, *cycles, *kernel, *simWorkers, *reps, *warmup)
	}

	var ids []string
	if *runIDs == "" {
		for _, e := range noc.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *jsonOut {
		// Measure everything before emitting, so an unknown id or a
		// failed run never leaves truncated JSON on stdout. With
		// -parallel the measurements run on all cores; the emitted
		// JSON is identical either way.
		jsonWorkers := 1
		if *parallel {
			jsonWorkers = *workers
		}
		parts, jerr := noc.ExperimentsJSON(ids, jsonWorkers)
		if jerr != nil {
			return jerr
		}
		fmt.Fprint(w, "[\n")
		for i, b := range parts {
			if _, werr := w.Write(b); werr != nil {
				return werr
			}
			if i < len(parts)-1 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "]")
		return nil
	}
	if *parallel {
		return noc.RunExperimentsParallel(w, ids, *workers)
	}
	for _, id := range ids {
		if rerr := noc.RunExperiment(w, id); rerr != nil {
			return rerr
		}
	}
	return nil
}

// writeHeapProfile dumps the heap profile after a GC, so allocation
// statistics are current.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// runPattern executes one synthetic-pattern scenario on all three
// fabrics and emits one JSON result per fabric.
func runPattern(w io.Writer, name, inject string, meshSize, cycles int, kernel string, simWorkers, reps int, warmup string) error {
	sc := noc.Scenario{Name: "pattern:" + name, Pattern: name}
	if inject != "" {
		inj, err := noc.ParseInjection(inject)
		if err != nil {
			return err
		}
		sc.Injection = &inj
	}
	if meshSize != 0 {
		sc.MeshWidth, sc.MeshHeight = meshSize, meshSize
	}
	sc.Cycles = cycles
	sc.Replications = reps
	if warmup != "" {
		if warmup == "auto" {
			sc.WarmupAuto = true
		} else {
			n, err := strconv.Atoi(warmup)
			if err != nil || n < 0 {
				return fmt.Errorf(`-warmup must be "auto" or a non-negative cycle count, got %q`, warmup)
			}
			sc.WarmupCycles = n
		}
	}
	k, err := noc.ParseKernel(kernel)
	if err != nil {
		return err
	}
	sim, err := noc.NewSimulator(
		noc.CircuitSwitched(noc.WithKernel(k), noc.WithParallelism(simWorkers)),
		noc.PacketSwitched(noc.WithKernel(k), noc.WithParallelism(simWorkers)),
		noc.AetherealTDM(noc.WithKernel(k), noc.WithParallelism(simWorkers)),
	)
	if err != nil {
		return err
	}
	results, err := sim.Run(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "[")
	for i, r := range results {
		b, err := r.JSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		if i < len(results)-1 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "]")
	return nil
}

// runSweep loads a noc.SweepSpec from the file and streams the cells to
// w. Ctrl-C cancels the sweep cleanly mid-run. With -cache the spec is
// pointed at a content-addressed result cache directory and a traffic
// summary goes to stderr — sweep output on stdout stays byte-identical
// to an uncached run.
func runSweep(w io.Writer, path string, workers int, asCSV bool, kernel string, simWorkers, reps int, cacheDir string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := noc.ParseSweepSpec(b)
	if err != nil {
		return err
	}
	if workers != 0 {
		spec.Workers = workers
	}
	if kernel != "" {
		spec.Kernel = kernel
	}
	if simWorkers != 0 {
		spec.SimWorkers = simWorkers
	}
	if reps != 0 {
		spec.Replications = reps
	}
	if cacheDir != "" {
		spec.Cache = true
		spec.CacheDir = cacheDir
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runErr := func() error {
		if asCSV {
			return noc.SweepCSV(ctx, spec, w)
		}
		return noc.SweepJSON(ctx, spec, w)
	}()
	if cacheDir != "" {
		// OpenCache deduplicates per directory, so this reads the
		// instance the sweep just used.
		if c, cerr := noc.OpenCache(spec.CacheDir); cerr == nil {
			s := c.Counters()
			fmt.Fprintf(os.Stderr, "nocbench: cache hits=%d misses=%d puts=%d warm_hits=%d warm_stores=%d\n",
				s.Hits, s.Misses, s.Puts, s.WarmHits, s.WarmStores)
		}
	}
	return runErr
}
