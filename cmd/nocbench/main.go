// Command nocbench regenerates the paper's tables and figures plus the
// reproduction's ablation experiments, as text or as structured JSON.
//
// Usage:
//
//	nocbench -list              list all experiments
//	nocbench -run fig9          run one experiment
//	nocbench -run table4,fig10  run several
//	nocbench -run fig9 -json    emit the typed result as JSON
//	nocbench                    run everything
//	nocbench -out results.txt   also write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/noc"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write output to this file")
	jsonOut := flag.Bool("json", false, "emit typed experiment results as JSON instead of text")
	flag.Parse()

	if *list {
		for _, e := range noc.Experiments() {
			fmt.Printf("%-10s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	if *run == "" {
		for _, e := range noc.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *jsonOut {
		// Measure everything before emitting, so an unknown id or a
		// failed run never leaves truncated JSON on stdout.
		var parts [][]byte
		for _, id := range ids {
			b, err := noc.ExperimentJSON(id)
			if err != nil {
				fatal(err)
			}
			parts = append(parts, b)
		}
		fmt.Fprint(w, "[\n")
		for i, b := range parts {
			if _, err := w.Write(b); err != nil {
				fatal(err)
			}
			if i < len(parts)-1 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "]")
		return
	}
	for _, id := range ids {
		if err := noc.RunExperiment(w, id); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocbench:", err)
	os.Exit(1)
}
