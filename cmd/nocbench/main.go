// Command nocbench regenerates the paper's tables and figures plus the
// reproduction's ablation experiments, as text or as structured JSON,
// and runs parameter sweeps across all CPU cores.
//
// Usage:
//
//	nocbench -list                 list all experiments
//	nocbench -run fig9             run one experiment
//	nocbench -run table4,fig10     run several
//	nocbench -run fig9 -json       emit the typed result as JSON
//	nocbench                       run everything
//	nocbench -parallel             run everything on all cores
//	nocbench -out results.txt      also write to a file
//	nocbench -sweep spec.json      run a parallel sweep from a spec file
//	nocbench -sweep spec.json -csv same, as CSV
//	nocbench -sweep spec.json -workers 4
//
// A sweep spec is a JSON-encoded noc.SweepSpec: a set of fabrics crossed
// with an explicit scenario list or a cartesian parameter grid. The
// sweep engine fans the cells across a bounded worker pool and emits
// them in deterministic order, so the output is byte-identical for any
// worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/noc"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write output to this file")
	jsonOut := flag.Bool("json", false, "emit typed experiment results as JSON instead of text")
	sweepFile := flag.String("sweep", "", "run a parallel sweep from this JSON spec file")
	workers := flag.Int("workers", 0, "worker pool size for -sweep and -parallel (default GOMAXPROCS)")
	parallel := flag.Bool("parallel", false, "measure experiments on all cores (text output unchanged)")
	csvOut := flag.Bool("csv", false, "with -sweep: emit CSV instead of JSON")
	flag.Parse()

	if *list {
		for _, e := range noc.Experiments() {
			fmt.Printf("%-10s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *sweepFile != "" {
		if err := runSweep(w, *sweepFile, *workers, *csvOut); err != nil {
			fatal(err)
		}
		return
	}

	var ids []string
	if *run == "" {
		for _, e := range noc.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *jsonOut {
		// Measure everything before emitting, so an unknown id or a
		// failed run never leaves truncated JSON on stdout. With
		// -parallel the measurements run on all cores; the emitted
		// JSON is identical either way.
		jsonWorkers := 1
		if *parallel {
			jsonWorkers = *workers
		}
		parts, err := noc.ExperimentsJSON(ids, jsonWorkers)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(w, "[\n")
		for i, b := range parts {
			if _, err := w.Write(b); err != nil {
				fatal(err)
			}
			if i < len(parts)-1 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "]")
		return
	}
	if *parallel {
		if err := noc.RunExperimentsParallel(w, ids, *workers); err != nil {
			fatal(err)
		}
		return
	}
	for _, id := range ids {
		if err := noc.RunExperiment(w, id); err != nil {
			fatal(err)
		}
	}
}

// runSweep loads a noc.SweepSpec from the file and streams the cells to
// w. Ctrl-C cancels the sweep cleanly mid-run.
func runSweep(w io.Writer, path string, workers int, asCSV bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := noc.ParseSweepSpec(b)
	if err != nil {
		return err
	}
	if workers != 0 {
		spec.Workers = workers
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if asCSV {
		return noc.SweepCSV(ctx, spec, w)
	}
	return noc.SweepJSON(ctx, spec, w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocbench:", err)
	os.Exit(1)
}
