// Command nocbench regenerates the paper's tables and figures plus the
// reproduction's ablation experiments.
//
// Usage:
//
//	nocbench -list              list all experiments
//	nocbench -run fig9          run one experiment
//	nocbench -run table4,fig10  run several
//	nocbench                    run everything
//	nocbench -out results.txt   also write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write output to this file")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *run == "" {
		if err := experiments.RunAll(w); err != nil {
			fatal(err)
		}
		return
	}
	for _, id := range strings.Split(*run, ",") {
		if err := experiments.RunOne(w, strings.TrimSpace(id)); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocbench:", err)
	os.Exit(1)
}
