// Command nocbench regenerates the paper's tables and figures plus the
// reproduction's ablation experiments, as text or as structured JSON,
// and runs parameter sweeps across all CPU cores.
//
// Usage:
//
//	nocbench -list                 list all experiments
//	nocbench -run fig9             run one experiment
//	nocbench -run table4,fig10     run several
//	nocbench -run fig9 -json       emit the typed result as JSON
//	nocbench                       run everything
//	nocbench -parallel             run everything on all cores
//	nocbench -out results.txt      also write to a file
//	nocbench -sweep spec.json      run a parallel sweep from a spec file
//	nocbench -sweep spec.json -csv same, as CSV
//	nocbench -sweep spec.json -workers 4
//	nocbench -sweep spec.json -kernel naive
//	nocbench -sweep spec.json -kernel active -simworkers 8
//	nocbench -sweep spec.json -reps 8
//	nocbench -pattern hotspot:0.7 -inject poisson:0.05 -mesh 16
//	nocbench -pattern uniform -reps 8 -warmup auto
//	nocbench -run fig9 -cpuprofile cpu.pprof
//	nocbench -sweep spec.json -trace trace.json -progress
//	nocbench -pattern uniform -trace trace.json -metrics
//	nocbench -vcd quicklook.vcd
//	nocbench -sweep spec.json -http localhost:6060
//
// A sweep spec is a JSON-encoded noc.SweepSpec: a set of fabrics crossed
// with an explicit scenario list or a cartesian parameter grid. The
// sweep engine fans the cells across a bounded worker pool and emits
// them in deterministic order, so the output is byte-identical for any
// worker count.
//
// -pattern runs a synthetic traffic pattern on all three fabrics:
// a spatial pattern name ("uniform", "transpose", "bitcomp", "bitrev",
// "hotspot[:frac]", "neighbour", "perm") optionally combined with
// -inject "process:rate[:burstiness]" ("cbr", "bernoulli", "poisson",
// "onoff") and -mesh N for an N×N mesh (default 8). The circuit fabric
// simulates the whole mesh; the packet and TDM fabrics are driven with
// the pattern's projection onto the mesh-centre router. Output is one
// JSON result per fabric.
//
// -reps runs every cell of a -sweep, or every fabric of a -pattern run,
// that many times with independent replication seeds and attaches
// mean/min/max/CI95 aggregates to each result (the "replication" JSON
// object, or the *_mean/*_ci95 CSV columns). -warmup truncates a
// -pattern run's measurement window: an explicit cycle count, or "auto"
// for MSER steady-state detection.
//
// -kernel selects the simulation kernel of a -sweep or -pattern run:
// "event" (the default: fully quiescent windows are fast-forwarded),
// "gated" (activity tracking only), "naive" (evaluate everything) or
// "active" (explicit active/parked component lists with a sharded
// parallel Eval sweep; -simworkers N bounds the goroutine pool, 0
// means GOMAXPROCS). Results are byte-identical under all of them —
// the CI equivalence job runs the same sweep under each and
// byte-compares, including the active kernel at different worker
// counts. The experiments (-run/-parallel) always use the default, so
// the flags are rejected without -sweep or -pattern rather than
// silently ignored.
//
// Observability (none of it changes a byte of stdout results):
//
// -trace FILE writes the run's structured simulation events —
// cycle-timestamped kernel scheduling, flow setup/teardown, word
// injection and delivery, cache traffic — as Chrome trace-event JSON.
// Open the file in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing; each sweep cell renders as one process row, each
// event track as one thread. With -pattern the three fabrics write
// separate files ("t.json" → "t.circuit.json" etc.).
//
// -progress streams a live heartbeat to stderr during a -sweep: cells
// and jobs completed, cache hits, errors, simulated-cycle rate, the
// worker pool's busy fraction and an ETA. All wall-clock arithmetic
// happens in this command; the sweep engine reports only deterministic
// counts.
//
// -metrics dumps the metrics registry (kernel scheduling gauges,
// lane-allocator counters, cache traffic) to stderr after the run.
//
// -vcd FILE writes the single-router quicklook capture as a Value
// Change Dump for GTKWave and friends, with the ASCII render on stdout.
//
// -http ADDR serves expvar (/debug/vars, including live sweep counters)
// and pprof (/debug/pprof) while the run executes.
//
// -cpuprofile / -memprofile write pprof profiles covering the whole run
// (flushed on errors and Ctrl-C too), so kernel work is measurable
// without editing code:
//
//	go tool pprof cpu.pprof
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/noc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nocbench:", err)
		os.Exit(1)
	}
}

// run owns every deferred cleanup (profile flushes, file closes), so any
// exit path — error, Ctrl-C cancellation, success — leaves complete,
// loadable pprof files behind.
func run() (err error) {
	list := flag.Bool("list", false, "list available experiments")
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	out := flag.String("out", "", "also write output to this file")
	jsonOut := flag.Bool("json", false, "emit typed experiment results as JSON instead of text")
	sweepFile := flag.String("sweep", "", "run a parallel sweep from this JSON spec file")
	workers := flag.Int("workers", 0, "worker pool size for -sweep and -parallel (default GOMAXPROCS)")
	parallel := flag.Bool("parallel", false, "measure experiments on all cores (text output unchanged)")
	csvOut := flag.Bool("csv", false, "with -sweep: emit CSV instead of JSON")
	kernel := flag.String("kernel", "", `with -sweep/-pattern: simulation kernel, "event" (default), "gated", "naive" or "active"`)
	simWorkers := flag.Int("simworkers", 0, `with -sweep/-pattern: active-kernel Eval shard bound (default GOMAXPROCS)`)
	patternName := flag.String("pattern", "", `run a synthetic traffic pattern on all three fabrics (e.g. "uniform", "hotspot:0.7")`)
	inject := flag.String("inject", "", `with -pattern: injection process as "process:rate[:burstiness]" (e.g. "poisson:0.05", "onoff:0.1:8")`)
	meshSize := flag.Int("mesh", 0, "with -pattern: mesh size N for an NxN mesh (default 8)")
	cycles := flag.Int("cycles", 0, "with -pattern: simulated cycles (default 5000)")
	reps := flag.Int("reps", 0, "with -sweep/-pattern: replications per cell, aggregated as mean/CI95 (default single run)")
	warmup := flag.String("warmup", "", `with -pattern: warm-up truncation, a cycle count or "auto" (MSER steady-state detection)`)
	cacheDir := flag.String("cache", "", "with -sweep: serve cells from a content-addressed result cache in this directory")
	traceFile := flag.String("trace", "", `with -sweep/-pattern: write the run's structured events as Chrome trace-event JSON to this file (open in Perfetto; -pattern writes one file per fabric with the kind inserted before the extension)`)
	progress := flag.Bool("progress", false, "with -sweep: stream a live progress heartbeat (cells, jobs, cache hits, cycle rate, worker busy fraction, ETA) to stderr")
	metricsOut := flag.Bool("metrics", false, "with -sweep/-pattern: dump the metrics registry snapshot to stderr after the run")
	vcdFile := flag.String("vcd", "", "write the single-router quicklook capture (trace-recorder probes) as a VCD waveform to this file and its ASCII render to stdout")
	httpAddr := flag.String("http", "", `serve expvar (/debug/vars) and pprof (/debug/pprof) on this address for the duration of the run (e.g. "localhost:6060")`)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if _, kerr := noc.ParseKernel(*kernel); kerr != nil {
		return kerr
	}
	if *kernel != "" && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-kernel only applies to -sweep and -pattern runs (experiments always use the default)")
	}
	if *simWorkers < 0 {
		return fmt.Errorf("-simworkers must be non-negative, got %d", *simWorkers)
	}
	if *simWorkers != 0 && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-simworkers only applies to -sweep and -pattern runs")
	}
	if (*inject != "" || *meshSize != 0 || *cycles != 0) && *patternName == "" {
		return fmt.Errorf("-inject, -mesh and -cycles only apply to -pattern runs")
	}
	if *reps < 0 {
		return fmt.Errorf("-reps must be non-negative, got %d", *reps)
	}
	if *reps != 0 && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-reps only applies to -sweep and -pattern runs")
	}
	if *warmup != "" && *patternName == "" {
		return fmt.Errorf("-warmup only applies to -pattern runs")
	}
	if *cacheDir != "" && *sweepFile == "" {
		return fmt.Errorf("-cache only applies to -sweep runs")
	}
	if *traceFile != "" && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-trace only applies to -sweep and -pattern runs")
	}
	if *progress && *sweepFile == "" {
		return fmt.Errorf("-progress only applies to -sweep runs")
	}
	if *metricsOut && *sweepFile == "" && *patternName == "" {
		return fmt.Errorf("-metrics only applies to -sweep and -pattern runs")
	}
	if *vcdFile != "" && (*sweepFile != "" || *patternName != "") {
		return fmt.Errorf("-vcd is a standalone single-router capture; it does not combine with -sweep or -pattern")
	}

	if *cpuProfile != "" {
		f, ferr := os.Create(*cpuProfile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			return perr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			werr := writeHeapProfile(*memProfile)
			if err == nil {
				err = werr
			}
		}()
	}

	if *list {
		for _, e := range noc.Experiments() {
			fmt.Printf("%-10s %-55s [%s]\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	if *httpAddr != "" {
		// expvar and net/http/pprof register on the default mux at
		// import; progress expvars are published by runSweep.
		ln, lerr := net.Listen("tcp", *httpAddr)
		if lerr != nil {
			return lerr
		}
		defer ln.Close()
		srv := &http.Server{}
		defer srv.Close()
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "nocbench: serving http://%s/debug/vars and /debug/pprof\n", ln.Addr())
	}

	if *vcdFile != "" {
		return writeQuicklookVCD(w, *vcdFile)
	}
	if *sweepFile != "" {
		return runSweep(w, *sweepFile, sweepFlags{
			workers: *workers, simWorkers: *simWorkers, reps: *reps,
			csv: *csvOut, kernel: *kernel, cacheDir: *cacheDir,
			traceFile: *traceFile, progress: *progress, metrics: *metricsOut,
			expvars: *httpAddr != "",
		})
	}
	if *patternName != "" {
		return runPattern(w, *patternName, *inject, *meshSize, *cycles, *kernel,
			*simWorkers, *reps, *warmup, *traceFile, *metricsOut)
	}

	var ids []string
	if *runIDs == "" {
		for _, e := range noc.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *jsonOut {
		// Measure everything before emitting, so an unknown id or a
		// failed run never leaves truncated JSON on stdout. With
		// -parallel the measurements run on all cores; the emitted
		// JSON is identical either way.
		jsonWorkers := 1
		if *parallel {
			jsonWorkers = *workers
		}
		parts, jerr := noc.ExperimentsJSON(ids, jsonWorkers)
		if jerr != nil {
			return jerr
		}
		fmt.Fprint(w, "[\n")
		for i, b := range parts {
			if _, werr := w.Write(b); werr != nil {
				return werr
			}
			if i < len(parts)-1 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "]")
		return nil
	}
	if *parallel {
		return noc.RunExperimentsParallel(w, ids, *workers)
	}
	for _, id := range ids {
		if rerr := noc.RunExperiment(w, id); rerr != nil {
			return rerr
		}
	}
	return nil
}

// writeHeapProfile dumps the heap profile after a GC, so allocation
// statistics are current.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// writeQuicklookVCD runs the single-router trace-recorder quicklook (a
// configuration command establishing Tile.0 → East.0 followed by one
// word serializing across the crossbar), writes the capture as a VCD
// file any waveform viewer opens, and renders the ASCII timing diagram
// to w.
func writeQuicklookVCD(w io.Writer, path string) error {
	wf, err := noc.CaptureWaveform()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, wf.VCD, 0o644); err != nil {
		return err
	}
	if _, err := io.WriteString(w, wf.ASCII); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "nocbench: wrote %d-cycle, %d-signal quicklook VCD to %s\n",
		wf.Cycles, len(wf.Signals), path)
	return nil
}

// patternTracePath derives the per-fabric trace filename of a -pattern
// run: the fabric kind inserted before the extension, so three fabrics
// sharing one -trace flag write three valid Chrome JSON documents.
func patternTracePath(base string, kind noc.Kind) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + string(kind) + ext
}

// dumpMetrics renders a metrics snapshot to stderr, one line per sample.
func dumpMetrics(label string, samples []obs.Sample) {
	for _, s := range samples {
		fmt.Fprintf(os.Stderr, "nocbench: metric %s%s %s=%d", label, s.Name, s.Kind, s.Value)
		if s.Kind == "histogram" {
			fmt.Fprintf(os.Stderr, " sum=%d", s.Sum)
		}
		fmt.Fprintln(os.Stderr)
	}
}

// runPattern executes one synthetic-pattern scenario on all three
// fabrics and emits one JSON result per fabric. With traceFile each
// fabric's structured events go to their own Chrome trace JSON; with
// metrics each fabric's registry snapshot is dumped to stderr. Neither
// changes a byte of the JSON results on stdout.
func runPattern(w io.Writer, name, inject string, meshSize, cycles int, kernel string, simWorkers, reps int, warmup, traceFile string, metrics bool) error {
	sc := noc.Scenario{Name: "pattern:" + name, Pattern: name}
	if inject != "" {
		inj, err := noc.ParseInjection(inject)
		if err != nil {
			return err
		}
		sc.Injection = &inj
	}
	if meshSize != 0 {
		sc.MeshWidth, sc.MeshHeight = meshSize, meshSize
	}
	sc.Cycles = cycles
	sc.Replications = reps
	if warmup != "" {
		if warmup == "auto" {
			sc.WarmupAuto = true
		} else {
			n, err := strconv.Atoi(warmup)
			if err != nil || n < 0 {
				return fmt.Errorf(`-warmup must be "auto" or a non-negative cycle count, got %q`, warmup)
			}
			sc.WarmupCycles = n
		}
	}
	k, err := noc.ParseKernel(kernel)
	if err != nil {
		return err
	}
	kinds := []noc.Kind{noc.KindCircuit, noc.KindPacket, noc.KindTDM}
	fabricOpts := make([][]noc.Option, len(kinds))
	for i, kind := range kinds {
		fabricOpts[i] = []noc.Option{noc.WithKernel(k), noc.WithParallelism(simWorkers)}
		if traceFile != "" {
			f, ferr := os.Create(patternTracePath(traceFile, kind))
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			fabricOpts[i] = append(fabricOpts[i], noc.WithTrace(f))
		}
		if metrics {
			fabricOpts[i] = append(fabricOpts[i], noc.WithMetrics(true))
		}
	}
	sim, err := noc.NewSimulator(
		noc.CircuitSwitched(fabricOpts[0]...),
		noc.PacketSwitched(fabricOpts[1]...),
		noc.AetherealTDM(fabricOpts[2]...),
	)
	if err != nil {
		return err
	}
	results, err := sim.Run(sc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "[")
	for i, r := range results {
		b, err := r.JSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		if i < len(results)-1 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprintln(w)
		if metrics {
			dumpMetrics(string(r.Fabric)+".", r.Metrics)
		}
	}
	fmt.Fprintln(w, "]")
	return nil
}

// sweepFlags bundles the command-line knobs of a -sweep run.
type sweepFlags struct {
	workers, simWorkers, reps   int
	csv, progress, metrics      bool
	kernel, cacheDir, traceFile string
	expvars                     bool
}

// busyMonitor tracks per-worker wall-clock busy time from the sweep
// engine's scheduling callbacks. All wall-clock accounting lives here,
// on the CLI side — the deterministic engine only reports counts.
type busyMonitor struct {
	mu     sync.Mutex
	busy   map[int]time.Duration
	active map[int]time.Time
}

func newBusyMonitor() *busyMonitor {
	return &busyMonitor{busy: map[int]time.Duration{}, active: map[int]time.Time{}}
}

// JobStart implements noc.SweepMonitor.
func (m *busyMonitor) JobStart(worker, job int) {
	m.mu.Lock()
	m.active[worker] = time.Now()
	m.mu.Unlock()
}

// JobDone implements noc.SweepMonitor.
func (m *busyMonitor) JobDone(worker, job int) {
	m.mu.Lock()
	if t, ok := m.active[worker]; ok {
		m.busy[worker] += time.Since(t)
		delete(m.active, worker)
	}
	m.mu.Unlock()
}

// busyFraction returns the pool's mean busy fraction over the elapsed
// window: total busy time (in-flight jobs included) over workers×elapsed.
func (m *busyMonitor) busyFraction(workers int, elapsed time.Duration) float64 {
	if workers <= 0 || elapsed <= 0 {
		return 0
	}
	m.mu.Lock()
	var total time.Duration
	for _, d := range m.busy {
		total += d
	}
	for _, t := range m.active {
		total += time.Since(t)
	}
	m.mu.Unlock()
	return float64(total) / (float64(workers) * float64(elapsed))
}

// runSweep loads a noc.SweepSpec from the file and streams the cells to
// w. Ctrl-C cancels the sweep cleanly mid-run. The observability flags
// (-cache traffic, -trace, -progress, -metrics) all report to stderr or
// side files — sweep output on stdout stays byte-identical with any
// combination of them enabled.
func runSweep(w io.Writer, path string, fl sweepFlags) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := noc.ParseSweepSpec(b)
	if err != nil {
		return err
	}
	if fl.workers != 0 {
		spec.Workers = fl.workers
	}
	if fl.kernel != "" {
		spec.Kernel = fl.kernel
	}
	if fl.simWorkers != 0 {
		spec.SimWorkers = fl.simWorkers
	}
	if fl.reps != 0 {
		spec.Replications = fl.reps
	}
	if fl.cacheDir != "" {
		spec.Cache = true
		spec.CacheDir = fl.cacheDir
	}
	if fl.traceFile != "" {
		f, ferr := os.Create(fl.traceFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		spec.Obs.Trace = f
	}
	var reg *obs.Registry
	if fl.metrics {
		reg = obs.NewRegistry()
		spec.Obs.Metrics = reg
	}
	var mon *busyMonitor
	if fl.expvars && !fl.progress {
		// -http without -progress still publishes the live sweep
		// counters to /debug/vars; only the stderr heartbeat is tied
		// to -progress.
		jobsDone := expvar.NewInt("nocbench.sweep.jobs_done")
		cellsDone := expvar.NewInt("nocbench.sweep.cells_done")
		spec.Obs.Progress = func(p noc.SweepProgress) error {
			jobsDone.Set(int64(p.JobsDone))
			cellsDone.Set(int64(p.CellsDone))
			return nil
		}
	}
	if fl.progress {
		mon = newBusyMonitor()
		spec.Obs.Monitor = mon
		poolWorkers := spec.Workers
		if poolWorkers == 0 {
			poolWorkers = runtime.GOMAXPROCS(0)
		}
		start := time.Now()
		var lastBeat time.Time
		var jobsDone, cellsDone *expvar.Int
		if fl.expvars {
			jobsDone = expvar.NewInt("nocbench.sweep.jobs_done")
			cellsDone = expvar.NewInt("nocbench.sweep.cells_done")
		}
		// Progress is called from the engine's single emission goroutine
		// in deterministic job order; everything wall-clock-derived is
		// computed here.
		spec.Obs.Progress = func(p noc.SweepProgress) error {
			if jobsDone != nil {
				jobsDone.Set(int64(p.JobsDone))
				cellsDone.Set(int64(p.CellsDone))
			}
			done := p.JobsDone == p.JobsTotal
			if !done && time.Since(lastBeat) < 250*time.Millisecond {
				return nil
			}
			lastBeat = time.Now()
			elapsed := time.Since(start)
			eta := "?"
			if p.JobsDone > 0 {
				rem := time.Duration(float64(elapsed) / float64(p.JobsDone) *
					float64(p.JobsTotal-p.JobsDone))
				eta = rem.Round(time.Second).String()
			}
			fmt.Fprintf(os.Stderr,
				"nocbench: cells %d/%d jobs %d/%d hits %d errs %d | %.2g cycles/s busy %.0f%% eta %s\n",
				p.CellsDone, p.CellsTotal, p.JobsDone, p.JobsTotal, p.CacheHits, p.Errors,
				float64(p.CyclesDone)/elapsed.Seconds(),
				100*mon.busyFraction(poolWorkers, elapsed), eta)
			return nil
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runErr := func() error {
		if fl.csv {
			return noc.SweepCSV(ctx, spec, w)
		}
		return noc.SweepJSON(ctx, spec, w)
	}()
	if reg != nil {
		dumpMetrics("", reg.Snapshot())
	}
	if fl.cacheDir != "" {
		// OpenCache deduplicates per directory, so this reads the
		// instance the sweep just used.
		if c, cerr := noc.OpenCache(spec.CacheDir); cerr == nil {
			s := c.Counters()
			fmt.Fprintf(os.Stderr, "nocbench: cache hits=%d misses=%d puts=%d warm_hits=%d warm_stores=%d\n",
				s.Hits, s.Misses, s.Puts, s.WarmHits, s.WarmStores)
		}
	}
	return runErr
}
