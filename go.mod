module repro

go 1.22

// golang.org/x/tools is vendored under third_party/ (the go/analysis
// subset shipped with the Go toolchain) so the nocvet analyzers build
// without network access. The version pin matches the toolchain vendor.
require golang.org/x/tools v0.28.1

replace golang.org/x/tools => ./third_party/golang.org/x/tools
