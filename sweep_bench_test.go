package repro_test

// Benchmarks of the parallel sweep engine, the third leg of the
// benchdiff regression gate next to the kernel and pattern benchmarks:
// a small fixed spec run end to end through noc.Sweep's worker pool,
// once as single runs and once fanned out over replications. Both use
// one worker so the figure measures engine plus simulation cost, not
// the host's core count.

import (
	"context"
	"testing"

	"repro/noc"
)

// benchSweep runs the spec to completion, discarding cells.
func benchSweep(b *testing.B, spec noc.SweepSpec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := noc.Sweep(context.Background(), spec, func(c noc.SweepCell) error {
			if c.Error != "" {
				b.Fatal(c.Error)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchSpec is the gate's fixed workload: two scenarios on the
// circuit fabric, short runs, deterministic seed.
func sweepBenchSpec() noc.SweepSpec {
	return noc.SweepSpec{
		Fabrics: []noc.FabricSpec{{Kind: noc.KindCircuit}},
		Grid: &noc.Grid{
			Scenarios: []string{"I", "IV"},
			Cycles:    []int{500},
		},
		Workers: 1,
		Seed:    1,
	}
}

func BenchmarkSweepSingleRun(b *testing.B) {
	benchSweep(b, sweepBenchSpec())
}

func BenchmarkSweepReplicated(b *testing.B) {
	spec := sweepBenchSpec()
	spec.Replications = 4
	benchSweep(b, spec)
}
