package repro_test

// Benchmarks of the parallel sweep engine, the third leg of the
// benchdiff regression gate next to the kernel and pattern benchmarks:
// a small fixed spec run end to end through noc.Sweep's worker pool,
// once as single runs and once fanned out over replications. Both use
// one worker so the figure measures engine plus simulation cost, not
// the host's core count.

import (
	"context"
	"testing"

	"repro/noc"
)

// benchSweep runs the spec to completion, discarding cells.
func benchSweep(b *testing.B, spec noc.SweepSpec) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := noc.Sweep(context.Background(), spec, func(c noc.SweepCell) error {
			if c.Error != "" {
				b.Fatal(c.Error)
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// sweepBenchSpec is the gate's fixed workload: two scenarios on the
// circuit fabric, short runs, deterministic seed.
func sweepBenchSpec() noc.SweepSpec {
	return noc.SweepSpec{
		Fabrics: []noc.FabricSpec{{Kind: noc.KindCircuit}},
		Grid: &noc.Grid{
			Scenarios: []string{"I", "IV"},
			Cycles:    []int{500},
		},
		Workers: 1,
		Seed:    1,
	}
}

func BenchmarkSweepSingleRun(b *testing.B) {
	benchSweep(b, sweepBenchSpec())
}

func BenchmarkSweepReplicated(b *testing.B) {
	spec := sweepBenchSpec()
	spec.Replications = 4
	benchSweep(b, spec)
}

// overlapSpec is the content-addressed cache's headline workload: a
// circuit-fabric pattern grid of len(rates) injection rates × 2 run
// lengths. The warm benchmark primes the cache with the first 6 rates
// (12 of 16 cells, 75% overlap — the "re-run with a denser axis" case)
// and then measures the full grid; the cold benchmark runs the same
// grid uncached. Seeds vary per iteration so every warm iteration pays
// the true 75%-hit cost instead of degenerating to 100% hits.
func overlapSpec(rates []float64, seed uint64, dir string) noc.SweepSpec {
	return noc.SweepSpec{
		Fabrics: []noc.FabricSpec{{Kind: noc.KindCircuit}},
		Grid: &noc.Grid{
			Patterns:       []string{"uniform"},
			InjectionRates: rates,
			Cycles:         []int{1000, 2000},
		},
		Workers:  1,
		Seed:     seed,
		Cache:    dir != "",
		CacheDir: dir,
	}
}

// overlapRates is the full 8-value axis; the warm run's prime covers
// the first 6.
var overlapRates = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08}

// BenchmarkSweepOverlapCold is the uncached side of the ≥3× warm/cold
// acceptance comparison.
func BenchmarkSweepOverlapCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSweepOnce(b, overlapSpec(overlapRates, uint64(i+1), ""))
	}
}

// BenchmarkSweepOverlapWarm measures re-running the grid after 75% of
// its cells were already computed: only the 4 new-rate cells simulate,
// the rest are byte-exact cache hits.
func BenchmarkSweepOverlapWarm(b *testing.B) {
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchSweepOnce(b, overlapSpec(overlapRates[:6], uint64(i+1), dir))
		b.StartTimer()
		benchSweepOnce(b, overlapSpec(overlapRates, uint64(i+1), dir))
	}
}

// benchSweepOnce runs one sweep to completion, failing on any cell
// error.
func benchSweepOnce(b *testing.B, spec noc.SweepSpec) {
	b.Helper()
	if err := noc.Sweep(context.Background(), spec, func(c noc.SweepCell) error {
		if c.Error != "" {
			b.Fatal(c.Error)
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}
