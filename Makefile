# Convenience targets; CI runs the same commands.

NOCVET := $(CURDIR)/bin/nocvet

.PHONY: build test race vet nocvet bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# vet runs the stock vet plus the repo's own determinism/kernel-contract
# analyzers (cmd/nocvet) over every package.
vet: nocvet
	go vet ./...
	go vet -vettool=$(NOCVET) ./...

nocvet:
	@mkdir -p bin
	go build -o $(NOCVET) ./cmd/nocvet

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...
