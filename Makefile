# Convenience targets; CI runs the same commands.

NOCVET := $(CURDIR)/bin/nocvet

# BENCH_BASE is the tracked benchmark baseline the regression gate
# compares against; bump the number when re-baselining on purpose.
BENCH_BASE := BENCH_10.json

.PHONY: build test race vet nocvet bench bench-json benchdiff

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# vet runs the stock vet plus the repo's own determinism/kernel-contract
# analyzers (cmd/nocvet) over every package.
vet: nocvet
	go vet ./...
	go vet -vettool=$(NOCVET) ./...

nocvet:
	@mkdir -p bin
	go build -o $(NOCVET) ./cmd/nocvet

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the gating 1x pass plus the measured kernel, event,
# pattern and sweep passes, then folds the combined text into the
# canonical BENCH_ci.json (cmd/benchdiff -parse keeps the
# best-measured line per benchmark). Gated benchmarks whose single-shot
# spread approaches their gate threshold run with -count so the
# best-of-N line wins — the 2% tracer-nil pair gate in particular needs
# the sub-30ms pair measured more than once. CI archives the file and
# gates it against $(BENCH_BASE) via `make benchdiff`.
bench-json:
	go test -bench . -benchtime 1x -run '^$$' ./... | tee bench.txt
	go test -bench '(Mesh|Scenario).*Kernel' -benchtime 20000x -run '^$$' . | tee -a bench.txt
	go test -bench 'MeshSparse(Gated|TracerNil)Kernel' -benchtime 20000x -count 6 -run '^$$' . | tee -a bench.txt
	go test -bench 'FiniteWorkload|BEBurst' -benchtime 50x -run '^$$' . | tee -a bench.txt
	go test -bench 'Pattern16|PatternSource' -benchtime 5x -run '^$$' . | tee -a bench.txt
	go test -bench 'PatternSource' -benchtime 5x -count 6 -run '^$$' . | tee -a bench.txt
	go test -bench 'Sweep(Single|Replicated)' -benchtime 20x -count 4 -run '^$$' . | tee -a bench.txt
	go test -bench 'SweepOverlap' -benchtime 5x -run '^$$' . | tee -a bench.txt
	go test -bench 'Hotspot(16x16|64x64)' -benchtime 2x -run '^$$' . | tee -a bench.txt
	go run ./cmd/benchdiff -parse bench.txt -out BENCH_ci.json

# benchdiff gates the current canonical figures against the tracked
# baseline: >15% ns/op growth (or a vanished benchmark) on the
# kernel/sweep/pattern benchmarks fails. Every kernel and pattern
# benchmark name ends in "Kernel"; the sweep-engine benchmarks —
# including the cache's warm/cold overlap pair — are named explicitly.
# Experiment benchmarks measured only at 1x (table/figure regeneration)
# are too noisy to gate and stay out.
#
# The second invocation gates the observability layer's disabled-tracer
# overhead within the same bench run: the nil-tracer kernel twin must
# stay within 2% of its untouched twin (host-speed drift cancels out).
benchdiff:
	go run ./cmd/benchdiff -base $(BENCH_BASE) -cur BENCH_ci.json -match 'Kernel$$|SweepSingleRun|SweepReplicated|SweepOverlap'
	go run ./cmd/benchdiff -cur BENCH_ci.json -threshold 0.02 -pair 'BenchmarkMeshSparseTracerNilKernel=BenchmarkMeshSparseGatedKernel'
