package repro_test

// One benchmark per table and figure of the paper, plus micro-benchmarks
// of the simulation kernels. The table/figure benchmarks exercise exactly
// the code path that regenerates the artefact (reduced cycle counts keep
// iterations reasonable; `nocbench` runs the full-length versions).

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunOne(io.Discard, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (HiperLAN/2 bandwidths).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2 (UMTS bandwidths).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (stream definitions).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table 4 (synthesis of the three routers).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig9 regenerates Figure 9's eight power bars (reduced length).
func BenchmarkFig9(b *testing.B) {
	cfg := experiments.Fig9Config{Cycles: 1000, FreqMHz: 25}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Data(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates Figure 10's 24 samples (reduced length).
func BenchmarkFig10(b *testing.B) {
	cfg := experiments.Fig9Config{Cycles: 500, FreqMHz: 25}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10Data(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Gated runs the clock-gating ablation.
func BenchmarkFig9Gated(b *testing.B) {
	cfg := experiments.Fig9Config{Cycles: 500, FreqMHz: 25, Gated: true}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9Data(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSetup measures BE-network configuration delivery.
func BenchmarkSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SetupData(25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLanes runs the lane-geometry design sweep.
func BenchmarkLanes(b *testing.B) {
	lib := experiments.Lib()
	for i := 0; i < b.N; i++ {
		if pts := synth.LaneSweep(lib, []int{2, 4, 6, 8}, []int{2, 4, 8}); len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkWindow sweeps the window-counter flow control.
func BenchmarkWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WindowData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApps maps all three wireless applications.
func BenchmarkApps(b *testing.B) { runExperiment(b, "apps") }

// BenchmarkCrossover sweeps load for the energy-per-word comparison.
func BenchmarkCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossoverData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitRouterCycle measures the simulation rate of one loaded
// circuit-switched assembly (cycles per second of wall clock).
func BenchmarkCircuitRouterCycle(b *testing.B) {
	sc := traffic.Scenarios()[3]
	cfg := traffic.RunConfig{Cycles: 1, FreqMHz: 25, Lib: experiments.Lib()}
	// One long run amortized over b.N: build once, step b.N times.
	cfg.Cycles = b.N
	b.ResetTimer()
	if _, err := traffic.RunCircuit(sc, traffic.Pattern{FlipProb: 0.5, Load: 1}, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPacketRouterCycle measures the packet-switched router's
// simulation rate under scenario IV.
func BenchmarkPacketRouterCycle(b *testing.B) {
	sc := traffic.Scenarios()[3]
	cfg := traffic.RunConfig{Cycles: b.N, FreqMHz: 25, Lib: experiments.Lib()}
	b.ResetTimer()
	if _, err := traffic.RunPacket(sc, traffic.Pattern{FlipProb: 0.5, Load: 1}, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMesh4x4Cycle measures a full 4x4 mesh simulation step.
func BenchmarkMesh4x4Cycle(b *testing.B) {
	m := mesh.New(4, 4, core.DefaultParams(), core.DefaultAssemblyOptions())
	b.ResetTimer()
	m.Run(b.N)
}

// BenchmarkConverterRoundTrip measures serialize+deserialize of one word
// through a converter pair.
func BenchmarkConverterRoundTrip(b *testing.B) {
	p := core.DefaultParams()
	tx := core.NewTxConverter(p, core.FlowParams{})
	rx := core.NewRxConverter(p, core.FlowParams{}, 8)
	tx.Enabled, rx.Enabled = true, true
	rx.ConnectIn(&tx.Out)
	w := sim.NewWorld()
	w.Add(tx, rx)
	n := uint16(0)
	w.Add(&sim.Func{OnEval: func() {
		if tx.Ready() {
			tx.Push(core.DataWord(n))
			n++
		}
		rx.Pop()
	}})
	b.ResetTimer()
	w.Run(b.N)
}

// BenchmarkBERouterFlit measures the packet-switched router's raw flit
// throughput with a saturated tile port.
func BenchmarkBERouterFlit(b *testing.B) {
	r := packetsw.NewRouter(packetsw.DefaultParams(), packetsw.PortRoute)
	w := sim.NewWorld()
	w.Add(r)
	w.Add(&sim.Func{OnEval: func() {
		r.Inject(packetsw.Flit{Kind: packetsw.HeadTail, VC: 0,
			Data: packetsw.HeadData(core.East)})
	}})
	b.ResetTimer()
	w.Run(b.N)
}

// BenchmarkLatency measures the latency/jitter experiment.
func BenchmarkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LatencyData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeshPower runs the whole-NoC power comparison (reduced length).
func BenchmarkMeshPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MeshPowerData(500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule compares TDM vs lane allocation effort.
func BenchmarkSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScheduleData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreqSweep runs the frequency scaling sweep.
func BenchmarkFreqSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.FreqSweepData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBELoad runs the best-effort latency-throughput curve.
func BenchmarkBELoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BELoadData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSDepth runs the buffer-depth design sweep.
func BenchmarkPSDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.PSDepthData(); len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkMulticast runs the crossbar fan-out comparison.
func BenchmarkMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MulticastData(); err != nil {
			b.Fatal(err)
		}
	}
}
