package repro_test

// Micro-benchmarks of the activity-tracked simulation kernel: the same
// 5×5 mesh under the gated and the naive kernel, sparse (2 streams, >80%
// of routers idle — where skipping pays) and dense (a stream through
// every row — the worst case for the quiescence poll). A deterministic
// companion test pins the skip rate itself, so the speedup claim does not
// rest on wall-clock measurements alone.

import (
	"testing"

	"repro/internal/benet"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// buildStreamMesh wires a w×h circuit-switched mesh with one full-rate
// West→East stream along each of the given rows: entering at the tile
// port of column 0, crossing span routers, leaving at the tile port of
// column span-1. All other routers stay unconfigured — the sparsity the
// paper's clock gating (and the gated kernel) exploits.
func buildStreamMesh(tb testing.TB, kernel sim.Kernel, w, h int, rows []int, span int) *mesh.Mesh {
	tb.Helper()
	p := core.DefaultParams()
	m := mesh.New(w, h, p, core.DefaultAssemblyOptions(), sim.WithKernel(kernel))
	world := m.World()
	for _, y := range rows {
		establish := func(x int, c core.Circuit) {
			if err := m.At(mesh.Coord{X: x, Y: y}).EstablishLocal(c); err != nil {
				tb.Fatal(err)
			}
		}
		establish(0, core.Circuit{
			In:  core.LaneID{Port: core.Tile, Lane: 0},
			Out: core.LaneID{Port: core.East, Lane: 0},
		})
		for x := 1; x < span-1; x++ {
			establish(x, core.Circuit{
				In:  core.LaneID{Port: core.West, Lane: 0},
				Out: core.LaneID{Port: core.East, Lane: 0},
			})
		}
		establish(span-1, core.Circuit{
			In:  core.LaneID{Port: core.West, Lane: 0},
			Out: core.LaneID{Port: core.Tile, Lane: 0},
		})
		tx := m.At(mesh.Coord{X: 0, Y: y}).Tx[0]
		rx := m.At(mesh.Coord{X: span - 1, Y: y}).Rx[0]
		n := uint16(0)
		world.Add(&sim.Func{OnEval: func() {
			if tx.Ready() {
				tx.Push(core.DataWord(n))
				n++
			}
			rx.Pop()
		}})
	}
	return m
}

func benchMeshKernel(b *testing.B, kernel sim.Kernel, rows []int, span int) {
	m := buildStreamMesh(b, kernel, 5, 5, rows, span)
	b.ResetTimer()
	m.Run(b.N)
}

// BenchmarkMeshSparseGatedKernel: 5×5 mesh, two single-hop streams (4 of
// 25 routers configured, the rest idle), gated kernel — the acceptance
// benchmark; must run at least 2× faster than its naive twin.
func BenchmarkMeshSparseGatedKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelGated, []int{0, 2}, 2)
}

// BenchmarkMeshSparseNaiveKernel is the evaluate-everything baseline.
func BenchmarkMeshSparseNaiveKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelNaive, []int{0, 2}, 2)
}

// BenchmarkMeshDenseGatedKernel: a stream across the full width of every
// row; the quiescence poll runs but almost never skips — the kernel's
// overhead bound.
func BenchmarkMeshDenseGatedKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelGated, []int{0, 1, 2, 3, 4}, 5)
}

// BenchmarkMeshDenseNaiveKernel is the dense baseline.
func BenchmarkMeshDenseNaiveKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelNaive, []int{0, 1, 2, 3, 4}, 5)
}

// benchScenarioKernel runs a single-router power scenario under the given
// kernel: scenario I (no streams) is the fully idle, fully metered case.
func benchScenarioKernel(b *testing.B, scenario int, k sim.Kernel) {
	sc := traffic.Scenarios()[scenario]
	cfg := traffic.RunConfig{Cycles: b.N, FreqMHz: 25,
		Lib: experiments.Lib(), Kernel: k}
	b.ResetTimer()
	if _, err := traffic.RunCircuit(sc, traffic.Pattern{FlipProb: 0.5, Load: 1}, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScenarioIGatedKernel measures the static-offset scenario under
// the gated kernel: the assembly is quiescent every cycle, only the meter
// tick remains.
func BenchmarkScenarioIGatedKernel(b *testing.B) { benchScenarioKernel(b, 0, sim.KernelGated) }

// BenchmarkScenarioINaiveKernel is its evaluate-everything baseline.
func BenchmarkScenarioINaiveKernel(b *testing.B) { benchScenarioKernel(b, 0, sim.KernelNaive) }

// BenchmarkScenarioIVGatedKernel measures the fully loaded scenario under
// the gated kernel (nothing to skip; overhead bound).
func BenchmarkScenarioIVGatedKernel(b *testing.B) { benchScenarioKernel(b, 3, sim.KernelGated) }

// BenchmarkScenarioIVNaiveKernel is its baseline.
func BenchmarkScenarioIVNaiveKernel(b *testing.B) { benchScenarioKernel(b, 3, sim.KernelNaive) }

// TestSparseMeshSkipRate pins the property behind the benchmark numbers
// deterministically: on the sparse 5×5 mesh (two single-hop streams, 21
// of 25 routers unconfigured) the gated kernel must skip more than 75%
// of all component visits, and the streams must still flow.
func TestSparseMeshSkipRate(t *testing.T) {
	m := buildStreamMesh(t, sim.KernelGated, 5, 5, []int{0, 2}, 2)
	const cycles = 2000
	m.Run(cycles)
	w := m.World()
	total := w.Evals() + w.Skips()
	if total == 0 {
		t.Fatal("no component visits recorded")
	}
	if frac := float64(w.Skips()) / float64(total); frac < 0.75 {
		t.Fatalf("gated kernel skipped only %.0f%% of visits (evals=%d skips=%d)",
			frac*100, w.Evals(), w.Skips())
	}
	for _, y := range []int{0, 2} {
		if got := m.At(mesh.Coord{X: 1, Y: y}).Rx[0].Received(); got == 0 {
			t.Fatalf("row %d delivered nothing under the gated kernel", y)
		}
	}
}

// TestBENetKernelEquivalence drives the best-effort mesh (wormhole
// routers waking each other hop by hop) with bursty random traffic under
// both kernels and compares every delivery timestamp.
func TestBENetKernelEquivalence(t *testing.T) {
	type delivery struct {
		dst  [2]int
		sent uint64
		recv uint64
	}
	run := func(k sim.Kernel) []delivery {
		n := benet.New(4, 4, packetsw.DefaultParams(), sim.WithKernel(k))
		rng := bitvec.NewXorShift64(7)
		var out []delivery
		for c := 0; c < 1500; c++ {
			// A sparse burst roughly every 50 cycles from a random node.
			if rng.Bool(0.02) {
				src := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				dst := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				if src != dst {
					n.Send(benet.Message{Src: src, Dst: dst,
						Payload: []uint16{1, 2, 3, 4}})
				}
			}
			n.Step()
			for _, m := range n.Delivered() {
				out = append(out, delivery{
					dst: [2]int{m.Dst.X, m.Dst.Y}, sent: m.SentCycle, recv: m.RecvCycle,
				})
			}
		}
		return out
	}
	g, nv := run(sim.KernelGated), run(sim.KernelNaive)
	if len(g) == 0 {
		t.Fatal("no deliveries")
	}
	if len(g) != len(nv) {
		t.Fatalf("delivery counts differ: gated %d naive %d", len(g), len(nv))
	}
	for i := range g {
		if g[i] != nv[i] {
			t.Fatalf("delivery %d differs: gated %+v naive %+v", i, g[i], nv[i])
		}
	}
}

// TestStreamMeshKernelEquivalence: the mesh harness delivers identical
// word counts under both kernels, for both the sparse and the
// mesh-crossing stream shapes.
func TestStreamMeshKernelEquivalence(t *testing.T) {
	for _, span := range []int{2, 5} {
		counts := func(k sim.Kernel) [2]uint64 {
			m := buildStreamMesh(t, k, 5, 5, []int{0, 2}, span)
			m.Run(2000)
			return [2]uint64{
				m.At(mesh.Coord{X: span - 1, Y: 0}).Rx[0].Received(),
				m.At(mesh.Coord{X: span - 1, Y: 2}).Rx[0].Received(),
			}
		}
		if g, n := counts(sim.KernelGated), counts(sim.KernelNaive); g != n {
			t.Fatalf("span %d: kernels disagree: gated %v naive %v", span, g, n)
		}
	}
}
