package repro_test

// Micro-benchmarks of the activity-tracked simulation kernel: the same
// 5×5 mesh under the gated and the naive kernel, sparse (2 streams, >80%
// of routers idle — where skipping pays) and dense (a stream through
// every row — the worst case for the quiescence poll). A deterministic
// companion test pins the skip rate itself, so the speedup claim does not
// rest on wall-clock measurements alone.

import (
	"reflect"
	"testing"

	"repro/internal/benet"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// buildStreamMesh wires a w×h circuit-switched mesh with one full-rate
// West→East stream along each of the given rows: entering at the tile
// port of column 0, crossing span routers, leaving at the tile port of
// column span-1. All other routers stay unconfigured — the sparsity the
// paper's clock gating (and the gated kernel) exploits.
func buildStreamMesh(tb testing.TB, kernel sim.Kernel, w, h int, rows []int, span int, opts ...sim.WorldOption) *mesh.Mesh {
	tb.Helper()
	p := core.DefaultParams()
	m := mesh.New(w, h, p, core.DefaultAssemblyOptions(),
		append([]sim.WorldOption{sim.WithKernel(kernel)}, opts...)...)
	world := m.World()
	for _, y := range rows {
		establish := func(x int, c core.Circuit) {
			if err := m.At(mesh.Coord{X: x, Y: y}).EstablishLocal(c); err != nil {
				tb.Fatal(err)
			}
		}
		establish(0, core.Circuit{
			In:  core.LaneID{Port: core.Tile, Lane: 0},
			Out: core.LaneID{Port: core.East, Lane: 0},
		})
		for x := 1; x < span-1; x++ {
			establish(x, core.Circuit{
				In:  core.LaneID{Port: core.West, Lane: 0},
				Out: core.LaneID{Port: core.East, Lane: 0},
			})
		}
		establish(span-1, core.Circuit{
			In:  core.LaneID{Port: core.West, Lane: 0},
			Out: core.LaneID{Port: core.Tile, Lane: 0},
		})
		tx := m.At(mesh.Coord{X: 0, Y: y}).Tx[0]
		rx := m.At(mesh.Coord{X: span - 1, Y: y}).Rx[0]
		n := uint16(0)
		world.Add(&sim.Func{OnEval: func() {
			if tx.Ready() {
				tx.Push(core.DataWord(n))
				n++
			}
			rx.Pop()
		}})
	}
	return m
}

func benchMeshKernel(b *testing.B, kernel sim.Kernel, rows []int, span int) {
	m := buildStreamMesh(b, kernel, 5, 5, rows, span)
	b.ResetTimer()
	m.Run(b.N)
}

// BenchmarkMeshSparseGatedKernel: 5×5 mesh, two single-hop streams (4 of
// 25 routers configured, the rest idle), gated kernel — the acceptance
// benchmark; must run at least 2× faster than its naive twin.
func BenchmarkMeshSparseGatedKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelGated, []int{0, 2}, 2)
}

// BenchmarkMeshSparseNaiveKernel is the evaluate-everything baseline.
func BenchmarkMeshSparseNaiveKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelNaive, []int{0, 2}, 2)
}

// BenchmarkMeshSparseTracerNilKernel is the disabled-observability twin
// of BenchmarkMeshSparseGatedKernel: the same mesh and streams with the
// tracer hook explicitly threaded through the world as nil — the
// configuration every untraced run uses. The benchdiff -pair gate holds
// it within 2% of its untouched twin in the same bench run, pinning the
// obs layer's zero-overhead-when-disabled contract against host-speed
// drift.
func BenchmarkMeshSparseTracerNilKernel(b *testing.B) {
	m := buildStreamMesh(b, sim.KernelGated, 5, 5, []int{0, 2}, 2, sim.WithTracer(nil))
	b.ResetTimer()
	m.Run(b.N)
}

// BenchmarkMeshDenseGatedKernel: a stream across the full width of every
// row; the quiescence poll runs but almost never skips — the kernel's
// overhead bound.
func BenchmarkMeshDenseGatedKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelGated, []int{0, 1, 2, 3, 4}, 5)
}

// BenchmarkMeshDenseNaiveKernel is the dense baseline.
func BenchmarkMeshDenseNaiveKernel(b *testing.B) {
	benchMeshKernel(b, sim.KernelNaive, []int{0, 1, 2, 3, 4}, 5)
}

// benchScenarioKernel runs a single-router power scenario under the given
// kernel: scenario I (no streams) is the fully idle, fully metered case.
func benchScenarioKernel(b *testing.B, scenario int, k sim.Kernel) {
	sc := traffic.Scenarios()[scenario]
	cfg := traffic.RunConfig{Cycles: b.N, FreqMHz: 25,
		Lib: experiments.Lib(), Kernel: k}
	b.ResetTimer()
	if _, err := traffic.RunCircuit(sc, traffic.Pattern{FlipProb: 0.5, Load: 1}, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScenarioIGatedKernel measures the static-offset scenario under
// the gated kernel: the assembly is quiescent every cycle, only the meter
// tick remains.
func BenchmarkScenarioIGatedKernel(b *testing.B) { benchScenarioKernel(b, 0, sim.KernelGated) }

// BenchmarkScenarioINaiveKernel is its evaluate-everything baseline.
func BenchmarkScenarioINaiveKernel(b *testing.B) { benchScenarioKernel(b, 0, sim.KernelNaive) }

// BenchmarkScenarioIVGatedKernel measures the fully loaded scenario under
// the gated kernel (nothing to skip; overhead bound).
func BenchmarkScenarioIVGatedKernel(b *testing.B) { benchScenarioKernel(b, 3, sim.KernelGated) }

// BenchmarkScenarioIVNaiveKernel is its baseline.
func BenchmarkScenarioIVNaiveKernel(b *testing.B) { benchScenarioKernel(b, 3, sim.KernelNaive) }

// TestSparseMeshSkipRate pins the property behind the benchmark numbers
// deterministically: on the sparse 5×5 mesh (two single-hop streams, 21
// of 25 routers unconfigured) the gated kernel must skip more than 75%
// of all component visits, and the streams must still flow.
func TestSparseMeshSkipRate(t *testing.T) {
	m := buildStreamMesh(t, sim.KernelGated, 5, 5, []int{0, 2}, 2)
	const cycles = 2000
	m.Run(cycles)
	w := m.World()
	total := w.Evals() + w.Skips()
	if total == 0 {
		t.Fatal("no component visits recorded")
	}
	if frac := float64(w.Skips()) / float64(total); frac < 0.75 {
		t.Fatalf("gated kernel skipped only %.0f%% of visits (evals=%d skips=%d)",
			frac*100, w.Evals(), w.Skips())
	}
	for _, y := range []int{0, 2} {
		if got := m.At(mesh.Coord{X: 1, Y: y}).Rx[0].Received(); got == 0 {
			t.Fatalf("row %d delivered nothing under the gated kernel", y)
		}
	}
}

// TestBENetKernelEquivalence drives the best-effort mesh (wormhole
// routers waking each other hop by hop) with bursty random traffic under
// both kernels and compares every delivery timestamp.
func TestBENetKernelEquivalence(t *testing.T) {
	type delivery struct {
		dst  [2]int
		sent uint64
		recv uint64
	}
	run := func(k sim.Kernel) []delivery {
		n := benet.New(4, 4, packetsw.DefaultParams(), sim.WithKernel(k))
		rng := bitvec.NewXorShift64(7)
		var out []delivery
		for c := 0; c < 1500; c++ {
			// A sparse burst roughly every 50 cycles from a random node.
			if rng.Bool(0.02) {
				src := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				dst := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				if src != dst {
					n.Send(benet.Message{Src: src, Dst: dst,
						Payload: []uint16{1, 2, 3, 4}})
				}
			}
			n.Step()
			for _, m := range n.Delivered() {
				out = append(out, delivery{
					dst: [2]int{m.Dst.X, m.Dst.Y}, sent: m.SentCycle, recv: m.RecvCycle,
				})
			}
		}
		return out
	}
	g := run(sim.KernelGated)
	if len(g) == 0 {
		t.Fatal("no deliveries")
	}
	for _, k := range []sim.Kernel{sim.KernelNaive, sim.KernelEvent} {
		o := run(k)
		if len(g) != len(o) {
			t.Fatalf("delivery counts differ: gated %d %v %d", len(g), k, len(o))
		}
		for i := range g {
			if g[i] != o[i] {
				t.Fatalf("delivery %d differs: gated %+v %v %+v", i, g[i], k, o[i])
			}
		}
	}
}

// TestStreamMeshKernelEquivalence: the mesh harness delivers identical
// word counts under all three kernels, for both the sparse and the
// mesh-crossing stream shapes.
func TestStreamMeshKernelEquivalence(t *testing.T) {
	for _, span := range []int{2, 5} {
		counts := func(k sim.Kernel) [2]uint64 {
			m := buildStreamMesh(t, k, 5, 5, []int{0, 2}, span)
			m.Run(2000)
			return [2]uint64{
				m.At(mesh.Coord{X: span - 1, Y: 0}).Rx[0].Received(),
				m.At(mesh.Coord{X: span - 1, Y: 2}).Rx[0].Received(),
			}
		}
		g := counts(sim.KernelGated)
		for _, k := range []sim.Kernel{sim.KernelNaive, sim.KernelEvent} {
			if o := counts(k); g != o {
				t.Fatalf("span %d: kernels disagree: gated %v %v %v", span, g, k, o)
			}
		}
	}
}

// benchFiniteWorkload runs the retired-source finite workload: scenario
// IV with a 100-word budget per stream inside a 20000-cycle window. The
// sources retire within ~600 cycles; the remaining ~97% of the run is
// dead time the event kernel fast-forwards and the others poll through.
func benchFiniteWorkload(b *testing.B, k sim.Kernel) {
	sc := traffic.Scenarios()[3]
	pat := traffic.Pattern{FlipProb: 0.5, Load: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := traffic.RunConfig{Cycles: 20000, FreqMHz: 25,
			Lib: experiments.Lib(), Kernel: k, WordsPerStream: 100}
		if _, err := traffic.RunCircuit(sc, pat, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFiniteWorkloadEventKernel is the acceptance benchmark for the
// event kernel: it must beat its gated twin by at least 5x on this
// workload (see TestFiniteWorkloadFastForward for the deterministic
// counterpart of the claim).
func BenchmarkFiniteWorkloadEventKernel(b *testing.B) { benchFiniteWorkload(b, sim.KernelEvent) }

// BenchmarkFiniteWorkloadGatedKernel is the per-cycle-polling baseline.
func BenchmarkFiniteWorkloadGatedKernel(b *testing.B) { benchFiniteWorkload(b, sim.KernelGated) }

// BenchmarkFiniteWorkloadNaiveKernel is the evaluate-everything baseline.
func BenchmarkFiniteWorkloadNaiveKernel(b *testing.B) { benchFiniteWorkload(b, sim.KernelNaive) }

// benchBEBurst drives the best-effort mesh with a sparse schedule of
// configuration bursts — one 4-word message every 800 cycles over a
// 20000-cycle window — the CCN's reconfiguration traffic shape.
func benchBEBurst(b *testing.B, k sim.Kernel) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := benet.New(4, 4, packetsw.DefaultParams(), sim.WithKernel(k))
		for j := 0; j < 24; j++ {
			src := mesh.Coord{X: j % 4, Y: (j / 4) % 4}
			dst := mesh.Coord{X: 3 - j%4, Y: (j + 1) % 4}
			if src == dst {
				dst.X = (dst.X + 1) % 4
			}
			n.SendAt(uint64(j+1)*800, benet.Message{Src: src, Dst: dst,
				Payload: []uint16{1, 2, 3, 4}})
		}
		n.Run(20000)
		if len(n.Delivered()) != 24 {
			b.Fatal("bursts lost")
		}
	}
}

// BenchmarkBEBurstEventKernel measures the scheduled-burst case the
// ROADMAP names: timer-based wake lets the BE network skip whole idle
// windows between configuration bursts.
func BenchmarkBEBurstEventKernel(b *testing.B) { benchBEBurst(b, sim.KernelEvent) }

// BenchmarkBEBurstGatedKernel is the per-cycle-polling baseline.
func BenchmarkBEBurstGatedKernel(b *testing.B) { benchBEBurst(b, sim.KernelGated) }

// benchPattern16 runs the acceptance pattern workload: a sparse
// (0.05 flits/cycle/node) 16×16 uniform-random pattern whose flows
// retire after 4 words inside a 20000-cycle window. The sources drain
// within the first few hundred cycles; the rest of the run is dead time
// the event kernel fast-forwards while the gated kernel polls all ~700
// components through it. The acceptance claim (event ≥5× gated here)
// is pinned deterministically by TestPatternSparse16x16EventSpeedup in
// the noc package; this benchmark provides the wall-clock numbers for
// the BENCH_ci artifact.
func benchPattern16(b *testing.B, k sim.Kernel) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mesh.RunPattern(mesh.PatternConfig{
			W: 16, H: 16, Cycles: 20000, FreqMHz: 25,
			Lib:       experiments.Lib(),
			Spatial:   pattern.Spatial{Kind: pattern.Uniform},
			Injection: pattern.Injection{Proc: pattern.Bernoulli, Rate: 0.05},
			FlipProb:  0.5, Seed: 9, WordsPerFlow: 4, Kernel: k,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.WordsDelivered == 0 {
			b.Fatal("pattern run delivered nothing")
		}
	}
}

// BenchmarkPattern16x16EventKernel is the event-kernel side of the
// pattern acceptance comparison.
func BenchmarkPattern16x16EventKernel(b *testing.B) { benchPattern16(b, sim.KernelEvent) }

// BenchmarkPattern16x16GatedKernel is the per-cycle-polling baseline.
func BenchmarkPattern16x16GatedKernel(b *testing.B) { benchPattern16(b, sim.KernelGated) }

// benchPatternHotspot runs the admission-limited sparse hotspot
// pattern under the given kernel: hotspot:1 routes every flow at the
// mesh centre, whose lanes admit only a handful, so most of the mesh
// holds no circuit and latches asleep. The continuous low-rate
// injection never drains, so the event kernel cannot fast-forward and
// must poll the full component sweep every cycle — while the active
// kernel parks the dormant assemblies and sweeps only the live rim.
// TestPatternSparse16x16ActivePolls (noc package) pins the ≥5× poll
// reduction deterministically; these benchmarks record the wall-clock
// counterpart at both mesh scales.
func benchPatternHotspot(b *testing.B, w, h, cycles int, k sim.Kernel, workers int) {
	for i := 0; i < b.N; i++ {
		res, err := mesh.RunPattern(mesh.PatternConfig{
			W: w, H: h, Cycles: cycles, FreqMHz: 25,
			Lib:       experiments.Lib(),
			Spatial:   pattern.Spatial{Kind: pattern.Hotspot, Alpha: 1},
			Injection: pattern.Injection{Proc: pattern.Bernoulli, Rate: 0.05},
			FlipProb:  0.5, Seed: 9, Kernel: k,
			SimWorkers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.WordsDelivered == 0 {
			b.Fatal("pattern run delivered nothing")
		}
	}
}

// BenchmarkHotspot16x16ActiveKernel is the active-kernel side of the
// 16×16 parked-list comparison (worker pool at GOMAXPROCS).
func BenchmarkHotspot16x16ActiveKernel(b *testing.B) {
	benchPatternHotspot(b, 16, 16, 10000, sim.KernelActive, 0)
}

// BenchmarkHotspot16x16EventKernel is its full-sweep baseline.
func BenchmarkHotspot16x16EventKernel(b *testing.B) {
	benchPatternHotspot(b, 16, 16, 10000, sim.KernelEvent, 0)
}

// BenchmarkHotspot64x64ActiveKernel is the acceptance benchmark at the
// large scale: 4096 assemblies, nearly all parked. It must beat its
// event twin by ≥4× wall-clock (the parked list alone delivers that
// serially; the sharded Eval widens it on multi-core runners).
func BenchmarkHotspot64x64ActiveKernel(b *testing.B) {
	benchPatternHotspot(b, 64, 64, 20000, sim.KernelActive, 0)
}

// BenchmarkHotspot64x64ActiveSerialKernel pins the workers=1
// configuration, isolating the parked-list win from the sharding win.
func BenchmarkHotspot64x64ActiveSerialKernel(b *testing.B) {
	benchPatternHotspot(b, 64, 64, 20000, sim.KernelActive, 1)
}

// BenchmarkHotspot64x64EventKernel is the 64×64 full-sweep baseline.
func BenchmarkHotspot64x64EventKernel(b *testing.B) {
	benchPatternHotspot(b, 64, 64, 20000, sim.KernelEvent, 0)
}

// BenchmarkHotspot64x64ShortActiveKernel pins the short-run case where
// setup, not simulation, is the bill: ~4k hotspot flows all probing
// routes to the same saturated centre. The lane allocator's endpoint
// admission check rejects a doomed flow in O(1) instead of walking two
// mesh-radius routes, which cut this benchmark ~3× — the fixed cost
// every cell of a short-cycle sweep pays.
func BenchmarkHotspot64x64ShortActiveKernel(b *testing.B) {
	benchPatternHotspot(b, 64, 64, 500, sim.KernelActive, 1)
}

// benchPatternSource measures one event-scheduled source alone: the
// per-cycle cost of the generator layer itself, per simulated cycle.
func benchPatternSource(b *testing.B, k sim.Kernel, inj pattern.Injection) {
	w := sim.NewWorld(sim.WithKernel(k))
	src := pattern.NewSource(inj, 1, 0, nil)
	src.Emit = func() bool { return true }
	w.Add(src)
	b.ResetTimer()
	w.Run(b.N)
}

// BenchmarkPatternSourcePoissonEventKernel: a sparse Poisson source
// under the event kernel fast-forwards between arrivals.
func BenchmarkPatternSourcePoissonEventKernel(b *testing.B) {
	benchPatternSource(b, sim.KernelEvent, pattern.Injection{Proc: pattern.Poisson, Rate: 0.01})
}

// BenchmarkPatternSourcePoissonGatedKernel polls the same source every
// cycle.
func BenchmarkPatternSourcePoissonGatedKernel(b *testing.B) {
	benchPatternSource(b, sim.KernelGated, pattern.Injection{Proc: pattern.Poisson, Rate: 0.01})
}

// BenchmarkPatternSourceOnOffEventKernel: the bursty two-state process,
// where fast-forward windows alternate with back-to-back bursts.
func BenchmarkPatternSourceOnOffEventKernel(b *testing.B) {
	benchPatternSource(b, sim.KernelEvent, pattern.Injection{Proc: pattern.OnOff, Rate: 0.05, Burstiness: 8})
}

// TestFiniteWorkloadFastForward pins the property behind the ≥5x
// benchmark deterministically, so the claim does not rest on wall-clock
// noise: on the finite workload the event kernel must cover >90% of all
// cycles with fast-forward windows, execute <20% of the gated kernel's
// per-component visits, and still deliver identical results.
func TestFiniteWorkloadFastForward(t *testing.T) {
	sc := traffic.Scenarios()[3]
	pat := traffic.Pattern{FlipProb: 0.5, Load: 1}
	type stats struct {
		ffCycles uint64
		cycles   uint64
		visits   uint64 // components actually visited (evals + per-cycle skips)
		res      traffic.Result
	}
	run := func(k sim.Kernel) stats {
		var st stats
		cfg := traffic.RunConfig{Cycles: 20000, FreqMHz: 25,
			Lib: experiments.Lib(), Kernel: k, WordsPerStream: 100,
			Observe: func(w *sim.World) {
				_, st.ffCycles = w.FastForwards()
				st.cycles = w.Cycle()
				st.visits = w.Evals() + w.Skips() - st.ffCycles*uint64(w.Components())
			}}
		res, err := traffic.RunCircuit(sc, pat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.res = res
		return st
	}
	ev, gt := run(sim.KernelEvent), run(sim.KernelGated)
	if !reflect.DeepEqual(ev.res, gt.res) {
		t.Fatalf("kernels disagree:\nevent: %+v\ngated: %+v", ev.res, gt.res)
	}
	if frac := float64(ev.ffCycles) / float64(ev.cycles); frac < 0.9 {
		t.Fatalf("event kernel fast-forwarded only %.0f%% of the run (%d of %d cycles)",
			frac*100, ev.ffCycles, ev.cycles)
	}
	if ev.visits*5 > gt.visits {
		t.Fatalf("event kernel visited %d component slots, gated %d — less than the 5x reduction the benchmark claims",
			ev.visits, gt.visits)
	}
}
