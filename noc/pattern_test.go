package noc

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// patternScenario is the shared small pattern run of these tests.
func patternScenario() Scenario {
	return Scenario{
		Name: "pat", Pattern: "hotspot:0.6", MeshWidth: 4, MeshHeight: 4,
		Cycles: 2500, Seed: 3,
		Injection: &Injection{Process: "poisson", Rate: 0.05},
	}
}

// runJSON runs the scenario on the fabric and returns the Result JSON.
func runJSON(t *testing.T, f Fabric, sc Scenario) []byte {
	t.Helper()
	r, err := f.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPatternScenarioAllFabrics: a pattern scenario runs on all three
// fabrics and produces traffic, power and latency.
func TestPatternScenarioAllFabrics(t *testing.T) {
	sim, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.Run(patternScenario())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.WordsDelivered == 0 {
			t.Errorf("%s: nothing delivered", r.Fabric)
		}
		if r.Power == nil || r.Power.TotalUW <= 0 {
			t.Errorf("%s: no power estimate", r.Fabric)
		}
		if r.Latency == nil || r.Latency.Words == 0 {
			t.Errorf("%s: no latency measurement", r.Fabric)
		}
		if r.FlowsRequested == 0 || r.FlowsEstablished == 0 {
			t.Errorf("%s: no flows (%d/%d)", r.Fabric, r.FlowsEstablished, r.FlowsRequested)
		}
	}
	// The hotspot pattern on a circuit fabric is admission-limited:
	// some flows must be rejected, and the packet fabric admits all.
	if rs[0].FlowsEstablished >= rs[0].FlowsRequested {
		t.Errorf("circuit admitted all %d hotspot flows; expected lane blocking", rs[0].FlowsRequested)
	}
}

// TestPatternKernelEquivalence: pattern runs are byte-identical across
// the three kernels on every fabric.
func TestPatternKernelEquivalence(t *testing.T) {
	sc := patternScenario()
	build := []func(...Option) Fabric{CircuitSwitched, PacketSwitched, AetherealTDM}
	for _, mk := range build {
		naive := runJSON(t, mk(WithKernel(KernelNaive)), sc)
		gated := runJSON(t, mk(WithKernel(KernelGated)), sc)
		event := runJSON(t, mk(WithKernel(KernelEvent)), sc)
		active1 := runJSON(t, mk(WithKernel(KernelActive), WithParallelism(1)), sc)
		active8 := runJSON(t, mk(WithKernel(KernelActive), WithParallelism(8)), sc)
		kind := mk().Kind()
		if !bytes.Equal(naive, gated) {
			t.Errorf("%s: naive vs gated results differ", kind)
		}
		if !bytes.Equal(naive, event) {
			t.Errorf("%s: naive vs event results differ", kind)
		}
		if !bytes.Equal(naive, active1) {
			t.Errorf("%s: naive vs active results differ", kind)
		}
		if !bytes.Equal(active1, active8) {
			t.Errorf("%s: active results differ between 1 and 8 workers", kind)
		}
	}
}

// TestPatternSparse16x16EventSpeedup is the acceptance check of the
// pattern subsystem: a sparse-injection (0.05 flits/cycle/node, under
// the 0.1 ceiling) 16×16 uniform pattern with finite flows must (a)
// produce byte-identical Results under naive, gated and event kernels
// and (b) cut the event kernel's per-cycle component visits at least
// 5× below the gated kernel's, via fast-forward. The visit count is a
// deterministic proxy for wall-clock speed — the wall-clock comparison
// lives in the pattern kernel benchmarks (BENCH_ci).
func TestPatternSparse16x16EventSpeedup(t *testing.T) {
	sc := Scenario{
		Name: "sparse16", Pattern: "uniform", MeshWidth: 16, MeshHeight: 16,
		Cycles: 20000, Seed: 9, WordsPerStream: 4,
		Injection: &Injection{Process: "bernoulli", Rate: 0.05},
	}
	naive := runJSON(t, CircuitSwitched(WithKernel(KernelNaive)), sc)
	gated := runJSON(t, CircuitSwitched(WithKernel(KernelGated)), sc)
	event := runJSON(t, CircuitSwitched(WithKernel(KernelEvent)), sc)
	if !bytes.Equal(naive, gated) {
		t.Error("naive vs gated results differ")
	}
	if !bytes.Equal(naive, event) {
		t.Error("naive vs event results differ")
	}

	// Work proxy: the gated kernel visits every component every cycle
	// (to poll quiescence); the event kernel only visits components on
	// live cycles plus one O(components) replay per fast-forward
	// window.
	var ffWindows, ffCycles, cycles uint64
	r, err := CircuitSwitched(WithKernel(KernelEvent), withWorldObserver(func(w *sim.World) {
		ffWindows, ffCycles = w.FastForwards()
		cycles = w.Cycle()
	})).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.WordsSent == 0 || r.WordsDelivered != r.WordsSent {
		t.Fatalf("finite run did not drain: sent %d delivered %d", r.WordsSent, r.WordsDelivered)
	}
	if cycles == 0 {
		t.Fatal("observer saw no cycles")
	}
	gatedVisits := float64(cycles)
	eventVisits := float64(cycles-ffCycles) + float64(ffWindows)
	if speedup := gatedVisits / eventVisits; speedup < 5 {
		t.Errorf("event kernel visit reduction %.1fx < 5x (ff %d cycles in %d windows of %d)",
			speedup, ffCycles, ffWindows, cycles)
	}
}

// TestPatternSparse16x16ActivePolls is the acceptance check of the
// active kernel's parked list: on the same sparse 16×16 pattern run it
// must (a) stay byte-identical to the event kernel, (b) actually park
// and re-activate components, and (c) issue at most a fifth of the
// event kernel's Quiescent() polls — the event kernel re-polls every
// component on every live cycle, the active kernel only polls the
// active list. The all-to-hotspot pattern is admission-limited on the
// circuit fabric: only the few flows that win lanes into the centre
// establish, so most of the mesh holds no circuit, latches asleep
// (sim.Sleeper) and parks, while the sustained low-rate injection keeps
// the event kernel from ever fast-forwarding past the live circuits.
// The poll count is a deterministic proxy for wall-clock speed; the
// measured comparison lives in the pattern kernel benchmarks
// (BENCH_active).
func TestPatternSparse16x16ActivePolls(t *testing.T) {
	sc := Scenario{
		Name: "sparse16", Pattern: "hotspot:1", MeshWidth: 16, MeshHeight: 16,
		Cycles: 5000, Seed: 9,
		Injection: &Injection{Process: "bernoulli", Rate: 0.05},
	}
	event, err := CircuitSwitched(WithKernel(KernelEvent)).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	active, err := CircuitSwitched(WithKernel(KernelActive)).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	be, err := json.Marshal(event)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := json.Marshal(active)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(be, ba) {
		t.Errorf("event vs active results differ\n%s\n%s", be, ba)
	}
	if event.Kernel == nil || active.Kernel == nil {
		t.Fatal("runs attached no kernel diagnostics")
	}
	if active.Kernel.Parked == 0 {
		t.Error("active kernel run ended with nothing parked")
	}
	if active.Kernel.Activations == 0 {
		t.Error("active kernel run performed no activations")
	}
	if ep, ap := event.Kernel.Polls, active.Kernel.Polls; ap*5 > ep {
		t.Errorf("active kernel polls %d > 1/5 of event kernel polls %d (%.1fx reduction)",
			ap, ep, float64(ep)/float64(ap))
	}
}

// TestSweepActiveWorkerCountByteIdentical pins the worker-count
// determinism contract at the sweep level, the same comparison the CI
// -simworkers byte-compare job performs with nocbench: one sweep spec
// run under the active kernel with 1 and 8 Eval workers must emit
// byte-identical JSON.
func TestSweepActiveWorkerCountByteIdentical(t *testing.T) {
	spec := SweepSpec{
		Name:    "active-workers",
		Fabrics: []FabricSpec{{Kind: KindCircuit}, {Kind: KindPacket}, {Kind: KindTDM}},
		Grid: &Grid{
			Patterns:       []string{"uniform", "transpose"},
			MeshSizes:      []int{4},
			InjectionRates: []float64{0.05},
			Cycles:         []int{1500},
		},
		Kernel: string(KernelActive),
		Seed:   7,
	}
	var out1, out8 bytes.Buffer
	spec.SimWorkers = 1
	if err := SweepJSON(context.Background(), spec, &out1); err != nil {
		t.Fatal(err)
	}
	spec.SimWorkers = 8
	if err := SweepJSON(context.Background(), spec, &out8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out8.Bytes()) {
		t.Errorf("sweep JSON differs between 1 and 8 workers\n%s\n%s",
			out1.Bytes(), out8.Bytes())
	}
	if out1.Len() == 0 {
		t.Fatal("sweep emitted nothing")
	}
}

// TestTDMPowerIdenticalAcrossKernels verifies the folded meter tick:
// with the every-cycle meter Func replaced by the router's own
// IdleTick/IdleWindow bookkeeping, TDM power totals stay bit-identical
// across all three kernels on classic stream scenarios — including a
// finite run whose drained tail the event kernel fast-forwards.
func TestTDMPowerIdenticalAcrossKernels(t *testing.T) {
	base, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	base.Cycles = 4000
	finite := base
	finite.WordsPerStream = 50
	for _, sc := range []Scenario{base, finite} {
		naive := runJSON(t, AetherealTDM(WithKernel(KernelNaive)), sc)
		gated := runJSON(t, AetherealTDM(WithKernel(KernelGated)), sc)
		event := runJSON(t, AetherealTDM(WithKernel(KernelEvent)), sc)
		if !bytes.Equal(naive, gated) || !bytes.Equal(naive, event) {
			t.Errorf("words_per_stream=%d: TDM results differ across kernels", sc.WordsPerStream)
		}
	}
}

// TestTDMFiniteRunFastForwards: with the meter tick folded into the
// router and stream drivers componentized, a drained TDM scenario
// fast-forwards (the ROADMAP's "TDM meter tick without a monitor").
func TestTDMFiniteRunFastForwards(t *testing.T) {
	sc, err := PaperScenario("II")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 50000
	sc.WordsPerStream = 20
	var ffCycles uint64
	_, err = AetherealTDM(WithKernel(KernelEvent), withWorldObserver(func(w *sim.World) {
		_, ffCycles = w.FastForwards()
	})).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if float64(ffCycles) < 0.8*float64(sc.Cycles) {
		t.Errorf("TDM finite run fast-forwarded only %d of %d cycles", ffCycles, sc.Cycles)
	}
}

// TestPatternSweepDeterminism: a pattern grid sweep is byte-identical
// across worker counts and across kernels.
func TestPatternSweepDeterminism(t *testing.T) {
	spec := SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindCircuit}, {Kind: KindPacket}, {Kind: KindTDM}},
		Grid: &Grid{
			Patterns:       []string{"hotspot", "transpose"},
			MeshSizes:      []int{4},
			InjectionRates: []float64{0.02, 0.08},
			Cycles:         []int{1200},
		},
		Seed: 5,
	}
	out := func(workers int, kernel string) []byte {
		s := spec
		s.Workers = workers
		s.Kernel = kernel
		var buf bytes.Buffer
		if err := SweepJSON(context.Background(), s, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1 := out(1, "")
	w8 := out(8, "")
	if !bytes.Equal(w1, w8) {
		t.Error("pattern sweep differs between 1 and 8 workers")
	}
	for _, k := range []string{"gated", "naive"} {
		if !bytes.Equal(w1, out(4, k)) {
			t.Errorf("pattern sweep differs between event and %s kernels", k)
		}
	}
	if !bytes.Contains(w1, []byte(`"pattern"`)) {
		t.Error("sweep output carries no pattern field")
	}
}

// TestPatternSweepBurstinessAxis: the burstiness axis switches cells to
// the on-off process and expands the grid.
func TestPatternSweepBurstinessAxis(t *testing.T) {
	spec := SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindPacket}},
		Grid: &Grid{
			Patterns:   []string{"uniform"},
			Burstiness: []float64{2, 8},
			Cycles:     []int{800},
		},
		Seed: 1,
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Scenario.Injection == nil || c.Scenario.Injection.Process != "onoff" {
			t.Errorf("cell %d: burstiness axis did not select onoff (%+v)", c.Index, c.Scenario.Injection)
		}
	}
	// The struct entry point takes the same onoff burstiness default as
	// the string parser, so the equivalent JSON spec validates too.
	sc := Scenario{Pattern: "uniform", Injection: &Injection{Process: "onoff", Rate: 0.1}}
	if err := sc.withDefaults().Validate(); err != nil {
		t.Errorf("onoff without burstiness rejected on the struct path: %v", err)
	}
	// Axis misuse fails loudly.
	bad := SweepSpec{Grid: &Grid{Burstiness: []float64{2}}}
	if err := bad.Validate(); err == nil {
		t.Error("burstiness without patterns accepted")
	}
	bad = SweepSpec{Grid: &Grid{Patterns: []string{"uniform"}, Workloads: []string{"drm"}}}
	if err := bad.Validate(); err == nil {
		t.Error("patterns+workloads accepted")
	}
}
