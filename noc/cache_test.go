package noc

import (
	"bytes"
	"context"
	"testing"
)

// withTestFingerprint pins the code-version fingerprint for the test's
// duration so golden keys do not depend on the build.
func withTestFingerprint(t *testing.T, fp string) {
	t.Helper()
	old := fingerprintOverride
	fingerprintOverride = fp
	t.Cleanup(func() { fingerprintOverride = old })
}

// cacheTestScenario is the representative cell: a defaulted paper
// scenario with an explicit seed, exactly what a sweep hands a fabric.
func cacheTestScenario(t *testing.T) Scenario {
	t.Helper()
	sc, err := PaperScenario("I")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 42
	return sc.withDefaults()
}

// TestCacheKeyGolden pins the content addresses of representative cells.
// A change here means every existing cache is invalidated — deliberate
// when the key material changes, an accident otherwise. Update the
// goldens (and bump cacheKeySchema when the material layout changed)
// only with that in mind.
func TestCacheKeyGolden(t *testing.T) {
	withTestFingerprint(t, "test-fingerprint-1")
	sc := cacheTestScenario(t)
	pat := Scenario{Name: "pat", Pattern: "uniform", Seed: 7}.withDefaults()

	golden := []struct {
		name string
		key  string
	}{
		{"circuit-I", cellKey(KindCircuit, makeConfig(nil), sc).String()},
		{"packet-I", cellKey(KindPacket, makeConfig(nil), sc).String()},
		{"tdm-I", cellKey(KindTDM, makeConfig(nil), sc).String()},
		{"circuit-pattern", cellKey(KindCircuit, makeConfig(nil), pat).String()},
		{"circuit-warm-prefix", warmPrefixKey(KindCircuit, makeConfig(nil), pat).String()},
	}
	want := map[string]string{
		"circuit-I":           "24cc213b20a4de6eacf8fa27ff8907b8102fea93beaac274fec29ebef74c2d09",
		"packet-I":            "4f9892cf8ee7402e6249d39ba0698e61c9e1baec288b3494c5b94fae95c970d8",
		"tdm-I":               "530d8e6cd451c3de6b66ee1c0bcc58880d68a88bfa182436f1d0664f7c7ff197",
		"circuit-pattern":     "480af403790f62662cfcd15be98c9d010b7c168d0401cc97630d0573562b006d",
		"circuit-warm-prefix": "21fa946d2fc714cd382cc1c50d320ebf7790f13ed6c3d5c0d88e7aaf58fb10c5",
	}
	for _, g := range golden {
		if g.key != want[g.name] {
			t.Errorf("%s: key %s, want %s", g.name, g.key, want[g.name])
		}
	}
}

// TestCacheKeySensitivity: every result-relevant input — scenario
// fields, seed, fabric knobs, kind, fingerprint — must change the key;
// the kernel and worker count must not (results are byte-identical
// across them, so a result computed under one serves the others).
func TestCacheKeySensitivity(t *testing.T) {
	withTestFingerprint(t, "test-fingerprint-1")
	base := cacheTestScenario(t)
	baseKey := cellKey(KindCircuit, makeConfig(nil), base)

	mutations := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"seed", func(sc *Scenario) { sc.Seed++ }},
		{"cycles", func(sc *Scenario) { sc.Cycles++ }},
		{"freq", func(sc *Scenario) { sc.FreqMHz += 1 }},
		{"load", func(sc *Scenario) { sc.Data.Load += 0.01 }},
		{"flip", func(sc *Scenario) { sc.Data.FlipProb += 0.01 }},
		{"name", func(sc *Scenario) { sc.Name += "x" }},
		{"words", func(sc *Scenario) { sc.WordsPerStream += 5 }},
		{"warmup", func(sc *Scenario) { sc.WarmupCycles = 100 }},
		{"warmup-auto", func(sc *Scenario) { sc.WarmupAuto = true }},
		{"pool-latency", func(sc *Scenario) { sc.poolLatency = true }},
	}
	seen := map[string]string{baseKey.String(): "base"}
	for _, m := range mutations {
		sc := base
		m.mut(&sc)
		k := cellKey(KindCircuit, makeConfig(nil), sc).String()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", m.name, prev)
		}
		seen[k] = m.name
	}

	cfgMutations := []struct {
		name string
		opts []Option
	}{
		{"lanes", []Option{WithLanes(2)}},
		{"lane-width", []Option{WithLaneWidth(4)}},
		{"vcs", []Option{WithVirtualChannels(2)}},
		{"buffer-depth", []Option{WithBufferDepth(4)}},
		{"slots", []Option{WithSlots(16)}},
		{"gating", []Option{WithClockGating(true)}},
		{"corner", []Option{WithLibraryCorner("hvt")}},
		{"latency-words", []Option{WithLatencyWords(10)}},
	}
	for _, m := range cfgMutations {
		k := cellKey(KindCircuit, makeConfig(m.opts), base).String()
		if prev, dup := seen[k]; dup {
			t.Errorf("config mutation %q collides with %q", m.name, prev)
		}
		seen[k] = "cfg:" + m.name
	}

	if k := cellKey(KindPacket, makeConfig(nil), base); k == baseKey {
		t.Error("fabric kind does not change the key")
	}
	withTestFingerprint(t, "test-fingerprint-2")
	if k := cellKey(KindCircuit, makeConfig(nil), base); k == baseKey {
		t.Error("code fingerprint does not change the key")
	}
	withTestFingerprint(t, "test-fingerprint-1")

	// Deliberate exclusions: kernel and worker count.
	if k := cellKey(KindCircuit, makeConfig([]Option{WithKernel(KernelNaive)}), base); k != baseKey {
		t.Error("kernel choice changes the key; cross-kernel byte-identity makes it shareable")
	}
	if k := cellKey(KindCircuit, makeConfig([]Option{WithParallelism(4)}), base); k != baseKey {
		t.Error("worker bound changes the key; results are byte-identical at any worker count")
	}
}

// TestResultEnvelopeRoundTrip: the stored form reproduces the wire
// bytes exactly and reattaches the off-wire latency samples.
func TestResultEnvelopeRoundTrip(t *testing.T) {
	f := CircuitSwitched()
	sc := cacheTestScenario(t)
	sc.poolLatency = true
	res, err := f.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := encodeResultEnvelope(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeResultEnvelope(enc)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("decoded result's JSON differs from the original")
	}
	if res.Latency != nil {
		if got, want := len(back.Latency.Samples), len(res.Latency.Samples); got != want {
			t.Fatalf("reattached %d samples, want %d", got, want)
		}
	}
}

// TestFabricRunCached: the façade-level cache serves a repeat run
// byte-identically and reports hit/miss through Result.CacheStats.
func TestFabricRunCached(t *testing.T) {
	withTestFingerprint(t, "test-fingerprint-run")
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc := cacheTestScenario(t)
	for _, f := range []Fabric{CircuitSwitched(), PacketSwitched(), AetherealTDM()} {
		f.(cacheSettable).setCache(cache)
		first, err := f.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", f.Kind(), err)
		}
		if first.CacheStats == nil || first.CacheStats.Hit {
			t.Fatalf("%s: first run CacheStats %+v, want miss", f.Kind(), first.CacheStats)
		}
		second, err := f.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", f.Kind(), err)
		}
		if second.CacheStats == nil || !second.CacheStats.Hit {
			t.Fatalf("%s: second run CacheStats %+v, want hit", f.Kind(), second.CacheStats)
		}
		if second.CacheStats.Key != first.CacheStats.Key {
			t.Fatalf("%s: key changed between runs", f.Kind())
		}
		j1, _ := first.JSON()
		j2, _ := second.JSON()
		if !bytes.Equal(j1, j2) {
			t.Fatalf("%s: cached result differs from fresh run", f.Kind())
		}
	}
}

// cacheSweepSpec is the sweep used by the cold/warm byte-compare: a
// pattern grid (exercising the warm-start path on the circuit fabric)
// over all three fabrics, with a replicated axis.
func cacheSweepSpec(workers int, dir string) SweepSpec {
	return SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindCircuit}, {Kind: KindPacket}, {Kind: KindTDM}},
		Grid: &Grid{
			Patterns: []string{"uniform"},
			Loads:    []float64{0.2, 0.5},
			Cycles:   []int{800},
		},
		Seed:     99,
		Workers:  workers,
		Cache:    true,
		CacheDir: dir,
	}
}

// TestSweepCacheColdWarmByteCompare is the tentpole acceptance test:
// sweep output must be byte-identical across cache-off, cache-cold and
// cache-warm runs, at worker counts 1 and 8, and the warm run must
// actually hit.
func TestSweepCacheColdWarmByteCompare(t *testing.T) {
	withTestFingerprint(t, "test-fingerprint-sweep")
	dir := t.TempDir()
	ctx := context.Background()

	baseline := cacheSweepSpec(1, dir)
	baseline.Cache, baseline.CacheDir = false, ""
	var off bytes.Buffer
	if err := SweepJSON(ctx, baseline, &off); err != nil {
		t.Fatal(err)
	}

	var cold bytes.Buffer
	if err := SweepJSON(ctx, cacheSweepSpec(1, dir), &cold); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Bytes(), cold.Bytes()) {
		t.Fatal("cold cached sweep differs from cache-disabled sweep")
	}

	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Counters()
	if before.Puts == 0 {
		t.Fatal("cold sweep stored nothing")
	}

	for _, workers := range []int{1, 8} {
		var warm bytes.Buffer
		if err := SweepJSON(ctx, cacheSweepSpec(workers, dir), &warm); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(off.Bytes(), warm.Bytes()) {
			t.Fatalf("warm sweep (workers=%d) differs from cache-disabled sweep", workers)
		}
	}
	after := cache.Counters()
	if after.Hits <= before.Hits {
		t.Fatalf("warm sweeps did not hit (hits %d -> %d)", before.Hits, after.Hits)
	}
	if after.Puts != before.Puts {
		t.Fatalf("warm sweeps stored new entries (puts %d -> %d)", before.Puts, after.Puts)
	}
}

// TestSweepCacheReplications: a replicated sweep caches each
// replication individually, so raising the count only computes the new
// tail — and output stays byte-identical to an uncached run.
func TestSweepCacheReplications(t *testing.T) {
	withTestFingerprint(t, "test-fingerprint-reps")
	dir := t.TempDir()
	ctx := context.Background()

	spec := cacheSweepSpec(2, dir)
	spec.Replications = 2
	spec.Grid = &Grid{Patterns: []string{"uniform"}, Cycles: []int{600}}
	if err := SweepJSON(ctx, spec, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Counters()

	spec.Replications = 3
	var warm, off bytes.Buffer
	if err := SweepJSON(ctx, spec, &warm); err != nil {
		t.Fatal(err)
	}
	after := cache.Counters()
	if after.Hits <= before.Hits {
		t.Fatal("replication extension did not reuse cached replications")
	}

	plain := spec
	plain.Cache, plain.CacheDir = false, ""
	if err := SweepJSON(ctx, plain, &off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Bytes(), warm.Bytes()) {
		t.Fatal("replicated cached sweep differs from cache-disabled sweep")
	}
}
