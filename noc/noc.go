// Package noc is the public façade of the reproduction: one Simulator
// that runs a Scenario over any of the paper's three network fabrics —
// the proposed lane-division circuit-switched router, the packet-switched
// virtual-channel baseline and the Æthereal-style TDM comparator — and
// returns structured, JSON-marshalable Results (latency distribution,
// throughput, power breakdown).
//
// The three fabrics are interchangeable implementations of the Fabric
// interface, built by CircuitSwitched, PacketSwitched and AetherealTDM
// and tuned with functional options (WithLanes, WithBufferDepth,
// WithClockGating, ...). Invalid option combinations surface as errors
// from Fabric.Validate, which NewSimulator and Run call for you:
//
//	sim, err := noc.NewSimulator(
//		noc.CircuitSwitched(noc.WithClockGating(true)),
//		noc.PacketSwitched(noc.WithBufferDepth(4)),
//		noc.AetherealTDM(),
//	)
//	if err != nil { ... }
//	sc, _ := noc.PaperScenario("IV")
//	results, err := sim.Run(sc)
//
// A Scenario is one of the paper's single-router test scenarios
// (Table 3 streams, Fig. 8 combinations), a mesh workload run that maps
// whole wireless applications (HiperLAN/2, UMTS, DRM) onto a W×H NoC
// via the Central Coordination Node, or a synthetic traffic-pattern run
// (Scenario.Pattern/Injection: spatial patterns like uniform-random,
// transpose or hotspot crossed with stochastic injection processes —
// CBR, Bernoulli, Poisson, bursty on-off) — see Scenario, Patterns and
// InjectionProcesses.
//
// Batch comparisons are first class: Sweep executes a SweepSpec — a
// set of fabric configurations crossed with an explicit scenario list
// or a cartesian parameter grid — across a bounded worker pool and
// streams typed SweepCells in deterministic order, with JSON and CSV
// encoders (SweepJSON, SweepCSV). Each cell runs with its own derived
// RNG seed, so sweep output is byte-identical for any worker count.
//
// Beyond simulation, the package exposes the paper's full evaluation:
// Experiments lists every table/figure reproduction, RunExperiment
// renders one as text (RunExperimentsParallel measures many at once)
// and ExperimentData returns its typed result for JSON output;
// RenderSynthTable and friends print the synthesis model (Table 4);
// CaptureWaveform records the lane-level timing diagram the trace
// subsystem produces.
package noc

import (
	"fmt"
)

// Kind identifies a fabric implementation.
type Kind string

const (
	// KindCircuit is the paper's lane-division circuit-switched router.
	KindCircuit Kind = "circuit"
	// KindPacket is the packet-switched virtual-channel baseline.
	KindPacket Kind = "packet"
	// KindTDM is the Æthereal-style slot-table TDM comparator.
	KindTDM Kind = "aethereal"
)

// Fabric is one interchangeable network implementation: it validates its
// configuration and executes Scenarios.
type Fabric interface {
	// Kind identifies the implementation.
	Kind() Kind
	// String describes the fabric and its configuration.
	String() string
	// Validate checks the fabric's option-derived configuration.
	Validate() error
	// Run executes the scenario and returns a populated Result.
	Run(sc Scenario) (*Result, error)
}

// CircuitSwitched returns the paper's proposed fabric: the lane-division
// circuit-switched router (4 lanes × 4 bit per port by default).
// Relevant options: WithLanes, WithLaneWidth, WithClockGating,
// WithLibraryCorner, WithLatencyWords, WithNodeTrace.
func CircuitSwitched(opts ...Option) Fabric {
	return &circuitFabric{cfg: makeConfig(opts)}
}

// PacketSwitched returns the baseline fabric: the packet-switched
// virtual-channel router (4 VCs × 8 flits by default). Relevant options:
// WithVirtualChannels, WithBufferDepth, WithLibraryCorner,
// WithLatencyWords.
func PacketSwitched(opts ...Option) Fabric {
	return &packetFabric{cfg: makeConfig(opts)}
}

// AetherealTDM returns the comparator fabric: the Æthereal-style
// slot-table TDM router (32 slots, 16-word BE FIFOs by default).
// Relevant options: WithSlots, WithBEDepth, WithLibraryCorner.
func AetherealTDM(opts ...Option) Fabric {
	return &tdmFabric{cfg: makeConfig(opts)}
}

// Simulator runs Scenarios over a set of fabrics.
type Simulator struct {
	fabrics []Fabric
}

// NewSimulator returns a simulator over the given fabrics, validating
// each. With no arguments it covers all three fabrics at the paper's
// default configuration.
func NewSimulator(fabrics ...Fabric) (*Simulator, error) {
	if len(fabrics) == 0 {
		fabrics = []Fabric{CircuitSwitched(), PacketSwitched(), AetherealTDM()}
	}
	for _, f := range fabrics {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("noc: fabric %s: %w", f.Kind(), err)
		}
	}
	return &Simulator{fabrics: fabrics}, nil
}

// Fabrics returns the simulator's fabrics in run order.
func (s *Simulator) Fabrics() []Fabric { return s.fabrics }

// Run executes the scenario on every fabric and returns one Result per
// fabric, in the order the fabrics were given.
func (s *Simulator) Run(sc Scenario) ([]*Result, error) {
	var out []*Result
	for _, f := range s.fabrics {
		r, err := f.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("noc: %s: %w", f.Kind(), err)
		}
		out = append(out, r)
	}
	return out, nil
}
