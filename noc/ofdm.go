package noc

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// SymbolStreamResult reports a block-based OFDM streaming run: whether
// whole symbols flow through the mapped front-end channel inside their
// symbol period — the per-deadline form of the guaranteed-throughput
// requirement that aggregate bandwidth alone cannot show.
type SymbolStreamResult struct {
	// Symbols is the number of whole OFDM symbols delivered.
	Symbols int `json:"symbols"`
	// DeadlinesMet counts symbols that arrived within their 4 µs slot
	// (plus the pipeline-fill allowance).
	DeadlinesMet int `json:"deadlines_met"`
	// FramingErrors counts block-boundary violations at the receiver.
	FramingErrors int `json:"framing_errors"`
	// WordsPerSymbol and CyclesPerSymbol echo the symbol geometry: 80
	// complex samples = 160 words, and 800 cycles = 4 µs at 200 MHz.
	WordsPerSymbol  int `json:"words_per_symbol"`
	CyclesPerSymbol int `json:"cycles_per_symbol"`
}

// Met reports whether every symbol met its deadline with clean framing.
func (r SymbolStreamResult) Met() bool {
	return r.DeadlinesMet == r.Symbols && r.FramingErrors == 0
}

// StreamOFDMSymbols maps the HiperLAN/2 baseband pipeline onto a 4×3
// mesh at 200 MHz and streams the given number of OFDM symbols
// block-wise over the mapped front-end channel: 80 complex samples per
// symbol, each 32-bit sample two 16-bit words, so one symbol is 160
// words — and one lane at 200 MHz moves exactly 160 words per 4 µs
// symbol period. It verifies the paper's "each 4 us a new OFDM symbol
// can be processed" deadline for every symbol, not just the average
// rate.
func StreamOFDMSymbols(symbols int) (SymbolStreamResult, error) {
	if symbols < 1 {
		return SymbolStreamResult{}, fmt.Errorf("noc: need at least 1 symbol, have %d", symbols)
	}
	const freqMHz = 200
	graph := apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3])
	m := mesh.New(4, 3, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, freqMHz)
	mp, err := mgr.MapApplication(graph)
	if err != nil {
		return SymbolStreamResult{}, fmt.Errorf("noc: mapping hiperlan2: %w", err)
	}

	// The S/P -> FreqOffset front-end channel carries the raw samples.
	conn := mp.Connections["1"]
	src, dst := m.At(conn.Src), m.At(conn.Dst)
	txLane := conn.Segments[0][0].Circuit.In.Lane
	rxLane := conn.Segments[0][len(conn.Segments[0])-1].Circuit.Out.Lane

	const (
		wordsPerSymbol  = 160 // 80 samples x 2 words
		cyclesPerSymbol = 800 // 4 µs at 200 MHz
		fillAllowance   = 64  // pipeline-fill cycles granted to each deadline
	)
	btx := core.NewBlockTx(src.Tx[txLane])
	brx := core.NewBlockRx(dst.Rx[rxLane])
	res := SymbolStreamResult{WordsPerSymbol: wordsPerSymbol, CyclesPerSymbol: cyclesPerSymbol}
	var runErr error
	nextSymbol := 0
	m.World().Add(&sim.Func{OnEval: func() {
		if btx.Idle() && nextSymbol < symbols {
			symbol := make([]uint16, wordsPerSymbol)
			for i := range symbol {
				symbol[i] = uint16(nextSymbol*wordsPerSymbol + i)
			}
			if btx.Start(symbol) == nil {
				nextSymbol++
			}
		}
		btx.Pump()
		brx.Pump()
		if blk, ok := brx.Pop(); ok {
			res.Symbols++
			if len(blk) != wordsPerSymbol {
				runErr = fmt.Errorf("noc: symbol truncated to %d words", len(blk))
			}
			if m.World().Cycle() <= uint64(cyclesPerSymbol*res.Symbols+fillAllowance) {
				res.DeadlinesMet++
			}
		}
	}})
	m.Run(symbols*cyclesPerSymbol + 200)
	if runErr != nil {
		return res, runErr
	}
	res.FramingErrors = int(brx.FramingErrors())
	return res, nil
}
