package noc

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SignalActivity is the transition count of one probed signal.
type SignalActivity struct {
	// Name identifies the probed wire.
	Name string `json:"name"`
	// Transitions counts value changes over the capture.
	Transitions int `json:"transitions"`
}

// Waveform is a captured lane-level timing diagram: the quicklook of a
// configuration command arriving at a circuit-switched router followed
// by one word serializing across the crossbar.
type Waveform struct {
	// ASCII is the rendered timing diagram (hex lane values, '.' =
	// unchanged).
	ASCII string `json:"ascii"`
	// VCD is the same capture as a Value Change Dump any waveform
	// viewer (e.g. GTKWave) can open.
	VCD []byte `json:"vcd"`
	// Cycles is the capture length.
	Cycles int `json:"cycles"`
	// Signals lists the probes ordered by activity — the same signal
	// changes the power meter charges energy for.
	Signals []SignalActivity `json:"signals"`
}

// CaptureWaveform runs the trace-recorder quicklook: cycle 2 a
// configuration command establishes the circuit Tile.0 → East.0, cycle 6
// a single-word block {V|SOB|EOB, 0xCAFE} is pushed, and the recorder
// probes the transmit converter's lane and the East output lane for 24
// cycles. The word packs to the 20-bit packet 0x7CAFE; the tx lane
// carries nibbles 7,C,A,F,E and the East output repeats them one clock
// edge later (registered crossbar outputs).
func CaptureWaveform() (*Waveform, error) {
	p := core.DefaultParams()
	a := core.NewAssembly(p, core.DefaultAssemblyOptions())

	rec := trace.NewRecorder(64)
	east0 := p.Global(core.LaneID{Port: core.East, Lane: 0})
	rec.Add(
		trace.U8("tx0.lane", p.LaneWidth, &a.Tx[0].Out),
		trace.U8("east0.lane", p.LaneWidth, &a.R.Out[east0]),
	)

	// The activity-tracked kernel: cycles 0–1 are fully quiescent and
	// skipped, the configuration write at cycle 2 wakes the assembly, and
	// the recorder (a plain component, never skipped) still samples every
	// cycle — the capture is identical to the naive kernel's.
	w := sim.NewWorld(sim.WithKernel(sim.KernelGated))
	w.Add(a)

	var setupErr error
	pushed := false
	w.Add(&sim.Func{OnEval: func() {
		switch w.Cycle() {
		case 2:
			if err := a.EstablishLocal(core.Circuit{
				In:  core.LaneID{Port: core.Tile, Lane: 0},
				Out: core.LaneID{Port: core.East, Lane: 0},
			}); err != nil {
				setupErr = err
			}
		case 6:
			if !pushed {
				a.Tx[0].Push(core.Word{
					Hdr:  core.HdrValid | core.HdrSOB | core.HdrEOB,
					Data: 0xCAFE,
				})
				pushed = true
			}
		}
	}})
	w.Add(rec) // last: samples post-edge values
	const cycles = 24
	w.Run(cycles)
	if setupErr != nil {
		return nil, setupErr
	}

	var ascii bytes.Buffer
	if err := rec.RenderASCII(&ascii, 0, cycles); err != nil {
		return nil, err
	}
	var vcd bytes.Buffer
	if err := rec.WriteVCD(&vcd, "quicklook", "40ns"); err != nil { // 25 MHz
		return nil, err
	}

	out := &Waveform{
		ASCII:  ascii.String(),
		VCD:    vcd.Bytes(),
		Cycles: rec.Cycles(),
	}
	for _, name := range rec.MostActive() {
		n, err := rec.Changes(name)
		if err != nil {
			return nil, err
		}
		out.Signals = append(out.Signals, SignalActivity{Name: name, Transitions: n})
	}
	return out, nil
}
