package noc

import (
	"fmt"

	"repro/internal/aethereal"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// tdmFabric implements Fabric with the Æthereal-style slot-table TDM
// router of Table 4.
type tdmFabric struct {
	cfg config
}

// Kind implements Fabric.
func (f *tdmFabric) Kind() Kind { return KindTDM }

// String implements Fabric.
func (f *tdmFabric) String() string {
	p := f.cfg.tdmParams()
	return fmt.Sprintf("Aethereal TDM (%d slots, %d-word BE FIFOs)", p.Slots, p.BEDepth)
}

// Validate implements Fabric.
func (f *tdmFabric) Validate() error { return f.cfg.validate(KindTDM) }

// Run implements Fabric. Each stream is given a contention-free
// guaranteed-throughput reservation in the slot table whose bandwidth
// share matches one circuit-switched lane (the scenarios' "100% load of
// a single lane"), then words are streamed through the reservations and
// metered. Workload scenarios are not supported.
func (f *tdmFabric) Run(sc Scenario) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.IsWorkload() {
		return nil, fmt.Errorf("noc: the Aethereal TDM fabric does not support workload scenarios (use CircuitSwitched)")
	}
	p := f.cfg.tdmParams()
	lib := f.cfg.mustLib()

	// One stream per input port: the functional model registers one
	// upstream word per port, like the real router's input stage.
	seenIn := map[Port]bool{}
	for _, st := range sc.Streams {
		if seenIn[st.In] {
			return nil, fmt.Errorf("noc: TDM fabric: two streams enter on port %v", st.In)
		}
		seenIn[st.In] = true
	}

	r := aethereal.NewRouter(p)
	// A circuit-switched lane moves one 16-bit word per 5 cycles; the
	// functional TDM model forwards one word per reserved slot, so
	// matching that rate takes a fifth of the table, rounded up (the
	// 32-bit link has bandwidth to spare — the slot count, not the link
	// width, is the limit).
	const wordPeriod = 5
	slotsNeeded := (p.Slots + wordPeriod - 1) / wordPeriod
	if slotsNeeded < 1 {
		slotsNeeded = 1
	}
	type reservation struct {
		in, out int
		slots   []int
	}
	var reservations []reservation
	for _, st := range sc.Streams {
		in, out := int(st.In), int(st.Out)
		rv := reservation{in: in, out: out}
		// Spread the reservation over the table, probing linearly past
		// occupied entries; an input may only feed one output per slot.
		stride := p.Slots / slotsNeeded
		for k := 0; k < slotsNeeded; k++ {
			booked := false
			for probe := 0; probe < p.Slots; probe++ {
				s := (k*stride + probe) % p.Slots
				if r.Table.Entry(s, out) != aethereal.NoInput {
					continue
				}
				if inputBusy(r.Table, p, s, in) {
					continue
				}
				if err := r.Table.Reserve(s, in, out); err != nil {
					return nil, err
				}
				rv.slots = append(rv.slots, s)
				booked = true
				break
			}
			if !booked {
				return nil, fmt.Errorf("noc: TDM fabric: slot table full for stream %d (%d slots, %d streams)",
					st.ID, p.Slots, len(sc.Streams))
			}
		}
		reservations = append(reservations, rv)
	}
	if err := r.Table.Validate(); err != nil {
		return nil, err
	}

	meter := power.NewMeter(aethereal.Netlist(p, lib), lib, sc.FreqMHz)
	w := sim.NewWorld(sim.WithKernel(f.cfg.simKernel()))
	w.Add(r)

	// The average toggling bits per forwarded word under the pattern's
	// flip probability, split over register, crossbar and link nets.
	toggleBits := int(sc.Pattern.FlipProb*wordBits + 0.5)

	var (
		sources []*traffic.Source
		lat     stats.Series

		delivered uint64
	)
	pat := traffic.Pattern{FlipProb: sc.Pattern.FlipProb, Load: sc.Pattern.Load}
	for i, st := range sc.Streams {
		rv := reservations[i]
		src := traffic.NewSourceSeeded(pat, st.ID, sc.Seed)
		sources = append(sources, src)

		data := new(uint32)
		valid := new(bool)
		r.ConnectIn(rv.in, data, valid)

		reserved := make([]bool, p.Slots)
		for _, s := range rv.slots {
			reserved[s] = true
		}
		type pending struct {
			word  uint32
			cycle uint64
		}
		var queue, inFlight []pending
		out := rv.out
		in := rv.in
		w.Add(&sim.Func{OnEval: func() {
			// Observe the registered output first: the value visible
			// now was committed from the previous cycle's slot. A word
			// only counts as delivered — and only then records its
			// latency and pays its toggle energy — once it has actually
			// crossed the crossbar into the output register.
			prev := (r.Slot() - 1 + p.Slots) % p.Slots
			if r.OutValid[out] && r.Table.Entry(prev, out) == in && len(inFlight) > 0 {
				head := inFlight[0]
				inFlight = inFlight[1:]
				delivered++
				lat.Add(float64(w.Cycle() - head.cycle))
				meter.AddToggles(power.ToggleReg, toggleBits)
				meter.AddToggles(power.ToggleGate, toggleBits)
				meter.AddToggles(power.ToggleLink, toggleBits)
			}
			// Offer words at the lane rate, gated by the load knob. A
			// retired source (word budget exhausted) stops drawing from
			// the load gate, mirroring the other fabrics' runners.
			if w.Cycle()%wordPeriod == 0 &&
				(sc.WordsPerStream == 0 || src.Sent() < sc.WordsPerStream) {
				if word, ok := src.Offer(); ok {
					queue = append(queue, pending{word: uint32(word.Data), cycle: w.Cycle()})
				}
			}
			// The router's next Eval uses the slot after the current
			// one; present a word iff that slot is ours.
			*valid = false
			upcoming := (r.Slot() + 1) % p.Slots
			if reserved[upcoming] && len(queue) > 0 {
				head := queue[0]
				queue = queue[1:]
				*data = head.word
				*valid = true
				inFlight = append(inFlight, head)
			}
		}})
	}
	w.Add(&sim.Func{OnEval: meter.Tick})

	w.Run(sc.Cycles)

	breakdown := meter.Report("aethereal / scenario " + sc.Name)
	res := &Result{
		Fabric:         KindTDM,
		Scenario:       sc.Name,
		FreqMHz:        sc.FreqMHz,
		Cycles:         sc.Cycles,
		WordsDelivered: delivered,
		ThroughputMbps: stats.Rate(delivered, wordBits, uint64(sc.Cycles), sc.FreqMHz),
		Power:          powerFrom(breakdown),
		PerComponent:   attributionComponents(meter.AttributionSorted(), breakdown.StaticUW),
		Latency:        latencyFrom(lat),
	}
	for _, s := range sources {
		res.WordsSent += s.Sent()
	}
	return res, nil
}

// inputBusy reports whether the input already feeds some output in the
// slot (the no-multicast invariant of the functional model).
func inputBusy(t *aethereal.SlotTable, p aethereal.Params, s, in int) bool {
	for o := 0; o < p.Ports; o++ {
		if t.Entry(s, o) == in {
			return true
		}
	}
	return false
}
