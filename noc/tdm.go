package noc

import (
	"fmt"

	"repro/internal/aethereal"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// tdmFabric implements Fabric with the Æthereal-style slot-table TDM
// router of Table 4.
type tdmFabric struct {
	cfg config
}

// Kind implements Fabric.
func (f *tdmFabric) Kind() Kind { return KindTDM }

// String implements Fabric.
func (f *tdmFabric) String() string {
	p := f.cfg.tdmParams()
	return fmt.Sprintf("Aethereal TDM (%d slots, %d-word BE FIFOs)", p.Slots, p.BEDepth)
}

// Validate implements Fabric.
func (f *tdmFabric) Validate() error { return f.cfg.validate(KindTDM) }

// setCache injects a resolved cache instance (sweep engine, tests).
func (f *tdmFabric) setCache(c *Cache) { f.cfg.cache = c }

// setObs injects observability hooks (sweep engine): an injected
// tracer/registry is owned by the injector, so Run leaves export and
// snapshotting to it.
func (f *tdmFabric) setObs(h obs.Hooks) { f.cfg.obs = h }

// Run implements Fabric. Each stream is given a contention-free
// guaranteed-throughput reservation in the slot table whose bandwidth
// share matches one circuit-switched lane (the scenarios' "100% load of
// a single lane"), then words are streamed through the reservations and
// metered. Workload scenarios are not supported. With caching enabled
// (WithCache), a single run is served from the content-addressed cache
// when its key matches.
func (f *tdmFabric) Run(sc Scenario) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := f.cfg
	fin := cfg.beginObs()
	res, err := runFabric(KindTDM, cfg, sc, f.run)
	if err != nil {
		return nil, err
	}
	return res, fin(res)
}

// run executes one non-replicated, defaulted, validated scenario.
func (f *tdmFabric) run(cfg config, _ *Cache, sc Scenario) (*Result, error) {
	if sc.IsPattern() {
		return runTDMPattern(cfg, sc)
	}
	if sc.IsWorkload() {
		return nil, fmt.Errorf("noc: the Aethereal TDM fabric does not support workload scenarios (use CircuitSwitched)")
	}
	p := cfg.tdmParams()
	lib := cfg.mustLib()

	// One stream per input port: the functional model registers one
	// upstream word per port, like the real router's input stage.
	seenIn := map[Port]bool{}
	for _, st := range sc.Streams {
		if seenIn[st.In] {
			return nil, fmt.Errorf("noc: TDM fabric: two streams enter on port %v", st.In)
		}
		seenIn[st.In] = true
	}

	r := aethereal.NewRouter(p)
	// A circuit-switched lane moves one 16-bit word per 5 cycles; the
	// functional TDM model forwards one word per reserved slot, so
	// matching that rate takes a fifth of the table, rounded up (the
	// 32-bit link has bandwidth to spare — the slot count, not the link
	// width, is the limit).
	const wordPeriod = 5
	slotsNeeded := (p.Slots + wordPeriod - 1) / wordPeriod
	if slotsNeeded < 1 {
		slotsNeeded = 1
	}
	type reservation struct {
		in, out int
		slots   []int
	}
	var reservations []reservation
	for _, st := range sc.Streams {
		in, out := int(st.In), int(st.Out)
		rv := reservation{in: in, out: out}
		// Spread the reservation over the table, probing linearly past
		// occupied entries; an input may only feed one output per slot.
		stride := p.Slots / slotsNeeded
		for k := 0; k < slotsNeeded; k++ {
			booked := false
			for probe := 0; probe < p.Slots; probe++ {
				s := (k*stride + probe) % p.Slots
				if r.Table.Entry(s, out) != aethereal.NoInput {
					continue
				}
				if r.Table.InputBusy(s, in) {
					continue
				}
				if err := r.Table.Reserve(s, in, out); err != nil {
					return nil, err
				}
				rv.slots = append(rv.slots, s)
				booked = true
				break
			}
			if !booked {
				return nil, fmt.Errorf("noc: TDM fabric: slot table full for stream %d (%d slots, %d streams)",
					st.ID, p.Slots, len(sc.Streams))
			}
		}
		reservations = append(reservations, rv)
	}
	if err := r.Table.Validate(); err != nil {
		return nil, err
	}

	meter := power.NewMeter(aethereal.Netlist(p, lib), lib, sc.FreqMHz)
	// The router ticks the meter itself (Commit, IdleTick and batched
	// IdleWindow), replacing the every-cycle monitor Func that used to
	// pin every kernel to every cycle — with componentized stream
	// drivers below, finite TDM scenarios now fast-forward.
	r.BindMeter(meter)
	w := sim.NewWorld(cfg.worldOpts()...)
	w.Add(r)

	// The average toggling bits per forwarded word under the pattern's
	// flip probability, split over register, crossbar and link nets.
	toggleBits := int(sc.Data.FlipProb*wordBits + 0.5)

	var (
		sources []*traffic.Source
		flows   []*traffic.TDMFlow
		lat     stats.Series
	)
	if sc.poolLatency {
		lat.Retain()
	}
	pat := traffic.Pattern{FlipProb: sc.Data.FlipProb, Load: sc.Data.Load}
	for i, st := range sc.Streams {
		rv := reservations[i]
		src := traffic.NewSourceSeeded(pat, st.ID, sc.Seed)
		sources = append(sources, src)

		reserved := make([]bool, p.Slots)
		for _, s := range rv.slots {
			reserved[s] = true
		}
		// A word offered this cycle is staged through Enqueue, merged at
		// the presenter's Commit and presentable the next cycle — the
		// registration order of offerer and presenter does not matter.
		// One stream per input port (checked above), so each stream gets
		// its own presenter.
		pres := traffic.NewTDMPresenter(r, rv.in)
		flow := pres.AddFlow(rv.out, reserved, &lat, toggleBits, meter)
		flow.Trace(cfg.obs.Tracer, fmt.Sprintf("stream%d.tdm", st.ID))
		flows = append(flows, flow)
		w.Add(&tdmOffer{
			src: src, flow: flow, limit: sc.WordsPerStream,
			wordPeriod: wordPeriod,
		}, pres)
	}

	w.Run(sc.Cycles)
	var ks *KernelStats
	cfg.observeKernel(&ks)(w)

	var delivered uint64
	for _, fl := range flows {
		delivered += fl.Delivered()
	}
	breakdown := meter.Report("aethereal / scenario " + sc.Name)
	res := &Result{
		Fabric:         KindTDM,
		Scenario:       sc.Name,
		FreqMHz:        sc.FreqMHz,
		Cycles:         sc.Cycles,
		WordsDelivered: delivered,
		ThroughputMbps: stats.Rate(delivered, wordBits, uint64(sc.Cycles), sc.FreqMHz),
		Power:          powerFrom(breakdown),
		PerComponent:   attributionComponents(meter.AttributionSorted(), breakdown.StaticUW),
		Latency:        latencyFrom(lat),
		Kernel:         ks,
	}
	for _, s := range sources {
		res.WordsSent += s.Sent()
	}
	return res, nil
}

// tdmOffer drives one Table-3 stream's source: it offers words at the
// lane rate through the load gate and enqueues them on the stream's
// traffic.TDMFlow, whose TDMPresenter (the single shared
// implementation of the slot presentation/delivery algorithm) does the
// rest. It is a first-class component rather than a bare sim.Func so
// the kernel can retire it: while the source is live the offerer runs
// every cycle (the load gate draws once per offer opportunity, part of
// the cross-kernel byte-identity contract), but once the word budget is
// spent it goes quiescent forever, the presenter drains, and the event
// kernel fast-forwards the rest of the run.
type tdmOffer struct {
	src        *traffic.Source
	flow       *traffic.TDMFlow
	limit      uint64 // emitted-word budget; 0 = unlimited
	wordPeriod int
	cycle      uint64
}

// Eval implements sim.Clocked: offer words at the lane rate, gated by
// the load knob. A retired source (word budget exhausted) stops drawing
// from the load gate, mirroring the other fabrics' runners.
func (s *tdmOffer) Eval() {
	if s.cycle%uint64(s.wordPeriod) == 0 &&
		(s.limit == 0 || s.src.Sent() < s.limit) {
		if word, ok := s.src.Offer(); ok {
			s.flow.Enqueue(uint32(word.Data), s.cycle)
		}
	}
}

// Commit implements sim.Clocked.
func (s *tdmOffer) Commit() { s.cycle++ }

// Quiescent implements sim.Quiescer: only a retired source is
// skippable — a live one's load gate must draw every period. Drained
// queues are the presenter's quiescence condition, not the offerer's.
func (s *tdmOffer) Quiescent() bool {
	return s.limit > 0 && s.src.Sent() >= s.limit
}

// IdleTick implements sim.IdleTicker: the local clock tracks skipped
// cycles (only reachable after retirement, where it is no longer read,
// but kept exact regardless).
func (s *tdmOffer) IdleTick() { s.cycle++ }

// IdleWindow implements sim.IdleWindower.
func (s *tdmOffer) IdleWindow(n uint64) { s.cycle += n }

var _ sim.IdleWindower = (*tdmOffer)(nil)
var _ sim.Quiescer = (*tdmOffer)(nil)
