package noc

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Workloads lists the wireless applications a workload Scenario can map:
// the three applications of the paper's Section 3.
func Workloads() []string { return []string{"hiperlan2", "umts", "drm"} }

// workloadGraph resolves a workload name to its process graph. UMTS
// accepts an operating point suffix, "umts:N", selecting N rake fingers
// (the knob the CCN re-maps at run time when reception quality changes).
func workloadGraph(name string) (*kpn.Graph, error) {
	switch low := strings.ToLower(name); low {
	case "hiperlan", "hiperlan2":
		return apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3]), nil
	case "umts":
		return apps.UMTSGraph(apps.DefaultUMTS()), nil
	case "drm":
		return apps.DRMGraph(), nil
	default:
		if fingers, ok := strings.CutPrefix(low, "umts:"); ok {
			n, err := strconv.Atoi(fingers)
			if err != nil {
				return nil, fmt.Errorf("noc: bad umts finger count %q", fingers)
			}
			u := apps.DefaultUMTS()
			u.Fingers = n
			if err := u.Validate(); err != nil {
				return nil, fmt.Errorf("noc: %w", err)
			}
			return apps.UMTSGraph(u), nil
		}
		return nil, fmt.Errorf("noc: unknown workload %q (have %s)",
			name, strings.Join(Workloads(), ", "))
	}
}

// placementsOf converts a mapping's tile assignment into Placements,
// ordered by process name for stable output.
func placementsOf(workload string, mp *ccn.Mapping) []Placement {
	procs := make([]string, 0, len(mp.Placement))
	for name := range mp.Placement {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	out := make([]Placement, 0, len(procs))
	for _, name := range procs {
		c := mp.Placement[name]
		out = append(out, Placement{Workload: workload, Process: name, X: c.X, Y: c.Y})
	}
	return out
}

// inFlightAllowance is the number of words allowed to still be in flight
// (converters, windows, link registers) when judging whether a channel
// kept up.
const inFlightAllowance = 32

// runCircuitWorkload maps the scenario's applications onto a W×H
// circuit-switched mesh via the CCN, drives every guaranteed-throughput
// channel at its required rate and measures delivery, aggregate power
// and (optionally) a waveform of node (0,0).
func runCircuitWorkload(cfg config, sc Scenario) (*Result, error) {
	p := cfg.resolvedCoreParams()
	m := mesh.New(sc.MeshWidth, sc.MeshHeight, p, core.DefaultAssemblyOptions(),
		sim.WithKernel(cfg.simKernel()))
	dom := m.BindMeters(cfg.mustLib(), sc.FreqMHz, cfg.gated)
	mgr := ccn.NewManager(m, sc.FreqMHz)

	res := &Result{
		Fabric:   KindCircuit,
		Scenario: sc.Name,
		FreqMHz:  sc.FreqMHz,
		Cycles:   sc.Cycles,
	}

	type chanState struct {
		workload string
		ch       kpn.Channel
		conn     *ccn.Connection
		received *uint64
		offered  *uint64
	}
	var states []chanState
	world := m.World()
	for _, wl := range sc.Workloads {
		graph, err := workloadGraph(wl)
		if err != nil {
			return nil, err
		}
		mp, err := mgr.MapApplication(graph)
		if err != nil {
			return nil, fmt.Errorf("noc: mapping %s onto %dx%d mesh: %w",
				wl, sc.MeshWidth, sc.MeshHeight, err)
		}
		res.Placements = append(res.Placements, placementsOf(wl, mp)...)

		for _, ch := range graph.GTChannels() {
			conn := mp.Connections[ch.Name]
			src := m.At(conn.Src)
			dst := m.At(conn.Dst)
			received := new(uint64)
			offered := new(uint64)
			// Words per cycle required across the ganged lanes.
			wordsPerCycle := ch.BandwidthMbps / sc.FreqMHz / wordBits
			acc := 0.0
			n := uint16(0)
			txLanes := make([]int, 0, conn.Lanes)
			rxLanes := make([]int, 0, conn.Lanes)
			for _, lane := range conn.Segments {
				txLanes = append(txLanes, lane[0].Circuit.In.Lane)
				rxLanes = append(rxLanes, lane[len(lane)-1].Circuit.Out.Lane)
			}
			gtx, grx, err := core.GangFor(src, dst, txLanes, rxLanes)
			if err != nil {
				return nil, fmt.Errorf("noc: channel %s/%s: %w", wl, ch.Name, err)
			}
			world.Add(&sim.Func{OnEval: func() {
				acc += wordsPerCycle
				for acc >= 1 && gtx.Ready() {
					if !gtx.Push(core.DataWord(n)) {
						break
					}
					n++
					acc--
					*offered++
				}
				for {
					if _, ok := grx.Pop(); !ok {
						break
					}
					*received++
				}
			}})
			states = append(states, chanState{
				workload: wl, ch: ch, conn: conn,
				received: received, offered: offered,
			})
		}
	}

	var rec *trace.Recorder
	if cfg.traceCycles > 0 {
		rec = trace.NewRecorder(cfg.traceCycles)
		node := m.At(mesh.Coord{X: 0, Y: 0})
		for g := 0; g < p.TotalLanes(); g++ {
			lane := p.LaneOf(g)
			rec.Add(trace.U8(fmt.Sprintf("out.%v.%d", lane.Port, lane.Lane),
				p.LaneWidth, &node.R.Out[g]))
		}
		world.Add(rec)
	}

	m.Run(sc.Cycles)

	for _, st := range states {
		achieved := stats.Rate(*st.received, wordBits, uint64(sc.Cycles), sc.FreqMHz)
		res.Channels = append(res.Channels, Channel{
			Workload:       st.workload,
			Name:           st.ch.Name,
			Lanes:          st.conn.Lanes,
			Hops:           len(st.conn.Route) - 1,
			RequiredMbps:   st.ch.BandwidthMbps,
			AchievedMbps:   achieved,
			WordsDelivered: *st.received,
			Met:            *st.received+inFlightAllowance >= *st.offered,
		})
		res.WordsSent += *st.offered
		res.WordsDelivered += *st.received
	}
	res.ThroughputMbps = stats.Rate(res.WordsDelivered, wordBits, uint64(sc.Cycles), sc.FreqMHz)
	res.LinkUtilization = mgr.LinkUtilization()
	res.Power = powerFrom(dom.Report("mesh " + sc.Name))
	// Per-router attribution: every node has its own meter, fed by its
	// own activity — idle routers show up as clock+leakage only, the
	// paper's clock-gating argument made visible per router.
	res.PerComponent = nodeComponents(dom.PerNode("mesh "+sc.Name), sc.MeshWidth)

	if rec != nil {
		var buf bytes.Buffer
		nsPerCycle := int(1e3 / sc.FreqMHz)
		if nsPerCycle < 1 {
			nsPerCycle = 1
		}
		if err := rec.WriteVCD(&buf, "node00", fmt.Sprintf("%dns", nsPerCycle)); err != nil {
			return nil, err
		}
		res.NodeVCD = buf.Bytes()
	}
	return res, nil
}
