package noc

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Workloads lists the wireless applications a workload Scenario can map:
// the three applications of the paper's Section 3.
func Workloads() []string { return []string{"hiperlan2", "umts", "drm"} }

// workloadGraph resolves a workload name to its process graph. UMTS
// accepts an operating point suffix, "umts:N", selecting N rake fingers
// (the knob the CCN re-maps at run time when reception quality changes).
func workloadGraph(name string) (*kpn.Graph, error) {
	switch low := strings.ToLower(name); low {
	case "hiperlan", "hiperlan2":
		return apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3]), nil
	case "umts":
		return apps.UMTSGraph(apps.DefaultUMTS()), nil
	case "drm":
		return apps.DRMGraph(), nil
	default:
		if fingers, ok := strings.CutPrefix(low, "umts:"); ok {
			n, err := strconv.Atoi(fingers)
			if err != nil {
				return nil, fmt.Errorf("noc: bad umts finger count %q", fingers)
			}
			u := apps.DefaultUMTS()
			u.Fingers = n
			if err := u.Validate(); err != nil {
				return nil, fmt.Errorf("noc: %w", err)
			}
			return apps.UMTSGraph(u), nil
		}
		return nil, fmt.Errorf("noc: unknown workload %q (have %s)",
			name, strings.Join(Workloads(), ", "))
	}
}

// placementsOf converts a mapping's tile assignment into Placements,
// ordered by process name for stable output.
func placementsOf(workload string, mp *ccn.Mapping) []Placement {
	procs := make([]string, 0, len(mp.Placement))
	for name := range mp.Placement {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	out := make([]Placement, 0, len(procs))
	for _, name := range procs {
		c := mp.Placement[name]
		out = append(out, Placement{Workload: workload, Process: name, X: c.X, Y: c.Y})
	}
	return out
}

// inFlightAllowance is the number of words allowed to still be in flight
// (converters, windows, link registers) when judging whether a channel
// kept up.
const inFlightAllowance = 32

// rateScale is the fixed-point denominator of the channel drivers' rate
// accumulators. Integer accrual makes a window of n skipped cycles
// algebraically identical to n single cycles — the property the event
// kernel's fast-forward replay needs — where a float accumulator would
// round differently.
const rateScale = 1 << 32

// chanSource drives one guaranteed-throughput channel at its required
// word rate. It replaces the every-cycle sim.Func channel driver: as a
// first-class quiescent component with a rate-derived NextEvent, it
// lets underloaded mesh runs fast-forward between words instead of
// pinning the kernel to every cycle (the ROADMAP's "workload channels
// as Timed sources" item).
type chanSource struct {
	gtx     *core.GangTx
	num     uint64 // words per cycle in 2^-32 units (exact integer rate)
	acc     uint64 // fractional word accumulator, < rateScale
	credits uint64 // whole words due but not yet accepted by the gang
	n       uint16 // data word counter
	offered uint64
	cycle   uint64 // local clock, always equal to the world clock
}

func newChanSource(gtx *core.GangTx, wordsPerCycle float64) *chanSource {
	num := uint64(math.Round(wordsPerCycle * rateScale))
	if num == 0 {
		num = 1
	}
	return &chanSource{gtx: gtx, num: num}
}

// accrue advances the rate accumulator by one cycle.
func (s *chanSource) accrue() {
	s.acc += s.num
	s.credits += s.acc >> 32
	s.acc &= rateScale - 1
}

// Eval implements sim.Clocked: accrue this cycle's words and push as
// many due words as the gang accepts (backpressure lets credits bank,
// exactly like the float accumulator it replaces).
func (s *chanSource) Eval() {
	s.accrue()
	for s.credits >= 1 && s.gtx.Ready() {
		if !s.gtx.Push(core.DataWord(s.n)) {
			break
		}
		s.n++
		s.credits--
		s.offered++
	}
}

// Commit implements sim.Clocked.
func (s *chanSource) Commit() { s.cycle++ }

// Quiescent implements sim.Quiescer: no word due now and none banked.
func (s *chanSource) Quiescent() bool {
	return s.credits == 0 && (s.acc+s.num)>>32 == 0
}

// IdleTick implements sim.IdleTicker: the accumulator advances on
// skipped cycles too (by the Quiescent contract it cannot produce a
// credit there).
func (s *chanSource) IdleTick() {
	s.accrue()
	s.cycle++
}

// IdleWindow implements sim.IdleWindower: integer accrual commutes, so
// one call is exactly n IdleTicks.
func (s *chanSource) IdleWindow(n uint64) {
	s.acc += n * s.num
	s.credits += s.acc >> 32
	s.acc &= rateScale - 1
	s.cycle += n
}

// NextEvent implements sim.Timed: the cycle the accumulator next
// crosses a whole word, which ends the source's quiescence with no
// external stimulus.
func (s *chanSource) NextEvent() (uint64, bool) {
	if s.credits > 0 {
		return s.cycle, true
	}
	k := (rateScale - s.acc + s.num - 1) / s.num // accruals until a credit
	return s.cycle + k - 1, true
}

// chanSink drains one channel's receive gang on behalf of the
// destination tile. Popping an empty gang is a no-op, so skipping the
// sink while nothing is buffered is exact.
type chanSink struct {
	grx *core.GangRx
}

// Eval implements sim.Clocked.
func (d *chanSink) Eval() {
	for {
		if _, ok := d.grx.Pop(); !ok {
			break
		}
	}
}

// Commit implements sim.Clocked.
func (d *chanSink) Commit() {}

// Quiescent implements sim.Quiescer: the next word in stripe order has
// not arrived.
func (d *chanSink) Quiescent() bool { return !d.grx.Available() }

// IdleTick implements sim.IdleTicker: an empty sink accrues no per-cycle
// state, so idle replay is a no-op, declared explicitly to satisfy the
// Quiescer contract checked by nocvet.
func (d *chanSink) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (d *chanSink) IdleWindow(n uint64) {}

var (
	_ sim.IdleWindower = (*chanSource)(nil)
	_ sim.Timed        = (*chanSource)(nil)
	_ sim.Quiescer     = (*chanSink)(nil)
)

// runCircuitWorkload maps the scenario's applications onto a W×H
// circuit-switched mesh via the CCN, drives every guaranteed-throughput
// channel at its required rate and measures delivery, aggregate power
// and (optionally) a waveform of node (0,0).
func runCircuitWorkload(cfg config, sc Scenario) (*Result, error) {
	p := cfg.resolvedCoreParams()
	m := mesh.New(sc.MeshWidth, sc.MeshHeight, p, core.DefaultAssemblyOptions(),
		cfg.worldOpts()...)
	dom := m.BindMeters(cfg.mustLib(), sc.FreqMHz, cfg.gated)
	mgr := ccn.NewManager(m, sc.FreqMHz)

	res := &Result{
		Fabric:   KindCircuit,
		Scenario: sc.Name,
		FreqMHz:  sc.FreqMHz,
		Cycles:   sc.Cycles,
	}

	type chanState struct {
		workload string
		ch       kpn.Channel
		conn     *ccn.Connection
		src      *chanSource
		sink     *chanSink
	}
	var states []chanState
	world := m.World()
	for _, wl := range sc.Workloads {
		graph, err := workloadGraph(wl)
		if err != nil {
			return nil, err
		}
		mp, err := mgr.MapApplication(graph)
		if err != nil {
			return nil, fmt.Errorf("noc: mapping %s onto %dx%d mesh: %w",
				wl, sc.MeshWidth, sc.MeshHeight, err)
		}
		res.Placements = append(res.Placements, placementsOf(wl, mp)...)

		for _, ch := range graph.GTChannels() {
			conn := mp.Connections[ch.Name]
			src := m.At(conn.Src)
			dst := m.At(conn.Dst)
			// Words per cycle required across the ganged lanes.
			wordsPerCycle := ch.BandwidthMbps / sc.FreqMHz / wordBits
			txLanes := make([]int, 0, conn.Lanes)
			rxLanes := make([]int, 0, conn.Lanes)
			for _, lane := range conn.Segments {
				txLanes = append(txLanes, lane[0].Circuit.In.Lane)
				rxLanes = append(rxLanes, lane[len(lane)-1].Circuit.Out.Lane)
			}
			gtx, grx, err := core.GangFor(src, dst, txLanes, rxLanes)
			if err != nil {
				return nil, fmt.Errorf("noc: channel %s/%s: %w", wl, ch.Name, err)
			}
			driver := newChanSource(gtx, wordsPerCycle)
			sink := &chanSink{grx: grx}
			world.Add(driver, sink)
			states = append(states, chanState{
				workload: wl, ch: ch, conn: conn, src: driver, sink: sink,
			})
		}
	}

	var rec *trace.Recorder
	if cfg.traceCycles > 0 {
		rec = trace.NewRecorder(cfg.traceCycles)
		node := m.At(mesh.Coord{X: 0, Y: 0})
		for g := 0; g < p.TotalLanes(); g++ {
			lane := p.LaneOf(g)
			rec.Add(trace.U8(fmt.Sprintf("out.%v.%d", lane.Port, lane.Lane),
				p.LaneWidth, &node.R.Out[g]))
		}
		world.Add(rec)
	}

	m.Run(sc.Cycles)
	cfg.observeKernel(&res.Kernel)(world)

	for _, st := range states {
		received := st.sink.grx.Received()
		achieved := stats.Rate(received, wordBits, uint64(sc.Cycles), sc.FreqMHz)
		res.Channels = append(res.Channels, Channel{
			Workload:       st.workload,
			Name:           st.ch.Name,
			Lanes:          st.conn.Lanes,
			Hops:           len(st.conn.Route) - 1,
			RequiredMbps:   st.ch.BandwidthMbps,
			AchievedMbps:   achieved,
			WordsDelivered: received,
			Met:            received+inFlightAllowance >= st.src.offered,
		})
		res.WordsSent += st.src.offered
		res.WordsDelivered += received
	}
	res.ThroughputMbps = stats.Rate(res.WordsDelivered, wordBits, uint64(sc.Cycles), sc.FreqMHz)
	res.LinkUtilization = mgr.LinkUtilization()
	res.Power = powerFrom(dom.Report("mesh " + sc.Name))
	// Per-router attribution: every node has its own meter, fed by its
	// own activity — idle routers show up as clock+leakage only, the
	// paper's clock-gating argument made visible per router.
	res.PerComponent = nodeComponents(dom.PerNode("mesh "+sc.Name), sc.MeshWidth)

	if rec != nil {
		var buf bytes.Buffer
		nsPerCycle := int(1e3 / sc.FreqMHz)
		if nsPerCycle < 1 {
			nsPerCycle = 1
		}
		if err := rec.WriteVCD(&buf, "node00", fmt.Sprintf("%dns", nsPerCycle)); err != nil {
			return nil, err
		}
		res.NodeVCD = buf.Bytes()
	}
	return res, nil
}
