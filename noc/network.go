package noc

import (
	"fmt"
	"sort"

	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/mesh"
)

// Network is a persistent circuit-switched NoC whose lane allocation
// outlives a single run: applications can be mapped, torn down and
// re-mapped while other mappings keep their circuits — the run-time
// reconfiguration of the paper's Section 1 ("due to changes in the
// reception quality" the CCN re-maps a rake receiver on the fly).
// Released lanes are immediately reusable; circuits of concurrent
// mappings never interact because they occupy physically separate
// lanes.
//
// Network manages allocation state; to measure traffic, power and
// latency of a fixed set of workloads, use a workload Scenario on the
// CircuitSwitched fabric instead.
type Network struct {
	mgr  *ccn.Manager
	maps map[int]*ccn.Mapping
	next int
}

// Mapping describes one application currently mapped on a Network.
type Mapping struct {
	// ID is the handle for Unmap.
	ID int `json:"id"`
	// Workload names the application (as given to Map).
	Workload string `json:"workload"`
	// Channels and LanePaths count the allocated GT connections and
	// lane paths.
	Channels  int `json:"channels"`
	LanePaths int `json:"lane_paths"`
	// Placements assigns each process to its tile.
	Placements []Placement `json:"placements"`
}

// NewNetwork builds a W×H circuit-switched mesh with its Central
// Coordination Node at the given clock.
func NewNetwork(w, h int, freqMHz float64) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("noc: network mesh must be at least 2x2, have %dx%d", w, h)
	}
	if freqMHz <= 0 {
		return nil, fmt.Errorf("noc: non-positive frequency %v", freqMHz)
	}
	m := mesh.New(w, h, core.DefaultParams(), core.DefaultAssemblyOptions())
	return &Network{
		mgr:  ccn.NewManager(m, freqMHz),
		maps: map[int]*ccn.Mapping{},
	}, nil
}

// Map places a workload ("hiperlan2", "umts", "umts:N", "drm") onto the
// mesh: the CCN assigns processes to tiles and allocates guaranteed-
// throughput lane paths for every channel. It fails — leaving existing
// mappings untouched — when tiles or lanes run out.
func (n *Network) Map(workload string) (Mapping, error) {
	graph, err := workloadGraph(workload)
	if err != nil {
		return Mapping{}, err
	}
	mp, err := n.mgr.MapApplication(graph)
	if err != nil {
		return Mapping{}, fmt.Errorf("noc: mapping %s: %w", workload, err)
	}
	n.next++
	n.maps[n.next] = mp
	info := Mapping{
		ID:       n.next,
		Workload: workload,
		Channels: len(mp.Connections),
	}
	for _, c := range mp.Connections {
		info.LanePaths += c.Lanes
	}
	info.Placements = placementsOf(workload, mp)
	return info, nil
}

// Unmap releases a mapping's circuits and tiles; the freed lanes are
// immediately available to the next Map.
func (n *Network) Unmap(id int) error {
	mp, ok := n.maps[id]
	if !ok {
		return fmt.Errorf("noc: unknown mapping %d", id)
	}
	if err := n.mgr.UnmapApplication(mp); err != nil {
		return err
	}
	delete(n.maps, id)
	return nil
}

// Mappings returns the currently mapped application handles, ordered by
// ID.
func (n *Network) Mappings() []int {
	out := make([]int, 0, len(n.maps))
	for id := range n.maps {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// LinkUtilization returns the fraction of the mesh's lane capacity
// currently allocated.
func (n *Network) LinkUtilization() float64 { return n.mgr.LinkUtilization() }

// LaneRateMbps returns the data rate one lane carries at the network
// clock.
func (n *Network) LaneRateMbps() float64 { return n.mgr.LaneRateMbps() }
