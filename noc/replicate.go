package noc

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/sweep"
)

// This file is the replication axis of the façade: Scenario.Replications
// runs a scenario R times with independent seeds and aggregates every
// Result metric into mean/min/max/CI95, so the paper-reproduction
// figures rest on interval estimates instead of single seeded runs.
// Fabric.Run dispatches here for a standalone replicated scenario; the
// Sweep engine fans the replications of every cell through its worker
// pool as individual jobs and aggregates with the same code.

// replicationSalt separates the per-replication seed stream from the
// sweep engine's per-cell stream: a cell's base seed is XORed with this
// constant before the SplitMix64 step, so the R replication seeds of a
// cell can never collide with the per-cell seeds of neighbouring cells
// derived from the same sweep seed.
const replicationSalt = 0xC2B2AE3D27D4EB4F

// ReplicationSeed returns replication rep's RNG seed for a run whose
// base seed is base: one SplitMix64 step over the salted base, golden-
// ratio strided by the replication index. Exported so tests can pin the
// stream's disjointness from the sweep engine's per-cell seeds.
func ReplicationSeed(base uint64, rep int) uint64 {
	return sweep.Mix64((base ^ replicationSalt) + uint64(rep)*0x9E3779B97F4A7C15)
}

// replicaScenario returns replication rep's scenario: the same knobs
// with the seed drawn from the replication stream and Replications
// cleared, so the fabric runs it exactly once.
func replicaScenario(sc Scenario, rep int) Scenario {
	sc.Seed = ReplicationSeed(sc.Seed, rep)
	sc.Replications = 0
	return sc
}

// Metric summarizes one Result metric across the replications of a
// run: the across-replication mean, extremes and the half width of the
// 95% confidence interval of the mean (Student-t for the single-digit
// replication counts a sweep typically uses; exactly 0 for fewer than
// two observations or a zero-variance metric).
type Metric struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	CI95 float64 `json:"ci95"`
}

// metricFrom converts an accumulated series.
func metricFrom(s *stats.Series) Metric {
	return Metric{Mean: s.Mean(), Min: s.Min(), Max: s.Max(), CI95: s.CI95()}
}

// ReplicationStats aggregates every Result metric across a replicated
// run. Optional metrics (power, latency, pattern blocking) are nil when
// no replication measured them.
type ReplicationStats struct {
	// Replications is the number of aggregated runs.
	Replications int `json:"replications"`
	// WordsSent and WordsDelivered aggregate the word counters.
	WordsSent      Metric `json:"words_sent"`
	WordsDelivered Metric `json:"words_delivered"`
	// ThroughputMbps aggregates the delivered bandwidth.
	ThroughputMbps Metric `json:"throughput_mbps"`
	// PowerTotalUW and PowerDynamicUWPerMHz aggregate the power
	// estimate.
	PowerTotalUW         *Metric `json:"power_total_uw,omitempty"`
	PowerDynamicUWPerMHz *Metric `json:"power_dynamic_uw_per_mhz,omitempty"`
	// LatencyMeanCycles and LatencyJitterCycles aggregate the per-run
	// latency distribution summaries: the mean of per-run means, not a
	// pooled distribution — each replication is one independent
	// observation of the run-level statistic.
	LatencyMeanCycles   *Metric `json:"latency_mean_cycles,omitempty"`
	LatencyJitterCycles *Metric `json:"latency_jitter_cycles,omitempty"`
	// LinkUtilization aggregates the allocated lane fraction of mesh
	// runs.
	LinkUtilization *Metric `json:"link_utilization,omitempty"`
	// FlowsEstablished and BlockingFraction aggregate a pattern run's
	// admission outcome; the blocking fraction is
	// (requested-established)/requested, the headline blocking metric.
	FlowsEstablished *Metric `json:"flows_established,omitempty"`
	BlockingFraction *Metric `json:"blocking_fraction,omitempty"`
}

// aggregateResults merges the per-replication Results of one scenario:
// replication 0's Result with the across-replication aggregates
// attached. The inputs must all come from the same fabric × scenario.
func aggregateResults(results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("noc: no replications to aggregate")
	}
	var sent, delivered, tput, powTot, powDyn, latMean, latJit, util, est, blocked stats.Series
	havePower, haveLat, haveUtil, havePat := false, false, false, false
	for _, r := range results {
		sent.Add(float64(r.WordsSent))
		delivered.Add(float64(r.WordsDelivered))
		tput.Add(r.ThroughputMbps)
		if r.Power != nil {
			havePower = true
			powTot.Add(r.Power.TotalUW)
			powDyn.Add(r.Power.DynamicUWPerMHz)
		}
		if r.Latency != nil {
			haveLat = true
			latMean.Add(r.Latency.MeanCycles)
			latJit.Add(r.Latency.JitterCycles)
		}
		if r.LinkUtilization != 0 {
			haveUtil = true
		}
		util.Add(r.LinkUtilization)
		if r.FlowsRequested > 0 {
			havePat = true
			est.Add(float64(r.FlowsEstablished))
			blocked.Add(float64(r.FlowsRequested-r.FlowsEstablished) / float64(r.FlowsRequested))
		}
	}
	agg := *results[0]
	rs := &ReplicationStats{
		Replications:   len(results),
		WordsSent:      metricFrom(&sent),
		WordsDelivered: metricFrom(&delivered),
		ThroughputMbps: metricFrom(&tput),
	}
	if havePower {
		pt, pd := metricFrom(&powTot), metricFrom(&powDyn)
		rs.PowerTotalUW, rs.PowerDynamicUWPerMHz = &pt, &pd
	}
	if haveLat {
		lm, lj := metricFrom(&latMean), metricFrom(&latJit)
		rs.LatencyMeanCycles, rs.LatencyJitterCycles = &lm, &lj
	}
	if haveUtil {
		lu := metricFrom(&util)
		rs.LinkUtilization = &lu
	}
	if havePat {
		fe, bf := metricFrom(&est), metricFrom(&blocked)
		rs.FlowsEstablished, rs.BlockingFraction = &fe, &bf
	}
	agg.Replication = rs
	return &agg, nil
}

// runReplicated executes a replicated scenario on one fabric,
// sequentially, and aggregates. Sweep parallelizes the same work by
// fanning replications through its worker pool instead.
func runReplicated(f Fabric, sc Scenario) (*Result, error) {
	results := make([]*Result, sc.Replications)
	for rep := range results {
		r, err := f.Run(replicaScenario(sc, rep))
		if err != nil {
			return nil, fmt.Errorf("noc: replication %d: %w", rep, err)
		}
		results[rep] = r
	}
	return aggregateResults(results)
}
