package noc

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/sweep"
)

// This file is the replication axis of the façade: Scenario.Replications
// runs a scenario R times with independent seeds and aggregates every
// Result metric into mean/min/max/CI95, so the paper-reproduction
// figures rest on interval estimates instead of single seeded runs.
// Fabric.Run dispatches here for a standalone replicated scenario; the
// Sweep engine fans the replications of every cell through its worker
// pool as individual jobs and aggregates with the same code.

// replicationSalt separates the per-replication seed stream from the
// sweep engine's per-cell stream: a cell's base seed is XORed with this
// constant before the SplitMix64 step, so the R replication seeds of a
// cell can never collide with the per-cell seeds of neighbouring cells
// derived from the same sweep seed.
const replicationSalt = 0xC2B2AE3D27D4EB4F

// ReplicationSeed returns replication rep's RNG seed for a run whose
// base seed is base: one SplitMix64 step over the salted base, golden-
// ratio strided by the replication index. Exported so tests can pin the
// stream's disjointness from the sweep engine's per-cell seeds.
func ReplicationSeed(base uint64, rep int) uint64 {
	return sweep.Mix64((base ^ replicationSalt) + uint64(rep)*0x9E3779B97F4A7C15)
}

// replicaScenario returns replication rep's scenario: the same knobs
// with the seed drawn from the replication stream and Replications
// cleared, so the fabric runs it exactly once. Each replication also
// retains its raw latency samples so the aggregation can pool them into
// one distribution (retention changes no measured statistic — the same
// observations feed the same summary — so replicated point results stay
// byte-identical to standalone runs of the same seed).
func replicaScenario(sc Scenario, rep int) Scenario {
	sc.Seed = ReplicationSeed(sc.Seed, rep)
	sc.Replications = 0
	sc.poolLatency = true
	return sc
}

// Metric summarizes one Result metric across the replications of a
// run: the across-replication mean, extremes and the half width of the
// 95% confidence interval of the mean (Student-t for the single-digit
// replication counts a sweep typically uses; exactly 0 for fewer than
// two observations or a zero-variance metric).
type Metric struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	CI95 float64 `json:"ci95"`
}

// metricFrom converts an accumulated series.
func metricFrom(s *stats.Series) Metric {
	return Metric{Mean: s.Mean(), Min: s.Min(), Max: s.Max(), CI95: s.CI95()}
}

// ReplicationStats aggregates every Result metric across a replicated
// run. Optional metrics (power, latency, pattern blocking) are nil when
// no replication measured them.
type ReplicationStats struct {
	// Replications is the number of aggregated runs.
	Replications int `json:"replications"`
	// WordsSent and WordsDelivered aggregate the word counters.
	WordsSent      Metric `json:"words_sent"`
	WordsDelivered Metric `json:"words_delivered"`
	// ThroughputMbps aggregates the delivered bandwidth.
	ThroughputMbps Metric `json:"throughput_mbps"`
	// PowerTotalUW and PowerDynamicUWPerMHz aggregate the power
	// estimate.
	PowerTotalUW         *Metric `json:"power_total_uw,omitempty"`
	PowerDynamicUWPerMHz *Metric `json:"power_dynamic_uw_per_mhz,omitempty"`
	// LatencyMeanCycles and LatencyJitterCycles aggregate the per-run
	// latency distribution summaries: the mean of per-run means, not a
	// pooled distribution — each replication is one independent
	// observation of the run-level statistic.
	LatencyMeanCycles   *Metric `json:"latency_mean_cycles,omitempty"`
	LatencyJitterCycles *Metric `json:"latency_jitter_cycles,omitempty"`
	// LinkUtilization aggregates the allocated lane fraction of mesh
	// runs.
	LinkUtilization *Metric `json:"link_utilization,omitempty"`
	// FlowsEstablished and BlockingFraction aggregate a pattern run's
	// admission outcome; the blocking fraction is
	// (requested-established)/requested, the headline blocking metric.
	FlowsEstablished *Metric `json:"flows_established,omitempty"`
	BlockingFraction *Metric `json:"blocking_fraction,omitempty"`
	// PooledLatency is the word-level latency distribution pooled across
	// all replications — every replication's raw per-word observations
	// concatenated in replication order and summarized as one
	// distribution. It complements LatencyMeanCycles, which describes
	// the across-replication spread of the run-level mean: percentiles
	// and tail shape only make sense on the pooled word population. Nil
	// when no replication retained latency samples.
	PooledLatency *LatencyPool `json:"latency_pooled,omitempty"`
}

// LatencyPool summarizes a pooled word-latency distribution, in cycles.
type LatencyPool struct {
	// Words is the pooled observation count — the sum of the per-
	// replication Latency.Words.
	Words int `json:"words"`
	// MeanCycles through MaxCycles are the pooled moments.
	MeanCycles   float64 `json:"mean_cycles"`
	StdDevCycles float64 `json:"stddev_cycles"`
	MinCycles    float64 `json:"min_cycles"`
	MaxCycles    float64 `json:"max_cycles"`
	// P50Cycles, P95Cycles and P99Cycles are nearest-rank percentiles of
	// the pooled population.
	P50Cycles float64 `json:"p50_cycles"`
	P95Cycles float64 `json:"p95_cycles"`
	P99Cycles float64 `json:"p99_cycles"`
	// HistBounds and HistCounts render the pooled histogram:
	// HistCounts[i] counts observations <= HistBounds[i] (and above the
	// previous bound); the final extra count is the overflow beyond the
	// last bound.
	HistBounds []float64 `json:"hist_bounds"`
	HistCounts []int     `json:"hist_counts"`
}

// latencyPoolBounds are the pooled histogram's bucket upper bounds:
// power-of-two cycle counts spanning a single-hop register delay up to
// deep congestion backlogs, with the overflow bucket catching anything
// beyond.
var latencyPoolBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// poolLatencySamples summarizes the concatenated per-replication
// latency observations; nil for an empty pool.
func poolLatencySamples(samples []float64) *LatencyPool {
	if len(samples) == 0 {
		return nil
	}
	var s stats.Series
	h := stats.NewHist(latencyPoolBounds...)
	for _, v := range samples {
		s.Add(v)
		h.Add(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	counts := make([]int, len(latencyPoolBounds)+1)
	for i := range counts {
		counts[i] = h.Count(i)
	}
	return &LatencyPool{
		Words:        s.N(),
		MeanCycles:   s.Mean(),
		StdDevCycles: s.StdDev(),
		MinCycles:    s.Min(),
		MaxCycles:    s.Max(),
		P50Cycles:    stats.Percentile(sorted, 0.50),
		P95Cycles:    stats.Percentile(sorted, 0.95),
		P99Cycles:    stats.Percentile(sorted, 0.99),
		HistBounds:   append([]float64(nil), latencyPoolBounds...),
		HistCounts:   counts,
	}
}

// aggregateResults merges the per-replication Results of one scenario:
// replication 0's Result with the across-replication aggregates
// attached. The inputs must all come from the same fabric × scenario.
func aggregateResults(results []*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("noc: no replications to aggregate")
	}
	var sent, delivered, tput, powTot, powDyn, latMean, latJit, util, est, blocked stats.Series
	havePower, haveLat, haveUtil, havePat := false, false, false, false
	var pooled []float64
	for _, r := range results {
		sent.Add(float64(r.WordsSent))
		delivered.Add(float64(r.WordsDelivered))
		tput.Add(r.ThroughputMbps)
		if r.Power != nil {
			havePower = true
			powTot.Add(r.Power.TotalUW)
			powDyn.Add(r.Power.DynamicUWPerMHz)
		}
		if r.Latency != nil {
			haveLat = true
			latMean.Add(r.Latency.MeanCycles)
			latJit.Add(r.Latency.JitterCycles)
			pooled = append(pooled, r.Latency.Samples...)
		}
		if r.LinkUtilization != 0 {
			haveUtil = true
		}
		util.Add(r.LinkUtilization)
		if r.FlowsRequested > 0 {
			havePat = true
			est.Add(float64(r.FlowsEstablished))
			blocked.Add(float64(r.FlowsRequested-r.FlowsEstablished) / float64(r.FlowsRequested))
		}
	}
	agg := *results[0]
	rs := &ReplicationStats{
		Replications:   len(results),
		WordsSent:      metricFrom(&sent),
		WordsDelivered: metricFrom(&delivered),
		ThroughputMbps: metricFrom(&tput),
	}
	if havePower {
		pt, pd := metricFrom(&powTot), metricFrom(&powDyn)
		rs.PowerTotalUW, rs.PowerDynamicUWPerMHz = &pt, &pd
	}
	if haveLat {
		lm, lj := metricFrom(&latMean), metricFrom(&latJit)
		rs.LatencyMeanCycles, rs.LatencyJitterCycles = &lm, &lj
		rs.PooledLatency = poolLatencySamples(pooled)
	}
	if haveUtil {
		lu := metricFrom(&util)
		rs.LinkUtilization = &lu
	}
	if havePat {
		fe, bf := metricFrom(&est), metricFrom(&blocked)
		rs.FlowsEstablished, rs.BlockingFraction = &fe, &bf
	}
	agg.Replication = rs
	return &agg, nil
}

// runFabric executes one fabric kind's defaulted, validated scenario
// with the config's observability hooks already resolved (beginObs): a
// single run goes through the content-addressed cache; a replicated
// scenario runs its replications sequentially — each replication's
// trace events stamped with the replication index, so one collector
// carries them all — and aggregates. Sweep parallelizes replications
// through its worker pool instead of coming through here.
func runFabric(kind Kind, cfg config, sc Scenario,
	run func(cfg config, cache *Cache, sc Scenario) (*Result, error)) (*Result, error) {
	cache, err := cfg.resolveCache()
	if err != nil {
		return nil, err
	}
	one := func(cfg config, sc Scenario) (*Result, error) {
		return cache.runThrough(kind, cfg, sc, func() (*Result, error) {
			return run(cfg, cache, sc)
		})
	}
	if sc.Replications > 1 {
		results := make([]*Result, sc.Replications)
		for rep := range results {
			r, err := one(cfg.withCell(rep), replicaScenario(sc, rep).withDefaults())
			if err != nil {
				return nil, fmt.Errorf("noc: replication %d: %w", rep, err)
			}
			results[rep] = r
		}
		return aggregateResults(results)
	}
	return one(cfg, sc)
}
