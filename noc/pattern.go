package noc

import (
	"repro/internal/mesh"
	"repro/internal/pattern"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// This file dispatches synthetic-pattern Scenarios (Scenario.Pattern /
// Scenario.Injection) to the three fabrics. The circuit fabric
// simulates the whole W×H mesh — one single-lane circuit per pattern
// flow, event-scheduled sources, per-node power meters. The
// packet-switched and TDM fabrics are single-router models, so they are
// driven with the projection of the pattern onto the observed
// mesh-centre router (pattern.PortFlows): the port-to-port traffic
// matrix XY routing would push through that position. The centre is
// also the hotspot node, so the projection captures exactly the router
// the pattern stresses hardest.

// runCircuitPattern maps the pattern onto a full circuit-switched mesh.
func runCircuitPattern(cfg config, sc Scenario) (*Result, error) {
	sp, inj, err := sc.patternSetup()
	if err != nil {
		return nil, err
	}
	var ks *KernelStats
	pr, err := mesh.RunPattern(mesh.PatternConfig{
		W: sc.MeshWidth, H: sc.MeshHeight,
		Cycles: sc.Cycles, FreqMHz: sc.FreqMHz,
		Lib: cfg.mustLib(), Gated: cfg.gated,
		Spatial: sp, Injection: inj,
		FlipProb: sc.Data.FlipProb,
		Seed:     sc.Seed, WordsPerFlow: sc.WordsPerStream,
		Params: cfg.coreParams(), Kernel: cfg.simKernel(),
		SimWorkers:    cfg.parallelism,
		Observe:       cfg.observeKernel(&ks),
		WarmupCycles:  sc.WarmupCycles,
		WarmupAuto:    sc.WarmupAuto,
		RetainLatency: sc.poolLatency,
		Warm:          cfg.cache.patternWarmHook(KindCircuit, cfg, sc),
		Obs:           cfg.obs,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fabric:           KindCircuit,
		Scenario:         sc.Name,
		FreqMHz:          sc.FreqMHz,
		Cycles:           sc.Cycles,
		WarmupCycles:     pr.WarmupCycles,
		WordsSent:        pr.WordsSent,
		WordsDelivered:   pr.WordsDelivered,
		ThroughputMbps:   stats.Rate(pr.WordsDelivered, wordBits, pr.MeasuredCycles, sc.FreqMHz),
		Power:            powerFrom(pr.Power),
		PerComponent:     nodeComponents(pr.PerNode, sc.MeshWidth),
		Latency:          latencyFrom(pr.Latency),
		LinkUtilization:  pr.LaneUtilization,
		FlowsRequested:   pr.FlowsRequested,
		FlowsEstablished: pr.FlowsEstablished,
		Kernel:           ks,
	}
	return res, nil
}

// patternPortFlows projects the scenario's pattern onto the observed
// mesh-centre router.
func patternPortFlows(sc Scenario, sp pattern.Spatial) []pattern.PortFlow {
	obs := pattern.HotspotNode(sc.MeshWidth, sc.MeshHeight)
	return pattern.PortFlows(sp, sc.MeshWidth, sc.MeshHeight, obs, sc.Seed)
}

// patternResult assembles the common Result fields of a single-router
// pattern run.
func patternResult(kind Kind, sc Scenario, tr traffic.PatternRunResult) *Result {
	return &Result{
		Fabric:           kind,
		Scenario:         sc.Name,
		FreqMHz:          sc.FreqMHz,
		Cycles:           sc.Cycles,
		WarmupCycles:     tr.WarmupCycles,
		WordsSent:        tr.WordsSent,
		WordsDelivered:   tr.WordsDelivered,
		ThroughputMbps:   stats.Rate(tr.WordsDelivered, wordBits, uint64(sc.Cycles), sc.FreqMHz),
		Power:            powerFrom(tr.Power),
		PerComponent:     attributionComponents(tr.Attribution, tr.Power.StaticUW),
		Latency:          latencyFrom(tr.Latency),
		FlowsRequested:   tr.FlowsRequested,
		FlowsEstablished: tr.FlowsEstablished,
	}
}

// runPacketPattern drives the packet-switched single-router model with
// the projected pattern flows.
func runPacketPattern(cfg config, sc Scenario) (*Result, error) {
	sp, inj, err := sc.patternSetup()
	if err != nil {
		return nil, err
	}
	var ks *KernelStats
	rc := traffic.RunConfig{
		Cycles: sc.Cycles, FreqMHz: sc.FreqMHz,
		Lib: cfg.mustLib(), PSParams: cfg.psParams(),
		Seed: sc.Seed, Kernel: cfg.simKernel(), SimWorkers: cfg.parallelism,
		WordsPerStream: sc.WordsPerStream,
		Observe:        cfg.observeKernel(&ks),
		WarmupCycles:   sc.WarmupCycles, WarmupAuto: sc.WarmupAuto,
		RetainLatency: sc.poolLatency,
		Obs:           cfg.obs,
	}
	tr, err := traffic.RunPacketPattern(patternPortFlows(sc, sp), inj, sc.Data.FlipProb, rc)
	if err != nil {
		return nil, err
	}
	res := patternResult(KindPacket, sc, tr)
	res.Kernel = ks
	return res, nil
}

// runTDMPattern drives the Æthereal-style TDM single-router model with
// the projected pattern flows.
func runTDMPattern(cfg config, sc Scenario) (*Result, error) {
	sp, inj, err := sc.patternSetup()
	if err != nil {
		return nil, err
	}
	var ks *KernelStats
	rc := traffic.RunConfig{
		Cycles: sc.Cycles, FreqMHz: sc.FreqMHz,
		Lib:  cfg.mustLib(),
		Seed: sc.Seed, Kernel: cfg.simKernel(), SimWorkers: cfg.parallelism,
		WordsPerStream: sc.WordsPerStream,
		Observe:        cfg.observeKernel(&ks),
		WarmupCycles:   sc.WarmupCycles, WarmupAuto: sc.WarmupAuto,
		RetainLatency: sc.poolLatency,
		Obs:           cfg.obs,
	}
	tr, err := traffic.RunTDMPattern(cfg.tdmParams(), patternPortFlows(sc, sp), inj, sc.Data.FlipProb, rc)
	if err != nil {
		return nil, err
	}
	res := patternResult(KindTDM, sc, tr)
	res.Kernel = ks
	return res, nil
}
