package noc

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/stats"
)

// Power is the three-bucket power estimate of one run, in the style of
// the paper's Power Compiler split (Section 7.2).
type Power struct {
	// StaticUW is the leakage power in µW.
	StaticUW float64 `json:"static_uw"`
	// InternalUW is the dynamic internal-cell power in µW (clock network
	// plus in-cell toggle energy).
	InternalUW float64 `json:"internal_uw"`
	// SwitchingUW is the dynamic switching (net charging) power in µW.
	SwitchingUW float64 `json:"switching_uw"`
	// TotalUW is the sum of the three buckets.
	TotalUW float64 `json:"total_uw"`
	// DynamicUWPerMHz is the frequency-normalized dynamic power, the
	// unit of the paper's Figure 10.
	DynamicUWPerMHz float64 `json:"dynamic_uw_per_mhz"`
}

// powerFrom converts the internal breakdown.
func powerFrom(b power.Breakdown) *Power {
	return &Power{
		StaticUW:        b.StaticUW,
		InternalUW:      b.InternalUW,
		SwitchingUW:     b.SwitchingUW,
		TotalUW:         b.TotalUW(),
		DynamicUWPerMHz: b.DynamicPerMHz(),
	}
}

// ComponentPower is one entry of a Result's per-component power
// attribution. For single-router runs the components are the meter's
// activity classes (the clock network, register/gate/link/buffer-bit
// toggles, leakage); for mesh workload runs they are the individual
// routers, each with its own meter fed by its own activity. In both
// cases the entries' TotalUW sums (within float tolerance) to the
// assembly-level Power.TotalUW.
type ComponentPower struct {
	// Component names the entry: an activity class ("clock",
	// "register", "leakage", ...) or a mesh node ("node(1,2)").
	Component string `json:"component"`
	// StaticUW is the entry's leakage share in µW.
	StaticUW float64 `json:"static_uw"`
	// DynamicUW is the entry's dynamic power in µW.
	DynamicUW float64 `json:"dynamic_uw"`
	// TotalUW is the entry's total power in µW.
	TotalUW float64 `json:"total_uw"`
}

// attributionComponents converts a meter's class attribution plus the
// design's leakage into the per-component form. The attribution slice is
// already deterministically ordered (sorted by class); leakage goes
// last, keeping classes grouped.
func attributionComponents(att []power.AttributionEntry, staticUW float64) []ComponentPower {
	out := make([]ComponentPower, 0, len(att)+1)
	for _, e := range att {
		out = append(out, ComponentPower{
			Component: e.Class,
			DynamicUW: e.UW,
			TotalUW:   e.UW,
		})
	}
	out = append(out, ComponentPower{
		Component: "leakage",
		StaticUW:  staticUW,
		TotalUW:   staticUW,
	})
	return out
}

// nodeComponents converts per-node breakdowns (row-major over a W×H
// mesh) into the per-component form.
func nodeComponents(nodes []power.Breakdown, w int) []ComponentPower {
	out := make([]ComponentPower, 0, len(nodes))
	for i, b := range nodes {
		out = append(out, ComponentPower{
			Component: fmt.Sprintf("node(%d,%d)", i%w, i/w),
			StaticUW:  b.StaticUW,
			DynamicUW: b.DynamicUW(),
			TotalUW:   b.TotalUW(),
		})
	}
	return out
}

// Latency summarizes the word-delivery latency distribution of a run, in
// clock cycles.
type Latency struct {
	// Words is the number of timed deliveries.
	Words int `json:"words"`
	// MeanCycles, MinCycles and MaxCycles describe the distribution.
	MeanCycles float64 `json:"mean_cycles"`
	MinCycles  float64 `json:"min_cycles"`
	MaxCycles  float64 `json:"max_cycles"`
	// StdDevCycles is the population standard deviation.
	StdDevCycles float64 `json:"stddev_cycles"`
	// JitterCycles is max minus min — zero for an established circuit,
	// the paper's bounded-latency guarantee in its strongest form.
	JitterCycles float64 `json:"jitter_cycles"`
	// Samples holds the raw per-word latency observations when the run
	// was asked to retain them (replicated runs pool these into
	// Replication.PooledLatency). Excluded from the wire format: the
	// summary above is the stable cross-kernel contract.
	Samples []float64 `json:"-"`
}

// latencyFrom converts a measured series.
func latencyFrom(s stats.Series) *Latency {
	if s.N() == 0 {
		return nil
	}
	return &Latency{
		Samples:      s.Samples(),
		Words:        s.N(),
		MeanCycles:   s.Mean(),
		MinCycles:    s.Min(),
		MaxCycles:    s.Max(),
		StdDevCycles: s.StdDev(),
		JitterCycles: s.Max() - s.Min(),
	}
}

// Channel is the outcome of one guaranteed-throughput channel of a
// workload run.
type Channel struct {
	// Workload names the application the channel belongs to.
	Workload string `json:"workload"`
	// Name is the channel's name in the application graph.
	Name string `json:"name"`
	// Lanes is the number of parallel lane paths allocated.
	Lanes int `json:"lanes"`
	// Hops is the route length in routers.
	Hops int `json:"hops"`
	// RequiredMbps and AchievedMbps compare the requirement against the
	// measured delivery rate.
	RequiredMbps float64 `json:"required_mbps"`
	AchievedMbps float64 `json:"achieved_mbps"`
	// WordsDelivered counts words that arrived at the destination tile.
	WordsDelivered uint64 `json:"words_delivered"`
	// Met reports whether everything offered arrived (minus an
	// in-flight allowance for words still in converters and links).
	Met bool `json:"met"`
}

// Placement records where a workload process was mapped.
type Placement struct {
	// Workload names the application.
	Workload string `json:"workload"`
	// Process is the process name in the application graph.
	Process string `json:"process"`
	// X and Y are the tile coordinates.
	X int `json:"x"`
	Y int `json:"y"`
}

// Result is the structured outcome of running one Scenario on one
// Fabric. It marshals to JSON.
type Result struct {
	// Fabric and Scenario identify the run.
	Fabric   Kind   `json:"fabric"`
	Scenario string `json:"scenario"`
	// FreqMHz and Cycles echo the operating point.
	FreqMHz float64 `json:"freq_mhz"`
	Cycles  int     `json:"cycles"`
	// WarmupCycles is the effective warm-up of a pattern run: the
	// scenario's explicit truncation, or the MSER-detected steady-state
	// cycle when WarmupAuto was set. Statistics cover the measurement
	// window [WarmupCycles, Cycles); on the circuit mesh that includes
	// the word counts and the throughput window, on the packet/TDM
	// projections the latency distribution.
	WarmupCycles uint64 `json:"warmup_cycles,omitempty"`
	// WordsSent and WordsDelivered count 16-bit data words offered by
	// all sources and delivered at an observable endpoint. The circuit-
	// and packet-switched routers can only observe streams terminating
	// at the tile port end to end; the TDM functional model observes
	// every output port, so its count covers all streams.
	WordsSent      uint64 `json:"words_sent"`
	WordsDelivered uint64 `json:"words_delivered"`
	// ThroughputMbps is the aggregate delivered bandwidth.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// Power is the three-bucket estimate (nil when the run measured
	// nothing, which does not happen for the built-in fabrics).
	Power *Power `json:"power,omitempty"`
	// PerComponent attributes the run's power below the assembly level:
	// per activity class for single-router runs, per router for mesh
	// workload runs. Entries are deterministically ordered and their
	// totals sum (within float tolerance) to Power.TotalUW.
	PerComponent []ComponentPower `json:"per_component,omitempty"`
	// Latency is the word-delivery latency distribution; nil when the
	// scenario has no observable stream or latency was disabled. The
	// TDM fabric measures it in-run; the circuit- and packet-switched
	// fabrics measure it with a canonical single-stream North→Tile
	// harness built from the fabric's configuration and the scenario's
	// load (with background contention when the scenario's streams
	// share an output port) — the router's characteristic latency at
	// that operating point, not a per-stream trace of this exact run.
	Latency *Latency `json:"latency,omitempty"`
	// Channels and Placements describe workload runs.
	Channels   []Channel   `json:"channels,omitempty"`
	Placements []Placement `json:"placements,omitempty"`
	// LinkUtilization is the fraction of mesh lane capacity allocated
	// (workload and circuit pattern runs).
	LinkUtilization float64 `json:"link_utilization,omitempty"`
	// FlowsRequested and FlowsEstablished describe pattern runs: how
	// many flows the spatial pattern generated and how many the fabric
	// admitted (lane paths on the circuit mesh, slot-table reservations
	// on TDM; the packet router admits everything and queues instead).
	FlowsRequested   int `json:"flows_requested,omitempty"`
	FlowsEstablished int `json:"flows_established,omitempty"`
	// NodeVCD is the captured waveform of node (0,0) when WithNodeTrace
	// was requested on a workload run.
	NodeVCD []byte `json:"node_vcd,omitempty"`
	// Replication carries the mean/min/max/CI95 aggregates across a
	// replicated run (Scenario.Replications > 1). The point fields
	// above echo replication 0; the aggregates are the statistically
	// meaningful figures.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Kernel carries scheduling diagnostics of the simulation world the
	// run executed on. It is excluded from the JSON encoding so Result
	// output stays byte-identical across kernels and worker counts (the
	// property the CI equivalence compares enforce); consume it
	// programmatically, in kernel tests and benchmarks.
	Kernel *KernelStats `json:"-"`
	// CacheStats reports how the content-addressed result cache handled
	// this run: nil when caching was off, otherwise the run's content
	// address and whether it was served from the cache. Excluded from
	// the wire format — cached and fresh results are byte-identical.
	CacheStats *CacheStats `json:"-"`
	// Metrics is the deterministic sorted snapshot of the run's metrics
	// registry when WithMetrics was enabled: kernel scheduling gauges,
	// lane-allocator counters, cache traffic. Excluded from the wire
	// format so Result output bytes are identical with metrics on or
	// off; nil when metrics were off. A run served from the cache
	// simulates nothing, so its snapshot carries only the cache
	// counters.
	Metrics []obs.Sample `json:"-"`
}

// KernelStats is the scheduling diagnostic a run's simulation world
// reports: Parked counts the components sitting on the active kernel's
// parked list when the run ended, Activations the park exits it
// performed, and Polls the Quiescent() invocations the kernel issued —
// the work proxy the active-vs-event comparison is judged by. Parked
// and Activations are zero outside KernelActive.
type KernelStats struct {
	Parked      int
	Activations uint64
	Polls       uint64
}

// MetAllRequirements reports whether every channel of a workload run met
// its guaranteed-throughput requirement.
func (r *Result) MetAllRequirements() bool {
	for _, c := range r.Channels {
		if !c.Met {
			return false
		}
	}
	return true
}

// JSON renders the result as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
