package noc

import (
	"encoding/json"

	"repro/internal/power"
	"repro/internal/stats"
)

// Power is the three-bucket power estimate of one run, in the style of
// the paper's Power Compiler split (Section 7.2).
type Power struct {
	// StaticUW is the leakage power in µW.
	StaticUW float64 `json:"static_uw"`
	// InternalUW is the dynamic internal-cell power in µW (clock network
	// plus in-cell toggle energy).
	InternalUW float64 `json:"internal_uw"`
	// SwitchingUW is the dynamic switching (net charging) power in µW.
	SwitchingUW float64 `json:"switching_uw"`
	// TotalUW is the sum of the three buckets.
	TotalUW float64 `json:"total_uw"`
	// DynamicUWPerMHz is the frequency-normalized dynamic power, the
	// unit of the paper's Figure 10.
	DynamicUWPerMHz float64 `json:"dynamic_uw_per_mhz"`
}

// powerFrom converts the internal breakdown.
func powerFrom(b power.Breakdown) *Power {
	return &Power{
		StaticUW:        b.StaticUW,
		InternalUW:      b.InternalUW,
		SwitchingUW:     b.SwitchingUW,
		TotalUW:         b.TotalUW(),
		DynamicUWPerMHz: b.DynamicPerMHz(),
	}
}

// Latency summarizes the word-delivery latency distribution of a run, in
// clock cycles.
type Latency struct {
	// Words is the number of timed deliveries.
	Words int `json:"words"`
	// MeanCycles, MinCycles and MaxCycles describe the distribution.
	MeanCycles float64 `json:"mean_cycles"`
	MinCycles  float64 `json:"min_cycles"`
	MaxCycles  float64 `json:"max_cycles"`
	// StdDevCycles is the population standard deviation.
	StdDevCycles float64 `json:"stddev_cycles"`
	// JitterCycles is max minus min — zero for an established circuit,
	// the paper's bounded-latency guarantee in its strongest form.
	JitterCycles float64 `json:"jitter_cycles"`
}

// latencyFrom converts a measured series.
func latencyFrom(s stats.Series) *Latency {
	if s.N() == 0 {
		return nil
	}
	return &Latency{
		Words:        s.N(),
		MeanCycles:   s.Mean(),
		MinCycles:    s.Min(),
		MaxCycles:    s.Max(),
		StdDevCycles: s.StdDev(),
		JitterCycles: s.Max() - s.Min(),
	}
}

// Channel is the outcome of one guaranteed-throughput channel of a
// workload run.
type Channel struct {
	// Workload names the application the channel belongs to.
	Workload string `json:"workload"`
	// Name is the channel's name in the application graph.
	Name string `json:"name"`
	// Lanes is the number of parallel lane paths allocated.
	Lanes int `json:"lanes"`
	// Hops is the route length in routers.
	Hops int `json:"hops"`
	// RequiredMbps and AchievedMbps compare the requirement against the
	// measured delivery rate.
	RequiredMbps float64 `json:"required_mbps"`
	AchievedMbps float64 `json:"achieved_mbps"`
	// WordsDelivered counts words that arrived at the destination tile.
	WordsDelivered uint64 `json:"words_delivered"`
	// Met reports whether everything offered arrived (minus an
	// in-flight allowance for words still in converters and links).
	Met bool `json:"met"`
}

// Placement records where a workload process was mapped.
type Placement struct {
	// Workload names the application.
	Workload string `json:"workload"`
	// Process is the process name in the application graph.
	Process string `json:"process"`
	// X and Y are the tile coordinates.
	X int `json:"x"`
	Y int `json:"y"`
}

// Result is the structured outcome of running one Scenario on one
// Fabric. It marshals to JSON.
type Result struct {
	// Fabric and Scenario identify the run.
	Fabric   Kind   `json:"fabric"`
	Scenario string `json:"scenario"`
	// FreqMHz and Cycles echo the operating point.
	FreqMHz float64 `json:"freq_mhz"`
	Cycles  int     `json:"cycles"`
	// WordsSent and WordsDelivered count 16-bit data words offered by
	// all sources and delivered at an observable endpoint. The circuit-
	// and packet-switched routers can only observe streams terminating
	// at the tile port end to end; the TDM functional model observes
	// every output port, so its count covers all streams.
	WordsSent      uint64 `json:"words_sent"`
	WordsDelivered uint64 `json:"words_delivered"`
	// ThroughputMbps is the aggregate delivered bandwidth.
	ThroughputMbps float64 `json:"throughput_mbps"`
	// Power is the three-bucket estimate (nil when the run measured
	// nothing, which does not happen for the built-in fabrics).
	Power *Power `json:"power,omitempty"`
	// Latency is the word-delivery latency distribution; nil when the
	// scenario has no observable stream or latency was disabled. The
	// TDM fabric measures it in-run; the circuit- and packet-switched
	// fabrics measure it with a canonical single-stream North→Tile
	// harness built from the fabric's configuration and the scenario's
	// load (with background contention when the scenario's streams
	// share an output port) — the router's characteristic latency at
	// that operating point, not a per-stream trace of this exact run.
	Latency *Latency `json:"latency,omitempty"`
	// Channels and Placements describe workload runs.
	Channels   []Channel   `json:"channels,omitempty"`
	Placements []Placement `json:"placements,omitempty"`
	// LinkUtilization is the fraction of mesh lane capacity allocated
	// (workload runs).
	LinkUtilization float64 `json:"link_utilization,omitempty"`
	// NodeVCD is the captured waveform of node (0,0) when WithNodeTrace
	// was requested on a workload run.
	NodeVCD []byte `json:"node_vcd,omitempty"`
}

// MetAllRequirements reports whether every channel of a workload run met
// its guaranteed-throughput requirement.
func (r *Result) MetAllRequirements() bool {
	for _, c := range r.Channels {
		if !c.Met {
			return false
		}
	}
	return true
}

// JSON renders the result as indented JSON.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
