package noc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWorkloadRunUMTS(t *testing.T) {
	res, err := CircuitSwitched().Run(Scenario{
		Name:      "umts",
		FreqMHz:   100,
		Cycles:    6000,
		Workloads: []string{"umts"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Channels) == 0 || len(res.Placements) == 0 {
		t.Fatalf("workload result not populated: %d channels, %d placements",
			len(res.Channels), len(res.Placements))
	}
	if !res.MetAllRequirements() {
		for _, c := range res.Channels {
			if !c.Met {
				t.Errorf("channel %s: %.2f of %.2f Mbit/s",
					c.Name, c.AchievedMbps, c.RequiredMbps)
			}
		}
	}
	if res.LinkUtilization <= 0 || res.LinkUtilization > 1 {
		t.Errorf("link utilization %v out of (0,1]", res.LinkUtilization)
	}
	if res.Power == nil || res.Power.TotalUW <= 0 {
		t.Error("workload power not populated")
	}
	// The whole result must survive JSON for nocmesh -json.
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Channels) != len(res.Channels) {
		t.Errorf("channels lost in JSON: %d != %d", len(back.Channels), len(res.Channels))
	}
}

func TestWorkloadNodeTrace(t *testing.T) {
	res, err := CircuitSwitched(WithNodeTrace(256)).Run(Scenario{
		Name:      "drm",
		FreqMHz:   25,
		Cycles:    2000,
		Workloads: []string{"drm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeVCD) == 0 {
		t.Fatal("WithNodeTrace produced no VCD")
	}
	if !bytes.Contains(res.NodeVCD, []byte("$timescale")) {
		t.Errorf("VCD header missing:\n%.120s", res.NodeVCD)
	}
}

func TestWorkloadMultimode(t *testing.T) {
	res, err := CircuitSwitched().Run(Scenario{
		Name:       "multi",
		FreqMHz:    100,
		Cycles:     4000,
		MeshWidth:  5,
		MeshHeight: 4,
		Workloads:  []string{"umts", "drm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range res.Channels {
		seen[c.Workload] = true
	}
	if !seen["umts"] || !seen["drm"] {
		t.Fatalf("missing per-workload channels: %v", seen)
	}
}

func TestWorkloadGraphNames(t *testing.T) {
	for _, wl := range Workloads() {
		if _, err := workloadGraph(wl); err != nil {
			t.Errorf("advertised workload %q does not resolve: %v", wl, err)
		}
	}
	if _, err := workloadGraph("hiperlan"); err != nil {
		t.Errorf("alias hiperlan rejected: %v", err)
	}
}

func TestExperimentsFacade(t *testing.T) {
	exps := Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments exposed", len(exps))
	}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table3"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Stream") {
		t.Errorf("table3 render: %q", buf.String())
	}
	data, err := ExperimentData("table3")
	if err != nil {
		t.Fatal(err)
	}
	if data == nil {
		t.Fatal("nil experiment data")
	}
	b, err := ExperimentJSON("table3")
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   string          `json:"id"`
		Data json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("experiment JSON invalid: %v", err)
	}
	if decoded.ID != "table3" || len(decoded.Data) == 0 {
		t.Errorf("experiment JSON incomplete: %s", b)
	}
	if _, err := ExperimentData("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestStreamOFDMSymbols(t *testing.T) {
	res, err := StreamOFDMSymbols(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Symbols != 5 {
		t.Fatalf("delivered %d symbols, want 5", res.Symbols)
	}
	if !res.Met() {
		t.Fatalf("deadline property violated: %+v", res)
	}
	if res.WordsPerSymbol != 160 || res.CyclesPerSymbol != 800 {
		t.Fatalf("symbol geometry %d words / %d cycles", res.WordsPerSymbol, res.CyclesPerSymbol)
	}
	if _, err := StreamOFDMSymbols(0); err == nil {
		t.Error("zero symbols accepted")
	}
}

func TestCaptureWaveform(t *testing.T) {
	wf, err := CaptureWaveform()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wf.ASCII, "tx0.lane") {
		t.Errorf("ASCII waveform missing probe name:\n%s", wf.ASCII)
	}
	// The serialized word's nibbles (0x7CAFE) must appear on the lane.
	if !strings.Contains(wf.ASCII, "7|c|a|f|e") {
		t.Errorf("ASCII waveform missing the 0x7CAFE nibble sequence:\n%s", wf.ASCII)
	}
	if len(wf.VCD) == 0 || wf.Cycles == 0 || len(wf.Signals) == 0 {
		t.Errorf("waveform not populated: %d VCD bytes, %d cycles, %d signals",
			len(wf.VCD), wf.Cycles, len(wf.Signals))
	}
}

func TestRenderSynth(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSynthTable(&buf, "nominal"); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"circuit switched", "packet switched", "Aethereal"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("synth table missing %q", frag)
		}
	}
	buf.Reset()
	if err := RenderSynthDesign(&buf, "circuit", "hvt"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leakage") {
		t.Errorf("design report missing leakage: %q", buf.String())
	}
	if err := RenderSynthTable(&buf, "ulv"); err == nil {
		t.Error("unknown corner accepted")
	}
	if err := RenderSynthDesign(&buf, "soc", "nominal"); err == nil {
		t.Error("unknown design accepted")
	}
}
