package noc

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		fabric Fabric
		frag   string
	}{
		{"negative lanes", CircuitSwitched(WithLanes(-2)), "lane"},
		{"zero lane width", CircuitSwitched(WithLaneWidth(-1)), "lane"},
		{"non-Fig6 lane width", CircuitSwitched(WithLaneWidth(8)), "Fig. 6"},
		{"zero VCs", PacketSwitched(WithVirtualChannels(-1)), "VC"},
		{"negative buffer depth", PacketSwitched(WithBufferDepth(-4)), "depth"},
		{"negative slots", AetherealTDM(WithSlots(-1)), "slot"},
		{"negative BE depth", AetherealTDM(WithBEDepth(-1)), "BE depth"},
		{"bad corner", CircuitSwitched(WithLibraryCorner("ulp")), "corner"},
		{"bad latency words", PacketSwitched(WithLatencyWords(-7)), "latency"},
	}
	for _, c := range cases {
		err := c.fabric.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid option", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
		// Run must refuse too, before simulating anything.
		if _, err := c.fabric.Run(Scenario{Name: "x"}); err == nil {
			t.Errorf("%s: Run accepted an invalid fabric", c.name)
		}
	}
}

func TestNewSimulatorRejectsInvalidFabric(t *testing.T) {
	if _, err := NewSimulator(CircuitSwitched(WithLibraryCorner("nope"))); err == nil {
		t.Fatal("NewSimulator accepted an invalid fabric")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Name: "dup", Streams: []Stream{{ID: 1, In: Tile, Out: East}, {ID: 1, In: North, Out: Tile}}},
		{Name: "selfloop", Streams: []Stream{{ID: 1, In: East, Out: East}}},
		{Name: "zeroid", Streams: []Stream{{ID: 0, In: Tile, Out: East}}},
		{Name: "badport", Streams: []Stream{{ID: 1, In: Port(9), Out: East}}},
		{Name: "mixed", Streams: []Stream{{ID: 1, In: Tile, Out: East}}, Workloads: []string{"umts"}},
		{Name: "badwl", Workloads: []string{"bluetooth"}},
		{Name: "tinymesh", MeshWidth: 1, MeshHeight: 1, Workloads: []string{"drm"}},
	}
	for _, sc := range bad {
		if err := sc.withDefaults().Validate(); err == nil {
			t.Errorf("scenario %q: Validate accepted invalid input", sc.Name)
		}
	}
	if err := (Scenario{Name: "ok"}).withDefaults().Validate(); err != nil {
		t.Errorf("empty scenario (paper I) rejected: %v", err)
	}
}

// TestFabricParity runs the same scenario on all three fabrics and
// checks each returns a populated result.
func TestFabricParity(t *testing.T) {
	sim, err := NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 1500
	results, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	kinds := map[Kind]*Result{}
	for _, r := range results {
		kinds[r.Fabric] = r
		if r.Scenario != "IV" {
			t.Errorf("%s: scenario %q, want IV", r.Fabric, r.Scenario)
		}
		if r.WordsSent == 0 || r.WordsDelivered == 0 {
			t.Errorf("%s: no traffic (sent=%d, delivered=%d)",
				r.Fabric, r.WordsSent, r.WordsDelivered)
		}
		if r.ThroughputMbps <= 0 {
			t.Errorf("%s: zero throughput", r.Fabric)
		}
		if r.Power == nil || r.Power.TotalUW <= 0 {
			t.Errorf("%s: power not populated", r.Fabric)
		}
		if r.Latency == nil || r.Latency.Words == 0 {
			t.Errorf("%s: latency not populated", r.Fabric)
		}
	}
	for _, k := range []Kind{KindCircuit, KindPacket, KindTDM} {
		if kinds[k] == nil {
			t.Errorf("missing result for fabric %s", k)
		}
	}
	// The paper's headline shape: the circuit-switched router is the
	// cheapest of the three, and its circuit delivers with zero jitter.
	cs, ps := kinds[KindCircuit], kinds[KindPacket]
	if cs.Power.TotalUW >= ps.Power.TotalUW {
		t.Errorf("circuit power %.1f uW not below packet %.1f uW",
			cs.Power.TotalUW, ps.Power.TotalUW)
	}
	if cs.Latency.JitterCycles != 0 {
		t.Errorf("circuit jitter %.1f, want 0", cs.Latency.JitterCycles)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	f := CircuitSwitched(WithLatencyWords(50))
	sc, err := PaperScenario("II")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 1000
	res, err := f.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// The kernel diagnostics are deliberately excluded from the wire
	// format (cross-kernel byte-identity), so they cannot round-trip.
	if res.Kernel == nil {
		t.Error("run attached no kernel diagnostics")
	}
	res.Kernel = nil
	// The raw latency samples are likewise off the wire: the summary
	// moments are the stable contract, the samples exist only so
	// replicated runs can pool them.
	if res.Latency != nil {
		res.Latency.Samples = nil
	}
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *res)
	}
	// Spot-check the wire names stay stable for downstream consumers.
	for _, key := range []string{`"fabric"`, `"words_delivered"`, `"throughput_mbps"`,
		`"power"`, `"static_uw"`, `"latency"`, `"jitter_cycles"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON missing key %s:\n%s", key, b)
		}
	}
}

func TestPortJSON(t *testing.T) {
	b, err := json.Marshal(PaperStreams())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"in":"tile"`) {
		t.Fatalf("ports not marshaled by name: %s", b)
	}
	var back []Stream
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, PaperStreams()) {
		t.Fatalf("stream round trip mismatch: %+v", back)
	}
	var p Port
	if err := json.Unmarshal([]byte(`"sideways"`), &p); err == nil {
		t.Fatal("unknown port name accepted")
	}
}

// TestClockGatingReducesPower checks the WithClockGating option flows
// through to the simulation.
func TestClockGatingReducesPower(t *testing.T) {
	sc, err := PaperScenario("I")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 1000
	u, err := CircuitSwitched().Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CircuitSwitched(WithClockGating(true)).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Power.TotalUW >= u.Power.TotalUW {
		t.Errorf("gated power %.1f uW not below ungated %.1f uW",
			g.Power.TotalUW, u.Power.TotalUW)
	}
}

// TestLaneOptionBoundsStreams checks WithLanes interacts with stream IDs
// the way the lane-division architecture dictates.
func TestLaneOptionBoundsStreams(t *testing.T) {
	sc := Scenario{Name: "IV3", Streams: PaperStreams()} // IDs 1..3
	if _, err := CircuitSwitched(WithLanes(2), WithLatencyWords(0)).Run(sc); err == nil {
		t.Fatal("2-lane router accepted stream 3")
	}
	if _, err := CircuitSwitched(WithLanes(3), WithLatencyWords(0)).Run(sc); err != nil {
		t.Fatalf("3-lane router rejected streams 1..3: %v", err)
	}
}

func TestTDMRejectsSharedInputPort(t *testing.T) {
	sc := Scenario{Name: "shared", Streams: []Stream{
		{ID: 1, In: Tile, Out: East},
		{ID: 2, In: Tile, Out: West},
	}}
	if _, err := AetherealTDM().Run(sc); err == nil {
		t.Fatal("TDM fabric accepted two streams on one input port")
	}
}

func TestWorkloadUnsupportedOnPacketAndTDM(t *testing.T) {
	sc := Scenario{Name: "wl", Workloads: []string{"drm"}}
	if _, err := PacketSwitched().Run(sc); err == nil {
		t.Fatal("packet fabric accepted a workload scenario")
	}
	if _, err := AetherealTDM().Run(sc); err == nil {
		t.Fatal("TDM fabric accepted a workload scenario")
	}
}
