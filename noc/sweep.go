package noc

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// FabricSpec is the JSON-encodable description of one fabric
// configuration — the declarative counterpart of the CircuitSwitched /
// PacketSwitched / AetherealTDM constructors and their options. Zero
// fields mean the paper's defaults.
type FabricSpec struct {
	// Kind selects the implementation: "circuit", "packet" or
	// "aethereal".
	Kind Kind `json:"kind"`
	// Lanes and LaneWidth configure the circuit-switched router
	// (WithLanes / WithLaneWidth).
	Lanes     int `json:"lanes,omitempty"`
	LaneWidth int `json:"lane_width,omitempty"`
	// VCs and BufferDepth configure the packet-switched router
	// (WithVirtualChannels / WithBufferDepth).
	VCs         int `json:"vcs,omitempty"`
	BufferDepth int `json:"buffer_depth,omitempty"`
	// Slots and BEDepth configure the TDM router (WithSlots /
	// WithBEDepth).
	Slots   int `json:"slots,omitempty"`
	BEDepth int `json:"be_depth,omitempty"`
	// Gated enables the circuit-switched clock-gating ablation.
	Gated bool `json:"gated,omitempty"`
	// Corner selects the library corner: "nominal" (default) or "hvt".
	Corner string `json:"corner,omitempty"`
	// LatencyWords overrides the latency sample count; nil keeps the
	// default, 0 disables the latency measurement (WithLatencyWords).
	LatencyWords *int `json:"latency_words,omitempty"`
	// Kernel selects the simulation kernel: "event" (default), "gated",
	// "naive" or "active" (WithKernel). Results are byte-identical under
	// all of them; the CI equivalence check runs the same sweep under
	// each and compares. Unknown names are rejected at spec validation.
	Kernel string `json:"kernel,omitempty"`
	// SimWorkers bounds the active kernel's Eval shard pool
	// (WithParallelism); 0 means GOMAXPROCS. Results are byte-identical
	// for every value, which the CI worker-count byte-compare checks.
	SimWorkers int `json:"sim_workers,omitempty"`
}

// options converts the spec into the functional options it describes.
func (fs FabricSpec) options() []Option {
	var opts []Option
	if fs.Lanes != 0 {
		opts = append(opts, WithLanes(fs.Lanes))
	}
	if fs.LaneWidth != 0 {
		opts = append(opts, WithLaneWidth(fs.LaneWidth))
	}
	if fs.VCs != 0 {
		opts = append(opts, WithVirtualChannels(fs.VCs))
	}
	if fs.BufferDepth != 0 {
		opts = append(opts, WithBufferDepth(fs.BufferDepth))
	}
	if fs.Slots != 0 {
		opts = append(opts, WithSlots(fs.Slots))
	}
	if fs.BEDepth != 0 {
		opts = append(opts, WithBEDepth(fs.BEDepth))
	}
	if fs.Gated {
		opts = append(opts, WithClockGating(true))
	}
	if fs.Corner != "" {
		opts = append(opts, WithLibraryCorner(fs.Corner))
	}
	if fs.LatencyWords != nil {
		opts = append(opts, WithLatencyWords(*fs.LatencyWords))
	}
	if fs.Kernel != "" {
		opts = append(opts, WithKernel(Kernel(fs.Kernel)))
	}
	if fs.SimWorkers != 0 {
		opts = append(opts, WithParallelism(fs.SimWorkers))
	}
	return opts
}

// Fabric builds and validates the fabric the spec describes.
func (fs FabricSpec) Fabric() (Fabric, error) {
	var f Fabric
	switch fs.Kind {
	case KindCircuit:
		f = CircuitSwitched(fs.options()...)
	case KindPacket:
		f = PacketSwitched(fs.options()...)
	case KindTDM:
		f = AetherealTDM(fs.options()...)
	default:
		return nil, fmt.Errorf("noc: sweep: unknown fabric kind %q (have %s, %s, %s)",
			fs.Kind, KindCircuit, KindPacket, KindTDM)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// Grid describes a cartesian product of scenario parameters. Each empty
// axis contributes the paper's default; each populated axis multiplies
// the cell count by its length. Grid scenarios are named after their
// base scenario plus one suffix per populated axis, so every cell is
// identifiable in results.
type Grid struct {
	// Scenarios names the base single-router scenarios ("I".."IV");
	// empty means all four. Mutually exclusive with Workloads.
	Scenarios []string `json:"scenarios,omitempty"`
	// Workloads switches the grid to mesh workload scenarios: each
	// entry is a comma-separated application list mapped concurrently
	// (e.g. "hiperlan2,umts,drm") and becomes one base scenario.
	Workloads []string `json:"workloads,omitempty"`
	// Patterns switches the grid to synthetic-pattern scenarios: each
	// entry is a spatial pattern name (see Patterns()), e.g. "uniform"
	// or "hotspot:0.7", and becomes one base scenario. Mutually
	// exclusive with Scenarios and Workloads.
	Patterns []string `json:"patterns,omitempty"`
	// MeshSizes sweeps the mesh as N×N placements — the large-mesh
	// axis the event kernel's fast-forward makes affordable. Requires
	// Workloads or Patterns.
	MeshSizes []int `json:"mesh_sizes,omitempty"`
	// InjectionRates sweeps the pattern injection rate in words per
	// cycle per node (the process shape comes from the base scenario's
	// Injection, default Poisson). Requires Patterns.
	InjectionRates []float64 `json:"injection_rates,omitempty"`
	// Burstiness sweeps the on-off burst length: each value switches
	// the injection process to "onoff" with that mean burst length.
	// Requires Patterns.
	Burstiness []float64 `json:"burstiness,omitempty"`
	// FreqsMHz sweeps the network clock.
	FreqsMHz []float64 `json:"freqs_mhz,omitempty"`
	// Loads sweeps the offered load fraction.
	Loads []float64 `json:"loads,omitempty"`
	// FlipProbs sweeps the data bit-flip fraction.
	FlipProbs []float64 `json:"flip_probs,omitempty"`
	// Cycles sweeps the simulated length.
	Cycles []int `json:"cycles,omitempty"`
}

// bases returns the grid's base scenarios: the named paper scenarios,
// one workload scenario per Workloads entry, or one pattern scenario
// per Patterns entry.
func (g Grid) bases() ([]Scenario, error) {
	kinds := 0
	for _, populated := range []bool{len(g.Scenarios) > 0, len(g.Workloads) > 0, len(g.Patterns) > 0} {
		if populated {
			kinds++
		}
	}
	if kinds > 1 {
		return nil, fmt.Errorf("noc: sweep: grid scenarios, workloads and patterns are mutually exclusive")
	}
	if len(g.Patterns) == 0 && (len(g.InjectionRates) > 0 || len(g.Burstiness) > 0) {
		return nil, fmt.Errorf("noc: sweep: injection_rates and burstiness require patterns")
	}
	if len(g.Patterns) > 0 {
		var out []Scenario
		for _, p := range g.Patterns {
			p = strings.TrimSpace(p)
			if p == "" {
				return nil, fmt.Errorf("noc: sweep: empty pattern entry")
			}
			out = append(out, Scenario{Name: "pat:" + p, Pattern: p})
		}
		return out, nil
	}
	if len(g.Workloads) > 0 {
		var out []Scenario
		for _, entry := range g.Workloads {
			var apps []string
			for _, a := range strings.Split(entry, ",") {
				if a = strings.TrimSpace(a); a != "" {
					apps = append(apps, a)
				}
			}
			if len(apps) == 0 {
				return nil, fmt.Errorf("noc: sweep: empty workload entry %q", entry)
			}
			out = append(out, Scenario{Name: "wl:" + entry, Workloads: apps})
		}
		return out, nil
	}
	if len(g.MeshSizes) > 0 {
		return nil, fmt.Errorf("noc: sweep: mesh_sizes requires workloads or patterns")
	}
	names := g.Scenarios
	if len(names) == 0 {
		names = []string{"I", "II", "III", "IV"}
	}
	var out []Scenario
	for _, name := range names {
		base, err := PaperScenario(name)
		if err != nil {
			return nil, err
		}
		out = append(out, base)
	}
	return out, nil
}

// expand materializes the grid into concrete scenarios in a fixed
// order: scenario-major, then mesh size, frequency, load, flip
// probability and cycle count.
func (g Grid) expand() ([]Scenario, error) {
	bases, err := g.bases()
	if err != nil {
		return nil, err
	}
	var out []Scenario
	for _, base := range bases {
		scs := []Scenario{base}
		scs = expandIntAxis(scs, g.MeshSizes, "mesh", func(sc *Scenario, v int) {
			sc.MeshWidth, sc.MeshHeight = v, v
		})
		scs = expandAxis(scs, g.InjectionRates, "inj", func(sc *Scenario, v float64) {
			inj := DefaultInjection()
			if sc.Injection != nil {
				inj = *sc.Injection
			}
			inj.Rate = v
			sc.Injection = &inj
		})
		scs = expandAxis(scs, g.Burstiness, "burst", func(sc *Scenario, v float64) {
			inj := DefaultInjection()
			if sc.Injection != nil {
				inj = *sc.Injection
			}
			inj.Process = "onoff"
			inj.Burstiness = v
			sc.Injection = &inj
		})
		scs = expandAxis(scs, g.FreqsMHz, "f", func(sc *Scenario, v float64) {
			sc.FreqMHz = v
		})
		scs = expandAxis(scs, g.Loads, "load", func(sc *Scenario, v float64) {
			sc.Data.Load = v
		})
		scs = expandAxis(scs, g.FlipProbs, "flip", func(sc *Scenario, v float64) {
			sc.Data.FlipProb = v
		})
		scs = expandIntAxis(scs, g.Cycles, "cycles", func(sc *Scenario, v int) {
			sc.Cycles = v
		})
		out = append(out, scs...)
	}
	return out, nil
}

// expandAxis multiplies the scenario list by one populated axis,
// suffixing each scenario name with the axis label and value.
func expandAxis(scs []Scenario, values []float64, label string,
	set func(*Scenario, float64)) []Scenario {
	if len(values) == 0 {
		return scs
	}
	out := make([]Scenario, 0, len(scs)*len(values))
	for _, sc := range scs {
		for _, v := range values {
			next := sc
			set(&next, v)
			next.Name = fmt.Sprintf("%s/%s=%s", sc.Name, label,
				strconv.FormatFloat(v, 'g', -1, 64))
			out = append(out, next)
		}
	}
	return out
}

// expandIntAxis is expandAxis for integer-valued axes, keeping labels
// like "cycles=1000000" out of float exponent notation.
func expandIntAxis(scs []Scenario, values []int, label string,
	set func(*Scenario, int)) []Scenario {
	if len(values) == 0 {
		return scs
	}
	out := make([]Scenario, 0, len(scs)*len(values))
	for _, sc := range scs {
		for _, v := range values {
			next := sc
			set(&next, v)
			next.Name = fmt.Sprintf("%s/%s=%d", sc.Name, label, v)
			out = append(out, next)
		}
	}
	return out
}

// SweepSpec describes a batch of runs: a set of fabrics crossed with
// either an explicit scenario list or a cartesian Grid. It marshals to
// JSON, so a spec file drives `nocbench -sweep spec.json`.
type SweepSpec struct {
	// Name labels the sweep in output.
	Name string `json:"name,omitempty"`
	// Fabrics are the fabric configurations to cross with the
	// scenarios; empty means all three fabrics at the paper's defaults.
	Fabrics []FabricSpec `json:"fabrics,omitempty"`
	// Scenarios is an explicit scenario list. Mutually exclusive with
	// Grid; with neither set the sweep covers the paper's four
	// scenarios.
	Scenarios []Scenario `json:"scenarios,omitempty"`
	// Grid is a cartesian parameter grid expanded into scenarios.
	Grid *Grid `json:"grid,omitempty"`
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Seed is the sweep-level base seed. Every cell derives its own
	// deterministic seed from it and the cell index, so results are
	// identical for any worker count.
	Seed uint64 `json:"seed,omitempty"`
	// Replications is the default replication count for every cell whose
	// scenario does not set its own: each cell runs that many times with
	// independent seeds (drawn from the replication stream salted off
	// the cell seed) and its Result carries mean/min/max/CI95 aggregates.
	// The replications fan through the worker pool as individual jobs,
	// so a replicated sweep parallelizes across replications as well as
	// cells; 0 or 1 means single runs, exactly the pre-replication
	// behaviour.
	Replications int `json:"replications,omitempty"`
	// Kernel is the default simulation kernel for every fabric that does
	// not choose its own: "event" (default), "gated", "naive" or
	// "active". The `nocbench -kernel` flag sets it from the command
	// line; unknown names are rejected at spec validation with the valid
	// kernels listed.
	Kernel string `json:"kernel,omitempty"`
	// SimWorkers is the default Eval shard bound for every fabric that
	// does not choose its own; 0 means GOMAXPROCS. Only the active
	// kernel uses it. The `nocbench -simworkers` flag sets it from the
	// command line.
	SimWorkers int `json:"sim_workers,omitempty"`
	// Cache enables the content-addressed result cache: each cell (and
	// each replication of a replicated cell) is keyed by its fully
	// resolved configuration and served from the cache when a previous
	// run already computed it. Hits are byte-exact, so sweep output is
	// byte-identical with the cache on or off, warm or cold, for any
	// worker count. With no CacheDir the cache is the process-wide
	// in-memory store.
	Cache bool `json:"cache,omitempty"`
	// CacheDir mirrors the cache to a directory so it survives the
	// process (the `nocbench -cache` flag). Setting it implies Cache.
	CacheDir string `json:"cache_dir,omitempty"`
	// Obs configures the sweep's observability sinks — tracing, shared
	// metrics, live progress. It is wired programmatically (nocbench
	// flags, tests) and is not part of the JSON spec format; none of it
	// changes a single Result byte.
	Obs SweepObs `json:"-"`
}

// SweepObs bundles the observability sinks of one sweep execution. The
// zero value disables everything. Enabling any sink leaves every cell's
// Result — and therefore SweepJSON/SweepCSV output — byte-identical:
// sinks observe the sweep, they never steer it.
type SweepObs struct {
	// Trace streams every cell's structured events as one Chrome
	// trace-event JSON document (open in Perfetto): process id = cell
	// index, one thread per event track. Events are cycle-timestamped;
	// wall-clock never appears. Cells served from the cache contribute a
	// cache-hit event instead of a simulation trace.
	Trace io.Writer
	// Metrics, when non-nil, is shared across every cell of the sweep:
	// each run's counters accumulate into it (the registry is safe for
	// concurrent use). Snapshot it after Sweep returns.
	Metrics *obs.Registry
	// Progress receives a snapshot after every completed job, from the
	// emission goroutine in deterministic job order. A non-nil error
	// aborts the sweep. Wall-clock derived figures (rate, ETA, busy
	// fractions) are deliberately left to the caller: the engine reports
	// only counts, so it stays deterministic.
	Progress func(SweepProgress) error
	// Monitor observes worker-pool scheduling (which worker picked up
	// which job, and when it finished). Calls arrive concurrently from
	// the worker goroutines and must not block; cache hits bypass the
	// pool and are never reported. Scheduling is timing-dependent, so a
	// monitor sees a different interleaving every run — results do not.
	Monitor SweepMonitor
}

// SweepMonitor observes sweep worker-pool scheduling. JobStart and
// JobDone are called from worker goroutines (concurrently) with the
// worker index and the global job index.
type SweepMonitor interface {
	JobStart(worker, job int)
	JobDone(worker, job int)
}

// SweepProgress is one live progress snapshot of a running sweep. Jobs
// are the sweep's scheduling units (one per replication of every cell);
// cells complete when their last job folds in.
type SweepProgress struct {
	// CellsDone and CellsTotal count completed and total sweep cells.
	CellsDone, CellsTotal int
	// JobsDone and JobsTotal count completed and total jobs.
	JobsDone, JobsTotal int
	// CacheHits counts jobs served from the result cache (pre-dispatch
	// lookups and fabric-level hits alike).
	CacheHits int
	// Errors counts failed cells so far.
	Errors int
	// CyclesDone sums the simulated cycle counts of completed jobs — the
	// work-proportional progress measure a caller divides by wall-clock
	// for a cycle rate. Cache hits count too: a hit covers its job's
	// cycles without simulating them.
	CyclesDone uint64
}

// monitorAdapter bridges the exported SweepMonitor to the worker pool's
// monitor interface.
type monitorAdapter struct{ m SweepMonitor }

func (a monitorAdapter) JobStart(worker, job int) { a.m.JobStart(worker, job) }
func (a monitorAdapter) JobDone(worker, job int)  { a.m.JobDone(worker, job) }

// cacheSettable lets the sweep engine hand its resolved cache instance
// to the fabrics it builds, so per-run caching and the sweep's
// pre-dispatch lookup share one store.
type cacheSettable interface {
	setCache(*Cache)
}

// obsSettable lets the sweep engine inject its observability hooks —
// the shared trace collector (cell-stamped) and metrics registry — into
// the fabrics it builds.
type obsSettable interface {
	setObs(obs.Hooks)
}

// resolveCache opens the spec's cache, if enabled.
func (s SweepSpec) resolveCache() (*Cache, error) {
	if !s.Cache && s.CacheDir == "" {
		return nil, nil
	}
	return OpenCache(s.CacheDir)
}

// ParseSweepSpec decodes a JSON sweep spec (the `nocbench -sweep`
// file format) and validates it. Unknown fields are rejected, so a
// typoed axis name fails loudly instead of silently sweeping nothing.
func ParseSweepSpec(b []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var spec SweepSpec
	if err := dec.Decode(&spec); err != nil {
		return SweepSpec{}, fmt.Errorf("noc: sweep spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return SweepSpec{}, err
	}
	return spec, nil
}

// SweepCell is one unit of a sweep — a fabric × scenario pair — plus,
// after execution, its Result or error. Cells are delivered in Index
// order regardless of scheduling.
type SweepCell struct {
	// Index is the cell's position in the sweep's deterministic
	// enumeration (fabric-major, then scenario).
	Index int `json:"index"`
	// Seed is the per-cell RNG seed the engine assigned.
	Seed uint64 `json:"seed"`
	// Fabric and Scenario are the generating parameters.
	Fabric   FabricSpec `json:"fabric"`
	Scenario Scenario   `json:"scenario"`
	// Result is the run's outcome; nil when the run failed.
	Result *Result `json:"result,omitempty"`
	// Error carries the run's failure, if any. A failed cell does not
	// abort the sweep.
	Error string `json:"error,omitempty"`
}

// defaultFabrics covers all three fabrics at the paper's defaults.
func defaultFabrics() []FabricSpec {
	return []FabricSpec{{Kind: KindCircuit}, {Kind: KindPacket}, {Kind: KindTDM}}
}

// Validate checks the spec: every fabric must build, the scenario
// source must be unambiguous and every scenario valid.
func (s SweepSpec) Validate() error {
	_, err := s.Cells()
	return err
}

// scenarios resolves the spec's scenario list.
func (s SweepSpec) scenarios() ([]Scenario, error) {
	switch {
	case len(s.Scenarios) > 0:
		return s.Scenarios, nil
	case s.Grid != nil:
		return s.Grid.expand()
	default:
		return PaperScenarios(), nil
	}
}

// Cells validates the spec and enumerates the sweep's cells —
// fabric-major, then scenario — with their per-cell seeds assigned but
// no results yet. The spec is checked and the grid expanded exactly
// once; Validate is this function with the cells discarded.
func (s SweepSpec) Cells() ([]SweepCell, error) {
	if s.Workers < 0 {
		return nil, fmt.Errorf("noc: sweep: negative worker count %d", s.Workers)
	}
	if s.Replications < 0 {
		return nil, fmt.Errorf("noc: sweep: negative replication count %d", s.Replications)
	}
	if len(s.Scenarios) > 0 && s.Grid != nil {
		return nil, fmt.Errorf("noc: sweep: scenarios and grid are mutually exclusive")
	}
	if _, err := ParseKernel(s.Kernel); err != nil {
		return nil, fmt.Errorf("noc: sweep: %w", err)
	}
	fabrics := s.Fabrics
	if len(fabrics) == 0 {
		fabrics = defaultFabrics()
	}
	for i, fs := range fabrics {
		if _, err := fs.Fabric(); err != nil {
			return nil, fmt.Errorf("noc: sweep: fabric %d: %w", i, err)
		}
	}
	scs, err := s.scenarios()
	if err != nil {
		return nil, err
	}
	for _, sc := range scs {
		if err := sc.withDefaults().Validate(); err != nil {
			return nil, err
		}
	}
	cells := make([]SweepCell, 0, len(fabrics)*len(scs))
	for _, fs := range fabrics {
		for _, sc := range scs {
			idx := len(cells)
			cell := SweepCell{Index: idx, Fabric: fs, Scenario: sc}
			// Every cell gets a deterministic RNG seed derived from the
			// spec seed and its index; a seed the scenario already
			// carries is preserved.
			if sc.Seed != 0 {
				cell.Seed = sc.Seed
			} else {
				cell.Seed = cellSeed(s.Seed, idx)
				cell.Scenario.Seed = cell.Seed
			}
			// The spec-level replication default applies to every cell
			// whose scenario does not choose its own count.
			if cell.Scenario.Replications == 0 && s.Replications > 0 {
				cell.Scenario.Replications = s.Replications
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// cellSeed derives a cell's RNG seed from the sweep seed and the cell
// index with a SplitMix64 step, so neighbouring cells are decorrelated.
func cellSeed(base uint64, index int) uint64 {
	return sweep.Mix64(base + uint64(index)*0x9E3779B97F4A7C15)
}

// cellReps is a cell's job multiplicity in the sweep's fan-out.
func cellReps(sc Scenario) int {
	if sc.Replications > 1 {
		return sc.Replications
	}
	return 1
}

// Sweep executes the spec's cells across a bounded worker pool (default
// GOMAXPROCS) and streams each completed cell to fn in Index order, so
// any output assembled from the cells is byte-identical for any worker
// count. A replicated cell (Scenario.Replications > 1, possibly from
// the spec default) fans its replications through the pool as
// individual jobs — cell-major, so the pool's in-order delivery hands
// the replications of each cell back consecutively and the aggregation
// is a streaming fold over at most one cell's worth of Results. A cell
// whose run fails carries the error in SweepCell.Error and does not
// abort the sweep; Sweep itself returns an error only for an invalid
// spec, a cancelled context or a non-nil error from fn.
func Sweep(ctx context.Context, spec SweepSpec, fn func(SweepCell) error) error {
	cells, err := spec.Cells()
	if err != nil {
		return err
	}
	cache, err := spec.resolveCache()
	if err != nil {
		return err
	}
	type job struct {
		cell, rep int
	}
	type repOut struct {
		res     *Result
		errText string
	}
	var jobs []job
	for i := range cells {
		for rep := 0; rep < cellReps(cells[i].Scenario); rep++ {
			jobs = append(jobs, job{cell: i, rep: rep})
		}
	}
	// One trace collector spans the whole sweep; each job's events are
	// stamped with its cell index, so Perfetto renders one process row
	// per cell.
	var col *obs.Collector
	if spec.Obs.Trace != nil {
		col = obs.NewCollector()
	}
	// cellHooks builds the observability hooks injected into cell i's
	// fabric; the zero Hooks when no sink is configured.
	cellHooks := func(i int) obs.Hooks {
		h := obs.Hooks{Metrics: spec.Obs.Metrics}
		if col != nil {
			h.Tracer = &obs.CellTracer{T: col, Cell: cells[i].Index}
		}
		return h
	}
	// jobScenario resolves job i's single-run scenario exactly as the
	// fabric will see it — replication substitution first, then defaults
	// — so the pre-dispatch lookup and the fabric-side cache compute
	// identical keys.
	jobScenario := func(i int) Scenario {
		j := jobs[i]
		sc := cells[j.cell].Scenario
		if sc.Replications > 1 {
			sc = replicaScenario(sc, j.rep)
		}
		return sc.withDefaults()
	}
	// lookup consults the Level-1 store before a job is dispatched to
	// the pool; a hit skips the run entirely. The fabric's own
	// runThrough stores fresh results, so RunCached's store is nil.
	lookup := func(i int) (repOut, bool) {
		if cache == nil {
			return repOut{}, false
		}
		j := jobs[i]
		fs := cells[j.cell].Fabric
		cfg := makeConfig(fs.options())
		key := cellKey(fs.Kind, cfg, jobScenario(i))
		res, ok := cache.lookupResult(key)
		if !ok {
			return repOut{}, false
		}
		// A pre-dispatch hit never reaches a fabric, so the engine
		// reports it to the sinks itself — the honest trace of a run
		// that was never simulated.
		if col != nil {
			col.Emit(obs.Event{Cell: cells[j.cell].Index, Track: "cache",
				Kind: obs.KindCacheHit, Detail: key.String()[:16]})
		}
		if m := spec.Obs.Metrics; m != nil {
			m.Counter("cache.hits").Add(1)
		}
		return repOut{res: res}, true
	}
	// Streaming per-cell fold state: replications arrive consecutively
	// and in order, so one accumulator suffices. The progress counters
	// live on the same single emission goroutine.
	var pending []*Result
	var pendingErr string
	prog := SweepProgress{CellsTotal: len(cells), JobsTotal: len(jobs)}
	var monitor sweep.Monitor
	if spec.Obs.Monitor != nil {
		monitor = monitorAdapter{m: spec.Obs.Monitor}
	}
	err = sweep.RunCachedMonitored(ctx, len(jobs), spec.Workers, monitor, lookup,
		func(ctx context.Context, i int) (repOut, error) {
			j := jobs[i]
			cell := cells[j.cell]
			if err := ctx.Err(); err != nil {
				return repOut{}, err
			}
			// The sweep-level kernel is applied at run time, not stored in
			// the cell, so gated and naive runs of the same spec emit
			// byte-identical cells — the property the CI equivalence check
			// compares.
			fs := cell.Fabric
			if fs.Kernel == "" {
				fs.Kernel = spec.Kernel
			}
			if fs.SimWorkers == 0 {
				fs.SimWorkers = spec.SimWorkers
			}
			f, err := fs.Fabric()
			if err != nil {
				return repOut{errText: err.Error()}, nil
			}
			if cache != nil {
				if cs, ok := f.(cacheSettable); ok {
					cs.setCache(cache)
				}
			}
			if h := cellHooks(j.cell); h.Tracer != nil || h.Metrics != nil {
				if os, ok := f.(obsSettable); ok {
					os.setObs(h)
				}
			}
			sc := cell.Scenario
			replicated := sc.Replications > 1
			if replicated {
				// One replication per job; the fold below aggregates.
				sc = replicaScenario(sc, j.rep)
			}
			res, err := f.Run(sc)
			if err != nil {
				if replicated {
					err = fmt.Errorf("noc: replication %d: %w", j.rep, err)
				}
				return repOut{errText: err.Error()}, nil
			}
			return repOut{res: res}, nil
		},
		nil,
		func(i int, out repOut, err error) error {
			if err != nil {
				return err
			}
			tick := func() error {
				if spec.Obs.Progress == nil {
					return nil
				}
				return spec.Obs.Progress(prog)
			}
			j := jobs[i]
			prog.JobsDone++
			prog.CyclesDone += uint64(jobScenario(i).Cycles)
			if out.res != nil && out.res.CacheStats != nil && out.res.CacheStats.Hit {
				prog.CacheHits++
			}
			if out.res != nil {
				pending = append(pending, out.res)
			}
			if out.errText != "" && pendingErr == "" {
				pendingErr = out.errText
			}
			if j.rep < cellReps(cells[j.cell].Scenario)-1 {
				return tick()
			}
			cell := cells[j.cell]
			switch {
			case pendingErr != "":
				cell.Error = pendingErr
			case len(pending) == 1:
				cell.Result = pending[0]
			default:
				agg, err := aggregateResults(pending)
				if err != nil {
					cell.Error = err.Error()
				} else {
					cell.Result = agg
				}
			}
			pending, pendingErr = pending[:0], ""
			prog.CellsDone++
			if cell.Error != "" {
				prog.Errors++
			}
			if err := tick(); err != nil {
				return err
			}
			return fn(cell)
		})
	if err != nil {
		return err
	}
	if col != nil {
		if err := obs.WriteChrome(spec.Obs.Trace, col.Events()); err != nil {
			return fmt.Errorf("noc: sweep: trace export: %w", err)
		}
	}
	return nil
}

// SweepAll executes the spec and returns every cell in Index order.
func SweepAll(ctx context.Context, spec SweepSpec) ([]SweepCell, error) {
	var out []SweepCell
	if err := Sweep(ctx, spec, func(c SweepCell) error {
		out = append(out, c)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SweepJSON executes the spec and streams the cells to w as one
// indented JSON array, in Index order. The output is byte-identical for
// any worker count.
func SweepJSON(ctx context.Context, spec SweepSpec, w io.Writer) error {
	first := true
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	err := Sweep(ctx, spec, func(c SweepCell) error {
		b, err := json.MarshalIndent(c, "  ", "  ")
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	})
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n]\n")
	return err
}

// sweepCSVHeader is the column set of SweepCSV. The point columns come
// from replication 0 of a replicated cell; the *_mean/*_ci95 pairs and
// the replications count are the across-replication aggregates, blank
// for single runs. warmup_cycles is the effective warm-up truncation of
// a pattern run, blank when no warm-up applied.
var sweepCSVHeader = []string{
	"index", "fabric", "scenario", "freq_mhz", "cycles", "load",
	"flip_prob", "pattern", "injection", "seed", "words_sent",
	"words_delivered", "throughput_mbps", "power_total_uw",
	"power_dynamic_uw_per_mhz", "power_components",
	"latency_mean_cycles", "latency_jitter_cycles", "error",
	"replications", "warmup_cycles",
	"throughput_mbps_mean", "throughput_mbps_ci95",
	"power_total_uw_mean", "power_total_uw_ci95",
	"latency_mean_cycles_mean", "latency_mean_cycles_ci95",
}

// injectionCSV renders a pattern scenario's injection process as one
// CSV cell ("poisson:0.05", "onoff:0.1:8"); empty for non-pattern runs.
func injectionCSV(sc Scenario) string {
	if !sc.IsPattern() || sc.Injection == nil {
		return ""
	}
	inj, err := sc.Injection.internal()
	if err != nil {
		return ""
	}
	return inj.String()
}

// componentsCSV flattens the per-component attribution into one cell:
// "name=totalUW" pairs joined by "|". The attribution slice is already
// deterministically ordered, so the cell is byte-identical run to run.
func componentsCSV(cs []ComponentPower, ff func(float64) string) string {
	if len(cs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(cs))
	for _, c := range cs {
		parts = append(parts, c.Component+"="+ff(c.TotalUW))
	}
	return strings.Join(parts, "|")
}

// SweepCSV executes the spec and writes one CSV row per cell, in Index
// order, preceded by a header row.
func SweepCSV(ctx context.Context, spec SweepSpec, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepCSVHeader); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	err := Sweep(ctx, spec, func(c SweepCell) error {
		sc := c.Scenario.withDefaults()
		// Columns appended in sweepCSVHeader order; absent measurements
		// stay blank.
		var sent, delivered, tput, totalUW, dynUW, comps, meanLat, jitter string
		var repsN, warm string
		var tputMean, tputCI, powMean, powCI, latMean, latCI string
		if r := c.Result; r != nil {
			sent = strconv.FormatUint(r.WordsSent, 10)
			delivered = strconv.FormatUint(r.WordsDelivered, 10)
			tput = ff(r.ThroughputMbps)
			if r.Power != nil {
				totalUW = ff(r.Power.TotalUW)
				dynUW = ff(r.Power.DynamicUWPerMHz)
			}
			comps = componentsCSV(r.PerComponent, ff)
			if r.Latency != nil {
				meanLat = ff(r.Latency.MeanCycles)
				jitter = ff(r.Latency.JitterCycles)
			}
			if r.WarmupCycles != 0 {
				warm = strconv.FormatUint(r.WarmupCycles, 10)
			}
			if rs := r.Replication; rs != nil {
				repsN = strconv.Itoa(rs.Replications)
				tputMean = ff(rs.ThroughputMbps.Mean)
				tputCI = ff(rs.ThroughputMbps.CI95)
				if rs.PowerTotalUW != nil {
					powMean = ff(rs.PowerTotalUW.Mean)
					powCI = ff(rs.PowerTotalUW.CI95)
				}
				if rs.LatencyMeanCycles != nil {
					latMean = ff(rs.LatencyMeanCycles.Mean)
					latCI = ff(rs.LatencyMeanCycles.CI95)
				}
			}
		}
		return cw.Write([]string{
			strconv.Itoa(c.Index),
			string(c.Fabric.Kind),
			sc.Name,
			ff(sc.FreqMHz),
			strconv.Itoa(sc.Cycles),
			ff(sc.Data.Load),
			ff(sc.Data.FlipProb),
			sc.Pattern,
			injectionCSV(sc),
			strconv.FormatUint(c.Seed, 10),
			sent,
			delivered,
			tput,
			totalUW,
			dynUW,
			comps,
			meanLat,
			jitter,
			c.Error,
			repsN,
			warm,
			tputMean,
			tputCI,
			powMean,
			powCI,
			latMean,
			latCI,
		})
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
