package noc

import (
	"fmt"
	"io"

	"repro/internal/stdcell"
	"repro/internal/synth"
)

// cornerLib resolves a corner name like the WithLibraryCorner option.
func cornerLib(corner string) (stdcell.Lib, error) {
	return config{corner: corner}.lib()
}

// LibraryName returns the technology library name of a corner, for
// report headers.
func LibraryName(corner string) (string, error) {
	lib, err := cornerLib(corner)
	if err != nil {
		return "", err
	}
	return lib.Name, nil
}

// RenderSynthTable prints the synthesis comparison of the three routers
// (the paper's Table 4) at the given corner ("nominal" or "hvt").
func RenderSynthTable(w io.Writer, corner string) error {
	lib, err := cornerLib(corner)
	if err != nil {
		return err
	}
	return synth.Render(w, synth.Table4(lib))
}

// RenderSynthDesign prints the per-block area/timing/leakage report of
// one router: "circuit", "packet" or "aethereal".
func RenderSynthDesign(w io.Writer, design, corner string) error {
	lib, err := cornerLib(corner)
	if err != nil {
		return err
	}
	d, err := synth.Design(design, lib)
	if err != nil {
		return err
	}
	fmt.Fprint(w, d.Report(lib))
	fmt.Fprintf(w, "  leakage: %.1f uW, clock energy: %.1f pJ/cycle\n",
		d.LeakageUW(lib), d.ClockEnergyPerCycle(lib)/1e3)
	return nil
}

// RenderLaneSweep prints the circuit-switched lane count/width design
// sweep of Section 5.1.
func RenderLaneSweep(w io.Writer, corner string) error {
	lib, err := cornerLib(corner)
	if err != nil {
		return err
	}
	pts := synth.DefaultLaneSweep(lib)
	fmt.Fprintf(w, "%-6s %-6s %12s %10s %14s\n", "lanes", "width", "area [mm2]", "fmax", "link bw")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-6d %12.4f %6.0f MHz %9.1f Gb/s\n",
			p.Lanes, p.Width, p.AreaMM2, p.MaxFreqMHz, p.LinkGbps)
	}
	return nil
}
