package noc

import "testing"

func TestNetworkMapUnmapRemap(t *testing.T) {
	net, err := NewNetwork(4, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := net.Map("umts")
	if err != nil {
		t.Fatal(err)
	}
	if mp.Channels == 0 || mp.LanePaths == 0 || len(mp.Placements) == 0 {
		t.Fatalf("mapping not populated: %+v", mp)
	}
	util4 := net.LinkUtilization()
	if util4 <= 0 {
		t.Fatalf("utilization %v after mapping", util4)
	}
	if err := net.Unmap(mp.ID); err != nil {
		t.Fatal(err)
	}
	if u := net.LinkUtilization(); u != 0 {
		t.Fatalf("utilization %v after unmap, want 0", u)
	}
	if len(net.Mappings()) != 0 {
		t.Fatalf("mappings %v after unmap", net.Mappings())
	}
	// Released lanes are immediately reusable at a smaller operating
	// point: the paper's reception-quality remap.
	mp2, err := net.Map("umts:2")
	if err != nil {
		t.Fatal(err)
	}
	if net.LinkUtilization() >= util4 {
		t.Errorf("2-finger utilization %.3f not below 4-finger %.3f",
			net.LinkUtilization(), util4)
	}
	if mp2.Channels >= mp.Channels {
		t.Errorf("2-finger channels %d not below 4-finger %d", mp2.Channels, mp.Channels)
	}
}

func TestNetworkConcurrentMappingsIndependent(t *testing.T) {
	net, err := NewNetwork(5, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	umts, err := net.Map("umts")
	if err != nil {
		t.Fatal(err)
	}
	drm, err := net.Map("drm")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Unmap(drm.ID); err != nil {
		t.Fatal(err)
	}
	if got := net.Mappings(); len(got) != 1 || got[0] != umts.ID {
		t.Fatalf("mappings %v, want [%d]", got, umts.ID)
	}
	if net.LinkUtilization() <= 0 {
		t.Error("UMTS circuits lost when DRM was unmapped")
	}
}

func TestNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(1, 1, 100); err == nil {
		t.Error("1x1 mesh accepted")
	}
	if _, err := NewNetwork(4, 3, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	net, err := NewNetwork(4, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Map("zigbee"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := net.Map("umts:0"); err == nil {
		t.Error("zero fingers accepted")
	}
	if _, err := net.Map("umts:x"); err == nil {
		t.Error("non-numeric fingers accepted")
	}
	if err := net.Unmap(99); err == nil {
		t.Error("unknown mapping id accepted")
	}
}
