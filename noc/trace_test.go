package noc

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// collectEvents runs the fabric with an injected collector and returns
// the canonical-order event stream.
func collectEvents(t *testing.T, f Fabric, sc Scenario) []obs.Event {
	t.Helper()
	col := obs.NewCollector()
	f.(obsSettable).setObs(obs.Hooks{Tracer: col})
	if _, err := f.Run(sc); err != nil {
		t.Fatalf("%s: %v", f, err)
	}
	return col.Events()
}

// domainOnly filters a stream down to ScopeDomain events.
func domainOnly(evs []obs.Event) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Scope == obs.ScopeDomain {
			out = append(out, e)
		}
	}
	return out
}

// TestTraceEquivalenceKernels: domain-scope event streams (flow setup,
// injection, delivery — simulation facts) must be identical under every
// kernel, on every fabric. Kernel-scope events (eval/park/wake) differ
// between kernels by design and are excluded.
func TestTraceEquivalenceKernels(t *testing.T) {
	sc, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 800
	for _, c := range kernelCases() {
		var ref []obs.Event
		var refKernel Kernel
		for _, k := range allKernels {
			evs := domainOnly(collectEvents(t, c.build(k), sc))
			if len(evs) == 0 {
				t.Fatalf("%s/%s: no domain events traced", c.name, k)
			}
			if ref == nil {
				ref, refKernel = evs, k
				continue
			}
			if len(evs) != len(ref) {
				t.Errorf("%s: %s traced %d domain events, %s traced %d",
					c.name, refKernel, len(ref), k, len(evs))
				continue
			}
			for i := range ref {
				if ref[i] != evs[i] {
					t.Errorf("%s: domain stream diverges at %d:\n%s: %+v\n%s: %+v",
						c.name, i, refKernel, ref[i], k, evs[i])
					break
				}
			}
		}
	}
}

// TestTraceEquivalenceShards: under the active kernel the full event
// stream — kernel scope included — must be byte-identical for any Eval
// shard count, because kernel events are emitted only from the
// sequential commit loop and the exporter order is canonical.
func TestTraceEquivalenceShards(t *testing.T) {
	sc, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 800
	build := func(workers int) Fabric {
		return CircuitSwitched(WithKernel(KernelActive), WithParallelism(workers))
	}
	one := collectEvents(t, build(1), sc)
	many := collectEvents(t, build(8), sc)
	if len(one) != len(many) {
		t.Fatalf("1 worker traced %d events, 8 workers traced %d", len(one), len(many))
	}
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("event stream diverges at %d:\n1 worker:  %+v\n8 workers: %+v", i, one[i], many[i])
		}
	}
}

// TestTracingDoesNotChangeResults: enabling tracing and metrics must
// leave the Result wire bytes identical on every fabric — the layer
// observes the simulation, it never steers it.
func TestTracingDoesNotChangeResults(t *testing.T) {
	sc, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 800
	cases := []struct {
		name  string
		build func(o ...Option) Fabric
	}{
		{"circuit", CircuitSwitched},
		{"packet", PacketSwitched},
		{"tdm", AetherealTDM},
	}
	for _, c := range cases {
		plain, err := c.build().Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var trace bytes.Buffer
		traced, err := c.build(WithTrace(&trace), WithMetrics(true)).Run(sc)
		if err != nil {
			t.Fatalf("%s traced: %v", c.name, err)
		}
		pb, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := json.Marshal(traced)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, tb) {
			t.Errorf("%s: tracing changed the result\nplain:  %s\ntraced: %s", c.name, pb, tb)
		}
		// The trace itself must be non-trivial, valid Chrome trace JSON.
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
			t.Errorf("%s: trace output is not valid JSON: %v", c.name, err)
		} else if len(doc.TraceEvents) == 0 {
			t.Errorf("%s: trace output holds no events", c.name)
		}
		// And the metrics snapshot must have landed on the Result (outside
		// the JSON surface: the field is json:"-").
		if len(traced.Metrics) == 0 {
			t.Errorf("%s: WithMetrics(true) produced no metrics snapshot", c.name)
		}
	}
}

// TestMetricsSnapshotContents: the circuit pattern path populates the
// kernel gauges and the lane-allocator instruments, and the snapshot is
// sorted by name.
func TestMetricsSnapshotContents(t *testing.T) {
	sc := Scenario{
		Name: "metrics-pat", Pattern: "uniform", MeshWidth: 4, MeshHeight: 4,
		Cycles: 800, Seed: 7,
	}
	res, err := CircuitSwitched(WithMetrics(true)).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Sample{}
	prev := ""
	for _, s := range res.Metrics {
		if s.Name < prev {
			t.Errorf("snapshot not sorted: %q after %q", s.Name, prev)
		}
		prev = s.Name
		byName[s.Name] = s
	}
	for _, want := range []string{"kernel.polls", "mesh.alloc.probes", "mesh.alloc.hops"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("metrics snapshot is missing %q (have %d samples)", want, len(res.Metrics))
		}
	}
	if g := byName["kernel.polls"]; g.Value == 0 {
		t.Errorf("kernel.polls gauge is zero")
	}
}
