package noc

import (
	"fmt"
	"io"

	"repro/internal/aethereal"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// Kernel selects the simulation kernel a fabric runs its worlds on.
type Kernel string

const (
	// KernelGated is the activity-tracked kernel: quiescent components
	// — unconfigured routers, drained converters, exhausted sources —
	// are skipped each cycle, with results byte-identical to
	// KernelNaive. The software analogue of the paper's clock gating.
	KernelGated Kernel = "gated"
	// KernelNaive evaluates every component every cycle. It exists for
	// verification (the CI byte-compare) and benchmarking the speedup.
	KernelNaive Kernel = "naive"
	// KernelEvent is the event-driven scheduler (the default): per
	// cycle it matches the gated kernel, and additionally fast-forwards
	// whole windows in which every component is quiescent — sparse
	// pattern sources, retired finite workloads, the dead time between
	// scheduled BE bursts — replaying idle bookkeeping in O(components)
	// instead of O(components·cycles). Results stay byte-identical to
	// both other kernels, which is why it can be the default: with
	// every stimulus now a first-class quiescent component (no
	// every-cycle Func channel drivers remain), fast-forward engages
	// whenever the world is genuinely idle and costs nothing when it
	// is not.
	KernelEvent Kernel = "event"
	// KernelActive keeps explicit active/parked component lists: a
	// component that is provably inert until external stimulus — parked
	// routers, drained converters, self-scheduled sources between
	// emissions — leaves the per-cycle sweep entirely and is
	// re-activated by the event that touches it. The remaining active
	// list's Eval sweep is sharded across a bounded goroutine pool
	// (WithParallelism). Results stay byte-identical to the other
	// kernels for every worker count.
	KernelActive Kernel = "active"
)

// ParseKernel resolves a kernel name; the empty string means the
// default event kernel. Unknown names are rejected with the valid
// kernels listed — a typoed kernel fails loudly instead of silently
// running the default.
func ParseKernel(s string) (Kernel, error) {
	switch Kernel(s) {
	case "", KernelEvent:
		return KernelEvent, nil
	case KernelGated:
		return KernelGated, nil
	case KernelNaive:
		return KernelNaive, nil
	case KernelActive:
		return KernelActive, nil
	default:
		return "", fmt.Errorf("noc: unknown kernel %q (have %s, %s, %s, %s)",
			s, KernelGated, KernelNaive, KernelEvent, KernelActive)
	}
}

// Option tunes a fabric away from the paper's default configuration.
// Options that do not apply to a fabric are ignored by it (e.g.
// WithBufferDepth on the circuit-switched fabric, which has no buffers).
// Invalid values are reported by Fabric.Validate, not at option time.
type Option func(*config)

// config collects every fabric knob; the zero value of each field means
// "paper default".
type config struct {
	lanes       int // circuit: lanes per port (default 4)
	laneWidth   int // circuit: bits per lane (default 4)
	vcs         int // packet: virtual channels (default 4)
	bufferDepth int // packet: per-VC FIFO depth in flits (default 8)
	slots       int // TDM: slot-table length (default 32)
	beDepth     int // TDM: best-effort FIFO depth in words (default 16)

	gated        bool   // circuit: configuration-driven clock gating
	corner       string // library corner: "nominal" (default) or "hvt"
	latencyWords int    // latency sample count; -1 default, 0 disables
	traceCycles  int    // workload runs: VCD capture depth for node (0,0)
	kernel       Kernel // simulation kernel; "" means event
	parallelism  int    // active kernel: Eval shard pool; 0 means GOMAXPROCS

	worldObserver func(*sim.World) // test hook: kernel diagnostics after a run

	cacheOn  bool   // content-addressed result cache enabled
	cacheDir string // cache directory; "" = process-wide in-memory cache
	cache    *Cache // resolved instance (sweep engine / tests inject it)

	trace     io.Writer // Chrome trace-event JSON destination (WithTrace)
	metricsOn bool      // collect Result.Metrics (WithMetrics)
	obs       obs.Hooks // resolved per-run hooks (beginObs / sweep injection)
}

func makeConfig(opts []Option) config {
	c := config{corner: "nominal", latencyWords: -1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithLanes sets the circuit-switched router's lane count per port
// (paper: 4). Streams occupy lane ID-1, so a scenario's highest stream
// ID must not exceed the lane count.
func WithLanes(n int) Option { return func(c *config) { c.lanes = n } }

// WithLaneWidth sets the circuit-switched lane width in bits. Only the
// paper's 4-bit lanes can be simulated — the cycle-accurate data
// converters model the Fig. 6 wire format exactly, so Validate rejects
// any other value; alternative widths exist in the structural `lanes`
// experiment (area/frequency only).
func WithLaneWidth(bits int) Option { return func(c *config) { c.laneWidth = bits } }

// WithVirtualChannels sets the packet-switched router's VC count per
// input port (paper: 4).
func WithVirtualChannels(n int) Option { return func(c *config) { c.vcs = n } }

// WithBufferDepth sets the packet-switched per-VC FIFO depth in flits
// (paper: 8).
func WithBufferDepth(flits int) Option { return func(c *config) { c.bufferDepth = flits } }

// WithSlots sets the TDM slot-table length (Æthereal default: 32).
func WithSlots(n int) Option { return func(c *config) { c.slots = n } }

// WithBEDepth sets the TDM router's per-port best-effort FIFO depth in
// words (default: 16).
func WithBEDepth(words int) Option { return func(c *config) { c.beDepth = words } }

// WithClockGating enables the circuit-switched router's
// configuration-driven clock gating — the paper's Section 8 future work.
func WithClockGating(on bool) Option { return func(c *config) { c.gated = on } }

// WithLibraryCorner selects the 0.13 µm technology corner: "nominal"
// (the paper's LVT calibration, default) or "hvt" (low leakage).
func WithLibraryCorner(corner string) Option { return func(c *config) { c.corner = corner } }

// WithLatencyWords sets how many timed word deliveries the latency
// measurement collects per single-router run (default 200); 0 disables
// the latency measurement entirely.
func WithLatencyWords(n int) Option { return func(c *config) { c.latencyWords = n } }

// WithNodeTrace records up to the given number of cycles of node (0,0)'s
// lane signals during a workload run, returned as a VCD waveform in
// Result.NodeVCD. Zero (the default) disables tracing.
func WithNodeTrace(cycles int) Option { return func(c *config) { c.traceCycles = cycles } }

// WithKernel selects the simulation kernel (default KernelEvent).
// Results are byte-identical under all kernels; they differ only in
// speed. The gated kernel skips quiescent components cycle by cycle;
// the event kernel additionally fast-forwards fully idle windows, which
// pays on sparse pattern runs, finite workloads (WordsPerStream) and
// scheduled bursts. The naive kernel evaluates everything and exists
// for verification.
func WithKernel(k Kernel) Option { return func(c *config) { c.kernel = k } }

// WithParallelism bounds the goroutine pool KernelActive shards its
// Eval sweep over: 1 keeps the simulation single-threaded, 0 (the
// default) means GOMAXPROCS. Results are byte-identical for every
// value; the other kernels ignore it.
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithCache enables the content-addressed result cache: every single
// run (including each replication of a replicated run) is keyed by a
// canonical hash of its fully resolved configuration, seed and a
// code-version fingerprint, and a repeated run is served from the cache
// byte-identically instead of re-simulating. dir persists results on
// disk across processes; the empty string keeps a process-wide
// in-memory cache. Caches for the same directory are shared within the
// process. Circuit-mesh pattern runs additionally exchange warm-start
// world checkpoints, so runs differing only in length fork from a
// common prefix. See also SweepSpec.Cache / SweepSpec.CacheDir and the
// `nocbench -cache` flag.
func WithCache(dir string) Option {
	return func(c *config) { c.cacheOn, c.cacheDir = true, dir }
}

// resolveCache returns the cache instance the config selects: an
// injected instance first, then the registry instance for the
// configured directory, else nil (caching off).
func (c config) resolveCache() (*Cache, error) {
	if c.cache != nil {
		return c.cache, nil
	}
	if !c.cacheOn {
		return nil, nil
	}
	return OpenCache(c.cacheDir)
}

// WithTrace streams a structured event trace of every run to w as
// Chrome trace-event JSON, openable in Perfetto (ui.perfetto.dev) or
// chrome://tracing: one process per sweep cell or replication, one
// thread per traced component or kernel track, one instant event per
// injection, delivery, flow setup, admission block, cache hit or kernel
// scheduling action. Events are timestamped in simulated cycles — never
// wall clock — so the trace of a given configuration is deterministic
// and diffable, and enabling tracing never changes the Result (the
// byte-identity the CI trace-replay step enforces). With a nil writer
// tracing stays disabled; the hot path then costs one nil check per
// event site.
func WithTrace(w io.Writer) Option { return func(c *config) { c.trace = w } }

// WithMetrics attaches a typed metrics registry to every run and
// publishes its deterministic sorted snapshot as Result.Metrics:
// kernel scheduling gauges, the circuit mesh's lane-allocator
// probe/rejection counters and hop histogram, and the result cache's
// traffic. The field is excluded from the JSON wire format, so enabling
// metrics never changes Result output bytes.
func WithMetrics(on bool) Option { return func(c *config) { c.metricsOn = on } }

// withWorldObserver installs a test-only hook that receives a run's
// simulation world after it finishes — fast-forward and activity
// counters for kernel tests and benchmarks. Supported by the pattern
// runs and the TDM runner; the observer must not mutate the world.
func withWorldObserver(fn func(*sim.World)) Option {
	return func(c *config) { c.worldObserver = fn }
}

// defaultLatencyWords is the latency sample count when unset.
const defaultLatencyWords = 200

// validate checks the knobs relevant to the given fabric kind.
func (c config) validate(k Kind) error {
	if _, err := c.lib(); err != nil {
		return err
	}
	if _, err := ParseKernel(string(c.kernel)); err != nil {
		return err
	}
	if c.latencyWords < -1 {
		return fmt.Errorf("noc: negative latency word count %d", c.latencyWords)
	}
	if c.traceCycles < 0 {
		return fmt.Errorf("noc: negative trace depth %d", c.traceCycles)
	}
	switch k {
	case KindCircuit:
		if p := c.coreParams(); p != nil {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("noc: %w", err)
			}
			// The cycle-accurate data converters model the paper's
			// Fig. 6 wire format exactly; other lane widths exist only
			// in the structural area sweeps (the `lanes` experiment).
			if p.LaneWidth != 4 {
				return fmt.Errorf("noc: lane width %d unsupported for simulation: "+
					"the Fig. 6 wire format serializes 16-bit words over 4-bit lanes "+
					"(see the lanes experiment for the structural sweep)", p.LaneWidth)
			}
		}
	case KindPacket:
		if p := c.psParams(); p != nil {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("noc: %w", err)
			}
		}
	case KindTDM:
		if err := c.tdmParams().Validate(); err != nil {
			return fmt.Errorf("noc: %w", err)
		}
	}
	return nil
}

// lib resolves the technology library corner.
func (c config) lib() (stdcell.Lib, error) {
	switch c.corner {
	case "", "nominal":
		return stdcell.Default013(), nil
	case "hvt":
		return stdcell.HighVT013(), nil
	default:
		return stdcell.Lib{}, fmt.Errorf("noc: unknown library corner %q (have nominal, hvt)", c.corner)
	}
}

// mustLib resolves the corner after validate has accepted it.
func (c config) mustLib() stdcell.Lib {
	lib, err := c.lib()
	if err != nil {
		panic(err)
	}
	return lib
}

// coreParams returns the circuit-switched geometry override, or nil for
// the paper's defaults.
func (c config) coreParams() *core.Params {
	if c.lanes == 0 && c.laneWidth == 0 {
		return nil
	}
	p := core.DefaultParams()
	if c.lanes != 0 {
		p.LanesPerPort = c.lanes
	}
	if c.laneWidth != 0 {
		p.LaneWidth = c.laneWidth
	}
	return &p
}

// psParams returns the packet-switched configuration override, or nil
// for the paper's defaults.
func (c config) psParams() *packetsw.Params {
	if c.vcs == 0 && c.bufferDepth == 0 {
		return nil
	}
	p := packetsw.DefaultParams()
	if c.vcs != 0 {
		p.VCs = c.vcs
	}
	if c.bufferDepth != 0 {
		p.Depth = c.bufferDepth
	}
	return &p
}

// tdmParams returns the TDM router configuration.
func (c config) tdmParams() aethereal.Params {
	p := aethereal.DefaultParams()
	if c.slots != 0 {
		p.Slots = c.slots
	}
	if c.beDepth != 0 {
		p.BEDepth = c.beDepth
	}
	return p
}

// latencySamples resolves the latency word count.
func (c config) latencySamples() int {
	if c.latencyWords == -1 {
		return defaultLatencyWords
	}
	return c.latencyWords
}

// simKernel maps the facade's kernel choice onto the kernel type the
// internal simulation worlds take. Unknown names cannot reach here:
// validate rejects them via ParseKernel before any world is built.
func (c config) simKernel() sim.Kernel {
	switch c.kernel {
	case KernelNaive:
		return sim.KernelNaive
	case KernelGated:
		return sim.KernelGated
	case KernelActive:
		return sim.KernelActive
	default:
		return sim.KernelEvent
	}
}

// worldOpts returns the simulation-world options the fabric's worlds
// are built with: the kernel choice, the active kernel's Eval
// parallelism bound, and the structured-event tracer when one is
// attached.
func (c config) worldOpts() []sim.WorldOption {
	return []sim.WorldOption{sim.WithKernel(c.simKernel()),
		sim.WithParallelism(c.parallelism), sim.WithTracer(c.obs.Tracer)}
}

// observeKernel builds the Observe hook the runners install on their
// simulation worlds: it captures the world's scheduling diagnostics
// into *ks for Result.Kernel, mirrors them into the metrics registry
// when one is attached, and chains the test-only world observer.
// Gauges, not counters — a replicated run observes several worlds and
// the snapshot reports the last.
func (c config) observeKernel(ks **KernelStats) func(*sim.World) {
	return func(w *sim.World) {
		*ks = &KernelStats{Parked: w.Parked(), Activations: w.Activations(), Polls: w.Polls()}
		if m := c.obs.Metrics; m != nil {
			m.Gauge("kernel.parked").Set(int64(w.Parked()))
			m.Gauge("kernel.activations").Set(int64(w.Activations()))
			m.Gauge("kernel.polls").Set(int64(w.Polls()))
		}
		if c.worldObserver != nil {
			c.worldObserver(w)
		}
	}
}

// beginObs resolves the per-run observability hooks on the receiver:
// hooks already injected (the sweep engine's per-cell tracer and shared
// registry) are kept as-is and export stays with the injector;
// otherwise WithTrace and WithMetrics create a per-run collector and
// registry. The returned finish function attaches the metrics snapshot
// to the completed Result and writes the Chrome trace; it must run
// after the run (including all replications) completes.
func (c *config) beginObs() func(*Result) error {
	if c.obs.Tracer != nil || c.obs.Metrics != nil {
		return func(*Result) error { return nil }
	}
	var col *obs.Collector
	if c.trace != nil {
		col = obs.NewCollector()
		c.obs.Tracer = col
	}
	if c.metricsOn {
		c.obs.Metrics = obs.NewRegistry()
	}
	dst, reg := c.trace, c.obs.Metrics
	return func(res *Result) error {
		if reg != nil && res != nil {
			res.Metrics = reg.Snapshot()
		}
		if col != nil {
			if err := obs.WriteChrome(dst, col.Events()); err != nil {
				return fmt.Errorf("noc: trace export: %w", err)
			}
		}
		return nil
	}
}

// withCell returns a copy of the config whose tracer stamps events with
// the given cell (or replication) index, so one collector can carry a
// whole sweep with every event attributable to its cell.
func (c config) withCell(cell int) config {
	if c.obs.Tracer != nil {
		c.obs.Tracer = &obs.CellTracer{T: c.obs.Tracer, Cell: cell}
	}
	return c
}

// resolvedCoreParams returns the circuit-switched geometry the fabric
// will simulate (override or paper default).
func (c config) resolvedCoreParams() core.Params {
	if p := c.coreParams(); p != nil {
		return *p
	}
	return core.DefaultParams()
}

// resolvedPSParams returns the packet-switched configuration the fabric
// will simulate (override or paper default).
func (c config) resolvedPSParams() packetsw.Params {
	if p := c.psParams(); p != nil {
		return *p
	}
	return packetsw.DefaultParams()
}
