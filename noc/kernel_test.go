package noc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// kernelCase builds the same fabric twice, once per kernel.
type kernelCase struct {
	name  string
	build func(k Kernel) Fabric
}

func kernelCases() []kernelCase {
	return []kernelCase{
		{"circuit", func(k Kernel) Fabric { return CircuitSwitched(WithKernel(k)) }},
		{"circuit-gatedclock", func(k Kernel) Fabric {
			return CircuitSwitched(WithKernel(k), WithClockGating(true))
		}},
		{"packet", func(k Kernel) Fabric { return PacketSwitched(WithKernel(k)) }},
		{"tdm", func(k Kernel) Fabric { return AetherealTDM(WithKernel(k)) }},
	}
}

// allKernels is the four-way equivalence set: the gated kernel is the
// reference, and the naive, event and active kernels must match it
// byte for byte.
var allKernels = []Kernel{KernelGated, KernelNaive, KernelEvent, KernelActive}

// TestKernelEquivalenceScenarios: the activity-tracked kernels must
// produce byte-identical Result JSON to the naive kernel on every paper
// scenario, every fabric, with and without the clock-gating ablation —
// the contract the CI naive/gated/event byte-compare enforces end to
// end. A finite variant (WordsPerStream) adds the retired-source case,
// where the event kernel fast-forwards the drained tail of the run.
func TestKernelEquivalenceScenarios(t *testing.T) {
	scenarios := PaperScenarios()
	finite, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	finite.Name = "IV-finite"
	finite.WordsPerStream = 60
	scenarios = append(scenarios, finite)
	for _, sc := range scenarios {
		sc := sc
		sc.Cycles = 1500 // full-length runs belong to nocbench
		for _, c := range kernelCases() {
			var ref []byte
			for _, k := range allKernels {
				res, err := c.build(k).Run(sc)
				if err != nil {
					t.Fatalf("%s/%s %s: %v", c.name, sc.Name, k, err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = b
					continue
				}
				if !bytes.Equal(ref, b) {
					t.Errorf("%s / scenario %s: kernels disagree\n%s: %s\n%s: %s",
						c.name, sc.Name, allKernels[0], ref, k, b)
				}
			}
		}
	}
}

// TestKernelEquivalenceWorkload runs a mesh workload (CCN mapping, bound
// power meters, gang drivers) under both kernels and compares the full
// Result JSON — the path where idle routers dominate and skipping pays
// most.
func TestKernelEquivalenceWorkload(t *testing.T) {
	sc := Scenario{
		Name:      "kernel-workload",
		Workloads: []string{"drm"},
		Cycles:    2500,
	}
	out := make([][]byte, len(allKernels))
	for i, k := range allKernels {
		res, err := CircuitSwitched(WithKernel(k)).Run(sc)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	for i := 1; i < len(out); i++ {
		if !bytes.Equal(out[0], out[i]) {
			t.Errorf("workload results diverge\n%s: %s\n%s: %s",
				allKernels[0], out[0], allKernels[i], out[i])
		}
	}
}

// TestKernelEquivalenceWaveform: waveform capture (trace recorder sampling
// every cycle while the assembly sleeps until its configuration write)
// must render identically — the recorder is a monitor and monitors are
// never skipped.
func TestKernelEquivalenceWaveform(t *testing.T) {
	wf, err := CaptureWaveform()
	if err != nil {
		t.Fatal(err)
	}
	if wf.Cycles == 0 || len(wf.VCD) == 0 {
		t.Fatal("empty capture under the gated kernel")
	}
	// The capture must show the word serializing on both probes: skipping
	// the assembly before its cycle-2 configuration must not lose edges.
	for _, sig := range wf.Signals {
		if sig.Transitions == 0 {
			t.Errorf("probe %s recorded no transitions under the gated kernel", sig.Name)
		}
	}
}

// TestParseKernel covers the kernel name resolution used by nocbench and
// the sweep spec: the empty string selects the event-kernel default,
// every name round-trips, and unknown names are rejected with an error
// that lists the valid kernels.
func TestParseKernel(t *testing.T) {
	for _, s := range []string{"", "event"} {
		k, err := ParseKernel(s)
		if err != nil || k != KernelEvent {
			t.Fatalf("ParseKernel(%q) = %v, %v (event is the default)", s, k, err)
		}
	}
	if k, err := ParseKernel("gated"); err != nil || k != KernelGated {
		t.Fatalf("ParseKernel(gated) = %v, %v", k, err)
	}
	if k, err := ParseKernel("naive"); err != nil || k != KernelNaive {
		t.Fatalf("ParseKernel(naive) = %v, %v", k, err)
	}
	if k, err := ParseKernel("active"); err != nil || k != KernelActive {
		t.Fatalf("ParseKernel(active) = %v, %v", k, err)
	}
	_, err := ParseKernel("warp")
	if err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
	for _, name := range []string{"gated", "naive", "event", "active"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ParseKernel error %q does not list %q", err, name)
		}
	}
	if err := CircuitSwitched(WithKernel("warp")).Validate(); err == nil {
		t.Fatal("Validate accepted an unknown kernel option")
	}
}

// TestSweepSpecRejectsUnknownKernel: a typoed kernel in the sweep spec
// or a fabric spec fails validation instead of silently running the
// default.
func TestSweepSpecRejectsUnknownKernel(t *testing.T) {
	spec := SweepSpec{Kernel: "warp"}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("spec-level kernel: Validate() = %v", err)
	}
	spec = SweepSpec{Fabrics: []FabricSpec{{Kind: KindCircuit, Kernel: "warp"}}}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("fabric-level kernel: Validate() = %v", err)
	}
	if _, err := ParseSweepSpec([]byte(`{"kernel":"warp"}`)); err == nil {
		t.Fatal("ParseSweepSpec accepted an unknown kernel")
	}
}

// TestPerComponentPowerSums: the per-component attribution of every
// fabric — activity classes for single-router runs, per-router meters
// for workload runs — must sum (within float tolerance) to the
// assembly-level total, and be deterministically ordered.
func TestPerComponentPowerSums(t *testing.T) {
	sc, err := PaperScenario("IV")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 1500
	runs := []struct {
		name string
		f    Fabric
		sc   Scenario
	}{
		{"circuit", CircuitSwitched(), sc},
		{"circuit-gated", CircuitSwitched(WithClockGating(true)), sc},
		{"packet", PacketSwitched(), sc},
		{"tdm", AetherealTDM(), sc},
		{"workload", CircuitSwitched(), Scenario{
			Name: "wl", Workloads: []string{"drm"}, Cycles: 2000}},
	}
	for _, r := range runs {
		res, err := r.f.Run(r.sc)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if len(res.PerComponent) == 0 {
			t.Fatalf("%s: no per-component attribution", r.name)
		}
		var sum float64
		for _, c := range res.PerComponent {
			if c.TotalUW != c.StaticUW+c.DynamicUW {
				t.Errorf("%s/%s: total %v != static %v + dynamic %v",
					r.name, c.Component, c.TotalUW, c.StaticUW, c.DynamicUW)
			}
			sum += c.TotalUW
		}
		if tot := res.Power.TotalUW; sum < tot*(1-1e-9) || sum > tot*(1+1e-9) {
			t.Errorf("%s: per-component sum %v != assembly total %v", r.name, sum, tot)
		}
	}
}
