package noc

import (
	"bytes"
	"encoding/json"
	"testing"
)

// kernelCase builds the same fabric twice, once per kernel.
type kernelCase struct {
	name  string
	build func(k Kernel) Fabric
}

func kernelCases() []kernelCase {
	return []kernelCase{
		{"circuit", func(k Kernel) Fabric { return CircuitSwitched(WithKernel(k)) }},
		{"circuit-gatedclock", func(k Kernel) Fabric {
			return CircuitSwitched(WithKernel(k), WithClockGating(true))
		}},
		{"packet", func(k Kernel) Fabric { return PacketSwitched(WithKernel(k)) }},
		{"tdm", func(k Kernel) Fabric { return AetherealTDM(WithKernel(k)) }},
	}
}

// TestKernelEquivalenceScenarios: the activity-tracked kernel must produce
// byte-identical Result JSON to the naive kernel on every paper scenario,
// every fabric, with and without the clock-gating ablation — the contract
// the CI gated-vs-naive byte-compare enforces end to end.
func TestKernelEquivalenceScenarios(t *testing.T) {
	for _, sc := range PaperScenarios() {
		sc := sc
		sc.Cycles = 1500 // full-length runs belong to nocbench
		for _, c := range kernelCases() {
			gated, err := c.build(KernelGated).Run(sc)
			if err != nil {
				t.Fatalf("%s/%s gated: %v", c.name, sc.Name, err)
			}
			naive, err := c.build(KernelNaive).Run(sc)
			if err != nil {
				t.Fatalf("%s/%s naive: %v", c.name, sc.Name, err)
			}
			gb, err := json.Marshal(gated)
			if err != nil {
				t.Fatal(err)
			}
			nb, err := json.Marshal(naive)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gb, nb) {
				t.Errorf("%s / scenario %s: kernels disagree\ngated: %s\nnaive: %s",
					c.name, sc.Name, gb, nb)
			}
		}
	}
}

// TestKernelEquivalenceWorkload runs a mesh workload (CCN mapping, bound
// power meters, gang drivers) under both kernels and compares the full
// Result JSON — the path where idle routers dominate and skipping pays
// most.
func TestKernelEquivalenceWorkload(t *testing.T) {
	sc := Scenario{
		Name:      "kernel-workload",
		Workloads: []string{"drm"},
		Cycles:    2500,
	}
	var out [2][]byte
	for i, k := range []Kernel{KernelGated, KernelNaive} {
		res, err := CircuitSwitched(WithKernel(k)).Run(sc)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Errorf("workload results diverge\ngated: %s\nnaive: %s", out[0], out[1])
	}
}

// TestKernelEquivalenceWaveform: waveform capture (trace recorder sampling
// every cycle while the assembly sleeps until its configuration write)
// must render identically — the recorder is a monitor and monitors are
// never skipped.
func TestKernelEquivalenceWaveform(t *testing.T) {
	wf, err := CaptureWaveform()
	if err != nil {
		t.Fatal(err)
	}
	if wf.Cycles == 0 || len(wf.VCD) == 0 {
		t.Fatal("empty capture under the gated kernel")
	}
	// The capture must show the word serializing on both probes: skipping
	// the assembly before its cycle-2 configuration must not lose edges.
	for _, sig := range wf.Signals {
		if sig.Transitions == 0 {
			t.Errorf("probe %s recorded no transitions under the gated kernel", sig.Name)
		}
	}
}

// TestParseKernel covers the kernel name resolution used by nocbench and
// the sweep spec.
func TestParseKernel(t *testing.T) {
	for _, s := range []string{"", "gated"} {
		k, err := ParseKernel(s)
		if err != nil || k != KernelGated {
			t.Fatalf("ParseKernel(%q) = %v, %v", s, k, err)
		}
	}
	if k, err := ParseKernel("naive"); err != nil || k != KernelNaive {
		t.Fatalf("ParseKernel(naive) = %v, %v", k, err)
	}
	if _, err := ParseKernel("warp"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel")
	}
	if err := CircuitSwitched(WithKernel("warp")).Validate(); err == nil {
		t.Fatal("Validate accepted an unknown kernel option")
	}
}
