package noc

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// wordBits is the tile-interface word size all throughput figures use.
const wordBits = 16

// circuitFabric implements Fabric with the paper's lane-division
// circuit-switched router.
type circuitFabric struct {
	cfg config
}

// Kind implements Fabric.
func (f *circuitFabric) Kind() Kind { return KindCircuit }

// String implements Fabric.
func (f *circuitFabric) String() string {
	gated := ""
	if f.cfg.gated {
		gated = ", clock gated"
	}
	p := f.cfg.resolvedCoreParams()
	return fmt.Sprintf("circuit-switched (%d lanes x %d bit%s)",
		p.LanesPerPort, p.LaneWidth, gated)
}

// Validate implements Fabric.
func (f *circuitFabric) Validate() error { return f.cfg.validate(KindCircuit) }

// setCache injects a resolved cache instance (sweep engine, tests).
func (f *circuitFabric) setCache(c *Cache) { f.cfg.cache = c }

// setObs injects observability hooks (sweep engine): an injected
// tracer/registry is owned by the injector, so Run leaves export and
// snapshotting to it.
func (f *circuitFabric) setObs(h obs.Hooks) { f.cfg.obs = h }

// Run implements Fabric: single-router scenarios go through the traffic
// runner of Figures 9/10; workload scenarios map applications onto a
// mesh via the CCN. With caching enabled (WithCache), a single run is
// served from the content-addressed cache when its key matches.
func (f *circuitFabric) Run(sc Scenario) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := f.cfg
	fin := cfg.beginObs()
	res, err := runFabric(KindCircuit, cfg, sc, f.run)
	if err != nil {
		return nil, err
	}
	return res, fin(res)
}

// run executes one non-replicated, defaulted, validated scenario.
func (f *circuitFabric) run(cfg config, cache *Cache, sc Scenario) (*Result, error) {
	if sc.IsPattern() {
		cfg.cache = cache
		return runCircuitPattern(cfg, sc)
	}
	if sc.IsWorkload() {
		return runCircuitWorkload(cfg, sc)
	}
	var ks *KernelStats
	rc := traffic.RunConfig{
		Cycles: sc.Cycles, FreqMHz: sc.FreqMHz,
		Lib: cfg.mustLib(), Gated: cfg.gated,
		Params: cfg.coreParams(), Seed: sc.Seed,
		Kernel:         cfg.simKernel(),
		SimWorkers:     cfg.parallelism,
		WordsPerStream: sc.WordsPerStream,
		Observe:        cfg.observeKernel(&ks),
		Obs:            cfg.obs,
	}
	pat := traffic.Pattern{FlipProb: sc.Data.FlipProb, Load: sc.Data.Load}
	tr, err := traffic.RunCircuit(sc.trafficScenario(), pat, rc)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fabric:         KindCircuit,
		Scenario:       sc.Name,
		FreqMHz:        sc.FreqMHz,
		Cycles:         sc.Cycles,
		WordsSent:      tr.WordsSent,
		WordsDelivered: tr.WordsDelivered,
		ThroughputMbps: stats.Rate(tr.WordsDelivered, wordBits, uint64(sc.Cycles), sc.FreqMHz),
		Power:          powerFrom(tr.Power),
		PerComponent:   attributionComponents(tr.Attribution, tr.Power.StaticUW),
		Kernel:         ks,
	}
	if n := cfg.latencySamples(); n > 0 && len(sc.Streams) > 0 {
		lr, err := traffic.MeasureCircuitLatency(cfg.resolvedCoreParams(), sc.Data.Load, n,
			cfg.worldOpts()...)
		if err != nil {
			return nil, err
		}
		res.Latency = latencyFrom(lr.Cycles)
	}
	return res, nil
}
