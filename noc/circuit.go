package noc

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/traffic"
)

// wordBits is the tile-interface word size all throughput figures use.
const wordBits = 16

// circuitFabric implements Fabric with the paper's lane-division
// circuit-switched router.
type circuitFabric struct {
	cfg config
}

// Kind implements Fabric.
func (f *circuitFabric) Kind() Kind { return KindCircuit }

// String implements Fabric.
func (f *circuitFabric) String() string {
	gated := ""
	if f.cfg.gated {
		gated = ", clock gated"
	}
	p := f.cfg.resolvedCoreParams()
	return fmt.Sprintf("circuit-switched (%d lanes x %d bit%s)",
		p.LanesPerPort, p.LaneWidth, gated)
}

// Validate implements Fabric.
func (f *circuitFabric) Validate() error { return f.cfg.validate(KindCircuit) }

// setCache injects a resolved cache instance (sweep engine, tests).
func (f *circuitFabric) setCache(c *Cache) { f.cfg.cache = c }

// Run implements Fabric: single-router scenarios go through the traffic
// runner of Figures 9/10; workload scenarios map applications onto a
// mesh via the CCN. With caching enabled (WithCache), a single run is
// served from the content-addressed cache when its key matches.
func (f *circuitFabric) Run(sc Scenario) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Replications > 1 {
		return runReplicated(f, sc)
	}
	cache, err := f.cfg.resolveCache()
	if err != nil {
		return nil, err
	}
	return cache.runThrough(KindCircuit, f.cfg, sc, func() (*Result, error) {
		return f.run(cache, sc)
	})
}

// run executes one non-replicated, defaulted, validated scenario.
func (f *circuitFabric) run(cache *Cache, sc Scenario) (*Result, error) {
	if sc.IsPattern() {
		cfg := f.cfg
		cfg.cache = cache
		return runCircuitPattern(cfg, sc)
	}
	if sc.IsWorkload() {
		return runCircuitWorkload(f.cfg, sc)
	}
	var ks *KernelStats
	rc := traffic.RunConfig{
		Cycles: sc.Cycles, FreqMHz: sc.FreqMHz,
		Lib: f.cfg.mustLib(), Gated: f.cfg.gated,
		Params: f.cfg.coreParams(), Seed: sc.Seed,
		Kernel:         f.cfg.simKernel(),
		SimWorkers:     f.cfg.parallelism,
		WordsPerStream: sc.WordsPerStream,
		Observe:        f.cfg.observeKernel(&ks),
	}
	pat := traffic.Pattern{FlipProb: sc.Data.FlipProb, Load: sc.Data.Load}
	tr, err := traffic.RunCircuit(sc.trafficScenario(), pat, rc)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fabric:         KindCircuit,
		Scenario:       sc.Name,
		FreqMHz:        sc.FreqMHz,
		Cycles:         sc.Cycles,
		WordsSent:      tr.WordsSent,
		WordsDelivered: tr.WordsDelivered,
		ThroughputMbps: stats.Rate(tr.WordsDelivered, wordBits, uint64(sc.Cycles), sc.FreqMHz),
		Power:          powerFrom(tr.Power),
		PerComponent:   attributionComponents(tr.Attribution, tr.Power.StaticUW),
		Kernel:         ks,
	}
	if n := f.cfg.latencySamples(); n > 0 && len(sc.Streams) > 0 {
		lr, err := traffic.MeasureCircuitLatency(f.cfg.resolvedCoreParams(), sc.Data.Load, n,
			f.cfg.worldOpts()...)
		if err != nil {
			return nil, err
		}
		res.Latency = latencyFrom(lr.Cycles)
	}
	return res, nil
}
