package noc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"

	"repro/internal/cellcache"
	"repro/internal/mesh"
	"repro/internal/obs"
)

// This file is the façade's content-addressed reuse layer. Level 1
// keys every single run — a sweep cell, one replication of a
// replicated cell, or a standalone Fabric.Run — by a canonical hash of
// the fully resolved configuration (fabric knobs, defaulted scenario,
// derived seed) plus a code-version fingerprint, and stores the encoded
// Result in an internal/cellcache store. Determinism is the correctness
// argument: the key material fully determines the run's bytes, so a
// hit is byte-exact by construction, and sweeps are byte-identical for
// any worker count, hit pattern or warm/cold state. Level 2 keeps
// warm-start world checkpoints keyed by the configuration prefix
// (everything but the run length and measurement window), so cells
// that share a warm-up trajectory fork from one checkpoint instead of
// re-simulating it.
//
// Deliberately excluded from the key: the kernel choice and the Eval
// worker bound. Results are byte-identical across kernels and worker
// counts — the contract the CI equivalence jobs enforce — so a result
// computed under one kernel may serve a run requested under another.

// cacheKeySchema versions the key material; bump it when the material
// layout or the meaning of any field changes.
const cacheKeySchema = 1

// fingerprintOverride replaces the build-info fingerprint when
// non-empty. Tests use it to pin golden keys and to model a code-version
// change invalidating the cache.
var fingerprintOverride string

var (
	fingerprintOnce sync.Once
	fingerprintVal  string
)

// codeFingerprint identifies the code version that produced a cached
// result: the main module's version plus a hash of the full build info
// (module graph, VCS revision, build settings). Two binaries with the
// same fingerprint compute the same results for the same key material,
// which is what lets a disk cache outlive the process.
func codeFingerprint() string {
	if fingerprintOverride != "" {
		return fingerprintOverride
	}
	fingerprintOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			fingerprintVal = "no-build-info"
			return
		}
		sum := sha256.Sum256([]byte(bi.String()))
		fingerprintVal = bi.Main.Version + "+" + hex.EncodeToString(sum[:8])
	})
	return fingerprintVal
}

// fabricKeyMaterial is the result-relevant fabric configuration, fully
// resolved. Kernel and SimWorkers are deliberately absent (results are
// byte-identical across them); the test-only world observer disables
// caching instead of participating in the key.
type fabricKeyMaterial struct {
	Lanes        int    `json:"lanes"`
	LaneWidth    int    `json:"lane_width"`
	VCs          int    `json:"vcs"`
	BufferDepth  int    `json:"buffer_depth"`
	Slots        int    `json:"slots"`
	BEDepth      int    `json:"be_depth"`
	Gated        bool   `json:"gated"`
	Corner       string `json:"corner"`
	LatencyWords int    `json:"latency_words"`
	TraceCycles  int    `json:"trace_cycles"`
}

// fabricKeyOf resolves the config into key material.
func fabricKeyOf(cfg config) fabricKeyMaterial {
	corner := cfg.corner
	if corner == "" {
		corner = "nominal"
	}
	return fabricKeyMaterial{
		Lanes:        cfg.lanes,
		LaneWidth:    cfg.laneWidth,
		VCs:          cfg.vcs,
		BufferDepth:  cfg.bufferDepth,
		Slots:        cfg.slots,
		BEDepth:      cfg.beDepth,
		Gated:        cfg.gated,
		Corner:       corner,
		LatencyWords: cfg.latencySamples(),
		TraceCycles:  cfg.traceCycles,
	}
}

// cacheKeyMaterial is the canonical description hashed into a cell
// key. The scenario is fully defaulted and carries the run's derived
// seed; PoolLatency mirrors the unexported retention marker replicated
// runs set (a pooled run retains raw latency samples, so its cached
// envelope differs from a non-pooled one's).
type cacheKeyMaterial struct {
	Schema      int               `json:"schema"`
	Fingerprint string            `json:"fingerprint"`
	Kind        Kind              `json:"kind"`
	Fabric      fabricKeyMaterial `json:"fabric"`
	Scenario    Scenario          `json:"scenario"`
	PoolLatency bool              `json:"pool_latency"`
	WarmupOn    bool              `json:"warmup_on,omitempty"`
}

// cellKey hashes one run's canonical key material. The scenario must
// already be defaulted (withDefaults) and carry its final seed.
func cellKey(kind Kind, cfg config, sc Scenario) cellcache.Key {
	m := cacheKeyMaterial{
		Schema:      cacheKeySchema,
		Fingerprint: codeFingerprint(),
		Kind:        kind,
		Fabric:      fabricKeyOf(cfg),
		Scenario:    sc,
		PoolLatency: sc.poolLatency,
	}
	b, err := json.Marshal(m)
	if err != nil {
		// The material is plain data; marshalling cannot fail. Guard
		// anyway so a future field type cannot silently collapse keys.
		panic(fmt.Sprintf("noc: cache key material: %v", err))
	}
	return cellcache.KeyOf(b)
}

// warmPrefixKey hashes the configuration prefix two runs must share to
// fork from the same warm-start checkpoint: everything in the cell key
// except the run length, the measurement window and the display name —
// none of which alter the simulated trajectory — plus a flag for
// whether warm-up accounting is on at all, since that changes what the
// run accumulates while simulating.
func warmPrefixKey(kind Kind, cfg config, sc Scenario) cellcache.Key {
	warmOn := sc.WarmupCycles > 0 || sc.WarmupAuto
	pool := sc.poolLatency
	sc.Name = ""
	sc.Cycles = 0
	sc.WarmupCycles = 0
	sc.WarmupAuto = false
	m := cacheKeyMaterial{
		Schema:      cacheKeySchema,
		Fingerprint: codeFingerprint(),
		Kind:        kind,
		Fabric:      fabricKeyOf(cfg),
		Scenario:    sc,
		PoolLatency: pool,
		WarmupOn:    warmOn,
	}
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("noc: warm prefix key material: %v", err))
	}
	return cellcache.KeyOf(b)
}

// cacheEnvelope is the stored form of a Result: its JSON wire encoding
// plus the raw latency samples the wire format deliberately excludes,
// so a hit can reattach them and replicated aggregation pools the same
// observations a fresh run would have produced.
type cacheEnvelope struct {
	Result  json.RawMessage `json:"result"`
	Samples []float64       `json:"samples,omitempty"`
}

// encodeResultEnvelope serializes a Result for the cache.
func encodeResultEnvelope(r *Result) ([]byte, error) {
	rb, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	env := cacheEnvelope{Result: rb}
	if r.Latency != nil {
		env.Samples = r.Latency.Samples
	}
	return json.Marshal(env)
}

// decodeResultEnvelope is the inverse of encodeResultEnvelope.
func decodeResultEnvelope(b []byte) (*Result, error) {
	var env cacheEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(env.Result, &r); err != nil {
		return nil, err
	}
	if r.Latency != nil && len(env.Samples) > 0 {
		r.Latency.Samples = env.Samples
	}
	return &r, nil
}

// CacheStats reports how the content-addressed cache handled one run.
type CacheStats struct {
	// Hit reports whether the Result was served from the cache.
	Hit bool
	// Key is the run's content address (hex SHA-256 of the canonical
	// key material).
	Key string
}

// warmCheckpoint is one stored warm-start checkpoint.
type warmCheckpoint struct {
	cycle uint64
	data  []byte
}

const (
	// warmKeepPerPrefix bounds the checkpoints kept per configuration
	// prefix (distinct run lengths of the same trajectory).
	warmKeepPerPrefix = 4
	// warmKeepPrefixes bounds the distinct prefixes held in memory;
	// the oldest prefix is dropped first. Checkpoints are a pure
	// accelerator — dropping one costs time, never correctness.
	warmKeepPrefixes = 64
)

// Cache is the façade's two-level reuse store: a content-addressed
// Result cache (in-memory LRU, optionally mirrored to a directory) and
// an in-memory registry of warm-start world checkpoints. One Cache is
// safely shared by concurrent runs; instances are deduplicated per
// directory within the process, so every fabric and sweep pointed at
// the same directory shares one store.
type Cache struct {
	store *cellcache.Store

	mu         sync.Mutex
	warm       map[cellcache.Key][]warmCheckpoint
	warmOrder  []cellcache.Key
	warmHits   uint64
	warmStores uint64
}

// CacheCounters is a point-in-time snapshot of a Cache's traffic.
type CacheCounters struct {
	// Hits, Misses and Puts count the Level-1 result cache's traffic.
	Hits, Misses, Puts uint64
	// WarmHits and WarmStores count warm-start checkpoint reuse.
	WarmHits, WarmStores uint64
}

// Counters returns the cache's traffic counters.
func (c *Cache) Counters() CacheCounters {
	s := c.store.Stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{
		Hits: s.Hits, Misses: s.Misses, Puts: s.Puts,
		WarmHits: c.warmHits, WarmStores: c.warmStores,
	}
}

// cacheRegistry deduplicates Cache instances: one process-wide
// in-memory instance, plus one instance per cleaned directory path.
var cacheRegistry struct {
	mu    sync.Mutex
	mem   *Cache
	byDir map[string]*Cache
}

// OpenCache returns the shared cache instance for the given directory;
// the empty string selects the process-wide in-memory cache. Opening
// the same directory twice returns the same instance.
func OpenCache(dir string) (*Cache, error) {
	cacheRegistry.mu.Lock()
	defer cacheRegistry.mu.Unlock()
	if dir == "" {
		if cacheRegistry.mem == nil {
			cacheRegistry.mem = &Cache{
				store: cellcache.New(cellcache.DefaultMaxEntries),
				warm:  map[cellcache.Key][]warmCheckpoint{},
			}
		}
		return cacheRegistry.mem, nil
	}
	dir = filepath.Clean(dir)
	if c, ok := cacheRegistry.byDir[dir]; ok {
		return c, nil
	}
	store, err := cellcache.NewDir(dir, cellcache.DefaultMaxEntries)
	if err != nil {
		return nil, fmt.Errorf("noc: cache: %w", err)
	}
	c := &Cache{store: store, warm: map[cellcache.Key][]warmCheckpoint{}}
	if cacheRegistry.byDir == nil {
		cacheRegistry.byDir = map[string]*Cache{}
	}
	cacheRegistry.byDir[dir] = c
	return c, nil
}

// runThrough executes one single run (Replications <= 1, scenario
// defaulted and validated) through the cache: a hit returns the stored
// Result byte-identically; a miss runs and stores. A nil receiver means
// caching is off. The test-only world observer bypasses the cache —
// its contract is observing a real simulation. Observability hooks do
// NOT bypass: a traced hit emits a cache-hit event and returns the
// stored bytes (the honest trace of what happened), a traced miss
// simulates with the tracer attached — safe because the Result wire
// bytes are identical either way, and tracer/metrics never enter the
// cache key.
func (c *Cache) runThrough(kind Kind, cfg config, sc Scenario, run func() (*Result, error)) (*Result, error) {
	if c == nil || cfg.worldObserver != nil {
		return run()
	}
	key := cellKey(kind, cfg, sc)
	if data, ok := c.store.Get(key); ok {
		if res, err := decodeResultEnvelope(data); err == nil {
			res.CacheStats = &CacheStats{Hit: true, Key: key.String()}
			c.observeOutcome(cfg, key, true)
			return res, nil
		}
		// An undecodable entry is treated as a miss; the fresh result
		// overwrites it below.
	}
	c.observeOutcome(cfg, key, false)
	res, err := run()
	if err != nil {
		return nil, err
	}
	if data, err := encodeResultEnvelope(res); err == nil {
		c.store.Put(key, data)
	}
	res.CacheStats = &CacheStats{Hit: false, Key: key.String()}
	return res, nil
}

// observeOutcome reports one cache consultation to the run's
// observability hooks: a domain-scope hit/miss event on the "cache"
// track (cycle 0 — the consultation precedes simulation) and per-run
// hit/miss counters, plus the shared store's lifetime gauges.
func (c *Cache) observeOutcome(cfg config, key cellcache.Key, hit bool) {
	if t := cfg.obs.Tracer; t != nil {
		kind := obs.KindCacheMiss
		if hit {
			kind = obs.KindCacheHit
		}
		t.Emit(obs.Event{Track: "cache", Kind: kind, Detail: key.String()[:16]})
	}
	if m := cfg.obs.Metrics; m != nil {
		if hit {
			m.Counter("cache.hits").Add(1)
		} else {
			m.Counter("cache.misses").Add(1)
		}
		c.store.MetricsInto(m)
	}
}

// lookupResult consults only the Level-1 store — the sweep engine's
// pre-dispatch check. It never runs anything.
func (c *Cache) lookupResult(key cellcache.Key) (*Result, bool) {
	data, ok := c.store.Get(key)
	if !ok {
		return nil, false
	}
	res, err := decodeResultEnvelope(data)
	if err != nil {
		return nil, false
	}
	res.CacheStats = &CacheStats{Hit: true, Key: key.String()}
	return res, true
}

// patternWarmHook returns the warm-start checkpoint exchange for a
// circuit-mesh pattern run of the given configuration, or nil when the
// receiver is nil. All runs sharing the configuration prefix exchange
// checkpoints through the same slot; restores are byte-exact, so any
// interleaving of concurrent runs yields identical results.
func (c *Cache) patternWarmHook(kind Kind, cfg config, sc Scenario) *mesh.WarmHook {
	if c == nil {
		return nil
	}
	prefix := warmPrefixKey(kind, cfg, sc)
	hooks := cfg.obs
	return &mesh.WarmHook{
		Lookup: func(maxCycle uint64) ([]byte, uint64, bool) {
			c.mu.Lock()
			defer c.mu.Unlock()
			cps := c.warm[prefix]
			for i := len(cps) - 1; i >= 0; i-- {
				if cps[i].cycle <= maxCycle {
					c.warmHits++
					// A warm fork skips the simulated prefix, so the
					// event (and the traced run) starts at the
					// checkpoint cycle.
					if hooks.Tracer != nil {
						hooks.Tracer.Emit(obs.Event{Cycle: cps[i].cycle, Track: "cache",
							Kind: obs.KindWarmFork, Value: int64(cps[i].cycle)})
					}
					if hooks.Metrics != nil {
						hooks.Metrics.Counter("cache.warm_hits").Add(1)
					}
					return cps[i].data, cps[i].cycle, true
				}
			}
			if hooks.Metrics != nil {
				hooks.Metrics.Counter("cache.warm_misses").Add(1)
			}
			return nil, 0, false
		},
		Store: func(cycle uint64, data []byte) {
			if hooks.Metrics != nil {
				hooks.Metrics.Counter("cache.warm_stores").Add(1)
			}
			c.mu.Lock()
			defer c.mu.Unlock()
			cps := c.warm[prefix]
			for i := range cps {
				if cps[i].cycle == cycle {
					// Determinism makes same-cycle checkpoints
					// identical; keep the newer bytes regardless.
					cps[i].data = data
					c.warm[prefix] = cps
					return
				}
			}
			if _, known := c.warm[prefix]; !known {
				c.warmOrder = append(c.warmOrder, prefix)
				for len(c.warmOrder) > warmKeepPrefixes {
					delete(c.warm, c.warmOrder[0])
					c.warmOrder = c.warmOrder[1:]
				}
			}
			cps = append(cps, warmCheckpoint{cycle: cycle, data: data})
			sort.Slice(cps, func(i, j int) bool { return cps[i].cycle < cps[j].cycle })
			if len(cps) > warmKeepPerPrefix {
				cps = cps[len(cps)-warmKeepPerPrefix:]
			}
			c.warm[prefix] = cps
			c.warmStores++
		},
	}
}
