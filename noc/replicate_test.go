package noc

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// replicatedSpec is a small sweep with the spec-level replication
// default: every cell runs 8 times and carries aggregates.
func replicatedSpec(workers int) SweepSpec {
	return SweepSpec{
		Name: "replicated",
		Grid: &Grid{
			Scenarios: []string{"II", "IV"},
			Cycles:    []int{400},
		},
		Workers:      workers,
		Seed:         7,
		Replications: 8,
	}
}

// TestReplicatedSweepDeterministicAcrossWorkerCounts is the
// replication axis's headline property: fanning 8 replications per
// cell through 1 worker and through 8 workers must emit byte-identical
// JSON and CSV.
func TestReplicatedSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var j1, j8, c1, c8 bytes.Buffer
	if err := SweepJSON(context.Background(), replicatedSpec(1), &j1); err != nil {
		t.Fatal(err)
	}
	if err := SweepJSON(context.Background(), replicatedSpec(8), &j8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j8.Bytes()) {
		t.Fatal("workers=1 and workers=8 replicated JSON differ")
	}
	if err := SweepCSV(context.Background(), replicatedSpec(1), &c1); err != nil {
		t.Fatal(err)
	}
	if err := SweepCSV(context.Background(), replicatedSpec(8), &c8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c8.Bytes()) {
		t.Fatal("workers=1 and workers=8 replicated CSV differ")
	}
}

// TestReplicatedSweepCSVAggregateColumns pins the mean±CI95 column
// contract: a replicated cell fills replications, *_mean and *_ci95;
// the point columns still echo replication 0.
func TestReplicatedSweepCSVAggregateColumns(t *testing.T) {
	var buf bytes.Buffer
	if err := SweepCSV(context.Background(), replicatedSpec(0), &buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{
		"replications", "warmup_cycles",
		"throughput_mbps_mean", "throughput_mbps_ci95",
		"power_total_uw_mean", "power_total_uw_ci95",
		"latency_mean_cycles_mean", "latency_mean_cycles_ci95",
	} {
		if _, ok := col[name]; !ok {
			t.Fatalf("header missing %q: %v", name, rows[0])
		}
	}
	if len(rows) != 7 { // header + 3 fabrics x 2 scenarios
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, row := range rows[1:] {
		if row[col["error"]] != "" {
			t.Fatalf("cell failed: %s", row[col["error"]])
		}
		if row[col["replications"]] != "8" {
			t.Fatalf("replications column = %q, want 8", row[col["replications"]])
		}
		// Scenario II's only stream leaves on East, which the circuit-
		// and packet-switched fabrics cannot observe end to end — its
		// throughput is legitimately 0 there, so assert the aggregate
		// columns are numeric and consistent, not positive.
		mean, err := strconv.ParseFloat(row[col["throughput_mbps_mean"]], 64)
		if err != nil || mean < 0 {
			t.Fatalf("throughput mean column %q (%v)", row[col["throughput_mbps_mean"]], err)
		}
		if _, err := strconv.ParseFloat(row[col["throughput_mbps_ci95"]], 64); err != nil {
			t.Fatalf("throughput ci95 column %q not numeric: %v", row[col["throughput_mbps_ci95"]], err)
		}
		// The point column carries replication 0 and must be present.
		if _, err := strconv.ParseFloat(row[col["throughput_mbps"]], 64); err != nil {
			t.Fatalf("point throughput column %q (%v)", row[col["throughput_mbps"]], err)
		}
	}
	// At least the TDM rows (which observe every port) measure real
	// throughput, so the mean columns are not vacuously zero.
	var positive int
	for _, row := range rows[1:] {
		if v, _ := strconv.ParseFloat(row[col["throughput_mbps_mean"]], 64); v > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("every throughput mean is zero")
	}
}

// TestReplicationSeedsDisjointFromCellSeeds pins the salt: the
// replication seed stream of any cell never collides with the sweep
// engine's per-cell seed stream, so replications are decorrelated both
// from each other and from neighbouring cells.
func TestReplicationSeedsDisjointFromCellSeeds(t *testing.T) {
	const base = 7
	seen := map[uint64]string{}
	for idx := 0; idx < 512; idx++ {
		s := cellSeed(base, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cell seed %d collides with %s", idx, prev)
		}
		seen[s] = "cell " + strconv.Itoa(idx)
	}
	for idx := 0; idx < 64; idx++ {
		cs := cellSeed(base, idx)
		for rep := 0; rep < 16; rep++ {
			s := ReplicationSeed(cs, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("replication seed (cell %d, rep %d) collides with %s", idx, rep, prev)
			}
			seen[s] = "cell " + strconv.Itoa(idx) + " rep " + strconv.Itoa(rep)
		}
	}
}

// TestStandaloneReplicationMatchesSweep pins the two execution paths
// onto each other: Fabric.Run with Replications>1 (sequential) and the
// sweep fan-out (parallel jobs) must aggregate to the same Result.
func TestStandaloneReplicationMatchesSweep(t *testing.T) {
	spec := SweepSpec{
		Fabrics:      []FabricSpec{{Kind: KindCircuit}},
		Grid:         &Grid{Scenarios: []string{"IV"}, Cycles: []int{400}},
		Seed:         3,
		Workers:      4,
		Replications: 5,
	}
	cells, err := SweepAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Error != "" || cells[0].Result == nil {
		t.Fatalf("unexpected cells: %+v", cells)
	}
	sc := cells[0].Scenario
	direct, err := CircuitSwitched().Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sweepJSON, err := cells[0].Result.JSON()
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := direct.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sweepJSON, directJSON) {
		t.Fatalf("sweep and standalone aggregates differ:\n--- sweep ---\n%s\n--- direct ---\n%s",
			sweepJSON, directJSON)
	}
	rs := direct.Replication
	if rs == nil || rs.Replications != 5 {
		t.Fatalf("replication stats = %+v", rs)
	}
	if rs.ThroughputMbps.Min > rs.ThroughputMbps.Mean || rs.ThroughputMbps.Mean > rs.ThroughputMbps.Max {
		t.Fatalf("mean outside [min,max]: %+v", rs.ThroughputMbps)
	}
	if rs.ThroughputMbps.CI95 < 0 {
		t.Fatalf("negative CI95: %+v", rs.ThroughputMbps)
	}
}

// TestSingleReplicationMatchesPlainRun pins backwards compatibility:
// Replications 0 and 1 are both plain single runs with no aggregates,
// byte-identical to each other.
func TestSingleReplicationMatchesPlainRun(t *testing.T) {
	sc, err := PaperScenario("I")
	if err != nil {
		t.Fatal(err)
	}
	sc.Cycles = 400
	sc.Seed = 9
	plain, err := AetherealTDM().Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Replications = 1
	one, err := AetherealTDM().Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	pj, _ := plain.JSON()
	oj, _ := one.JSON()
	if !bytes.Equal(pj, oj) {
		t.Fatal("Replications=1 changed the result")
	}
	if plain.Replication != nil {
		t.Fatal("single run grew replication aggregates")
	}
}

// TestPooledLatencyDeterministic pins the pooled-latency contract: a
// replicated run carries a pooled word-level latency distribution that
// is (a) internally consistent, (b) exactly the concatenation of the
// per-replication distributions, (c) byte-identical across repeated
// runs and across all four kernels, and (d) absent — along with any
// retained samples — from plain unreplicated runs.
func TestPooledLatencyDeterministic(t *testing.T) {
	sc := Scenario{
		Name: "pool", Pattern: "uniform", MeshWidth: 4, MeshHeight: 4,
		Cycles: 600, Seed: 11, Replications: 4,
		Injection: &Injection{Process: "bernoulli", Rate: 0.2},
	}
	run := func(k Kernel) *LatencyPool {
		res, err := AetherealTDM(WithKernel(k)).Run(sc)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Replication == nil || res.Replication.PooledLatency == nil {
			t.Fatalf("%v: no pooled latency: %+v", k, res.Replication)
		}
		return res.Replication.PooledLatency
	}

	ref := run(KernelGated)
	if ref.Words <= 0 {
		t.Fatalf("empty pool: %+v", ref)
	}
	// Internal consistency: histogram counts cover the population and
	// the order statistics are ordered.
	if len(ref.HistCounts) != len(ref.HistBounds)+1 {
		t.Fatalf("histogram shape: %d counts for %d bounds", len(ref.HistCounts), len(ref.HistBounds))
	}
	total := 0
	for _, c := range ref.HistCounts {
		total += c
	}
	if total != ref.Words {
		t.Fatalf("histogram counts sum to %d, pool has %d words", total, ref.Words)
	}
	if !(ref.MinCycles <= ref.P50Cycles && ref.P50Cycles <= ref.P95Cycles &&
		ref.P95Cycles <= ref.P99Cycles && ref.P99Cycles <= ref.MaxCycles) {
		t.Fatalf("order statistics out of order: %+v", ref)
	}

	// The pool is exactly the per-replication populations concatenated:
	// its word count is the sum of the individually-run replications'.
	want := 0
	for rep := 0; rep < sc.Replications; rep++ {
		r, err := AetherealTDM().Run(replicaScenario(sc, rep))
		if err != nil {
			t.Fatalf("replication %d: %v", rep, err)
		}
		if r.Latency != nil {
			want += r.Latency.Words
		}
	}
	if ref.Words != want {
		t.Fatalf("pooled %d words, replications measured %d", ref.Words, want)
	}

	// Determinism: a repeated run and every other kernel reproduce the
	// pool byte for byte.
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{KernelGated, KernelNaive, KernelEvent, KernelActive} {
		b, err := json.Marshal(run(k))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refJSON, b) {
			t.Fatalf("pooled latency diverges under %v:\n ref %s\n got %s", k, refJSON, b)
		}
	}

	// A plain unreplicated run neither retains samples nor grows a pool.
	plain := sc
	plain.Replications = 0
	res, err := AetherealTDM().Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replication != nil {
		t.Fatal("plain run grew replication aggregates")
	}
	if res.Latency != nil && res.Latency.Samples != nil {
		t.Fatal("plain run retained latency samples")
	}
}

// TestScenarioReplicationValidation covers the new Scenario knobs.
func TestScenarioReplicationValidation(t *testing.T) {
	sc, err := PaperScenario("I")
	if err != nil {
		t.Fatal(err)
	}
	sc.Replications = -1
	if err := sc.withDefaults().Validate(); err == nil {
		t.Fatal("negative replications accepted")
	}
	spec := replicatedSpec(0)
	spec.Replications = -2
	if err := spec.Validate(); err == nil {
		t.Fatal("negative spec replications accepted")
	}
}
