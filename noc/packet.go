package noc

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// packetFabric implements Fabric with the packet-switched
// virtual-channel baseline router.
type packetFabric struct {
	cfg config
}

// Kind implements Fabric.
func (f *packetFabric) Kind() Kind { return KindPacket }

// String implements Fabric.
func (f *packetFabric) String() string {
	p := f.cfg.resolvedPSParams()
	return fmt.Sprintf("packet-switched (%d VCs x %d flits)", p.VCs, p.Depth)
}

// Validate implements Fabric.
func (f *packetFabric) Validate() error { return f.cfg.validate(KindPacket) }

// setCache injects a resolved cache instance (sweep engine, tests).
func (f *packetFabric) setCache(c *Cache) { f.cfg.cache = c }

// setObs injects observability hooks (sweep engine): an injected
// tracer/registry is owned by the injector, so Run leaves export and
// snapshotting to it.
func (f *packetFabric) setObs(h obs.Hooks) { f.cfg.obs = h }

// Run implements Fabric. Workload scenarios are not supported: the
// paper's run-time mapped applications ride the circuit-switched NoC.
// With caching enabled (WithCache), a single run is served from the
// content-addressed cache when its key matches.
func (f *packetFabric) Run(sc Scenario) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := f.cfg
	fin := cfg.beginObs()
	res, err := runFabric(KindPacket, cfg, sc, f.run)
	if err != nil {
		return nil, err
	}
	return res, fin(res)
}

// run executes one non-replicated, defaulted, validated scenario.
func (f *packetFabric) run(cfg config, _ *Cache, sc Scenario) (*Result, error) {
	if sc.IsPattern() {
		return runPacketPattern(cfg, sc)
	}
	if sc.IsWorkload() {
		return nil, fmt.Errorf("noc: the packet-switched fabric does not support workload scenarios (use CircuitSwitched)")
	}
	var ks *KernelStats
	rc := traffic.RunConfig{
		Cycles: sc.Cycles, FreqMHz: sc.FreqMHz,
		Lib: cfg.mustLib(), PSParams: cfg.psParams(),
		Seed: sc.Seed, Kernel: cfg.simKernel(), SimWorkers: cfg.parallelism,
		WordsPerStream: sc.WordsPerStream,
		Observe:        cfg.observeKernel(&ks),
		Obs:            cfg.obs,
	}
	pat := traffic.Pattern{FlipProb: sc.Data.FlipProb, Load: sc.Data.Load}
	tr, err := traffic.RunPacket(sc.trafficScenario(), pat, rc)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Fabric:         KindPacket,
		Scenario:       sc.Name,
		FreqMHz:        sc.FreqMHz,
		Cycles:         sc.Cycles,
		WordsSent:      tr.WordsSent,
		WordsDelivered: tr.WordsDelivered,
		ThroughputMbps: stats.Rate(tr.WordsDelivered, wordBits, uint64(sc.Cycles), sc.FreqMHz),
		Power:          powerFrom(tr.Power),
		PerComponent:   attributionComponents(tr.Attribution, tr.Power.StaticUW),
		Kernel:         ks,
	}
	if n := cfg.latencySamples(); n > 0 && len(sc.Streams) > 0 {
		// With several streams converging on one output port the
		// measured stream competes against background traffic, the
		// packet-switched router's load-dependent case.
		contended := false
		seen := map[Port]int{}
		for _, st := range sc.Streams {
			seen[st.Out]++
			if seen[st.Out] > 1 {
				contended = true
			}
		}
		pp := cfg.resolvedPSParams()
		// The contention harness needs three VCs; a narrower router
		// still measures, just without background streams.
		contended = contended && pp.VCs >= 3
		lr, err := traffic.MeasurePacketLatency(pp, sc.Data.Load, n, contended,
			cfg.worldOpts()...)
		if err != nil {
			return nil, err
		}
		res.Latency = latencyFrom(lr.Cycles)
	}
	return res, nil
}
