package noc

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/traffic"
)

// Port identifies one of the router's five bidirectional ports.
type Port int

// The five ports of the paper's router: the tile interface plus the four
// mesh directions.
const (
	Tile Port = iota
	North
	East
	South
	West
)

var portNames = [...]string{"tile", "north", "east", "south", "west"}

// String returns the port's lower-case name.
func (p Port) String() string {
	if p < 0 || int(p) >= len(portNames) {
		return fmt.Sprintf("port(%d)", int(p))
	}
	return portNames[p]
}

// Valid reports whether the port is one of the five defined ports.
func (p Port) Valid() bool { return p >= Tile && p <= West }

// corePort converts to the internal representation (same ordering).
func (p Port) corePort() core.Port { return core.Port(p) }

// MarshalJSON renders the port as its name.
func (p Port) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON parses a port name (case insensitive).
func (p *Port) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range portNames {
		if strings.EqualFold(s, n) {
			*p = Port(i)
			return nil
		}
	}
	return fmt.Errorf("noc: unknown port %q", s)
}

// Stream is one unidirectional data stream through the router, at 100%
// of a lane's bandwidth when the pattern's load is 1 (Table 3).
type Stream struct {
	// ID is the stream number (1-based); it selects the lane/VC/slot
	// share the stream occupies.
	ID int `json:"id"`
	// In and Out are the ports the stream enters and leaves on.
	In  Port `json:"in"`
	Out Port `json:"out"`
}

// Pattern is the data knob of the paper's test set.
type Pattern struct {
	// FlipProb is the expected bit-flip fraction between consecutive
	// words, in [0,1] (0 best case, 0.5 typical, 1 worst case).
	FlipProb float64 `json:"flip_prob"`
	// Load is the offered load as a fraction of a lane's bandwidth, in
	// (0,1].
	Load float64 `json:"load"`
}

// DefaultPattern returns the paper's standard data case: random data
// (50% bit flips) at 100% load.
func DefaultPattern() Pattern { return Pattern{FlipProb: 0.5, Load: 1} }

// Injection configures the temporal injection process of a synthetic
// pattern scenario: which stochastic process times each node's words
// and at what rate.
type Injection struct {
	// Process names the temporal process: "cbr", "bernoulli", "poisson"
	// (the default) or "onoff". See InjectionProcesses.
	Process string `json:"process,omitempty"`
	// Rate is the mean injection rate in words per cycle per node, in
	// (0,1].
	Rate float64 `json:"rate"`
	// Burstiness is the mean burst length in words for the onoff
	// process (>= 1; zero selects the default of 4, matching
	// ParseInjection); ignored by the others.
	Burstiness float64 `json:"burstiness,omitempty"`
}

// DefaultInjection returns the default temporal process of a pattern
// scenario: sparse Poisson arrivals at 0.05 words per cycle per node.
func DefaultInjection() Injection { return Injection{Process: "poisson", Rate: 0.05} }

// internal converts to the internal representation, validating. An
// unset burstiness on the onoff process takes the same default as
// ParseInjection, so the struct and string entry points accept the
// same logical specs.
func (i Injection) internal() (pattern.Injection, error) {
	proc, err := pattern.ParseProcess(i.Process)
	if err != nil {
		return pattern.Injection{}, fmt.Errorf("noc: %w", err)
	}
	out := pattern.Injection{Proc: proc, Rate: i.Rate, Burstiness: i.Burstiness}
	if out.Proc == pattern.OnOff && out.Burstiness == 0 {
		out.Burstiness = pattern.DefaultBurstiness
	}
	if err := out.Validate(); err != nil {
		return pattern.Injection{}, fmt.Errorf("noc: %w", err)
	}
	return out, nil
}

// ParseInjection parses an injection spec "process:rate[:burstiness]"
// (e.g. "poisson:0.05", "onoff:0.1:8"); a bare rate selects Poisson.
// It is the parser behind the nocbench -inject flag.
func ParseInjection(s string) (Injection, error) {
	inj, err := pattern.ParseInjection(s)
	if err != nil {
		return Injection{}, fmt.Errorf("noc: %w", err)
	}
	return Injection{Process: inj.Proc.String(), Rate: inj.Rate, Burstiness: inj.Burstiness}, nil
}

// Patterns lists the spatial traffic patterns a pattern Scenario can
// use: "uniform", "transpose", "bitcomp", "bitrev", "hotspot" (optional
// traffic fraction as "hotspot:0.7"), "neighbour" and "perm" (a seeded
// random permutation).
func Patterns() []string { return pattern.Names() }

// InjectionProcesses lists the temporal injection processes: "cbr",
// "bernoulli", "poisson", "onoff".
func InjectionProcesses() []string { return pattern.ProcessNames() }

// Scenario describes one simulation: either a single-router test (the
// paper's Fig. 8 scenarios, or custom Streams) or — when Workloads is
// set — a mesh run that maps whole wireless applications onto a W×H NoC.
type Scenario struct {
	// Name labels the scenario in results.
	Name string `json:"name"`
	// FreqMHz is the network clock (default 25, the paper's Figure 9/10
	// operating point).
	FreqMHz float64 `json:"freq_mhz"`
	// Cycles is the simulated length (default 5000 for single-router
	// runs — 200 µs at 25 MHz — and 20000 for workload runs).
	Cycles int `json:"cycles"`
	// Data is the data pattern driving the streams (bit-flip fraction
	// and offered load). The zero value means DefaultPattern.
	Data Pattern `json:"data"`
	// Streams are the concurrently active streams of a single-router
	// scenario. Empty with no Workloads reproduces scenario I (the
	// static offset measurement).
	Streams []Stream `json:"streams,omitempty"`
	// MeshWidth and MeshHeight give the NoC dimensions of a workload
	// or pattern run (default 4×3 for workloads, 8×8 for patterns).
	MeshWidth  int `json:"mesh_width,omitempty"`
	MeshHeight int `json:"mesh_height,omitempty"`
	// Workloads names the applications to map concurrently onto the
	// mesh: "hiperlan2", "umts", "drm". Setting it switches the
	// scenario to a mesh workload run.
	Workloads []string `json:"workloads,omitempty"`
	// Pattern names a synthetic spatial traffic pattern (see Patterns).
	// Setting it switches the scenario to a pattern run: the circuit
	// fabric simulates the whole MeshWidth×MeshHeight mesh with one
	// single-lane circuit per pattern flow, while the packet and TDM
	// fabrics (single-router models) are driven with the port-to-port
	// traffic the pattern XY-routes through the mesh-centre router.
	// Mutually exclusive with Streams and Workloads.
	Pattern string `json:"pattern,omitempty"`
	// Injection is the temporal process timing each node's words in a
	// pattern run; nil means DefaultInjection.
	Injection *Injection `json:"injection,omitempty"`
	// Seed is the run-level base seed mixed into every stream source's
	// RNG. Zero selects the paper-default seeding (sources seeded by
	// stream id alone). The Sweep engine assigns each cell a
	// deterministic seed derived from the spec seed and the cell index,
	// so sweep results are reproducible regardless of scheduling.
	Seed uint64 `json:"seed,omitempty"`
	// Replications runs the scenario R times with independent seeds
	// drawn from a SplitMix64 replication stream (disjoint from the
	// sweep engine's per-cell seed stream) and aggregates every Result
	// metric into mean/min/max/CI95 — Result.Replication carries the
	// aggregates, and the point fields echo replication 0. 0 and 1
	// both mean a single run. The Sweep engine fans the replications
	// of every cell through its worker pool as individual jobs, so a
	// replicated sweep parallelizes at replication granularity while
	// output stays byte-identical for any worker count.
	Replications int `json:"replications,omitempty"`
	// WarmupCycles truncates a pattern run's measurement window: words
	// injected or delivered during the first WarmupCycles are excluded
	// from the reported statistics, so replication confidence
	// intervals are not biased by the empty-network startup transient.
	// The circuit mesh truncates counts, latency and the throughput
	// window; the packet/TDM single-router projections truncate the
	// latency distribution. Pattern scenarios only.
	WarmupCycles int `json:"warmup_cycles,omitempty"`
	// WarmupAuto detects the warm-up automatically with the MSER-5
	// steady-state rule over the delivery-latency sequence. Mutually
	// exclusive with WarmupCycles; pattern scenarios only.
	WarmupAuto bool `json:"warmup_auto,omitempty"`
	// WordsPerStream caps the words each stream source (or, in a
	// pattern run, each flow source) emits; 0 means unlimited (the
	// paper's open-loop scenarios). With a cap the run is a finite
	// workload: sources retire once their budget is spent, the network
	// drains, and the event kernel fast-forwards the drained tail on
	// every fabric — stream and pattern drivers alike are first-class
	// quiescent components (the packet fabrics round the cap up to
	// their packet boundary, since a wormhole packet must close with
	// its Tail flit). Ignored by workload runs, whose channels are
	// rate-driven.
	WordsPerStream uint64 `json:"words_per_stream,omitempty"`

	// poolLatency asks the run to retain its raw per-word latency
	// samples so a replicated run can pool them into one distribution
	// (Replication.PooledLatency). Set by replicaScenario; not part of
	// the wire format — a single run's JSON output is identical with or
	// without it.
	poolLatency bool
}

// IsWorkload reports whether the scenario is a mesh workload run.
func (s Scenario) IsWorkload() bool { return len(s.Workloads) > 0 }

// IsPattern reports whether the scenario is a synthetic-pattern run.
func (s Scenario) IsPattern() bool { return s.Pattern != "" }

// withDefaults fills unset knobs with the paper's defaults.
func (s Scenario) withDefaults() Scenario {
	if s.FreqMHz == 0 {
		s.FreqMHz = 25
	}
	if s.Cycles == 0 {
		if s.IsWorkload() {
			s.Cycles = 20000
		} else {
			s.Cycles = 5000
		}
	}
	if s.Data == (Pattern{}) {
		s.Data = DefaultPattern()
	}
	if s.IsWorkload() {
		if s.MeshWidth == 0 {
			s.MeshWidth = 4
		}
		if s.MeshHeight == 0 {
			s.MeshHeight = 3
		}
	}
	if s.IsPattern() {
		if s.MeshWidth == 0 {
			s.MeshWidth = 8
		}
		if s.MeshHeight == 0 {
			s.MeshHeight = 8
		}
		if s.Injection == nil {
			inj := DefaultInjection()
			s.Injection = &inj
		}
	}
	return s
}

// Validate checks the scenario (after defaulting; Run applies defaults
// for you).
func (s Scenario) Validate() error {
	if s.FreqMHz <= 0 {
		return fmt.Errorf("noc: scenario %q: non-positive frequency %v", s.Name, s.FreqMHz)
	}
	if s.Cycles < 1 {
		return fmt.Errorf("noc: scenario %q: need at least 1 cycle", s.Name)
	}
	if s.Data.FlipProb < 0 || s.Data.FlipProb > 1 {
		return fmt.Errorf("noc: scenario %q: flip probability %v out of [0,1]",
			s.Name, s.Data.FlipProb)
	}
	if s.Data.Load <= 0 || s.Data.Load > 1 {
		return fmt.Errorf("noc: scenario %q: load %v out of (0,1]", s.Name, s.Data.Load)
	}
	if s.Replications < 0 {
		return fmt.Errorf("noc: scenario %q: negative replication count %d", s.Name, s.Replications)
	}
	if s.WarmupCycles != 0 || s.WarmupAuto {
		if !s.IsPattern() {
			return fmt.Errorf("noc: scenario %q: warm-up truncation applies to pattern scenarios only", s.Name)
		}
		if s.WarmupCycles < 0 || s.WarmupCycles >= s.Cycles {
			return fmt.Errorf("noc: scenario %q: warm-up %d out of [0, cycles=%d)",
				s.Name, s.WarmupCycles, s.Cycles)
		}
		if s.WarmupCycles > 0 && s.WarmupAuto {
			return fmt.Errorf("noc: scenario %q: explicit warm-up and auto-detection are mutually exclusive", s.Name)
		}
	}
	if s.IsPattern() {
		if len(s.Streams) > 0 || s.IsWorkload() {
			return fmt.Errorf("noc: scenario %q: pattern is mutually exclusive with streams and workloads", s.Name)
		}
		if _, err := pattern.ParseSpatial(s.Pattern); err != nil {
			return fmt.Errorf("noc: scenario %q: %w", s.Name, err)
		}
		if s.MeshWidth < 2 || s.MeshHeight < 2 {
			return fmt.Errorf("noc: scenario %q: pattern mesh must be at least 2x2, have %dx%d",
				s.Name, s.MeshWidth, s.MeshHeight)
		}
		if s.Injection != nil {
			if _, err := s.Injection.internal(); err != nil {
				return fmt.Errorf("noc: scenario %q: %w", s.Name, err)
			}
		}
		return nil
	}
	if s.IsWorkload() {
		if len(s.Streams) > 0 {
			return fmt.Errorf("noc: scenario %q: streams and workloads are mutually exclusive", s.Name)
		}
		if s.MeshWidth < 2 || s.MeshHeight < 2 {
			return fmt.Errorf("noc: scenario %q: workload mesh must be at least 2x2, have %dx%d",
				s.Name, s.MeshWidth, s.MeshHeight)
		}
		for _, wl := range s.Workloads {
			if _, err := workloadGraph(wl); err != nil {
				return err
			}
		}
		return nil
	}
	seen := map[int]bool{}
	for _, st := range s.Streams {
		if st.ID < 1 {
			return fmt.Errorf("noc: scenario %q: stream ID %d must be >= 1", s.Name, st.ID)
		}
		if seen[st.ID] {
			return fmt.Errorf("noc: scenario %q: duplicate stream ID %d", s.Name, st.ID)
		}
		seen[st.ID] = true
		if !st.In.Valid() || !st.Out.Valid() {
			return fmt.Errorf("noc: scenario %q: stream %d has an invalid port", s.Name, st.ID)
		}
		if st.In == st.Out {
			return fmt.Errorf("noc: scenario %q: stream %d enters and leaves on %v",
				s.Name, st.ID, st.In)
		}
	}
	return nil
}

// PaperStreams returns Table 3's stream definitions.
func PaperStreams() []Stream {
	return []Stream{
		{ID: 1, In: Tile, Out: East},
		{ID: 2, In: North, Out: Tile},
		{ID: 3, In: West, Out: East},
	}
}

// PaperScenarios returns the paper's four test scenarios (Fig. 8) at the
// paper's operating point: I carries no data, II adds stream 1, III
// streams 1–2, IV streams 1–3.
func PaperScenarios() []Scenario {
	streams := PaperStreams()
	var out []Scenario
	for i, name := range []string{"I", "II", "III", "IV"} {
		out = append(out, Scenario{Name: name, Streams: streams[:i]}.withDefaults())
	}
	return out
}

// PaperScenario returns the paper scenario with the given roman numeral.
func PaperScenario(name string) (Scenario, error) {
	for _, sc := range PaperScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("noc: unknown paper scenario %q (have I..IV)", name)
}

// patternSetup resolves a pattern scenario's spatial pattern and
// injection process to their internal representations. Call after
// withDefaults.
func (s Scenario) patternSetup() (pattern.Spatial, pattern.Injection, error) {
	sp, err := pattern.ParseSpatial(s.Pattern)
	if err != nil {
		return pattern.Spatial{}, pattern.Injection{}, fmt.Errorf("noc: scenario %q: %w", s.Name, err)
	}
	injSpec := s.Injection
	if injSpec == nil {
		def := DefaultInjection()
		injSpec = &def
	}
	inj, err := injSpec.internal()
	if err != nil {
		return pattern.Spatial{}, pattern.Injection{}, fmt.Errorf("noc: scenario %q: %w", s.Name, err)
	}
	return sp, inj, nil
}

// trafficScenario converts to the internal representation.
func (s Scenario) trafficScenario() traffic.Scenario {
	out := traffic.Scenario{Name: s.Name}
	for _, st := range s.Streams {
		out.Streams = append(out.Streams, traffic.Stream{
			ID: st.ID, In: st.In.corePort(), Out: st.Out.corePort(),
		})
	}
	return out
}
