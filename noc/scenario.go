package noc

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/traffic"
)

// Port identifies one of the router's five bidirectional ports.
type Port int

// The five ports of the paper's router: the tile interface plus the four
// mesh directions.
const (
	Tile Port = iota
	North
	East
	South
	West
)

var portNames = [...]string{"tile", "north", "east", "south", "west"}

// String returns the port's lower-case name.
func (p Port) String() string {
	if p < 0 || int(p) >= len(portNames) {
		return fmt.Sprintf("port(%d)", int(p))
	}
	return portNames[p]
}

// Valid reports whether the port is one of the five defined ports.
func (p Port) Valid() bool { return p >= Tile && p <= West }

// corePort converts to the internal representation (same ordering).
func (p Port) corePort() core.Port { return core.Port(p) }

// MarshalJSON renders the port as its name.
func (p Port) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON parses a port name (case insensitive).
func (p *Port) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range portNames {
		if strings.EqualFold(s, n) {
			*p = Port(i)
			return nil
		}
	}
	return fmt.Errorf("noc: unknown port %q", s)
}

// Stream is one unidirectional data stream through the router, at 100%
// of a lane's bandwidth when the pattern's load is 1 (Table 3).
type Stream struct {
	// ID is the stream number (1-based); it selects the lane/VC/slot
	// share the stream occupies.
	ID int `json:"id"`
	// In and Out are the ports the stream enters and leaves on.
	In  Port `json:"in"`
	Out Port `json:"out"`
}

// Pattern is the data knob of the paper's test set.
type Pattern struct {
	// FlipProb is the expected bit-flip fraction between consecutive
	// words, in [0,1] (0 best case, 0.5 typical, 1 worst case).
	FlipProb float64 `json:"flip_prob"`
	// Load is the offered load as a fraction of a lane's bandwidth, in
	// (0,1].
	Load float64 `json:"load"`
}

// DefaultPattern returns the paper's standard data case: random data
// (50% bit flips) at 100% load.
func DefaultPattern() Pattern { return Pattern{FlipProb: 0.5, Load: 1} }

// Scenario describes one simulation: either a single-router test (the
// paper's Fig. 8 scenarios, or custom Streams) or — when Workloads is
// set — a mesh run that maps whole wireless applications onto a W×H NoC.
type Scenario struct {
	// Name labels the scenario in results.
	Name string `json:"name"`
	// FreqMHz is the network clock (default 25, the paper's Figure 9/10
	// operating point).
	FreqMHz float64 `json:"freq_mhz"`
	// Cycles is the simulated length (default 5000 for single-router
	// runs — 200 µs at 25 MHz — and 20000 for workload runs).
	Cycles int `json:"cycles"`
	// Pattern is the data pattern driving the streams. The zero value
	// means DefaultPattern.
	Pattern Pattern `json:"pattern"`
	// Streams are the concurrently active streams of a single-router
	// scenario. Empty with no Workloads reproduces scenario I (the
	// static offset measurement).
	Streams []Stream `json:"streams,omitempty"`
	// MeshWidth and MeshHeight give the NoC dimensions of a workload
	// run (default 4×3).
	MeshWidth  int `json:"mesh_width,omitempty"`
	MeshHeight int `json:"mesh_height,omitempty"`
	// Workloads names the applications to map concurrently onto the
	// mesh: "hiperlan2", "umts", "drm". Setting it switches the
	// scenario to a mesh workload run.
	Workloads []string `json:"workloads,omitempty"`
	// Seed is the run-level base seed mixed into every stream source's
	// RNG. Zero selects the paper-default seeding (sources seeded by
	// stream id alone). The Sweep engine assigns each cell a
	// deterministic seed derived from the spec seed and the cell index,
	// so sweep results are reproducible regardless of scheduling.
	Seed uint64 `json:"seed,omitempty"`
	// WordsPerStream caps the words each stream source emits; 0 means
	// unlimited (the paper's open-loop scenarios). With a cap the run is
	// a finite workload: sources retire once their budget is spent and
	// the network drains. Applies to single-router scenarios on all
	// three fabrics (the packet fabric rounds the cap up to its 16-word
	// packet boundary, since a wormhole packet must close with its Tail
	// flit); on the circuit fabric the event kernel additionally
	// fast-forwards the drained tail of the run — the packet and TDM
	// runners keep every-cycle stimulus components, which by the monitor
	// contract disable fast-forward. Ignored by workload runs, whose
	// channels are rate-driven.
	WordsPerStream uint64 `json:"words_per_stream,omitempty"`
}

// IsWorkload reports whether the scenario is a mesh workload run.
func (s Scenario) IsWorkload() bool { return len(s.Workloads) > 0 }

// withDefaults fills unset knobs with the paper's defaults.
func (s Scenario) withDefaults() Scenario {
	if s.FreqMHz == 0 {
		s.FreqMHz = 25
	}
	if s.Cycles == 0 {
		if s.IsWorkload() {
			s.Cycles = 20000
		} else {
			s.Cycles = 5000
		}
	}
	if s.Pattern == (Pattern{}) {
		s.Pattern = DefaultPattern()
	}
	if s.IsWorkload() {
		if s.MeshWidth == 0 {
			s.MeshWidth = 4
		}
		if s.MeshHeight == 0 {
			s.MeshHeight = 3
		}
	}
	return s
}

// Validate checks the scenario (after defaulting; Run applies defaults
// for you).
func (s Scenario) Validate() error {
	if s.FreqMHz <= 0 {
		return fmt.Errorf("noc: scenario %q: non-positive frequency %v", s.Name, s.FreqMHz)
	}
	if s.Cycles < 1 {
		return fmt.Errorf("noc: scenario %q: need at least 1 cycle", s.Name)
	}
	if s.Pattern.FlipProb < 0 || s.Pattern.FlipProb > 1 {
		return fmt.Errorf("noc: scenario %q: flip probability %v out of [0,1]",
			s.Name, s.Pattern.FlipProb)
	}
	if s.Pattern.Load <= 0 || s.Pattern.Load > 1 {
		return fmt.Errorf("noc: scenario %q: load %v out of (0,1]", s.Name, s.Pattern.Load)
	}
	if s.IsWorkload() {
		if len(s.Streams) > 0 {
			return fmt.Errorf("noc: scenario %q: streams and workloads are mutually exclusive", s.Name)
		}
		if s.MeshWidth < 2 || s.MeshHeight < 2 {
			return fmt.Errorf("noc: scenario %q: workload mesh must be at least 2x2, have %dx%d",
				s.Name, s.MeshWidth, s.MeshHeight)
		}
		for _, wl := range s.Workloads {
			if _, err := workloadGraph(wl); err != nil {
				return err
			}
		}
		return nil
	}
	seen := map[int]bool{}
	for _, st := range s.Streams {
		if st.ID < 1 {
			return fmt.Errorf("noc: scenario %q: stream ID %d must be >= 1", s.Name, st.ID)
		}
		if seen[st.ID] {
			return fmt.Errorf("noc: scenario %q: duplicate stream ID %d", s.Name, st.ID)
		}
		seen[st.ID] = true
		if !st.In.Valid() || !st.Out.Valid() {
			return fmt.Errorf("noc: scenario %q: stream %d has an invalid port", s.Name, st.ID)
		}
		if st.In == st.Out {
			return fmt.Errorf("noc: scenario %q: stream %d enters and leaves on %v",
				s.Name, st.ID, st.In)
		}
	}
	return nil
}

// PaperStreams returns Table 3's stream definitions.
func PaperStreams() []Stream {
	return []Stream{
		{ID: 1, In: Tile, Out: East},
		{ID: 2, In: North, Out: Tile},
		{ID: 3, In: West, Out: East},
	}
}

// PaperScenarios returns the paper's four test scenarios (Fig. 8) at the
// paper's operating point: I carries no data, II adds stream 1, III
// streams 1–2, IV streams 1–3.
func PaperScenarios() []Scenario {
	streams := PaperStreams()
	var out []Scenario
	for i, name := range []string{"I", "II", "III", "IV"} {
		out = append(out, Scenario{Name: name, Streams: streams[:i]}.withDefaults())
	}
	return out
}

// PaperScenario returns the paper scenario with the given roman numeral.
func PaperScenario(name string) (Scenario, error) {
	for _, sc := range PaperScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("noc: unknown paper scenario %q (have I..IV)", name)
}

// trafficScenario converts to the internal representation.
func (s Scenario) trafficScenario() traffic.Scenario {
	out := traffic.Scenario{Name: s.Name}
	for _, st := range s.Streams {
		out.Streams = append(out.Streams, traffic.Stream{
			ID: st.ID, In: st.In.corePort(), Out: st.Out.corePort(),
		})
	}
	return out
}
