package noc

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// shortSweepSpec is a sweep small enough for tests but wide enough to
// exercise every fabric and the reorder buffer.
func shortSweepSpec(workers int) SweepSpec {
	return SweepSpec{
		Name: "test",
		Grid: &Grid{
			Scenarios: []string{"II", "IV"},
			Loads:     []float64{0.5, 1},
			Cycles:    []int{400},
		},
		Workers: workers,
		Seed:    7,
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var w1, w8 bytes.Buffer
	if err := SweepJSON(context.Background(), shortSweepSpec(1), &w1); err != nil {
		t.Fatal(err)
	}
	if err := SweepJSON(context.Background(), shortSweepSpec(8), &w8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w8.Bytes()) {
		t.Fatalf("workers=1 and workers=8 JSON differ:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			w1.String(), w8.String())
	}
	// The stream must be valid JSON with the expected cell count:
	// 3 fabrics x 2 scenarios x 2 loads x 1 cycle count.
	var cells []SweepCell
	if err := json.Unmarshal(w1.Bytes(), &cells); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Error != "" {
			t.Errorf("cell %d failed: %s", i, c.Error)
		}
		// Scenario II's only stream leaves on East, which the circuit-
		// and packet-switched fabrics cannot observe end to end — so
		// assert on words offered, not delivered.
		if c.Result == nil || c.Result.WordsSent == 0 {
			t.Errorf("cell %d sent nothing", i)
		}
		if c.Seed == 0 {
			t.Errorf("cell %d has no seed", i)
		}
	}
}

func TestSweepCSVDeterministicAndShaped(t *testing.T) {
	var c1, c4 bytes.Buffer
	if err := SweepCSV(context.Background(), shortSweepSpec(1), &c1); err != nil {
		t.Fatal(err)
	}
	if err := SweepCSV(context.Background(), shortSweepSpec(4), &c4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c4.Bytes()) {
		t.Fatal("workers=1 and workers=4 CSV differ")
	}
	lines := strings.Split(strings.TrimSpace(c1.String()), "\n")
	if len(lines) != 13 { // header + 12 cells
		t.Fatalf("CSV lines = %d, want 13", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,fabric,scenario,") {
		t.Fatalf("unexpected header %q", lines[0])
	}
}

func TestSweepCellSeedsAreDistinctAndStable(t *testing.T) {
	spec := shortSweepSpec(0)
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, c := range cells {
		if prev, dup := seen[c.Seed]; dup {
			t.Errorf("cells %d and %d share seed %d", prev, c.Index, c.Seed)
		}
		seen[c.Seed] = c.Index
	}
	again, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Seed != again[i].Seed {
			t.Errorf("cell %d seed changed between enumerations", i)
		}
	}
	// A different sweep seed must move every cell seed.
	spec.Seed = 8
	moved, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Seed == moved[i].Seed {
			t.Errorf("cell %d seed did not change with the sweep seed", i)
		}
	}
}

func TestSweepPreservesExplicitScenarioSeed(t *testing.T) {
	spec := SweepSpec{
		Fabrics:   []FabricSpec{{Kind: KindCircuit}},
		Scenarios: []Scenario{{Name: "x", Streams: PaperStreams()[:1], Seed: 99}},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Seed != 99 {
		t.Fatalf("cell seed = %d, want the scenario's explicit 99", cells[0].Seed)
	}
}

func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	spec := SweepSpec{
		Grid:    &Grid{Cycles: []int{20000, 20000, 20000, 20000}},
		Workers: 2,
	}
	done := 0
	errc := make(chan error, 1)
	go func() {
		errc <- Sweep(ctx, spec, func(SweepCell) error {
			done++
			if done == 1 {
				cancel()
			}
			return nil
		})
	}()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	total := 3 * 4 * 4 // fabrics x scenarios x cycle axis
	if done >= total {
		t.Fatalf("sweep ran all %d cells despite cancellation", total)
	}
}

func TestSweepCallbackErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	spec := SweepSpec{Fabrics: []FabricSpec{{Kind: KindCircuit}},
		Grid: &Grid{Scenarios: []string{"I", "II"}, Cycles: []int{200}}}
	err := Sweep(context.Background(), spec, func(SweepCell) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSweepSpecValidation(t *testing.T) {
	lw := -2
	cases := []struct {
		name string
		spec SweepSpec
		frag string
	}{
		{"negative workers", SweepSpec{Workers: -1}, "negative worker count"},
		{"unknown fabric kind", SweepSpec{
			Fabrics: []FabricSpec{{Kind: "quantum"}}}, "unknown fabric kind"},
		{"bad fabric config", SweepSpec{
			Fabrics: []FabricSpec{{Kind: KindCircuit, LaneWidth: 7}}}, "lane width"},
		{"bad latency words", SweepSpec{
			Fabrics: []FabricSpec{{Kind: KindPacket, LatencyWords: &lw}}}, "latency word"},
		{"scenarios and grid", SweepSpec{
			Scenarios: []Scenario{{Name: "x"}},
			Grid:      &Grid{}}, "mutually exclusive"},
		{"unknown grid scenario", SweepSpec{
			Grid: &Grid{Scenarios: []string{"V"}}}, "unknown paper scenario"},
		{"bad scenario load", SweepSpec{
			Grid: &Grid{Loads: []float64{2}}}, "load"},
		{"bad explicit scenario", SweepSpec{
			Scenarios: []Scenario{{Name: "dup", Streams: []Stream{
				{ID: 1, In: Tile, Out: East}, {ID: 1, In: North, Out: Tile},
			}}}}, "duplicate stream"},
		{"bad corner", SweepSpec{
			Fabrics: []FabricSpec{{Kind: KindTDM, Corner: "slow"}}}, "corner"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("spec accepted")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
			if _, err := SweepAll(context.Background(), tc.spec); err == nil {
				t.Fatal("SweepAll accepted invalid spec")
			}
		})
	}
	if err := (SweepSpec{}).Validate(); err != nil {
		t.Fatalf("default spec rejected: %v", err)
	}
}

func TestSweepGridExpansion(t *testing.T) {
	spec := SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindCircuit}},
		Grid: &Grid{
			Scenarios: []string{"III"},
			FreqsMHz:  []float64{25, 50},
			Loads:     []float64{0.25},
		},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	names := []string{cells[0].Scenario.Name, cells[1].Scenario.Name}
	want := []string{"III/f=25/load=0.25", "III/f=50/load=0.25"}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("cell %d name = %q, want %q", i, names[i], want[i])
		}
	}
	if cells[1].Scenario.FreqMHz != 50 || cells[1].Scenario.Data.Load != 0.25 {
		t.Errorf("cell 1 parameters not applied: %+v", cells[1].Scenario)
	}
}

func TestSweepRecordsCellErrorWithoutAborting(t *testing.T) {
	// Stream ID 9 has no lane on a 4-lane router: the circuit fabric
	// fails at run time, after spec validation.
	spec := SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindCircuit}},
		Scenarios: []Scenario{
			{Name: "bad", Streams: []Stream{{ID: 9, In: Tile, Out: East}}, Cycles: 200},
			{Name: "good", Streams: PaperStreams()[:1], Cycles: 200},
		},
	}
	cells, err := SweepAll(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].Error == "" || cells[0].Result != nil {
		t.Errorf("bad cell not recorded as failed: %+v", cells[0])
	}
	if cells[1].Error != "" || cells[1].Result == nil {
		t.Errorf("good cell did not run: %+v", cells[1])
	}
}

func TestParseSweepSpec(t *testing.T) {
	spec, err := ParseSweepSpec([]byte(`{
		"name": "demo",
		"fabrics": [{"kind": "circuit", "gated": true}, {"kind": "packet"}],
		"grid": {"scenarios": ["III"], "loads": [0.5, 1]},
		"workers": 2,
		"seed": 42
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	if _, err := ParseSweepSpec([]byte(`{"grid": {"laods": [1]}}`)); err == nil {
		t.Fatal("typoed axis name accepted")
	}
	if _, err := ParseSweepSpec([]byte(`{"workers": -3}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := ParseSweepSpec([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFabricSpecRoundTrip(t *testing.T) {
	zero := 0
	specs := []FabricSpec{
		{Kind: KindCircuit, Gated: true, Corner: "hvt"},
		{Kind: KindPacket, VCs: 2, BufferDepth: 4, LatencyWords: &zero},
		{Kind: KindTDM, Slots: 16, BEDepth: 8},
	}
	for _, fs := range specs {
		f, err := fs.Fabric()
		if err != nil {
			t.Fatalf("%s: %v", fs.Kind, err)
		}
		if f.Kind() != fs.Kind {
			t.Errorf("kind = %s, want %s", f.Kind(), fs.Kind)
		}
		b, err := json.Marshal(fs)
		if err != nil {
			t.Fatal(err)
		}
		var back FabricSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if _, err := back.Fabric(); err != nil {
			t.Errorf("%s: JSON round trip broke the spec: %v", fs.Kind, err)
		}
	}
}

// TestSweepGridWorkloadMeshAxis: the workload/mesh-size grid axes expand
// into runnable CCN placement scenarios, and the invalid combinations
// fail validation loudly.
func TestSweepGridWorkloadMeshAxis(t *testing.T) {
	spec := SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindCircuit}},
		Grid: &Grid{
			Workloads: []string{"drm", "hiperlan2,drm"},
			MeshSizes: []int{4, 8},
			Cycles:    []int{500},
		},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4 (2 workload entries x 2 mesh sizes)", len(cells))
	}
	first := cells[0].Scenario
	if first.Name != "wl:drm/mesh=4/cycles=500" {
		t.Errorf("cell 0 name = %q", first.Name)
	}
	if first.MeshWidth != 4 || first.MeshHeight != 4 || !first.IsWorkload() {
		t.Errorf("cell 0 not a 4x4 workload scenario: %+v", first)
	}
	if got := cells[3].Scenario; got.MeshWidth != 8 || len(got.Workloads) != 2 {
		t.Errorf("cell 3 parameters not applied: %+v", got)
	}
	// The expanded scenarios actually run and carry per-node attribution.
	out, err := SweepAll(context.Background(), SweepSpec{
		Fabrics: []FabricSpec{{Kind: KindCircuit}},
		Grid:    &Grid{Workloads: []string{"drm"}, MeshSizes: []int{4}, Cycles: []int{500}},
		Kernel:  "event",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Error != "" || out[0].Result == nil {
		t.Fatalf("workload cell did not run: %+v", out[0])
	}
	if got := len(out[0].Result.PerComponent); got != 16 {
		t.Fatalf("per-component entries = %d, want 16 (one per node)", got)
	}

	// mesh_sizes without workloads is rejected.
	bad := SweepSpec{Grid: &Grid{MeshSizes: []int{8}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("mesh_sizes without workloads accepted")
	}
	// scenarios and workloads are mutually exclusive.
	bad = SweepSpec{Grid: &Grid{Scenarios: []string{"I"}, Workloads: []string{"drm"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("grid scenarios+workloads accepted")
	}
	// An unknown application name fails at validation, not at run time.
	bad = SweepSpec{Grid: &Grid{Workloads: []string{"quantum"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestSweepCSVPerComponentColumn: the flattened attribution column is
// present, populated and deterministic.
func TestSweepCSVPerComponentColumn(t *testing.T) {
	spec := SweepSpec{
		Fabrics:   []FabricSpec{{Kind: KindCircuit}},
		Scenarios: []Scenario{{Name: "II", Streams: PaperStreams()[:1], Cycles: 300}},
	}
	var a, b bytes.Buffer
	if err := SweepCSV(context.Background(), spec, &a); err != nil {
		t.Fatal(err)
	}
	if err := SweepCSV(context.Background(), spec, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV output not deterministic across runs")
	}
	rows, err := csv.NewReader(&a).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, h := range rows[0] {
		if h == "power_components" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("power_components column missing: %v", rows[0])
	}
	cell := rows[1][col]
	if !strings.Contains(cell, "clock=") || !strings.Contains(cell, "leakage=") {
		t.Fatalf("attribution cell malformed: %q", cell)
	}
}
