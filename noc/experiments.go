package noc

import (
	"context"
	"encoding/json"
	"io"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// Experiment describes one registered reproduction of a paper artefact
// (table, figure or ablation).
type Experiment struct {
	// ID is the identifier used by the CLI and DESIGN.md's index.
	ID string `json:"id"`
	// Title describes the artefact.
	Title string `json:"title"`
	// Paper cites the table/figure or section reproduced.
	Paper string `json:"paper"`
}

// Experiments lists every registered experiment, sorted by ID.
func Experiments() []Experiment {
	var out []Experiment
	for _, e := range experiments.All() {
		out = append(out, Experiment{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	return out
}

// RunExperiment measures one experiment and renders it as text to w.
func RunExperiment(w io.Writer, id string) error {
	return experiments.RunOne(w, id)
}

// RunAllExperiments renders every experiment to w.
func RunAllExperiments(w io.Writer) error {
	return experiments.RunAll(w)
}

// RunExperimentsParallel measures the given experiments concurrently on
// a bounded worker pool (workers <= 0 means GOMAXPROCS) and renders them
// to w in the given order. The text output is byte-identical to running
// RunExperiment over the ids sequentially; only the wall-clock changes.
func RunExperimentsParallel(w io.Writer, ids []string, workers int) error {
	return experiments.RunMany(w, ids, workers)
}

// ExperimentData measures one experiment and returns its typed,
// JSON-marshalable result (e.g. the eight power bars of fig9).
func ExperimentData(id string) (any, error) {
	return experiments.DataFor(id)
}

// ExperimentsJSON measures the given experiments on a bounded worker
// pool (workers <= 0 means GOMAXPROCS, 1 is sequential) and returns one
// JSON document per id, in the order the ids were given. The documents
// are identical to calling ExperimentJSON per id; only the wall-clock
// changes.
func ExperimentsJSON(ids []string, workers int) ([][]byte, error) {
	return sweep.Map(context.Background(), len(ids), workers, func(i int) ([]byte, error) {
		return ExperimentJSON(ids[i])
	})
}

// ExperimentJSON measures one experiment and returns its result as
// indented JSON, wrapped with the experiment's identity.
func ExperimentJSON(id string) ([]byte, error) {
	data, err := experiments.DataFor(id)
	if err != nil {
		return nil, err
	}
	e, _ := experiments.Lookup(id)
	return json.MarshalIndent(struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Paper string `json:"paper"`
		Data  any    `json:"data"`
	}{ID: e.ID, Title: e.Title, Paper: e.Paper, Data: data}, "", "  ")
}
