// Package repro is a from-scratch reproduction of Wolkotte, Smit, Rauwerda
// and Smit, "An Energy-Efficient Reconfigurable Circuit-Switched
// Network-on-Chip" (IPDPS 2005): a cycle-accurate, bit-accurate Go model of
// the proposed lane-division circuit-switched router, its packet-switched
// virtual-channel baseline and an Æthereal-style TDM comparator, together
// with the 0.13 µm standard-cell area/timing/power substrate, a mesh NoC
// with a Central Coordination Node, the best-effort configuration network
// and the three wireless applications (HiperLAN/2, UMTS, DRM) that motivate
// the design.
//
// The benchmark file in this directory regenerates every table and figure
// of the paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. The cmd/nocbench,
// cmd/nocsynth and cmd/nocmesh tools drive the same experiments from the
// command line, and the examples directory walks through the public API.
package repro
