// Package repro is a from-scratch reproduction of Wolkotte, Smit, Rauwerda
// and Smit, "An Energy-Efficient Reconfigurable Circuit-Switched
// Network-on-Chip" (IPDPS 2005): a cycle-accurate, bit-accurate Go model of
// the proposed lane-division circuit-switched router, its packet-switched
// virtual-channel baseline and an Æthereal-style TDM comparator, together
// with the 0.13 µm standard-cell area/timing/power substrate, a mesh NoC
// with a Central Coordination Node, the best-effort configuration network
// and the three wireless applications (HiperLAN/2, UMTS, DRM) that motivate
// the design.
//
// The public API lives in the repro/noc package: one Simulator runs a
// Scenario over any of the three fabrics (CircuitSwitched,
// PacketSwitched, AetherealTDM — interchangeable implementations of the
// Fabric interface, tuned with functional options) and returns
// structured, JSON-marshalable Results with the latency distribution,
// throughput and three-bucket power breakdown. Everything under
// internal/ is implementation detail.
//
// The benchmark file in this directory regenerates every table and figure
// of the paper's evaluation; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results. The cmd/nocbench,
// cmd/nocsynth and cmd/nocmesh tools drive the same experiments from the
// command line (nocbench -json emits typed results), and the examples
// directory walks through the public API, starting with
// examples/quickstart.
package repro
