package ccn

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// TestCircuitIsolationFuzz is the reproduction's strongest system-level
// property: allocate many random connections on a mesh, stream a distinct
// tagged sequence over every one of them concurrently, and verify that
// every destination receives exactly its own source's sequence, in order,
// with zero drops — "because data-streams are physically separated,
// collisions in the crossbar do not occur" (Section 4).
func TestCircuitIsolationFuzz(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := bitvec.NewXorShift64(uint64(1000 + trial))
			m := mesh.New(4, 4, core.DefaultParams(), core.DefaultAssemblyOptions())
			mgr := NewManager(m, 25)

			type streamState struct {
				conn   *Connection
				tag    uint16 // high byte identifies the stream
				seq    int
				nextRx uint16
				recv   int
			}
			var streams []*streamState
			// Allocate until a few failures accumulate (the mesh fills).
			fails := 0
			for len(streams) < 12 && fails < 10 {
				src := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				dst := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				if src == dst {
					continue
				}
				conn, err := mgr.Allocate(src, dst, 80)
				if err != nil {
					fails++
					continue
				}
				if err := mgr.Configure(conn); err != nil {
					t.Fatal(err)
				}
				streams = append(streams, &streamState{
					conn: conn,
					tag:  uint16(len(streams)+1) << 8,
				})
			}
			if len(streams) < 4 {
				t.Fatalf("only %d streams allocated", len(streams))
			}
			m.Step() // configuration edge

			for _, st := range streams {
				st := st
				src := m.At(st.conn.Src)
				dst := m.At(st.conn.Dst)
				txLane := st.conn.Segments[0][0].Circuit.In.Lane
				rxLane := st.conn.Segments[0][len(st.conn.Segments[0])-1].Circuit.Out.Lane
				m.World().Add(&sim.Func{OnEval: func() {
					if src.Tx[txLane].Ready() {
						word := st.tag | uint16(st.seq&0xFF)
						if src.Tx[txLane].Push(core.DataWord(word)) {
							st.seq++
						}
					}
					if w, ok := dst.Rx[rxLane].Pop(); ok {
						if w.Data&0xFF00 != st.tag {
							t.Errorf("stream %#x received foreign word %#x",
								st.tag, w.Data)
						}
						if w.Data != st.tag|st.nextRx {
							t.Errorf("stream %#x out of order: got %#x, want %#x",
								st.tag, w.Data, st.tag|st.nextRx)
						}
						st.nextRx = (st.nextRx + 1) & 0xFF
						st.recv++
					}
				}})
			}
			m.Run(2500)
			for i, st := range streams {
				if st.recv < 100 {
					t.Errorf("stream %d delivered only %d words", i, st.recv)
				}
				rxLane := st.conn.Segments[0][len(st.conn.Segments[0])-1].Circuit.Out.Lane
				if d := m.At(st.conn.Dst).Rx[rxLane].Dropped(); d != 0 {
					t.Errorf("stream %d dropped %d words", i, d)
				}
				txLane := st.conn.Segments[0][0].Circuit.In.Lane
				if v := m.At(st.conn.Src).Tx[txLane].WindowViolations(); v != 0 {
					t.Errorf("stream %d window violations: %d", i, v)
				}
			}
		})
	}
}

// TestReleaseReuseFuzz churns allocations and releases and verifies the
// bookkeeping never leaks or double-frees lanes: after releasing
// everything, the mesh is as empty as it started and a full re-allocation
// succeeds.
func TestReleaseReuseFuzz(t *testing.T) {
	rng := bitvec.NewXorShift64(77)
	m := mesh.New(3, 3, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := NewManager(m, 25)
	live := map[int]bool{}
	for op := 0; op < 300; op++ {
		if len(live) > 0 && rng.Bool(0.4) {
			// Release a random live connection.
			for id := range live {
				if err := mgr.Release(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				break
			}
			continue
		}
		src := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
		dst := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
		if src == dst {
			continue
		}
		if conn, err := mgr.Allocate(src, dst, float64(80*(rng.Intn(2)+1))); err == nil {
			live[conn.ID] = true
		}
	}
	for id := range live {
		if err := mgr.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.LinkUtilization() != 0 {
		t.Fatalf("leaked lanes: utilization %.3f after releasing all", mgr.LinkUtilization())
	}
	if len(mgr.Connections()) != 0 {
		t.Fatalf("connection table not empty: %v", mgr.Connections())
	}
	// The freed mesh accepts a fresh batch.
	for i := 0; i < 4; i++ {
		if _, err := mgr.Allocate(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}, 80); err != nil {
			t.Fatalf("re-allocation %d failed: %v", i, err)
		}
	}
}
