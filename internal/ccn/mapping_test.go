package ccn

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mesh"
	"repro/internal/sim"
)

func TestMapUMTSOnMesh(t *testing.T) {
	// The paper's UMTS example: 4 fingers, SF 4, ~320 Mbit/s total. At
	// 100 MHz a lane carries 320 Mbit/s, so every channel fits one lane.
	g, _ := newMgr(4, 3, 100)
	graph := apps.UMTSGraph(apps.DefaultUMTS())
	mp, err := g.MapApplication(graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(mp.Placement) != len(graph.Processes) {
		t.Fatalf("placed %d/%d processes", len(mp.Placement), len(graph.Processes))
	}
	if len(mp.Connections) != len(graph.GTChannels()) {
		t.Fatalf("allocated %d/%d channels", len(mp.Connections), len(graph.GTChannels()))
	}
	// Distinct processes on distinct tiles.
	seen := map[mesh.Coord]bool{}
	for _, c := range mp.Placement {
		if seen[c] {
			t.Fatal("two processes share a tile")
		}
		seen[c] = true
	}
	if mp.TotalHops() == 0 {
		t.Fatal("no hops recorded")
	}
	if mp.HopBandwidthProduct() <= 0 {
		t.Fatal("no mapping cost recorded")
	}
}

func TestMapHiperLANNeedsGangedLanes(t *testing.T) {
	// At 200 MHz a lane carries 640 Mbit/s: the HiperLAN/2 front end fits
	// exactly one lane and the mapping succeeds.
	g, _ := newMgr(4, 3, 200)
	graph := apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3])
	mp, err := g.MapApplication(graph)
	if err != nil {
		t.Fatal(err)
	}
	// At 25 MHz the 640 Mbit/s channel needs 8 lanes: infeasible with 4.
	g25, _ := newMgr(4, 3, 25)
	if _, err := g25.MapApplication(graph); err == nil {
		t.Fatal("640 Mbit/s at 25 MHz should be infeasible with 4 lanes")
	}
	_ = mp
}

func TestMapDRMIsTrivial(t *testing.T) {
	// DRM's kbit/s channels fit anywhere, even at 25 MHz.
	g, _ := newMgr(4, 3, 25)
	if _, err := g.MapApplication(apps.DRMGraph()); err != nil {
		t.Fatal(err)
	}
}

func TestMapTwoApplicationsShareMesh(t *testing.T) {
	// The multi-mode terminal: UMTS and DRM mapped concurrently.
	g, _ := newMgr(5, 4, 100)
	u, err := g.MapApplication(apps.UMTSGraph(apps.DefaultUMTS()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.MapApplication(apps.DRMGraph())
	if err != nil {
		t.Fatal(err)
	}
	// No tile hosts processes from both applications.
	for _, uc := range u.Placement {
		for _, dc := range d.Placement {
			if uc == dc {
				t.Fatal("tile shared between applications")
			}
		}
	}
	// Unmapping UMTS frees its tiles for a new mapping.
	if err := g.UnmapApplication(u); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MapApplication(apps.UMTSGraph(apps.DefaultUMTS())); err != nil {
		t.Fatalf("remap after unmap failed: %v", err)
	}
}

func TestMapFailsWhenTooFewTiles(t *testing.T) {
	g, _ := newMgr(2, 2, 100) // 4 tiles, UMTS needs 10 processes
	if _, err := g.MapApplication(apps.UMTSGraph(apps.DefaultUMTS())); err == nil {
		t.Fatal("mapping onto too-small mesh accepted")
	}
}

func TestMapRejectsInvalidGraph(t *testing.T) {
	g, _ := newMgr(3, 3, 100)
	bad := &kpn.Graph{Name: "bad"}
	if _, err := g.MapApplication(bad); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestMappedChannelCarriesData(t *testing.T) {
	// End-to-end: map a 2-process pipeline and stream words through the
	// configured connection.
	g, m := newMgr(3, 3, 100)
	graph := &kpn.Graph{
		Name:      "pipe",
		Processes: []kpn.Process{{Name: "src"}, {Name: "dst"}},
		Channels: []kpn.Channel{
			{Name: "c", From: "src", To: "dst", BandwidthMbps: 100, Class: kpn.GT},
		},
	}
	mp, err := g.MapApplication(graph)
	if err != nil {
		t.Fatal(err)
	}
	conn := mp.Connections["c"]
	m.Step()
	a, b := m.At(conn.Src), m.At(conn.Dst)
	txLane := conn.Segments[0][0].Circuit.In.Lane
	rxLane := conn.Segments[0][len(conn.Segments[0])-1].Circuit.Out.Lane
	recv, n := 0, 0
	m.World().Add(&sim.Func{OnEval: func() {
		if a.Tx[txLane].Ready() {
			if a.Tx[txLane].Push(core.DataWord(uint16(n))) {
				n++
			}
		}
		if _, ok := b.Rx[rxLane].Pop(); ok {
			recv++
		}
	}})
	if !m.World().RunUntil(func() bool { return recv >= 20 }, 3000) {
		t.Fatalf("mapped channel carried %d words", recv)
	}
	if name, ok := g.TileOf(conn.Src); !ok || name != "src" {
		t.Fatalf("TileOf(src tile) = %q,%v", name, ok)
	}
}

func TestPlacementPrefersLocality(t *testing.T) {
	// A 3-stage pipeline on a 5x5 mesh must map to adjacent or near
	// adjacent tiles (hop count near minimal), not scattered corners.
	g, _ := newMgr(5, 5, 100)
	graph := &kpn.Graph{
		Name:      "pipe3",
		Processes: []kpn.Process{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Channels: []kpn.Channel{
			{Name: "ab", From: "a", To: "b", BandwidthMbps: 100, Class: kpn.GT},
			{Name: "bc", From: "b", To: "c", BandwidthMbps: 100, Class: kpn.GT},
		},
	}
	mp, err := g.MapApplication(graph)
	if err != nil {
		t.Fatal(err)
	}
	if mp.TotalHops() > 4 {
		t.Fatalf("pipeline scattered: %d hops for 2 channels", mp.TotalHops())
	}
}
