package ccn

import (
	"testing"

	"repro/internal/kpn"
	"repro/internal/mesh"
)

// heteroGraph is a 3-stage pipeline with tile-type hints.
func heteroGraph() *kpn.Graph {
	return &kpn.Graph{
		Name: "hetero pipe",
		Processes: []kpn.Process{
			{Name: "fe", Kind: "ASIC"},
			{Name: "fft", Kind: "DSRH"},
			{Name: "dec", Kind: "DSP"},
		},
		Channels: []kpn.Channel{
			{Name: "a", From: "fe", To: "fft", BandwidthMbps: 100, Class: kpn.GT},
			{Name: "b", From: "fft", To: "dec", BandwidthMbps: 100, Class: kpn.GT},
		},
	}
}

func TestHeterogeneousPlacementRespectsKinds(t *testing.T) {
	g, _ := newMgr(3, 2, 100)
	// One tile of each required kind plus spares.
	g.SetTileKind(mesh.Coord{X: 0, Y: 0}, "ASIC")
	g.SetTileKind(mesh.Coord{X: 1, Y: 0}, "DSRH")
	g.SetTileKind(mesh.Coord{X: 2, Y: 0}, "DSP")
	g.SetTileKind(mesh.Coord{X: 0, Y: 1}, "GPP")
	g.SetTileKind(mesh.Coord{X: 1, Y: 1}, "GPP")
	g.SetTileKind(mesh.Coord{X: 2, Y: 1}, "GPP")
	mp, err := g.MapApplication(heteroGraph())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]mesh.Coord{
		"fe":  {X: 0, Y: 0},
		"fft": {X: 1, Y: 0},
		"dec": {X: 2, Y: 0},
	}
	for name, c := range want {
		if mp.Placement[name] != c {
			t.Errorf("process %s placed at %v, want %v (the only matching tile)",
				name, mp.Placement[name], c)
		}
	}
	if kind := g.TileKind(mesh.Coord{X: 1, Y: 0}); kind != "DSRH" {
		t.Fatalf("TileKind = %q", kind)
	}
}

func TestHeterogeneousInfeasibleWithoutMatchingTile(t *testing.T) {
	g, _ := newMgr(2, 2, 100)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			g.SetTileKind(mesh.Coord{X: x, Y: y}, "GPP")
		}
	}
	if _, err := g.MapApplication(heteroGraph()); err == nil {
		t.Fatal("mapping accepted with no ASIC/DSRH/DSP tiles")
	}
	// The rollback left the mesh clean: an unconstrained graph maps fine.
	plain := heteroGraph()
	for i := range plain.Processes {
		plain.Processes[i].Kind = ""
	}
	if _, err := g.MapApplication(plain); err != nil {
		t.Fatalf("mesh not clean after failed heterogeneous mapping: %v", err)
	}
}

func TestHeterogeneousKindContention(t *testing.T) {
	// Two applications competing for one DSRH tile: the second mapping
	// must fail, and succeed again once the first releases it.
	g, _ := newMgr(3, 3, 100)
	g.SetTileKind(mesh.Coord{X: 1, Y: 1}, "DSRH")
	// All other tiles GPP.
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			if (mesh.Coord{X: x, Y: y}) != (mesh.Coord{X: 1, Y: 1}) {
				g.SetTileKind(mesh.Coord{X: x, Y: y}, "GPP")
			}
		}
	}
	appA := &kpn.Graph{
		Name:      "a",
		Processes: []kpn.Process{{Name: "x", Kind: "DSRH"}, {Name: "y"}},
		Channels: []kpn.Channel{
			{Name: "c", From: "x", To: "y", BandwidthMbps: 80, Class: kpn.GT},
		},
	}
	appB := &kpn.Graph{
		Name:      "b",
		Processes: []kpn.Process{{Name: "p", Kind: "DSRH"}, {Name: "q"}},
		Channels: []kpn.Channel{
			{Name: "d", From: "p", To: "q", BandwidthMbps: 80, Class: kpn.GT},
		},
	}
	mpA, err := g.MapApplication(appA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.MapApplication(appB); err == nil {
		t.Fatal("second application won the only DSRH tile twice")
	}
	if err := g.UnmapApplication(mpA); err != nil {
		t.Fatal(err)
	}
	if _, err := g.MapApplication(appB); err != nil {
		t.Fatalf("DSRH tile not released: %v", err)
	}
}

func TestUnconstrainedMeshIgnoresKinds(t *testing.T) {
	// A mesh with no declared tile kinds accepts any process kind — the
	// homogeneous default all other tests use.
	g, _ := newMgr(2, 2, 100)
	if _, err := g.MapApplication(heteroGraph()); err != nil {
		t.Fatalf("unconstrained mesh rejected kinds: %v", err)
	}
}

func TestSetTileKindBounds(t *testing.T) {
	g, _ := newMgr(2, 2, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.SetTileKind(mesh.Coord{X: 5, Y: 5}, "DSP")
}
