package ccn

import (
	"fmt"
	"sort"

	"repro/internal/kpn"
	"repro/internal/mesh"
)

// Mapping is the result of the CCN's run-time application mapping: a
// placement of processes on tiles and one configured connection per
// guaranteed-throughput channel.
type Mapping struct {
	// Graph is the mapped application.
	Graph *kpn.Graph
	// Placement assigns each process to a tile.
	Placement map[string]mesh.Coord
	// Connections holds the allocated connection per GT channel name.
	Connections map[string]*Connection
}

// TotalHops sums the router hops of all connections, a locality metric.
func (mp *Mapping) TotalHops() int {
	h := 0
	for _, c := range mp.Connections {
		h += len(c.Route) - 1
	}
	return h
}

// HopBandwidthProduct sums hops × bandwidth over all channels — the
// CCN's spatial-mapping objective (energy is proportional to the distance
// data travels).
func (mp *Mapping) HopBandwidthProduct() float64 {
	var s float64
	for name, c := range mp.Connections {
		for _, ch := range mp.Graph.Channels {
			if ch.Name == name {
				s += float64(len(c.Route)-1) * ch.BandwidthMbps
			}
		}
	}
	return s
}

// MapApplication performs the CCN's feasibility analysis, spatial mapping,
// connection allocation and router configuration for an application graph
// (Section 1.1). Placement is greedy: processes in descending order of
// connected bandwidth, each placed on the free tile that minimizes the
// hop×bandwidth product to its already-placed neighbours. All GT channels
// are then allocated as lane paths and configured directly.
//
// Tiles already hosting a process from a previous mapping are not reused,
// so several applications can be mapped onto one mesh (the paper's
// multi-mode terminal sharing resources between standards).
func (g *Manager) MapApplication(graph *kpn.Graph) (*Mapping, error) {
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	if g.busyTiles == nil {
		g.busyTiles = make(map[mesh.Coord]string)
	}
	free := 0
	for y := 0; y < g.m.H; y++ {
		for x := 0; x < g.m.W; x++ {
			if _, busy := g.busyTiles[mesh.Coord{X: x, Y: y}]; !busy {
				free++
			}
		}
	}
	if free < len(graph.Processes) {
		return nil, fmt.Errorf("ccn: %d processes but only %d free tiles",
			len(graph.Processes), free)
	}
	// Feasibility: every channel must fit the lane geometry.
	for _, ch := range graph.GTChannels() {
		if err := g.Feasible(ch.BandwidthMbps); err != nil {
			return nil, fmt.Errorf("ccn: channel %q infeasible: %w", ch.Name, err)
		}
	}

	// Order processes by connected GT bandwidth, heaviest first.
	procs := make([]string, len(graph.Processes))
	weight := map[string]float64{}
	for i, p := range graph.Processes {
		procs[i] = p.Name
		for _, ch := range graph.GTChannels() {
			if ch.From == p.Name || ch.To == p.Name {
				weight[p.Name] += ch.BandwidthMbps
			}
		}
	}
	sort.SliceStable(procs, func(i, j int) bool { return weight[procs[i]] > weight[procs[j]] })

	mp := &Mapping{
		Graph:       graph,
		Placement:   map[string]mesh.Coord{},
		Connections: map[string]*Connection{},
	}
	for _, name := range procs {
		proc, _ := graph.Process(name)
		best, bestCost := mesh.Coord{}, -1.0
		for y := 0; y < g.m.H; y++ {
			for x := 0; x < g.m.W; x++ {
				c := mesh.Coord{X: x, Y: y}
				if _, busy := g.busyTiles[c]; busy {
					continue
				}
				if !g.kindOK(proc.Kind, c) {
					continue
				}
				cost := g.placementCost(graph, mp.Placement, name, c)
				if bestCost < 0 || cost < bestCost {
					best, bestCost = c, cost
				}
			}
		}
		if bestCost < 0 {
			// No suitable tile: roll back the partial placement.
			for n, c := range mp.Placement {
				if g.busyTiles[c] == n {
					delete(g.busyTiles, c)
				}
			}
			return nil, fmt.Errorf(
				"ccn: no free %q tile for process %q (heterogeneous feasibility)",
				proc.Kind, name)
		}
		mp.Placement[name] = best
		g.busyTiles[best] = name
	}

	// Allocate and configure every GT channel; roll back on failure.
	rollback := func() {
		for _, c := range mp.Connections {
			_ = g.Release(c.ID)
		}
		for name, c := range mp.Placement {
			if g.busyTiles[c] == name {
				delete(g.busyTiles, c)
			}
		}
	}
	for _, ch := range graph.GTChannels() {
		src, dst := mp.Placement[ch.From], mp.Placement[ch.To]
		conn, err := g.Allocate(src, dst, ch.BandwidthMbps)
		if err != nil {
			rollback()
			return nil, fmt.Errorf("ccn: allocating channel %q: %w", ch.Name, err)
		}
		if err := g.Configure(conn); err != nil {
			rollback()
			return nil, fmt.Errorf("ccn: configuring channel %q: %w", ch.Name, err)
		}
		mp.Connections[ch.Name] = conn
	}
	return mp, nil
}

// placementCost is the hop×bandwidth cost of putting process name at c,
// counting channels to already-placed processes; unplaced neighbours pull
// the process towards the mesh centre.
func (g *Manager) placementCost(graph *kpn.Graph, placed map[string]mesh.Coord,
	name string, c mesh.Coord) float64 {
	cost := 0.0
	for _, ch := range graph.GTChannels() {
		var other string
		switch name {
		case ch.From:
			other = ch.To
		case ch.To:
			other = ch.From
		default:
			continue
		}
		if oc, ok := placed[other]; ok {
			cost += float64(manhattan(c, oc)) * ch.BandwidthMbps
		} else {
			// Mild centre pull so chains don't start in a corner.
			cost += 0.01 * ch.BandwidthMbps *
				(absf(float64(c.X)-float64(g.m.W-1)/2) + absf(float64(c.Y)-float64(g.m.H-1)/2))
		}
	}
	return cost
}

// UnmapApplication releases a mapping's connections and frees its tiles.
func (g *Manager) UnmapApplication(mp *Mapping) error {
	for _, c := range mp.Connections {
		if err := g.Release(c.ID); err != nil {
			return err
		}
	}
	for name, c := range mp.Placement {
		if g.busyTiles[c] == name {
			delete(g.busyTiles, c)
		}
	}
	return nil
}

// TileOf returns which process occupies a tile, if any.
func (g *Manager) TileOf(c mesh.Coord) (string, bool) {
	name, ok := g.busyTiles[c]
	return name, ok
}

func manhattan(a, b mesh.Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
