// Package ccn implements the Central Coordination Node of the paper's SoC
// (Section 1.1): the node that manages system resources, performs run-time
// mapping of applications to processing tiles, maps inter-process
// communication onto concatenations of network links (lane paths through
// the circuit-switched mesh), checks quality-of-service feasibility and
// configures the routers — before an application starts, never during its
// execution.
//
// Configuration commands (10 bits per lane, Section 5.1) travel over the
// best-effort network; the paper budgets less than 1 ms per lane and a full
// router reconfiguration within 20 ms. The Manager can apply configurations
// either instantaneously (functional mode) or through a benet.Network
// (timing mode), which the setup-latency experiment uses.
package ccn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/mesh"
)

// Connection is one allocated guaranteed-throughput connection: a bundle
// of parallel lane paths from a source tile to a destination tile.
type Connection struct {
	// ID is the handle returned by Allocate.
	ID int
	// Src and Dst are the endpoints.
	Src, Dst mesh.Coord
	// BandwidthMbps is the requested bandwidth.
	BandwidthMbps float64
	// Lanes is the number of parallel lane paths allocated (ganged lanes
	// for channels beyond one lane's data rate).
	Lanes int
	// Route is the node sequence, inclusive of both endpoints.
	Route []mesh.Coord
	// Segments holds, per lane path and per hop, the circuit configured
	// in that hop's router.
	Segments [][]Segment
}

// Segment is one router's contribution to a lane path.
type Segment struct {
	// Node is the router's coordinate.
	Node mesh.Coord
	// Circuit is the input→output lane connection configured there.
	Circuit core.Circuit
}

// Cmds flattens the connection into per-router configuration commands.
func (c *Connection) Cmds(p core.Params) ([]RouterCmd, error) {
	var out []RouterCmd
	for _, lane := range c.Segments {
		for _, seg := range lane {
			cmd, err := seg.Circuit.Cmd(p)
			if err != nil {
				return nil, err
			}
			out = append(out, RouterCmd{Node: seg.Node, Cmd: cmd})
		}
	}
	return out, nil
}

// RouterCmd addresses one configuration command to one router.
type RouterCmd struct {
	// Node is the target router.
	Node mesh.Coord
	// Cmd is the 10-bit configuration command.
	Cmd core.ConfigCmd
}

// Manager is the CCN: it owns the lane occupancy bookkeeping of a mesh and
// allocates, configures and releases connections.
type Manager struct {
	m       *mesh.Mesh
	freqMHz float64

	// outUsed[node][globalLane] marks output lanes in use; tileInUsed
	// marks tile input lanes (transmit converters).
	outUsed   map[mesh.Coord][]bool
	tileInUse map[mesh.Coord][]bool

	nextID int
	conns  map[int]*Connection

	// busyTiles maps occupied tiles to the process they host.
	busyTiles map[mesh.Coord]string
	// tileKinds records each tile's processor type in the heterogeneous
	// SoC (DSP, FPGA, ASIC, GPP, DSRH). Empty means unconstrained.
	tileKinds map[mesh.Coord]string
}

// SetTileKind declares the processor type of a tile. Processes whose Kind
// hint is non-empty are only placed on tiles of that kind — the paper's
// heterogeneous SoC, where the CCN maps each process "on the tiles that
// can execute it most efficiently".
func (g *Manager) SetTileKind(c mesh.Coord, kind string) {
	if !g.m.InBounds(c) {
		panic(fmt.Sprintf("ccn: %v outside mesh", c))
	}
	if g.tileKinds == nil {
		g.tileKinds = make(map[mesh.Coord]string)
	}
	g.tileKinds[c] = kind
}

// TileKind returns a tile's declared processor type ("" = unconstrained).
func (g *Manager) TileKind(c mesh.Coord) string { return g.tileKinds[c] }

// kindOK reports whether a process with the given kind hint may run on
// tile c: an empty hint runs anywhere; an empty tile kind accepts
// anything (an unconstrained mesh); otherwise the kinds must match.
func (g *Manager) kindOK(processKind string, c mesh.Coord) bool {
	if processKind == "" {
		return true
	}
	tk := g.tileKinds[c]
	return tk == "" || tk == processKind
}

// NewManager returns a CCN for the mesh, with the network clock used for
// bandwidth feasibility checks.
func NewManager(m *mesh.Mesh, freqMHz float64) *Manager {
	if freqMHz <= 0 {
		panic("ccn: non-positive frequency")
	}
	mgr := &Manager{
		m:         m,
		freqMHz:   freqMHz,
		outUsed:   make(map[mesh.Coord][]bool),
		tileInUse: make(map[mesh.Coord][]bool),
		conns:     make(map[int]*Connection),
		nextID:    1,
	}
	return mgr
}

// LaneRateMbps returns the usable data rate of one lane at the network
// clock (80 Mbit/s at 25 MHz).
func (g *Manager) LaneRateMbps() float64 {
	return core.LaneDataRateMbps(g.m.P, g.freqMHz)
}

// LanesFor returns the number of ganged lanes needed for the bandwidth.
func (g *Manager) LanesFor(bandwidthMbps float64) int {
	if bandwidthMbps <= 0 {
		return 1
	}
	return int(math.Ceil(bandwidthMbps / g.LaneRateMbps()))
}

// Feasible reports whether a connection of the given bandwidth can exist
// at all on this mesh geometry (enough lanes per link), before considering
// current occupancy.
func (g *Manager) Feasible(bandwidthMbps float64) error {
	need := g.LanesFor(bandwidthMbps)
	if need > g.m.P.LanesPerPort {
		return fmt.Errorf(
			"ccn: %.0f Mbit/s needs %d lanes, links have %d (lane rate %.0f Mbit/s at %.0f MHz)",
			bandwidthMbps, need, g.m.P.LanesPerPort, g.LaneRateMbps(), g.freqMHz)
	}
	return nil
}

func (g *Manager) used(node mesh.Coord) []bool {
	u, ok := g.outUsed[node]
	if !ok {
		u = make([]bool, g.m.P.TotalLanes())
		g.outUsed[node] = u
	}
	return u
}

func (g *Manager) tileIn(node mesh.Coord) []bool {
	u, ok := g.tileInUse[node]
	if !ok {
		u = make([]bool, g.m.P.LanesPerPort)
		g.tileInUse[node] = u
	}
	return u
}

// freeLane returns the lowest free lane index on the given output port of
// node, or -1.
func (g *Manager) freeLane(node mesh.Coord, port core.Port) int {
	u := g.used(node)
	for l := 0; l < g.m.P.LanesPerPort; l++ {
		if !u[g.m.P.Global(core.LaneID{Port: port, Lane: l})] {
			return l
		}
	}
	return -1
}

// Allocate finds lane paths for a connection and records the resources,
// without configuring any router yet; Configure or ConfigureVia applies
// it. Allocation tries the X-then-Y route first, then Y-then-X (the lane
// structure exists precisely to reduce the blocking Wiklund observed in
// single-circuit links). It fails if either route lacks free lanes.
func (g *Manager) Allocate(src, dst mesh.Coord, bandwidthMbps float64) (*Connection, error) {
	if !g.m.InBounds(src) || !g.m.InBounds(dst) {
		return nil, fmt.Errorf("ccn: endpoints %v->%v outside mesh", src, dst)
	}
	if src == dst {
		return nil, fmt.Errorf("ccn: source and destination tile coincide")
	}
	if err := g.Feasible(bandwidthMbps); err != nil {
		return nil, err
	}
	lanes := g.LanesFor(bandwidthMbps)

	routes := [][]mesh.Coord{mesh.XYPath(src, dst), yxPath(src, dst)}
	var lastErr error
	for _, route := range routes {
		conn, err := g.tryAllocate(route, lanes, bandwidthMbps)
		if err == nil {
			conn.ID = g.nextID
			g.nextID++
			g.conns[conn.ID] = conn
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// tryAllocate attempts to reserve `lanes` parallel lane paths along route.
// On failure nothing is reserved.
func (g *Manager) tryAllocate(route []mesh.Coord, lanes int, bw float64) (*Connection, error) {
	type reservation struct {
		node mesh.Coord
		lane int // global output lane, or -1 for a tile input
		tile int // tile input lane when lane == -1
	}
	var reserved []reservation
	release := func() {
		for _, r := range reserved {
			if r.lane >= 0 {
				g.used(r.node)[r.lane] = false
			} else {
				g.tileIn(r.node)[r.tile] = false
			}
		}
	}

	conn := &Connection{
		Src: route[0], Dst: route[len(route)-1],
		BandwidthMbps: bw, Lanes: lanes, Route: route,
	}
	for ln := 0; ln < lanes; ln++ {
		var segs []Segment
		// Source tile input lane (transmit converter).
		srcNode := route[0]
		tin := -1
		for l, used := range g.tileIn(srcNode) {
			if !used {
				tin = l
				break
			}
		}
		if tin < 0 {
			release()
			return nil, fmt.Errorf("ccn: no free tile input lane at %v", srcNode)
		}
		g.tileIn(srcNode)[tin] = true
		reserved = append(reserved, reservation{node: srcNode, lane: -1, tile: tin})

		inLane := core.LaneID{Port: core.Tile, Lane: tin}
		for h := 0; h < len(route)-1; h++ {
			node, next := route[h], route[h+1]
			outPort, err := mesh.PortTowards(node, next)
			if err != nil {
				release()
				return nil, err
			}
			l := g.freeLane(node, outPort)
			if l < 0 {
				release()
				return nil, fmt.Errorf("ccn: no free lane %v -> %v", node, next)
			}
			gl := g.m.P.Global(core.LaneID{Port: outPort, Lane: l})
			g.used(node)[gl] = true
			reserved = append(reserved, reservation{node: node, lane: gl})
			segs = append(segs, Segment{Node: node, Circuit: core.Circuit{
				In:  inLane,
				Out: core.LaneID{Port: outPort, Lane: l},
			}})
			// The link wires lane l of this port to lane l of the
			// neighbour's opposite port.
			inLane = core.LaneID{Port: outPort.Opposite(), Lane: l}
		}
		// Destination tile output lane (receive converter).
		dstNode := route[len(route)-1]
		l := g.freeLane(dstNode, core.Tile)
		if l < 0 {
			release()
			return nil, fmt.Errorf("ccn: no free tile output lane at %v", dstNode)
		}
		gl := g.m.P.Global(core.LaneID{Port: core.Tile, Lane: l})
		g.used(dstNode)[gl] = true
		reserved = append(reserved, reservation{node: dstNode, lane: gl})
		segs = append(segs, Segment{Node: dstNode, Circuit: core.Circuit{
			In:  inLane,
			Out: core.LaneID{Port: core.Tile, Lane: l},
		}})
		conn.Segments = append(conn.Segments, segs)
	}
	return conn, nil
}

// yxPath is the Y-then-X alternative to mesh.XYPath.
func yxPath(from, to mesh.Coord) []mesh.Coord {
	mid := mesh.Coord{X: from.X, Y: to.Y}
	path := mesh.XYPath(from, mid) // pure Y movement
	rest := mesh.XYPath(mid, to)   // pure X movement
	return append(path, rest[1:]...)
}

// Configure applies the connection's commands directly to the routers
// (functional mode) and enables the terminating converters. The commands
// take effect at the next clock edge, as hardware configuration writes do.
func (g *Manager) Configure(c *Connection) error {
	for _, lane := range c.Segments {
		for i, seg := range lane {
			a := g.m.At(seg.Node)
			if err := a.R.Configure(seg.Circuit); err != nil {
				return err
			}
			if i == 0 && seg.Circuit.In.Port == core.Tile {
				a.Tx[seg.Circuit.In.Lane].Enabled = true
			}
			if i == len(lane)-1 && seg.Circuit.Out.Port == core.Tile {
				a.Rx[seg.Circuit.Out.Lane].Enabled = true
			}
		}
	}
	return nil
}

// Release frees the connection's lanes and stages deactivation commands in
// the affected routers.
func (g *Manager) Release(id int) error {
	c, ok := g.conns[id]
	if !ok {
		return fmt.Errorf("ccn: unknown connection %d", id)
	}
	for _, lane := range c.Segments {
		for i, seg := range lane {
			a := g.m.At(seg.Node)
			a.R.Deactivate(seg.Circuit.Out)
			g.used(seg.Node)[g.m.P.Global(seg.Circuit.Out)] = false
			if i == 0 && seg.Circuit.In.Port == core.Tile {
				g.tileIn(seg.Node)[seg.Circuit.In.Lane] = false
				a.Tx[seg.Circuit.In.Lane].Enabled = false
			}
			if i == len(lane)-1 && seg.Circuit.Out.Port == core.Tile {
				a.Rx[seg.Circuit.Out.Lane].Enabled = false
			}
		}
	}
	delete(g.conns, id)
	return nil
}

// Connections returns the live connection IDs in ascending order.
func (g *Manager) Connections() []int {
	ids := make([]int, 0, len(g.conns))
	for id := range g.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Connection returns a live connection by ID.
func (g *Manager) Connection(id int) (*Connection, bool) {
	c, ok := g.conns[id]
	return c, ok
}

// LinkUtilization returns the fraction of output lanes in use across all
// inter-router links (tile ports excluded).
func (g *Manager) LinkUtilization() float64 {
	used, total := 0, 0
	for y := 0; y < g.m.H; y++ {
		for x := 0; x < g.m.W; x++ {
			node := mesh.Coord{X: x, Y: y}
			for p := core.North; p <= core.West; p++ {
				if _, ok := g.m.Neighbour(node, p); !ok {
					continue
				}
				for l := 0; l < g.m.P.LanesPerPort; l++ {
					total++
					if g.used(node)[g.m.P.Global(core.LaneID{Port: p, Lane: l})] {
						used++
					}
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}
