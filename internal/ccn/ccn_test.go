package ccn

import (
	"testing"

	"repro/internal/benet"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
)

func newMgr(w, h int, freq float64) (*Manager, *mesh.Mesh) {
	m := mesh.New(w, h, core.DefaultParams(), core.DefaultAssemblyOptions())
	return NewManager(m, freq), m
}

func TestLaneMath(t *testing.T) {
	g, _ := newMgr(3, 3, 25)
	if got := g.LaneRateMbps(); got != 80 {
		t.Fatalf("lane rate = %v, want 80 Mbit/s at 25 MHz", got)
	}
	if g.LanesFor(80) != 1 || g.LanesFor(81) != 2 || g.LanesFor(0) != 1 {
		t.Fatal("LanesFor wrong")
	}
	if g.Feasible(320) != nil {
		t.Fatal("4 lanes at 80 Mbit/s should carry 320")
	}
	if g.Feasible(321) == nil {
		t.Fatal("5 lanes needed but only 4 exist")
	}
}

func TestAllocateSingleLanePath(t *testing.T) {
	g, m := newMgr(3, 3, 25)
	c, err := g.Allocate(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 1}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lanes != 1 {
		t.Fatalf("lanes = %d", c.Lanes)
	}
	// Route is XY: (0,0)(1,0)(2,0)(2,1) = 4 nodes.
	if len(c.Route) != 4 {
		t.Fatalf("route = %v", c.Route)
	}
	// One segment per hop router.
	if len(c.Segments[0]) != 4 {
		t.Fatalf("segments = %d", len(c.Segments[0]))
	}
	// First segment enters at the tile, last leaves at the tile.
	if c.Segments[0][0].Circuit.In.Port != core.Tile {
		t.Fatal("path does not start at the source tile")
	}
	if c.Segments[0][3].Circuit.Out.Port != core.Tile {
		t.Fatal("path does not end at the destination tile")
	}
	// Segments chain: out lane of hop i feeds in lane of hop i+1 through
	// the link (same lane index, opposite port).
	for i := 0; i < 3; i++ {
		out := c.Segments[0][i].Circuit.Out
		in := c.Segments[0][i+1].Circuit.In
		if in.Port != out.Port.Opposite() || in.Lane != out.Lane {
			t.Fatalf("hop %d: out %v does not chain to in %v", i, out, in)
		}
	}
	_ = m
}

func TestAllocateGangsLanes(t *testing.T) {
	g, _ := newMgr(3, 1, 25)
	// 240 Mbit/s needs 3 lanes at 80 Mbit/s.
	c, err := g.Allocate(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 0}, 240)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lanes != 3 || len(c.Segments) != 3 {
		t.Fatalf("lanes = %d, segments = %d", c.Lanes, len(c.Segments))
	}
	// The three paths use distinct lanes on the shared links.
	used := map[string]bool{}
	for _, lane := range c.Segments {
		for _, seg := range lane {
			key := seg.Node.String() + seg.Circuit.Out.String()
			if used[key] {
				t.Fatalf("output lane %s allocated twice", key)
			}
			used[key] = true
		}
	}
}

func TestAllocateExhaustsLanesAndFails(t *testing.T) {
	g, _ := newMgr(2, 1, 25)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	// 4 lanes per link: four 80 Mbit/s circuits fit, the fifth does not
	// (both XY and YX routes use the same single link).
	for i := 0; i < 4; i++ {
		if _, err := g.Allocate(src, dst, 80); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := g.Allocate(src, dst, 80); err == nil {
		t.Fatal("fifth circuit on a 4-lane link accepted")
	}
}

func TestAllocateFallsBackToYX(t *testing.T) {
	g, _ := newMgr(2, 3, 25)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 1}
	// Saturate the XY route's second link (1,0)->(1,1) with pass-through
	// circuits (1,0) -> (1,2), which use different tile lanes.
	for i := 0; i < 4; i++ {
		if _, err := g.Allocate(mesh.Coord{X: 1, Y: 0}, mesh.Coord{X: 1, Y: 2}, 80); err != nil {
			t.Fatal(err)
		}
	}
	c, err := g.Allocate(src, dst, 80)
	if err != nil {
		t.Fatalf("YX fallback failed: %v", err)
	}
	// The YX route goes south first.
	if c.Route[1] != (mesh.Coord{X: 0, Y: 1}) {
		t.Fatalf("route = %v, expected YX detour", c.Route)
	}
}

func TestAllocateRejectsBadEndpoints(t *testing.T) {
	g, _ := newMgr(2, 2, 25)
	if _, err := g.Allocate(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 0, Y: 0}, 80); err == nil {
		t.Fatal("self connection accepted")
	}
	if _, err := g.Allocate(mesh.Coord{X: -1, Y: 0}, mesh.Coord{X: 1, Y: 0}, 80); err == nil {
		t.Fatal("out-of-mesh endpoint accepted")
	}
}

func TestConfigureAndStream(t *testing.T) {
	g, m := newMgr(3, 1, 25)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 0}
	c, err := g.Allocate(src, dst, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Configure(c); err != nil {
		t.Fatal(err)
	}
	m.Step() // configuration edge
	a, b := m.At(src), m.At(dst)
	txLane := c.Segments[0][0].Circuit.In.Lane
	rxLane := c.Segments[0][len(c.Segments[0])-1].Circuit.Out.Lane
	var got []core.Word
	n := 0
	m.World().Add(&sim.Func{OnEval: func() {
		if n < 25 && a.Tx[txLane].Ready() {
			if a.Tx[txLane].Push(core.DataWord(uint16(n + 100))) {
				n++
			}
		}
		if w, ok := b.Rx[rxLane].Pop(); ok {
			got = append(got, w)
		}
	}})
	if !m.World().RunUntil(func() bool { return len(got) == 25 }, 3000) {
		t.Fatalf("received %d/25 over CCN-allocated circuit", len(got))
	}
	for i, w := range got {
		if w.Data != uint16(i+100) {
			t.Fatalf("word %d corrupted: %v", i, w)
		}
	}
}

func TestReleaseFreesLanes(t *testing.T) {
	g, _ := newMgr(2, 1, 25)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	var ids []int
	for i := 0; i < 4; i++ {
		c, err := g.Allocate(src, dst, 80)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, c.ID)
	}
	if _, err := g.Allocate(src, dst, 80); err == nil {
		t.Fatal("should be full")
	}
	if err := g.Release(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Allocate(src, dst, 80); err != nil {
		t.Fatalf("lane not freed: %v", err)
	}
	if err := g.Release(999); err == nil {
		t.Fatal("released unknown connection")
	}
	if len(g.Connections()) != 4 {
		t.Fatalf("live connections = %d, want 4", len(g.Connections()))
	}
	if _, ok := g.Connection(ids[1]); !ok {
		t.Fatal("Connection lookup failed")
	}
}

func TestLinkUtilization(t *testing.T) {
	g, _ := newMgr(2, 1, 25)
	if g.LinkUtilization() != 0 {
		t.Fatal("fresh mesh should be idle")
	}
	if _, err := g.Allocate(mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}, 80); err != nil {
		t.Fatal(err)
	}
	// 2x1 mesh: 8 inter-router output lanes (4 each direction); 1 in use.
	if got := g.LinkUtilization(); got != 1.0/8 {
		t.Fatalf("utilization = %v, want 1/8", got)
	}
}

func TestBEConfiguratorDeliversAndMeetsBudget(t *testing.T) {
	g, m := newMgr(4, 4, 25)
	be := benet.New(4, 4, packetsw.DefaultParams())
	bc := &BEConfigurator{Net: be, Mesh: m, CCNNode: mesh.Coord{X: 0, Y: 0}}
	c, err := g.Allocate(mesh.Coord{X: 0, Y: 1}, mesh.Coord{X: 3, Y: 3}, 160)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bc.Configure(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 2*len(c.Route) {
		t.Fatalf("commands = %d, want %d (2 lanes × %d hops)",
			res.Commands, 2*len(c.Route), len(c.Route))
	}
	// The paper's budget: < 1 ms per lane configuration at the BE clock.
	if ms := res.MaxCommandTimeMS(25); ms >= 1 {
		t.Fatalf("per-command configuration took %.3f ms, budget 1 ms", ms)
	}
	// The circuit must now actually work.
	m.Step()
	a, b := m.At(mesh.Coord{X: 0, Y: 1}), m.At(mesh.Coord{X: 3, Y: 3})
	txLane := c.Segments[0][0].Circuit.In.Lane
	rxLane := c.Segments[0][len(c.Segments[0])-1].Circuit.Out.Lane
	delivered := 0
	n := 0
	m.World().Add(&sim.Func{OnEval: func() {
		if a.Tx[txLane].Ready() {
			if a.Tx[txLane].Push(core.DataWord(uint16(n))) {
				n++
			}
		}
		if _, ok := b.Rx[rxLane].Pop(); ok {
			delivered++
		}
	}})
	if !m.World().RunUntil(func() bool { return delivered >= 10 }, 3000) {
		t.Fatalf("BE-configured circuit carried %d words", delivered)
	}
}

func TestFullRouterReconfigBudget(t *testing.T) {
	_, m := newMgr(4, 4, 25)
	be := benet.New(4, 4, packetsw.DefaultParams())
	bc := &BEConfigurator{Net: be, Mesh: m, CCNNode: mesh.Coord{X: 0, Y: 0}}
	res, err := bc.FullRouterReconfig(mesh.Coord{X: 3, Y: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commands != 20 {
		t.Fatalf("commands = %d, want 20 (one per output lane)", res.Commands)
	}
	// The paper's budget: a full router within 20 ms.
	if ms := res.TimeMS(25); ms >= 20 {
		t.Fatalf("full reconfiguration took %.3f ms, budget 20 ms", ms)
	}
	// All 20 lanes are now enabled.
	m.Step()
	if got := m.At(mesh.Coord{X: 3, Y: 3}).R.Config().EnabledLanes(); got != 20 {
		t.Fatalf("enabled lanes = %d, want 20", got)
	}
}
