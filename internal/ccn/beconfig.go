package ccn

import (
	"fmt"

	"repro/internal/benet"
	"repro/internal/core"
	"repro/internal/mesh"
)

// BEConfigurator delivers configuration commands over the best-effort
// network instead of applying them instantly, reproducing the paper's
// reconfiguration timing: 10 bits per lane, sent by the CCN, with a budget
// of 1 ms per lane and 20 ms for a full router (Section 5.1).
type BEConfigurator struct {
	// Net is the best-effort mesh carrying the commands.
	Net *benet.Network
	// Mesh is the circuit-switched data mesh being configured.
	Mesh *mesh.Mesh
	// CCNNode is the coordinate of the Central Coordination Node.
	CCNNode mesh.Coord
}

// ConfigureResult reports the timing of a configuration delivered over the
// BE network.
type ConfigureResult struct {
	// Commands is the number of 10-bit commands sent.
	Commands int
	// Cycles is the total cycles from first send to last command applied.
	Cycles uint64
	// MaxCommandCycles is the worst single-command delivery latency.
	MaxCommandCycles uint64
}

// TimeMS converts the total cycle count to milliseconds at the given BE
// network clock.
func (r ConfigureResult) TimeMS(freqMHz float64) float64 {
	return float64(r.Cycles) / freqMHz / 1e3
}

// MaxCommandTimeMS converts the worst per-command latency to milliseconds.
func (r ConfigureResult) MaxCommandTimeMS(freqMHz float64) float64 {
	return float64(r.MaxCommandCycles) / freqMHz / 1e3
}

// Configure sends the connection's commands from the CCN node over the BE
// network, co-simulating the BE mesh and the data mesh until every command
// has been delivered and applied. Converter enables at the endpoints are
// tile-local actions (the CCN instructs the tiles directly in the paper's
// model) and take effect with the final command.
func (b *BEConfigurator) Configure(c *Connection) (ConfigureResult, error) {
	cmds, err := c.Cmds(b.Mesh.P)
	if err != nil {
		return ConfigureResult{}, err
	}
	if len(cmds) == 0 {
		return ConfigureResult{}, fmt.Errorf("ccn: connection has no commands")
	}

	// One BE message per command: a single 16-bit word carrying the
	// 10-bit configuration command.
	pending := make(map[mesh.Coord][]core.ConfigCmd)
	for _, rc := range cmds {
		enc, err := rc.Cmd.Encode(b.Mesh.P)
		if err != nil {
			return ConfigureResult{}, err
		}
		b.Net.Send(benet.Message{
			Src:     b.CCNNode,
			Dst:     rc.Node,
			Payload: []uint16{uint16(enc)},
		})
		pending[rc.Node] = append(pending[rc.Node], rc.Cmd)
	}

	var res ConfigureResult
	res.Commands = len(cmds)
	start := b.Net.Cycle()
	applied := 0
	// Generous bound: commands × mesh diameter × serialization factor.
	maxCycles := len(cmds)*(b.Mesh.W+b.Mesh.H)*50 + 1000
	for applied < len(cmds) {
		if int(b.Net.Cycle()-start) > maxCycles {
			return res, fmt.Errorf("ccn: BE configuration stalled after %d cycles (%d/%d applied)",
				maxCycles, applied, len(cmds))
		}
		b.Net.Step()
		b.Mesh.Step()
		for _, msg := range b.Net.Delivered() {
			q := pending[msg.Dst]
			if len(q) == 0 {
				return res, fmt.Errorf("ccn: unexpected delivery at %v", msg.Dst)
			}
			cmd := q[0]
			pending[msg.Dst] = q[1:]
			b.Mesh.At(msg.Dst).R.PushConfig(cmd)
			applied++
			if lat := msg.RecvCycle - msg.SentCycle; lat > res.MaxCommandCycles {
				res.MaxCommandCycles = lat
			}
		}
	}
	// One more edge for the staged configuration writes to commit.
	b.Net.Step()
	b.Mesh.Step()
	res.Cycles = b.Net.Cycle() - start

	// Enable the endpoint converters (tile-local).
	for _, lane := range c.Segments {
		first, last := lane[0], lane[len(lane)-1]
		if first.Circuit.In.Port == core.Tile {
			b.Mesh.At(first.Node).Tx[first.Circuit.In.Lane].Enabled = true
		}
		if last.Circuit.Out.Port == core.Tile {
			b.Mesh.At(last.Node).Rx[last.Circuit.Out.Lane].Enabled = true
		}
	}
	return res, nil
}

// FullRouterReconfig measures reconfiguring every output lane of the
// router at target: TotalLanes commands sent back to back — the paper's
// "one single router can then be fully reconfigured within 20 ms" bound.
func (b *BEConfigurator) FullRouterReconfig(target mesh.Coord) (ConfigureResult, error) {
	p := b.Mesh.P
	var res ConfigureResult
	start := b.Net.Cycle()
	type pendingCmd struct{ cmd core.ConfigCmd }
	var queue []pendingCmd
	for g := 0; g < p.TotalLanes(); g++ {
		out := p.LaneOf(g)
		inPort := core.North
		if out.Port == core.North {
			inPort = core.South
		}
		circ := core.Circuit{In: core.LaneID{Port: inPort, Lane: out.Lane}, Out: out}
		cmd, err := circ.Cmd(p)
		if err != nil {
			return res, err
		}
		enc, err := cmd.Encode(p)
		if err != nil {
			return res, err
		}
		b.Net.Send(benet.Message{Src: b.CCNNode, Dst: target, Payload: []uint16{uint16(enc)}})
		queue = append(queue, pendingCmd{cmd: cmd})
		res.Commands++
	}
	applied := 0
	maxCycles := res.Commands*(b.Mesh.W+b.Mesh.H)*50 + 1000
	for applied < res.Commands {
		if int(b.Net.Cycle()-start) > maxCycles {
			return res, fmt.Errorf("ccn: full reconfiguration stalled")
		}
		b.Net.Step()
		b.Mesh.Step()
		for _, msg := range b.Net.Delivered() {
			b.Mesh.At(msg.Dst).R.PushConfig(queue[applied].cmd)
			applied++
			if lat := msg.RecvCycle - msg.SentCycle; lat > res.MaxCommandCycles {
				res.MaxCommandCycles = lat
			}
		}
	}
	b.Net.Step()
	b.Mesh.Step()
	res.Cycles = b.Net.Cycle() - start
	return res, nil
}
