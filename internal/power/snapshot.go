package power

import "repro/internal/sim"

// Snapshot appends the meter's dynamic accumulation state — cycle count,
// the run-length-encoded clock-energy runs, the internal/switching
// accumulators and the per-class toggle counters — in the sim.Snapshotter
// byte format. Construction-time state (design, library, frequency) is
// not serialized: a snapshot is restored into a meter built from the same
// configuration.
func (m *Meter) Snapshot(buf []byte) []byte {
	buf = sim.AppendU64(buf, m.cycles)
	buf = sim.AppendU64(buf, uint64(len(m.clockRuns)))
	for _, r := range m.clockRuns {
		buf = sim.AppendF64(buf, r.fj)
		buf = sim.AppendU64(buf, r.n)
	}
	buf = sim.AppendF64(buf, m.internalFJ)
	buf = sim.AppendF64(buf, m.switchingFJ)
	for _, t := range m.toggles {
		buf = sim.AppendU64(buf, t)
	}
	return buf
}

// Restore is the inverse of Snapshot; it returns the unread remainder of
// data. Restored accumulators are bit-exact, including the RLE clock-run
// boundaries, so a warm-started run's power report is byte-identical to
// an uninterrupted one.
func (m *Meter) Restore(data []byte) ([]byte, error) {
	var err error
	if m.cycles, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	var n uint64
	if n, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	m.clockRuns = m.clockRuns[:0]
	for i := uint64(0); i < n; i++ {
		var r clockRun
		if r.fj, data, err = sim.ReadF64(data); err != nil {
			return nil, err
		}
		if r.n, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		m.clockRuns = append(m.clockRuns, r)
	}
	if m.internalFJ, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	if m.switchingFJ, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	for i := range m.toggles {
		if m.toggles[i], data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}
