// Package power implements the activity-based power estimator that stands in
// for the paper's Synopsys Power Compiler run. Like Power Compiler it splits
// consumption into three buckets (Section 7.2 of the paper):
//
//   - static power: leakage, proportional to area, drawn whether or not the
//     circuit is clocked;
//   - dynamic internal-cell power: energy dissipated inside cells — the clock
//     pins of every register each cycle (the paper's "relative high offset")
//     plus the internal energy of cells whose outputs toggle;
//   - dynamic switching power: the charging and discharging of net load
//     capacitance at cell outputs, ½·C·V² per transition.
//
// A Meter is attached to a netlist.Design and fed by the cycle-accurate
// router models: one Tick per clock cycle plus toggle counts per activity
// class. At the end of a simulation Report converts accumulated energy into
// the three power buckets at the simulated clock frequency.
package power

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/stdcell"
)

// ToggleKind classifies a signal transition by the kind of net it occurs on,
// which determines its internal and switching energy cost.
type ToggleKind int

const (
	// ToggleReg is a register output transition: flip-flop internal energy
	// plus a short local net.
	ToggleReg ToggleKind = iota
	// ToggleGate is a combinational cell output transition on the datapath
	// (multiplexer stages, decoders, arbiter logic).
	ToggleGate
	// ToggleLink is a transition on an inter-router link wire — a long
	// top-metal net whose capacitance comes from the library's link length.
	ToggleLink
	// ToggleBufBit is a FIFO/register-file storage bit changing value on a
	// write.
	ToggleBufBit
	numToggleKinds
)

// String returns the toggle kind's name.
func (k ToggleKind) String() string {
	switch k {
	case ToggleReg:
		return "register"
	case ToggleGate:
		return "gate"
	case ToggleLink:
		return "link"
	case ToggleBufBit:
		return "buffer-bit"
	default:
		return fmt.Sprintf("ToggleKind(%d)", int(k))
	}
}

// Representative net load capacitances in fF for short on-router nets.
const (
	cRegOutFF  = 12.0 // register output: a few gate loads plus local wire
	cGateOutFF = 6.0  // internal datapath net
	cBufBitFF  = 4.0  // storage bit internal node
)

// toggleEnergy returns the (internal, switching) energy in fJ of one
// transition of the given kind.
func toggleEnergy(lib stdcell.Lib, k ToggleKind) (internal, switching float64) {
	switch k {
	case ToggleReg:
		return lib.EIntDFFToggle, lib.ESwitch(cRegOutFF)
	case ToggleGate:
		return lib.EIntGateToggle, lib.ESwitch(cGateOutFF)
	case ToggleLink:
		// The driver's internal energy plus the long wire's load.
		return lib.EIntGateToggle, lib.ESwitch(lib.CLink())
	case ToggleBufBit:
		return 0.6 * lib.EIntDFFToggle, lib.ESwitch(cBufBitFF)
	default:
		panic(fmt.Sprintf("power: unknown toggle kind %d", int(k)))
	}
}

// Breakdown is the result of a power estimation at a given clock frequency.
type Breakdown struct {
	// Name labels the measured design/scenario combination.
	Name string `json:"name"`
	// FreqMHz is the clock frequency the estimate applies to.
	FreqMHz float64 `json:"freq_mhz"`
	// Cycles is the number of simulated clock cycles.
	Cycles uint64 `json:"cycles"`
	// StaticUW is the leakage power in µW.
	StaticUW float64 `json:"static_uw"`
	// InternalUW is the dynamic internal-cell power in µW (clock network
	// plus in-cell toggle energy).
	InternalUW float64 `json:"internal_uw"`
	// SwitchingUW is the dynamic switching (net charging) power in µW.
	SwitchingUW float64 `json:"switching_uw"`
}

// DynamicUW returns internal plus switching power in µW.
func (b Breakdown) DynamicUW() float64 { return b.InternalUW + b.SwitchingUW }

// TotalUW returns total power in µW.
func (b Breakdown) TotalUW() float64 { return b.StaticUW + b.DynamicUW() }

// DynamicPerMHz returns the frequency-normalized dynamic power in µW/MHz,
// the unit of the paper's Figure 10. Numerically it equals the average
// dynamic energy per cycle in pJ.
func (b Breakdown) DynamicPerMHz() float64 {
	if b.FreqMHz == 0 {
		return 0
	}
	return b.DynamicUW() / b.FreqMHz
}

// clockRun is one run of consecutive cycles drawing the same per-cycle
// clock energy. The meter accumulates clock energy run-length encoded —
// per-cycle ticks extend the current run, and a whole idle window of n
// cycles is one O(1) extension — so a batched TickGatedN is bit-identical
// to n individual TickGated calls by construction, the property the event
// kernel's fast-forward relies on.
type clockRun struct {
	fj float64 // per-cycle clock energy of the run
	n  uint64  // cycles in the run
}

// Meter accumulates activity for one design over a simulation.
type Meter struct {
	lib     stdcell.Lib
	design  *netlist.Design
	freqMHz float64

	cycles      uint64
	clockRuns   []clockRun // run-length encoded clock-network energy
	internalFJ  float64    // accumulated non-clock internal energy
	switchingFJ float64    // accumulated net switching energy
	toggles     [numToggleKinds]uint64

	fullClockFJ float64 // per-cycle clock energy when ungated
}

// NewMeter returns a meter for the design at the given clock frequency.
func NewMeter(d *netlist.Design, lib stdcell.Lib, freqMHz float64) *Meter {
	if freqMHz <= 0 {
		panic("power: non-positive frequency")
	}
	return &Meter{
		lib:         lib,
		design:      d,
		freqMHz:     freqMHz,
		fullClockFJ: d.ClockEnergyPerCycle(lib),
	}
}

// Tick records one clock cycle with the full (ungated) clock network active.
func (m *Meter) Tick() { m.TickN(1) }

// TickN records n clock cycles with the full clock network active, in
// O(1); bit-identical to n Tick calls.
func (m *Meter) TickN(n uint64) { m.addClock(m.fullClockFJ, n) }

// TickGated records one clock cycle in which only clockFJ femtojoules of
// clock energy were drawn (clock gating: idle lanes' registers are not
// clocked). clockFJ must not exceed the ungated per-cycle energy.
func (m *Meter) TickGated(clockFJ float64) { m.TickGatedN(clockFJ, 1) }

// TickGatedN records n gated clock cycles drawing clockFJ each, in O(1);
// bit-identical to n TickGated calls.
func (m *Meter) TickGatedN(clockFJ float64, n uint64) {
	if clockFJ < 0 || clockFJ > m.fullClockFJ*(1+1e-9) {
		panic(fmt.Sprintf("power: gated clock energy %v outside [0,%v]", clockFJ, m.fullClockFJ))
	}
	m.addClock(clockFJ, n)
}

// addClock extends the run-length encoded clock-energy record.
func (m *Meter) addClock(fj float64, n uint64) {
	if n == 0 {
		return
	}
	m.cycles += n
	if last := len(m.clockRuns) - 1; last >= 0 && m.clockRuns[last].fj == fj {
		m.clockRuns[last].n += n
		return
	}
	m.clockRuns = append(m.clockRuns, clockRun{fj: fj, n: n})
}

// clockFJ returns the total accumulated clock-network energy. Each run
// contributes one multiplication, so the total is independent of whether
// its cycles were recorded one at a time or as a batch.
func (m *Meter) clockFJ() float64 {
	var e float64
	for _, r := range m.clockRuns {
		e += r.fj * float64(r.n)
	}
	return e
}

// AddToggles records n transitions of the given kind.
func (m *Meter) AddToggles(k ToggleKind, n int) {
	if n < 0 {
		panic("power: negative toggle count")
	}
	if n == 0 {
		return
	}
	in, sw := toggleEnergy(m.lib, k)
	m.internalFJ += in * float64(n)
	m.switchingFJ += sw * float64(n)
	m.toggles[k] += uint64(n)
}

// Cycles returns the number of recorded clock cycles.
func (m *Meter) Cycles() uint64 { return m.cycles }

// Toggles returns the recorded transition count of the given kind.
func (m *Meter) Toggles(k ToggleKind) uint64 { return m.toggles[k] }

// FullClockEnergyPerCycle returns the design's ungated per-cycle clock
// energy in fJ, the budget available to clock gating.
func (m *Meter) FullClockEnergyPerCycle() float64 { return m.fullClockFJ }

// SimTimeUS returns the simulated time in microseconds.
func (m *Meter) SimTimeUS() float64 {
	return float64(m.cycles) / m.freqMHz
}

// Report converts accumulated energy into the three power buckets. It
// panics if no cycles were recorded (power is undefined for zero time).
func (m *Meter) Report(name string) Breakdown {
	if m.cycles == 0 {
		panic("power: Report with zero simulated cycles")
	}
	t := m.SimTimeUS() // µs; fJ/µs = nW, so divide by 1e3 for µW
	return Breakdown{
		Name:        name,
		FreqMHz:     m.freqMHz,
		Cycles:      m.cycles,
		StaticUW:    m.design.LeakageUW(m.lib),
		InternalUW:  (m.clockFJ() + m.internalFJ) / t / 1e3,
		SwitchingUW: m.switchingFJ / t / 1e3,
	}
}

// ClassUW returns the dynamic power in µW attributable to one toggle
// class — the "where does the energy go" attribution that complements the
// static/internal/switching split (e.g. link wires vs buffer writes).
func (m *Meter) ClassUW(k ToggleKind) float64 {
	if m.cycles == 0 {
		return 0
	}
	in, sw := toggleEnergy(m.lib, k)
	e := (in + sw) * float64(m.toggles[k])
	return e / m.SimTimeUS() / 1e3
}

// AttributionEntry is one class of the dynamic-power attribution.
type AttributionEntry struct {
	// Class names the activity class: "clock" or a ToggleKind name.
	Class string `json:"class"`
	// UW is the class's dynamic power in µW.
	UW float64 `json:"uw"`
}

// Attribution returns the dynamic power per toggle class plus the clock
// network, in µW, keyed by a stable name. The values sum to DynamicUW of
// the corresponding Report.
func (m *Meter) Attribution() map[string]float64 {
	entries := m.AttributionSorted()
	out := make(map[string]float64, len(entries))
	for _, e := range entries {
		out[e.Class] = e.UW
	}
	return out
}

// AttributionSorted returns the dynamic-power attribution as a slice in a
// deterministic order (sorted by class name), so JSON and CSV encoders
// that iterate it emit byte-identical output run to run. The values sum
// to DynamicUW of the corresponding Report.
func (m *Meter) AttributionSorted() []AttributionEntry {
	out := make([]AttributionEntry, 0, int(numToggleKinds)+1)
	var clock float64
	if m.cycles > 0 {
		clock = m.clockFJ() / m.SimTimeUS() / 1e3
	}
	out = append(out, AttributionEntry{Class: "clock", UW: clock})
	for k := ToggleKind(0); k < numToggleKinds; k++ {
		out = append(out, AttributionEntry{Class: k.String(), UW: m.ClassUW(k)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// Reset clears accumulated activity, keeping the design binding.
func (m *Meter) Reset() {
	m.cycles = 0
	m.clockRuns = m.clockRuns[:0]
	m.internalFJ = 0
	m.switchingFJ = 0
	m.toggles = [numToggleKinds]uint64{}
}

// ClockEnergyFor returns the per-cycle clock energy in fJ of a sub-block
// with the given register census; the gated router models use it to compute
// the active clock energy from their configuration.
func ClockEnergyFor(lib stdcell.Lib, dffs, bufBits int) float64 {
	if dffs < 0 || bufBits < 0 {
		panic("power: negative register census")
	}
	return float64(dffs)*lib.EClkDFF + float64(bufBits)*lib.EClkBufBit
}
