package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/stdcell"
)

var lib = stdcell.Default013()

func testDesign() *netlist.Design {
	d := &netlist.Design{Name: "test", CriticalPathFO4: 10}
	d.AddBlock(netlist.RegisterBank("regs", 100))
	return d
}

func TestMeterStaticOnly(t *testing.T) {
	d := testDesign()
	m := NewMeter(d, lib, 25)
	for i := 0; i < 1000; i++ {
		m.Tick()
	}
	b := m.Report("idle")
	if math.Abs(b.StaticUW-d.LeakageUW(lib)) > 1e-9 {
		t.Fatalf("static = %v, want %v", b.StaticUW, d.LeakageUW(lib))
	}
	// Ungated clocking of 100 DFFs: 100 * EClkDFF fJ per cycle
	// => µW/MHz = pJ/cycle.
	wantPerMHz := 100 * lib.EClkDFF / 1e3
	if math.Abs(b.DynamicPerMHz()-wantPerMHz) > 1e-9 {
		t.Fatalf("dynamic/MHz = %v, want %v", b.DynamicPerMHz(), wantPerMHz)
	}
	if b.SwitchingUW != 0 {
		t.Fatalf("switching with no toggles = %v", b.SwitchingUW)
	}
}

func TestDynamicScalesWithFrequency(t *testing.T) {
	d := testDesign()
	run := func(freq float64) Breakdown {
		m := NewMeter(d, lib, freq)
		for i := 0; i < 100; i++ {
			m.Tick()
			m.AddToggles(ToggleReg, 10)
		}
		return m.Report("x")
	}
	b25, b100 := run(25), run(100)
	if math.Abs(b100.DynamicUW()/b25.DynamicUW()-4) > 1e-9 {
		t.Fatalf("dynamic power should scale linearly with f: %v vs %v",
			b25.DynamicUW(), b100.DynamicUW())
	}
	// Static power is frequency independent.
	if math.Abs(b100.StaticUW-b25.StaticUW) > 1e-12 {
		t.Fatal("static power should not depend on frequency")
	}
	// µW/MHz is frequency invariant.
	if math.Abs(b100.DynamicPerMHz()-b25.DynamicPerMHz()) > 1e-9 {
		t.Fatal("µW/MHz should be frequency invariant")
	}
}

func TestToggleEnergySplit(t *testing.T) {
	d := testDesign()
	m := NewMeter(d, lib, 25)
	m.TickGated(0) // isolate toggle energy from clock energy
	m.AddToggles(ToggleLink, 100)
	b := m.Report("links")
	// Switching on a link: 100 transitions of CLink load over 1 cycle
	// at 25 MHz: E = 100 * ESwitch(CLink) fJ, t = 0.04 µs.
	wantSw := 100 * lib.ESwitch(lib.CLink()) / 0.04 / 1e3
	if math.Abs(b.SwitchingUW-wantSw) > 1e-6 {
		t.Fatalf("switching = %v µW, want %v", b.SwitchingUW, wantSw)
	}
	wantInt := 100 * lib.EIntGateToggle / 0.04 / 1e3
	if math.Abs(b.InternalUW-wantInt) > 1e-6 {
		t.Fatalf("internal = %v µW, want %v", b.InternalUW, wantInt)
	}
}

func TestGatingReducesInternal(t *testing.T) {
	d := testDesign()
	gated, ungated := NewMeter(d, lib, 25), NewMeter(d, lib, 25)
	for i := 0; i < 500; i++ {
		ungated.Tick()
		gated.TickGated(ungated.FullClockEnergyPerCycle() * 0.25)
	}
	bu, bg := ungated.Report("u"), gated.Report("g")
	if bg.InternalUW >= bu.InternalUW {
		t.Fatal("gating did not reduce internal power")
	}
	if math.Abs(bg.InternalUW/bu.InternalUW-0.25) > 1e-9 {
		t.Fatalf("gated ratio = %v, want 0.25", bg.InternalUW/bu.InternalUW)
	}
}

func TestTickGatedBounds(t *testing.T) {
	m := NewMeter(testDesign(), lib, 25)
	for _, bad := range []float64{-1, m.FullClockEnergyPerCycle() * 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TickGated(%v) did not panic", bad)
				}
			}()
			m.TickGated(bad)
		}()
	}
}

func TestMeterCounters(t *testing.T) {
	m := NewMeter(testDesign(), lib, 50)
	m.Tick()
	m.Tick()
	m.AddToggles(ToggleGate, 7)
	m.AddToggles(ToggleGate, 3)
	m.AddToggles(ToggleBufBit, 5)
	if m.Cycles() != 2 {
		t.Fatalf("Cycles = %d", m.Cycles())
	}
	if m.Toggles(ToggleGate) != 10 || m.Toggles(ToggleBufBit) != 5 {
		t.Fatalf("toggle counters wrong: %d, %d",
			m.Toggles(ToggleGate), m.Toggles(ToggleBufBit))
	}
	if math.Abs(m.SimTimeUS()-2.0/50) > 1e-12 {
		t.Fatalf("SimTimeUS = %v", m.SimTimeUS())
	}
	m.Reset()
	if m.Cycles() != 0 || m.Toggles(ToggleGate) != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestMeterPanics(t *testing.T) {
	if err := func() (err error) {
		defer func() {
			if recover() == nil {
				t.Error("Report with zero cycles did not panic")
			}
		}()
		NewMeter(testDesign(), lib, 25).Report("empty")
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative toggles did not panic")
			}
		}()
		m := NewMeter(testDesign(), lib, 25)
		m.AddToggles(ToggleReg, -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero frequency did not panic")
			}
		}()
		NewMeter(testDesign(), lib, 0)
	}()
}

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{StaticUW: 10, InternalUW: 20, SwitchingUW: 5, FreqMHz: 25}
	if b.DynamicUW() != 25 || b.TotalUW() != 35 {
		t.Fatalf("arithmetic wrong: dyn=%v tot=%v", b.DynamicUW(), b.TotalUW())
	}
	if b.DynamicPerMHz() != 1 {
		t.Fatalf("per MHz = %v", b.DynamicPerMHz())
	}
	if (Breakdown{}).DynamicPerMHz() != 0 {
		t.Fatal("zero-frequency breakdown should normalize to 0")
	}
}

func TestToggleKindString(t *testing.T) {
	names := map[ToggleKind]string{
		ToggleReg: "register", ToggleGate: "gate",
		ToggleLink: "link", ToggleBufBit: "buffer-bit",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if ToggleKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestClockEnergyFor(t *testing.T) {
	got := ClockEnergyFor(lib, 10, 100)
	want := 10*lib.EClkDFF + 100*lib.EClkBufBit
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ClockEnergyFor = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative census did not panic")
		}
	}()
	ClockEnergyFor(lib, -1, 0)
}

func TestEnergyAdditivityProperty(t *testing.T) {
	// Recording toggles in one call or split across calls is equivalent.
	f := func(n uint8, k uint8) bool {
		kind := ToggleKind(int(k) % int(numToggleKinds))
		a := NewMeter(testDesign(), lib, 25)
		b := NewMeter(testDesign(), lib, 25)
		a.Tick()
		b.Tick()
		a.AddToggles(kind, int(n))
		for i := 0; i < int(n); i++ {
			b.AddToggles(kind, 1)
		}
		ra, rb := a.Report("a"), b.Report("b")
		return math.Abs(ra.TotalUW()-rb.TotalUW()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAttribution(t *testing.T) {
	m := NewMeter(testDesign(), lib, 25)
	m.Tick()
	m.AddToggles(ToggleReg, 10)
	m.AddToggles(ToggleLink, 5)
	att := m.Attribution()
	if att["register"] <= 0 || att["link"] <= 0 || att["clock"] <= 0 {
		t.Fatalf("attribution incomplete: %v", att)
	}
	if att["gate"] != 0 || att["buffer-bit"] != 0 {
		t.Fatalf("phantom attribution: %v", att)
	}
	// The attribution sums to the dynamic power of the report.
	var sum float64
	for _, v := range att {
		sum += v
	}
	b := m.Report("x")
	if math.Abs(sum-b.DynamicUW()) > 1e-9 {
		t.Fatalf("attribution sums to %v, dynamic is %v", sum, b.DynamicUW())
	}
	// Before any cycle, attribution is all zeros, not a panic.
	fresh := NewMeter(testDesign(), lib, 25)
	for k, v := range fresh.Attribution() {
		if v != 0 {
			t.Fatalf("fresh meter attributes %v to %s", v, k)
		}
	}
	if fresh.ClassUW(ToggleReg) != 0 {
		t.Fatal("fresh ClassUW not zero")
	}
}

// TestBatchedTicksBitIdentical pins the contract the event kernel's
// fast-forward relies on: recording an idle window with one TickN /
// TickGatedN call produces bit-identical reports to recording the same
// cycles one at a time, for any interleaving of energy levels.
func TestBatchedTicksBitIdentical(t *testing.T) {
	d := testDesign()
	gatedFJ := d.ClockEnergyPerCycle(lib) * 0.25
	perCycle := NewMeter(d, lib, 25)
	batched := NewMeter(d, lib, 25)

	for i := 0; i < 700; i++ {
		perCycle.Tick()
	}
	batched.TickN(700)
	for i := 0; i < 300; i++ {
		perCycle.TickGated(gatedFJ)
	}
	batched.TickGatedN(gatedFJ, 300)
	for i := 0; i < 11; i++ {
		perCycle.TickGated(gatedFJ)
		batched.TickGated(gatedFJ)
	}

	a, b := perCycle.Report("a"), batched.Report("b")
	if a.Cycles != b.Cycles || a.InternalUW != b.InternalUW ||
		a.SwitchingUW != b.SwitchingUW || a.StaticUW != b.StaticUW {
		t.Fatalf("batched ticks diverge: per-cycle %+v batched %+v", a, b)
	}
	// Zero-length batches are no-ops.
	before := batched.Cycles()
	batched.TickN(0)
	batched.TickGatedN(gatedFJ, 0)
	if batched.Cycles() != before {
		t.Fatal("TickN(0) advanced the cycle count")
	}
}

// TestAttributionSortedDeterministic is the regression test for the
// attribution ordering contract: the slice form is sorted by class name,
// covers every toggle class plus the clock, and agrees with the map form,
// so any JSON/CSV encoder iterating it is deterministic by construction.
func TestAttributionSortedDeterministic(t *testing.T) {
	d := testDesign()
	m := NewMeter(d, lib, 25)
	for i := 0; i < 100; i++ {
		m.Tick()
		m.AddToggles(ToggleReg, 3)
		m.AddToggles(ToggleLink, 2)
	}
	entries := m.AttributionSorted()
	if want := int(numToggleKinds) + 1; len(entries) != want {
		t.Fatalf("attribution has %d entries, want %d", len(entries), want)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Class >= entries[i].Class {
			t.Fatalf("attribution not sorted: %q before %q",
				entries[i-1].Class, entries[i].Class)
		}
	}
	att := m.Attribution()
	var sum float64
	for _, e := range entries {
		if att[e.Class] != e.UW {
			t.Fatalf("map/slice attribution disagree on %q: %v vs %v",
				e.Class, att[e.Class], e.UW)
		}
		sum += e.UW
	}
	if b := m.Report("x"); math.Abs(sum-b.DynamicUW()) > 1e-9*b.DynamicUW() {
		t.Fatalf("attribution sums to %v, report says %v", sum, b.DynamicUW())
	}
	// Repeated calls return identical content (no map-iteration leakage).
	again := m.AttributionSorted()
	for i := range entries {
		if entries[i] != again[i] {
			t.Fatalf("attribution changed between calls: %+v vs %+v", entries[i], again[i])
		}
	}
}
