package stats

import "repro/internal/sim"

// Snapshot appends the series' dynamic state — the moment accumulators,
// the extremes and any retained samples — in the sim.Snapshotter byte
// format. The retention flag itself is construction-time configuration
// and is not serialized.
func (s *Series) Snapshot(buf []byte) []byte {
	buf = sim.AppendU64(buf, uint64(s.n))
	buf = sim.AppendF64(buf, s.sum)
	buf = sim.AppendF64(buf, s.sumSq)
	buf = sim.AppendF64(buf, s.min)
	buf = sim.AppendF64(buf, s.max)
	buf = sim.AppendU64(buf, uint64(len(s.samples)))
	for _, v := range s.samples {
		buf = sim.AppendF64(buf, v)
	}
	return buf
}

// Restore is the inverse of Snapshot; it returns the unread remainder.
func (s *Series) Restore(data []byte) ([]byte, error) {
	n, data, err := sim.ReadU64(data)
	if err != nil {
		return nil, err
	}
	s.n = int(n)
	if s.sum, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	if s.sumSq, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	if s.min, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	if s.max, data, err = sim.ReadF64(data); err != nil {
		return nil, err
	}
	var ns uint64
	if ns, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	s.samples = s.samples[:0]
	for i := uint64(0); i < ns; i++ {
		var v float64
		if v, data, err = sim.ReadF64(data); err != nil {
			return nil, err
		}
		s.samples = append(s.samples, v)
	}
	return data, nil
}

// Snapshot appends the timed series' samples in the sim.Snapshotter byte
// format.
func (t *TimedSeries) Snapshot(buf []byte) []byte {
	buf = sim.AppendU64(buf, uint64(len(t.samples)))
	for _, s := range t.samples {
		buf = sim.AppendU64(buf, s.Cycle)
		buf = sim.AppendF64(buf, s.Value)
	}
	return buf
}

// Restore is the inverse of Snapshot; it returns the unread remainder.
func (t *TimedSeries) Restore(data []byte) ([]byte, error) {
	n, data, err := sim.ReadU64(data)
	if err != nil {
		return nil, err
	}
	t.samples = t.samples[:0]
	for i := uint64(0); i < n; i++ {
		var s TimedSample
		if s.Cycle, data, err = sim.ReadU64(data); err != nil {
			return nil, err
		}
		if s.Value, data, err = sim.ReadF64(data); err != nil {
			return nil, err
		}
		t.samples = append(t.samples, s)
	}
	return data, nil
}
