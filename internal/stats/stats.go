// Package stats provides the small measurement utilities the benchmark
// harness uses: running means, min/max tracking, rate computation and
// fixed-bucket histograms for latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series accumulates scalar observations. By default only the running
// moments are kept; Retain switches on sample retention for consumers
// that need the full distribution afterwards (pooled percentiles across
// replicated runs).
type Series struct {
	n          int
	sum, sumSq float64
	min, max   float64
	retain     bool
	samples    []float64
}

// Retain makes every subsequent Add keep its observation, retrievable
// through Samples. Call it before the run; observations recorded
// earlier are not reconstructed.
func (s *Series) Retain() { s.retain = true }

// Samples returns the observations retained since Retain was called, in
// insertion order — the simulator's deterministic delivery order, so
// two identical runs produce identical slices. Nil without Retain.
func (s *Series) Samples() []float64 { return s.samples }

// Add records an observation.
func (s *Series) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	if s.retain {
		s.samples = append(s.samples, v)
	}
}

// N returns the number of observations.
func (s *Series) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Series) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min and Max return the extremes (0 with no observations).
func (s *Series) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Series) Max() float64 { return s.max }

// Variance returns the population variance.
func (s *Series) Variance() float64 {
	if s.n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 { return math.Sqrt(s.Variance()) }

// SampleVariance returns the Bessel-corrected (n-1) sample variance, the
// estimator confidence intervals are built on. It is 0 for n < 2 (with
// fewer than two observations the spread is undefined; 0 keeps every
// downstream JSON encoding finite) and exactly 0 for a zero-variance
// series, never negative: numerical noise is clamped like Variance.
func (s *Series) SampleVariance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.Variance() * float64(s.n) / float64(s.n-1)
}

// SampleStdDev returns the sample standard deviation (0 for n < 2).
func (s *Series) SampleStdDev() float64 { return math.Sqrt(s.SampleVariance()) }

// tCrit95 holds the two-sided 97.5% Student-t critical values for
// 1..30 degrees of freedom; beyond 30 the normal approximation (1.96)
// is within 2%.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half width of the 95% confidence interval of the
// mean: t(n-1) * s / sqrt(n) with the Student-t critical value for
// small samples (the replication counts of a sweep are typically
// single-digit) and the normal 1.96 beyond 30 degrees of freedom.
//
// Edge cases are defined, not accidental: n < 2 returns exactly 0 (a
// confidence interval needs at least two observations; 0 rather than
// NaN so aggregated results stay JSON-encodable), and a zero-variance
// series — R identical replications — returns exactly 0.
func (s *Series) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	t := 1.96
	if df := s.n - 1; df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return t * s.SampleStdDev() / math.Sqrt(float64(s.n))
}

// String summarizes the series.
func (s *Series) String() string {
	return fmt.Sprintf("n=%d mean=%.3f (±%.3f) min=%.3f max=%.3f",
		s.n, s.Mean(), s.CI95(), s.min, s.max)
}

// Hist is a histogram with caller-defined bucket upper bounds.
type Hist struct {
	bounds []float64
	counts []int
	over   int
	n      int
}

// NewHist returns a histogram with the given ascending bucket upper
// bounds; observations beyond the last bound land in an overflow bucket.
func NewHist(bounds ...float64) *Hist {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("stats: histogram bounds must ascend")
	}
	return &Hist{bounds: bounds, counts: make([]int, len(bounds))}
}

// Add records an observation.
func (h *Hist) Add(v float64) {
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.over++
}

// N returns the number of observations.
func (h *Hist) N() int { return h.n }

// Count returns the count in bucket i; i == len(bounds) is the overflow.
func (h *Hist) Count(i int) int {
	if i == len(h.counts) {
		return h.over
	}
	return h.counts[i]
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// the bucket boundaries, or +Inf if it falls in the overflow bucket.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	target := int(math.Ceil(q * float64(h.n)))
	acc := 0
	for i, c := range h.counts {
		acc += c
		if acc >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// String renders the histogram one bucket per line.
func (h *Hist) String() string {
	var b strings.Builder
	for i, bound := range h.bounds {
		fmt.Fprintf(&b, "<=%8.1f: %d\n", bound, h.counts[i])
	}
	fmt.Fprintf(&b, " overflow: %d\n", h.over)
	return b.String()
}

// Percentile returns the q-quantile (0 < q <= 1) of the ascending
// sorted observations by the nearest-rank method: the smallest element
// whose cumulative rank reaches ceil(q·n). NaN for an empty slice or an
// out-of-range q.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	return sorted[int(math.Ceil(q*float64(len(sorted))))-1]
}

// Rate converts a count over elapsed cycles at a clock into a Mbit/s
// figure given bits per event.
func Rate(events uint64, bitsPerEvent int, cycles uint64, freqMHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	seconds := float64(cycles) / (freqMHz * 1e6)
	return float64(events*uint64(bitsPerEvent)) / seconds / 1e6
}
