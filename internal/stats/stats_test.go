package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("series stats wrong: %s", s.String())
	}
	if math.Abs(s.Variance()-2) > 1e-9 {
		t.Fatalf("variance = %v, want 2", s.Variance())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI should be positive for n>1")
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty series should be all zeros")
	}
}

func TestSeriesMeanBoundsProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var s Series
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate float inputs
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHist(t *testing.T) {
	h := NewHist(10, 20, 30)
	for _, v := range []float64{5, 15, 15, 25, 99} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Count(0) != 1 || h.Count(1) != 2 || h.Count(2) != 1 || h.Count(3) != 1 {
		t.Fatalf("bucket counts wrong: %s", h.String())
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Fatalf("median bound = %v, want 20", q)
	}
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Fatalf("max quantile should hit overflow, got %v", q)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Fatal("invalid quantile arguments should be NaN")
	}
}

func TestHistPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no bounds": func() { NewHist() },
		"unsorted":  func() { NewHist(3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRate(t *testing.T) {
	// 400 words of 16 bits over 2000 cycles at 25 MHz: 80 Mbit/s — the
	// paper's per-stream figure.
	if got := Rate(400, 16, 2000, 25); math.Abs(got-80) > 1e-9 {
		t.Fatalf("rate = %v, want 80", got)
	}
	if Rate(1, 16, 0, 25) != 0 {
		t.Fatal("zero cycles should yield zero rate")
	}
}
