package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("series stats wrong: %s", s.String())
	}
	if math.Abs(s.Variance()-2) > 1e-9 {
		t.Fatalf("variance = %v, want 2", s.Variance())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI should be positive for n>1")
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty series should be all zeros")
	}
}

// TestCI95EdgeCases pins the defined behavior of the confidence
// interval: n < 2 is exactly 0 (not NaN, not garbage — aggregated
// results must stay JSON-encodable), a zero-variance series is exactly
// 0, and small samples use the Student-t critical value, not the
// normal approximation.
func TestCI95EdgeCases(t *testing.T) {
	var one Series
	one.Add(42)
	if got := one.CI95(); got != 0 {
		t.Fatalf("CI95 with n=1 = %v, want exactly 0", got)
	}
	if got := one.SampleVariance(); got != 0 {
		t.Fatalf("SampleVariance with n=1 = %v, want exactly 0", got)
	}

	var flat Series
	for i := 0; i < 8; i++ {
		flat.Add(3.25)
	}
	if got := flat.CI95(); got != 0 {
		t.Fatalf("CI95 of zero-variance series = %v, want exactly 0", got)
	}
	if math.IsNaN(flat.CI95()) || math.IsInf(flat.CI95(), 0) {
		t.Fatal("CI95 must always be finite")
	}

	// Two observations: df=1, t = 12.706, s = |a-b|/sqrt(2).
	var two Series
	two.Add(1)
	two.Add(3)
	want := 12.706 * math.Sqrt2 / math.Sqrt2 // s = sqrt(2), /sqrt(n)=sqrt(2)
	if got := two.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 with n=2 = %v, want %v (Student-t, sample variance)", got, want)
	}

	// Large n falls back to the normal 1.96.
	var big Series
	for i := 0; i < 100; i++ {
		big.Add(float64(i % 2))
	}
	sd := big.SampleStdDev()
	want = 1.96 * sd / 10
	if got := big.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 with n=100 = %v, want %v", got, want)
	}
}

func TestMSER(t *testing.T) {
	// A constant series needs no truncation.
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 7
	}
	if got := MSER(flat, MSERBatch); got != 0 {
		t.Fatalf("MSER of constant series = %d, want 0", got)
	}
	// An inflated head (startup transient) is truncated at a batch
	// boundary covering the transient.
	trans := make([]float64, 100)
	for i := range trans {
		if i < 20 {
			trans[i] = 100 - float64(i)*4 // decaying transient
		} else {
			trans[i] = 10 + float64(i%2) // noisy steady state
		}
	}
	got := MSER(trans, MSERBatch)
	if got < 15 || got > 50 {
		t.Fatalf("MSER truncation = %d, want the ~20-sample transient cut (and at most half)", got)
	}
	if got%MSERBatch != 0 {
		t.Fatalf("MSER truncation %d not a batch multiple", got)
	}
	// Fewer than two batches: nothing to compare.
	if got := MSER([]float64{1, 2, 3}, MSERBatch); got != 0 {
		t.Fatalf("MSER of tiny series = %d, want 0", got)
	}
	// Truncation never exceeds half the batches.
	if got := MSER(trans, MSERBatch); got > len(trans)/2 {
		t.Fatalf("MSER truncated %d of %d samples", got, len(trans))
	}
}

func TestTimedSeries(t *testing.T) {
	var ts TimedSeries
	for i := 0; i < 10; i++ {
		ts.Add(uint64(i*10), float64(i))
	}
	if ts.Len() != 10 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.TruncateCycle(35); got != 4 {
		t.Fatalf("TruncateCycle(35) = %d, want 4", got)
	}
	if got := ts.TruncateCycle(0); got != 0 {
		t.Fatalf("TruncateCycle(0) = %d, want 0", got)
	}
	if got := ts.TruncateCycle(1000); got != 10 {
		t.Fatalf("TruncateCycle past end = %d, want Len", got)
	}
	s := ts.SeriesFrom(4)
	if s.N() != 6 || s.Min() != 4 || s.Max() != 9 {
		t.Fatalf("SeriesFrom(4) = %s", s.String())
	}
	if got := ts.CycleAt(4); got != 40 {
		t.Fatalf("CycleAt(4) = %d, want 40", got)
	}
}

func TestSeriesMeanBoundsProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var s Series
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip degenerate float inputs
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHist(t *testing.T) {
	h := NewHist(10, 20, 30)
	for _, v := range []float64{5, 15, 15, 25, 99} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Count(0) != 1 || h.Count(1) != 2 || h.Count(2) != 1 || h.Count(3) != 1 {
		t.Fatalf("bucket counts wrong: %s", h.String())
	}
	if q := h.Quantile(0.5); q != 20 {
		t.Fatalf("median bound = %v, want 20", q)
	}
	if q := h.Quantile(1.0); !math.IsInf(q, 1) {
		t.Fatalf("max quantile should hit overflow, got %v", q)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Fatal("invalid quantile arguments should be NaN")
	}
}

func TestHistPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no bounds": func() { NewHist() },
		"unsorted":  func() { NewHist(3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRate(t *testing.T) {
	// 400 words of 16 bits over 2000 cycles at 25 MHz: 80 Mbit/s — the
	// paper's per-stream figure.
	if got := Rate(400, 16, 2000, 25); math.Abs(got-80) > 1e-9 {
		t.Fatalf("rate = %v, want 80", got)
	}
	if Rate(1, 16, 0, 25) != 0 {
		t.Fatal("zero cycles should yield zero rate")
	}
}
