package stats

import "sort"

// This file holds the warm-up (initial-transient) machinery of the
// replication subsystem: a cycle-stamped observation series and the
// MSER truncation rule that picks a steady-state measurement window, so
// confidence intervals over replicated open-loop runs are not biased by
// the empty-network startup transient.

// MSERBatch is the conventional batch size of the MSER-5 rule.
const MSERBatch = 5

// MSER applies the Marginal Standard Error Rule to the observation
// sequence: it returns the truncation index d (a multiple of batch)
// that minimizes the marginal standard error of the mean of the
// remaining batch means,
//
//	MSER(d) = Var(batchMeans[d:]) / (nb - d),
//
// the standard steady-state detection rule for discrete-event
// simulation output (MSER-5 with batch = 5). The search is restricted
// to truncating at most half the batches — the usual guard against the
// statistic's instability on short tails — and ties pick the smallest
// truncation. Fewer than two full batches return 0 (nothing to
// compare), and the result is deterministic for a given sequence.
func MSER(obs []float64, batch int) int {
	if batch < 1 {
		batch = 1
	}
	nb := len(obs) / batch
	if nb < 2 {
		return 0
	}
	means := make([]float64, nb)
	for i := range means {
		sum := 0.0
		for _, v := range obs[i*batch : (i+1)*batch] {
			sum += v
		}
		means[i] = sum / float64(batch)
	}
	best, bestD := 0.0, 0
	for d := 0; d <= nb/2; d++ {
		rest := means[d:]
		m := 0.0
		for _, v := range rest {
			m += v
		}
		m /= float64(len(rest))
		ss := 0.0
		for _, v := range rest {
			ss += (v - m) * (v - m)
		}
		stat := ss / float64(len(rest)*len(rest))
		if d == 0 || stat < best {
			best, bestD = stat, d
		}
	}
	return bestD * batch
}

// TimedSample is one observation stamped with the simulation cycle it
// was taken at.
type TimedSample struct {
	Cycle uint64
	Value float64
}

// TimedSeries accumulates cycle-stamped observations in simulation
// order. Cycles must be nondecreasing (the simulator appends samples as
// the clock advances); TruncateCycle relies on that ordering.
type TimedSeries struct {
	samples []TimedSample
}

// Add records an observation taken at the given cycle.
func (t *TimedSeries) Add(cycle uint64, v float64) {
	t.samples = append(t.samples, TimedSample{Cycle: cycle, Value: v})
}

// Len returns the number of observations.
func (t *TimedSeries) Len() int { return len(t.samples) }

// CycleAt returns the cycle stamp of observation i.
func (t *TimedSeries) CycleAt(i int) uint64 { return t.samples[i].Cycle }

// TruncateCycle returns the index of the first observation taken at or
// after the given cycle (Len() if none), so samples[idx:] is the
// post-warm-up measurement window.
func (t *TimedSeries) TruncateCycle(cycle uint64) int {
	return sort.Search(len(t.samples), func(i int) bool {
		return t.samples[i].Cycle >= cycle
	})
}

// SteadyStateIndex applies MSER with the given batch size to the
// observation values and returns the truncation index.
func (t *TimedSeries) SteadyStateIndex(batch int) int {
	vals := make([]float64, len(t.samples))
	for i, s := range t.samples {
		vals[i] = s.Value
	}
	return MSER(vals, batch)
}

// SeriesFrom summarizes the observations from index i on as a Series.
// The result retains its samples (the timed series already holds them
// all, so the projection keeps the distribution poolable at no extra
// asymptotic cost).
func (t *TimedSeries) SeriesFrom(i int) Series {
	var s Series
	s.Retain()
	for _, smp := range t.samples[i:] {
		s.Add(smp.Value)
	}
	return s
}
