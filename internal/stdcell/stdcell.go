// Package stdcell models a 0.13 µm-class standard-cell library: the areas,
// leakage, switching energies and delays that a synthesis flow such as the
// paper's (Synopsys + TSMC TCB013LVHP) would take from the vendor library.
//
// This package is the single calibration point of the reproduction. Every
// area, frequency and power number printed by the experiment harness derives
// from the structural netlists in internal/netlist priced with the constants
// below; no experiment fits its own constants. The values are representative
// of published 0.13 µm low-k libraries (NAND2 ≈ 5 µm², FO4 ≈ 65 ps at
// nominal VT, 1.2 V core supply) and were calibrated once against the
// paper's Table 4 total for the circuit-switched router.
package stdcell

import "fmt"

// Lib describes one technology/library corner.
//
// Energy convention: all energies are in femtojoules (fJ), areas in square
// micrometres (µm²), capacitances in femtofarads (fF), delays in picoseconds
// (ps) and power in microwatts (µW) unless noted otherwise.
type Lib struct {
	// Name identifies the library (process, threshold, corner).
	Name string

	// VDD is the core supply voltage in volts.
	VDD float64

	// FO4 is the fanout-of-4 inverter delay in picoseconds. Critical paths
	// are expressed in FO4 units and converted to nanoseconds with this.
	FO4 float64

	// NAND2Area is the area of the 2-input NAND reference cell in µm².
	// All combinational logic is sized in NAND2 gate-equivalents (GE).
	NAND2Area float64

	// DFFAreaGE is the area of a D flip-flop in gate equivalents.
	DFFAreaGE float64

	// Mux2AreaGE is the area of a 2:1 multiplexer in gate equivalents.
	Mux2AreaGE float64

	// BufBitAreaGE is the area of one register-file/FIFO storage bit in
	// gate equivalents, including its share of the write-enable fanout and
	// read multiplexing. Synthesized FIFO storage is denser in clock load
	// but larger in area than a bare DFF.
	BufBitAreaGE float64

	// LeakagePerMM2 is the static (leakage) power density in µW per mm².
	// TCB013LVHP is a low-voltage nominal-VT library, so leakage is modest.
	LeakagePerMM2 float64

	// EClkDFF is the internal energy in fJ drawn by one flip-flop's clock
	// pin each clock cycle, including its amortized share of the local
	// clock tree. This term produces the paper's "relative high offset in
	// the dynamic power consumption" (Section 7.3): it is paid every cycle
	// whether or not data moves, unless clock gating is applied.
	EClkDFF float64

	// EClkBufBit is the per-cycle clock energy of one FIFO storage bit.
	// Register-file style storage with bank write enables presents less
	// clock load per bit than a discrete flip-flop.
	EClkBufBit float64

	// EIntDFFToggle is the internal energy in fJ dissipated inside a
	// flip-flop when its output toggles (in addition to clock energy).
	EIntDFFToggle float64

	// EIntGateToggle is the average internal energy in fJ per output
	// toggle of a combinational cell on the datapath.
	EIntGateToggle float64

	// CGateIn is the average input capacitance of a gate in fF, used to
	// compute switching energy of nets from their fanout.
	CGateIn float64

	// CWirePerMM is wire capacitance in fF per millimetre of routed metal.
	CWirePerMM float64

	// LinkLengthMM is the assumed physical length of an inter-router link
	// in millimetres (tile pitch of the paper's multi-tile SoC).
	LinkLengthMM float64

	// SynthOverhead multiplies structural cell area to account for clock
	// tree insertion, wire buffering and placement utilisation. Applied
	// globally, never per block.
	SynthOverhead float64

	// RegOverheadFO4 is the sequential overhead (clock-to-Q + setup +
	// skew margin) of a register-to-register path, in FO4 units.
	RegOverheadFO4 float64
}

// Default013 returns the 0.13 µm-class library used throughout the
// reproduction, standing in for the paper's TSMC TCB013LVHP (low voltage,
// nominal VT, low-k) corner.
func Default013() Lib {
	return Lib{
		Name:           "generic-0.13um-lvnvt (TCB013LVHP-class)",
		VDD:            1.2,
		FO4:            65,   // ps; ~500·L(nm) rule of thumb gives 65 ps at 130 nm
		NAND2Area:      5.12, // µm²; 8 tracks × 0.4 µm pitch × 1.6 µm width
		DFFAreaGE:      6.0,
		Mux2AreaGE:     1.75,
		BufBitAreaGE:   4.5, // latch-based storage bit incl. enable share
		LeakagePerMM2:  800, // µW/mm²; nominal VT at 1.2 V, 25 °C
		EClkDFF:        25,  // fJ/cycle incl. local clock tree share
		EClkBufBit:     12,  // fJ/cycle; banked write enables shield the tree
		EIntDFFToggle:  28,  // fJ per output transition
		EIntGateToggle: 9,   // fJ per combinational output transition
		CGateIn:        2.0, // fF
		CWirePerMM:     200, // fF/mm
		LinkLengthMM:   1.5, // mm; tile pitch of a ~0.13 µm multi-tile SoC
		SynthOverhead:  1.55,
		RegOverheadFO4: 4.0,
	}
}

// HighVT013 returns a high-threshold (low-leakage) variant of the 0.13 µm
// library: an order of magnitude less leakage bought with ~25% slower
// gates — the corner a designer would pick for the mostly-idle ambient
// systems the paper targets. Dynamic energies are unchanged (same
// capacitances, same supply).
func HighVT013() Lib {
	l := Default013()
	l.Name = "generic-0.13um-hvt (low leakage)"
	l.LeakagePerMM2 = 80
	l.FO4 = 81 // ~1.25x slower gates
	return l
}

// GE converts a gate-equivalent count to area in µm² (before synthesis
// overhead).
func (l Lib) GE(n float64) float64 { return n * l.NAND2Area }

// ESwitch returns the switching energy in fJ of one transition on a net
// with load capacitance capFF (in fF): E = ½·C·V².
func (l Lib) ESwitch(capFF float64) float64 {
	return 0.5 * capFF * l.VDD * l.VDD
}

// CLink returns the capacitance in fF of one inter-router link wire.
func (l Lib) CLink() float64 { return l.CWirePerMM * l.LinkLengthMM }

// MaxFreqMHz converts a critical-path depth in FO4 units (combinational
// logic only) to a maximum clock frequency in MHz, adding the sequential
// overhead RegOverheadFO4.
func (l Lib) MaxFreqMHz(pathFO4 float64) float64 {
	if pathFO4 < 0 {
		panic("stdcell: negative path depth")
	}
	periodPS := (pathFO4 + l.RegOverheadFO4) * l.FO4
	return 1e6 / periodPS
}

// LeakageUW returns the static power in µW of a block of the given area
// (in µm², after synthesis overhead).
func (l Lib) LeakageUW(areaUM2 float64) float64 {
	return areaUM2 / 1e6 * l.LeakagePerMM2
}

// Validate checks that the library constants are physically sensible.
func (l Lib) Validate() error {
	switch {
	case l.VDD <= 0 || l.VDD > 5:
		return fmt.Errorf("stdcell: implausible VDD %v V", l.VDD)
	case l.FO4 <= 0:
		return fmt.Errorf("stdcell: non-positive FO4 delay")
	case l.NAND2Area <= 0:
		return fmt.Errorf("stdcell: non-positive NAND2 area")
	case l.SynthOverhead < 1:
		return fmt.Errorf("stdcell: synthesis overhead %v < 1", l.SynthOverhead)
	case l.LeakagePerMM2 < 0:
		return fmt.Errorf("stdcell: negative leakage density")
	case l.EClkDFF < 0 || l.EClkBufBit < 0 || l.EIntDFFToggle < 0 || l.EIntGateToggle < 0:
		return fmt.Errorf("stdcell: negative energy constant")
	case l.RegOverheadFO4 < 0:
		return fmt.Errorf("stdcell: negative register overhead")
	}
	return nil
}
