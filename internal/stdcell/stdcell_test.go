package stdcell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default013().Validate(); err != nil {
		t.Fatalf("default library invalid: %v", err)
	}
}

func TestGE(t *testing.T) {
	l := Default013()
	if got := l.GE(100); math.Abs(got-100*l.NAND2Area) > 1e-9 {
		t.Fatalf("GE(100) = %v", got)
	}
}

func TestESwitch(t *testing.T) {
	l := Default013()
	// ½·10 fF·(1.2 V)² = 7.2 fJ
	if got := l.ESwitch(10); math.Abs(got-7.2) > 1e-9 {
		t.Fatalf("ESwitch(10fF) = %v fJ, want 7.2", got)
	}
}

func TestCLink(t *testing.T) {
	l := Default013()
	want := l.CWirePerMM * l.LinkLengthMM
	if got := l.CLink(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CLink = %v, want %v", got, want)
	}
}

func TestMaxFreqMonotone(t *testing.T) {
	l := Default013()
	if l.MaxFreqMHz(10) <= l.MaxFreqMHz(30) {
		t.Fatal("frequency should decrease with path depth")
	}
	// A zero-logic path is bounded by the sequential overhead only.
	f0 := l.MaxFreqMHz(0)
	want := 1e6 / (l.RegOverheadFO4 * l.FO4)
	if math.Abs(f0-want) > 1e-6 {
		t.Fatalf("MaxFreqMHz(0) = %v, want %v", f0, want)
	}
}

func TestMaxFreqPlausibleRange(t *testing.T) {
	// The paper's routers run at 507-1075 MHz in this technology. A
	// 9-to-27-FO4 pipeline must bracket that range.
	l := Default013()
	if f := l.MaxFreqMHz(9); f < 900 || f > 1400 {
		t.Fatalf("9-FO4 pipeline = %.0f MHz, outside 0.13um plausibility", f)
	}
	if f := l.MaxFreqMHz(27); f < 400 || f > 700 {
		t.Fatalf("27-FO4 pipeline = %.0f MHz, outside 0.13um plausibility", f)
	}
}

func TestMaxFreqPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative path")
		}
	}()
	Default013().MaxFreqMHz(-1)
}

func TestLeakage(t *testing.T) {
	l := Default013()
	// 0.05 mm² of a low-VT-free library leaks tens of µW.
	got := l.LeakageUW(50_000)
	if got < 10 || got > 100 {
		t.Fatalf("leakage of 0.05 mm² = %v µW, implausible", got)
	}
}

func TestValidateRejectsBrokenLibs(t *testing.T) {
	base := Default013()
	mutations := map[string]func(*Lib){
		"vdd zero":      func(l *Lib) { l.VDD = 0 },
		"vdd huge":      func(l *Lib) { l.VDD = 9 },
		"fo4 zero":      func(l *Lib) { l.FO4 = 0 },
		"nand2 zero":    func(l *Lib) { l.NAND2Area = 0 },
		"overhead <1":   func(l *Lib) { l.SynthOverhead = 0.5 },
		"neg leakage":   func(l *Lib) { l.LeakagePerMM2 = -1 },
		"neg clk":       func(l *Lib) { l.EClkDFF = -1 },
		"neg reg ovh":   func(l *Lib) { l.RegOverheadFO4 = -1 },
		"neg gate tggl": func(l *Lib) { l.EIntGateToggle = -1 },
	}
	for name, mut := range mutations {
		l := base
		mut(&l)
		if l.Validate() == nil {
			t.Errorf("%s: Validate accepted broken library", name)
		}
	}
}

func TestESwitchProperties(t *testing.T) {
	l := Default013()
	f := func(c uint16) bool {
		e := l.ESwitch(float64(c))
		// Energy is non-negative and linear in capacitance.
		return e >= 0 && math.Abs(l.ESwitch(2*float64(c))-2*e) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHighVTCorner(t *testing.T) {
	std, hvt := Default013(), HighVT013()
	if err := hvt.Validate(); err != nil {
		t.Fatal(err)
	}
	if hvt.LeakagePerMM2 >= std.LeakagePerMM2/5 {
		t.Fatal("HVT corner should cut leakage by an order of magnitude")
	}
	if hvt.MaxFreqMHz(10) >= std.MaxFreqMHz(10) {
		t.Fatal("HVT gates must be slower")
	}
	// Dynamic energy constants are shared (same C, same VDD).
	if hvt.ESwitch(10) != std.ESwitch(10) || hvt.EClkDFF != std.EClkDFF {
		t.Fatal("HVT corner should not change dynamic energies")
	}
}
