package pattern

import (
	"testing"

	"repro/internal/sim"
)

// runSource drives one source for cycles under the kernel, recording the
// emission cycle of every accepted word. refuse makes Emit refuse its
// first n offers, exercising the backpressure retry path.
func runSource(t *testing.T, k sim.Kernel, inj Injection, limit uint64, cycles int, refuse int) []uint64 {
	t.Helper()
	w := sim.NewWorld(sim.WithKernel(k))
	var emitted []uint64
	src := NewSource(inj, 42, limit, nil)
	src.Emit = func() bool {
		if refuse > 0 {
			refuse--
			return false
		}
		emitted = append(emitted, w.Cycle())
		return true
	}
	w.Add(src)
	w.Run(cycles)
	return emitted
}

func TestSourceKernelEquivalence(t *testing.T) {
	for _, inj := range []Injection{
		{Proc: CBR, Rate: 0.125},
		{Proc: Bernoulli, Rate: 0.03},
		{Proc: Poisson, Rate: 0.05},
		{Proc: OnOff, Rate: 0.08, Burstiness: 6},
	} {
		naive := runSource(t, sim.KernelNaive, inj, 0, 4000, 0)
		gated := runSource(t, sim.KernelGated, inj, 0, 4000, 0)
		event := runSource(t, sim.KernelEvent, inj, 0, 4000, 0)
		if len(naive) == 0 {
			t.Fatalf("%v: no emissions", inj)
		}
		if !equalU64(naive, gated) || !equalU64(naive, event) {
			t.Errorf("%v: emission cycles differ across kernels\nnaive %v\ngated %v\nevent %v",
				inj, head(naive), head(gated), head(event))
		}
	}
}

func TestSourceBackpressureRetries(t *testing.T) {
	// The first three offers are refused; the word must be delivered on
	// the retry cycles immediately after, identically under all kernels.
	inj := Injection{Proc: CBR, Rate: 0.01}
	naive := runSource(t, sim.KernelNaive, inj, 0, 1000, 3)
	event := runSource(t, sim.KernelEvent, inj, 0, 1000, 3)
	if !equalU64(naive, event) {
		t.Fatalf("backpressure cycles differ: naive %v event %v", naive, event)
	}
	// First arrival at cycle 100, refused for 3 cycles, accepted at 103.
	if naive[0] != 103 {
		t.Errorf("first accepted at %d, want 103", naive[0])
	}
}

func TestSourceRetiresAtLimit(t *testing.T) {
	w := sim.NewWorld(sim.WithKernel(sim.KernelEvent))
	src := NewSource(Injection{Proc: CBR, Rate: 0.1}, 1, 5, nil)
	src.Emit = func() bool { return true }
	w.Add(src)
	w.Run(100000)
	if src.Sent() != 5 || !src.Retired() {
		t.Fatalf("sent %d retired %v, want 5/true", src.Sent(), src.Retired())
	}
	// A retired source is permanently quiescent with no pending event,
	// so the world fast-forwards the drained tail in one window.
	if ff, cyc := w.FastForwards(); ff == 0 || cyc < 90000 {
		t.Errorf("fast-forward windows %d cycles %d; retired source blocked fast-forward", ff, cyc)
	}
}

func TestSourceFastForwardsBetweenArrivals(t *testing.T) {
	w := sim.NewWorld(sim.WithKernel(sim.KernelEvent))
	src := NewSource(Injection{Proc: CBR, Rate: 0.001}, 1, 0, nil)
	n := 0
	src.Emit = func() bool { n++; return true }
	w.Add(src)
	w.Run(50000)
	if n < 48 || n > 50 {
		t.Fatalf("emitted %d words, want ~50", n)
	}
	if _, cyc := w.FastForwards(); float64(cyc) < 0.9*50000 {
		t.Errorf("only %d of 50000 cycles fast-forwarded", cyc)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func head(s []uint64) []uint64 {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}
