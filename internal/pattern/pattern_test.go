package pattern

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
)

func TestParseSpatialRoundTrip(t *testing.T) {
	for _, name := range Names() {
		sp, err := ParseSpatial(name)
		if err != nil {
			t.Fatalf("ParseSpatial(%q): %v", name, err)
		}
		if sp.String() != name {
			t.Errorf("round trip %q -> %q", name, sp.String())
		}
	}
	sp, err := ParseSpatial("hotspot:0.7")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != Hotspot || sp.Alpha != 0.7 {
		t.Fatalf("hotspot:0.7 parsed as %+v", sp)
	}
	if sp.String() != "hotspot:0.7" {
		t.Errorf("hotspot round trip: %q", sp.String())
	}
	for _, bad := range []string{"", "nope", "hotspot:0", "hotspot:1.5", "uniform:3"} {
		if _, err := ParseSpatial(bad); err == nil {
			t.Errorf("ParseSpatial(%q) accepted", bad)
		}
	}
}

func TestDeterministicPatterns(t *testing.T) {
	const w, h = 4, 4
	// Transpose: (x,y) -> (y,x).
	sp := Spatial{Kind: Transpose}
	if d := sp.fixedDest(1, w, h); d != 4 { // (1,0) -> (0,1)
		t.Errorf("transpose(1) = %d, want 4", d)
	}
	if d := sp.fixedDest(5, w, h); d != -1 { // (1,1) is a fixed point
		t.Errorf("transpose diagonal = %d, want -1", d)
	}
	// Bit complement: i -> 15-i.
	sp = Spatial{Kind: BitComplement}
	for i := 0; i < w*h; i++ {
		if d := sp.fixedDest(i, w, h); d != w*h-1-i {
			t.Errorf("bitcomp(%d) = %d, want %d", i, d, w*h-1-i)
		}
	}
	// Bit reverse over 4 bits: 0b0001 -> 0b1000.
	sp = Spatial{Kind: BitReverse}
	if d := sp.fixedDest(1, w, h); d != 8 {
		t.Errorf("bitrev(1) = %d, want 8", d)
	}
	if d := sp.fixedDest(0b0011, w, h); d != 0b1100 {
		t.Errorf("bitrev(3) = %d, want 12", d)
	}
}

func TestPermutationIsBijection(t *testing.T) {
	const n = 64
	p := permTable(n, 42)
	seen := map[int]bool{}
	for _, d := range p {
		if d < 0 || d >= n || seen[d] {
			t.Fatalf("permTable not a bijection: %v", p)
		}
		seen[d] = true
	}
	if !reflect.DeepEqual(permTable(n, 42), p) {
		t.Error("permTable not deterministic")
	}
	if reflect.DeepEqual(permTable(n, 43), p) {
		t.Error("permTable ignores the seed")
	}
}

func TestFlowsDeterministicAndSeedSensitive(t *testing.T) {
	sp := Spatial{Kind: Uniform}
	a := sp.Flows(8, 8, 7)
	b := sp.Flows(8, 8, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Flows not deterministic for a fixed seed")
	}
	c := sp.Flows(8, 8, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("Flows ignores the seed")
	}
	for _, f := range a {
		if f.Src == f.Dst {
			t.Fatalf("self flow %+v", f)
		}
	}
	if len(a) != 64 {
		t.Fatalf("uniform flows: got %d, want 64", len(a))
	}
}

func TestUniformDestinationCoverage(t *testing.T) {
	// Many draws from one source must cover all other nodes roughly
	// uniformly: every destination hit, none more than twice the mean.
	const w, h, draws = 4, 4, 16000
	sp := Spatial{Kind: Uniform}
	rng := bitvec.NewXorShift64(99)
	counts := make([]int, w*h)
	for i := 0; i < draws; i++ {
		counts[sp.Draw(rng, 5, w, h)]++
	}
	if counts[5] != 0 {
		t.Fatalf("uniform drew self %d times", counts[5])
	}
	mean := float64(draws) / float64(w*h-1)
	for d, c := range counts {
		if d == 5 {
			continue
		}
		if float64(c) < 0.5*mean || float64(c) > 2*mean {
			t.Errorf("destination %d drawn %d times, mean %.0f", d, c, mean)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	const w, h, draws = 4, 4, 40000
	sp := Spatial{Kind: Hotspot, Alpha: 0.6}
	hot := HotspotNode(w, h)
	rng := bitvec.NewXorShift64(123)
	hits := 0
	for i := 0; i < draws; i++ {
		if sp.Draw(rng, 0, w, h) == hot {
			hits++
		}
	}
	// Expected fraction: alpha plus the uniform share of the hotspot.
	want := 0.6 + 0.4/float64(w*h-1)
	got := float64(hits) / draws
	if math.Abs(got-want) > 0.02 {
		t.Errorf("hotspot fraction %.3f, want %.3f +- 0.02", got, want)
	}
}

func TestNeighbourDrawsAdjacent(t *testing.T) {
	const w, h = 5, 3
	sp := Spatial{Kind: Neighbour}
	rng := bitvec.NewXorShift64(5)
	for src := 0; src < w*h; src++ {
		for i := 0; i < 50; i++ {
			d := sp.Draw(rng, src, w, h)
			dx := abs(d%w - src%w)
			dy := abs(d/w - src/w)
			if dx+dy != 1 {
				t.Fatalf("neighbour draw %d from %d is not adjacent", d, src)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestProbWeightsSumToOne(t *testing.T) {
	const w, h = 4, 4
	for _, sp := range []Spatial{
		{Kind: Uniform}, {Kind: Hotspot, Alpha: 0.3}, {Kind: Neighbour},
		{Kind: Transpose}, {Kind: BitComplement}, {Kind: BitReverse},
		{Kind: Permutation},
	} {
		for src := 0; src < w*h; src++ {
			ws := sp.ProbWeights(src, w, h, 3)
			sum := 0.0
			for d, p := range ws {
				if d == src {
					t.Fatalf("%v: self weight at %d", sp, src)
				}
				sum += p
			}
			if len(ws) == 0 {
				continue // fixed point of a deterministic pattern
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%v src %d: weights sum to %v", sp, src, sum)
			}
		}
	}
}

func TestPortFlowsConservation(t *testing.T) {
	// Total weight through all routers' tile-exit ports must equal the
	// total injected weight: every word is injected once and ejected
	// once somewhere.
	const w, h = 4, 4
	for _, sp := range []Spatial{{Kind: Uniform}, {Kind: Hotspot}, {Kind: Transpose}} {
		injected, ejected := 0.0, 0.0
		for obs := 0; obs < w*h; obs++ {
			for _, f := range PortFlows(sp, w, h, obs, 1) {
				if f.In == core.Tile {
					injected += f.Weight
				}
				if f.Out == core.Tile {
					ejected += f.Weight
				}
			}
		}
		want := 0.0
		for src := 0; src < w*h; src++ {
			for _, p := range sp.ProbWeights(src, w, h, 1) {
				want += p
			}
		}
		if math.Abs(injected-want) > 1e-9 || math.Abs(ejected-want) > 1e-9 {
			t.Errorf("%v: injected %.6f ejected %.6f want %.6f", sp, injected, ejected, want)
		}
	}
}

func TestPortFlowsHotspotConcentratesAtCentre(t *testing.T) {
	const w, h = 4, 4
	hot := HotspotNode(w, h)
	sumAt := func(obs int) float64 {
		total := 0.0
		for _, f := range PortFlows(Spatial{Kind: Hotspot, Alpha: 0.8}, w, h, obs, 1) {
			if f.Out == core.Tile {
				total += f.Weight
			}
		}
		return total
	}
	if sumAt(hot) < 5*sumAt(0) {
		t.Errorf("hotspot tile delivery at centre %.3f not >> corner %.3f", sumAt(hot), sumAt(0))
	}
}
