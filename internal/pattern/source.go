package pattern

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// Source is a traffic generator as a first-class quiescent component:
// it offers one word to its Emit callback at every arrival of its
// temporal process, retires after an optional word budget, and — unlike
// the every-cycle sim.Func drivers it replaces — tells the kernel when
// its next arrival is due, so a world of sparse sources fast-forwards
// between words under sim.KernelEvent.
//
// Kernel equivalence holds by construction:
//
//   - The sampler draws once per arrival, never per cycle, so the
//     random sequence is the same whether or not idle cycles were
//     skipped.
//   - The local cycle counter advances in Commit, IdleTick and
//     IdleWindow alike, so it always equals the world clock.
//   - Quiescent is true exactly on the cycles Eval would do nothing:
//     no arrival due, nothing backlogged, or retired. A refused Emit
//     (backpressure) keeps the source active until the word is
//     accepted; arrivals falling due meanwhile accumulate as credits.
//   - NextEvent reports the next arrival, so the event kernel never
//     fast-forwards past it (sim.Timed).
type Source struct {
	// Emit offers one word downstream; it returns false when the sink
	// cannot accept it this cycle, and the source retries next cycle.
	Emit func() bool

	// Tracer, when non-nil, receives a domain-scope inject event for
	// every accepted word and a flow-teardown event when the word budget
	// retires the source, on the Track name. Injection happens on the
	// same cycles under every kernel, so the stream is kernel-invariant;
	// Emit may run inside the active kernel's sharded Eval pass, so the
	// tracer must accept concurrent calls.
	Tracer obs.Tracer
	// Track names this source's trace track (e.g. "flow3.src").
	Track string

	s       *Sampler
	limit   uint64 // emitted-word budget; 0 = unlimited
	sent    uint64
	cycle   uint64 // local clock, always equal to the world clock
	next    uint64 // absolute cycle of the next scheduled arrival
	credits uint64 // arrivals due but not yet accepted downstream
	retired bool
}

// NewSource returns a source driven by the injection process, seeded
// per flow. limit caps the emitted words (0 = unlimited); once spent the
// source retires and stays quiescent forever. Emit may be nil at
// construction and assigned before the first cycle.
func NewSource(inj Injection, seed uint64, limit uint64, emit func() bool) *Source {
	src := &Source{Emit: emit, s: NewSampler(inj, seed), limit: limit}
	src.next = src.s.NextGap()
	return src
}

// Sent returns the number of words accepted downstream.
func (s *Source) Sent() uint64 { return s.sent }

// Cycle returns the source's local clock, equal to the world clock; an
// Emit callback may use it to stamp the word being offered.
func (s *Source) Cycle() uint64 { return s.cycle }

// Retired reports whether the word budget is spent.
func (s *Source) Retired() bool { return s.retired }

// accrue collects arrivals that have fallen due, stopping at the word
// budget so a retired source never draws from its sampler again.
func (s *Source) accrue() {
	for !s.retired && s.cycle >= s.next {
		s.credits++
		if s.limit > 0 && s.sent+s.credits >= s.limit {
			// The final word is now pending; no further arrivals.
			s.retired = true
			if s.Tracer != nil {
				s.Tracer.Emit(obs.Event{Cycle: s.cycle, Track: s.Track,
					Kind: obs.KindFlowTeardown, Value: int64(s.limit)})
			}
			return
		}
		s.next += s.s.NextGap()
	}
}

// Eval implements sim.Clocked.
func (s *Source) Eval() {
	s.accrue()
	if s.credits > 0 && s.Emit() {
		s.credits--
		s.sent++
		if s.Tracer != nil {
			s.Tracer.Emit(obs.Event{Cycle: s.cycle, Track: s.Track,
				Kind: obs.KindInject, Value: int64(s.sent)})
		}
	}
}

// Commit implements sim.Clocked.
func (s *Source) Commit() { s.cycle++ }

// Quiescent implements sim.Quiescer: nothing due, nothing backlogged.
func (s *Source) Quiescent() bool {
	if s.credits > 0 {
		return false
	}
	if s.retired {
		return true
	}
	return s.cycle < s.next
}

// IdleTick implements sim.IdleTicker: the local clock tracks skipped
// cycles.
func (s *Source) IdleTick() { s.cycle++ }

// IdleWindow implements sim.IdleWindower: integer bookkeeping only, so
// one call is exactly n IdleTicks.
func (s *Source) IdleWindow(n uint64) { s.cycle += n }

// NextEvent implements sim.Timed: the next scheduled arrival ends the
// source's quiescence with no external stimulus, so the event kernel
// must not fast-forward past it.
func (s *Source) NextEvent() (uint64, bool) {
	if s.retired {
		return 0, false
	}
	return s.next, true
}

var (
	_ sim.Clocked      = (*Source)(nil)
	_ sim.Quiescer     = (*Source)(nil)
	_ sim.IdleWindower = (*Source)(nil)
	_ sim.Timed        = (*Source)(nil)
)
