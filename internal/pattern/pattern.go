// Package pattern generates synthetic NoC traffic: spatial patterns
// (who talks to whom on a W×H mesh) composed with stochastic temporal
// injection processes (when each word is offered). Together they replace
// hand-mapped application workloads with the standard evaluation
// vocabulary of the NoC literature — uniform-random, transpose,
// bit-complement, bit-reverse, hotspot, nearest-neighbour and seeded
// permutations, each drivable by constant-rate, Bernoulli, Poisson or
// bursty on-off injection.
//
// The package is deliberately kernel-friendly: every generator is
// deterministic given a seed, every temporal process samples its next
// arrival directly (no per-cycle coin flips), and the Source component
// implements sim.Timed — so a sparse pattern fast-forwards under the
// event kernel instead of polling every cycle. See Source for the
// contract.
package pattern

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/sweep"
)

// SpatialKind enumerates the built-in spatial patterns.
type SpatialKind int

const (
	// Uniform sends each word to a destination drawn uniformly from all
	// other nodes.
	Uniform SpatialKind = iota
	// Transpose sends (x,y) to (y,x) (folded modulo the mesh dimensions
	// when the mesh is not square). Diagonal nodes generate no traffic.
	Transpose
	// BitComplement sends node i to node N-1-i — for power-of-two N the
	// bitwise complement of the node index.
	BitComplement
	// BitReverse sends node i to the bit-reversal of i within the index
	// width (folded modulo N for non-power-of-two meshes).
	BitReverse
	// Hotspot sends a fraction Alpha of the traffic to one hotspot node
	// (the mesh centre) and the rest uniformly. The hotspot itself sends
	// uniformly.
	Hotspot
	// Neighbour sends each word to one of the node's 2–4 mesh
	// neighbours, drawn uniformly.
	Neighbour
	// Permutation fixes a random node permutation derived from the seed
	// and sends every word of node i to perm(i). Fixed points generate
	// no traffic.
	Permutation
)

// DefaultHotspotAlpha is the hotspot traffic fraction when unspecified.
const DefaultHotspotAlpha = 0.5

// Spatial is a parsed spatial pattern: a kind plus its parameters.
type Spatial struct {
	// Kind selects the pattern.
	Kind SpatialKind
	// Alpha is the hotspot traffic fraction in (0,1]; only meaningful
	// for Hotspot.
	Alpha float64
}

// Names returns the parseable spatial pattern names, in a fixed order.
func Names() []string {
	return []string{"uniform", "transpose", "bitcomp", "bitrev", "hotspot", "neighbour", "perm"}
}

// ParseSpatial resolves a spatial pattern name. Hotspot takes an
// optional traffic fraction as "hotspot:0.7" (default 0.5).
func ParseSpatial(s string) (Spatial, error) {
	name, arg, hasArg := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	sp := Spatial{}
	switch name {
	case "uniform", "random":
		sp.Kind = Uniform
	case "transpose":
		sp.Kind = Transpose
	case "bitcomp", "bit-complement", "complement":
		sp.Kind = BitComplement
	case "bitrev", "bit-reverse", "reverse":
		sp.Kind = BitReverse
	case "hotspot":
		sp.Kind = Hotspot
		sp.Alpha = DefaultHotspotAlpha
	case "neighbour", "neighbor", "nearest-neighbour":
		sp.Kind = Neighbour
	case "perm", "permutation":
		sp.Kind = Permutation
	default:
		return Spatial{}, fmt.Errorf("pattern: unknown spatial pattern %q (have %s)",
			s, strings.Join(Names(), ", "))
	}
	if hasArg {
		if sp.Kind != Hotspot {
			return Spatial{}, fmt.Errorf("pattern: %s takes no parameter (got %q)", name, arg)
		}
		a, err := strconv.ParseFloat(arg, 64)
		if err != nil || a <= 0 || a > 1 {
			return Spatial{}, fmt.Errorf("pattern: hotspot fraction %q out of (0,1]", arg)
		}
		sp.Alpha = a
	}
	return sp, nil
}

// String renders the pattern parseably.
func (sp Spatial) String() string {
	switch sp.Kind {
	case Uniform:
		return "uniform"
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bitcomp"
	case BitReverse:
		return "bitrev"
	case Hotspot:
		if sp.Alpha != 0 && sp.Alpha != DefaultHotspotAlpha {
			return "hotspot:" + strconv.FormatFloat(sp.Alpha, 'g', -1, 64)
		}
		return "hotspot"
	case Neighbour:
		return "neighbour"
	case Permutation:
		return "perm"
	default:
		return fmt.Sprintf("spatial(%d)", int(sp.Kind))
	}
}

// alpha returns the effective hotspot fraction.
func (sp Spatial) alpha() float64 {
	if sp.Alpha == 0 {
		return DefaultHotspotAlpha
	}
	return sp.Alpha
}

// HotspotNode returns the pattern's hotspot node index on a W×H mesh:
// the mesh centre. It is also the natural router to observe in
// single-router projections of any pattern.
func HotspotNode(w, h int) int { return (h/2)*w + w/2 }

// fixedDest returns the single destination of a deterministic pattern
// for the given source node, or -1 when the node generates no traffic
// (a fixed point). Permutation requires the seed-derived table, so it is
// resolved by Flows/ProbWeights instead.
func (sp Spatial) fixedDest(src, w, h int) int {
	n := w * h
	switch sp.Kind {
	case Transpose:
		x, y := src%w, src/w
		d := (x%h)*w + y%w
		if d == src {
			return -1
		}
		return d
	case BitComplement:
		d := n - 1 - src
		if d == src {
			return -1
		}
		return d
	case BitReverse:
		k := bits.Len(uint(n - 1))
		d := int(bits.Reverse64(uint64(src)) >> (64 - k))
		d %= n
		if d == src {
			return -1
		}
		return d
	}
	return -1
}

// permTable returns the seed-derived node permutation (Fisher–Yates over
// a SplitMix-seeded xorshift stream).
func permTable(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	rng := bitvec.NewXorShift64(sweep.Mix64(seed ^ 0x5045524D5554)) // "PERMUT"
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// neighbours returns the mesh neighbours of a node in a fixed
// (north, east, south, west) order.
func neighbours(src, w, h int) []int {
	x, y := src%w, src/w
	var out []int
	if y > 0 {
		out = append(out, (y-1)*w+x)
	}
	if x+1 < w {
		out = append(out, y*w+x+1)
	}
	if y+1 < h {
		out = append(out, (y+1)*w+x)
	}
	if x > 0 {
		out = append(out, y*w+x-1)
	}
	return out
}

// Flow is one source→destination traffic relation on the mesh, in node
// indices (row-major, y*w+x).
type Flow struct {
	Src, Dst int
}

// Flows materializes the pattern into one flow per source node. For
// deterministic patterns the destinations are the pattern's fixed
// targets; for stochastic patterns (uniform, hotspot, neighbour) each
// source draws its destination once from a seed-derived stream — the
// natural reading for a circuit-switched fabric, where a flow is a
// circuit held for the whole run. Nodes whose pattern maps them to
// themselves contribute no flow.
func (sp Spatial) Flows(w, h int, seed uint64) []Flow {
	n := w * h
	var perm []int
	if sp.Kind == Permutation {
		perm = permTable(n, seed)
	}
	flows := make([]Flow, 0, n)
	for src := 0; src < n; src++ {
		var dst int
		switch sp.Kind {
		case Permutation:
			dst = perm[src]
		case Uniform, Hotspot, Neighbour:
			rng := bitvec.NewXorShift64(sweep.Mix64(seed + uint64(src)*0x9E3779B97F4A7C15 + 1))
			dst = sp.Draw(rng, src, w, h)
		default:
			dst = sp.fixedDest(src, w, h)
		}
		if dst == src || dst < 0 {
			continue
		}
		flows = append(flows, Flow{Src: src, Dst: dst})
	}
	return flows
}

// Draw samples one destination for a word injected at src, using the
// given random stream. Deterministic patterns return their fixed target
// (or src itself for a fixed point, meaning "no traffic").
func (sp Spatial) Draw(rng *bitvec.XorShift64, src, w, h int) int {
	n := w * h
	switch sp.Kind {
	case Uniform:
		return drawOther(rng, src, n)
	case Hotspot:
		hot := HotspotNode(w, h)
		if src != hot && rng.Bool(sp.alpha()) {
			return hot
		}
		return drawOther(rng, src, n)
	case Neighbour:
		nb := neighbours(src, w, h)
		return nb[rng.Intn(len(nb))]
	case Permutation:
		// The per-word draw of a permutation is its fixed table entry;
		// callers that need it should use Flows. Fall back to uniform so
		// a misuse is at least well defined.
		return drawOther(rng, src, n)
	default:
		d := sp.fixedDest(src, w, h)
		if d < 0 {
			return src
		}
		return d
	}
}

// drawOther draws uniformly from [0,n) excluding self.
func drawOther(rng *bitvec.XorShift64, self, n int) int {
	d := rng.Intn(n - 1)
	if d >= self {
		d++
	}
	return d
}

// ProbWeights returns the destination probability distribution of words
// injected at src — the analytic counterpart of Draw, used to project a
// pattern onto a single observed router. The map only contains non-zero
// entries and sums to 1 (or is empty for a fixed point of a
// deterministic pattern).
func (sp Spatial) ProbWeights(src, w, h int, seed uint64) map[int]float64 {
	n := w * h
	out := map[int]float64{}
	switch sp.Kind {
	case Uniform:
		for d := 0; d < n; d++ {
			if d != src {
				out[d] = 1 / float64(n-1)
			}
		}
	case Hotspot:
		hot := HotspotNode(w, h)
		a := sp.alpha()
		if src == hot {
			a = 0
		}
		for d := 0; d < n; d++ {
			if d == src {
				continue
			}
			p := (1 - a) / float64(n-1)
			if d == hot {
				p += a
			}
			out[d] = p
		}
	case Neighbour:
		nb := neighbours(src, w, h)
		for _, d := range nb {
			out[d] += 1 / float64(len(nb))
		}
	case Permutation:
		d := permTable(n, seed)[src]
		if d != src {
			out[d] = 1
		}
	default:
		if d := sp.fixedDest(src, w, h); d >= 0 {
			out[d] = 1
		}
	}
	return out
}

// PortFlow is one aggregated input-port→output-port traffic relation at
// an observed router: the expected number of words crossing that
// port pair per word injected per node under the pattern.
type PortFlow struct {
	// In and Out are the router's ports (core.Tile for the local tile).
	In, Out core.Port
	// Weight is the flow's rate multiplier: words per cycle through the
	// port pair when every node injects one word per cycle. Multiply by
	// the per-node injection rate for the absolute rate.
	Weight float64
}

// PortFlows projects the spatial pattern onto the single router at
// observed node obs: every source→destination relation is XY-routed
// across the W×H mesh, and relations whose route crosses obs contribute
// their probability to the (entry port, exit port) pair they use there.
// This is the paper's single-router measurement methodology extended to
// synthetic patterns: the packet-switched and TDM models are
// single-router models, and the projection computes the traffic matrix
// such a router would see at that position in the mesh. Flows are
// returned in a fixed port-major order.
func PortFlows(sp Spatial, w, h, obs int, seed uint64) []PortFlow {
	n := w * h
	acc := map[[2]core.Port]float64{}
	for src := 0; src < n; src++ {
		ws := sp.ProbWeights(src, w, h, seed)
		// Accumulate in sorted destination order: distinct destinations can
		// fold into the same port pair, and float addition is not
		// associative, so ranging the map directly would make the low bits
		// of the flow weights depend on iteration order.
		dsts := make([]int, 0, len(ws))
		for dst := range ws {
			dsts = append(dsts, dst)
		}
		sort.Ints(dsts)
		for _, dst := range dsts {
			in, out, ok := portsThrough(src, dst, obs, w)
			if !ok {
				continue
			}
			acc[[2]core.Port{in, out}] += ws[dst]
		}
	}
	keys := make([][2]core.Port, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]PortFlow, 0, len(keys))
	for _, k := range keys {
		out = append(out, PortFlow{In: k[0], Out: k[1], Weight: acc[k]})
	}
	return out
}

// portsThrough XY-routes src→dst (X first, then Y) and reports the entry
// and exit ports at node obs, if the route passes through it.
func portsThrough(src, dst, obs, w int) (in, out core.Port, ok bool) {
	if src == dst {
		return 0, 0, false
	}
	sx, sy := src%w, src/w
	dx, dy := dst%w, dst/w
	ox, oy := obs%w, obs/w

	// The XY route: move along row sy from sx to dx, then along column
	// dx from sy to dy. Check whether obs lies on either leg.
	onX := oy == sy && between(ox, sx, dx)
	onY := ox == dx && between(oy, sy, dy)
	if !onX && !onY {
		return 0, 0, false
	}

	// Entry port: where the word comes from, seen from obs.
	switch {
	case ox == sx && oy == sy:
		in = core.Tile
	case onX: // arrived moving horizontally
		if dx > sx {
			in = core.West
		} else {
			in = core.East
		}
	default: // arrived moving vertically on the Y leg
		if dy > sy {
			in = core.North
		} else {
			in = core.South
		}
	}

	// Exit port: where the word goes next.
	switch {
	case ox == dx && oy == dy:
		out = core.Tile
	case onX && ox != dx: // keeps moving horizontally
		if dx > sx {
			out = core.East
		} else {
			out = core.West
		}
	default: // turns or continues vertically
		if dy > sy {
			out = core.South
		} else {
			out = core.North
		}
	}
	return in, out, true
}

// between reports whether v lies on the inclusive segment [a,b] (in
// either direction).
func between(v, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return v >= a && v <= b
}
