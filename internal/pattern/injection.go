package pattern

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/sweep"
)

// Process enumerates the temporal injection processes.
type Process int

const (
	// CBR injects at a constant bit rate: arrivals are spaced as evenly
	// as the cycle grid allows, with an exact fixed-point accumulator so
	// the long-run rate is the configured rate to within 2^-32.
	CBR Process = iota
	// Bernoulli injects each cycle independently with probability Rate.
	// The sampler draws the geometric inter-arrival gap directly, which
	// is distribution-identical to per-cycle coin flips but costs one
	// draw per word instead of one per cycle — the property that lets
	// sparse sources fast-forward.
	Bernoulli
	// Poisson injects with exponential inter-arrival times of mean
	// 1/Rate, quantized to the cycle grid by the ceiling — exactly a
	// geometric gap with success probability 1-exp(-Rate) (the
	// inhomogeneous-Poisson thinning view of a discrete-time process).
	Poisson
	// OnOff is a two-state Markov-modulated process (a discrete MMPP):
	// bursts of back-to-back words whose length is geometric with mean
	// Burstiness, separated by geometric silences sized so the long-run
	// rate is Rate.
	OnOff
)

// DefaultBurstiness is the on-off process's mean burst length when
// unspecified, shared by every entry point that defaults it.
const DefaultBurstiness = 4

// ProcessNames returns the parseable process names, in a fixed order.
func ProcessNames() []string { return []string{"cbr", "bernoulli", "poisson", "onoff"} }

// String renders the process name.
func (p Process) String() string {
	switch p {
	case CBR:
		return "cbr"
	case Bernoulli:
		return "bernoulli"
	case Poisson:
		return "poisson"
	case OnOff:
		return "onoff"
	default:
		return fmt.Sprintf("process(%d)", int(p))
	}
}

// ParseProcess resolves a process name. The empty string selects
// Poisson, the literature's default for synthetic workloads.
func ParseProcess(s string) (Process, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "poisson":
		return Poisson, nil
	case "cbr", "constant":
		return CBR, nil
	case "bernoulli":
		return Bernoulli, nil
	case "onoff", "on-off", "bursty", "mmpp":
		return OnOff, nil
	default:
		return 0, fmt.Errorf("pattern: unknown injection process %q (have %s)",
			s, strings.Join(ProcessNames(), ", "))
	}
}

// Injection is a configured temporal process: words per cycle per
// source, plus the burst-length knob of the on-off process.
type Injection struct {
	// Proc selects the process.
	Proc Process
	// Rate is the mean injection rate in words per cycle, in (0,1].
	Rate float64
	// Burstiness is the mean burst length in words for OnOff (>= 1);
	// ignored by the other processes.
	Burstiness float64
}

// Validate checks the configuration.
func (i Injection) Validate() error {
	if i.Rate <= 0 || i.Rate > 1 {
		return fmt.Errorf("pattern: injection rate %v out of (0,1]", i.Rate)
	}
	if i.Proc == OnOff && i.Burstiness < 1 {
		return fmt.Errorf("pattern: on-off burstiness %v must be >= 1", i.Burstiness)
	}
	if i.Proc != OnOff && i.Burstiness != 0 {
		return fmt.Errorf("pattern: burstiness only applies to the onoff process")
	}
	return nil
}

// String renders the injection parseably ("poisson:0.05", "onoff:0.1:8").
func (i Injection) String() string {
	s := i.Proc.String() + ":" + strconv.FormatFloat(i.Rate, 'g', -1, 64)
	if i.Proc == OnOff {
		s += ":" + strconv.FormatFloat(i.Burstiness, 'g', -1, 64)
	}
	return s
}

// ParseInjection parses "process:rate[:burstiness]", e.g. "poisson:0.05"
// or "onoff:0.1:8". A bare rate ("0.05") selects Poisson.
func ParseInjection(s string) (Injection, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) == 1 {
		if r, err := strconv.ParseFloat(parts[0], 64); err == nil {
			inj := Injection{Proc: Poisson, Rate: r}
			return inj, inj.Validate()
		}
	}
	if len(parts) < 2 || len(parts) > 3 {
		return Injection{}, fmt.Errorf("pattern: injection %q is not process:rate[:burstiness]", s)
	}
	proc, err := ParseProcess(parts[0])
	if err != nil {
		return Injection{}, err
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Injection{}, fmt.Errorf("pattern: bad injection rate %q", parts[1])
	}
	inj := Injection{Proc: proc, Rate: rate}
	if len(parts) == 3 {
		b, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return Injection{}, fmt.Errorf("pattern: bad burstiness %q", parts[2])
		}
		inj.Burstiness = b
	}
	if inj.Proc == OnOff && inj.Burstiness == 0 {
		inj.Burstiness = DefaultBurstiness
	}
	return inj, inj.Validate()
}

// cbrScale is the fixed-point denominator of the CBR accumulator. Using
// exact integer arithmetic (instead of a float accumulator) makes a
// window of n idle cycles algebraically identical to n single cycles,
// which the event kernel's fast-forward replay depends on.
const cbrScale = 1 << 32

// Sampler draws the inter-arrival gaps of one configured process. It is
// deterministic given its seed, and every draw happens at an arrival —
// never once per cycle — so the sequence of gaps is independent of the
// simulation kernel.
type Sampler struct {
	inj Injection
	rng *bitvec.XorShift64

	cbrNum uint64 // rate in 1/cbrScale words per cycle
	cbrAcc uint64 // fractional word accumulator, < cbrScale

	burstLeft uint64 // words remaining in the current on-off burst
}

// NewSampler returns a sampler for the injection, seeded independently
// per flow: the same (injection, seed) pair always produces the same
// gap sequence.
func NewSampler(inj Injection, seed uint64) *Sampler {
	if err := inj.Validate(); err != nil {
		panic(err)
	}
	num := uint64(math.Round(inj.Rate * cbrScale))
	if num == 0 {
		num = 1
	}
	if num > cbrScale {
		num = cbrScale
	}
	return &Sampler{
		inj:    inj,
		rng:    bitvec.NewXorShift64(sweep.Mix64(seed ^ 0x494E4A454354)), // "INJECT"
		cbrNum: num,
	}
}

// NextGap returns the number of cycles from the previous arrival to the
// next one (>= 1).
func (s *Sampler) NextGap() uint64 {
	switch s.inj.Proc {
	case CBR:
		// Cycles until the accumulator crosses one whole word:
		// ceil((scale-acc)/num), all in exact integer arithmetic.
		gap := (cbrScale - s.cbrAcc + s.cbrNum - 1) / s.cbrNum
		s.cbrAcc = s.cbrAcc + gap*s.cbrNum - cbrScale
		return gap
	case Bernoulli:
		return geometricGap(s.rng, s.inj.Rate)
	case Poisson:
		// ceil(Exp(rate)) is exactly Geometric(1 - e^-rate).
		return geometricGap(s.rng, 1-math.Exp(-s.inj.Rate))
	case OnOff:
		if s.burstLeft > 0 {
			s.burstLeft--
			return 1
		}
		// Between bursts: a geometric silence whose mean makes the
		// long-run rate come out to Rate, then a new geometric burst.
		b := s.inj.Burstiness
		meanOff := b * (1 - s.inj.Rate) / s.inj.Rate
		gap := geometricGap(s.rng, 1/(meanOff+1))
		s.burstLeft = geometricGap(s.rng, 1/b) - 1
		return gap
	default:
		panic(fmt.Sprintf("pattern: unknown process %d", int(s.inj.Proc)))
	}
}

// geometricGap draws a geometric inter-arrival gap (support 1,2,...)
// with success probability p, by inversion of the exponential tail.
func geometricGap(rng *bitvec.XorShift64, p float64) uint64 {
	if p >= 1 {
		return 1
	}
	u := rng.Float64()
	// Guard the open interval: Float64 may return 0.
	for u == 0 {
		u = rng.Float64()
	}
	g := 1 + uint64(math.Floor(math.Log(u)/math.Log(1-p)))
	if g < 1 {
		g = 1
	}
	return g
}
