package pattern

import (
	"math"
	"testing"
)

// meanGap draws n gaps and returns their mean.
func meanGap(s *Sampler, n int) float64 {
	total := uint64(0)
	for i := 0; i < n; i++ {
		total += s.NextGap()
	}
	return float64(total) / float64(n)
}

func TestCBRGapsAreExact(t *testing.T) {
	// Rate 0.25: every 4th cycle, exactly.
	s := NewSampler(Injection{Proc: CBR, Rate: 0.25}, 1)
	for i := 0; i < 100; i++ {
		if g := s.NextGap(); g != 4 {
			t.Fatalf("gap %d = %d, want 4", i, g)
		}
	}
	// Rate 0.3: gaps of 3 and 4 averaging exactly 1/0.3 in the long run
	// (to within the 2^-32 fixed-point quantization).
	s = NewSampler(Injection{Proc: CBR, Rate: 0.3}, 1)
	if got, want := meanGap(s, 30000), 1/0.3; math.Abs(got-want) > 1e-3 {
		t.Errorf("CBR(0.3) mean gap %.5f, want %.5f", got, want)
	}
	// Rate 1: back to back.
	s = NewSampler(Injection{Proc: CBR, Rate: 1}, 1)
	for i := 0; i < 10; i++ {
		if g := s.NextGap(); g != 1 {
			t.Fatalf("rate-1 gap = %d", g)
		}
	}
}

func TestBernoulliGapMean(t *testing.T) {
	const p = 0.05
	s := NewSampler(Injection{Proc: Bernoulli, Rate: p}, 7)
	got := meanGap(s, 60000)
	if want := 1 / p; math.Abs(got-want)/want > 0.03 {
		t.Errorf("Bernoulli(%.2f) mean gap %.2f, want %.2f +-3%%", p, got, want)
	}
}

func TestPoissonGapMean(t *testing.T) {
	const lambda = 0.05
	s := NewSampler(Injection{Proc: Poisson, Rate: lambda}, 11)
	got := meanGap(s, 60000)
	// ceil(Exp(lambda)) is Geometric(1-e^-lambda): mean 1/(1-e^-lambda).
	want := 1 / (1 - math.Exp(-lambda))
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("Poisson(%.2f) mean gap %.2f, want %.2f +-3%%", lambda, got, want)
	}
	// The quantized mean stays within 3% of the continuous 1/lambda at
	// this sparse rate — the sanity bound a pattern run relies on.
	if cont := 1 / lambda; math.Abs(got-cont)/cont > 0.05 {
		t.Errorf("Poisson(%.2f) mean gap %.2f drifts >5%% from 1/lambda %.2f", lambda, got, cont)
	}
}

func TestOnOffLongRunRateAndBurstiness(t *testing.T) {
	const rate, burst = 0.1, 8.0
	s := NewSampler(Injection{Proc: OnOff, Rate: rate, Burstiness: burst}, 3)
	const n = 120000
	total := uint64(0)
	ones := 0
	for i := 0; i < n; i++ {
		g := s.NextGap()
		total += g
		if g == 1 {
			ones++
		}
	}
	got := float64(n) / float64(total)
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("on-off long-run rate %.4f, want %.4f +-5%%", got, rate)
	}
	// A mean burst of 8 words has 7 back-to-back follow-ups per burst:
	// the fraction of unit gaps must be well above a Bernoulli process
	// of the same rate.
	if frac := float64(ones) / n; frac < 0.5 {
		t.Errorf("on-off unit-gap fraction %.2f; traffic is not bursty", frac)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	for _, inj := range []Injection{
		{Proc: CBR, Rate: 0.37},
		{Proc: Bernoulli, Rate: 0.2},
		{Proc: Poisson, Rate: 0.1},
		{Proc: OnOff, Rate: 0.1, Burstiness: 4},
	} {
		a, b := NewSampler(inj, 9), NewSampler(inj, 9)
		for i := 0; i < 1000; i++ {
			if ga, gb := a.NextGap(), b.NextGap(); ga != gb {
				t.Fatalf("%v: draw %d differs (%d vs %d)", inj, i, ga, gb)
			}
		}
	}
}

func TestParseInjection(t *testing.T) {
	cases := map[string]Injection{
		"poisson:0.05": {Proc: Poisson, Rate: 0.05},
		"cbr:0.5":      {Proc: CBR, Rate: 0.5},
		"bernoulli:1":  {Proc: Bernoulli, Rate: 1},
		"onoff:0.1:8":  {Proc: OnOff, Rate: 0.1, Burstiness: 8},
		"onoff:0.1":    {Proc: OnOff, Rate: 0.1, Burstiness: 4},
		"0.05":         {Proc: Poisson, Rate: 0.05},
	}
	for s, want := range cases {
		got, err := ParseInjection(s)
		if err != nil {
			t.Errorf("ParseInjection(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseInjection(%q) = %+v, want %+v", s, got, want)
		}
	}
	for _, bad := range []string{"", "poisson", "poisson:0", "poisson:2", "warp:0.1", "onoff:0.1:0.5", "cbr:0.1:3"} {
		if _, err := ParseInjection(bad); err == nil {
			t.Errorf("ParseInjection(%q) accepted", bad)
		}
	}
}

func TestInjectionValidate(t *testing.T) {
	if err := (Injection{Proc: Poisson, Rate: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Injection{
		{Proc: Poisson, Rate: 0},
		{Proc: Poisson, Rate: 1.2},
		{Proc: OnOff, Rate: 0.5, Burstiness: 0.5},
		{Proc: CBR, Rate: 0.5, Burstiness: 2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
}
