package pattern

import "repro/internal/sim"

// Snapshot appends the sampler's dynamic state: the RNG position, the
// CBR phase accumulator and the remaining on-period length. The process
// parameters are construction-time configuration.
func (s *Sampler) Snapshot(buf []byte) []byte {
	buf = sim.AppendU64(buf, s.rng.State())
	buf = sim.AppendU64(buf, s.cbrAcc)
	buf = sim.AppendU64(buf, s.burstLeft)
	return buf
}

// Restore is the inverse of Snapshot; it returns the unread remainder.
func (s *Sampler) Restore(data []byte) ([]byte, error) {
	st, data, err := sim.ReadU64(data)
	if err != nil {
		return nil, err
	}
	s.rng.SetState(st)
	if s.cbrAcc, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if s.burstLeft, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	return data, nil
}

// Snapshot implements sim.Snapshotter: the source's injection position
// (elapsed cycles, next arrival, accrued credits), its delivery counters
// and the sampler's stream state. The word limit and the Emit hook are
// construction-time configuration.
func (s *Source) Snapshot(buf []byte) []byte {
	buf = sim.AppendU64(buf, s.sent)
	buf = sim.AppendU64(buf, s.cycle)
	buf = sim.AppendU64(buf, s.next)
	buf = sim.AppendU64(buf, s.credits)
	buf = sim.AppendBool(buf, s.retired)
	return s.s.Snapshot(buf)
}

// Restore implements sim.Snapshotter.
func (s *Source) Restore(data []byte) ([]byte, error) {
	var err error
	if s.sent, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if s.cycle, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if s.next, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if s.credits, data, err = sim.ReadU64(data); err != nil {
		return nil, err
	}
	if s.retired, data, err = sim.ReadBool(data); err != nil {
		return nil, err
	}
	return s.s.Restore(data)
}

var _ sim.Snapshotter = (*Source)(nil)
