package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestRecorderSamplesEachCycle(t *testing.T) {
	v := uint16(0)
	b := false
	r := NewRecorder(100)
	r.Add(U16("data", &v), Bit("valid", &b))
	w := sim.NewWorld()
	w.Add(&sim.Func{OnCommit: func() { v++; b = !b }})
	w.Add(r) // added last: samples post-commit values
	w.Run(10)
	if r.Cycles() != 10 {
		t.Fatalf("cycles = %d", r.Cycles())
	}
	got, err := r.Value("data", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 { // incremented before sampling each cycle
		t.Fatalf("data[3] = %d, want 4", got)
	}
	ch, err := r.Changes("valid")
	if err != nil {
		t.Fatal(err)
	}
	if ch != 9 {
		t.Fatalf("valid changes = %d, want 9", ch)
	}
}

func TestRecorderLimit(t *testing.T) {
	v := uint16(0)
	r := NewRecorder(5)
	r.Add(U16("x", &v))
	w := sim.NewWorld()
	w.Add(r)
	w.Run(20)
	if r.Cycles() != 5 {
		t.Fatalf("recorded %d cycles past the limit", r.Cycles())
	}
}

func TestRecorderErrors(t *testing.T) {
	r := NewRecorder(10)
	v := uint16(0)
	r.Add(U16("x", &v))
	if _, err := r.Value("nope", 0); err == nil {
		t.Error("unknown probe accepted")
	}
	if _, err := r.Value("x", 0); err == nil {
		t.Error("cycle beyond recording accepted")
	}
	if _, err := r.Changes("nope"); err == nil {
		t.Error("unknown probe accepted by Changes")
	}
}

func TestRecorderPanics(t *testing.T) {
	v := uint8(0)
	for name, f := range map[string]func(){
		"zero limit": func() { NewRecorder(0) },
		"no name":    func() { NewRecorder(1).Add(Probe{Width: 1, Sample: func() uint64 { return 0 }}) },
		"no sampler": func() { NewRecorder(1).Add(Probe{Name: "x", Width: 1}) },
		"bad width":  func() { NewRecorder(1).Add(U8("x", 0, &v)) },
		"duplicate": func() {
			r := NewRecorder(1)
			r.Add(U8("x", 4, &v), U8("x", 4, &v))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestASCIIRender(t *testing.T) {
	v := uint8(0)
	b := false
	r := NewRecorder(16)
	r.Add(U8("lane", 4, &v), Bit("ack", &b))
	w := sim.NewWorld()
	n := 0
	w.Add(&sim.Func{OnCommit: func() {
		n++
		v = uint8(n % 3)
		b = n%2 == 0
	}})
	w.Add(r)
	w.Run(8)
	var buf bytes.Buffer
	if err := r.RenderASCII(&buf, 0, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lane") || !strings.Contains(out, "ack") {
		t.Fatalf("render missing signals:\n%s", out)
	}
	if !strings.Contains(out, "▔") || !strings.Contains(out, "▁") {
		t.Fatalf("no rails rendered:\n%s", out)
	}
	if err := r.RenderASCII(&buf, 5, 3); err == nil {
		t.Fatal("invalid window accepted")
	}
}

func TestVCDOutputWellFormed(t *testing.T) {
	v := uint16(0)
	b := false
	r := NewRecorder(32)
	r.Add(U16("bus", &v), Bit("clk_en", &b))
	w := sim.NewWorld()
	w.Add(&sim.Func{OnCommit: func() { v += 3; b = !b }})
	w.Add(r)
	w.Run(6)
	var buf bytes.Buffer
	if err := r.WriteVCD(&buf, "router", "40ns"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 40ns $end",
		"$scope module router $end",
		"$var wire 16", "$var wire 1",
		"$enddefinitions $end",
		"#0", "#5",
		"b", // multi-bit value lines
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Defaults fill in for empty module/timescale.
	var buf2 bytes.Buffer
	if err := r.WriteVCD(&buf2, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "$scope module noc $end") {
		t.Error("default module name missing")
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestTraceRealRouter(t *testing.T) {
	// Probe an actual circuit-switched router's output lane and ack wire
	// while a converter streams a word — the intended use.
	p := core.DefaultParams()
	a := core.NewAssembly(p, core.DefaultAssemblyOptions())
	if err := a.EstablishLocal(core.Circuit{
		In:  core.LaneID{Port: core.Tile, Lane: 0},
		Out: core.LaneID{Port: core.East, Lane: 0},
	}); err != nil {
		t.Fatal(err)
	}
	east := p.Global(core.LaneID{Port: core.East, Lane: 0})
	r := NewRecorder(64)
	r.Add(
		U8("east0.data", p.LaneWidth, &a.R.Out[east]),
		U8("tx0.out", p.LaneWidth, &a.Tx[0].Out),
	)
	w := sim.NewWorld()
	w.Add(a)
	w.Add(&sim.Func{OnEval: func() {
		if a.Tx[0].Ready() {
			a.Tx[0].Push(core.DataWord(0xA5C3))
		}
	}})
	w.Add(r)
	w.Run(30)
	ch, err := r.Changes("east0.data")
	if err != nil {
		t.Fatal(err)
	}
	if ch == 0 {
		t.Fatal("router output never changed while streaming")
	}
	names := r.MostActive()
	if len(names) != 2 {
		t.Fatalf("MostActive = %v", names)
	}
}

func TestRecorderTruncationMarked(t *testing.T) {
	v := uint16(0)
	r := NewRecorder(4)
	r.Add(U16("data", &v))
	w := sim.NewWorld()
	w.Add(&sim.Func{OnCommit: func() { v++ }})
	w.Add(r)
	w.Run(10) // six cycles past the limit
	if r.Cycles() != 4 {
		t.Fatalf("Cycles() = %d, want 4", r.Cycles())
	}
	if !r.Truncated() {
		t.Fatal("Truncated() = false after running past the limit")
	}
	var ascii bytes.Buffer
	if err := r.RenderASCII(&ascii, 0, r.Cycles()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "truncated at cycle 4") {
		t.Fatalf("ASCII render lacks truncation marker:\n%s", ascii.String())
	}
	var vcd bytes.Buffer
	if err := r.WriteVCD(&vcd, "t", "1ns"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcd.String(), "truncated at cycle 4") {
		t.Fatalf("VCD lacks truncation comment:\n%s", vcd.String())
	}

	// A capture that never hits the limit carries no marker.
	r2 := NewRecorder(100)
	v2 := uint16(0)
	r2.Add(U16("data", &v2))
	w2 := sim.NewWorld()
	w2.Add(&sim.Func{OnCommit: func() { v2++ }})
	w2.Add(r2)
	w2.Run(10)
	if r2.Truncated() {
		t.Fatal("Truncated() = true without hitting the limit")
	}
	var ascii2 bytes.Buffer
	if err := r2.RenderASCII(&ascii2, 0, r2.Cycles()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ascii2.String(), "truncated") {
		t.Fatal("complete capture carries a truncation marker")
	}
}
