// Package trace records named signals of a cycle simulation and renders
// them as ASCII timing diagrams or standard VCD (Value Change Dump) files
// that any waveform viewer (GTKWave etc.) opens — the debugging companion
// every RTL-level simulator needs.
//
// A Recorder is itself a sim.Clocked component: add it to the same world
// as the design under test and it samples its probes at every clock edge,
// after all other components commit (add it last).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Probe names one observed signal.
type Probe struct {
	// Name is the signal's display name (use '.'-separated hierarchy).
	Name string
	// Width is the signal width in bits (1..64).
	Width int
	// Sample reads the signal's current value.
	Sample func() uint64
}

// Recorder samples probes each cycle.
type Recorder struct {
	probes    []Probe
	samples   [][]uint64 // per probe, per cycle
	cycles    int
	limit     int
	truncated bool
}

// NewRecorder returns a recorder with a cycle-count safety limit (older
// samples are never discarded; recording simply stops at the limit).
// Hitting the limit sets Truncated and both renderers carry a visible
// truncation marker, so a capture that stopped early can never be
// mistaken for a complete one.
func NewRecorder(limit int) *Recorder {
	if limit < 1 {
		panic("trace: non-positive cycle limit")
	}
	return &Recorder{limit: limit}
}

// Add registers probes. It panics on invalid probes or duplicate names.
func (r *Recorder) Add(ps ...Probe) {
	for _, p := range ps {
		if p.Name == "" || p.Sample == nil {
			panic("trace: probe needs a name and a sampler")
		}
		if p.Width < 1 || p.Width > 64 {
			panic(fmt.Sprintf("trace: probe %q width %d out of 1..64", p.Name, p.Width))
		}
		for _, q := range r.probes {
			if q.Name == p.Name {
				panic(fmt.Sprintf("trace: duplicate probe %q", p.Name))
			}
		}
		r.probes = append(r.probes, p)
		r.samples = append(r.samples, nil)
	}
}

// Bit is a convenience constructor for a 1-bit probe over a bool.
func Bit(name string, src *bool) Probe {
	return Probe{Name: name, Width: 1, Sample: func() uint64 {
		if *src {
			return 1
		}
		return 0
	}}
}

// U8 probes a uint8 signal of the given width.
func U8(name string, width int, src *uint8) Probe {
	return Probe{Name: name, Width: width, Sample: func() uint64 { return uint64(*src) }}
}

// U16 probes a uint16 signal.
func U16(name string, src *uint16) Probe {
	return Probe{Name: name, Width: 16, Sample: func() uint64 { return uint64(*src) }}
}

// Eval implements sim.Clocked (sampling happens at Commit).
func (r *Recorder) Eval() {}

// Commit implements sim.Clocked: it samples every probe. Once the cycle
// limit is reached sampling stops and the recording is marked truncated.
func (r *Recorder) Commit() {
	if r.cycles >= r.limit {
		r.truncated = true
		return
	}
	for i, p := range r.probes {
		r.samples[i] = append(r.samples[i], p.Sample())
	}
	r.cycles++
}

// Cycles returns the number of recorded cycles.
func (r *Recorder) Cycles() int { return r.cycles }

// Truncated reports whether the simulation ran past the recorder's cycle
// limit, i.e. whether cycles beyond Cycles() happened but were not
// recorded.
func (r *Recorder) Truncated() bool { return r.truncated }

// Value returns probe name's sample at the given cycle.
func (r *Recorder) Value(name string, cycle int) (uint64, error) {
	for i, p := range r.probes {
		if p.Name == name {
			if cycle < 0 || cycle >= r.cycles {
				return 0, fmt.Errorf("trace: cycle %d outside 0..%d", cycle, r.cycles-1)
			}
			return r.samples[i][cycle], nil
		}
	}
	return 0, fmt.Errorf("trace: unknown probe %q", name)
}

// Changes returns the number of cycles in which the probe's value differs
// from the previous cycle — a quick activity metric.
func (r *Recorder) Changes(name string) (int, error) {
	for i, p := range r.probes {
		if p.Name != name {
			continue
		}
		n := 0
		for c := 1; c < r.cycles; c++ {
			if r.samples[i][c] != r.samples[i][c-1] {
				n++
			}
		}
		return n, nil
	}
	return 0, fmt.Errorf("trace: unknown probe %q", name)
}

// RenderASCII writes an ASCII waveform: 1-bit signals as ▁/▔ rails and
// multi-bit signals as hex values at their change points.
func (r *Recorder) RenderASCII(w io.Writer, from, to int) error {
	if from < 0 || to > r.cycles || from >= to {
		return fmt.Errorf("trace: window [%d,%d) outside 0..%d", from, to, r.cycles)
	}
	nameW := 0
	for _, p := range r.probes {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
	}
	for i, p := range r.probes {
		var b strings.Builder
		fmt.Fprintf(&b, "%-*s ", nameW, p.Name)
		if p.Width == 1 {
			for c := from; c < to; c++ {
				if r.samples[i][c] != 0 {
					b.WriteString("▔")
				} else {
					b.WriteString("▁")
				}
			}
		} else {
			hexw := (p.Width + 3) / 4
			prev := ^uint64(0)
			for c := from; c < to; c++ {
				v := r.samples[i][c]
				if v != prev {
					cell := fmt.Sprintf("%0*x", hexw, v)
					if len(cell) > hexw {
						cell = cell[len(cell)-hexw:]
					}
					b.WriteString(cell)
					b.WriteString("|")
				} else {
					b.WriteString(strings.Repeat(".", hexw) + "|")
				}
				prev = v
			}
		}
		b.WriteString("\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	if r.truncated && to == r.cycles {
		if _, err := fmt.Fprintf(w, "(truncated at cycle %d; later cycles not recorded)\n", r.cycles); err != nil {
			return err
		}
	}
	return nil
}

// WriteVCD emits the recording as a Value Change Dump with the given
// timescale per cycle (e.g. "40ns" for a 25 MHz clock).
func (r *Recorder) WriteVCD(w io.Writer, module, timescale string) error {
	if module == "" {
		module = "noc"
	}
	if timescale == "" {
		timescale = "1ns"
	}
	var b strings.Builder
	b.WriteString("$date\n  (generated)\n$end\n")
	b.WriteString("$version\n  repro NoC simulator\n$end\n")
	if r.truncated {
		fmt.Fprintf(&b, "$comment\n  truncated at cycle %d; later cycles not recorded\n$end\n", r.cycles)
	}
	fmt.Fprintf(&b, "$timescale %s $end\n", timescale)
	fmt.Fprintf(&b, "$scope module %s $end\n", module)
	ids := make([]string, len(r.probes))
	for i, p := range r.probes {
		ids[i] = vcdID(i)
		fmt.Fprintf(&b, "$var wire %d %s %s $end\n", p.Width, ids[i], vcdName(p.Name))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")
	// Initial values.
	b.WriteString("#0\n")
	prev := make([]uint64, len(r.probes))
	for i := range r.probes {
		if r.cycles == 0 {
			break
		}
		prev[i] = r.samples[i][0]
		b.WriteString(vcdValue(r.probes[i].Width, prev[i], ids[i]))
	}
	for c := 1; c < r.cycles; c++ {
		emitted := false
		for i := range r.probes {
			if v := r.samples[i][c]; v != prev[i] {
				if !emitted {
					fmt.Fprintf(&b, "#%d\n", c)
					emitted = true
				}
				b.WriteString(vcdValue(r.probes[i].Width, v, ids[i]))
				prev[i] = v
			}
		}
	}
	fmt.Fprintf(&b, "#%d\n", r.cycles)
	_, err := io.WriteString(w, b.String())
	return err
}

// vcdID produces the compact printable identifiers VCD uses.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}

func vcdName(n string) string { return strings.ReplaceAll(n, " ", "_") }

func vcdValue(width int, v uint64, id string) string {
	if width == 1 {
		return fmt.Sprintf("%d%s\n", v&1, id)
	}
	return fmt.Sprintf("b%b %s\n", v, id)
}

// Names returns the probe names in registration order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.probes))
	for i, p := range r.probes {
		out[i] = p.Name
	}
	return out
}

// MostActive returns probe names sorted by descending change count — a
// quick "where is the power going" view that mirrors the power meter.
func (r *Recorder) MostActive() []string {
	names := r.Names()
	sort.SliceStable(names, func(a, b int) bool {
		ca, _ := r.Changes(names[a])
		cb, _ := r.Changes(names[b])
		return ca > cb
	})
	return names
}
