package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:     "fig9",
		Title:  "Dynamic and static power bars per scenario (random data, 100% load)",
		Paper:  "Figure 9",
		Data:   dataFrom(defaultFig9Result),
		Render: renderAs(renderFig9),
	})
	register(Experiment{
		ID:     "fig10",
		Title:  "Data dependency of the dynamic power consumption (100% load)",
		Paper:  "Figure 10",
		Data:   dataFrom(defaultFig10Result),
		Render: renderAs(renderFig10),
	})
}

// Fig9Bar is one bar of Figure 9: a router × scenario power breakdown at
// 25 MHz with random data at 100% load.
type Fig9Bar struct {
	// Router is "circuit" or "packet".
	Router string `json:"router"`
	// Scenario is the roman numeral.
	Scenario string `json:"scenario"`
	// Power is the static/internal/switching split.
	Power power.Breakdown `json:"power"`
}

// Fig9Config bundles the knobs of the Figure 9/10 simulations.
type Fig9Config struct {
	// Cycles is the simulation length (paper: 200 µs at 25 MHz = 5000).
	Cycles int `json:"cycles"`
	// FreqMHz is the clock (paper: 25).
	FreqMHz float64 `json:"freq_mhz"`
	// Gated applies the clock-gating ablation to the circuit-switched
	// router.
	Gated bool `json:"gated"`
}

// DefaultFig9Config returns the paper's setup.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{Cycles: 5000, FreqMHz: 25}
}

// Fig9Result is the typed result of the fig9 experiment.
type Fig9Result struct {
	// Config echoes the simulation setup.
	Config Fig9Config `json:"config"`
	// Bars holds the eight bars in the paper's order.
	Bars []Fig9Bar `json:"bars"`
}

// Fig9Data runs all eight simulations of Figure 9 (four scenarios × two
// routers) in parallel and returns the bars in the paper's order:
// circuit-switched I–IV, then packet-switched I–IV.
func Fig9Data(cfg Fig9Config) ([]Fig9Bar, error) {
	pat := traffic.Pattern{FlipProb: 0.5, Load: 1} // random data, 100% load
	rc := traffic.RunConfig{Cycles: cfg.Cycles, FreqMHz: cfg.FreqMHz, Lib: lib, Gated: cfg.Gated}
	type cell struct {
		router string
		sc     traffic.Scenario
	}
	var cells []cell
	for _, sc := range traffic.Scenarios() {
		cells = append(cells, cell{"circuit", sc})
	}
	for _, sc := range traffic.Scenarios() {
		cells = append(cells, cell{"packet", sc})
	}
	return sweep.Map(context.Background(), len(cells), 0, func(i int) (Fig9Bar, error) {
		c := cells[i]
		var (
			res traffic.Result
			err error
		)
		if c.router == "circuit" {
			res, err = traffic.RunCircuit(c.sc, pat, rc)
		} else {
			res, err = traffic.RunPacket(c.sc, pat, rc)
		}
		if err != nil {
			return Fig9Bar{}, err
		}
		return Fig9Bar{Router: c.router, Scenario: c.sc.Name, Power: res.Power}, nil
	})
}

func defaultFig9Result() (Fig9Result, error) {
	cfg := DefaultFig9Config()
	bars, err := Fig9Data(cfg)
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{Config: cfg, Bars: bars}, nil
}

func renderFig9(w io.Writer, res Fig9Result) error {
	cfg := res.Config
	fmt.Fprintf(w, "clock %.0f MHz, %d cycles (%.0f us), random data (50%% flips), 100%% load\n",
		cfg.FreqMHz, cfg.Cycles, float64(cfg.Cycles)/cfg.FreqMHz)
	fmt.Fprintf(w, "%-10s %-9s %12s %18s %20s %12s\n",
		"Router", "Scenario", "Static [uW]", "Dyn internal [uW]", "Dyn switching [uW]", "Total [uW]")
	var csAvg, psAvg float64
	for _, b := range res.Bars {
		fmt.Fprintf(w, "%-10s %-9s %12.1f %18.1f %20.1f %12.1f\n",
			b.Router, b.Scenario, b.Power.StaticUW, b.Power.InternalUW,
			b.Power.SwitchingUW, b.Power.TotalUW())
		if b.Router == "circuit" {
			csAvg += b.Power.TotalUW() / 4
		} else {
			psAvg += b.Power.TotalUW() / 4
		}
	}
	fmt.Fprintf(w, "\nscenario-averaged total: circuit %.0f uW, packet %.0f uW, ratio %.2fx "+
		"(paper: ~3.5x; packet bars peak near 1300 uW)\n", csAvg, psAvg, psAvg/csAvg)
	fmt.Fprintln(w, "shape checks: dynamic offset dominates (Scenario I ~= IV), as in Section 7.3")
	return nil
}

// Fig10Point is one curve sample of Figure 10: frequency-normalized
// dynamic power against the data bit-flip fraction.
type Fig10Point struct {
	// Router is "circuit" or "packet".
	Router string `json:"router"`
	// Scenario is the roman numeral.
	Scenario string `json:"scenario"`
	// FlipProb is the bit-flip fraction (0, 0.5, 1).
	FlipProb float64 `json:"flip_prob"`
	// UWPerMHz is the dynamic power in µW/MHz.
	UWPerMHz float64 `json:"uw_per_mhz"`
}

// Fig10Result is the typed result of the fig10 experiment.
type Fig10Result struct {
	// Config echoes the simulation setup.
	Config Fig9Config `json:"config"`
	// Points holds the 24 curve samples.
	Points []Fig10Point `json:"points"`
}

// Fig10Data sweeps the bit-flip fraction over the paper's three cases for
// all scenarios and both routers — 24 independent simulations, run in
// parallel and returned in the paper's fixed order.
func Fig10Data(cfg Fig9Config) ([]Fig10Point, error) {
	rc := traffic.RunConfig{Cycles: cfg.Cycles, FreqMHz: cfg.FreqMHz, Lib: lib, Gated: cfg.Gated}
	type cell struct {
		router string
		sc     traffic.Scenario
		flip   float64
	}
	var cells []cell
	for _, router := range []string{"circuit", "packet"} {
		for _, sc := range traffic.Scenarios() {
			for _, p := range traffic.BitFlipCases() {
				cells = append(cells, cell{router, sc, p})
			}
		}
	}
	return sweep.Map(context.Background(), len(cells), 0, func(i int) (Fig10Point, error) {
		c := cells[i]
		pat := traffic.Pattern{FlipProb: c.flip, Load: 1}
		var (
			res traffic.Result
			err error
		)
		if c.router == "circuit" {
			res, err = traffic.RunCircuit(c.sc, pat, rc)
		} else {
			res, err = traffic.RunPacket(c.sc, pat, rc)
		}
		if err != nil {
			return Fig10Point{}, err
		}
		return Fig10Point{
			Router: c.router, Scenario: c.sc.Name, FlipProb: c.flip,
			UWPerMHz: res.Power.DynamicPerMHz(),
		}, nil
	})
}

func defaultFig10Result() (Fig10Result, error) {
	cfg := DefaultFig9Config()
	pts, err := Fig10Data(cfg)
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{Config: cfg, Points: pts}, nil
}

func renderFig10(w io.Writer, res Fig10Result) error {
	fmt.Fprintln(w, "dynamic power [uW/MHz] vs percentage of data bit-flips (100% load)")
	fmt.Fprintf(w, "%-10s %-9s %10s %10s %10s\n", "Router", "Scenario", "0%", "50%", "100%")
	curve := map[string][3]float64{}
	for _, p := range res.Points {
		key := p.Router + "/" + p.Scenario
		c := curve[key]
		switch p.FlipProb {
		case 0:
			c[0] = p.UWPerMHz
		case 0.5:
			c[1] = p.UWPerMHz
		default:
			c[2] = p.UWPerMHz
		}
		curve[key] = c
	}
	for _, router := range []string{"circuit", "packet"} {
		for _, sc := range []string{"I", "II", "III", "IV"} {
			c := curve[router+"/"+sc]
			fmt.Fprintf(w, "%-10s %-9s %10.2f %10.2f %10.2f\n", router, sc, c[0], c[1], c[2])
		}
	}
	fmt.Fprintln(w, "\nshape checks (Section 7.3):")
	fmt.Fprintln(w, " - bit-flip rate has only minor influence (flat curves)")
	fmt.Fprintln(w, " - stream count separates the curves more than data does")
	fmt.Fprintln(w, " - the packet-switched scenario with colliding streams 1+3 at port East")
	fmt.Fprintln(w, "   shows extra control switching (paper calls it Scenario III in the text,")
	fmt.Fprintln(w, "   but streams 1 and 3 only coexist in Scenario IV per Table 3)")
	return nil
}
