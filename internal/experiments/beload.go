package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/benet"
	"repro/internal/bitvec"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{
		ID:     "beload",
		Title:  "Best-effort network latency vs offered load",
		Paper:  "Section 3.3 BE class (fairness, no guarantees)",
		Data:   dataFrom(BELoadData),
		Render: renderAs(renderBELoad),
	})
}

// BELoadPoint is one sample of the latency-throughput curve.
type BELoadPoint struct {
	// OfferedLoad is the per-node injection probability per cycle.
	OfferedLoad float64 `json:"offered_load"`
	// MeanLatency and P95Latency are in cycles.
	MeanLatency float64 `json:"mean_latency"`
	P95Latency  float64 `json:"p95_latency"`
	// Delivered counts completed messages.
	Delivered int `json:"delivered"`
	// Throughput is delivered messages per node per 100 cycles.
	Throughput float64 `json:"throughput"`
}

// BELoadData sweeps uniform-random traffic on a 4×4 best-effort mesh and
// measures the classic latency-throughput curve: flat latency at low
// load, a knee, then rapidly growing latency near saturation — best
// effort gives fairness but no guarantees, which is exactly why the paper
// keeps GT traffic off this network.
func BELoadData() ([]BELoadPoint, error) {
	loads := []float64{0.02, 0.05, 0.1, 0.2, 0.3}
	return sweep.Map(context.Background(), len(loads), 0, func(i int) (BELoadPoint, error) {
		load := loads[i]
		n := benet.New(4, 4, packetsw.DefaultParams())
		rng := bitvec.NewXorShift64(uint64(1 + load*1000))
		const cycles = 4000
		var lat stats.Series
		hist := stats.NewHist(10, 20, 40, 80, 160, 320)
		delivered := 0
		for c := 0; c < cycles; c++ {
			for node := 0; node < 16; node++ {
				if !rng.Bool(load) {
					continue
				}
				src := mesh.Coord{X: node % 4, Y: node / 4}
				dst := mesh.Coord{X: rng.Intn(4), Y: rng.Intn(4)}
				if dst == src {
					continue
				}
				// 4-word messages (a config burst or a short control
				// exchange).
				n.Send(benet.Message{Src: src, Dst: dst,
					Payload: []uint16{1, 2, 3, 4}})
			}
			n.Step()
			for _, m := range n.Delivered() {
				l := float64(m.RecvCycle - m.SentCycle)
				lat.Add(l)
				hist.Add(l)
				delivered++
			}
		}
		return BELoadPoint{
			OfferedLoad: load,
			MeanLatency: lat.Mean(),
			P95Latency:  hist.Quantile(0.95),
			Delivered:   delivered,
			Throughput:  float64(delivered) / 16 / cycles * 100,
		}, nil
	})
}

func renderBELoad(w io.Writer, pts []BELoadPoint) error {
	fmt.Fprintln(w, "4x4 BE mesh, uniform random 4-word messages, 4000 cycles:")
	fmt.Fprintf(w, "%-14s %12s %12s %14s\n",
		"offered load", "mean lat", "p95 lat", "msgs/node/100cy")
	for _, p := range pts {
		fmt.Fprintf(w, "%-14.2f %9.1f cy %9.0f cy %14.2f\n",
			p.OfferedLoad, p.MeanLatency, p.P95Latency, p.Throughput)
	}
	fmt.Fprintln(w, "\nthe knee-shaped curve is why the paper routes only the <5% control")
	fmt.Fprintln(w, "traffic here: best effort stays fair but its latency is unbounded under")
	fmt.Fprintln(w, "load, unusable for the front-end streams that may never drop data")
	return nil
}
