package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/apps"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:     "table1",
		Title:  "Communication in HiperLAN/2",
		Paper:  "Table 1",
		Data:   dataFrom(table1Result),
		Render: renderAs(renderTable1),
	})
	register(Experiment{
		ID:     "table2",
		Title:  "Communication in UMTS",
		Paper:  "Table 2",
		Data:   dataFrom(table2Result),
		Render: renderAs(renderTable2),
	})
	register(Experiment{
		ID:     "table3",
		Title:  "Stream definitions",
		Paper:  "Table 3",
		Data:   dataFrom(table3Result),
		Render: renderAs(renderTable3),
	})
	register(Experiment{
		ID:     "table4",
		Title:  "Synthesis results of three routers",
		Paper:  "Table 4",
		Data:   dataFrom(table4Result),
		Render: renderAs(renderTable4),
	})
}

// Table1Result is the typed result of the table1 experiment.
type Table1Result struct {
	// Params are the OFDM parameters the bandwidths derive from.
	Params apps.HiperLANParams `json:"params"`
	// Rows are the derived-versus-paper bandwidth rows.
	Rows []apps.Table1Row `json:"rows"`
}

func table1Result() (Table1Result, error) {
	h := apps.DefaultHiperLAN()
	return Table1Result{Params: h, Rows: apps.Table1(h)}, nil
}

func renderTable1(w io.Writer, res Table1Result) error {
	h := res.Params
	fmt.Fprintf(w, "OFDM parameters: %d samples/symbol, %.0f us symbol, %d-pt FFT, "+
		"%d used / %d data carriers, %d-bit complex samples\n",
		h.SamplesPerSymbol, h.SymbolPeriodUS, h.FFTSize,
		h.UsedCarriers, h.DataCarriers, h.SampleBits)
	fmt.Fprintf(w, "%-28s %-10s %12s %12s\n", "Stream", "Edge(s)", "computed", "paper")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-28s %-10s %9.0f Mb/s %9.0f Mb/s\n",
			row.Stream, row.Edges, row.Mbps, row.PaperMbps)
	}
	return nil
}

// Table2Result is the typed result of the table2 experiment.
type Table2Result struct {
	// Params are the W-CDMA parameters the bandwidths derive from.
	Params apps.UMTSParams `json:"params"`
	// Rows are the derived-versus-paper bandwidth rows.
	Rows []apps.Table2Row `json:"rows"`
	// TotalMbps is the aggregate requirement across all fingers.
	TotalMbps float64 `json:"total_mbps"`
}

func table2Result() (Table2Result, error) {
	u := apps.DefaultUMTS()
	return Table2Result{Params: u, Rows: apps.Table2(u), TotalMbps: u.TotalMbps()}, nil
}

func renderTable2(w io.Writer, res Table2Result) error {
	u := res.Params
	fmt.Fprintf(w, "W-CDMA parameters: %.2f Mchip/s, %dx oversampling, %d-bit chips, "+
		"SF=%d, %d fingers\n",
		u.ChipRateMcps, u.Oversampling, u.ChipBits, u.SF, u.Fingers)
	fmt.Fprintf(w, "%-30s %-5s %12s %12s\n", "Stream", "Edge", "computed", "paper")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-30s %-5d %9.2f Mb/s %9.2f Mb/s\n",
			row.Stream, row.Edge, row.Mbps, row.PaperMbps)
	}
	fmt.Fprintf(w, "total for %d fingers at SF=%d: %.1f Mbit/s (paper: ~320)\n",
		u.Fingers, u.SF, res.TotalMbps)
	return nil
}

// Table3Stream is one row of the table3 experiment with the ports spelled
// out as names, for readable JSON. Names are lowercase ("tile", "east"),
// matching the noc package's Port JSON representation.
type Table3Stream struct {
	// ID is the paper's stream number.
	ID int `json:"id"`
	// In and Out name the ports.
	In  string `json:"in"`
	Out string `json:"out"`
}

// Table3Result is the typed result of the table3 experiment.
type Table3Result struct {
	// Streams are the stream definitions of Table 3.
	Streams []Table3Stream `json:"streams"`
	// Scenarios maps the roman numerals to the active stream IDs (Fig. 8).
	Scenarios map[string][]int `json:"scenarios"`
}

func table3Result() (Table3Result, error) {
	var res Table3Result
	for _, s := range traffic.PaperStreams() {
		res.Streams = append(res.Streams, Table3Stream{
			ID: s.ID, In: strings.ToLower(s.In.String()), Out: strings.ToLower(s.Out.String()),
		})
	}
	res.Scenarios = map[string][]int{}
	for _, sc := range traffic.Scenarios() {
		ids := []int{}
		for _, s := range sc.Streams {
			ids = append(ids, s.ID)
		}
		res.Scenarios[sc.Name] = ids
	}
	return res, nil
}

func renderTable3(w io.Writer, res Table3Result) error {
	// The text table keeps the paper's capitalized port names.
	cap := func(s string) string {
		if s == "" {
			return s
		}
		return strings.ToUpper(s[:1]) + s[1:]
	}
	fmt.Fprintf(w, "%-8s %-16s %-16s\n", "Stream", "Input port", "Output port")
	for _, s := range res.Streams {
		fmt.Fprintf(w, "%-8d %-16s %-16s\n", s.ID, cap(s.In), cap(s.Out))
	}
	fmt.Fprintln(w, "\nScenarios (Fig. 8): I = none, II = {1}, III = {1,2}, IV = {1,2,3}")
	return nil
}

// Table4Result is the typed result of the table4 experiment.
type Table4Result struct {
	// Rows are the three synthesis rows (circuit, packet, Aethereal).
	Rows []synth.Row `json:"rows"`
}

func table4Result() (Table4Result, error) {
	return Table4Result{Rows: synth.Table4(lib)}, nil
}

func renderTable4(w io.Writer, res Table4Result) error {
	return synth.Render(w, res.Rows)
}
