package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Communication in HiperLAN/2",
		Paper: "Table 1",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Communication in UMTS",
		Paper: "Table 2",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Stream definitions",
		Paper: "Table 3",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Synthesis results of three routers",
		Paper: "Table 4",
		Run:   runTable4,
	})
}

func runTable1(w io.Writer) error {
	h := apps.DefaultHiperLAN()
	fmt.Fprintf(w, "OFDM parameters: %d samples/symbol, %.0f us symbol, %d-pt FFT, "+
		"%d used / %d data carriers, %d-bit complex samples\n",
		h.SamplesPerSymbol, h.SymbolPeriodUS, h.FFTSize,
		h.UsedCarriers, h.DataCarriers, h.SampleBits)
	fmt.Fprintf(w, "%-28s %-10s %12s %12s\n", "Stream", "Edge(s)", "computed", "paper")
	for _, row := range apps.Table1(h) {
		fmt.Fprintf(w, "%-28s %-10s %9.0f Mb/s %9.0f Mb/s\n",
			row.Stream, row.Edges, row.Mbps, row.PaperMbps)
	}
	return nil
}

func runTable2(w io.Writer) error {
	u := apps.DefaultUMTS()
	fmt.Fprintf(w, "W-CDMA parameters: %.2f Mchip/s, %dx oversampling, %d-bit chips, "+
		"SF=%d, %d fingers\n",
		u.ChipRateMcps, u.Oversampling, u.ChipBits, u.SF, u.Fingers)
	fmt.Fprintf(w, "%-30s %-5s %12s %12s\n", "Stream", "Edge", "computed", "paper")
	for _, row := range apps.Table2(u) {
		fmt.Fprintf(w, "%-30s %-5d %9.2f Mb/s %9.2f Mb/s\n",
			row.Stream, row.Edge, row.Mbps, row.PaperMbps)
	}
	fmt.Fprintf(w, "total for %d fingers at SF=%d: %.1f Mbit/s (paper: ~320)\n",
		u.Fingers, u.SF, u.TotalMbps())
	return nil
}

func runTable3(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %-16s %-16s\n", "Stream", "Input port", "Output port")
	for _, s := range traffic.PaperStreams() {
		fmt.Fprintf(w, "%-8d %-16v %-16v\n", s.ID, s.In, s.Out)
	}
	fmt.Fprintln(w, "\nScenarios (Fig. 8): I = none, II = {1}, III = {1,2}, IV = {1,2,3}")
	return nil
}

func runTable4(w io.Writer) error {
	return synth.Render(w, synth.Table4(lib))
}
