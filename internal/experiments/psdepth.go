package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/packetsw"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{
		ID:     "psdepth",
		Title:  "Packet-switched FIFO depth sweep: buffering dominates",
		Paper:  "Section 7.3 (\"the necessary buffers ... of the packet-switched router\")",
		Data:   dataFrom(psDepthResult),
		Render: renderAs(renderPSDepth),
	})
}

// PSDepthPoint is one sample of the buffer-depth sweep.
type PSDepthPoint struct {
	// Depth is the per-VC FIFO depth in flits.
	Depth int `json:"depth"`
	// AreaMM2 is the router's total area.
	AreaMM2 float64 `json:"area_mm2"`
	// BufferShare is the buffering block's fraction of the total area.
	BufferShare float64 `json:"buffer_share"`
	// IdleUWPerMHz is the clocked-but-idle dynamic power.
	IdleUWPerMHz float64 `json:"idle_uw_per_mhz"`
}

// PSDepthData sweeps the virtual-channel router's FIFO depth and shows
// that buffering is what separates the two architectures: the
// circuit-switched router has no buffers at all, so every flit of depth
// costs the packet-switched router area and idle clock power it can never
// win back.
func PSDepthData() []PSDepthPoint {
	depths := []int{2, 4, 8, 16}
	out, _ := sweep.Map(context.Background(), len(depths), 0, func(i int) (PSDepthPoint, error) {
		p := packetsw.DefaultParams()
		p.Depth = depths[i]
		d := packetsw.Netlist(p, lib)
		buf := d.BlockAreaMM2(lib, packetsw.BlockBuffering)
		return PSDepthPoint{
			Depth:        depths[i],
			AreaMM2:      d.AreaMM2(lib),
			BufferShare:  buf / d.AreaMM2(lib),
			IdleUWPerMHz: d.ClockEnergyPerCycle(lib) / 1e3,
		}, nil
	})
	return out
}

func psDepthResult() ([]PSDepthPoint, error) {
	return PSDepthData(), nil
}

func renderPSDepth(w io.Writer, pts []PSDepthPoint) error {
	fmt.Fprintln(w, "virtual-channel router, 4 VCs, varying per-VC FIFO depth:")
	fmt.Fprintf(w, "%-8s %12s %14s %16s\n", "depth", "area [mm2]", "buffer share", "idle [uW/MHz]")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %12.4f %13.0f%% %16.1f\n",
			p.Depth, p.AreaMM2, p.BufferShare*100, p.IdleUWPerMHz)
	}
	fmt.Fprintln(w, "\nfor reference, the circuit-switched router: 0.0521 mm2 and 11.9 uW/MHz")
	fmt.Fprintln(w, "with zero buffer bits — even a depth-2 packet-switched router cannot")
	fmt.Fprintln(w, "reach it, because the crossbar control and VC state remain")
	return nil
}
