package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md's per-experiment index.
	want := []string{
		"apps", "beload", "crossover", "fig10", "fig9", "fig9gated",
		"freqsweep", "lanes", "latency", "meshpower", "multicast",
		"psdepth", "schedule", "setup", "table1", "table2", "table3",
		"table4", "window",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Data == nil || e.Render == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table4"); !ok {
		t.Fatal("table4 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom experiment")
	}
	if err := RunOne(io.Discard, "nope"); err == nil {
		t.Fatal("RunOne accepted unknown id")
	}
}

func TestTablesRender(t *testing.T) {
	for id, fragments := range map[string][]string{
		"table1": {"640 Mb/s", "512 Mb/s", "416 Mb/s", "384 Mb/s", "72 Mb/s"},
		"table2": {"61.44", "7.68", "Scrambling", "~320"},
		"table3": {"Tile", "East", "North", "West", "Scenarios"},
		"table4": {"circuit switched", "packet switched", "Aethereal",
			"area ratio packet/circuit"},
	} {
		var buf bytes.Buffer
		if err := RunOne(&buf, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, f := range fragments {
			if !strings.Contains(buf.String(), f) {
				t.Errorf("%s output missing %q:\n%s", id, f, buf.String())
			}
		}
	}
}

func TestFig9ShapeChecks(t *testing.T) {
	bars, err := Fig9Data(Fig9Config{Cycles: 1500, FreqMHz: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 8 {
		t.Fatalf("bars = %d, want 8 (2 routers x 4 scenarios)", len(bars))
	}
	var csTot, psTot float64
	for _, b := range bars {
		if b.Power.TotalUW() <= 0 {
			t.Fatalf("bar %s/%s empty", b.Router, b.Scenario)
		}
		if b.Router == "circuit" {
			csTot += b.Power.TotalUW()
		} else {
			psTot += b.Power.TotalUW()
		}
	}
	// The paper's headline: PS consumes ~3.5x more.
	ratio := psTot / csTot
	if ratio < 2.6 || ratio > 4.4 {
		t.Fatalf("power ratio %.2f, paper 3.5 (±25%%)", ratio)
	}
	// Offset domination: scenario I vs IV within 25% for both routers.
	for _, router := range []string{"circuit", "packet"} {
		var i1, i4 float64
		for _, b := range bars {
			if b.Router == router && b.Scenario == "I" {
				i1 = b.Power.DynamicUW()
			}
			if b.Router == router && b.Scenario == "IV" {
				i4 = b.Power.DynamicUW()
			}
		}
		if i4 <= i1 {
			t.Errorf("%s: scenario IV not above I", router)
		}
		if i1/i4 < 0.75 {
			t.Errorf("%s: offset not dominant (I/IV = %.2f)", router, i1/i4)
		}
	}
}

func TestFig10ShapeChecks(t *testing.T) {
	pts, err := Fig10Data(Fig9Config{Cycles: 1000, FreqMHz: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 24 {
		t.Fatalf("points = %d, want 24", len(pts))
	}
	get := func(router, sc string, p float64) float64 {
		for _, pt := range pts {
			if pt.Router == router && pt.Scenario == sc && pt.FlipProb == p {
				return pt.UWPerMHz
			}
		}
		t.Fatalf("missing point %s/%s/%v", router, sc, p)
		return 0
	}
	// Bit flips have only minor influence: the 0%->100% swing stays below
	// 20% of the absolute level for every curve (Section 7.3).
	for _, router := range []string{"circuit", "packet"} {
		for _, sc := range []string{"I", "II", "III", "IV"} {
			lo, mid, hi := get(router, sc, 0), get(router, sc, 0.5), get(router, sc, 1)
			minV, maxV := lo, lo
			for _, v := range []float64{mid, hi} {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
			if (maxV-minV)/maxV > 0.2 {
				t.Errorf("%s/%s: flip sensitivity too large (%.2f..%.2f uW/MHz)",
					router, sc, minV, maxV)
			}
		}
	}
	// The packet-switched router sits well above the circuit-switched one
	// at every point.
	for _, sc := range []string{"I", "II", "III", "IV"} {
		if get("packet", sc, 0.5) < 2*get("circuit", sc, 0.5) {
			t.Errorf("scenario %s: packet router not clearly above circuit router", sc)
		}
	}
	// Scenario separation: more streams, more power (at 50% flips).
	for _, router := range []string{"circuit", "packet"} {
		prev := -1.0
		for _, sc := range []string{"I", "II", "III", "IV"} {
			v := get(router, sc, 0.5)
			if v < prev {
				t.Errorf("%s: scenario ordering violated at %s", router, sc)
			}
			prev = v
		}
	}
}

func TestWindowDataShape(t *testing.T) {
	pts, err := WindowData()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Throughput is non-decreasing in WC and reaches line rate (20 words
	// per 100 cycles) for large windows.
	for i := 1; i < len(pts); i++ {
		if pts[i].ThroughputWordsPer100+0.5 < pts[i-1].ThroughputWordsPer100 {
			t.Errorf("throughput decreased at WC=%d", pts[i].WC)
		}
	}
	last := pts[len(pts)-1]
	if last.ThroughputWordsPer100 < 19 {
		t.Errorf("WC=%d should reach line rate, got %.1f words/100cy",
			last.WC, last.ThroughputWordsPer100)
	}
	if pts[0].ThroughputWordsPer100 > 15 {
		t.Errorf("WC=1 should be round-trip limited, got %.1f words/100cy",
			pts[0].ThroughputWordsPer100)
	}
}

func TestSetupDataBudgets(t *testing.T) {
	r, err := SetupData(25)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerLaneMS >= 1 {
		t.Errorf("per-lane config %.4f ms, paper budget 1 ms", r.PerLaneMS)
	}
	if r.FullRouterMS >= 20 {
		t.Errorf("full router %.4f ms, paper budget 20 ms", r.FullRouterMS)
	}
	if r.PathCommands != 14 { // 2 lanes × 7 hops of the 4x4 cross path
		t.Errorf("commands = %d, want 14", r.PathCommands)
	}
}

func TestCrossoverAlwaysFavoursCircuit(t *testing.T) {
	pts, err := CrossoverData()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.CircuitNJPerWord <= 0 || p.PacketNJPerWord <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.PacketNJPerWord <= p.CircuitNJPerWord {
			t.Errorf("load %.2f: packet router cheaper per word — contradicts the paper", p.Load)
		}
	}
}

func TestRunManyMatchesSequentialByteForByte(t *testing.T) {
	ids := []string{"table3", "psdepth", "setup", "window", "table1"}
	var seq bytes.Buffer
	for _, id := range ids {
		if err := RunOne(&seq, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 8} {
		var par bytes.Buffer
		if err := RunMany(&par, ids, workers); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("workers=%d output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s",
				workers, seq.String(), par.String())
		}
	}
}

func TestRunManyUnknownID(t *testing.T) {
	if err := RunMany(io.Discard, []string{"table3", "nope"}, 2); err == nil {
		t.Fatal("RunMany accepted unknown id")
	}
}

func TestRunAllSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 2000 {
		t.Fatalf("suspiciously short output: %d bytes", buf.Len())
	}
}
