// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment is
// registered under the identifier used in DESIGN.md's per-experiment index
// (table1..table4, fig9, fig10, fig9gated, setup, lanes, window, apps,
// crossover) and renders its result as text, so
//
//	nocbench -run fig9
//
// prints the reproduction of Figure 9 next to the paper's reference
// values. The data behind each rendering is available through exported
// functions for the benchmark harness and the tests.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stdcell"
)

// Experiment is one reproducible artefact of the paper.
type Experiment struct {
	// ID is the identifier used by the CLI and DESIGN.md.
	ID string
	// Title describes the artefact.
	Title string
	// Paper cites the table/figure or section reproduced.
	Paper string
	// Run renders the experiment to w.
	Run func(w io.Writer) error
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll renders every experiment to w, separated by headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e.ID); err != nil {
			return err
		}
	}
	return nil
}

// RunOne renders a single experiment with its header.
func RunOne(w io.Writer, id string) error {
	e, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "=== %s: %s (%s) ===\n", e.ID, e.Title, e.Paper)
	if err := e.Run(w); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}

// lib is the shared technology library; all experiments price hardware
// with the same calibration point.
var lib = stdcell.Default013()

// Lib exposes the library used by the experiments.
func Lib() stdcell.Lib { return lib }
