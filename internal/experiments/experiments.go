// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment is
// registered under the identifier used in DESIGN.md's per-experiment index
// (table1..table4, fig9, fig10, fig9gated, setup, lanes, window, apps,
// crossover, ...) and is split into two halves: a Data function that
// produces the experiment's typed result, and a Render function that
// formats that result as text. So
//
//	nocbench -run fig9
//
// prints the reproduction of Figure 9 next to the paper's reference
// values, while
//
//	nocbench -run fig9 -json
//
// emits the same result as structured JSON. The typed data behind each
// rendering is also available through exported functions for the
// benchmark harness and the tests.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/stdcell"
	"repro/internal/sweep"
)

// Experiment is one reproducible artefact of the paper, split into a
// data-producing half and a rendering half so the same measurement can
// feed both the text reports and structured (JSON) output.
type Experiment struct {
	// ID is the identifier used by the CLI and DESIGN.md.
	ID string
	// Title describes the artefact.
	Title string
	// Paper cites the table/figure or section reproduced.
	Paper string
	// Data produces the experiment's typed result. The concrete type is
	// experiment specific (e.g. []Fig9Bar for fig9) and JSON-marshalable.
	Data func() (any, error)
	// Render formats a value previously produced by Data.
	Render func(w io.Writer, data any) error
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	if e.Data == nil || e.Render == nil {
		panic(fmt.Sprintf("experiments: %q lacks Data or Render", e.ID))
	}
	registry[e.ID] = e
}

// dataFrom adapts a typed data function to the registry's signature.
func dataFrom[T any](f func() (T, error)) func() (any, error) {
	return func() (any, error) { return f() }
}

// renderAs adapts a typed render function to the registry's signature.
func renderAs[T any](f func(io.Writer, T) error) func(io.Writer, any) error {
	return func(w io.Writer, data any) error {
		d, ok := data.(T)
		if !ok {
			return fmt.Errorf("experiments: render expected %T, got %T", d, data)
		}
		return f(w, d)
	}
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// DataFor runs the experiment's measurement and returns its typed result.
func DataFor(id string) (any, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	data, err := e.Data()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	return data, nil
}

// RunAll renders every experiment to w, separated by headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(w, e.ID); err != nil {
			return err
		}
	}
	return nil
}

// RunMany measures the given experiments on a bounded worker pool
// (workers <= 0 means GOMAXPROCS) and renders them to w in the order the
// ids were given — the parallel full-suite path behind `nocbench
// -parallel`. Measurement and rendering are decoupled: every Data
// function runs concurrently, while the text output stays byte-identical
// to the sequential RunOne loop. The worker bound applies to whole
// experiments; grid-shaped experiments additionally parallelize their
// own cells, so transient goroutine counts can exceed the bound (the
// extra goroutines are CPU-bound and cheap — Go's scheduler degrades
// gracefully under that oversubscription).
func RunMany(w io.Writer, ids []string, workers int) error {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			return fmt.Errorf("experiments: unknown experiment %q", id)
		}
		exps[i] = e
	}
	return sweep.Run(context.Background(), len(exps), workers,
		func(_ context.Context, i int) (any, error) {
			data, err := exps[i].Data()
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", exps[i].ID, err)
			}
			return data, nil
		},
		func(i int, data any, err error) error {
			if err != nil {
				return err
			}
			e := exps[i]
			fmt.Fprintf(w, "=== %s: %s (%s) ===\n", e.ID, e.Title, e.Paper)
			if err := e.Render(w, data); err != nil {
				return fmt.Errorf("experiments: %s: %w", e.ID, err)
			}
			fmt.Fprintln(w)
			return nil
		})
}

// RunOne measures and renders a single experiment with its header.
func RunOne(w io.Writer, id string) error {
	e, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "=== %s: %s (%s) ===\n", e.ID, e.Title, e.Paper)
	data, err := e.Data()
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	if err := e.Render(w, data); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	fmt.Fprintln(w)
	return nil
}

// lib is the shared technology library; all experiments price hardware
// with the same calibration point.
var lib = stdcell.Default013()

// Lib exposes the library used by the experiments.
func Lib() stdcell.Lib { return lib }
