package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/packetsw"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:     "latency",
		Title:  "Word latency and jitter: circuit vs packet switching",
		Paper:  "Section 3.3 GT definition (guaranteed bandwidth, bounded latency)",
		Data:   dataFrom(LatencyData),
		Render: renderAs(renderLatency),
	})
}

// LatencyRow compares delivery latency at one configuration.
type LatencyRow struct {
	// Case labels the configuration.
	Case string `json:"case"`
	// MeanCycles and MaxCycles describe the distribution.
	MeanCycles float64 `json:"mean_cycles"`
	MaxCycles  float64 `json:"max_cycles"`
	// Jitter is max - min.
	Jitter float64 `json:"jitter"`
}

// LatencyData measures circuit latency (alone — a circuit cannot have
// contention) and packet latency with and without a competing stream at
// the shared ejection port.
func LatencyData() ([]LatencyRow, error) {
	const words = 300
	var rows []LatencyRow
	c, err := traffic.MeasureCircuitLatency(core.DefaultParams(), 1.0, words)
	if err != nil {
		return nil, err
	}
	rows = append(rows, LatencyRow{
		Case: "circuit, 100% load", MeanCycles: c.Cycles.Mean(),
		MaxCycles: c.Cycles.Max(), Jitter: c.Jitter,
	})
	p1, err := traffic.MeasurePacketLatency(packetsw.DefaultParams(), 1.0, words, false)
	if err != nil {
		return nil, err
	}
	rows = append(rows, LatencyRow{
		Case: "packet, no contention", MeanCycles: p1.Cycles.Mean(),
		MaxCycles: p1.Cycles.Max(), Jitter: p1.Jitter,
	})
	p2, err := traffic.MeasurePacketLatency(packetsw.DefaultParams(), 1.0, words, true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, LatencyRow{
		Case: "packet, shared output", MeanCycles: p2.Cycles.Mean(),
		MaxCycles: p2.Cycles.Max(), Jitter: p2.Jitter,
	})
	return rows, nil
}

func renderLatency(w io.Writer, rows []LatencyRow) error {
	fmt.Fprintln(w, "one router, words timestamped push-to-pop, cycles at the router clock:")
	fmt.Fprintf(w, "%-24s %10s %10s %10s\n", "case", "mean", "max", "jitter")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10.1f %10.1f %10.1f\n", r.Case, r.MeanCycles, r.MaxCycles, r.Jitter)
	}
	fmt.Fprintln(w, "\nthe established circuit delivers every word with identical latency")
	fmt.Fprintln(w, "(serialization + pipeline, zero jitter): the strongest form of the GT")
	fmt.Fprintln(w, "class's \"bounded latency\". The packet-switched router stays bounded but")
	fmt.Fprintln(w, "jitters as soon as another stream shares the output port")
	return nil
}
