package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:     "freqsweep",
		Title:  "Power vs clock frequency, both routers",
		Paper:  "extension of Section 7.2 (the paper fixes 25 MHz)",
		Data:   dataFrom(freqSweepResult),
		Render: renderAs(renderFreqSweep),
	})
}

// FreqPoint is one sample of the frequency sweep.
type FreqPoint struct {
	// FreqMHz is the clock.
	FreqMHz float64 `json:"freq_mhz"`
	// CircuitUW and PacketUW are total power under Scenario III.
	CircuitUW float64 `json:"circuit_uw"`
	PacketUW  float64 `json:"packet_uw"`
	// CircuitStaticUW isolates the frequency-independent part.
	CircuitStaticUW float64 `json:"circuit_static_uw"`
}

// FreqSweepResult is the typed result of the freqsweep experiment.
type FreqSweepResult struct {
	// Points are the sweep samples.
	Points []FreqPoint `json:"points"`
	// CircuitLimitMHz and PacketLimitMHz are the Table 4 synthesis limits.
	CircuitLimitMHz float64 `json:"circuit_limit_mhz"`
	PacketLimitMHz  float64 `json:"packet_limit_mhz"`
}

// FreqSweepData measures Scenario III total power across clocks up to
// each router's synthesis limit, one sweep cell per clock in parallel.
func FreqSweepData() ([]FreqPoint, []float64, error) {
	sc := traffic.Scenarios()[2]
	pat := traffic.Pattern{FlipProb: 0.5, Load: 1}
	freqs := []float64{25, 50, 100, 200, 400}
	pts, err := sweep.Map(context.Background(), len(freqs), 0, func(i int) (FreqPoint, error) {
		f := freqs[i]
		rc := traffic.RunConfig{Cycles: 2000, FreqMHz: f, Lib: lib}
		c, err := traffic.RunCircuit(sc, pat, rc)
		if err != nil {
			return FreqPoint{}, err
		}
		p, err := traffic.RunPacket(sc, pat, rc)
		if err != nil {
			return FreqPoint{}, err
		}
		return FreqPoint{
			FreqMHz:   f,
			CircuitUW: c.Power.TotalUW(), PacketUW: p.Power.TotalUW(),
			CircuitStaticUW: c.Power.StaticUW,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	rows := synth.Table4(lib)
	limits := []float64{rows[0].MaxFreqMHz, rows[1].MaxFreqMHz}
	return pts, limits, nil
}

func freqSweepResult() (FreqSweepResult, error) {
	pts, limits, err := FreqSweepData()
	if err != nil {
		return FreqSweepResult{}, err
	}
	return FreqSweepResult{
		Points:          pts,
		CircuitLimitMHz: limits[0],
		PacketLimitMHz:  limits[1],
	}, nil
}

func renderFreqSweep(w io.Writer, res FreqSweepResult) error {
	fmt.Fprintln(w, "Scenario III, random data, 100% load; total power [uW]:")
	fmt.Fprintf(w, "%-10s %14s %14s %10s\n", "f [MHz]", "circuit", "packet", "ratio")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-10.0f %14.0f %14.0f %10.2f\n",
			p.FreqMHz, p.CircuitUW, p.PacketUW, p.PacketUW/p.CircuitUW)
	}
	fmt.Fprintf(w, "\nsynthesis limits (Table 4): circuit %.0f MHz, packet %.0f MHz —\n",
		res.CircuitLimitMHz, res.PacketLimitMHz)
	fmt.Fprintln(w, "the packet-switched router cannot follow beyond ~507 MHz; the power")
	fmt.Fprintln(w, "ratio is frequency independent (dynamic dominates and both scale")
	fmt.Fprintln(w, "linearly), so the 3.5x advantage holds at any operating point")
	return nil
}
