package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("module root not found")
		}
		dir = parent
	}
}

// TestDesignDocIndexesEveryExperiment keeps DESIGN.md's per-experiment
// index from rotting: every registered experiment must appear there, and
// every experiment must also be runnable from the benchmark file.
func TestDesignDocIndexesEveryExperiment(t *testing.T) {
	root := repoRoot(t)
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	experimentsDoc := string(design)
	for _, e := range All() {
		if !strings.Contains(experimentsDoc, "`"+e.ID+"`") {
			t.Errorf("DESIGN.md does not index experiment %q", e.ID)
		}
	}
}

// TestExperimentsDocMentionsPaperArtefacts checks EXPERIMENTS.md covers
// every paper artefact (the four tables and two figures).
func TestExperimentsDocMentionsPaperArtefacts(t *testing.T) {
	root := repoRoot(t)
	doc, err := os.ReadFile(filepath.Join(root, "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 9", "Figure 10",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("EXPERIMENTS.md missing section for %q", want)
		}
	}
}
