package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/packetsw"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func init() {
	register(Experiment{
		ID:     "multicast",
		Title:  "Multicast: crossbar fan-out vs packet replication",
		Paper:  "implied by the fully connected crossbar of Section 5.1",
		Data:   dataFrom(MulticastData),
		Render: renderAs(renderMulticast),
	})
}

// MulticastPoint compares delivering one stream to k destinations.
type MulticastPoint struct {
	// Fanout is the destination count.
	Fanout int `json:"fanout"`
	// CircuitUW and PacketUW are total router power at 25 MHz.
	CircuitUW float64 `json:"circuit_uw"`
	PacketUW  float64 `json:"packet_uw"`
	// PacketInjectedWords counts words the packet-switched source had to
	// inject (k copies); the circuit-switched source always injects one.
	PacketInjectedWords uint64 `json:"packet_injected_words"`
}

// MulticastData streams one 80 Mbit/s source to k ∈ {1,2,3} neighbour
// ports. The circuit-switched crossbar fans out for free — several output
// lanes select the same input lane — while the packet-switched source
// must inject one packet per destination, paying bandwidth and buffer
// energy k times.
func MulticastData() ([]MulticastPoint, error) {
	dests := []core.Port{core.East, core.South, core.West}
	return sweep.Map(context.Background(), 3, 0, func(cell int) (MulticastPoint, error) {
		k := cell + 1
		// Circuit switched: one tile lane feeding k output lanes.
		cp := core.DefaultParams()
		a := core.NewAssembly(cp, core.AssemblyOptions{Flow: core.FlowParams{}, RxBufCap: 8})
		cm := power.NewMeter(core.Netlist(cp, lib), lib, 25)
		a.BindMeter(cm, lib, false)
		for i := 0; i < k; i++ {
			if err := a.EstablishLocal(core.Circuit{
				In:  core.LaneID{Port: core.Tile, Lane: 0},
				Out: core.LaneID{Port: dests[i], Lane: 0},
			}); err != nil {
				return MulticastPoint{}, err
			}
		}
		w := sim.NewWorld(sim.WithKernel(sim.KernelGated))
		w.Add(a)
		gen := bitvec.NewFlipGen(16, 0.5, 9)
		w.Add(&sim.Func{OnEval: func() {
			if a.Tx[0].Ready() {
				a.Tx[0].Push(core.DataWord(uint16(gen.Next())))
			}
		}})
		const cycles = 3000
		w.Run(cycles)
		circuitUW := cm.Report("cs").TotalUW()

		// Packet switched: k copies injected on k VCs.
		pp := packetsw.DefaultParams()
		r := packetsw.NewRouter(pp, packetsw.PortRoute)
		pm := power.NewMeter(packetsw.Netlist(pp, lib), lib, 25)
		r.BindMeter(pm)
		pw := sim.NewWorld(sim.WithKernel(sim.KernelGated))
		pw.Add(r)
		pgen := bitvec.NewFlipGen(16, 0.5, 9)
		injected := uint64(0)
		cyc := 0
		pw.Add(&sim.Func{OnEval: func() {
			// One source word per 5 cycles, replicated to k destinations.
			if cyc%5 == 0 {
				d := uint16(pgen.Next())
				for i := 0; i < k; i++ {
					if r.Inject(packetsw.Flit{Kind: packetsw.Head, VC: i,
						Data: packetsw.HeadData(dests[i])}) {
						injected++
					}
					r.Inject(packetsw.Flit{Kind: packetsw.Tail, VC: i, Data: d})
				}
			}
			cyc++
		}})
		pw.Run(cycles)
		return MulticastPoint{
			Fanout:              k,
			CircuitUW:           circuitUW,
			PacketUW:            pm.Report("ps").TotalUW(),
			PacketInjectedWords: injected,
		}, nil
	})
}

func renderMulticast(w io.Writer, pts []MulticastPoint) error {
	fmt.Fprintln(w, "one 80 Mbit/s source to k destinations, 25 MHz, total power [uW]:")
	fmt.Fprintf(w, "%-8s %14s %14s %16s\n", "fanout", "circuit", "packet", "PS copies sent")
	base := pts[0]
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %14.0f %14.0f %16d\n",
			p.Fanout, p.CircuitUW, p.PacketUW, p.PacketInjectedWords)
	}
	csGrowth := pts[2].CircuitUW - base.CircuitUW
	psGrowth := pts[2].PacketUW - base.PacketUW
	fmt.Fprintf(w, "\nextra power for 2 more destinations: circuit +%.0f uW, packet +%.0f uW "+
		"(%.1fx more), and 3x the injection bandwidth —\n",
		csGrowth, psGrowth, psGrowth/csGrowth)
	fmt.Fprintln(w, "the crossbar replicates by letting several output lanes select the same")
	fmt.Fprintln(w, "input lane (one register per extra copy); the packet-switched source")
	fmt.Fprintln(w, "must inject, buffer and arbitrate every copy separately")
	return nil
}
