package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/benet"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig9gated",
		Title: "Clock gating ablation: Figure 9 with configuration-driven gating",
		Paper: "Sections 7.3/8 (future work)",
		Run:   runFig9Gated,
	})
	register(Experiment{
		ID:    "setup",
		Title: "Configuration latency over the BE network",
		Paper: "Section 5.1 (1 ms/lane, 20 ms/router budgets)",
		Run:   runSetup,
	})
	register(Experiment{
		ID:    "lanes",
		Title: "Lane count/width design sweep",
		Paper: "Section 5.1 (adjustable parameters)",
		Run:   runLanes,
	})
	register(Experiment{
		ID:    "window",
		Title: "Window-counter flow control sweep",
		Paper: "Section 5.2",
		Run:   runWindow,
	})
	register(Experiment{
		ID:    "apps",
		Title: "Run-time mapping of the three wireless applications",
		Paper: "Sections 3 and 7.3",
		Run:   runApps,
	})
	register(Experiment{
		ID:    "crossover",
		Title: "Load sweep: energy per transported bit, both routers",
		Paper: "Discussion (Section 7.3)",
		Run:   runCrossover,
	})
}

func runFig9Gated(w io.Writer) error {
	base := DefaultFig9Config()
	base.Cycles = 3000
	ungated, err := Fig9Data(base)
	if err != nil {
		return err
	}
	gcfg := base
	gcfg.Gated = true
	gated, err := Fig9Data(gcfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "circuit-switched router, dynamic power [uW] at 25 MHz, random data:")
	fmt.Fprintf(w, "%-9s %14s %14s %10s\n", "Scenario", "ungated", "clock gated", "saving")
	for i, b := range ungated {
		if b.Router != "circuit" {
			continue
		}
		g := gated[i]
		fmt.Fprintf(w, "%-9s %11.1f uW %11.1f uW %9.0f%%\n",
			b.Scenario, b.Power.DynamicUW(), g.Power.DynamicUW(),
			(1-g.Power.DynamicUW()/b.Power.DynamicUW())*100)
	}
	fmt.Fprintln(w, "\nwith gating the offset disappears and power follows the stream count,")
	fmt.Fprintln(w, "confirming the paper's expectation (\"If clock gating is used, we expect")
	fmt.Fprintln(w, "that this offset will decrease\")")
	return nil
}

// SetupResult is the data behind the setup experiment.
type SetupResult struct {
	// PathCommands and PathCycles describe configuring one 2-lane
	// connection across the mesh.
	PathCommands int
	PathCycles   uint64
	// PerLaneMS is the worst per-command latency in ms at the BE clock.
	PerLaneMS float64
	// FullRouterMS is the full 20-lane reconfiguration time in ms.
	FullRouterMS float64
	// FreqMHz is the BE network clock.
	FreqMHz float64
}

// SetupData measures configuration delivery over the BE network on a 4×4
// mesh at the given clock.
func SetupData(freqMHz float64) (SetupResult, error) {
	m := mesh.New(4, 4, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, freqMHz)
	be := benet.New(4, 4, packetsw.DefaultParams())
	bc := &ccn.BEConfigurator{Net: be, Mesh: m, CCNNode: mesh.Coord{X: 0, Y: 0}}
	conn, err := mgr.Allocate(mesh.Coord{X: 0, Y: 3}, mesh.Coord{X: 3, Y: 0}, 160)
	if err != nil {
		return SetupResult{}, err
	}
	res, err := bc.Configure(conn)
	if err != nil {
		return SetupResult{}, err
	}
	full, err := bc.FullRouterReconfig(mesh.Coord{X: 2, Y: 2})
	if err != nil {
		return SetupResult{}, err
	}
	return SetupResult{
		PathCommands: res.Commands,
		PathCycles:   res.Cycles,
		PerLaneMS:    res.MaxCommandTimeMS(freqMHz),
		FullRouterMS: full.TimeMS(freqMHz),
		FreqMHz:      freqMHz,
	}, nil
}

func runSetup(w io.Writer) error {
	for _, f := range []float64{25, 100} {
		r, err := SetupData(f)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "BE network at %.0f MHz (4x4 mesh, CCN at (0,0)):\n", f)
		fmt.Fprintf(w, "  2-lane cross-mesh connection: %d commands in %d cycles (%.4f ms)\n",
			r.PathCommands, r.PathCycles, float64(r.PathCycles)/f/1e3)
		fmt.Fprintf(w, "  worst per-lane command latency: %.4f ms (paper budget: < 1 ms)\n",
			r.PerLaneMS)
		fmt.Fprintf(w, "  full 20-lane router reconfiguration: %.4f ms (paper budget: < 20 ms)\n",
			r.FullRouterMS)
	}
	return nil
}

func runLanes(w io.Writer) error {
	pts := synth.LaneSweep(lib, []int{2, 4, 6, 8}, []int{2, 4, 8})
	fmt.Fprintf(w, "%-6s %-6s %12s %10s %14s %9s\n",
		"lanes", "width", "area [mm2]", "fmax", "link bw", "streams")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-6d %12.4f %6.0f MHz %9.1f Gb/s %9d\n",
			p.Lanes, p.Width, p.AreaMM2, p.MaxFreqMHz, p.LinkGbps, p.Streams)
	}
	fmt.Fprintln(w, "\nthe paper's 4x4-bit choice balances concurrent streams against area and")
	fmt.Fprintln(w, "matches the packet-switched router's four virtual channels")
	return nil
}

// WindowPoint is one sample of the window-counter sweep.
type WindowPoint struct {
	// WC and X are the flow parameters.
	WC, X int
	// ThroughputWordsPer100 is the delivered words per 100 cycles.
	ThroughputWordsPer100 float64
	// Stalls counts source stall cycles.
	Stalls uint64
}

// WindowData sweeps the window counter across a two-router circuit with a
// consumer that drains at line rate, showing the window size needed to
// cover the round-trip.
func WindowData() ([]WindowPoint, error) {
	var out []WindowPoint
	for _, wc := range []int{1, 2, 4, 8, 16} {
		x := wc / 2
		if x < 1 {
			x = 1
		}
		p := core.DefaultParams()
		flow := core.FlowParams{UseAck: true, WC: wc, X: x}
		opt := core.AssemblyOptions{Flow: flow, RxBufCap: wc}
		a := core.NewAssembly(p, opt)
		b := core.NewAssembly(p, opt)
		for l := 0; l < p.LanesPerPort; l++ {
			ae := p.Global(core.LaneID{Port: core.East, Lane: l})
			bw := p.Global(core.LaneID{Port: core.West, Lane: l})
			b.R.ConnectIn(bw, &a.R.Out[ae])
			a.R.ConnectAckIn(ae, &b.R.AckOut[bw])
		}
		if err := a.EstablishLocal(core.Circuit{
			In: core.LaneID{Port: core.Tile, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 0},
		}); err != nil {
			return nil, err
		}
		if err := b.EstablishLocal(core.Circuit{
			In: core.LaneID{Port: core.West, Lane: 0}, Out: core.LaneID{Port: core.Tile, Lane: 0},
		}); err != nil {
			return nil, err
		}
		world := sim.NewWorld()
		world.Add(a, b)
		n, recv := 0, 0
		world.Add(&sim.Func{OnEval: func() {
			if a.Tx[0].Ready() {
				if a.Tx[0].Push(core.DataWord(uint16(n))) {
					n++
				}
			}
			if _, ok := b.Rx[0].Pop(); ok {
				recv++
			}
		}})
		const cycles = 3000
		world.Run(cycles)
		out = append(out, WindowPoint{
			WC: wc, X: x,
			ThroughputWordsPer100: float64(recv) / cycles * 100,
			Stalls:                a.Tx[0].Stalled(),
		})
		if b.Rx[0].Dropped() != 0 {
			return nil, fmt.Errorf("experiments: window WC=%d dropped words", wc)
		}
	}
	return out, nil
}

func runWindow(w io.Writer) error {
	pts, err := WindowData()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "two-router circuit, consumer at line rate, 3000 cycles:")
	fmt.Fprintf(w, "%-5s %-5s %22s %10s\n", "WC", "X", "words per 100 cycles", "stalls")
	for _, p := range pts {
		fmt.Fprintf(w, "%-5d %-5d %22.1f %10d\n", p.WC, p.X, p.ThroughputWordsPer100, p.Stalls)
	}
	fmt.Fprintln(w, "\nline rate is 20 words per 100 cycles (one word per 5 cycles); small")
	fmt.Fprintln(w, "windows cannot cover the ack round-trip and throttle the source, larger")
	fmt.Fprintln(w, "windows reach line rate with zero destination overflow")
	return nil
}

func runApps(w io.Writer) error {
	type appCase struct {
		name    string
		graph   *kpn.Graph
		freqMHz float64
		w, h    int
	}
	cases := []appCase{
		{"HiperLAN/2 (QAM-64)", apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3]), 200, 4, 3},
		{"UMTS (4 fingers, SF4)", apps.UMTSGraph(apps.DefaultUMTS()), 100, 4, 3},
		{"DRM", apps.DRMGraph(), 25, 4, 3},
	}
	for _, c := range cases {
		m := mesh.New(c.w, c.h, core.DefaultParams(), core.DefaultAssemblyOptions())
		mgr := ccn.NewManager(m, c.freqMHz)
		mp, err := mgr.MapApplication(c.graph)
		if err != nil {
			return fmt.Errorf("mapping %s: %w", c.name, err)
		}
		var laneSum int
		for _, conn := range mp.Connections {
			laneSum += conn.Lanes
		}
		fmt.Fprintf(w, "%-24s %2d processes on %dx%d mesh at %3.0f MHz: "+
			"%2d GT channels, %2d lane paths, %2d hops, util %.1f%%\n",
			c.name, len(c.graph.Processes), c.w, c.h, c.freqMHz,
			len(mp.Connections), laneSum, mp.TotalHops(), mgr.LinkUtilization()*100)
		fmt.Fprintf(w, "%-24s   GT %.1f Mbit/s, BE share %.2f%% (< 5%% per Section 3.3), "+
			"heaviest channel %.0f Mbit/s -> %d lane(s)\n",
			"", c.graph.TotalBandwidthMbps(kpn.GT), c.graph.BEFraction()*100,
			c.graph.MaxChannelMbps(), mgr.LanesFor(c.graph.MaxChannelMbps()))
	}
	fmt.Fprintln(w, "\nall three applications of Section 3 map onto the circuit-switched NoC")
	fmt.Fprintln(w, "with guaranteed-throughput lanes (paper Section 7.3, second bullet)")
	return nil
}

// CrossoverPoint is one sample of the load sweep.
type CrossoverPoint struct {
	// Load is the offered load fraction.
	Load float64
	// CircuitNJPerWord and PacketNJPerWord are total energy per
	// delivered word in nanojoules.
	CircuitNJPerWord float64
	PacketNJPerWord  float64
}

// CrossoverData sweeps the offered load on Scenario III and reports the
// energy per transported word for both routers — the efficiency view of
// the paper's comparison.
func CrossoverData() ([]CrossoverPoint, error) {
	rc := traffic.RunConfig{Cycles: 4000, FreqMHz: 25, Lib: lib}
	sc := traffic.Scenarios()[2]
	var out []CrossoverPoint
	for _, load := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		pat := traffic.Pattern{FlipProb: 0.5, Load: load}
		cr, err := traffic.RunCircuit(sc, pat, rc)
		if err != nil {
			return nil, err
		}
		pr, err := traffic.RunPacket(sc, pat, rc)
		if err != nil {
			return nil, err
		}
		t := float64(rc.Cycles) / rc.FreqMHz // µs
		energyNJ := func(p float64) float64 { return p * t / 1e3 }
		cp := CrossoverPoint{Load: load}
		if cr.WordsSent > 0 {
			cp.CircuitNJPerWord = energyNJ(cr.Power.TotalUW()) / float64(cr.WordsSent)
		}
		if pr.WordsSent > 0 {
			cp.PacketNJPerWord = energyNJ(pr.Power.TotalUW()) / float64(pr.WordsSent)
		}
		out = append(out, cp)
	}
	return out, nil
}

func runCrossover(w io.Writer) error {
	pts, err := CrossoverData()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Scenario III (streams 1+2), 25 MHz, random data; total energy per word:")
	fmt.Fprintf(w, "%-8s %20s %20s %8s\n", "load", "circuit [nJ/word]", "packet [nJ/word]", "ratio")
	var ratios stats.Series
	for _, p := range pts {
		r := p.PacketNJPerWord / p.CircuitNJPerWord
		ratios.Add(r)
		fmt.Fprintf(w, "%-8.2f %20.2f %20.2f %8.2f\n",
			p.Load, p.CircuitNJPerWord, p.PacketNJPerWord, r)
	}
	fmt.Fprintf(w, "\nmean energy advantage %.2fx; at every load the circuit-switched router\n",
		ratios.Mean())
	fmt.Fprintln(w, "transports a word cheaper — there is no crossover, matching the paper's")
	fmt.Fprintln(w, "conclusion for stream-dominated traffic")
	return nil
}
