package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/apps"
	"repro/internal/benet"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/kpn"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func init() {
	register(Experiment{
		ID:     "fig9gated",
		Title:  "Clock gating ablation: Figure 9 with configuration-driven gating",
		Paper:  "Sections 7.3/8 (future work)",
		Data:   dataFrom(fig9GatedResult),
		Render: renderAs(renderFig9Gated),
	})
	register(Experiment{
		ID:     "setup",
		Title:  "Configuration latency over the BE network",
		Paper:  "Section 5.1 (1 ms/lane, 20 ms/router budgets)",
		Data:   dataFrom(setupResult),
		Render: renderAs(renderSetup),
	})
	register(Experiment{
		ID:     "lanes",
		Title:  "Lane count/width design sweep",
		Paper:  "Section 5.1 (adjustable parameters)",
		Data:   dataFrom(lanesResult),
		Render: renderAs(renderLanes),
	})
	register(Experiment{
		ID:     "window",
		Title:  "Window-counter flow control sweep",
		Paper:  "Section 5.2",
		Data:   dataFrom(WindowData),
		Render: renderAs(renderWindow),
	})
	register(Experiment{
		ID:     "apps",
		Title:  "Run-time mapping of the three wireless applications",
		Paper:  "Sections 3 and 7.3",
		Data:   dataFrom(AppsData),
		Render: renderAs(renderApps),
	})
	register(Experiment{
		ID:     "crossover",
		Title:  "Load sweep: energy per transported bit, both routers",
		Paper:  "Discussion (Section 7.3)",
		Data:   dataFrom(CrossoverData),
		Render: renderAs(renderCrossover),
	})
}

// Fig9GatedResult pairs the ungated and gated Figure 9 runs.
type Fig9GatedResult struct {
	// Config is the shared (ungated) setup.
	Config Fig9Config `json:"config"`
	// Ungated and Gated hold the eight bars of each run.
	Ungated []Fig9Bar `json:"ungated"`
	Gated   []Fig9Bar `json:"gated"`
}

func fig9GatedResult() (Fig9GatedResult, error) {
	base := DefaultFig9Config()
	base.Cycles = 3000
	ungated, err := Fig9Data(base)
	if err != nil {
		return Fig9GatedResult{}, err
	}
	gcfg := base
	gcfg.Gated = true
	gated, err := Fig9Data(gcfg)
	if err != nil {
		return Fig9GatedResult{}, err
	}
	return Fig9GatedResult{Config: base, Ungated: ungated, Gated: gated}, nil
}

func renderFig9Gated(w io.Writer, res Fig9GatedResult) error {
	fmt.Fprintln(w, "circuit-switched router, dynamic power [uW] at 25 MHz, random data:")
	fmt.Fprintf(w, "%-9s %14s %14s %10s\n", "Scenario", "ungated", "clock gated", "saving")
	for i, b := range res.Ungated {
		if b.Router != "circuit" {
			continue
		}
		g := res.Gated[i]
		fmt.Fprintf(w, "%-9s %11.1f uW %11.1f uW %9.0f%%\n",
			b.Scenario, b.Power.DynamicUW(), g.Power.DynamicUW(),
			(1-g.Power.DynamicUW()/b.Power.DynamicUW())*100)
	}
	fmt.Fprintln(w, "\nwith gating the offset disappears and power follows the stream count,")
	fmt.Fprintln(w, "confirming the paper's expectation (\"If clock gating is used, we expect")
	fmt.Fprintln(w, "that this offset will decrease\")")
	return nil
}

// SetupResult is the data behind the setup experiment.
type SetupResult struct {
	// PathCommands and PathCycles describe configuring one 2-lane
	// connection across the mesh.
	PathCommands int    `json:"path_commands"`
	PathCycles   uint64 `json:"path_cycles"`
	// PerLaneMS is the worst per-command latency in ms at the BE clock.
	PerLaneMS float64 `json:"per_lane_ms"`
	// FullRouterMS is the full 20-lane reconfiguration time in ms.
	FullRouterMS float64 `json:"full_router_ms"`
	// FreqMHz is the BE network clock.
	FreqMHz float64 `json:"freq_mhz"`
}

// SetupData measures configuration delivery over the BE network on a 4×4
// mesh at the given clock.
func SetupData(freqMHz float64) (SetupResult, error) {
	m := mesh.New(4, 4, core.DefaultParams(), core.DefaultAssemblyOptions())
	mgr := ccn.NewManager(m, freqMHz)
	be := benet.New(4, 4, packetsw.DefaultParams())
	bc := &ccn.BEConfigurator{Net: be, Mesh: m, CCNNode: mesh.Coord{X: 0, Y: 0}}
	conn, err := mgr.Allocate(mesh.Coord{X: 0, Y: 3}, mesh.Coord{X: 3, Y: 0}, 160)
	if err != nil {
		return SetupResult{}, err
	}
	res, err := bc.Configure(conn)
	if err != nil {
		return SetupResult{}, err
	}
	full, err := bc.FullRouterReconfig(mesh.Coord{X: 2, Y: 2})
	if err != nil {
		return SetupResult{}, err
	}
	return SetupResult{
		PathCommands: res.Commands,
		PathCycles:   res.Cycles,
		PerLaneMS:    res.MaxCommandTimeMS(freqMHz),
		FullRouterMS: full.TimeMS(freqMHz),
		FreqMHz:      freqMHz,
	}, nil
}

func setupResult() ([]SetupResult, error) {
	freqs := []float64{25, 100}
	return sweep.Map(context.Background(), len(freqs), 0, func(i int) (SetupResult, error) {
		return SetupData(freqs[i])
	})
}

func renderSetup(w io.Writer, results []SetupResult) error {
	for _, r := range results {
		fmt.Fprintf(w, "BE network at %.0f MHz (4x4 mesh, CCN at (0,0)):\n", r.FreqMHz)
		fmt.Fprintf(w, "  2-lane cross-mesh connection: %d commands in %d cycles (%.4f ms)\n",
			r.PathCommands, r.PathCycles, float64(r.PathCycles)/r.FreqMHz/1e3)
		fmt.Fprintf(w, "  worst per-lane command latency: %.4f ms (paper budget: < 1 ms)\n",
			r.PerLaneMS)
		fmt.Fprintf(w, "  full 20-lane router reconfiguration: %.4f ms (paper budget: < 20 ms)\n",
			r.FullRouterMS)
	}
	return nil
}

func lanesResult() ([]synth.LaneSweepPoint, error) {
	return synth.DefaultLaneSweep(lib), nil
}

func renderLanes(w io.Writer, pts []synth.LaneSweepPoint) error {
	fmt.Fprintf(w, "%-6s %-6s %12s %10s %14s %9s\n",
		"lanes", "width", "area [mm2]", "fmax", "link bw", "streams")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6d %-6d %12.4f %6.0f MHz %9.1f Gb/s %9d\n",
			p.Lanes, p.Width, p.AreaMM2, p.MaxFreqMHz, p.LinkGbps, p.Streams)
	}
	fmt.Fprintln(w, "\nthe paper's 4x4-bit choice balances concurrent streams against area and")
	fmt.Fprintln(w, "matches the packet-switched router's four virtual channels")
	return nil
}

// WindowPoint is one sample of the window-counter sweep.
type WindowPoint struct {
	// WC and X are the flow parameters.
	WC int `json:"wc"`
	X  int `json:"x"`
	// ThroughputWordsPer100 is the delivered words per 100 cycles.
	ThroughputWordsPer100 float64 `json:"throughput_words_per_100"`
	// Stalls counts source stall cycles.
	Stalls uint64 `json:"stalls"`
}

// WindowData sweeps the window counter across a two-router circuit with a
// consumer that drains at line rate, showing the window size needed to
// cover the round-trip. Each window size is an independent simulation;
// they run as parallel sweep cells.
func WindowData() ([]WindowPoint, error) {
	wcs := []int{1, 2, 4, 8, 16}
	return sweep.Map(context.Background(), len(wcs), 0, func(i int) (WindowPoint, error) {
		wc := wcs[i]
		x := wc / 2
		if x < 1 {
			x = 1
		}
		p := core.DefaultParams()
		flow := core.FlowParams{UseAck: true, WC: wc, X: x}
		opt := core.AssemblyOptions{Flow: flow, RxBufCap: wc}
		a := core.NewAssembly(p, opt)
		b := core.NewAssembly(p, opt)
		for l := 0; l < p.LanesPerPort; l++ {
			ae := p.Global(core.LaneID{Port: core.East, Lane: l})
			bw := p.Global(core.LaneID{Port: core.West, Lane: l})
			b.R.ConnectIn(bw, &a.R.Out[ae])
			a.R.ConnectAckIn(ae, &b.R.AckOut[bw])
		}
		if err := a.EstablishLocal(core.Circuit{
			In: core.LaneID{Port: core.Tile, Lane: 0}, Out: core.LaneID{Port: core.East, Lane: 0},
		}); err != nil {
			return WindowPoint{}, err
		}
		if err := b.EstablishLocal(core.Circuit{
			In: core.LaneID{Port: core.West, Lane: 0}, Out: core.LaneID{Port: core.Tile, Lane: 0},
		}); err != nil {
			return WindowPoint{}, err
		}
		// The gated kernel skips neither assembly here (both carry an
		// established circuit), but the explicit choice documents that the
		// sweep is kernel-agnostic by construction.
		world := sim.NewWorld(sim.WithKernel(sim.KernelGated))
		world.Add(a, b)
		n, recv := 0, 0
		world.Add(&sim.Func{OnEval: func() {
			if a.Tx[0].Ready() {
				if a.Tx[0].Push(core.DataWord(uint16(n))) {
					n++
				}
			}
			if _, ok := b.Rx[0].Pop(); ok {
				recv++
			}
		}})
		const cycles = 3000
		world.Run(cycles)
		if b.Rx[0].Dropped() != 0 {
			return WindowPoint{}, fmt.Errorf("experiments: window WC=%d dropped words", wc)
		}
		return WindowPoint{
			WC: wc, X: x,
			ThroughputWordsPer100: float64(recv) / cycles * 100,
			Stalls:                a.Tx[0].Stalled(),
		}, nil
	})
}

func renderWindow(w io.Writer, pts []WindowPoint) error {
	fmt.Fprintln(w, "two-router circuit, consumer at line rate, 3000 cycles:")
	fmt.Fprintf(w, "%-5s %-5s %22s %10s\n", "WC", "X", "words per 100 cycles", "stalls")
	for _, p := range pts {
		fmt.Fprintf(w, "%-5d %-5d %22.1f %10d\n", p.WC, p.X, p.ThroughputWordsPer100, p.Stalls)
	}
	fmt.Fprintln(w, "\nline rate is 20 words per 100 cycles (one word per 5 cycles); small")
	fmt.Fprintln(w, "windows cannot cover the ack round-trip and throttle the source, larger")
	fmt.Fprintln(w, "windows reach line rate with zero destination overflow")
	return nil
}

// AppMapping summarizes one wireless application mapped onto the mesh.
type AppMapping struct {
	// Name labels the application and its operating point.
	Name string `json:"name"`
	// Processes is the process count of the KPN graph.
	Processes int `json:"processes"`
	// MeshW, MeshH and FreqMHz describe the target NoC.
	MeshW   int     `json:"mesh_w"`
	MeshH   int     `json:"mesh_h"`
	FreqMHz float64 `json:"freq_mhz"`
	// Channels and LanePaths count GT connections and allocated lane
	// paths; Hops is the route length total.
	Channels  int `json:"channels"`
	LanePaths int `json:"lane_paths"`
	Hops      int `json:"hops"`
	// LinkUtilization is the fraction of mesh lane capacity in use.
	LinkUtilization float64 `json:"link_utilization"`
	// GTMbps and BEFraction characterize the traffic mix.
	GTMbps     float64 `json:"gt_mbps"`
	BEFraction float64 `json:"be_fraction"`
	// MaxChannelMbps and MaxChannelLanes describe the heaviest stream.
	MaxChannelMbps  float64 `json:"max_channel_mbps"`
	MaxChannelLanes int     `json:"max_channel_lanes"`
}

// AppsData maps the three wireless applications of Section 3 onto the
// circuit-switched NoC via the CCN and reports the allocation summary.
func AppsData() ([]AppMapping, error) {
	type appCase struct {
		name    string
		graph   *kpn.Graph
		freqMHz float64
		w, h    int
	}
	cases := []appCase{
		{"HiperLAN/2 (QAM-64)", apps.HiperLANGraph(apps.DefaultHiperLAN(), apps.HiperLANModulations()[3]), 200, 4, 3},
		{"UMTS (4 fingers, SF4)", apps.UMTSGraph(apps.DefaultUMTS()), 100, 4, 3},
		{"DRM", apps.DRMGraph(), 25, 4, 3},
	}
	var out []AppMapping
	for _, c := range cases {
		m := mesh.New(c.w, c.h, core.DefaultParams(), core.DefaultAssemblyOptions())
		mgr := ccn.NewManager(m, c.freqMHz)
		mp, err := mgr.MapApplication(c.graph)
		if err != nil {
			return nil, fmt.Errorf("mapping %s: %w", c.name, err)
		}
		var laneSum int
		for _, conn := range mp.Connections {
			laneSum += conn.Lanes
		}
		out = append(out, AppMapping{
			Name:            c.name,
			Processes:       len(c.graph.Processes),
			MeshW:           c.w,
			MeshH:           c.h,
			FreqMHz:         c.freqMHz,
			Channels:        len(mp.Connections),
			LanePaths:       laneSum,
			Hops:            mp.TotalHops(),
			LinkUtilization: mgr.LinkUtilization(),
			GTMbps:          c.graph.TotalBandwidthMbps(kpn.GT),
			BEFraction:      c.graph.BEFraction(),
			MaxChannelMbps:  c.graph.MaxChannelMbps(),
			MaxChannelLanes: mgr.LanesFor(c.graph.MaxChannelMbps()),
		})
	}
	return out, nil
}

func renderApps(w io.Writer, rows []AppMapping) error {
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %2d processes on %dx%d mesh at %3.0f MHz: "+
			"%2d GT channels, %2d lane paths, %2d hops, util %.1f%%\n",
			r.Name, r.Processes, r.MeshW, r.MeshH, r.FreqMHz,
			r.Channels, r.LanePaths, r.Hops, r.LinkUtilization*100)
		fmt.Fprintf(w, "%-24s   GT %.1f Mbit/s, BE share %.2f%% (< 5%% per Section 3.3), "+
			"heaviest channel %.0f Mbit/s -> %d lane(s)\n",
			"", r.GTMbps, r.BEFraction*100, r.MaxChannelMbps, r.MaxChannelLanes)
	}
	fmt.Fprintln(w, "\nall three applications of Section 3 map onto the circuit-switched NoC")
	fmt.Fprintln(w, "with guaranteed-throughput lanes (paper Section 7.3, second bullet)")
	return nil
}

// CrossoverPoint is one sample of the load sweep.
type CrossoverPoint struct {
	// Load is the offered load fraction.
	Load float64 `json:"load"`
	// CircuitNJPerWord and PacketNJPerWord are total energy per
	// delivered word in nanojoules.
	CircuitNJPerWord float64 `json:"circuit_nj_per_word"`
	PacketNJPerWord  float64 `json:"packet_nj_per_word"`
}

// CrossoverData sweeps the offered load on Scenario III and reports the
// energy per transported word for both routers — the efficiency view of
// the paper's comparison. The load points run as parallel sweep cells.
func CrossoverData() ([]CrossoverPoint, error) {
	rc := traffic.RunConfig{Cycles: 4000, FreqMHz: 25, Lib: lib}
	sc := traffic.Scenarios()[2]
	loads := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	return sweep.Map(context.Background(), len(loads), 0, func(i int) (CrossoverPoint, error) {
		load := loads[i]
		pat := traffic.Pattern{FlipProb: 0.5, Load: load}
		cr, err := traffic.RunCircuit(sc, pat, rc)
		if err != nil {
			return CrossoverPoint{}, err
		}
		pr, err := traffic.RunPacket(sc, pat, rc)
		if err != nil {
			return CrossoverPoint{}, err
		}
		t := float64(rc.Cycles) / rc.FreqMHz // µs
		energyNJ := func(p float64) float64 { return p * t / 1e3 }
		cp := CrossoverPoint{Load: load}
		if cr.WordsSent > 0 {
			cp.CircuitNJPerWord = energyNJ(cr.Power.TotalUW()) / float64(cr.WordsSent)
		}
		if pr.WordsSent > 0 {
			cp.PacketNJPerWord = energyNJ(pr.Power.TotalUW()) / float64(pr.WordsSent)
		}
		return cp, nil
	})
}

func renderCrossover(w io.Writer, pts []CrossoverPoint) error {
	fmt.Fprintln(w, "Scenario III (streams 1+2), 25 MHz, random data; total energy per word:")
	fmt.Fprintf(w, "%-8s %20s %20s %8s\n", "load", "circuit [nJ/word]", "packet [nJ/word]", "ratio")
	var ratios stats.Series
	for _, p := range pts {
		r := p.PacketNJPerWord / p.CircuitNJPerWord
		ratios.Add(r)
		fmt.Fprintf(w, "%-8.2f %20.2f %20.2f %8.2f\n",
			p.Load, p.CircuitNJPerWord, p.PacketNJPerWord, r)
	}
	fmt.Fprintf(w, "\nmean energy advantage %.2fx; at every load the circuit-switched router\n",
		ratios.Mean())
	fmt.Fprintln(w, "transports a word cheaper — there is no crossover, matching the paper's")
	fmt.Fprintln(w, "conclusion for stream-dominated traffic")
	return nil
}
