package experiments

import (
	"fmt"
	"io"

	"repro/internal/aethereal"
	"repro/internal/apps"
	"repro/internal/bitvec"
	"repro/internal/ccn"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/power"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "meshpower",
		Title:  "Whole-NoC power for the UMTS mapping, with and without clock gating",
		Paper:  "system-level extension of Figures 9/10",
		Data:   dataFrom(defaultMeshPowerResult),
		Render: renderAs(renderMeshPower),
	})
	register(Experiment{
		ID:     "schedule",
		Title:  "Scheduling effort: TDM slot tables vs lane allocation",
		Paper:  "Section 4 (SoCBUS/AEthereal discussion)",
		Data:   dataFrom(ScheduleData),
		Render: renderAs(renderSchedule),
	})
}

// MeshPowerResult compares NoC-level power for one scenario.
type MeshPowerResult struct {
	// Idle is the unconfigured mesh.
	Idle power.Breakdown `json:"idle"`
	// Loaded carries the UMTS mapping's heaviest streams.
	Loaded power.Breakdown `json:"loaded"`
	// Gated repeats Loaded with configuration-driven clock gating.
	Gated power.Breakdown `json:"gated"`
	// Routers is the node count.
	Routers int `json:"routers"`
}

// MeshPowerData maps UMTS onto a 4×3 mesh at 100 MHz and measures
// aggregate NoC power in three configurations.
func MeshPowerData(cycles int) (MeshPowerResult, error) {
	var out MeshPowerResult
	run := func(load, gated bool) (power.Breakdown, error) {
		m := mesh.New(4, 3, core.DefaultParams(), core.DefaultAssemblyOptions())
		dom := m.BindMeters(lib, 100, gated)
		if load {
			mgr := ccn.NewManager(m, 100)
			mp, err := mgr.MapApplication(apps.UMTSGraph(apps.DefaultUMTS()))
			if err != nil {
				return power.Breakdown{}, err
			}
			// Drive the four chip streams (the heavy edges) at full rate.
			rng := bitvec.NewXorShift64(7)
			for f := 1; f <= 4; f++ {
				conn := mp.Connections[fmt.Sprintf("chips-%d", f)]
				src := m.At(conn.Src)
				dst := m.At(conn.Dst)
				txLane := conn.Segments[0][0].Circuit.In.Lane
				rxLane := conn.Segments[0][len(conn.Segments[0])-1].Circuit.Out.Lane
				m.World().Add(&sim.Func{OnEval: func() {
					if src.Tx[txLane].Ready() {
						src.Tx[txLane].Push(core.DataWord(rng.Uint16()))
					}
					dst.Rx[rxLane].Pop()
				}})
			}
		}
		m.Run(cycles)
		return dom.Report("mesh"), nil
	}
	var err error
	if out.Idle, err = run(false, false); err != nil {
		return out, err
	}
	if out.Loaded, err = run(true, false); err != nil {
		return out, err
	}
	if out.Gated, err = run(true, true); err != nil {
		return out, err
	}
	out.Routers = 12
	return out, nil
}

func defaultMeshPowerResult() (MeshPowerResult, error) {
	return MeshPowerData(2000)
}

func renderMeshPower(w io.Writer, r MeshPowerResult) error {
	mw := func(b power.Breakdown) float64 { return b.TotalUW() / 1e3 }
	fmt.Fprintf(w, "4x3 mesh (%d routers) at 100 MHz, UMTS chip streams at full rate:\n", r.Routers)
	fmt.Fprintf(w, "  %-28s %8.3f mW  (%.1f uW/router)\n", "idle, ungated:", mw(r.Idle), r.Idle.TotalUW()/12)
	fmt.Fprintf(w, "  %-28s %8.3f mW\n", "loaded, ungated:", mw(r.Loaded))
	fmt.Fprintf(w, "  %-28s %8.3f mW  (%.0f%% below ungated)\n", "loaded, clock gated:",
		mw(r.Gated), (1-r.Gated.TotalUW()/r.Loaded.TotalUW())*100)
	fmt.Fprintln(w, "\nungated, an idle NoC already pays nearly the full dynamic bill — scaled")
	fmt.Fprintln(w, "to a whole mesh, the clock-gating future work of Section 8 is what makes")
	fmt.Fprintln(w, "\"unused tiles can be switched off\" (Section 1) apply to the network too")
	return nil
}

// SchedulePoint compares allocation effort at one load level.
type SchedulePoint struct {
	// Requests is the number of connection requests offered.
	Requests int `json:"requests"`
	// TDMProbes and TDMRejected describe the slot-table scheduler.
	TDMProbes   int `json:"tdm_probes"`
	TDMRejected int `json:"tdm_rejected"`
	// LaneProbes and LaneRejected describe circuit-switched allocation.
	LaneProbes   int `json:"lane_probes"`
	LaneRejected int `json:"lane_rejected"`
}

// ScheduleData offers growing random request sets to both allocators on
// one router (5 ports; 32-slot table vs 4 lanes — both fair shares of the
// same link).
func ScheduleData() ([]SchedulePoint, error) {
	p := aethereal.Params{Ports: 5, WordBits: 32, Slots: 32, BEDepth: 4}
	rng := bitvec.NewXorShift64(99)
	var out []SchedulePoint
	for _, n := range []int{4, 8, 12, 16} {
		var tdmReqs, laneReqs []aethereal.Request
		for i := 0; i < n; i++ {
			in := rng.Intn(5)
			outP := rng.Intn(5)
			for outP == in {
				outP = rng.Intn(5)
			}
			lanes := rng.Intn(2) + 1     // 1-2 lanes
			slots := lanes * p.Slots / 4 // same bandwidth share
			tdmReqs = append(tdmReqs, aethereal.Request{In: in, Out: outP, Slots: slots})
			laneReqs = append(laneReqs, aethereal.Request{In: in, Out: outP, Slots: lanes})
		}
		_, tdm, err := aethereal.ScheduleGreedy(p, tdmReqs)
		if err != nil {
			return nil, err
		}
		lane := aethereal.AllocateLanes(5, 4, laneReqs)
		out = append(out, SchedulePoint{
			Requests:  n,
			TDMProbes: tdm.Probes, TDMRejected: tdm.Rejected,
			LaneProbes: lane.Probes, LaneRejected: lane.Rejected,
		})
	}
	return out, nil
}

func renderSchedule(w io.Writer, pts []SchedulePoint) error {
	fmt.Fprintln(w, "random connection requests on one router; equal bandwidth shares")
	fmt.Fprintln(w, "(32-slot TDM table vs 4 lanes):")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n",
		"requests", "TDM probes", "TDM reject", "lane probes", "lane reject")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d %12d %12d %12d %12d\n",
			p.Requests, p.TDMProbes, p.TDMRejected, p.LaneProbes, p.LaneRejected)
	}
	fmt.Fprintln(w, "\nthe slot-table scheduler probes an order of magnitude more state for the")
	fmt.Fprintln(w, "same decisions: the paper's Section 4 point that lane-division scheduling")
	fmt.Fprintln(w, "is easier because streams by definition cannot collide")
	return nil
}
