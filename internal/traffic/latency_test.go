package traffic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packetsw"
)

func TestCircuitLatencyIsConstant(t *testing.T) {
	// The established circuit's defining property: every word sees the
	// identical latency — serialization (5 cycles in, 5 out) plus the
	// registered crossbar stage. Zero jitter.
	r, err := MeasureCircuitLatency(core.DefaultParams(), 1.0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if r.Words != 150 {
		t.Fatalf("measured %d words", r.Words)
	}
	if r.Jitter != 0 {
		t.Fatalf("circuit jitter = %v cycles, want 0", r.Jitter)
	}
	// 5 serialize + 1 crossbar register + 5 deserialize + handshake
	// stages: low tens of cycles, and exactly constant.
	if r.Cycles.Mean() < 10 || r.Cycles.Mean() > 15 {
		t.Fatalf("circuit latency %.1f cycles, implausible", r.Cycles.Mean())
	}
}

func TestCircuitLatencyLoadIndependent(t *testing.T) {
	// A circuit has no queueing and no arbitration. At sustained line
	// rate the latency is exactly constant; below line rate the only
	// variation is alignment of the push instant to the 5-cycle lane
	// frame (a serializer property, bounded by one packet time) — never
	// contention from other streams.
	hi, err := MeasureCircuitLatency(core.DefaultParams(), 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MeasureCircuitLatency(core.DefaultParams(), 0.3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Jitter != 0 {
		t.Fatalf("line-rate jitter = %v, want 0", hi.Jitter)
	}
	framePenalty := float64(5 - 1) // worst-case alignment to the lane frame
	if lo.Jitter > framePenalty {
		t.Fatalf("sub-rate jitter %v exceeds the frame alignment bound %v",
			lo.Jitter, framePenalty)
	}
	if diff := lo.Cycles.Mean() - hi.Cycles.Mean(); diff > framePenalty || diff < -framePenalty {
		t.Fatalf("latency depends on load beyond frame alignment: %.1f vs %.1f",
			lo.Cycles.Mean(), hi.Cycles.Mean())
	}
}

func TestPacketLatencyContentionAddsJitter(t *testing.T) {
	alone, err := MeasurePacketLatency(packetsw.DefaultParams(), 1.0, 150, false)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := MeasurePacketLatency(packetsw.DefaultParams(), 1.0, 150, true)
	if err != nil {
		t.Fatal(err)
	}
	if alone.Jitter != 0 {
		t.Fatalf("uncontended packet jitter = %v", alone.Jitter)
	}
	if shared.Jitter == 0 {
		t.Fatal("contention produced no jitter — time multiplexing has a cost")
	}
	if shared.Cycles.Mean() <= alone.Cycles.Mean() {
		t.Fatal("contention did not increase mean latency")
	}
}

func TestLatencyInputValidation(t *testing.T) {
	if _, err := MeasureCircuitLatency(core.DefaultParams(), 0, 10); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := MeasureCircuitLatency(core.DefaultParams(), 1.5, 10); err == nil {
		t.Error("overload accepted")
	}
	if _, err := MeasurePacketLatency(packetsw.DefaultParams(), -1, 10, false); err == nil {
		t.Error("negative load accepted")
	}
}
