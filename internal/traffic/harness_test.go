package traffic

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// allKernels is the three-way equivalence set every runner-level test
// compares across.
var allKernels = []sim.Kernel{sim.KernelGated, sim.KernelNaive, sim.KernelEvent}

// TestRunCircuitKernelEquivalence: the scenario runner must produce
// identical results under all three kernels, including with a finite
// word budget whose exhausted sources go quiescent mid-run — the case
// where the event kernel fast-forwards the drained tail of the run.
func TestRunCircuitKernelEquivalence(t *testing.T) {
	lib := stdcell.Default013()
	pat := Pattern{FlipProb: 0.5, Load: 1}
	for _, limit := range []uint64{0, 50} {
		results := make([]Result, len(allKernels))
		for i, k := range allKernels {
			cfg := RunConfig{Cycles: 2000, FreqMHz: 25, Lib: lib,
				Kernel: k, WordsPerStream: limit}
			res, err := RunCircuit(Scenarios()[2], pat, cfg)
			if err != nil {
				t.Fatalf("kernel %v limit %d: %v", k, limit, err)
			}
			results[i] = res
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Errorf("limit %d: kernels disagree:\n%v: %+v\n%v: %+v",
					limit, allKernels[0], results[0], allKernels[i], results[i])
			}
		}
	}
}

// TestWordsPerStreamCapsSources: the budget is honoured exactly and the
// retired sources stop the word counters.
func TestWordsPerStreamCapsSources(t *testing.T) {
	lib := stdcell.Default013()
	cfg := RunConfig{Cycles: 3000, FreqMHz: 25, Lib: lib, WordsPerStream: 40}
	res, err := RunCircuit(Scenarios()[2], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scenario III has two streams; each source must stop at its budget.
	if res.WordsSent != 80 {
		t.Fatalf("WordsSent = %d, want 80 (2 streams x 40 words)", res.WordsSent)
	}
	if res.WordsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestRunPacketKernelEquivalence covers the packet-switched runner.
func TestRunPacketKernelEquivalence(t *testing.T) {
	lib := stdcell.Default013()
	pat := Pattern{FlipProb: 0.5, Load: 1}
	results := make([]Result, len(allKernels))
	for i, k := range allKernels {
		cfg := RunConfig{Cycles: 1500, FreqMHz: 25, Lib: lib, Kernel: k}
		res, err := RunPacket(Scenarios()[3], pat, cfg)
		if err != nil {
			t.Fatalf("kernel %v: %v", k, err)
		}
		results[i] = res
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("kernels disagree:\n%v: %+v\n%v: %+v",
				allKernels[0], results[0], allKernels[i], results[i])
		}
	}
}

// TestMeasureLatencyKernelEquivalence covers both latency harnesses,
// which exercise the wake path (Push/Pop from stimulus placed after the
// component in Eval order).
func TestMeasureLatencyKernelEquivalence(t *testing.T) {
	type lat struct {
		words  int
		mean   float64
		jitter float64
	}
	measure := func(k sim.Kernel) (lat, lat) {
		cr, err := MeasureCircuitLatency(core.DefaultParams(), 1, 60, sim.WithKernel(k))
		if err != nil {
			t.Fatalf("circuit %v: %v", k, err)
		}
		pr, err := MeasurePacketLatency(packetsw.DefaultParams(), 1, 60, true, sim.WithKernel(k))
		if err != nil {
			t.Fatalf("packet %v: %v", k, err)
		}
		return lat{cr.Words, cr.Cycles.Mean(), cr.Jitter},
			lat{pr.Words, pr.Cycles.Mean(), pr.Jitter}
	}
	cg, pg := measure(sim.KernelGated)
	for _, k := range []sim.Kernel{sim.KernelNaive, sim.KernelEvent} {
		ck, pk := measure(k)
		if cg != ck {
			t.Errorf("circuit latency disagrees: gated %+v %v %+v", cg, k, ck)
		}
		if pg != pk {
			t.Errorf("packet latency disagrees: gated %+v %v %+v", pg, k, pk)
		}
	}
}

// TestWordsPerStreamPacketBoundary: on the packet fabric the word budget
// is applied at packet boundaries — an opened wormhole packet always
// completes (and closes with its Tail flit), so the cap rounds up to the
// 16-word packet length rather than truncating a packet mid-flight and
// leaking its output-VC ownership.
func TestWordsPerStreamPacketBoundary(t *testing.T) {
	lib := stdcell.Default013()
	cfg := RunConfig{Cycles: 4000, FreqMHz: 25, Lib: lib, WordsPerStream: 20}
	// Scenario III: stream 1 (Tile→East) and stream 2 (North→Tile); only
	// the latter is observable end to end at the tile ejection port.
	res, err := RunPacket(Scenarios()[2], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 20 words round up to 2 full packets of PacketWordsPerPacket each.
	perStream := uint64(2 * PacketWordsPerPacket)
	if want := 2 * perStream; res.WordsSent != want {
		t.Fatalf("WordsSent = %d, want %d (budget rounded to packet boundary)",
			res.WordsSent, want)
	}
	if res.WordsDelivered != perStream {
		t.Fatalf("delivered %d, want %d: stream 2's final packet did not drain",
			res.WordsDelivered, perStream)
	}
}
