package traffic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// TestRunCircuitKernelEquivalence: the scenario runner must produce
// identical results under both kernels, including with a finite word
// budget whose exhausted sources go quiescent mid-run.
func TestRunCircuitKernelEquivalence(t *testing.T) {
	lib := stdcell.Default013()
	pat := Pattern{FlipProb: 0.5, Load: 1}
	for _, limit := range []uint64{0, 50} {
		var results [2]Result
		for i, k := range []sim.Kernel{sim.KernelGated, sim.KernelNaive} {
			cfg := RunConfig{Cycles: 2000, FreqMHz: 25, Lib: lib,
				Kernel: k, WordsPerStream: limit}
			res, err := RunCircuit(Scenarios()[2], pat, cfg)
			if err != nil {
				t.Fatalf("kernel %v limit %d: %v", k, limit, err)
			}
			results[i] = res
		}
		if results[0] != results[1] {
			t.Errorf("limit %d: kernels disagree:\ngated: %+v\nnaive: %+v",
				limit, results[0], results[1])
		}
	}
}

// TestWordsPerStreamCapsSources: the budget is honoured exactly and the
// retired sources stop the word counters.
func TestWordsPerStreamCapsSources(t *testing.T) {
	lib := stdcell.Default013()
	cfg := RunConfig{Cycles: 3000, FreqMHz: 25, Lib: lib, WordsPerStream: 40}
	res, err := RunCircuit(Scenarios()[2], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scenario III has two streams; each source must stop at its budget.
	if res.WordsSent != 80 {
		t.Fatalf("WordsSent = %d, want 80 (2 streams x 40 words)", res.WordsSent)
	}
	if res.WordsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestRunPacketKernelEquivalence covers the packet-switched runner.
func TestRunPacketKernelEquivalence(t *testing.T) {
	lib := stdcell.Default013()
	pat := Pattern{FlipProb: 0.5, Load: 1}
	var results [2]Result
	for i, k := range []sim.Kernel{sim.KernelGated, sim.KernelNaive} {
		cfg := RunConfig{Cycles: 1500, FreqMHz: 25, Lib: lib, Kernel: k}
		res, err := RunPacket(Scenarios()[3], pat, cfg)
		if err != nil {
			t.Fatalf("kernel %v: %v", k, err)
		}
		results[i] = res
	}
	if results[0] != results[1] {
		t.Errorf("kernels disagree:\ngated: %+v\nnaive: %+v", results[0], results[1])
	}
}

// TestMeasureLatencyKernelEquivalence covers both latency harnesses,
// which exercise the wake path (Push/Pop from stimulus placed after the
// component in Eval order).
func TestMeasureLatencyKernelEquivalence(t *testing.T) {
	type lat struct {
		words  int
		mean   float64
		jitter float64
	}
	measure := func(k sim.Kernel) (lat, lat) {
		cr, err := MeasureCircuitLatency(core.DefaultParams(), 1, 60, sim.WithKernel(k))
		if err != nil {
			t.Fatalf("circuit %v: %v", k, err)
		}
		pr, err := MeasurePacketLatency(packetsw.DefaultParams(), 1, 60, true, sim.WithKernel(k))
		if err != nil {
			t.Fatalf("packet %v: %v", k, err)
		}
		return lat{cr.Words, cr.Cycles.Mean(), cr.Jitter},
			lat{pr.Words, pr.Cycles.Mean(), pr.Jitter}
	}
	cg, pg := measure(sim.KernelGated)
	cn, pn := measure(sim.KernelNaive)
	if cg != cn {
		t.Errorf("circuit latency disagrees: gated %+v naive %+v", cg, cn)
	}
	if pg != pn {
		t.Errorf("packet latency disagrees: gated %+v naive %+v", pg, pn)
	}
}
