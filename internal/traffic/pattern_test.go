package traffic

import (
	"reflect"
	"testing"

	"repro/internal/aethereal"
	"repro/internal/core"
	"repro/internal/packetsw"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// patternRC is the shared run configuration of these tests.
func patternRC(k sim.Kernel) RunConfig {
	return RunConfig{Cycles: 2500, FreqMHz: 25, Lib: stdcell.Default013(),
		Seed: 3, Kernel: k}
}

// testFlows projects a hotspot pattern onto the centre of a 4×4 mesh —
// a mix of tile, through and turning flows on several ports.
func testFlows() []pattern.PortFlow {
	return pattern.PortFlows(pattern.Spatial{Kind: pattern.Hotspot, Alpha: 0.6},
		4, 4, pattern.HotspotNode(4, 4), 3)
}

func TestRunPacketPatternKernelEquivalence(t *testing.T) {
	inj := pattern.Injection{Proc: pattern.Poisson, Rate: 0.05}
	run := func(k sim.Kernel) PatternRunResult {
		res, err := RunPacketPattern(testFlows(), inj, 0.5, patternRC(k))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	naive, gated, event := run(sim.KernelNaive), run(sim.KernelGated), run(sim.KernelEvent)
	if naive.WordsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if !reflect.DeepEqual(naive, gated) || !reflect.DeepEqual(naive, event) {
		t.Errorf("packet pattern results differ across kernels:\nnaive %+v\ngated %+v\nevent %+v",
			naive, gated, event)
	}
}

// TestRunPacketPatternDepthOne: the feeder's exact in-flight accounting
// must keep flows moving (and never overflow or drop) even at the
// minimum FIFO depth, where a conservative one-slot margin would stall
// every mesh-port flow forever.
func TestRunPacketPatternDepthOne(t *testing.T) {
	pp := packetsw.DefaultParams()
	pp.Depth = 1
	cfg := patternRC(sim.KernelEvent)
	cfg.PSParams = &pp
	res, err := RunPacketPattern(testFlows(), pattern.Injection{Proc: pattern.CBR, Rate: 0.05}, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordsDelivered == 0 {
		t.Fatal("depth-1 run delivered nothing: mesh-port feeders stalled")
	}
}

func TestRunTDMPatternKernelEquivalence(t *testing.T) {
	inj := pattern.Injection{Proc: pattern.OnOff, Rate: 0.05, Burstiness: 4}
	run := func(k sim.Kernel) PatternRunResult {
		res, err := RunTDMPattern(aethereal.DefaultParams(), testFlows(), inj, 0.5, patternRC(k))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	naive, gated, event := run(sim.KernelNaive), run(sim.KernelGated), run(sim.KernelEvent)
	if naive.WordsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	if !reflect.DeepEqual(naive, gated) || !reflect.DeepEqual(naive, event) {
		t.Errorf("TDM pattern results differ across kernels")
	}
}

// TestRunTDMPatternAdmission: a slot table too small for the projected
// hotspot load must reject some flows rather than oversubscribe.
func TestRunTDMPatternAdmission(t *testing.T) {
	ap := aethereal.DefaultParams()
	ap.Slots = 4
	res, err := RunTDMPattern(ap, testFlows(), pattern.Injection{Proc: pattern.Poisson, Rate: 0.5},
		0.5, patternRC(sim.KernelEvent))
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsEstablished >= res.FlowsRequested {
		t.Errorf("tiny slot table admitted all %d flows", res.FlowsRequested)
	}
	if res.FlowsEstablished == 0 {
		t.Error("no flow admitted at all")
	}
}

// TestPortFlowsFeedTileAndMeshPorts sanity-checks the projection the
// harnesses consume: the hotspot centre sees tile-bound traffic from
// several mesh ports plus its own injections.
func TestPortFlowsFeedTileAndMeshPorts(t *testing.T) {
	flows := testFlows()
	var tileOut, tileIn, mesh int
	for _, f := range flows {
		if f.Out == core.Tile {
			tileOut++
		}
		if f.In == core.Tile {
			tileIn++
		} else {
			mesh++
		}
	}
	if tileOut == 0 || tileIn == 0 || mesh == 0 {
		t.Fatalf("degenerate projection: tileOut=%d tileIn=%d mesh=%d", tileOut, tileIn, mesh)
	}
}

// TestPatternWarmupTruncatesLatency pins the projections' warm-up
// behavior: the latency distribution is truncated to the measurement
// window (word counts stay full-run), the effective warm-up is
// reported, and results stay identical across kernels.
func TestPatternWarmupTruncatesLatency(t *testing.T) {
	inj := pattern.Injection{Proc: pattern.Poisson, Rate: 0.1}
	for _, fabric := range []struct {
		name string
		run  func(rc RunConfig) (PatternRunResult, error)
	}{
		{"packet", func(rc RunConfig) (PatternRunResult, error) {
			return RunPacketPattern(testFlows(), inj, 0.5, rc)
		}},
		{"tdm", func(rc RunConfig) (PatternRunResult, error) {
			return RunTDMPattern(aethereal.DefaultParams(), testFlows(), inj, 0.5, rc)
		}},
	} {
		rc := patternRC(sim.KernelEvent)
		full, err := fabric.run(rc)
		if err != nil {
			t.Fatalf("%s full: %v", fabric.name, err)
		}
		rc.WarmupCycles = 800
		warm, err := fabric.run(rc)
		if err != nil {
			t.Fatalf("%s warm: %v", fabric.name, err)
		}
		if warm.WarmupCycles != 800 {
			t.Fatalf("%s: warm-up %d, want 800", fabric.name, warm.WarmupCycles)
		}
		if warm.Latency.N() >= full.Latency.N() || warm.Latency.N() == 0 {
			t.Fatalf("%s: truncated latency N = %d, full = %d",
				fabric.name, warm.Latency.N(), full.Latency.N())
		}
		if warm.WordsSent != full.WordsSent || warm.WordsDelivered != full.WordsDelivered {
			t.Fatalf("%s: projection counts must stay full-run", fabric.name)
		}
		// Identical across kernels, auto mode included.
		for _, auto := range []bool{false, true} {
			var base PatternRunResult
			for i, k := range []sim.Kernel{sim.KernelEvent, sim.KernelNaive, sim.KernelGated} {
				rc := patternRC(k)
				if auto {
					rc.WarmupAuto = true
				} else {
					rc.WarmupCycles = 800
				}
				got, err := fabric.run(rc)
				if err != nil {
					t.Fatalf("%s %v: %v", fabric.name, k, err)
				}
				if i == 0 {
					base = got
					continue
				}
				if got.WarmupCycles != base.WarmupCycles || !reflect.DeepEqual(got.Latency, base.Latency) {
					t.Fatalf("%s: kernel %v diverges under warm-up (auto=%v)", fabric.name, k, auto)
				}
			}
		}
	}
}

// TestRunConfigWarmupValidation pins the config errors.
func TestRunConfigWarmupValidation(t *testing.T) {
	rc := patternRC(sim.KernelEvent)
	rc.WarmupCycles = rc.Cycles
	if err := rc.Validate(); err == nil {
		t.Fatal("warm-up >= cycles should be rejected")
	}
	rc = patternRC(sim.KernelEvent)
	rc.WarmupCycles, rc.WarmupAuto = 5, true
	if err := rc.Validate(); err == nil {
		t.Fatal("explicit + auto warm-up should be rejected")
	}
}
