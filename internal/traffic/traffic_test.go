package traffic

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stdcell"
)

var lib = stdcell.Default013()

func TestPaperStreamsMatchTable3(t *testing.T) {
	s := PaperStreams()
	if len(s) != 3 {
		t.Fatalf("streams = %d, want 3", len(s))
	}
	want := []Stream{
		{ID: 1, In: core.Tile, Out: core.East},
		{ID: 2, In: core.North, Out: core.Tile},
		{ID: 3, In: core.West, Out: core.East},
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("stream %d = %v, want %v (Table 3)", i+1, s[i], want[i])
		}
	}
}

func TestScenariosMatchFig8(t *testing.T) {
	sc := Scenarios()
	if len(sc) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(sc))
	}
	wantCounts := []int{0, 1, 2, 3}
	wantNames := []string{"I", "II", "III", "IV"}
	for i := range sc {
		if sc[i].Name != wantNames[i] {
			t.Errorf("scenario %d named %q, want %q", i, sc[i].Name, wantNames[i])
		}
		if len(sc[i].Streams) != wantCounts[i] {
			t.Errorf("scenario %s has %d streams, want %d",
				sc[i].Name, len(sc[i].Streams), wantCounts[i])
		}
	}
	// Scenario IV must contain the East-port collision pair.
	iv := sc[3]
	east := 0
	for _, s := range iv.Streams {
		if s.Out == core.East {
			east++
		}
	}
	if east != 2 {
		t.Fatalf("scenario IV has %d East-bound streams, want 2 (streams 1 and 3)", east)
	}
}

func TestPatternValidate(t *testing.T) {
	for _, bad := range []Pattern{
		{FlipProb: -0.1, Load: 1}, {FlipProb: 1.1, Load: 1},
		{FlipProb: 0.5, Load: -1}, {FlipProb: 0.5, Load: 2},
	} {
		if bad.Validate() == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
	if (Pattern{FlipProb: 0.5, Load: 1}).Validate() != nil {
		t.Error("rejected valid pattern")
	}
}

func TestBitFlipCases(t *testing.T) {
	c := BitFlipCases()
	if len(c) != 3 || c[0] != 0 || c[1] != 0.5 || c[2] != 1 {
		t.Fatalf("bit-flip cases = %v, want [0 0.5 1]", c)
	}
}

func TestSourceLoadGate(t *testing.T) {
	full := NewSource(Pattern{FlipProb: 0.5, Load: 1}, 1)
	for i := 0; i < 100; i++ {
		if _, ok := full.Offer(); !ok {
			t.Fatal("full-load source declined")
		}
	}
	half := NewSource(Pattern{FlipProb: 0.5, Load: 0.5}, 1)
	granted := 0
	for i := 0; i < 10000; i++ {
		if _, ok := half.Offer(); ok {
			granted++
		}
	}
	if granted < 4700 || granted > 5300 {
		t.Fatalf("half-load source granted %d/10000", granted)
	}
	if half.Sent() != uint64(granted) {
		t.Fatal("Sent counter out of sync")
	}
}

func TestSourceDeterminism(t *testing.T) {
	a, b := NewSource(Pattern{FlipProb: 0.5, Load: 1}, 7), NewSource(Pattern{FlipProb: 0.5, Load: 1}, 7)
	for i := 0; i < 100; i++ {
		wa, _ := a.Offer()
		wb, _ := b.Offer()
		if wa != wb {
			t.Fatal("same stream id diverged")
		}
	}
	c := NewSource(Pattern{FlipProb: 0.5, Load: 1}, 8)
	same := 0
	a = NewSource(Pattern{FlipProb: 0.5, Load: 1}, 7)
	for i := 0; i < 100; i++ {
		wa, _ := a.Offer()
		wc, _ := c.Offer()
		if wa == wc {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different streams collide: %d/100", same)
	}
}

func TestSourceZeroFlipsIsAllZeros(t *testing.T) {
	s := NewSource(Pattern{FlipProb: 0, Load: 1}, 1)
	for i := 0; i < 50; i++ {
		w, _ := s.Offer()
		if w.Data != 0 {
			t.Fatal("best case must transmit only zeros")
		}
		if !w.Valid() {
			t.Fatal("words must carry VALID")
		}
	}
}

func TestRunConfigValidate(t *testing.T) {
	if (RunConfig{Cycles: 0, FreqMHz: 25}).Validate() == nil {
		t.Error("zero cycles accepted")
	}
	if (RunConfig{Cycles: 10, FreqMHz: 0}).Validate() == nil {
		t.Error("zero frequency accepted")
	}
	if DefaultRunConfig(lib).Validate() != nil {
		t.Error("default config rejected")
	}
	if DefaultRunConfig(lib).Cycles != 5000 {
		t.Error("default is the paper's 5000 cycles (200 µs at 25 MHz)")
	}
}

func TestRunCircuitScenarioII(t *testing.T) {
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 2000
	res, err := RunCircuit(Scenarios()[1], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 1 runs Tile->East at one word per 5 cycles.
	if res.WordsSent < 350 || res.WordsSent > 405 {
		t.Fatalf("words sent = %d, want ~400 (1 per 5 cycles)", res.WordsSent)
	}
	if res.Power.TotalUW() <= 0 {
		t.Fatal("no power estimated")
	}
}

func TestRunCircuitScenarioIIIDelivers(t *testing.T) {
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 2000
	res, err := RunCircuit(Scenarios()[2], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 2 terminates at the tile: its words are observable.
	if res.WordsDelivered < 300 {
		t.Fatalf("delivered only %d words end to end", res.WordsDelivered)
	}
}

func TestRunCircuitScenarioOrderingByPower(t *testing.T) {
	// More concurrent streams => more dynamic power, monotonically
	// (the paper's "number of data streams" observation).
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 2000
	var prev float64 = -1
	for _, sc := range Scenarios() {
		res, err := RunCircuit(sc, Pattern{FlipProb: 0.5, Load: 1}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Power.DynamicUW() < prev {
			t.Fatalf("dynamic power not monotone at scenario %s", sc.Name)
		}
		prev = res.Power.DynamicUW()
	}
}

func TestRunPacketScenarioII(t *testing.T) {
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 2000
	res, err := RunPacket(Scenarios()[1], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordsSent < 350 || res.WordsSent > 405 {
		t.Fatalf("words sent = %d, want ~400", res.WordsSent)
	}
	if res.Power.TotalUW() <= 0 {
		t.Fatal("no power estimated")
	}
}

func TestRunPacketDeliversToTile(t *testing.T) {
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 3000
	res, err := RunPacket(Scenarios()[2], Pattern{FlipProb: 0.5, Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 2 (North->Tile) delivers ~1 word per 5 cycles minus packet
	// framing latency.
	if res.WordsDelivered < 400 {
		t.Fatalf("delivered %d words, want ~550", res.WordsDelivered)
	}
}

func TestPaperHeadlinePowerRatio(t *testing.T) {
	// The conclusion's headline: "The proposed architecture consumes 3.5
	// times less energy compared to its packet-switched equivalent."
	// Scenario-averaged total power at 25 MHz, random data, 100% load.
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 2500
	pat := Pattern{FlipProb: 0.5, Load: 1}
	var cs, ps float64
	for _, sc := range Scenarios() {
		rc, err := RunCircuit(sc, pat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := RunPacket(sc, pat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cs += rc.Power.TotalUW()
		ps += rp.Power.TotalUW()
	}
	ratio := ps / cs
	if ratio < 3.5*0.75 || ratio > 3.5*1.25 {
		t.Fatalf("power ratio PS/CS = %.2f, paper 3.5 (±25%%)", ratio)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cfg := DefaultRunConfig(lib)
	if _, err := RunCircuit(Scenarios()[0], Pattern{FlipProb: 2, Load: 1}, cfg); err == nil {
		t.Error("bad pattern accepted by RunCircuit")
	}
	if _, err := RunPacket(Scenarios()[0], Pattern{FlipProb: 2, Load: 1}, cfg); err == nil {
		t.Error("bad pattern accepted by RunPacket")
	}
	bad := cfg
	bad.Cycles = 0
	if _, err := RunCircuit(Scenarios()[0], Pattern{Load: 1}, bad); err == nil {
		t.Error("bad config accepted")
	}
	// A stream id beyond the lane count must error, not panic.
	weird := Scenario{Name: "X", Streams: []Stream{{ID: 9, In: core.Tile, Out: core.East}}}
	if _, err := RunCircuit(weird, Pattern{Load: 1}, cfg); err == nil {
		t.Error("impossible stream accepted")
	}
	if _, err := RunPacket(weird, Pattern{Load: 1}, cfg); err == nil {
		t.Error("impossible stream accepted by RunPacket")
	}
}

func TestGatedRunReducesIdlePower(t *testing.T) {
	cfg := DefaultRunConfig(lib)
	cfg.Cycles = 1500
	idle := Scenarios()[0]
	ungated, err := RunCircuit(idle, Pattern{Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Gated = true
	gated, err := RunCircuit(idle, Pattern{Load: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gated.Power.DynamicUW() >= ungated.Power.DynamicUW()/3 {
		t.Fatalf("gating saved too little: %.1f vs %.1f µW",
			gated.Power.DynamicUW(), ungated.Power.DynamicUW())
	}
}
