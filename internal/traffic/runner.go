package traffic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packetsw"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// RunConfig controls one scenario simulation.
type RunConfig struct {
	// Cycles is the simulated length. The paper simulates 200 µs at
	// 25 MHz = 5000 cycles.
	Cycles int
	// FreqMHz is the clock frequency (25 MHz in Figures 9 and 10).
	FreqMHz float64
	// Lib is the technology library.
	Lib stdcell.Lib
	// Gated enables the circuit-switched router's configuration-driven
	// clock gating (the paper's future-work ablation); ignored by the
	// packet-switched router, which has no gating.
	Gated bool
	// Params overrides the circuit-switched router geometry (nil: the
	// paper's defaults). Used by the public noc façade's WithLanes /
	// WithLaneWidth options.
	Params *core.Params
	// PSParams overrides the packet-switched router configuration (nil:
	// the paper's defaults). Used by WithVirtualChannels / WithBufferDepth.
	PSParams *packetsw.Params
	// Seed is the run-level base seed mixed into every stream source, so
	// sweep cells draw independent data sequences. Zero keeps the
	// paper-default seeding (sources seeded by stream id alone).
	Seed uint64
	// Kernel selects the simulation kernel. The zero value is the
	// activity-tracked gated kernel; results are byte-identical under
	// both, so sim.KernelNaive exists for verification and benchmarking.
	Kernel sim.Kernel
	// SimWorkers bounds the goroutine pool the active kernel shards its
	// Eval sweep over; 0 means GOMAXPROCS. The other kernels ignore it.
	SimWorkers int
	// WordsPerStream caps each stream source's emitted words; 0 means
	// unlimited (the paper's open-loop scenarios). With a cap, exhausted
	// sources go quiescent, the gated kernel retires them, and the event
	// kernel fast-forwards the drained tail of the run.
	WordsPerStream uint64
	// Observe, when non-nil, receives the simulation world after the run
	// completes — kernel diagnostics (fast-forward windows, per-component
	// activity) for tests and benchmarks. It must not mutate the world.
	Observe func(*sim.World)
	// WarmupCycles excludes delivery-latency observations taken before
	// this cycle from a pattern run's Latency distribution, so the
	// startup transient does not bias replication confidence
	// intervals. The single-router projections truncate the latency
	// distribution only; word counts stay full-run (the mesh pattern
	// runner truncates its whole measurement window).
	WarmupCycles int
	// WarmupAuto detects the warm-up automatically with the MSER-5
	// steady-state rule. Mutually exclusive with WarmupCycles.
	WarmupAuto bool
	// RetainLatency keeps the raw per-word latency observations on the
	// result's Latency series (Samples), so replicated runs can pool
	// them into one distribution. Off by default: a plain run only needs
	// the summary moments.
	RetainLatency bool
	// Obs carries the run's observability sinks: a structured event
	// tracer (per-stream injections and deliveries plus kernel
	// scheduling) and a metrics registry. The zero value disables both;
	// enabling them never changes the simulated result.
	Obs obs.Hooks
}

// DefaultRunConfig mirrors the paper's power-estimation setup: 5000 cycles
// (200 µs at 25 MHz; 2 kB per 100%-loaded stream).
func DefaultRunConfig(lib stdcell.Lib) RunConfig {
	return RunConfig{Cycles: 5000, FreqMHz: 25, Lib: lib}
}

// Validate checks the configuration.
func (c RunConfig) Validate() error {
	if c.Cycles < 1 {
		return fmt.Errorf("traffic: need at least 1 cycle")
	}
	if c.FreqMHz <= 0 {
		return fmt.Errorf("traffic: non-positive frequency")
	}
	if c.Params != nil {
		if err := c.Params.Validate(); err != nil {
			return err
		}
	}
	if c.PSParams != nil {
		if err := c.PSParams.Validate(); err != nil {
			return err
		}
	}
	if c.WarmupCycles < 0 || c.WarmupCycles >= c.Cycles {
		return fmt.Errorf("traffic: warm-up %d out of [0, cycles=%d)", c.WarmupCycles, c.Cycles)
	}
	if c.WarmupCycles > 0 && c.WarmupAuto {
		return fmt.Errorf("traffic: explicit warm-up and auto-detection are mutually exclusive")
	}
	return nil
}

// coreParams returns the circuit-switched geometry to simulate.
func (c RunConfig) coreParams() core.Params {
	if c.Params != nil {
		return *c.Params
	}
	return core.DefaultParams()
}

// worldOpts returns the simulation-world options the run configuration
// selects: the kernel, for the active kernel the Eval parallelism, and
// the structured-event tracer when one is attached.
func (c RunConfig) worldOpts() []sim.WorldOption {
	return []sim.WorldOption{sim.WithKernel(c.Kernel),
		sim.WithParallelism(c.SimWorkers), sim.WithTracer(c.Obs.Tracer)}
}

// psParams returns the packet-switched configuration to simulate.
func (c RunConfig) psParams() packetsw.Params {
	if c.PSParams != nil {
		return *c.PSParams
	}
	return packetsw.DefaultParams()
}

// Result is the outcome of one scenario simulation.
type Result struct {
	// Power is the three-bucket estimate.
	Power power.Breakdown
	// Attribution is the dynamic power split by activity class, in the
	// meter's deterministic (sorted) order; it sums to Power.DynamicUW().
	Attribution []power.AttributionEntry
	// WordsSent is the total number of data words offered by all streams.
	WordsSent uint64
	// WordsDelivered counts words that completed their path (only streams
	// terminating at the tile port are observable end to end).
	WordsDelivered uint64
}

// RunCircuit simulates the circuit-switched assembly under the scenario.
// Streams entering at the tile port use the local transmit converters;
// streams entering at a neighbour port are driven by feeder converters
// that stand in for the upstream router's registered lane outputs (their
// activity is charged to that upstream router, not to the meter). Each
// stream occupies lane index ID-1 of its ports — scenario IV's streams 1
// and 3 leave on different East lanes, physically separated as the paper's
// lane division multiplexing prescribes.
func RunCircuit(sc Scenario, pat Pattern, cfg RunConfig) (Result, error) {
	if err := pat.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	p := cfg.coreParams()
	// Open-loop measurement, as in the paper's scenarios: the destination
	// always consumes, no acknowledgements are configured.
	opt := core.AssemblyOptions{Flow: core.FlowParams{}, RxBufCap: 64}
	cw := newCircuitWorld(p, opt, cfg.worldOpts()...)
	a := cw.A
	meter := power.NewMeter(core.Netlist(p, cfg.Lib), cfg.Lib, cfg.FreqMHz)
	a.BindMeter(meter, cfg.Lib, cfg.Gated)

	var sources []*Source
	var res Result
	for _, st := range sc.Streams {
		lane := st.ID - 1
		if lane < 0 || lane >= p.LanesPerPort {
			return Result{}, fmt.Errorf("traffic: stream %d has no lane", st.ID)
		}
		tx, err := cw.Establish(core.Circuit{
			In:  core.LaneID{Port: st.In, Lane: lane},
			Out: core.LaneID{Port: st.Out, Lane: lane},
		})
		if err != nil {
			return Result{}, err
		}
		src := NewSourceSeeded(pat, st.ID, cfg.Seed)
		sources = append(sources, src)
		cw.W.Add(&sourceDriver{src: src, tx: tx, limit: cfg.WordsPerStream,
			tracer: cfg.Obs.Tracer, track: fmt.Sprintf("stream%d.src", st.ID)})
		if st.Out == core.Tile {
			cw.W.Add(&sinkDriver{rx: a.Rx[lane],
				tracer: cfg.Obs.Tracer, track: fmt.Sprintf("stream%d.sink", st.ID)})
		}
	}

	cw.W.Run(cfg.Cycles)
	if cfg.Observe != nil {
		cfg.Observe(cw.W)
	}

	for _, s := range sources {
		res.WordsSent += s.Sent()
	}
	for _, rx := range a.Rx {
		res.WordsDelivered += rx.Received()
	}
	res.Power = meter.Report("circuit switched / scenario " + sc.Name)
	res.Attribution = meter.AttributionSorted()
	return res, nil
}

// PacketWordsPerPacket is the payload length used when mapping a word
// stream onto the packet-switched router: 16 words per packet keeps the
// head-flit overhead near the paper's "same maximum bandwidth" framing.
const PacketWordsPerPacket = 16

// RunPacket simulates the packet-switched router under the same scenario.
// Each stream travels on virtual channel ID-1 and is throttled to one data
// word per PacketNibbles cycles — the bandwidth of one circuit-switched
// lane, the paper's "100% load of a single lane". Streams to a shared
// output port (scenario IV) are time multiplexed by the switch allocator.
func RunPacket(sc Scenario, pat Pattern, cfg RunConfig) (Result, error) {
	if err := pat.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	pp := cfg.psParams()
	cp := cfg.coreParams()
	r := packetsw.NewRouter(pp, packetsw.PortRoute)
	meter := power.NewMeter(packetsw.Netlist(pp, cfg.Lib), cfg.Lib, cfg.FreqMHz)
	r.BindMeter(meter)

	w := sim.NewWorld(cfg.worldOpts()...)
	w.Add(r)

	wordPeriod := cp.PacketNibbles() // 5 cycles per word at full lane load
	var sources []*Source
	var res Result
	for _, st := range sc.Streams {
		vc := st.ID - 1
		if vc < 0 || vc >= pp.VCs {
			return Result{}, fmt.Errorf("traffic: stream %d has no VC", st.ID)
		}
		src := NewSourceSeeded(pat, st.ID, cfg.Seed)
		sources = append(sources, src)
		gen := &packetGen{
			src: src, vc: vc, dst: st.Out,
			period: wordPeriod, limit: cfg.WordsPerStream,
		}
		if st.In == core.Tile {
			tracer, track := cfg.Obs.Tracer, fmt.Sprintf("stream%d.src", st.ID)
			var cycle uint64
			w.Add(&sim.Func{OnEval: func() {
				if f, ok := gen.next(); ok {
					if !r.Inject(f) {
						gen.retry(f)
					} else if tracer != nil {
						tracer.Emit(obs.Event{Cycle: cycle, Track: track,
							Kind: obs.KindInject, Value: int64(f.Kind)})
					}
				}
			}, OnCommit: func() { cycle++ }})
		} else {
			// Feeder register standing in for the upstream router.
			inPort := st.In
			slot := new(packetsw.Flit)
			r.ConnectIn(inPort, slot)
			w.Add(&sim.Func{OnEval: func() {
				*slot = packetsw.Flit{}
				if f, ok := gen.next(); ok {
					*slot = f
				}
			}})
		}
	}
	// The tile ejection sink drains continuously.
	delivered := uint64(0)
	drainTracer := cfg.Obs.Tracer
	var drainCycle uint64
	w.Add(&sim.Func{OnEval: func() {
		for _, f := range r.Drain() {
			if f.Kind == packetsw.Body || f.Kind == packetsw.Tail {
				delivered++
				if drainTracer != nil {
					drainTracer.Emit(obs.Event{Cycle: drainCycle, Track: "tile.sink",
						Kind: obs.KindDeliver, Value: int64(delivered)})
				}
			}
		}
	}, OnCommit: func() { drainCycle++ }})

	w.Run(cfg.Cycles)
	if cfg.Observe != nil {
		cfg.Observe(w)
	}

	for _, s := range sources {
		res.WordsSent += s.Sent()
	}
	res.WordsDelivered = delivered
	res.Power = meter.Report("packet switched / scenario " + sc.Name)
	res.Attribution = meter.AttributionSorted()
	return res, nil
}

// packetGen converts a word source into a flit stream: packets of
// PacketWordsPerPacket words, one data word per period cycles plus the
// head flit when a packet opens.
type packetGen struct {
	src    *Source
	vc     int
	dst    core.Port
	period int
	limit  uint64 // emitted-word budget; 0 = unlimited

	cycle     int
	inPacket  int // payload words emitted in the current packet
	queued    []packetsw.Flit
	retrySlot *packetsw.Flit
}

// next returns the flit to emit this cycle, if any.
func (g *packetGen) next() (packetsw.Flit, bool) {
	g.cycle++
	if g.retrySlot != nil {
		f := *g.retrySlot
		g.retrySlot = nil
		return f, true
	}
	if len(g.queued) > 0 {
		f := g.queued[0]
		g.queued = g.queued[1:]
		return f, true
	}
	if g.cycle%g.period != 0 {
		return packetsw.Flit{}, false
	}
	// A retired source (word budget exhausted) stops drawing from the
	// load gate, mirroring the circuit runner's sourceDriver. The budget
	// is applied at packet boundaries only: a packet already opened is
	// completed (rounding the cap up to the packet length), because a
	// wormhole packet without its Tail flit would hold its output VC's
	// ownership in every router on the path forever.
	if g.limit > 0 && g.inPacket == 0 && g.src.Sent() >= g.limit {
		return packetsw.Flit{}, false
	}
	word, ok := g.src.Offer()
	if !ok {
		return packetsw.Flit{}, false
	}
	kind := packetsw.Body
	g.inPacket++
	if g.inPacket >= PacketWordsPerPacket {
		kind = packetsw.Tail
		g.inPacket = 0
	}
	data := packetsw.Flit{Kind: kind, VC: g.vc, Data: word.Data}
	if g.inPacket == 1 {
		// Open the packet: head first, then the data word.
		g.queued = append(g.queued, data)
		return packetsw.Flit{Kind: packetsw.Head, VC: g.vc,
			Data: packetsw.HeadData(g.dst)}, true
	}
	return data, true
}

// retry re-queues a flit the router could not accept this cycle.
func (g *packetGen) retry(f packetsw.Flit) { g.retrySlot = &f }
