package traffic

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/packetsw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LatencyResult characterizes word delivery latency through one router.
type LatencyResult struct {
	// Words is the number of timed deliveries.
	Words int
	// Cycles is the latency distribution in clock cycles.
	Cycles stats.Series
	// Jitter is max minus min latency — zero for an established circuit,
	// the paper's "bounded latency" guarantee in its strongest form.
	Jitter float64
}

// MeasureCircuitLatency streams timestamped words through an established
// circuit (North→Tile, one router of the given geometry) at the given
// load and measures push-to-pop latency. A circuit has no arbitration
// and no queueing: the latency is the serialization plus pipeline depth,
// identical for every word. An optional kernel override
// (sim.WithKernel) selects the simulation kernel; the measurement is
// byte-identical under both.
func MeasureCircuitLatency(p core.Params, load float64, words int, wopts ...sim.WorldOption) (LatencyResult, error) {
	if load <= 0 || load > 1 {
		return LatencyResult{}, fmt.Errorf("traffic: load %v out of (0,1]", load)
	}
	if err := p.Validate(); err != nil {
		return LatencyResult{}, err
	}
	cw := newCircuitWorld(p, core.AssemblyOptions{Flow: core.FlowParams{}, RxBufCap: 4}, wopts...)
	a, w := cw.A, cw.W
	// Feeder converter models the upstream router/tile.
	in := core.LaneID{Port: core.North, Lane: 0}
	tx := cw.Feeder(in)
	if err := a.EstablishLocal(core.Circuit{
		In: in, Out: core.LaneID{Port: core.Tile, Lane: 0},
	}); err != nil {
		return LatencyResult{}, err
	}

	src := NewSource(Pattern{FlipProb: 0.5, Load: load}, 1)
	var res LatencyResult
	// The harness measures a few hundred words at most; retaining them
	// keeps the distribution poolable across replications at no
	// meaningful cost.
	res.Cycles.Retain()
	pushTimes := map[uint16]uint64{}
	seq := uint16(0)
	skipped := 0
	w.Add(&sim.Func{OnEval: func() {
		if tx.Ready() && int(seq) < words+latencyWarmup {
			if _, ok := src.Offer(); ok {
				pushTimes[seq] = w.Cycle()
				tx.Push(core.DataWord(seq))
				seq++
			}
		}
		if word, ok := a.Rx[0].Pop(); ok {
			if t0, known := pushTimes[word.Data]; known {
				delete(pushTimes, word.Data)
				// Skip the pipeline-fill transient; steady state is what
				// the latency guarantee covers.
				if skipped < latencyWarmup {
					skipped++
					return
				}
				res.Cycles.Add(float64(w.Cycle() - t0))
				res.Words++
			}
		}
	}})
	if !w.RunUntil(func() bool { return res.Words >= words }, words*40+200) {
		return res, fmt.Errorf("traffic: circuit latency run stalled at %d/%d", res.Words, words)
	}
	res.Jitter = res.Cycles.Max() - res.Cycles.Min()
	return res, nil
}

// latencyWarmup is the number of initial deliveries excluded from latency
// statistics (pipeline fill).
const latencyWarmup = 10

// MeasurePacketLatency injects timestamped single-word packets at the
// North port of a packet-switched router with the given configuration
// towards the tile, optionally with competing background streams that
// keep the shared ejection port busy, and measures head-to-eject
// latency. Queueing and arbitration make the latency load-dependent —
// bounded but not constant.
func MeasurePacketLatency(pp packetsw.Params, load float64, words int, background bool, wopts ...sim.WorldOption) (LatencyResult, error) {
	if load <= 0 || load > 1 {
		return LatencyResult{}, fmt.Errorf("traffic: load %v out of (0,1]", load)
	}
	if err := pp.Validate(); err != nil {
		return LatencyResult{}, err
	}
	r := packetsw.NewRouter(pp, packetsw.PortRoute)
	w := sim.NewWorld(wopts...)
	w.Add(r)

	var north, west, east packetsw.Flit
	r.ConnectIn(core.North, &north)
	r.ConnectIn(core.West, &west)
	r.ConnectIn(core.East, &east)

	period := core.DefaultParams().PacketNibbles() // 1 word / 5 cycles = a lane's rate
	src := NewSource(Pattern{FlipProb: 0.5, Load: load}, 1)
	var res LatencyResult
	res.Cycles.Retain() // poolable, same as the circuit harness
	sent := 0
	// Jitter the send instants by ±1 cycle around the mean period: a
	// strictly periodic source phase-locks with the arbiter rotation and
	// would hide the contention entirely.
	gapRng := bitvec.NewXorShift64(5)
	nextSend := uint64(0)
	w.Add(&sim.Func{OnEval: func() {
		north = packetsw.Flit{}
		if sent < words+latencyWarmup && w.Cycle() >= nextSend {
			if _, ok := src.Offer(); ok {
				north = packetsw.Flit{
					Kind: packetsw.HeadTail, VC: 0,
					Data:        packetsw.HeadData(core.Tile),
					InjectCycle: w.Cycle(),
				}
				sent++
				nextSend = w.Cycle() + uint64(period-1+gapRng.Intn(3))
			}
		}
	}})
	if background && pp.VCs < 3 {
		return LatencyResult{}, fmt.Errorf("traffic: background contention needs 3 VCs, have %d", pp.VCs)
	}
	if background {
		// Two heavy random streams on other VCs oversubscribe the shared
		// ejection port: the measured stream has to win round-robin
		// arbitration against a varying backlog. A strictly periodic
		// background would let the measured stream phase-lock with the
		// arbiter rotation and hide the contention; random arrivals are
		// what real competing traffic looks like. (The sources are driven
		// open loop; excess flits overflow and drop, which is the
		// intended oversubscription, not a protocol error.)
		rng := bitvec.NewXorShift64(42)
		w.Add(&sim.Func{OnEval: func() {
			west, east = packetsw.Flit{}, packetsw.Flit{}
			if rng.Bool(0.9) {
				west = packetsw.Flit{Kind: packetsw.HeadTail, VC: 1,
					Data: packetsw.HeadData(core.Tile)}
			}
			if rng.Bool(0.9) {
				east = packetsw.Flit{Kind: packetsw.HeadTail, VC: 2,
					Data: packetsw.HeadData(core.Tile)}
			}
		}})
	}
	skipped := 0
	w.Add(&sim.Func{OnEval: func() {
		for _, f := range r.Drain() {
			// All VC0 flits carry our timestamps (the backgrounds use
			// VC1 and VC2).
			if f.VC == 0 && f.Kind.Closes() {
				if skipped < latencyWarmup {
					skipped++
					continue
				}
				res.Cycles.Add(float64(w.Cycle() - f.InjectCycle))
				res.Words++
			}
		}
	}})
	if !w.RunUntil(func() bool { return res.Words >= words }, words*60+500) {
		return res, fmt.Errorf("traffic: packet latency run stalled at %d/%d", res.Words, words)
	}
	res.Jitter = res.Cycles.Max() - res.Cycles.Min()
	return res, nil
}
