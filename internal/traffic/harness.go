package traffic

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// circuitWorld is the world-building helper shared by the scenario runner
// (Figures 9/10) and the latency measurement: one circuit-switched
// assembly under the chosen kernel, plus feeder converters standing in for
// upstream routers' registered lane outputs.
type circuitWorld struct {
	// W is the simulation world; the assembly is its first component, so
	// stimulus added afterwards observes the documented Eval ordering.
	W *sim.World
	// A is the assembly under test.
	A *core.Assembly

	p core.Params
}

// newCircuitWorld builds an assembly and registers it with a fresh world
// constructed with the given options (typically sim.WithKernel).
func newCircuitWorld(p core.Params, opt core.AssemblyOptions, wopts ...sim.WorldOption) *circuitWorld {
	w := sim.NewWorld(wopts...)
	a := core.NewAssembly(p, opt)
	w.Add(a)
	return &circuitWorld{W: w, A: a, p: p}
}

// Feeder adds a transmit converter driving the given foreign input lane —
// the upstream router's output register for that lane. Its switching
// activity is charged to that upstream router, not to this assembly's
// meter, matching the single-router measurement setup of the paper.
func (cw *circuitWorld) Feeder(in core.LaneID) *core.TxConverter {
	tx := core.NewTxConverter(cw.p, core.FlowParams{})
	tx.Enabled = true
	cw.A.R.ConnectIn(cw.p.Global(in), &tx.Out)
	cw.W.Add(tx)
	return tx
}

// Establish configures a circuit through the assembly and returns the
// transmit converter that feeds it: the assembly's own tile converter when
// the circuit enters at the tile port, or a fresh feeder otherwise.
func (cw *circuitWorld) Establish(c core.Circuit) (*core.TxConverter, error) {
	if err := cw.A.EstablishLocal(c); err != nil {
		return nil, err
	}
	if c.In.Port == core.Tile {
		return cw.A.Tx[c.In.Lane], nil
	}
	return cw.Feeder(c.In), nil
}

// sourceDriver pushes one stream's words into a transmit converter. It is
// a first-class component rather than a bare sim.Func so the
// activity-tracked kernel can retire it: once the word budget is exhausted
// the driver goes quiescent and the kernel stops visiting it. While words
// remain the driver runs every cycle — the load gate consumes one random
// draw per offer opportunity, and that RNG sequence is part of the
// byte-identical gated-vs-naive contract.
type sourceDriver struct {
	src   *Source
	tx    *core.TxConverter
	limit uint64 // emitted-word budget; 0 = unlimited

	// tracer, when non-nil, receives a domain-scope inject event per
	// pushed word on the track name. Words are pushed on the same cycles
	// under every kernel, so the stream is kernel-invariant; Emit may run
	// inside the active kernel's sharded Eval pass, so the tracer must
	// accept concurrent calls.
	tracer obs.Tracer
	track  string
	cycle  uint64
}

// Eval implements sim.Clocked.
func (d *sourceDriver) Eval() {
	if d.done() {
		return
	}
	if d.tx.Ready() {
		if w, ok := d.src.Offer(); ok {
			d.tx.Push(w)
			if d.tracer != nil {
				d.tracer.Emit(obs.Event{Cycle: d.cycle, Track: d.track,
					Kind: obs.KindInject, Value: int64(d.src.Sent())})
			}
		}
	}
}

// Commit implements sim.Clocked.
func (d *sourceDriver) Commit() { d.cycle++ }

// TraceName implements sim.TraceNamer.
func (d *sourceDriver) TraceName() string { return d.track }

func (d *sourceDriver) done() bool {
	return d.limit > 0 && d.src.Sent() >= d.limit
}

// Quiescent implements sim.Quiescer: a source that has emitted all its
// words has no further work.
func (d *sourceDriver) Quiescent() bool { return d.done() }

// IdleTick implements sim.IdleTicker: a retired source accrues only its
// local clock, which exists to cycle-stamp trace events.
func (d *sourceDriver) IdleTick() { d.cycle++ }

// IdleWindow implements sim.IdleWindower: integer bookkeeping only, so
// one call is exactly n IdleTicks and event-kernel fast-forward stays
// O(1).
func (d *sourceDriver) IdleWindow(n uint64) { d.cycle += n }

// sinkDriver drains a receive converter on behalf of the tile: one Pop
// opportunity per cycle. A first-class component rather than a bare
// sim.Func so the activity-tracked kernels can skip it while the buffer
// is empty — Pop on an empty buffer is a no-op, so skipping is exact —
// which lets a fully drained world (retired sources, empty converters)
// quiesce end to end and the event kernel fast-forward to the end of the
// run.
type sinkDriver struct {
	rx *core.RxConverter

	// tracer, when non-nil, receives a domain-scope deliver event per
	// popped word on the track name; deliveries happen on the same
	// cycles under every kernel, so the stream is kernel-invariant.
	tracer obs.Tracer
	track  string
	cycle  uint64
	popped uint64
}

// Eval implements sim.Clocked.
func (d *sinkDriver) Eval() {
	if _, ok := d.rx.Pop(); ok {
		d.popped++
		if d.tracer != nil {
			d.tracer.Emit(obs.Event{Cycle: d.cycle, Track: d.track,
				Kind: obs.KindDeliver, Value: int64(d.popped)})
		}
	}
}

// Commit implements sim.Clocked.
func (d *sinkDriver) Commit() { d.cycle++ }

// TraceName implements sim.TraceNamer.
func (d *sinkDriver) TraceName() string { return d.track }

// Quiescent implements sim.Quiescer: nothing buffered, nothing to pop.
func (d *sinkDriver) Quiescent() bool { return d.rx.Available() == 0 }

// IdleTick implements sim.IdleTicker: an empty sink accrues only its
// local clock, which exists to cycle-stamp trace events.
func (d *sinkDriver) IdleTick() { d.cycle++ }

// IdleWindow implements sim.IdleWindower: integer bookkeeping only, so
// one call is exactly n IdleTicks and event-kernel fast-forward stays
// O(1).
func (d *sinkDriver) IdleWindow(n uint64) { d.cycle += n }

var _ sim.Quiescer = (*sourceDriver)(nil)
var _ sim.Quiescer = (*sinkDriver)(nil)
