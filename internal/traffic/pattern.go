package traffic

import (
	"fmt"

	"repro/internal/aethereal"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/packetsw"
	"repro/internal/pattern"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// This file holds the single-router pattern harnesses: the
// packet-switched and TDM models are single-router models, so a mesh
// traffic pattern reaches them as a port-to-port flow matrix — the
// projection pattern.PortFlows computes for the observed router. Every
// flow is driven by an event-scheduled pattern.Source and every helper
// component is quiescent when idle, so sparse pattern runs fast-forward
// under sim.KernelEvent with results byte-identical to the other
// kernels.

// PatternPacketWords is the payload length of a synthetic-pattern
// packet on the packet-switched router: short packets keep the latency
// measurement responsive at low rates (the classic stream harness uses
// 16-word packets; synthetic-pattern studies conventionally use short
// fixed-length packets).
const PatternPacketWords = 4

// patternWordBits is the data word size all pattern rate and power
// accounting uses, matching the tile interface.
const patternWordBits = 16

// PatternRunResult is the outcome of a single-router pattern run.
type PatternRunResult struct {
	// Power is the three-bucket estimate; Attribution splits the
	// dynamic part by activity class.
	Power       power.Breakdown
	Attribution []power.AttributionEntry
	// WordsSent counts data words emitted by all flow sources;
	// WordsDelivered counts data words observed leaving the router at
	// an observable endpoint.
	WordsSent, WordsDelivered uint64
	// Latency is the in-run delivery latency distribution (injection to
	// observable delivery), in cycles, over the measurement window.
	Latency stats.Series
	// WarmupCycles is the effective warm-up of the latency
	// distribution: the configured truncation, or the MSER-detected
	// steady-state cycle. The single-router projections truncate
	// latency observations only; word counts stay full-run.
	WarmupCycles uint64
	// FlowsRequested and FlowsEstablished count the projected port
	// flows and how many the fabric could admit (slot-table capacity on
	// TDM; the packet router admits everything and queues instead).
	FlowsRequested, FlowsEstablished int
}

// latWarmupRec returns the cycle-stamped recorder a pattern run needs
// for warm-up truncation, or nil when no truncation was requested.
func latWarmupRec(cfg RunConfig) *stats.TimedSeries {
	if cfg.WarmupCycles > 0 || cfg.WarmupAuto {
		return &stats.TimedSeries{}
	}
	return nil
}

// applyLatWarmup resolves the effective warm-up cycle — configured, or
// MSER-5 steady-state detection — and replaces the aggregate latency
// distribution with the truncated window. No-op without a recorder.
func applyLatWarmup(cfg RunConfig, rec *stats.TimedSeries, lat *stats.Series) uint64 {
	if rec == nil {
		return 0
	}
	w := uint64(cfg.WarmupCycles)
	start := rec.TruncateCycle(w)
	if cfg.WarmupAuto && rec.Len() > 0 {
		start = rec.SteadyStateIndex(stats.MSERBatch)
		w = rec.CycleAt(start)
	}
	*lat = rec.SeriesFrom(start)
	return w
}

// flowRate converts a projected port-flow weight into this flow's
// absolute word rate, clamped to one word per cycle.
func flowRate(inj pattern.Injection, weight float64) float64 {
	r := inj.Rate * weight
	if r > 1 {
		r = 1
	}
	return r
}

// flowInjection builds the per-flow injection process: the shared
// process shape at the flow's own rate.
func flowInjection(inj pattern.Injection, rate float64) pattern.Injection {
	out := pattern.Injection{Proc: inj.Proc, Rate: rate}
	if inj.Proc == pattern.OnOff {
		out.Burstiness = inj.Burstiness
	}
	return out
}

// flowSeed derives one flow's RNG seed from the run seed and the flow's
// position, so flows are decorrelated but each is reproducible.
func flowSeed(base uint64, i int) uint64 {
	return sweep.Mix64(base + uint64(i)*0x9E3779B97F4A7C15 + 0xF10)
}

// ---------------------------------------------------------------------
// Packet-switched pattern harness
// ---------------------------------------------------------------------

// tileInjector stages queued flits into the router's tile port, one per
// cycle, retrying on backpressure. Quiescent when nothing is queued.
type tileInjector struct {
	r     *packetsw.Router
	queue []packetsw.Flit
}

// Eval implements sim.Clocked.
func (d *tileInjector) Eval() {
	if len(d.queue) == 0 {
		return
	}
	if d.r.Inject(d.queue[0]) {
		d.queue = d.queue[1:]
	}
}

// Commit implements sim.Clocked.
func (d *tileInjector) Commit() {}

// Quiescent implements sim.Quiescer.
func (d *tileInjector) Quiescent() bool { return len(d.queue) == 0 }

// IdleTick implements sim.IdleTicker: an empty injector accrues no
// per-cycle state, so idle replay is a no-op, declared explicitly to
// satisfy the Quiescer contract checked by nocvet.
func (d *tileInjector) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (d *tileInjector) IdleWindow(n uint64) {}

// flitFeeder presents queued flits on an upstream input register, one
// per cycle — the stand-in for a neighbouring router's registered
// output. It only presents when the target VC's input FIFO has room
// (the credit path a real upstream router would observe), stalling the
// queue otherwise; a flit presented in the previous cycle is still in
// flight (it enters the FIFO at this cycle's Commit), so it counts
// against the room too — exact accounting that works at any Depth,
// including 1. dirty tracks a presented flit that still needs the
// register cleared, so the component never goes quiescent with stale
// data on the wire.
type flitFeeder struct {
	r      *packetsw.Router
	port   core.Port
	slot   *packetsw.Flit
	queue  []packetsw.Flit
	dirty  bool
	prevVC int // VC presented in the previous cycle, -1 if none
}

// Eval implements sim.Clocked.
func (d *flitFeeder) Eval() {
	*d.slot = packetsw.Flit{}
	d.dirty = false
	inFlight := d.prevVC
	d.prevVC = -1
	if len(d.queue) > 0 {
		vc := d.queue[0].VC
		backlog := d.r.InputBacklog(d.port, vc)
		if inFlight == vc {
			backlog++
		}
		if backlog < d.r.P.Depth {
			*d.slot = d.queue[0]
			d.queue = d.queue[1:]
			d.dirty = true
			d.prevVC = vc
		}
	}
}

// Commit implements sim.Clocked.
func (d *flitFeeder) Commit() {}

// Quiescent implements sim.Quiescer.
func (d *flitFeeder) Quiescent() bool { return len(d.queue) == 0 && !d.dirty }

// IdleTick implements sim.IdleTicker: a drained feeder accrues no
// per-cycle state, so idle replay is a no-op, declared explicitly to
// satisfy the Quiescer contract checked by nocvet.
func (d *flitFeeder) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (d *flitFeeder) IdleWindow(n uint64) {}

// patternDrain pops the router's tile ejection queue, counting data
// words and closing the latency measurement on tagged head flits. With
// warm-up accounting on, latency samples go to the cycle-stamped
// recorder so the transient can be truncated after the run.
type patternDrain struct {
	r         *packetsw.Router
	stamps    map[int]*[]uint64
	lat       *stats.Series
	rec       *stats.TimedSeries // non-nil when warm-up accounting is on
	delivered uint64
	cycle     uint64
}

// Eval implements sim.Clocked.
func (d *patternDrain) Eval() {
	for _, f := range d.r.Drain() {
		switch f.Kind {
		case packetsw.Body, packetsw.Tail:
			d.delivered++
		case packetsw.Head, packetsw.HeadTail:
			tag := int(f.Data >> 3)
			if q, ok := d.stamps[tag]; ok && len(*q) > 0 {
				lat := float64(d.cycle - (*q)[0])
				if d.rec != nil {
					d.rec.Add(d.cycle, lat)
				} else {
					d.lat.Add(lat)
				}
				*q = (*q)[1:]
			}
		}
	}
}

// Commit implements sim.Clocked.
func (d *patternDrain) Commit() { d.cycle++ }

// Quiescent implements sim.Quiescer: nothing ejected, nothing to drain.
func (d *patternDrain) Quiescent() bool { return d.r.EjectedPending() == 0 }

// IdleTick implements sim.IdleTicker.
func (d *patternDrain) IdleTick() { d.cycle++ }

// IdleWindow implements sim.IdleWindower.
func (d *patternDrain) IdleWindow(n uint64) { d.cycle += n }

// feederQueueCap bounds a port driver's backlog, in packets: a source
// whose flow exceeds the port's capacity banks its words as source
// credits instead of growing the queue without bound.
const feederQueueCap = 8

// RunPacketPattern drives the packet-switched router with the projected
// port flows of a spatial pattern under the given injection process.
// Each flow generates fixed-length packets (PatternPacketWords payload
// words) on its own virtual channel; flows entering on the tile port
// are injected, flows entering on a mesh port are presented by feeder
// registers. Tile-bound packets close the latency measurement when
// their head flit is drained.
func RunPacketPattern(flows []pattern.PortFlow, inj pattern.Injection, flipProb float64, cfg RunConfig) (PatternRunResult, error) {
	if err := cfg.Validate(); err != nil {
		return PatternRunResult{}, err
	}
	if err := inj.Validate(); err != nil {
		return PatternRunResult{}, err
	}
	if flipProb < 0 || flipProb > 1 {
		return PatternRunResult{}, fmt.Errorf("traffic: flip probability %v out of [0,1]", flipProb)
	}
	pp := cfg.psParams()
	r := packetsw.NewRouter(pp, packetsw.PortRoute)
	meter := power.NewMeter(packetsw.Netlist(pp, cfg.Lib), cfg.Lib, cfg.FreqMHz)
	r.BindMeter(meter)

	w := sim.NewWorld(cfg.worldOpts()...)
	w.Add(r)

	var res PatternRunResult
	res.FlowsRequested = len(flows)
	if cfg.RetainLatency {
		// Warm-up accounting rebuilds the series from the timed record,
		// which always retains; this covers the direct path.
		res.Latency.Retain()
	}

	latRec := latWarmupRec(cfg)
	drain := &patternDrain{r: r, stamps: map[int]*[]uint64{}, lat: &res.Latency, rec: latRec}

	// One driver per distinct input port, in flow order (which is
	// port-major, so drivers come up in a deterministic order).
	tileDrv := (*tileInjector)(nil)
	feeders := map[core.Port]*flitFeeder{}
	perPortFlows := map[core.Port]int{}
	var sources []*pattern.Source

	for i, f := range flows {
		rate := flowRate(inj, f.Weight)
		if rate <= 0 {
			continue
		}
		res.FlowsEstablished++
		pktRate := rate / PatternPacketWords
		if pktRate > 1 {
			pktRate = 1
		}
		vc := perPortFlows[f.In] % pp.VCs
		perPortFlows[f.In]++

		var queue *[]packetsw.Flit
		if f.In == core.Tile {
			if tileDrv == nil {
				tileDrv = &tileInjector{r: r}
				w.Add(tileDrv)
			}
			queue = &tileDrv.queue
		} else {
			fd := feeders[f.In]
			if fd == nil {
				slot := new(packetsw.Flit)
				r.ConnectIn(f.In, slot)
				fd = &flitFeeder{r: r, port: f.In, slot: slot, prevVC: -1}
				feeders[f.In] = fd
				w.Add(fd)
			}
			queue = &fd.queue
		}

		tag := i
		stamps := new([]uint64)
		if f.Out == core.Tile {
			drain.stamps[tag] = stamps
		}
		gen := bitvec.NewFlipGen(patternWordBits, flipProb, flowSeed(cfg.Seed, i)^0xDA7A)
		out := f.Out
		src := pattern.NewSource(flowInjection(inj, pktRate), flowSeed(cfg.Seed, i), perFlowPacketCap(cfg.WordsPerStream), nil)
		src.Tracer = cfg.Obs.Tracer
		src.Track = fmt.Sprintf("flow%d.src", i)
		srcRef := src
		src.Emit = func() bool {
			if len(*queue) >= feederQueueCap*(PatternPacketWords+1) {
				return false
			}
			payload := make([]uint16, PatternPacketWords)
			for k := range payload {
				payload[k] = uint16(gen.Next())
			}
			head := uint16(tag)<<3 | packetsw.HeadData(out)
			*queue = append(*queue, packetsw.MakePacket(vc, head, payload)...)
			if out == core.Tile {
				*stamps = append(*stamps, srcRef.Cycle())
			}
			return true
		}
		w.Add(src)
		sources = append(sources, src)
	}
	w.Add(drain)

	w.Run(cfg.Cycles)
	if cfg.Observe != nil {
		cfg.Observe(w)
	}

	for _, s := range sources {
		res.WordsSent += s.Sent() * PatternPacketWords
	}
	res.WordsDelivered = drain.delivered
	res.WarmupCycles = applyLatWarmup(cfg, latRec, &res.Latency)
	res.Power = meter.Report("packet switched / pattern")
	res.Attribution = meter.AttributionSorted()
	return res, nil
}

// perFlowPacketCap converts a per-flow word budget into the packet
// budget a source retires at (rounded up to whole packets); 0 stays
// unlimited.
func perFlowPacketCap(words uint64) uint64 {
	if words == 0 {
		return 0
	}
	return (words + PatternPacketWords - 1) / PatternPacketWords
}

// ---------------------------------------------------------------------
// TDM pattern harness
// ---------------------------------------------------------------------

// tdmPending is one word queued at a TDM input with its injection
// stamp.
type tdmPending struct {
	word  uint32
	stamp uint64
}

// TDMFlow is one (in,out) flow multiplexed by a TDMPresenter: a queue
// of words waiting for the flow's reserved slots, the words in flight
// through the crossbar, and the flow's measurement sinks.
type TDMFlow struct {
	out      int
	reserved []bool       // per slot: this flow owns the slot
	staged   []tdmPending // enqueued this cycle; merged into queue at Commit
	queue    []tdmPending
	inFlight []tdmPending
	lat      *stats.Series
	rec      *stats.TimedSeries // non-nil when warm-up accounting is on
	toggles  int
	meter    *power.Meter
	wake     func() // the owning presenter's wake, set by AddFlow
	tracer   obs.Tracer
	track    string

	delivered uint64
}

// Trace routes this flow's injection and delivery events to a tracer
// under the given track name; a nil tracer leaves tracing disabled.
func (f *TDMFlow) Trace(t obs.Tracer, track string) {
	f.tracer = t
	f.track = track
}

// RecordTimed routes this flow's latency observations into a
// cycle-stamped recorder (for post-run warm-up truncation) instead of
// the aggregate series.
func (f *TDMFlow) RecordTimed(rec *stats.TimedSeries) { f.rec = rec }

// Enqueue queues one word for presentation, stamped with its injection
// cycle for the latency measurement. It is a staging mutator in the
// sim.Waker sense — sources invoke it from their Eval, so the word
// lands in a staging slice the presenter's Eval never reads (the
// two-phase contract), is merged at the presenter's Commit the same
// cycle whatever order the components were registered in, and becomes
// presentable the next cycle. The wake revises a skip decision already
// taken this cycle so that Commit actually runs.
func (f *TDMFlow) Enqueue(word uint32, stamp uint64) {
	f.staged = append(f.staged, tdmPending{word: word, stamp: stamp})
	if f.tracer != nil {
		f.tracer.Emit(obs.Event{Cycle: stamp, Track: f.track,
			Kind: obs.KindInject, Value: int64(f.out)})
	}
	if f.wake != nil {
		f.wake()
	}
}

// Backlog returns the number of words queued but not yet presented.
func (f *TDMFlow) Backlog() int { return len(f.staged) + len(f.queue) }

// Delivered returns the words observed crossing into the output
// register.
func (f *TDMFlow) Delivered() uint64 { return f.delivered }

// idle reports nothing staged, queued or in flight.
func (f *TDMFlow) idle() bool {
	return len(f.staged) == 0 && len(f.queue) == 0 && len(f.inFlight) == 0
}

// TDMPresenter owns one TDM input port's data/valid registers and
// multiplexes its flows onto their reserved slots. It also observes
// deliveries on each flow's output register — a word counts as
// delivered, records its latency and pays its ToggleReg/Gate/Link
// energy once it has crossed the crossbar into the output register —
// work the classic harness did in an every-cycle Func, here skippable
// whenever the port has nothing queued or in flight. It is the single
// implementation of the slot algorithm shared by the classic stream
// runner (noc.tdmStream feeds it through Enqueue) and the pattern
// harness (RunTDMPattern).
type TDMPresenter struct {
	r     *aethereal.Router
	in    int
	data  *uint32
	valid *bool
	flows []*TDMFlow
	cycle uint64
	wake  func()
}

// SetWake implements sim.Waker: Enqueue is a staging mutator invoked
// from a source component's Eval, so a skip decision already taken this
// cycle must be revised for the enqueued word to be presented on its
// own cycle, whatever order the components were registered in.
func (p *TDMPresenter) SetWake(fn func()) { p.wake = fn }

// NewTDMPresenter wires a presenter to the router's input port in and
// returns it; register it with the simulation world after the router.
func NewTDMPresenter(r *aethereal.Router, in int) *TDMPresenter {
	p := &TDMPresenter{r: r, in: in, data: new(uint32), valid: new(bool)}
	r.ConnectIn(in, p.data, p.valid)
	return p
}

// AddFlow attaches one flow to the presenter: words enqueued on the
// returned flow are presented in its reserved slots, and deliveries are
// observed on output port out, feeding the latency series and charging
// toggleBits per delivered word to the meter.
func (p *TDMPresenter) AddFlow(out int, reserved []bool, lat *stats.Series,
	toggleBits int, meter *power.Meter) *TDMFlow {
	f := &TDMFlow{out: out, reserved: reserved, lat: lat, toggles: toggleBits, meter: meter}
	f.wake = func() {
		if p.wake != nil {
			p.wake()
		}
	}
	p.flows = append(p.flows, f)
	return f
}

// Cycle returns the presenter's local clock, equal to the world clock.
func (p *TDMPresenter) Cycle() uint64 { return p.cycle }

// Eval implements sim.Clocked.
func (p *TDMPresenter) Eval() {
	slots := p.r.P.Slots
	// Observe the registered outputs first: the value visible now was
	// committed from the previous cycle's slot.
	prev := (p.r.Slot() - 1 + slots) % slots
	for _, f := range p.flows {
		if p.r.OutValid[f.out] && p.r.Table.Entry(prev, f.out) == p.in && len(f.inFlight) > 0 {
			head := f.inFlight[0]
			f.inFlight = f.inFlight[1:]
			f.delivered++
			lat := float64(p.cycle - head.stamp)
			if f.rec != nil {
				f.rec.Add(p.cycle, lat)
			} else {
				f.lat.Add(lat)
			}
			f.meter.AddToggles(power.ToggleReg, f.toggles)
			f.meter.AddToggles(power.ToggleGate, f.toggles)
			f.meter.AddToggles(power.ToggleLink, f.toggles)
			if f.tracer != nil {
				f.tracer.Emit(obs.Event{Cycle: p.cycle, Track: f.track,
					Kind: obs.KindDeliver, Value: int64(f.delivered)})
			}
		}
	}
	// The router's next Eval uses the slot after the current one;
	// present a word iff that slot belongs to one of this input's flows
	// and the flow has data queued.
	*p.valid = false
	upcoming := (p.r.Slot() + 1) % slots
	for _, f := range p.flows {
		if f.reserved[upcoming] && len(f.queue) > 0 {
			head := f.queue[0]
			f.queue = f.queue[1:]
			*p.data = head.word
			*p.valid = true
			f.inFlight = append(f.inFlight, head)
			break
		}
	}
}

// Commit implements sim.Clocked: words staged by Enqueue during this
// cycle's Eval phase become queued — visible to the next cycle's
// presentation — in the sequential commit sweep, so the hand-off is
// deterministic under every kernel and any Eval shard count.
func (p *TDMPresenter) Commit() {
	for _, f := range p.flows {
		if len(f.staged) > 0 {
			f.queue = append(f.queue, f.staged...)
			f.staged = f.staged[:0]
		}
	}
	p.cycle++
}

// Quiescent implements sim.Quiescer: nothing queued or in flight on any
// flow. The valid register is always cleared before the port drains to
// this state, so skipping leaves no stale word on the wire.
func (p *TDMPresenter) Quiescent() bool {
	for _, f := range p.flows {
		if !f.idle() {
			return false
		}
	}
	return true
}

// IdleTick implements sim.IdleTicker.
func (p *TDMPresenter) IdleTick() { p.cycle++ }

// IdleWindow implements sim.IdleWindower.
func (p *TDMPresenter) IdleWindow(n uint64) { p.cycle += n }

// RunTDMPattern drives the Æthereal-style TDM router with the projected
// port flows of a spatial pattern. Each flow receives a slot-table
// reservation sized to its rate (ceil(rate×slots) slots, spread over
// the frame); flows the table cannot fully admit run degraded on
// whatever slots they got, and flows with no slots are not established
// — TDM's admission-time answer to overload, the analogue of the
// circuit fabric's lane blocking.
func RunTDMPattern(ap aethereal.Params, flows []pattern.PortFlow, inj pattern.Injection, flipProb float64, cfg RunConfig) (PatternRunResult, error) {
	if err := cfg.Validate(); err != nil {
		return PatternRunResult{}, err
	}
	if err := inj.Validate(); err != nil {
		return PatternRunResult{}, err
	}
	if err := ap.Validate(); err != nil {
		return PatternRunResult{}, err
	}
	if flipProb < 0 || flipProb > 1 {
		return PatternRunResult{}, fmt.Errorf("traffic: flip probability %v out of [0,1]", flipProb)
	}
	r := aethereal.NewRouter(ap)
	meter := power.NewMeter(aethereal.Netlist(ap, cfg.Lib), cfg.Lib, cfg.FreqMHz)
	r.BindMeter(meter)

	w := sim.NewWorld(cfg.worldOpts()...)
	w.Add(r)

	var res PatternRunResult
	res.FlowsRequested = len(flows)
	if cfg.RetainLatency {
		// Same arrangement as the packet harness: the direct path needs
		// retention switched on, the warm-up path always retains.
		res.Latency.Retain()
	}
	toggleBits := int(flipProb*patternWordBits + 0.5)
	latRec := latWarmupRec(cfg)

	presenters := map[int]*TDMPresenter{}
	var presenterOrder []*TDMPresenter
	var sources []*pattern.Source
	for i, f := range flows {
		rate := flowRate(inj, f.Weight)
		if rate <= 0 {
			continue
		}
		in, out := int(f.In), int(f.Out)
		slotsNeeded := int(rate*float64(ap.Slots) + 0.999999)
		if slotsNeeded < 1 {
			slotsNeeded = 1
		}
		reserved := make([]bool, ap.Slots)
		booked := 0
		stride := ap.Slots / slotsNeeded
		if stride < 1 {
			stride = 1
		}
		for k := 0; k < slotsNeeded; k++ {
			for probe := 0; probe < ap.Slots; probe++ {
				s := (k*stride + probe) % ap.Slots
				if r.Table.Entry(s, out) != aethereal.NoInput {
					continue
				}
				if r.Table.InputBusy(s, in) {
					continue
				}
				if err := r.Table.Reserve(s, in, out); err != nil {
					return PatternRunResult{}, err
				}
				reserved[s] = true
				booked++
				break
			}
		}
		if booked == 0 {
			continue // slot table full: flow not admitted
		}
		res.FlowsEstablished++

		pres := presenters[in]
		if pres == nil {
			pres = NewTDMPresenter(r, in)
			presenters[in] = pres
			presenterOrder = append(presenterOrder, pres)
			w.Add(pres)
		}
		fs := pres.AddFlow(out, reserved, &res.Latency, toggleBits, meter)
		if latRec != nil {
			fs.RecordTimed(latRec)
		}
		fs.Trace(cfg.Obs.Tracer, fmt.Sprintf("flow%d.tdm", i))

		gen := bitvec.NewFlipGen(patternWordBits, flipProb, flowSeed(cfg.Seed, i)^0xDA7A)
		src := pattern.NewSource(flowInjection(inj, rate), flowSeed(cfg.Seed, i), cfg.WordsPerStream, nil)
		src.Tracer = cfg.Obs.Tracer
		src.Track = fmt.Sprintf("flow%d.src", i)
		srcRef := src
		src.Emit = func() bool {
			if fs.Backlog() >= feederQueueCap*PatternPacketWords {
				return false
			}
			fs.Enqueue(uint32(uint16(gen.Next())), srcRef.Cycle())
			return true
		}
		w.Add(src)
		sources = append(sources, src)
	}
	if err := r.Table.Validate(); err != nil {
		return PatternRunResult{}, err
	}

	w.Run(cfg.Cycles)
	if cfg.Observe != nil {
		cfg.Observe(w)
	}

	for _, s := range sources {
		res.WordsSent += s.Sent()
	}
	for _, pres := range presenterOrder {
		for _, f := range pres.flows {
			res.WordsDelivered += f.Delivered()
		}
	}
	res.WarmupCycles = applyLatWarmup(cfg, latRec, &res.Latency)
	res.Power = meter.Report("aethereal / pattern")
	res.Attribution = meter.AttributionSorted()
	return res, nil
}

var (
	_ sim.Quiescer     = (*tileInjector)(nil)
	_ sim.Quiescer     = (*flitFeeder)(nil)
	_ sim.IdleWindower = (*patternDrain)(nil)
	_ sim.IdleWindower = (*TDMPresenter)(nil)
	_ sim.Waker        = (*TDMPresenter)(nil)
)
