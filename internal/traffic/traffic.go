// Package traffic implements the paper's benchmark methodology (Section 6):
// data sources with a controlled bit-flip rate and load, the three stream
// definitions of Table 3, and the four traffic scenarios of Fig. 8. It also
// provides the runners that drive one circuit-switched assembly or one
// packet-switched router with a scenario while a power meter listens — the
// machinery behind Figures 9 and 10.
package traffic

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/sweep"
)

// Stream is one entry of Table 3: a unidirectional data stream through the
// router from an input port to an output port, at 100% of a lane's
// bandwidth.
type Stream struct {
	// ID is the paper's stream number (1-based).
	ID int
	// In is the port the stream enters the router on.
	In core.Port
	// Out is the port the stream leaves on.
	Out core.Port
}

// String renders the stream like Table 3.
func (s Stream) String() string {
	return fmt.Sprintf("stream %d: %v -> %v", s.ID, s.In, s.Out)
}

// PaperStreams returns Table 3's stream definitions:
//
//	1  Tile          -> Router (East)
//	2  Router (North) -> Tile
//	3  Router (West)  -> Router (East)
func PaperStreams() []Stream {
	return []Stream{
		{ID: 1, In: core.Tile, Out: core.East},
		{ID: 2, In: core.North, Out: core.Tile},
		{ID: 3, In: core.West, Out: core.East},
	}
}

// Scenario is one of the paper's four test scenarios (Fig. 8): a set of
// concurrent streams.
type Scenario struct {
	// Name is the paper's roman numeral.
	Name string
	// Streams are the concurrently active streams.
	Streams []Stream
}

// Scenarios returns the paper's four scenarios: I carries no data (the
// static offset measurement), II adds stream 1, III streams 1–2, IV
// streams 1–3. In scenario IV streams 1 and 3 share output port East: the
// circuit-switched router separates them onto different lanes (lane
// division multiplexing) while the packet-switched router time-multiplexes
// them — the comparison the paper draws from it.
func Scenarios() []Scenario {
	s := PaperStreams()
	return []Scenario{
		{Name: "I", Streams: nil},
		{Name: "II", Streams: s[:1]},
		{Name: "III", Streams: s[:2]},
		{Name: "IV", Streams: s[:3]},
	}
}

// Pattern is the data knob of the paper's test set: the expected fraction
// of bit flips between consecutive data words (0 best case, 0.5 typical,
// 1 worst case) and the offered load as a fraction of a lane's bandwidth.
type Pattern struct {
	// FlipProb is the expected bit-flip fraction in [0,1].
	FlipProb float64
	// Load is the offered load in [0,1]; the paper's figures use 1.
	Load float64
}

// Validate checks the pattern.
func (p Pattern) Validate() error {
	if p.FlipProb < 0 || p.FlipProb > 1 {
		return fmt.Errorf("traffic: flip probability %v out of [0,1]", p.FlipProb)
	}
	if p.Load < 0 || p.Load > 1 {
		return fmt.Errorf("traffic: load %v out of [0,1]", p.Load)
	}
	return nil
}

// BitFlipCases returns the paper's three data cases: best (0%), typical
// (50%) and worst (100%) bit flips.
func BitFlipCases() []float64 { return []float64{0, 0.5, 1} }

// Source produces a stream's data words: a bit-flip-controlled word
// generator plus a Bernoulli load gate. Two sources with different IDs are
// statistically independent but each is deterministic run to run.
type Source struct {
	gen  *bitvec.FlipGen
	load float64
	rng  *bitvec.XorShift64
	sent uint64
}

// NewSource returns a source for the pattern, seeded by the stream id.
func NewSource(p Pattern, streamID int) *Source {
	return NewSourceSeeded(p, streamID, 0)
}

// NewSourceSeeded returns a source whose random streams derive from both
// the stream id and a run-level base seed: distinct sweep cells draw
// statistically independent sequences while each cell stays reproducible
// regardless of scheduling. A zero base reproduces NewSource exactly.
func NewSourceSeeded(p Pattern, streamID int, base uint64) *Source {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	seed := uint64(streamID)*0x9E3779B97F4A7C15 + 12345
	if base != 0 {
		seed ^= sweep.Mix64(base)
	}
	return &Source{
		gen:  bitvec.NewFlipGen(16, p.FlipProb, seed),
		load: p.Load,
		rng:  bitvec.NewXorShift64(seed ^ 0xABCDEF),
	}
}

// Offer reports whether the source wants to emit a word this opportunity
// (the load gate) and, if so, returns it.
func (s *Source) Offer() (core.Word, bool) {
	if s.load < 1 && !s.rng.Bool(s.load) {
		return core.Word{}, false
	}
	s.sent++
	return core.DataWord(uint16(s.gen.Next())), true
}

// Sent returns the number of words emitted.
func (s *Source) Sent() uint64 { return s.sent }
