// Package maporder implements the nocvet analyzer that flags
// order-sensitive work performed while ranging over a map. Go randomizes
// map iteration order per run, so a range-over-map body that appends to a
// slice, writes to an encoder or stream, or accumulates floating-point
// values produces output that differs run to run — the exact bug class
// power.Meter.AttributionSorted exists to prevent, here checked
// mechanically everywhere Result/CSV/JSON output is assembled.
//
// The sanctioned idiom is the one the repo already uses: collect the keys,
// sort them, then index the map in sorted order. An append-only loop whose
// enclosing function sorts afterwards (sort.* or slices.Sort*) is
// recognized as that idiom and not flagged; encoder writes and float
// accumulation cannot be repaired by sorting after the fact and are always
// flagged.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/nocvet"
)

// Analyzer flags order-sensitive bodies of range-over-map loops.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive work inside range-over-map loops in simulation packages\n\n" +
		"Map iteration order is randomized per run; appending to a slice without a " +
		"subsequent sort, writing to an encoder, or accumulating floats inside such a " +
		"loop breaks byte-identical output. Collect and sort the keys first " +
		"(the power.AttributionSorted idiom). Suppress with //nocvet:allow maporder.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// writerMethods are method or function names whose call inside a
// range-over-map body emits bytes in iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !nocvet.InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := nocvet.CollectSuppressions(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		appendPos := findAppend(pass, rs)
		if sortsAfter(pass, nocvet.EnclosingFunc(stack), rs) {
			appendPos = token.NoPos
		}
		if appendPos.IsValid() {
			nocvet.Report(pass, sup, appendPos,
				"append inside range over map without a later key sort: iteration order is randomized per run; collect and sort the keys first")
		}
		if pos, name := findWriter(pass, rs); pos.IsValid() {
			nocvet.Report(pass, sup, pos,
				"%s inside range over map emits bytes in randomized iteration order; collect and sort the keys first", name)
		}
		if pos := findFloatAccum(pass, rs); pos.IsValid() {
			nocvet.Report(pass, sup, pos,
				"floating-point accumulation inside range over map is order-sensitive (float addition is not associative); iterate sorted keys instead")
		}
		return true
	})
	return nil, nil
}

// findAppend returns the position of the first append to a variable
// declared outside the loop; such an append is repairable by sorting
// afterwards, which the caller checks with sortsAfter.
func findAppend(pass *analysis.Pass, rs *ast.RangeStmt) token.Pos {
	var pos token.Pos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if len(call.Args) > 0 && outsideLoop(pass, call.Args[0], rs) && !pos.IsValid() {
			pos = call.Pos()
		}
		return true
	})
	return pos
}

// outsideLoop reports whether the root variable of expr was declared
// outside the range statement (appending to a loop-local slice is
// harmless — its order dies with the iteration).
func outsideLoop(pass *analysis.Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	root := rootIdent(expr)
	if root == nil {
		return true
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// rootIdent unwraps selector/index/paren/star chains to the base
// identifier, or nil for non-identifier roots.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// findWriter returns the first call to an encoder/stream write inside the
// loop body.
func findWriter(pass *analysis.Pass, rs *ast.RangeStmt) (token.Pos, string) {
	var pos token.Pos
	var name string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !writerMethods[sel.Sel.Name] {
			return true
		}
		if !pos.IsValid() {
			pos, name = call.Pos(), sel.Sel.Name
		}
		return true
	})
	return pos, name
}

// findFloatAccum returns the first compound assignment (+=, -=, *=, /=)
// accumulating into a float declared outside the loop.
func findFloatAccum(pass *analysis.Pass, rs *ast.RangeStmt) token.Pos {
	var pos token.Pos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			t := pass.TypesInfo.TypeOf(lhs)
			if t == nil {
				continue
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsFloat == 0 {
				continue
			}
			if outsideLoop(pass, lhs, rs) && !pos.IsValid() {
				pos = as.Pos()
			}
		}
		return true
	})
	return pos
}

// sortsAfter reports whether the enclosing function calls into package
// sort or slices lexically after the loop — the collect-then-sort idiom.
func sortsAfter(pass *analysis.Pass, fn ast.Node, rs *ast.RangeStmt) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
			if p := obj.Pkg().Path(); p == "sort" || p == "slices" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
