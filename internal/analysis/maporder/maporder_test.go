package maporder_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, maporder.Analyzer, "a")
}
