// Package a is maporder golden-test input: order-sensitive work inside
// range-over-map loops, plus the sanctioned collect-then-sort idiom.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over map without a later key sort`
	}
	return out
}

// goodSortedKeys is the sanctioned idiom: collect, sort, then index.
func goodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badWriter(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `Fprintf inside range over map emits bytes in randomized iteration order`
	}
}

func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation inside range over map is order-sensitive`
	}
	return sum
}

// badFloatSortAfter shows a later sort excuses the append but cannot
// repair the float accumulation, which already happened in map order.
func badFloatSortAfter(m map[string]float64) (float64, []string) {
	var sum float64
	var keys []string
	for k, v := range m {
		keys = append(keys, k)
		sum += v // want `floating-point accumulation inside range over map`
	}
	sort.Strings(keys)
	return sum, keys
}

// goodLocal appends only to a loop-local slice and accumulates an int —
// neither escapes the iteration in an order-sensitive way.
func goodLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}

// goodSlice ranges over a slice, not a map.
func goodSlice(s []string, sb *strings.Builder) {
	var out []string
	for _, v := range s {
		out = append(out, v)
		fmt.Fprintln(sb, v)
	}
}

// goodMapWrite builds another map — map writes are order-insensitive.
func goodMapWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //nocvet:allow maporder -- consumer sorts
	}
	return out
}
