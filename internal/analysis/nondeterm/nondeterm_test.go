package nondeterm_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/nocvet"
	"repro/internal/analysis/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analyzertest.Run(t, nondeterm.Analyzer, "a")
}

// TestSanctionedAnchor pins the nondeterm allowlist to its single named
// anchor: the value-type PRNG in internal/bitvec is the only sanctioned
// randomness source in simulation code (see internal/bitvec/rand.go).
func TestSanctionedAnchor(t *testing.T) {
	if nocvet.SanctionedRNG != "repro/internal/bitvec" {
		t.Fatalf("sanctioned RNG anchor moved: %s", nocvet.SanctionedRNG)
	}
	if !nocvet.InScope(nocvet.SanctionedRNG) {
		t.Fatalf("the sanctioned RNG package must itself be in nocvet scope")
	}
}
