// Package a is nondeterm golden-test input: every entropy read below is
// the kind of wall-clock or global-RNG dependence that breaks
// byte-identical replay in simulation code.
package a

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func bad() {
	_ = time.Now()                     // want `time\.Now: wall-clock read in simulation package breaks deterministic replay`
	_ = time.Since(time.Time{})        // want `time\.Since: wall-clock read`
	time.Sleep(1)                      // want `time\.Sleep: wall-clock stall`
	_ = time.NewTicker(1)              // want `time\.NewTicker: wall-clock timer`
	_ = rand.Intn(4)                   // want `math/rand\.Intn: globally seeded RNG`
	_ = rand.Float64()                 // want `math/rand\.Float64: globally seeded RNG`
	rand.Shuffle(2, func(i, j int) {}) // want `math/rand\.Shuffle: globally seeded RNG`
	_ = randv2.IntN(3)                 // want `math/rand/v2\.IntN: globally seeded RNG`
	var buf [8]byte
	_, _ = crand.Read(buf[:]) // want `crypto/rand\.Read: hardware entropy`
	_ = crand.Reader          // want `crypto/rand\.Reader: hardware entropy`
	_ = os.Getpid()           // want `os\.Getpid: process entropy`
}

func good() {
	// Explicitly seeded construction is allowed: the determinism sin is
	// reading the process-global stream, not building a seeded one.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4) // method on a seeded *rand.Rand, not the global stream
	r2 := randv2.New(randv2.NewPCG(1, 2))
	_ = r2.IntN(4)
	_ = os.Getenv("HOME") // not an entropy source
	_ = time.Duration(5)  // a type conversion, not a clock read
}

func suppressed() {
	//nocvet:allow nondeterm
	_ = time.Now()
	_ = time.Now() //nocvet:allow nondeterm -- wall time wanted here
}
