// Package nondeterm implements the nocvet analyzer that flags sources of
// run-to-run nondeterminism inside simulation packages: wall-clock reads,
// the globally seeded math/rand generators, OS entropy, and crypto/rand.
//
// Every headline claim the repo makes — byte-identical results across the
// naive/gated/event kernels, byte-identical sweep output for any worker
// count, float-exact idle-window replay — requires that the only
// randomness in simulation code flows from an explicit seed. The one
// sanctioned source is the value-type, seed-constructed
// bitvec.XorShift64 stream (nocvet.SanctionedRNG).
package nondeterm

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/nocvet"
)

// Analyzer flags wall-clock and global-RNG reads in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "flag wall-clock reads, global math/rand, and OS entropy in simulation packages\n\n" +
		"Simulation results must be a pure function of the scenario and its seed; " +
		"any time.Now, globally seeded rand call, or entropy read breaks byte-identical " +
		"replay. Use the seeded value-type PRNG in " + nocvet.SanctionedRNG + " instead. " +
		"Suppress an intentional use with //nocvet:allow nondeterm.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// denied maps package path -> function/variable name -> short reason.
// Global rand constructors that merely wrap an explicit caller-provided
// seed (rand.New, rand.NewSource, …) are allowed: the determinism sin is
// reading the process-global or entropy-seeded stream, not building a
// seeded one.
var denied = map[string]map[string]string{
	"time": {
		"Now": "wall-clock read", "Since": "wall-clock read", "Until": "wall-clock read",
		"After": "wall-clock timer", "AfterFunc": "wall-clock timer", "Tick": "wall-clock timer",
		"NewTicker": "wall-clock timer", "NewTimer": "wall-clock timer", "Sleep": "wall-clock stall",
	},
	"os": {
		"Getpid": "process entropy", "Getppid": "process entropy",
	},
	"crypto/rand": {
		"Read": "hardware entropy", "Reader": "hardware entropy", "Int": "hardware entropy",
		"Prime": "hardware entropy", "Text": "hardware entropy",
	},
}

// randConstructors are the package-level functions of math/rand and
// math/rand/v2 that construct explicitly seeded generators and are
// therefore allowed; every other package-level function reads the global
// (unseeded or entropy-seeded) stream and is denied.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !nocvet.InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := nocvet.CollectSuppressions(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return
		}
		// Only package-level objects referenced through the package
		// qualifier (time.Now, rand.Intn, rand.Reader) are of interest;
		// methods and fields resolve to objects too, but their Pkg paths
		// never match the denylist of stdlib entropy packages.
		path, name := obj.Pkg().Path(), obj.Name()
		reason := ""
		switch path {
		case "math/rand", "math/rand/v2":
			if isGlobalFunc(obj) && !randConstructors[name] {
				reason = "globally seeded RNG"
			}
		default:
			reason = denied[path][name]
		}
		if reason == "" {
			return
		}
		nocvet.Report(pass, sup, sel.Pos(),
			"%s.%s: %s in simulation package breaks deterministic replay; use the seeded bitvec.XorShift64 (%s) or a cycle count instead",
			path, name, reason, nocvet.SanctionedRNG)
	})
	return nil, nil
}

// isGlobalFunc reports whether obj is a package-level function (not a
// method, so rng.Intn on an explicitly constructed *rand.Rand stays
// allowed).
func isGlobalFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
