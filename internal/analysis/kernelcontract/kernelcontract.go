// Package kernelcontract implements the nocvet analyzer that checks the
// sim.Clocked implementation matrix of every component type:
//
//   - A component implementing sim.Quiescer must also implement
//     sim.IdleTicker (or sim.IdleWindower, which embeds it). A quiescer
//     without idle replay either has no per-cycle bookkeeping — in which
//     case an explicit no-op IdleTick documents that — or it has some and
//     silently desyncs power accounting under fast-forward.
//   - A component implementing sim.Timed must also implement
//     sim.Quiescer: the event kernel only polls NextEvent on fully
//     quiescent cycles, so a non-quiescent Timed component blocks every
//     fast-forward it schedules and its events are never honoured.
//   - A component implementing sim.Timed must also implement
//     sim.IdleWindower (the parking contract): the active kernel parks
//     timed components between events and replays the skipped stretch as
//     one batched IdleWindow when they unpark. With only a per-cycle
//     IdleTick the batched replay is unavailable, so parking would
//     silently change the component's idle bookkeeping.
//
// Both checks apply to named non-interface types that implement
// sim.Clocked. Matching is structural (against synthesized copies of the
// kernel interfaces), so components are checked even in packages that
// never import sim directly.
package kernelcontract

import (
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/nocvet"
)

// Analyzer checks Quiescer/IdleTicker/Timed implementation consistency.
var Analyzer = &analysis.Analyzer{
	Name: "kernelcontract",
	Doc: "check sim.Clocked components implement consistent kernel contracts\n\n" +
		"sim.Quiescer without sim.IdleTicker/IdleWindower desyncs idle bookkeeping " +
		"under fast-forward; sim.Timed without sim.Quiescer blocks every fast-forward " +
		"it schedules. Suppress with //nocvet:allow kernelcontract on the type declaration.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !nocvet.InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	k := nocvet.Kernel()
	sup := nocvet.CollectSuppressions(pass)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && !tn.IsAlias() {
			checkType(pass, sup, tn, k)
		}
	}
	return nil, nil
}

func checkType(pass *analysis.Pass, sup *nocvet.Suppressions, tn *types.TypeName, k nocvet.KernelIfaces) {
	T := tn.Type()
	if _, isIface := T.Underlying().(*types.Interface); isIface {
		return
	}
	if !nocvet.Implements(T, k.Clocked) {
		return
	}
	if nocvet.Implements(T, k.Quiescer) &&
		!nocvet.Implements(T, k.IdleTicker) && !nocvet.Implements(T, k.IdleWindower) {
		nocvet.Report(pass, sup, tn.Pos(),
			"%s implements sim.Quiescer but not sim.IdleTicker or sim.IdleWindower: idle bookkeeping desyncs under fast-forward (add an IdleTick, a no-op one if the component has none)",
			tn.Name())
	}
	if nocvet.Implements(T, k.Timed) && !nocvet.Implements(T, k.Quiescer) {
		nocvet.Report(pass, sup, tn.Pos(),
			"%s implements sim.Timed but not sim.Quiescer: a non-quiescent Timed component blocks every fast-forward it schedules",
			tn.Name())
	}
	if nocvet.Implements(T, k.Timed) && !nocvet.Implements(T, k.IdleWindower) {
		nocvet.Report(pass, sup, tn.Pos(),
			"%s implements sim.Timed but not sim.IdleWindower: the active kernel parks timed components and replays skipped cycles as one batched IdleWindow (add one, typically cycle += n)",
			tn.Name())
	}
}
