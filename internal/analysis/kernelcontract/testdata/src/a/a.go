// Package a is kernelcontract golden-test input: component types with
// consistent and inconsistent Quiescer/IdleTicker/Timed matrices. The
// analyzer matches the kernel interfaces structurally, so no sim import
// is needed.
package a

// Good is a quiescent component with idle bookkeeping — the full,
// consistent contract.
type Good struct{ cycle uint64 }

func (g *Good) Eval()           {}
func (g *Good) Commit()         {}
func (g *Good) Quiescent() bool { return true }
func (g *Good) IdleTick()       { g.cycle++ }

// GoodWindower replays idle windows in one call.
type GoodWindower struct{ cycle uint64 }

func (g *GoodWindower) Eval()               {}
func (g *GoodWindower) Commit()             {}
func (g *GoodWindower) Quiescent() bool     { return true }
func (g *GoodWindower) IdleTick()           { g.cycle++ }
func (g *GoodWindower) IdleWindow(n uint64) { g.cycle += n }

// BadQuiescer skips cycles but has no idle replay.
type BadQuiescer struct{} // want `BadQuiescer implements sim\.Quiescer but not sim\.IdleTicker or sim\.IdleWindower`

func (b *BadQuiescer) Eval()           {}
func (b *BadQuiescer) Commit()         {}
func (b *BadQuiescer) Quiescent() bool { return true }

// BadTimed self-schedules events but can never be skipped, so it blocks
// every fast-forward it schedules.
type BadTimed struct{} // want `BadTimed implements sim\.Timed but not sim\.Quiescer` `BadTimed implements sim\.Timed but not sim\.IdleWindower`

func (b *BadTimed) Eval()                     {}
func (b *BadTimed) Commit()                   {}
func (b *BadTimed) NextEvent() (uint64, bool) { return 0, false }

// GoodTimed is the consistent Timed contract: quiescent, with batched
// idle replay so the active kernel can park it between events.
type GoodTimed struct{ cycle uint64 }

func (g *GoodTimed) Eval()                     {}
func (g *GoodTimed) Commit()                   {}
func (g *GoodTimed) Quiescent() bool           { return true }
func (g *GoodTimed) IdleTick()                 { g.cycle++ }
func (g *GoodTimed) IdleWindow(n uint64)       { g.cycle += n }
func (g *GoodTimed) NextEvent() (uint64, bool) { return 0, false }

// BadTimedTicker schedules events and is quiescent, but only replays
// idle time cycle by cycle — the active kernel cannot park it without
// desyncing its bookkeeping.
type BadTimedTicker struct{ cycle uint64 } // want `BadTimedTicker implements sim\.Timed but not sim\.IdleWindower`

func (b *BadTimedTicker) Eval()                     {}
func (b *BadTimedTicker) Commit()                   {}
func (b *BadTimedTicker) Quiescent() bool           { return true }
func (b *BadTimedTicker) IdleTick()                 { b.cycle++ }
func (b *BadTimedTicker) NextEvent() (uint64, bool) { return 0, false }

// NotAComponent has a Quiescent method but no Eval/Commit; the kernel
// contracts do not apply.
type NotAComponent struct{}

func (n *NotAComponent) Quiescent() bool { return false }

// Monitor is a plain every-cycle component — no optional interfaces, no
// contract to violate.
type Monitor struct{}

func (m *Monitor) Eval()   {}
func (m *Monitor) Commit() {}

// Suppressed violates the Quiescer contract intentionally.
type Suppressed struct{} //nocvet:allow kernelcontract -- stateless sink, nothing to replay

func (s *Suppressed) Eval()           {}
func (s *Suppressed) Commit()         {}
func (s *Suppressed) Quiescent() bool { return true }
