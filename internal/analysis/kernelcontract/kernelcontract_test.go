package kernelcontract_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/kernelcontract"
)

func TestKernelContract(t *testing.T) {
	analyzertest.Run(t, kernelcontract.Analyzer, "a")
}
