// Package analyzertest is a minimal golden-file test harness for the
// nocvet analyzers, standing in for golang.org/x/tools/go/analysis/analysistest
// (which needs go/packages and is not part of the toolchain-vendored
// x/tools subset this repo builds against).
//
// Layout and conventions follow analysistest: test packages live under
// testdata/src/<pkg>/, and every line expecting a diagnostic carries a
// trailing comment of the form
//
//	// want "regexp"
//
// (multiple quoted regexps allowed). The harness parses and type-checks
// the package — resolving imports first against sibling testdata
// packages, then against the standard library from source — runs the
// analyzer with its inspect dependency satisfied, and fails the test on
// any unmatched diagnostic or unfulfilled expectation.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run analyzes testdata/src/<pkg> for each named package with a and
// checks the reported diagnostics against the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(root)
	for _, pkg := range pkgs {
		p, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading %s: %v", pkg, err)
		}
		runOne(t, a, ld.fset, p)
	}
}

// loaded is one type-checked testdata package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves imports against testdata siblings first, then the
// standard library (compiled from GOROOT source, since the toolchain
// ships no prebuilt export data).
type loader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*loaded
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*loaded),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.root, path)); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &loaded{pkg: pkg, files: files, info: info}
	l.cache[path] = p
	return p, nil
}

// runOne executes the analyzer over one loaded package and diffs the
// diagnostics against the // want expectations.
func runOne(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, p *loaded) {
	t.Helper()
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
		Report:     func(d analysis.Diagnostic) { got = append(got, d) },
	}
	for _, req := range a.Requires {
		if req == inspect.Analyzer {
			pass.ResultOf[inspect.Analyzer] = inspector.New(p.files)
		} else {
			t.Fatalf("analyzer %s requires unsupported dependency %s", a.Name, req.Name)
		}
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s failed on %s: %v", a.Name, p.pkg.Path(), err)
	}

	want := expectations(t, fset, p.files)
	for _, d := range got {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for i, rx := range want[key] {
			if rx != nil && rx.MatchString(d.Message) {
				want[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, rx := range want[k] {
			if rx != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, rx)
			}
		}
	}
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// expectations collects the // want "rx" comments, keyed by file:line.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	want := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range quotedStrings(m[1]) {
					rx, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, q, err)
					}
					want[key] = append(want[key], rx)
				}
			}
		}
	}
	return want
}

// quotedStrings extracts consecutive Go-quoted strings ("…" or `…`).
func quotedStrings(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			q, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return out
			}
			out = append(out, q)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return out
		}
	}
}
