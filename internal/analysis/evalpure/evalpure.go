// Package evalpure implements the nocvet analyzer that enforces the
// two-phase Eval/Commit discipline mechanically: inside an Eval method,
// no assignment may write a field of another component. Eval computes
// next state from the currently visible outputs of all components; only
// Commit may publish state. A cross-component write in Eval makes the
// result depend on component evaluation order — exactly the property
// parallel intra-world stepping (ROADMAP item 2) must be able to assume
// never holds.
//
// The rule: for every assignment (including ++/-- and compound forms)
// whose left-hand side selects a struct field, if the expression being
// selected on has a type that implements sim.Clocked and is not the
// method's own receiver, the write is flagged. Writes to the receiver's
// own fields (r.x = …) and to non-component sub-structs (r.latch.v = …)
// stay allowed; mutations through the sanctioned staging-mutator calls
// (peer.Push(w), with sim.Waker wake-up) are method calls, not field
// writes, and are untouched.
package evalpure

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/nocvet"
)

// Analyzer flags cross-component field writes inside Eval methods.
var Analyzer = &analysis.Analyzer{
	Name: "evalpure",
	Doc: "flag writes to another component's fields from inside an Eval method\n\n" +
		"The two-phase kernel contract requires Eval to leave every externally visible " +
		"value unchanged; cross-component writes belong in Commit or behind a staging " +
		"mutator. Suppress with //nocvet:allow evalpure.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !nocvet.InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	clocked := nocvet.Kernel().Clocked
	sup := nocvet.CollectSuppressions(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		recv := evalReceiver(pass, fd, clocked)
		if recv == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(pass, sup, clocked, recv, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, sup, clocked, recv, st.X)
			}
			return true
		})
	})
	return nil, nil
}

// evalReceiver returns the receiver variable of fd when fd is the Eval()
// method of a type implementing sim.Clocked, else nil.
func evalReceiver(pass *analysis.Pass, fd *ast.FuncDecl, clocked *types.Interface) *types.Var {
	if fd.Name.Name != "Eval" || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
		return nil
	}
	if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() != 0 {
		return nil
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil || !nocvet.Implements(sig.Recv().Type(), clocked) {
		return nil
	}
	// Resolve the receiver variable the body's identifiers actually bind
	// to (the signature's Recv is a distinct object). An anonymous
	// receiver has no variable; the signature object then never matches,
	// which is correct — the body cannot reference the receiver at all.
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		if v, ok := pass.TypesInfo.Defs[names[0]].(*types.Var); ok {
			return v
		}
	}
	return sig.Recv()
}

// checkWrite flags lhs when it is a field selection reached through a
// component expression other than the receiver itself. The whole base
// chain is walked so r.peer.Credit = 1, p.Credit = 1 (p := r.peer) and
// r.peer.latch.V = 1 are all caught, while r.x and r.latch.V stay
// allowed.
func checkWrite(pass *analysis.Pass, sup *nocvet.Suppressions, clocked *types.Interface, recv *types.Var, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := pass.TypesInfo.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
		return
	}
	for e := ast.Expr(sel.X); ; {
		e = ast.Unparen(e)
		if t := pass.TypesInfo.TypeOf(e); t != nil && nocvet.Implements(deref(t), clocked) {
			if isReceiver(pass, e, recv) {
				return // write stays within the receiver's own state
			}
			nocvet.Report(pass, sup, lhs.Pos(),
				"Eval writes field %s of another component (%s): two-phase discipline requires Eval to stage state and Commit to publish it; move the write to Commit or use a staging mutator",
				sel.Sel.Name, types.TypeString(deref(t), types.RelativeTo(pass.Pkg)))
			return
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isReceiver reports whether expr denotes the method's receiver variable
// itself (allowing parens and explicit dereference of a pointer
// receiver).
func isReceiver(pass *analysis.Pass, expr ast.Expr, recv *types.Var) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(e) == recv
		default:
			return false
		}
	}
}
