// Package a is evalpure golden-test input: Eval methods that stay within
// their own component's state, and Eval methods that reach into another
// component's fields.
package a

// Latch is a plain value sub-struct, not a component.
type Latch struct{ V int }

// Peer is a component another component might wrongly write to.
type Peer struct {
	Credit int
	latch  Latch
}

func (p *Peer) Eval()   {}
func (p *Peer) Commit() {}

// Push is a staging mutator: calling it from a neighbour's Eval is the
// sanctioned pattern (paired with sim.Waker) and is not flagged.
func (p *Peer) Push(v int) { p.latch.V = v }

// R exercises the write rules.
type R struct {
	x     int
	latch Latch
	peer  *Peer
	peers []*Peer
}

func (r *R) Eval() {
	r.x = 1       // own field: allowed
	r.latch.V = 2 // own non-component sub-struct: allowed
	r.x++         // own field inc: allowed

	r.peer.Credit = 3     // want `Eval writes field Credit of another component \(Peer\)`
	r.peer.Credit++       // want `Eval writes field Credit of another component`
	r.peers[0].Credit = 4 // want `Eval writes field Credit of another component`
	r.peer.latch.V = 5    // want `Eval writes field V of another component`

	p := r.peer
	p.Credit = 6 // want `Eval writes field Credit of another component`

	p.Push(7) // mutator call, not a field write: allowed

	var local Latch
	local.V = 8 // local non-component: allowed
	_ = local

	r.peer.Credit = 9 //nocvet:allow evalpure -- config write, world not running
}

// Commit may publish anywhere — only Eval is checked.
func (r *R) Commit() {
	r.peer.Credit = 10
}

// Eval on a non-component type (no Commit) is not checked.
type NotAComponent struct{ peer *Peer }

func (n *NotAComponent) Eval() {
	n.peer.Credit = 11
}
