package evalpure_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/evalpure"
)

func TestEvalPure(t *testing.T) {
	analyzertest.Run(t, evalpure.Analyzer, "a")
}
