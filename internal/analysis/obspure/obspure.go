// Package obspure implements the nocvet analyzer that keeps the
// observability layer honest about its two load-bearing promises:
// enabling tracing or metrics never changes simulation results, and a
// disabled tracer costs (almost) nothing on the hot path.
//
// Two rules, applied to the simulation packages:
//
//  1. Every tracer Emit call must be nil-guarded: the call must sit in
//     the taken branch of an if whose condition nil-checks the very
//     expression the method is called on (`if t != nil { t.Emit(...) }`,
//     init-statement aliases included). Calling Emit on a nil interface
//     panics, and the guard is also what keeps the disabled hot path
//     free of obs.Event argument construction — the <2% overhead
//     contract the benchmark gate enforces.
//
//  2. An observation block — an if whose condition nil-checks an
//     observability value (a tracer interface, *obs.Registry,
//     *obs.Collector) and whose body emits events or drives metric
//     instruments — may only read component state. Any assignment or
//     ++/-- targeting state declared outside the block is flagged:
//     such a write executes only when observability is enabled, which
//     is exactly how tracing would silently change results. Blocks
//     that merely install hooks (no Emit/Add/Set/Observe inside) are
//     configuration, not observation, and stay unrestricted.
//
// Metric instruments (obs.Counter/Gauge/Histogram) are nil-receiver
// safe by design, so rule 1 deliberately covers only Emit; the
// sanctioned hot-path pattern hoists instruments at construction time
// and calls them unguarded.
//
// The obs package itself is exempt: it is the sink, not an observer.
package obspure

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/nocvet"
)

// Analyzer enforces the observability purity contract.
var Analyzer = &analysis.Analyzer{
	Name: "obspure",
	Doc: "flag unguarded tracer Emit calls and state writes inside observability guard blocks\n\n" +
		"Tracing and metrics must observe the simulation without steering it: Emit needs a " +
		"nil guard (panic safety and the zero-overhead-when-disabled contract), and a " +
		"nil-guarded observation block may only read component state. Suppress with " +
		"//nocvet:allow obspure.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// obsPath is the import path of the observability package; the analyzer
// matches its named types and exempts the package itself.
const obsPath = "repro/internal/obs"

func run(pass *analysis.Pass) (interface{}, error) {
	if !nocvet.InScope(pass.Pkg.Path()) || pass.Pkg.Path() == obsPath {
		return nil, nil
	}
	sup := nocvet.CollectSuppressions(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Rule 1: every Emit call nil-guards its receiver.
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		recv, ok := emitReceiver(pass, call)
		if !ok {
			return true
		}
		if !nilGuarded(pass, stack, recv) {
			nocvet.Report(pass, sup, call.Pos(),
				"tracer Emit call is not nil-guarded: wrap it in `if ... != nil { ... }` on the receiver so a disabled tracer neither panics nor constructs the event")
		}
		return true
	})

	// Rule 2: observation blocks only read state.
	ins.Preorder([]ast.Node{(*ast.IfStmt)(nil)}, func(n ast.Node) {
		ifs := n.(*ast.IfStmt)
		if !condChecksObsNil(pass, ifs.Cond) {
			return
		}
		if !containsObsCall(pass, ifs.Body) {
			return
		}
		checkReadOnly(pass, sup, ifs.Body)
	})
	return nil, nil
}

// emitReceiver returns the receiver expression of call when it is a
// tracer Emit method call — a method named Emit taking exactly one
// parameter of a type named Event and returning nothing — else false.
// The shape match is structural, so the obs.Tracer interface, concrete
// sinks like *obs.Collector, and the golden-test stubs all count.
func emitReceiver(pass *analysis.Pass, call *ast.CallExpr) (ast.Expr, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "Emit" {
		return nil, false
	}
	sel := pass.TypesInfo.Selections[fun]
	if sel == nil || sel.Kind() != types.MethodVal {
		return nil, false
	}
	sig, ok := sel.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return nil, false
	}
	if !typeNamed(sig.Params().At(0).Type(), "Event") {
		return nil, false
	}
	return ast.Unparen(fun.X), true
}

// typeNamed reports whether t (possibly behind a pointer) is a named
// type with the given name.
func typeNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// nilGuarded reports whether the innermost-to-outermost stack contains
// an if statement that nil-checks recv and whose taken branch contains
// the call: `recv != nil` with the call in the body, or `recv == nil`
// with the call in the else branch.
func nilGuarded(pass *analysis.Pass, stack []ast.Node, recv ast.Expr) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		branch := stack[i+1] // the if child the call descends through
		if condHasNilCheck(ifs.Cond, recv, token.NEQ) && branch == ast.Node(ifs.Body) {
			return true
		}
		if condHasNilCheck(ifs.Cond, recv, token.EQL) && branch == ifs.Else {
			return true
		}
	}
	return false
}

// condHasNilCheck reports whether cond contains `recv <op> nil` (either
// operand order), descending through && and || and parentheses.
func condHasNilCheck(cond ast.Expr, recv ast.Expr, op token.Token) bool {
	cond = ast.Unparen(cond)
	b, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LAND, token.LOR:
		return condHasNilCheck(b.X, recv, op) || condHasNilCheck(b.Y, recv, op)
	case op:
		return (isNilIdent(b.Y) && exprEqual(b.X, recv)) ||
			(isNilIdent(b.X) && exprEqual(b.Y, recv))
	}
	return false
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// exprEqual reports whether a and b are the same identifier/selector
// chain — the structural equality a guard needs (x, s.tracer,
// cfg.obs.Tracer, ...).
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && exprEqual(av.X, bv.X)
	}
	return false
}

// condChecksObsNil reports whether cond contains a `x != nil` check
// whose operand is an observability value.
func condChecksObsNil(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.NEQ {
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			other := b.Y
			if side == b.Y {
				other = b.X
			}
			if isNilIdent(other) && isObsValue(pass.TypesInfo.TypeOf(side)) {
				found = true
			}
		}
		return true
	})
	return found
}

// isObsValue reports whether t is an observability value: an interface
// with a tracer-shaped Emit method, or a (pointer to a) named obs sink
// type (Registry, Collector, Counter, Gauge, Histogram).
func isObsValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			sig := m.Type().(*types.Signature)
			if m.Name() == "Emit" && sig.Params().Len() == 1 && sig.Results().Len() == 0 &&
				typeNamed(sig.Params().At(0).Type(), "Event") {
				return true
			}
		}
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch n.Obj().Name() {
	case "Registry", "Collector", "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}

// containsObsCall reports whether the block calls a tracer Emit or a
// metric instrument mutator (Add/Set/Observe on an obs instrument, or
// an instrument accessor on a Registry).
func containsObsCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := emitReceiver(pass, call); ok {
			found = true
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch fun.Sel.Name {
		case "Add", "Set", "Observe", "Counter", "Gauge", "Histogram":
			if isObsValue(pass.TypesInfo.TypeOf(fun.X)) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkReadOnly flags assignments and ++/-- inside an observation block
// whose target is declared outside the block: observability enabled
// must not execute writes that observability disabled would skip.
func checkReadOnly(pass *analysis.Pass, sup *nocvet.Suppressions, body *ast.BlockStmt) {
	localOK := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
	}
	report := func(pos token.Pos) {
		nocvet.Report(pass, sup, pos,
			"observation block writes state that outlives it: a nil-guarded tracing/metrics block runs only when observability is enabled, so the write would make traced and untraced runs diverge; move it outside the guard")
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				if !localOK(lhs) {
					report(lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if !localOK(st.X) {
				report(st.X.Pos())
			}
		}
		return true
	})
}
