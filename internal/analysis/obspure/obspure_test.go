package obspure_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/obspure"
)

func TestObsPure(t *testing.T) {
	analyzertest.Run(t, obspure.Analyzer, "a")
}
