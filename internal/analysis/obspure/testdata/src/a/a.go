// Package a is the obspure golden corpus: local stand-ins for the obs
// tracer/metrics shapes plus guarded and unguarded call sites.
package a

// Event mirrors obs.Event structurally (the analyzer matches the
// parameter type by name).
type Event struct {
	Cycle uint64
	Kind  string
}

// Tracer mirrors obs.Tracer.
type Tracer interface {
	Emit(Event)
}

// Registry / Counter mirror the obs metric surface by name.
type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return nil }

type Counter struct{}

func (c *Counter) Add(n uint64) {}

// Collector is a concrete sink with a tracer-shaped Emit.
type Collector struct{}

func (c *Collector) Emit(e Event) {}

type router struct {
	tracer  Tracer
	metrics *Registry
	col     *Collector
	count   int
}

// --- rule 1: Emit must be nil-guarded -------------------------------

func (r *router) goodGuard() {
	if r.tracer != nil {
		r.tracer.Emit(Event{Kind: "ok"})
	}
}

func (r *router) goodAlias() {
	if t := r.tracer; t != nil {
		t.Emit(Event{Kind: "ok"})
	}
}

func (r *router) goodElseIf(busy bool) {
	if busy {
		_ = busy
	} else if r.tracer != nil {
		r.tracer.Emit(Event{Kind: "idle"})
	}
}

func (r *router) goodInvertedGuard() {
	if r.tracer == nil {
		_ = r.count
	} else {
		r.tracer.Emit(Event{Kind: "ok"})
	}
}

func (r *router) goodCompoundCond(hot bool) {
	if hot && r.tracer != nil {
		r.tracer.Emit(Event{Kind: "hot"})
	}
}

func (r *router) goodConcreteSink() {
	if r.col != nil {
		r.col.Emit(Event{Kind: "ok"})
	}
}

func (r *router) badUnguarded() {
	r.tracer.Emit(Event{Kind: "boom"}) // want "tracer Emit call is not nil-guarded"
}

func (r *router) badWrongReceiverGuarded(other Tracer) {
	if other != nil {
		r.tracer.Emit(Event{Kind: "boom"}) // want "tracer Emit call is not nil-guarded"
	}
}

func (r *router) badGuardedWrongBranch() {
	if r.tracer != nil {
		_ = r.count
	} else {
		r.tracer.Emit(Event{Kind: "boom"}) // want "tracer Emit call is not nil-guarded"
	}
}

func (r *router) badConcreteSink() {
	r.col.Emit(Event{Kind: "boom"}) // want "tracer Emit call is not nil-guarded"
}

// queue has an Emit of a different shape — not a tracer, never flagged.
type queue struct{ n int }

func (q *queue) Emit() bool { q.n++; return q.n < 4 }

func (r *router) notATracer(q *queue) {
	for q.Emit() {
	}
}

// --- rule 2: observation blocks only read state ---------------------

func (r *router) goodReadOnlyBlock() {
	if r.tracer != nil {
		kind := "miss"
		if r.count > 0 {
			kind = "hit" // local to the block: fine
		}
		r.tracer.Emit(Event{Kind: kind})
	}
}

func (r *router) badWriteInTraceBlock() {
	if r.tracer != nil {
		r.count++ // want "observation block writes state that outlives it"
		r.tracer.Emit(Event{Kind: "ok"})
	}
}

func (r *router) badWriteInMetricsBlock(done *int) {
	if r.metrics != nil {
		r.metrics.Counter("x").Add(1)
		*done = 1 // want "observation block writes state that outlives it"
	}
}

// Installing hooks is configuration, not observation: no Emit/metrics
// call in the body, so writes are unrestricted.
func (r *router) goodConfigBlock(t Tracer) {
	if t != nil {
		r.tracer = t
	}
}
