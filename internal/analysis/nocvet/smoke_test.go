package nocvet_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestNocvetOnRepo is the acceptance smoke test: cmd/nocvet builds, and
// `go vet -vettool=nocvet ./...` exits 0 on the repo itself — zero
// unsuppressed findings. Run with -short to skip (it shells out to the
// go command over every package).
func TestNocvetOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping repo-wide vet in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go command not available")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "nocvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/nocvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/nocvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	vet.Env = os.Environ()
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("nocvet found unsuppressed findings (or failed): %v\n%s", err, out)
	}
}
