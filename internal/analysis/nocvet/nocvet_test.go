package nocvet_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/nocvet"
)

// TestKernelIfacesMatchSim type-checks internal/sim from source and
// asserts every synthesized interface in nocvet.Kernel() has exactly the
// method set of its declared counterpart, so the structural matching the
// analyzers rely on cannot silently drift from the real kernel
// contracts.
func TestKernelIfacesMatchSim(t *testing.T) {
	fset := token.NewFileSet()
	dir := filepath.Join("..", "..", "sim")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(nocvet.SimPath, fset, files, nil)
	if err != nil {
		t.Fatalf("type-checking internal/sim: %v", err)
	}

	k := nocvet.Kernel()
	for name, synth := range map[string]*types.Interface{
		"Clocked":      k.Clocked,
		"Quiescer":     k.Quiescer,
		"IdleTicker":   k.IdleTicker,
		"IdleWindower": k.IdleWindower,
		"Timed":        k.Timed,
	} {
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			t.Errorf("internal/sim no longer declares %s", name)
			continue
		}
		decl, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			t.Errorf("sim.%s is no longer an interface", name)
			continue
		}
		compareIfaces(t, name, decl, synth)
	}
}

func compareIfaces(t *testing.T, name string, decl, synth *types.Interface) {
	t.Helper()
	declM := methodSet(decl)
	synthM := methodSet(synth)
	for m, sig := range declM {
		ssig, ok := synthM[m]
		if !ok {
			t.Errorf("sim.%s method %s missing from synthesized copy", name, m)
			continue
		}
		if !types.Identical(sig, ssig) {
			t.Errorf("sim.%s method %s signature mismatch: declared %s, synthesized %s", name, m, sig, ssig)
		}
		delete(synthM, m)
	}
	for m := range synthM {
		t.Errorf("synthesized %s has extra method %s", name, m)
	}
}

func methodSet(i *types.Interface) map[string]types.Type {
	out := make(map[string]types.Type, i.NumMethods())
	for j := 0; j < i.NumMethods(); j++ {
		m := i.Method(j)
		out[m.Name()] = m.Type()
	}
	return out
}

// TestSuppressionScope pins the scope list: the packages the paper's
// determinism claims cover must stay in scope, and driver/demo packages
// must stay out.
func TestSuppressionScope(t *testing.T) {
	for _, in := range []string{
		"repro/internal/sim", "repro/internal/core", "repro/internal/mesh",
		"repro/internal/pattern", "repro/internal/traffic", "repro/internal/packetsw",
		"repro/internal/aethereal", "repro/internal/power", "repro/internal/sweep",
		"repro/internal/benet", "repro/internal/bitvec", "repro/noc", "a",
	} {
		if !nocvet.InScope(in) {
			t.Errorf("InScope(%q) = false, want true", in)
		}
	}
	for _, out := range []string{
		"repro/internal/stats", "repro/cmd/nocbench", "repro/examples/quickstart",
		"fmt", "repro/internal/analysis/nocvet",
	} {
		if nocvet.InScope(out) {
			t.Errorf("InScope(%q) = true, want false", out)
		}
	}
}
