// Package nocvet holds the shared infrastructure of the repo's custom
// go/analysis passes: the scope of "simulation packages" the determinism
// contracts apply to, the //nocvet:allow suppression mechanism, and small
// type-system helpers used by the individual analyzers.
//
// The four analyzers (nondeterm, maporder, kernelcontract, evalpure) live
// in sibling packages and are wired into the cmd/nocvet vet tool. Each
// guards an invariant the repo's headline claims depend on:
//
//   - nondeterm: no wall-clock or global-RNG reads in simulation code, so
//     every run is byte-identical given the same seed.
//   - maporder: no order-sensitive output assembled from an unsorted map
//     iteration, so JSON/CSV encoders emit byte-identical bytes.
//   - kernelcontract: the sim.Quiescer/IdleTicker/Timed implementation
//     matrix stays consistent, so fast-forward replay stays exact.
//   - evalpure: Eval never writes another component's state, the
//     two-phase discipline parallel stepping will rely on.
package nocvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// SanctionedRNG is the import path of the only randomness source
// simulation code may use: the value-type, explicitly seeded
// bitvec.XorShift64 stream (and the FlipGen built on it). The nondeterm
// analyzer's allowlist is anchored on this single package; everything in
// time/math/rand/crypto/rand/os entropy is denied inside SimScope.
const SanctionedRNG = "repro/internal/bitvec"

// SimPath is the import path of the simulation kernel package whose
// interface contracts kernelcontract and evalpure enforce.
const SimPath = "repro/internal/sim"

// simPackages is the set of packages the determinism contracts apply to:
// everything that runs inside (or assembles the output of) a simulation.
// cmd/ and examples/ are deliberately out of scope — they are drivers and
// demos, not simulation state.
var simPackages = map[string]bool{
	"repro/internal/sim":       true,
	"repro/internal/core":      true,
	"repro/internal/mesh":      true,
	"repro/internal/pattern":   true,
	"repro/internal/traffic":   true,
	"repro/internal/packetsw":  true,
	"repro/internal/aethereal": true,
	"repro/internal/power":     true,
	"repro/internal/sweep":     true,
	"repro/internal/obs":       true,
	"repro/internal/benet":     true,
	"repro/internal/bitvec":    true,
	"repro/noc":                true,
}

// InScope reports whether the determinism contracts apply to the package
// with the given import path. The single-element path "a" used by the
// analyzer golden tests counts as in scope so testdata exercises the
// analyzers without a module prefix.
func InScope(path string) bool {
	if simPackages[path] {
		return true
	}
	return path == "a" || strings.HasPrefix(path, "a/")
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The analyzers skip test files: tests may legitimately use wall-clock
// timeouts, throwaway maps and mock components, and the byte-compare CI
// jobs cover what tests produce.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// AllowDirective is the comment prefix that suppresses a finding:
//
//	//nocvet:allow nondeterm
//	//nocvet:allow maporder,evalpure -- reason
//
// A directive suppresses the named analyzers' findings on its own line
// and on the line directly below it.
const AllowDirective = "nocvet:allow"

type suppKey struct {
	file string
	line int
	name string
}

// Suppressions indexes the //nocvet:allow directives of a pass's files.
type Suppressions struct {
	fset *token.FileSet
	keys map[suppKey]bool
}

// CollectSuppressions scans every comment of the pass's files for
// //nocvet:allow directives.
func CollectSuppressions(pass *analysis.Pass) *Suppressions {
	s := &Suppressions{fset: pass.Fset, keys: make(map[suppKey]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowDirective))
				// Strip a trailing free-form reason after " -- ".
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				pos := pass.Fset.Position(c.Pos())
				for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					s.keys[suppKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return s
}

// Allowed reports whether analyzer name is suppressed at pos: a directive
// on the same line (trailing comment) or the line above.
func (s *Suppressions) Allowed(name string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	return s.keys[suppKey{p.Filename, p.Line, name}] ||
		s.keys[suppKey{p.Filename, p.Line - 1, name}]
}

// Report emits a diagnostic unless it is suppressed or inside a test
// file.
func Report(pass *analysis.Pass, sup *Suppressions, pos token.Pos, format string, args ...interface{}) {
	if IsTestFile(pass.Fset, pos) || sup.Allowed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// KernelIfaces holds structural copies of the sim kernel interfaces
// (repro/internal/sim). The analyzers match component types against these
// synthesized interfaces instead of the declared ones so the contract
// checks apply to every in-scope package — components implement the
// kernel interfaces structurally and need not import sim at all. Method
// sets are what Go interfaces match on, so the copies are equivalent to
// the originals; the sim package's own tests assert they stay in sync.
type KernelIfaces struct {
	Clocked      *types.Interface // Eval(); Commit()
	Quiescer     *types.Interface // Quiescent() bool
	IdleTicker   *types.Interface // IdleTick()
	IdleWindower *types.Interface // IdleTick(); IdleWindow(uint64)
	Timed        *types.Interface // NextEvent() (uint64, bool)
}

// Kernel returns the synthesized kernel interfaces.
func Kernel() KernelIfaces {
	sig := func(params, results *types.Tuple) *types.Signature {
		return types.NewSignatureType(nil, nil, nil, params, results, false)
	}
	v := func(t types.Type) *types.Var { return types.NewVar(token.NoPos, nil, "", t) }
	m := func(name string, s *types.Signature) *types.Func {
		return types.NewFunc(token.NoPos, nil, name, s)
	}
	iface := func(methods ...*types.Func) *types.Interface {
		i := types.NewInterfaceType(methods, nil)
		i.Complete()
		return i
	}
	void := sig(nil, nil)
	u64 := types.Typ[types.Uint64]
	boolean := types.Typ[types.Bool]
	return KernelIfaces{
		Clocked:    iface(m("Eval", void), m("Commit", void)),
		Quiescer:   iface(m("Quiescent", sig(nil, types.NewTuple(v(boolean))))),
		IdleTicker: iface(m("IdleTick", void)),
		IdleWindower: iface(m("IdleTick", void),
			m("IdleWindow", sig(types.NewTuple(v(u64)), nil))),
		Timed: iface(m("NextEvent", sig(nil, types.NewTuple(v(u64), v(boolean))))),
	}
}

// Implements reports whether T or *T implements iface.
func Implements(T types.Type, iface *types.Interface) bool {
	if iface == nil || T == nil {
		return false
	}
	return types.Implements(T, iface) || types.Implements(types.NewPointer(T), iface)
}

// EnclosingFunc returns the innermost function declaration or literal in
// the WithStack stack (excluding the node itself when it is one).
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
