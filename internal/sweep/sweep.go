// Package sweep is the repo's parallel batch engine: a bounded worker
// pool that executes independent jobs concurrently and delivers their
// results in strict index order, so any output assembled from the
// results is byte-identical no matter how many workers ran or how the
// scheduler interleaved them. The public noc.Sweep subsystem and the
// grid-shaped experiments (fig9, fig10, freqsweep, psdepth, ...) both
// run their cells through this engine.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers returns the default pool size: GOMAXPROCS, i.e. one
// worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Mix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash
// used wherever a run-level seed must be decorrelated from its
// neighbours (sweep cells, stream sources).
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Normalize clamps a worker count to [1, n]: non-positive values mean
// DefaultWorkers, and a pool never exceeds the job count.
func Normalize(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Monitor observes the pool's scheduling: JobStart fires on a worker
// goroutine immediately before job i runs, JobDone immediately after.
// Implementations must accept concurrent calls (every worker reports
// through the one monitor) and must not block — the pool waits for
// neither. The monitor sees scheduling, never results, so it cannot
// perturb the deterministic in-order emission; wall-clock bookkeeping
// (rates, ETAs, busy fractions) belongs in the monitor implementation,
// outside the deterministic engine.
type Monitor interface {
	// JobStart reports worker w picking up job i.
	JobStart(w, i int)
	// JobDone reports worker w finishing job i.
	JobDone(w, i int)
}

// Run executes jobs 0..n-1 on a bounded worker pool and hands each
// result to emit in strict index order, regardless of completion order.
// workers <= 0 selects DefaultWorkers. Job errors are not fatal to the
// pool: they are passed through to emit, which decides. If emit returns
// an error the sweep stops and Run returns that error; if ctx is
// cancelled Run returns ctx.Err(). emit is always called from the
// Run goroutine, so it needs no locking.
func Run[T any](ctx context.Context, n, workers int,
	job func(ctx context.Context, i int) (T, error),
	emit func(i int, v T, err error) error) error {
	return RunMonitored(ctx, n, workers, nil, job, emit)
}

// RunMonitored is Run with a scheduling monitor attached to the worker
// pool; a nil monitor is exactly Run.
func RunMonitored[T any](ctx context.Context, n, workers int, m Monitor,
	job func(ctx context.Context, i int) (T, error),
	emit func(i int, v T, err error) error) error {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type item struct {
		i   int
		v   T
		err error
	}
	jobs := make(chan int)
	results := make(chan item, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				if m != nil {
					m.JobStart(worker, i)
				}
				v, err := job(ctx, i)
				if m != nil {
					m.JobDone(worker, i)
				}
				select {
				case results <- item{i: i, v: v, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: emit strictly in index order.
	pending := make(map[int]item, workers)
	next := 0
	for next < n {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case it, ok := <-results:
			if !ok {
				// Workers exited early; only possible after cancellation.
				return ctx.Err()
			}
			pending[it.i] = it
			for {
				cur, ready := pending[next]
				if !ready {
					break
				}
				delete(pending, next)
				if err := emit(cur.i, cur.v, cur.err); err != nil {
					return err
				}
				next++
			}
		}
	}
	return nil
}

// RunCached is Run with a lookup layer in front of the worker pool:
// before dispatching job i it consults lookup(i), and a hit short-cuts
// the job entirely — only misses enter the pool. Results still reach
// emit in strict index order (hits interleaved with computed misses at
// their original indices), so the emitted stream is byte-identical to a
// plain Run for any worker count and any hit pattern. A computed miss
// that returns no error is offered to store(i, v) before it is emitted,
// so later overlapping runs can hit on it. lookup, store and emit are
// all called from the RunCached goroutine and need no locking.
func RunCached[T any](ctx context.Context, n, workers int,
	lookup func(i int) (T, bool),
	job func(ctx context.Context, i int) (T, error),
	store func(i int, v T),
	emit func(i int, v T, err error) error) error {
	return RunCachedMonitored(ctx, n, workers, nil, lookup, job, store, emit)
}

// RunCachedMonitored is RunCached with a scheduling monitor attached to
// the worker pool; cache hits bypass the pool and are never reported to
// the monitor. A nil monitor is exactly RunCached.
func RunCachedMonitored[T any](ctx context.Context, n, workers int, m Monitor,
	lookup func(i int) (T, bool),
	job func(ctx context.Context, i int) (T, error),
	store func(i int, v T),
	emit func(i int, v T, err error) error) error {
	if n <= 0 {
		return nil
	}
	hitVal := make([]T, n)
	hit := make([]bool, n)
	var misses []int
	for i := 0; i < n; i++ {
		if v, ok := lookup(i); ok {
			hitVal[i], hit[i] = v, true
		} else {
			misses = append(misses, i)
		}
	}

	// next is the global emission cursor; flushHits emits the run of
	// cache hits at the cursor, up to (exclusive) the given index.
	next := 0
	flushHits := func(until int) error {
		for next < until && hit[next] {
			if err := emit(next, hitVal[next], nil); err != nil {
				return err
			}
			var zero T
			hitVal[next] = zero // release the payload as soon as it is out
			next++
		}
		return nil
	}

	var mm Monitor
	if m != nil {
		// The inner pool runs over miss indices; report the global job
		// indices the caller knows.
		mm = remapMonitor{m: m, idx: misses}
	}
	err := RunMonitored(ctx, len(misses), workers, mm,
		func(ctx context.Context, mi int) (T, error) {
			return job(ctx, misses[mi])
		},
		func(mi int, v T, err error) error {
			gi := misses[mi]
			if ferr := flushHits(gi); ferr != nil {
				return ferr
			}
			if err == nil && store != nil {
				store(gi, v)
			}
			if eerr := emit(gi, v, err); eerr != nil {
				return eerr
			}
			next = gi + 1
			return nil
		})
	if err != nil {
		return err
	}
	return flushHits(n)
}

// remapMonitor translates an inner pool's job indices through an index
// table before forwarding to the caller's monitor.
type remapMonitor struct {
	m   Monitor
	idx []int
}

func (r remapMonitor) JobStart(w, i int) { r.m.JobStart(w, r.idx[i]) }
func (r remapMonitor) JobDone(w, i int)  { r.m.JobDone(w, r.idx[i]) }

// Map runs f over 0..n-1 in parallel and returns the results in index
// order. The first job error aborts the map and is returned.
func Map[T any](ctx context.Context, n, workers int,
	f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(ctx, n, workers, func(_ context.Context, i int) (T, error) {
		return f(i)
	}, func(i int, v T, err error) error {
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
