package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunEmitsInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 57
			var got []int
			err := Run(context.Background(), n, workers,
				func(_ context.Context, i int) (int, error) {
					// Finish later jobs first to stress the reorder buffer.
					time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
					return i * i, nil
				},
				func(i, v int, err error) error {
					if err != nil {
						return err
					}
					if v != i*i {
						t.Errorf("cell %d = %d, want %d", i, v, i*i)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("emitted %d cells, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("out of order at %d: %v", i, got)
				}
			}
		})
	}
}

func TestRunZeroJobs(t *testing.T) {
	err := Run(context.Background(), 0, 4,
		func(_ context.Context, i int) (int, error) { return 0, nil },
		func(i, v int, err error) error {
			t.Fatal("emit called for empty sweep")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJobErrorReachesEmit(t *testing.T) {
	boom := errors.New("boom")
	var seen int
	err := Run(context.Background(), 4, 2,
		func(_ context.Context, i int) (int, error) {
			if i == 2 {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int, err error) error {
			seen++
			if i == 2 && !errors.Is(err, boom) {
				t.Errorf("cell 2 error = %v, want boom", err)
			}
			if i != 2 && err != nil {
				t.Errorf("cell %d unexpected error %v", i, err)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 4 {
		t.Fatalf("emit called %d times, want 4", seen)
	}
}

func TestRunEmitErrorStops(t *testing.T) {
	stop := errors.New("stop")
	var emitted int32
	err := Run(context.Background(), 100, 4,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, v int, err error) error {
			if atomic.AddInt32(&emitted, 1) == 3 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want stop", err)
	}
	if emitted != 3 {
		t.Fatalf("emitted %d cells after stop, want 3", emitted)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var emitted int
	errc := make(chan error, 1)
	started := make(chan struct{}, 1)
	go func() {
		errc <- Run(ctx, 1000, 2,
			func(ctx context.Context, i int) (int, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				select {
				case <-ctx.Done():
				case <-time.After(time.Millisecond):
				}
				return i, nil
			},
			func(i, v int, err error) error { emitted++; return nil })
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if emitted >= 1000 {
		t.Fatalf("sweep completed despite cancellation (%d cells)", emitted)
	}
}

func TestMapOrderAndError(t *testing.T) {
	vals, err := Map(context.Background(), 10, 4, func(i int) (string, error) {
		return fmt.Sprintf("v%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != fmt.Sprintf("v%d", i) {
			t.Fatalf("vals[%d] = %q", i, v)
		}
	}
	if _, err := Map(context.Background(), 10, 4, func(i int) (string, error) {
		if i == 7 {
			return "", errors.New("bad cell")
		}
		return "", nil
	}); err == nil {
		t.Fatal("Map swallowed a job error")
	}
}

func TestNormalize(t *testing.T) {
	if w := Normalize(0, 100); w != DefaultWorkers() {
		t.Errorf("Normalize(0) = %d, want %d", w, DefaultWorkers())
	}
	if w := Normalize(8, 3); w != 3 {
		t.Errorf("Normalize(8, 3) = %d, want 3", w)
	}
	if w := Normalize(-1, 0); w != 1 {
		t.Errorf("Normalize(-1, 0) = %d, want 1", w)
	}
}

func TestRunCachedOrderAndStores(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, hitMod := range []int{0, 1, 2, 3} { // 0: no hits; 1: all hits
			t.Run(fmt.Sprintf("workers=%d hitMod=%d", workers, hitMod), func(t *testing.T) {
				const n = 41
				var order []int
				var stored []int
				var ran int32
				err := RunCached(context.Background(), n, workers,
					func(i int) (int, bool) {
						if hitMod > 0 && i%hitMod == 0 {
							return i * 10, true
						}
						return 0, false
					},
					func(_ context.Context, i int) (int, error) {
						atomic.AddInt32(&ran, 1)
						time.Sleep(time.Duration(n-i) * 5 * time.Microsecond)
						return i * 10, nil
					},
					func(i int, v int) { stored = append(stored, i) },
					func(i int, v int, err error) error {
						if err != nil {
							return err
						}
						if v != i*10 {
							t.Fatalf("index %d got %d", i, v)
						}
						order = append(order, i)
						return nil
					})
				if err != nil {
					t.Fatal(err)
				}
				if len(order) != n {
					t.Fatalf("emitted %d of %d", len(order), n)
				}
				for i, g := range order {
					if g != i {
						t.Fatalf("out of order at %d: %v", i, order[:i+1])
					}
				}
				wantMisses := 0
				for i := 0; i < n; i++ {
					if hitMod == 0 || i%hitMod != 0 {
						wantMisses++
					}
				}
				if int(ran) != wantMisses {
					t.Fatalf("ran %d jobs, want %d", ran, wantMisses)
				}
				if len(stored) != wantMisses {
					t.Fatalf("stored %d, want %d", len(stored), wantMisses)
				}
			})
		}
	}
}

func TestRunCachedEmitErrorStops(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := RunCached(context.Background(), 10, 2,
		func(i int) (int, bool) { return i, i%2 == 0 },
		func(_ context.Context, i int) (int, error) { return i, nil },
		nil,
		func(i int, v int, err error) error {
			calls++
			if i == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 4 { // 0,1,2,3
		t.Fatalf("emit called %d times", calls)
	}
}

func TestRunCachedJobErrorPassesThroughWithoutStore(t *testing.T) {
	boom := errors.New("job failed")
	var stored int
	var got map[int]error = map[int]error{}
	err := RunCached(context.Background(), 6, 3,
		func(i int) (int, bool) { return 0, false },
		func(_ context.Context, i int) (int, error) {
			if i == 2 {
				return 0, boom
			}
			return i, nil
		},
		func(i int, v int) { stored++ },
		func(i int, v int, err error) error {
			got[i] = err
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != boom {
		t.Fatalf("index 2 err = %v", got[2])
	}
	if stored != 5 {
		t.Fatalf("stored %d results, want 5 (failed job must not be stored)", stored)
	}
}
