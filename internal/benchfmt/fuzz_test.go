package benchfmt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseRoundTrip drives Parse with arbitrary text and checks the
// package's contract on every input it accepts: parsing is
// deterministic, the parsed file satisfies the canonical-form
// invariants (sorted, de-duplicated, positive procs, finite ns/op), and
// Encode → Decode → Encode is a fixed point byte for byte. Inputs Parse
// rejects are fine — the property under test is that it never panics
// and never accepts something it cannot re-encode. CI runs this as a
// short -fuzztime smoke on top of the seeded corpus.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("goos: linux\ngoarch: amd64\npkg: repro/noc\nBenchmarkMesh16-8   100   123456 ns/op   2048 B/op   12 allocs/op\nPASS\n")
	f.Add("BenchmarkX 1 5 ns/op\n")
	f.Add("BenchmarkX/case=3-16 2000 17.5 ns/op\nBenchmarkX/case=3-16 4000 16.5 ns/op\n")
	f.Add("pkg: a\nBenchmarkA-2 10 1 ns/op\npkg: b\nBenchmarkA-2 10 2 ns/op\n")
	f.Add("Benchmark 1 1 ns/op\n")
	f.Add("BenchmarkX 1 NaN ns/op\n")
	f.Add("BenchmarkX 1 +Inf ns/op\n")
	f.Add("BenchmarkX 9999999999999999999999 1 ns/op\n")
	f.Add("BenchmarkX 1 5 ns/op trailing\n")
	f.Add("ok  \trepro/noc\t1.2s\n")

	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := Parse(strings.NewReader(in))
		if err != nil {
			return // rejected input; the parser just must not panic
		}

		// Parsing the same bytes again yields the same file.
		again, err := Parse(strings.NewReader(in))
		if err != nil {
			t.Fatalf("second parse failed: %v", err)
		}
		if !reflect.DeepEqual(parsed, again) {
			t.Fatalf("parse not deterministic:\n%+v\n%+v", parsed, again)
		}

		// Canonical-form invariants.
		if len(parsed.Benchmarks) == 0 {
			t.Fatal("accepted input produced no benchmarks")
		}
		seen := map[string]bool{}
		for i, b := range parsed.Benchmarks {
			if b.Procs < 1 {
				t.Fatalf("benchmark %d has procs %d", i, b.Procs)
			}
			if b.Iterations < 0 {
				t.Fatalf("benchmark %d has negative iterations %d", i, b.Iterations)
			}
			if seen[b.key()] {
				t.Fatalf("duplicate benchmark %q survived de-duplication", b.key())
			}
			seen[b.key()] = true
			if i > 0 {
				p := parsed.Benchmarks[i-1]
				if p.Pkg > b.Pkg || (p.Pkg == b.Pkg && p.Name > b.Name) {
					t.Fatalf("benchmarks out of order: %q/%q before %q/%q",
						p.Pkg, p.Name, b.Pkg, b.Name)
				}
			}
		}

		// Everything Parse accepts must round-trip through the canonical
		// encoding unchanged.
		enc, err := parsed.Encode()
		if err != nil {
			t.Fatalf("accepted input failed to encode: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if !reflect.DeepEqual(parsed, dec) {
			t.Fatalf("decode diverged:\n%+v\n%+v", parsed, dec)
		}
		enc2, err := dec.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not a fixed point:\n%s\n%s", enc, enc2)
		}
	})
}
