package benchfmt

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMeshSparseGatedKernel-8 	   20000	      1250 ns/op
BenchmarkMeshSparseNaiveKernel-8 	   20000	      5000 ns/op
BenchmarkPattern16x16EventKernel 	       5	   4200000 ns/op	 1024 B/op	      12 allocs/op
PASS
ok  	repro	1.234s
goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkRouterStep-8 	 1000000	        95.5 ns/op
PASS
ok  	repro/internal/core	0.456s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema || f.Goos != "linux" || f.Goarch != "amd64" {
		t.Fatalf("header = %d/%q/%q", f.Schema, f.Goos, f.Goarch)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(f.Benchmarks))
	}
	// Sorted by (pkg, name): repro before repro/internal/core.
	b := f.Benchmarks[0]
	if b.Pkg != "repro" || b.Name != "BenchmarkMeshSparseGatedKernel" ||
		b.Procs != 8 || b.Iterations != 20000 || b.NsPerOp != 1250 {
		t.Fatalf("benchmarks[0] = %+v", b)
	}
	pat := f.Benchmarks[2]
	if pat.Name != "BenchmarkPattern16x16EventKernel" || pat.Procs != 1 {
		t.Fatalf("no-suffix name parsed as %+v", pat)
	}
	if pat.BytesPerOp != 1024 || pat.AllocsPerOp != 12 {
		t.Fatalf("benchmem fields = %+v", pat)
	}
	if core := f.Benchmarks[3]; core.Pkg != "repro/internal/core" || core.NsPerOp != 95.5 {
		t.Fatalf("benchmarks[3] = %+v", core)
	}
}

func TestParseDedupKeepsBestMeasurement(t *testing.T) {
	// The CI log concatenates the 1x gating pass with the measured
	// pass; the higher-iteration line must win regardless of order.
	in := `pkg: repro
BenchmarkX-8 	   20000	      100 ns/op
BenchmarkX-8 	       1	     9999 ns/op
`
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].NsPerOp != 100 {
		t.Fatalf("dedup kept %+v", f.Benchmarks)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"",                              // no benchmarks at all
		"BenchmarkX-8 \t nonsense\n",    // no iteration count
		"BenchmarkX-8 \t 10 \t 5 s\n",   // no ns/op
		"BenchmarkX-8 \t 10 \t ns/op\n", // value missing
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", b, b2)
	}
	if _, err := Decode([]byte(`{"schema":99,"benchmarks":[]}`)); err == nil {
		t.Fatal("future schema accepted")
	}
}

// file builds a canonical file from (name, ns/op) pairs in one package.
func file(entries map[string]float64) *File {
	f := &File{Schema: Schema}
	for name, ns := range entries {
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Pkg: "repro", Name: name, Procs: 8, Iterations: 100, NsPerOp: ns,
		})
	}
	return f
}

// TestCompareFailsOnRegression is the gate's synthetic fixture: a
// benchmark 20% slower than the tracked base must fail a 15% gate.
func TestCompareFailsOnRegression(t *testing.T) {
	base := file(map[string]float64{
		"BenchmarkMeshSparseGatedKernel": 1000,
		"BenchmarkSweepReplicated":       2000,
	})
	cur := file(map[string]float64{
		"BenchmarkMeshSparseGatedKernel": 1200, // +20%: regression
		"BenchmarkSweepReplicated":       2100, // +5%: fine
	})
	deltas, ok := Compare(base, cur, 0.15, nil)
	if ok {
		t.Fatal("gate passed a 20% regression")
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	var regressed, fine int
	for _, d := range deltas {
		if d.Regressed {
			regressed++
			if d.Name != "BenchmarkMeshSparseGatedKernel" {
				t.Fatalf("wrong benchmark flagged: %+v", d)
			}
		} else {
			fine++
		}
	}
	if regressed != 1 || fine != 1 {
		t.Fatalf("regressed=%d fine=%d", regressed, fine)
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	base := file(map[string]float64{"BenchmarkA": 1000})
	cur := file(map[string]float64{"BenchmarkA": 1149}) // +14.9%
	if _, ok := Compare(base, cur, 0.15, nil); !ok {
		t.Fatal("gate failed a within-threshold delta")
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := file(map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 500})
	cur := file(map[string]float64{"BenchmarkA": 1000})
	deltas, ok := Compare(base, cur, 0.15, nil)
	if ok {
		t.Fatal("gate passed with a benchmark missing from the current run")
	}
	for _, d := range deltas {
		if d.Name == "BenchmarkB" && !d.Missing {
			t.Fatalf("missing benchmark not flagged: %+v", d)
		}
	}
}

func TestCompareFilter(t *testing.T) {
	base := file(map[string]float64{
		"BenchmarkMeshSparseGatedKernel": 1000,
		"BenchmarkTable1":                100,
	})
	cur := file(map[string]float64{
		"BenchmarkMeshSparseGatedKernel": 1000,
		"BenchmarkTable1":                900, // 9x slower, but unfiltered
	})
	deltas, ok := Compare(base, cur, 0.15, regexp.MustCompile(`Kernel|Sweep|Pattern`))
	if !ok {
		t.Fatal("filtered gate failed on an out-of-scope benchmark")
	}
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkMeshSparseGatedKernel" {
		t.Fatalf("filter kept %+v", deltas)
	}
	// New benchmarks only in the current file never gate.
	cur2 := file(map[string]float64{
		"BenchmarkMeshSparseGatedKernel": 1000,
		"BenchmarkBrandNewKernel":        1,
	})
	if _, ok := Compare(base, cur2, 0.15, regexp.MustCompile(`Kernel`)); !ok {
		t.Fatal("a new current-only benchmark failed the gate")
	}
}
