// Package benchfmt parses `go test -bench` text output into a
// canonical JSON benchmark file and compares two such files for
// throughput regressions. It backs cmd/benchdiff, the CI gate that
// keeps the simulator's benchmark trajectory tracked in-repo (the
// BENCH_<n>.json files) honest: a kernel/sweep/pattern benchmark whose
// ns/op grows past the threshold fails the build.
//
// The package is a measurement tool, not simulation state, so it sits
// outside the nocvet determinism scope like the cmd/ drivers; its own
// output is still deterministic (sorted, de-duplicated) so canonical
// files diff cleanly.
package benchfmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Schema is the canonical file's schema version; bump on incompatible
// layout changes so stale tracked files fail loudly.
const Schema = 1

// Benchmark is one measured benchmark in a canonical file.
type Benchmark struct {
	// Pkg is the import path the benchmark ran in (the `pkg:` header
	// line of the text output; empty when the output had none).
	Pkg string `json:"pkg,omitempty"`
	// Name is the benchmark name as printed, without the -procs
	// suffix (e.g. "BenchmarkMeshSparseGatedKernel" or
	// "BenchmarkX/case=3").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix; 1 when the output had none.
	Procs int `json:"procs"`
	// Iterations is the b.N the line reported.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric the regression gate compares.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are recorded when -benchmem was on.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// key identifies a benchmark for de-duplication and matching: the same
// name may run in different packages.
func (b Benchmark) key() string { return b.Pkg + "\x00" + b.Name }

// File is the canonical benchmark file, the unit cmd/benchdiff tracks
// and compares.
type File struct {
	// Schema is the layout version (the Schema constant).
	Schema int `json:"schema"`
	// Goos/Goarch echo the text output's header lines.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	// Benchmarks is sorted by (pkg, name, procs) and de-duplicated:
	// when the same benchmark appears more than once in the input (the
	// gating 1x pass plus a focused measured pass), the occurrence
	// with the most iterations wins — the better measurement.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches one result line: name, iteration count, then
// "value unit" pairs.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*)\s+(\d+)\s+(.+)$`)

// Parse reads `go test -bench` text output (possibly several
// concatenated runs) and returns the canonical file. Non-benchmark
// lines (PASS, ok, test logs) are ignored; a malformed benchmark line
// is an error so a truncated bench log cannot silently gate nothing.
func Parse(r io.Reader) (*File, error) {
	f := &File{Schema: Schema}
	best := map[string]int{} // key -> index in f.Benchmarks
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// JSON strings are UTF-8: the encoder silently rewrites invalid
		// bytes as replacement runes, so a retained line carrying them
		// would not survive a canonical round trip. Reject such lines up
		// front (a fuzzing find); lines the parser ignores may carry
		// anything.
		if !utf8.ValidString(line) &&
			(strings.HasPrefix(line, "Benchmark") ||
				strings.HasPrefix(line, "goos: ") ||
				strings.HasPrefix(line, "goarch: ") ||
				strings.HasPrefix(line, "pkg: ")) {
			return nil, fmt.Errorf("benchfmt: invalid UTF-8 in line %q", line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("benchfmt: malformed benchmark line: %q", line)
		}
		b := Benchmark{Pkg: pkg, Name: m[1], Procs: 1}
		// Split the trailing -procs suffix off the printed name; a
		// sub-benchmark keeps its slashed path.
		if i := strings.LastIndex(b.Name, "-"); i >= 0 {
			if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil && procs > 0 {
				b.Name, b.Procs = b.Name[:i], procs
			}
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %v", line, err)
		}
		b.Iterations = n
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 || len(fields) == 0 {
			return nil, fmt.Errorf("benchfmt: malformed measurements in %q", line)
		}
		sawNs := false
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value in %q: %v", line, err)
			}
			// ParseFloat accepts NaN and ±Inf, which a real bench log
			// never contains and JSON cannot encode — reject them here so
			// every parsed file is encodable (a fuzzing find).
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("benchfmt: non-finite value in %q", line)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, sawNs = v, true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if !sawNs {
			return nil, fmt.Errorf("benchfmt: no ns/op measurement in %q", line)
		}
		if j, ok := best[b.key()]; ok {
			if b.Iterations >= f.Benchmarks[j].Iterations {
				f.Benchmarks[j] = b
			}
			continue
		}
		best[b.key()] = len(f.Benchmarks)
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark lines in input")
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		a, b := f.Benchmarks[i], f.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Procs < b.Procs
	})
	return f, nil
}

// Encode renders the canonical file as indented JSON with a trailing
// newline, the exact bytes committed as BENCH_<n>.json.
func (f *File) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a canonical file and checks its schema version.
func Decode(b []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: schema %d, want %d (regenerate the tracked file)", f.Schema, Schema)
	}
	return &f, nil
}

// Delta is one benchmark's base→current comparison.
type Delta struct {
	// Pkg and Name identify the benchmark.
	Pkg  string
	Name string
	// BaseNs and CurNs are the two ns/op figures; CurNs is 0 when the
	// benchmark is missing from the current file.
	BaseNs float64
	CurNs  float64
	// Ratio is CurNs/BaseNs (0 when missing).
	Ratio float64
	// Missing marks a gated benchmark absent from the current file —
	// a gate failure, since a silently dropped benchmark is how a
	// regression escapes.
	Missing bool
	// Regressed marks a ratio past the threshold.
	Regressed bool
}

// Compare gates the current file against the base: every base
// benchmark whose name matches the filter (nil matches all) must be
// present in the current file with NsPerOp no more than (1+threshold)×
// the base figure. It returns one Delta per gated benchmark, sorted
// like the base file, and whether the gate passed. Benchmarks only in
// the current file are new and never gate.
func Compare(base, cur *File, threshold float64, filter *regexp.Regexp) ([]Delta, bool) {
	curIdx := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curIdx[b.key()] = b
	}
	var deltas []Delta
	ok := true
	for _, b := range base.Benchmarks {
		if filter != nil && !filter.MatchString(b.Name) {
			continue
		}
		d := Delta{Pkg: b.Pkg, Name: b.Name, BaseNs: b.NsPerOp}
		c, found := curIdx[b.key()]
		if !found {
			d.Missing = true
			ok = false
		} else {
			d.CurNs = c.NsPerOp
			if b.NsPerOp > 0 {
				d.Ratio = c.NsPerOp / b.NsPerOp
			}
			if d.Ratio > 1+threshold {
				d.Regressed = true
				ok = false
			}
		}
		deltas = append(deltas, d)
	}
	return deltas, ok
}
