package aethereal

import (
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Ports: 1, WordBits: 32, Slots: 8, BEDepth: 4},
		{Ports: 6, WordBits: 4, Slots: 8, BEDepth: 4},
		{Ports: 6, WordBits: 128, Slots: 8, BEDepth: 4},
		{Ports: 6, WordBits: 32, Slots: 0, BEDepth: 4},
		{Ports: 6, WordBits: 32, Slots: 8, BEDepth: 0},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted %+v", i, p)
		}
	}
}

func TestSlotTableReserve(t *testing.T) {
	p := DefaultParams()
	tb := NewSlotTable(p)
	if err := tb.Reserve(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// Same output, same slot: contention.
	if err := tb.Reserve(0, 3, 2); err == nil {
		t.Fatal("double reservation accepted")
	}
	// Same ports, different slot: fine.
	if err := tb.Reserve(1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if tb.Entry(0, 2) != 1 || tb.Entry(1, 2) != 3 || tb.Entry(2, 2) != NoInput {
		t.Fatal("entries wrong")
	}
	for _, bad := range [][3]int{{-1, 0, 1}, {0, -1, 1}, {0, 0, 9}, {99, 0, 1}, {2, 4, 4}} {
		if err := tb.Reserve(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("Reserve%v accepted", bad)
		}
	}
}

func TestSlotTableAccounting(t *testing.T) {
	p := DefaultParams()
	tb := NewSlotTable(p)
	for s := 0; s < 8; s++ {
		if err := tb.Reserve(s, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.ReservedSlots(0, 1); got != 8 {
		t.Fatalf("ReservedSlots = %d, want 8", got)
	}
	// 8 of 32 slots on output 1 of 6 ports.
	want := 8.0 / float64(p.Slots*p.Ports)
	if got := tb.Utilization(); got != want {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSlotTableValidateCatchesInputFanout(t *testing.T) {
	p := DefaultParams()
	tb := NewSlotTable(p)
	if err := tb.Reserve(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Reserve(0, 1, 3); err != nil {
		t.Fatal(err) // Reserve allows it; Validate flags it
	}
	if tb.Validate() == nil {
		t.Fatal("Validate missed an input feeding two outputs in one slot")
	}
}

func TestGTForwardingFollowsSchedule(t *testing.T) {
	p := Params{Ports: 4, WordBits: 32, Slots: 4, BEDepth: 4}
	r := NewRouter(p)
	data := uint32(0)
	valid := true
	r.ConnectIn(0, &data, &valid)
	// Input 0 -> output 2 in slots 0 and 2 only.
	if err := r.Table.Reserve(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Table.Reserve(2, 0, 2); err != nil {
		t.Fatal(err)
	}
	w := sim.NewWorld()
	w.Add(r)
	got := 0
	for cyc := 0; cyc < 40; cyc++ {
		data = uint32(cyc)
		slotNow := r.Slot()
		w.Step()
		if r.OutValid[2] {
			got++
			if slotNow != 0 && slotNow != 2 {
				t.Fatalf("output valid outside reserved slots (slot %d)", slotNow)
			}
			if r.Out[2] != uint32(cyc) {
				t.Fatalf("wrong word forwarded: %d, want %d", r.Out[2], cyc)
			}
		}
	}
	// 2 of every 4 slots over 40 cycles = 20 words: the allocated GT
	// bandwidth share is exactly ReservedSlots/Slots.
	if got != 20 {
		t.Fatalf("forwarded %d words, want 20", got)
	}
	if r.GTForwarded() != 20 {
		t.Fatalf("GTForwarded = %d", r.GTForwarded())
	}
}

func TestBEFillsUnreservedSlots(t *testing.T) {
	p := Params{Ports: 4, WordBits: 32, Slots: 4, BEDepth: 8}
	r := NewRouter(p)
	// Reserve every slot of output 1; leave output 3 free for BE.
	data := uint32(7)
	valid := true
	r.ConnectIn(0, &data, &valid)
	for s := 0; s < p.Slots; s++ {
		if err := r.Table.Reserve(s, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if !r.OfferBE(3, uint32(0x100+i)) {
			t.Fatal("BE FIFO rejected")
		}
	}
	w := sim.NewWorld()
	w.Add(r)
	beSeen := 0
	for cyc := 0; cyc < 10; cyc++ {
		w.Step()
		if r.OutValid[3] {
			if r.Out[3] != uint32(0x100+beSeen) {
				t.Fatalf("BE word order broken: %#x", r.Out[3])
			}
			beSeen++
		}
	}
	if beSeen != 5 {
		t.Fatalf("BE forwarded %d words, want 5", beSeen)
	}
	if r.BEForwarded() != 5 {
		t.Fatalf("BEForwarded = %d", r.BEForwarded())
	}
}

func TestBEFIFOCapacity(t *testing.T) {
	p := Params{Ports: 4, WordBits: 32, Slots: 4, BEDepth: 2}
	r := NewRouter(p)
	if !r.OfferBE(0, 1) || !r.OfferBE(0, 2) {
		t.Fatal("rejected within capacity")
	}
	if r.OfferBE(0, 3) {
		t.Fatal("accepted beyond capacity")
	}
}

func TestNetlistMatchesTable4(t *testing.T) {
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table 4 (layouted): 0.175 mm², 500 MHz, 16 Gb/s per link.
	if area := d.AreaMM2(lib); area < 0.175*0.75 || area > 0.175*1.25 {
		t.Errorf("area %.4f mm², paper 0.1750 (±25%%)", area)
	}
	if f := d.MaxFreqMHz(lib); f < 500*0.8 || f > 500*1.2 {
		t.Errorf("fmax %.0f MHz, paper 500 (±20%%)", f)
	}
	if bw := LinkBandwidthGbps(p, 500); bw != 16 {
		t.Errorf("bandwidth %.1f Gb/s, want 16", bw)
	}
}

func TestGTShareProperty(t *testing.T) {
	// For any reservation count k, the measured GT throughput share over
	// whole table periods equals exactly k/Slots.
	f := func(kRaw uint8) bool {
		p := Params{Ports: 3, WordBits: 32, Slots: 8, BEDepth: 2}
		k := int(kRaw)%p.Slots + 1
		r := NewRouter(p)
		data, valid := uint32(1), true
		r.ConnectIn(0, &data, &valid)
		for s := 0; s < k; s++ {
			if r.Table.Reserve(s, 0, 1) != nil {
				return false
			}
		}
		w := sim.NewWorld()
		w.Add(r)
		w.Run(p.Slots * 10)
		return int(r.GTForwarded()) == k*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestBindMeterTicksEveryCycle: with the meter folded into the router,
// the clock network must be charged exactly once per cycle whatever mix
// of Commit, IdleTick and batched IdleWindow advanced the clock — the
// bit-identity the TDM fast-forward rests on.
func TestBindMeterTicksEveryCycle(t *testing.T) {
	lib := stdcell.Default013()
	p := DefaultParams()

	perCycle := power.NewMeter(Netlist(p, lib), lib, 25)
	rA := NewRouter(p)
	rA.BindMeter(perCycle)
	for i := 0; i < 700; i++ {
		rA.Eval()
		rA.Commit()
	}
	for i := 0; i < 300; i++ {
		rA.IdleTick()
	}

	batched := power.NewMeter(Netlist(p, lib), lib, 25)
	rB := NewRouter(p)
	rB.BindMeter(batched)
	for i := 0; i < 700; i++ {
		rB.Eval()
		rB.Commit()
	}
	rB.IdleWindow(300)

	if rA.Slot() != rB.Slot() {
		t.Fatalf("slot counters diverged: %d vs %d", rA.Slot(), rB.Slot())
	}
	a := perCycle.Report("per-cycle")
	b := batched.Report("batched")
	if a.Cycles != 1000 || b.Cycles != 1000 {
		t.Fatalf("cycle counts %d / %d, want 1000", a.Cycles, b.Cycles)
	}
	if a.InternalUW != b.InternalUW || a.SwitchingUW != b.SwitchingUW || a.StaticUW != b.StaticUW {
		t.Fatalf("batched idle window is not bit-identical:\nper-cycle %+v\nbatched   %+v", a, b)
	}
}
