package aethereal

import (
	"fmt"
	"sort"
)

// Request asks the TDM scheduler for a bandwidth share between two ports
// of one router: Slots of the table's Slots entries.
type Request struct {
	// In and Out are the ports.
	In, Out int
	// Slots is the number of table slots required (bandwidth share =
	// Slots / table length).
	Slots int
}

// ScheduleStats quantifies the effort of building a slot table — the
// paper's Section 4 argument that "determining the static time slots table
// requires considerable effort" for TDM networks, whereas lane allocation
// in the circuit-switched proposal is a trivial first-fit per link.
type ScheduleStats struct {
	// Granted counts fully satisfied requests.
	Granted int
	// Rejected counts requests that could not be placed.
	Rejected int
	// Probes counts slot-compatibility checks performed — the work the
	// scheduler did.
	Probes int
}

// ScheduleGreedy builds a slot table for the requests, largest first, and
// reports the effort. A slot can be granted when both the output port and
// the input port are unused in that slot (the contention-free invariant
// that makes TDM tables hard: each grant constrains two resource axes at
// once, unlike lanes, which constrain one).
func ScheduleGreedy(p Params, reqs []Request) (*SlotTable, ScheduleStats, error) {
	t := NewSlotTable(p)
	var st ScheduleStats

	// Input-side occupancy per slot (the table itself tracks outputs).
	inBusy := make([][]bool, p.Slots)
	for s := range inBusy {
		inBusy[s] = make([]bool, p.Ports)
	}

	order := make([]Request, len(reqs))
	copy(order, reqs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Slots > order[j].Slots })

	for _, r := range order {
		if r.In < 0 || r.In >= p.Ports || r.Out < 0 || r.Out >= p.Ports || r.In == r.Out {
			return nil, st, fmt.Errorf("aethereal: invalid request %+v", r)
		}
		if r.Slots < 1 || r.Slots > p.Slots {
			return nil, st, fmt.Errorf("aethereal: request wants %d of %d slots", r.Slots, p.Slots)
		}
		var free []int
		for s := 0; s < p.Slots && len(free) < r.Slots; s++ {
			st.Probes++
			if t.Entry(s, r.Out) == NoInput && !inBusy[s][r.In] {
				free = append(free, s)
			}
		}
		if len(free) < r.Slots {
			st.Rejected++
			continue
		}
		for _, s := range free {
			if err := t.Reserve(s, r.In, r.Out); err != nil {
				return nil, st, err
			}
			inBusy[s][r.In] = true
		}
		st.Granted++
	}
	return t, st, nil
}

// LaneAllocStats mirrors ScheduleStats for the circuit-switched router's
// lane allocation on a single router: first-fit over the output port's
// lanes, one resource axis, no time dimension.
type LaneAllocStats struct {
	// Granted and Rejected count request outcomes.
	Granted, Rejected int
	// Probes counts lane-occupancy checks.
	Probes int
}

// AllocateLanes performs the circuit-switched counterpart: each request
// needs `lanes` free lanes on its output port (lane division instead of
// time division). It reports the same effort metric for comparison.
func AllocateLanes(ports, lanesPerPort int, reqs []Request) LaneAllocStats {
	var st LaneAllocStats
	used := make([][]bool, ports)
	for i := range used {
		used[i] = make([]bool, lanesPerPort)
	}
	for _, r := range reqs {
		// Translate the slot share into lanes: a request for k of S slots
		// is a request for ceil(k*lanes/S)... the caller pre-scales; here
		// Slots is interpreted directly as a lane count.
		var free []int
		for l := 0; l < lanesPerPort && len(free) < r.Slots; l++ {
			st.Probes++
			if !used[r.Out][l] {
				free = append(free, l)
			}
		}
		if len(free) < r.Slots {
			st.Rejected++
			continue
		}
		for _, l := range free {
			used[r.Out][l] = true
		}
		st.Granted++
	}
	return st
}
