// Package aethereal models the third router of the paper's Table 4: a
// contention-free time-division-multiplexed (TDM) router in the style of
// Æthereal (Dielissen et al., "Concepts and implementation of the Philips
// network-on-chip", 2003) — 6 ports, 32-bit links, layouted at 0.175 mm²
// and 500 MHz in the same 0.13 µm technology.
//
// Guaranteed-throughput traffic is scheduled in a slot table: in time slot
// s, output port o forwards the word arriving on table[s][o]. Because the
// table is computed contention free at configuration time, no arbitration
// happens in the data path; unlike the paper's circuit-switched proposal,
// bandwidth is shared in time rather than in space, and determining the
// static slot tables "requires considerable effort" (Section 4). Best
// effort traffic fills unreserved slots from per-port FIFOs.
//
// Only Table 4 needs this router (total area, maximum frequency, link
// bandwidth), but the functional model is complete enough to validate slot
// schedules and measure GT bandwidth allocation, which the setup-time
// comparison experiment uses.
package aethereal

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/stdcell"
)

// Params are the design parameters of the TDM router.
type Params struct {
	// Ports is the number of bidirectional ports (6 in Table 4).
	Ports int
	// WordBits is the link width (32 in Table 4).
	WordBits int
	// Slots is the slot-table length.
	Slots int
	// BEDepth is the per-port best-effort FIFO depth in words.
	BEDepth int
}

// DefaultParams returns the Table 4 configuration: 6 ports, 32-bit links,
// a 32-slot table and 16-word best-effort FIFOs.
func DefaultParams() Params {
	return Params{Ports: 6, WordBits: 32, Slots: 32, BEDepth: 16}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Ports < 2:
		return fmt.Errorf("aethereal: need at least 2 ports, have %d", p.Ports)
	case p.WordBits < 8 || p.WordBits > 64:
		return fmt.Errorf("aethereal: word width %d out of range", p.WordBits)
	case p.Slots < 1:
		return fmt.Errorf("aethereal: need at least 1 slot, have %d", p.Slots)
	case p.BEDepth < 1:
		return fmt.Errorf("aethereal: need BE depth >= 1, have %d", p.BEDepth)
	}
	return nil
}

// NoInput marks an unreserved slot-table entry.
const NoInput = -1

// SlotTable maps, per time slot and output port, the input port to
// forward (or NoInput).
type SlotTable struct {
	p     Params
	slots [][]int // [slot][outPort] -> inPort or NoInput
}

// NewSlotTable returns an all-unreserved table.
func NewSlotTable(p Params) *SlotTable {
	t := &SlotTable{p: p, slots: make([][]int, p.Slots)}
	for s := range t.slots {
		row := make([]int, p.Ports)
		for o := range row {
			row[o] = NoInput
		}
		t.slots[s] = row
	}
	return t
}

// Reserve books input port in → output port out during slot s. It fails if
// the output is already reserved in that slot (the contention-free
// property) or the ports coincide.
func (t *SlotTable) Reserve(s, in, out int) error {
	if s < 0 || s >= t.p.Slots || in < 0 || in >= t.p.Ports || out < 0 || out >= t.p.Ports {
		return fmt.Errorf("aethereal: reservation (%d,%d,%d) out of range", s, in, out)
	}
	if in == out {
		return fmt.Errorf("aethereal: input and output port %d coincide", in)
	}
	if t.slots[s][out] != NoInput {
		return fmt.Errorf("aethereal: slot %d output %d already reserved", s, out)
	}
	t.slots[s][out] = in
	return nil
}

// Entry returns the input reserved for output out in slot s, or NoInput.
func (t *SlotTable) Entry(s, out int) int { return t.slots[s][out] }

// InputBusy reports whether the input already feeds some output in the
// slot — the no-multicast invariant of the functional model, which
// reservation builders must respect.
func (t *SlotTable) InputBusy(s, in int) bool {
	for _, booked := range t.slots[s] {
		if booked == in {
			return true
		}
	}
	return false
}

// ReservedSlots returns how many of the table's slots reserve the given
// output for the given input — the GT bandwidth share allocated to that
// connection (share = ReservedSlots/Slots of the link bandwidth).
func (t *SlotTable) ReservedSlots(in, out int) int {
	n := 0
	for s := range t.slots {
		if t.slots[s][out] == in {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of slot-table entries that are reserved.
func (t *SlotTable) Utilization() float64 {
	used := 0
	for s := range t.slots {
		for o := range t.slots[s] {
			if t.slots[s][o] != NoInput {
				used++
			}
		}
	}
	return float64(used) / float64(t.p.Slots*t.p.Ports)
}

// Validate checks the contention-free invariant: within one slot, an
// output has at most one input (guaranteed by construction) and an input
// feeds at most one output (no multicast in this model).
func (t *SlotTable) Validate() error {
	for s := range t.slots {
		seen := make(map[int]int)
		for o, in := range t.slots[s] {
			if in == NoInput {
				continue
			}
			if prev, dup := seen[in]; dup {
				return fmt.Errorf("aethereal: slot %d: input %d feeds outputs %d and %d",
					s, in, prev, o)
			}
			seen[in] = o
		}
	}
	return nil
}

// Router is the functional TDM router: a slot counter, the slot table and
// registered outputs. Best-effort words fill unreserved output slots.
type Router struct {
	// P are the design parameters.
	P Params
	// Table is the GT slot table, written at configuration time.
	Table *SlotTable
	// Out holds the registered output words, one per port; OutValid marks
	// slots carrying data.
	Out      []uint32
	OutValid []bool

	in      []*uint32
	inValid []*bool
	slot    int

	beFIFOs [][]beWord // per output port
	beRR    int

	meter *power.Meter

	gtForwarded uint64
	beForwarded uint64

	nextOut   []uint32
	nextValid []bool
	bePops    []int
}

type beWord struct{ data uint32 }

// NewRouter returns a TDM router with an empty slot table.
func NewRouter(p Params) *Router {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Router{
		P:         p,
		Table:     NewSlotTable(p),
		Out:       make([]uint32, p.Ports),
		OutValid:  make([]bool, p.Ports),
		in:        make([]*uint32, p.Ports),
		inValid:   make([]*bool, p.Ports),
		beFIFOs:   make([][]beWord, p.Ports),
		nextOut:   make([]uint32, p.Ports),
		nextValid: make([]bool, p.Ports),
	}
}

// ConnectIn wires input port i to an upstream data/valid register pair.
func (r *Router) ConnectIn(i int, data *uint32, valid *bool) {
	r.in[i] = data
	r.inValid[i] = valid
}

// BindMeter attaches a power meter whose clock network the router ticks
// itself: once per Commit, once per IdleTick, and in one run-length
// batch per IdleWindow. Folding the tick into the router (instead of an
// every-cycle monitor Func) is what lets TDM scenarios fast-forward —
// the meter's run-length encoded clock energy makes the batched window
// bit-identical to per-cycle ticks. The TDM router has no clock gating,
// so the full clock network is charged on idle cycles too.
func (r *Router) BindMeter(m *power.Meter) { r.meter = m }

// OfferBE queues a best-effort word for the given output port, returning
// false if the BE FIFO is full.
func (r *Router) OfferBE(out int, data uint32) bool {
	if len(r.beFIFOs[out]) >= r.P.BEDepth {
		return false
	}
	r.beFIFOs[out] = append(r.beFIFOs[out], beWord{data: data})
	return true
}

// Slot returns the current slot-table position.
func (r *Router) Slot() int { return r.slot }

// GTForwarded and BEForwarded return the words moved on each service class.
func (r *Router) GTForwarded() uint64 { return r.gtForwarded }

// BEForwarded returns the number of best-effort words forwarded.
func (r *Router) BEForwarded() uint64 { return r.beForwarded }

// Eval implements sim.Clocked.
func (r *Router) Eval() {
	r.bePops = r.bePops[:0]
	for o := 0; o < r.P.Ports; o++ {
		r.nextValid[o] = false
		r.nextOut[o] = 0
		in := r.Table.Entry(r.slot, o)
		if in != NoInput {
			if r.in[in] != nil && r.inValid[in] != nil && *r.inValid[in] {
				r.nextOut[o] = *r.in[in]
				r.nextValid[o] = true
			}
			continue
		}
		// Unreserved slot: best effort fills it.
		if len(r.beFIFOs[o]) > 0 {
			r.nextOut[o] = r.beFIFOs[o][0].data
			r.nextValid[o] = true
			r.bePops = append(r.bePops, o)
		}
	}
}

// Commit implements sim.Clocked.
func (r *Router) Commit() {
	for o := 0; o < r.P.Ports; o++ {
		if r.nextValid[o] {
			if r.Table.Entry(r.slot, o) != NoInput {
				r.gtForwarded++
			}
		}
		r.Out[o] = r.nextOut[o]
		r.OutValid[o] = r.nextValid[o]
	}
	for _, o := range r.bePops {
		r.beFIFOs[o] = r.beFIFOs[o][1:]
		r.beForwarded++
	}
	r.slot = (r.slot + 1) % r.P.Slots
	if r.meter != nil {
		r.meter.Tick()
	}
}

// Quiescent implements sim.Quiescer: the TDM router is skippable when no
// input presents a valid word, every best-effort FIFO is empty and every
// output register is idle — i.e. none of its reserved slots is occupied
// and no BE traffic is waiting. The slot counter still advances on skipped
// cycles via IdleTick, keeping the TDM frame phase cycle-accurate.
func (r *Router) Quiescent() bool {
	for o := 0; o < r.P.Ports; o++ {
		if r.OutValid[o] || len(r.beFIFOs[o]) != 0 {
			return false
		}
		if r.in[o] != nil && r.inValid[o] != nil && *r.inValid[o] {
			return false
		}
	}
	return true
}

// IdleTick implements sim.IdleTicker: on an idle cycle the slot counter
// moves and the (ungated) clock network is charged.
func (r *Router) IdleTick() {
	r.slot = (r.slot + 1) % r.P.Slots
	if r.meter != nil {
		r.meter.Tick()
	}
}

// IdleWindow implements sim.IdleWindower: a window of n idle cycles
// advances the slot counter by n modulo the table length and charges n
// clock ticks in one O(1) run-length extension, keeping both the TDM
// frame phase and the accumulated clock energy bit-identical across a
// fast-forward.
func (r *Router) IdleWindow(n uint64) {
	r.slot = int((uint64(r.slot) + n) % uint64(r.P.Slots))
	if r.meter != nil {
		r.meter.TickN(n)
	}
}

// Netlist returns the structural netlist that reproduces the Table 4 row:
// slot table storage, the GT crossbar, best-effort buffering and the
// header-parsing/arbitration unit.
func Netlist(p Params, lib stdcell.Lib) *netlist.Design {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := &netlist.Design{Name: "Aethereal (slot-table TDM) router"}

	entryBits := 3 * p.Ports // ~3 bits of input select per output
	d.AddBlock(netlist.SlotTable("slot table", p.Slots, entryBits))

	xbar := netlist.Crossbar(lib, "crossbar", p.Ports, p.Ports, p.WordBits+2)
	d.AddBlock(xbar)

	buf := netlist.Component{Name: "BE buffering"}
	for i := 0; i < p.Ports; i++ {
		buf = buf.Add(netlist.ShiftFIFO("", p.WordBits+2, p.BEDepth))
	}
	buf.Name = "BE buffering"
	d.AddBlock(buf)

	arb := netlist.Component{Name: "BE arbitration"}
	for i := 0; i < p.Ports; i++ {
		arb = arb.Add(netlist.RoundRobinArbiter("", p.Ports))
	}
	arb.Name = "BE arbitration"
	d.AddBlock(arb)

	d.AddBlock(netlist.Component{Name: "header parsing", DFFs: 80, CombGE: 900})

	// ~500 MHz in 0.13 µm: slot-table read, crossbar traversal, BE
	// fallback mux and wiring.
	d.CriticalPathFO4 = 4.0 + netlist.MuxTreeDepthFO4(p.Ports) + 7.6 + 12.0

	return d
}

// LinkBandwidthGbps returns the raw link bandwidth (Table 4: 32 bit ×
// 500 MHz = 16 Gb/s).
func LinkBandwidthGbps(p Params, freqMHz float64) float64 {
	return float64(p.WordBits) * freqMHz * 1e6 / 1e9
}
