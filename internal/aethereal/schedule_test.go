package aethereal

import (
	"testing"
	"testing/quick"
)

func TestScheduleGreedySimple(t *testing.T) {
	p := Params{Ports: 4, WordBits: 32, Slots: 8, BEDepth: 2}
	tb, st, err := ScheduleGreedy(p, []Request{
		{In: 0, Out: 1, Slots: 4},
		{In: 2, Out: 3, Slots: 4},
		{In: 0, Out: 3, Slots: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted != 3 || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := tb.Validate(); err != nil {
		t.Fatalf("schedule violates contention freedom: %v", err)
	}
	if got := tb.ReservedSlots(0, 1); got != 4 {
		t.Fatalf("reserved = %d", got)
	}
	if st.Probes == 0 {
		t.Fatal("no effort recorded")
	}
}

func TestScheduleGreedyRejectsOverload(t *testing.T) {
	p := Params{Ports: 3, WordBits: 32, Slots: 4, BEDepth: 2}
	// Output 1 can carry at most 4 slots total.
	_, st, err := ScheduleGreedy(p, []Request{
		{In: 0, Out: 1, Slots: 3},
		{In: 2, Out: 1, Slots: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScheduleGreedyInputSideConflict(t *testing.T) {
	// One input feeding two outputs is limited by the input axis: 3+3
	// slots from input 0 need 6 of 8 slots — fine; 5+5 would not be.
	p := Params{Ports: 4, WordBits: 32, Slots: 8, BEDepth: 2}
	_, st, err := ScheduleGreedy(p, []Request{
		{In: 0, Out: 1, Slots: 5},
		{In: 0, Out: 2, Slots: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted != 1 || st.Rejected != 1 {
		t.Fatalf("input-axis conflict not detected: %+v", st)
	}
}

func TestScheduleGreedyErrors(t *testing.T) {
	p := Params{Ports: 3, WordBits: 32, Slots: 4, BEDepth: 2}
	for _, bad := range []Request{
		{In: 0, Out: 0, Slots: 1},
		{In: -1, Out: 1, Slots: 1},
		{In: 0, Out: 9, Slots: 1},
		{In: 0, Out: 1, Slots: 0},
		{In: 0, Out: 1, Slots: 99},
	} {
		if _, _, err := ScheduleGreedy(p, []Request{bad}); err == nil {
			t.Errorf("request %+v accepted", bad)
		}
	}
}

func TestScheduleAlwaysContentionFreeProperty(t *testing.T) {
	// Whatever the request mix, a greedy schedule that validates is
	// contention free and grants never exceed the table capacity.
	f := func(seed uint8, nRaw uint8) bool {
		p := Params{Ports: 4, WordBits: 32, Slots: 8, BEDepth: 2}
		n := int(nRaw)%10 + 1
		reqs := make([]Request, 0, n)
		s := int(seed)
		for i := 0; i < n; i++ {
			in := (s + i) % 4
			out := (s + i + 1 + i%3) % 4
			if in == out {
				out = (out + 1) % 4
			}
			reqs = append(reqs, Request{In: in, Out: out, Slots: (s+i)%3 + 1})
		}
		tb, st, err := ScheduleGreedy(p, reqs)
		if err != nil {
			return false
		}
		if tb.Validate() != nil {
			return false
		}
		return st.Granted+st.Rejected == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateLanes(t *testing.T) {
	st := AllocateLanes(5, 4, []Request{
		{In: 0, Out: 1, Slots: 2},
		{In: 2, Out: 1, Slots: 2},
		{In: 3, Out: 1, Slots: 1}, // output 1 exhausted
	})
	if st.Granted != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLaneAllocationCheaperThanTDM(t *testing.T) {
	// The quantified Section 4 claim: for the same request set and equal
	// bandwidth shares, lane allocation probes far less state.
	p := Params{Ports: 5, WordBits: 32, Slots: 32, BEDepth: 2}
	var tdmReqs, laneReqs []Request
	for i := 0; i < 8; i++ {
		in, out := i%5, (i+1)%5
		tdmReqs = append(tdmReqs, Request{In: in, Out: out, Slots: 8})
		laneReqs = append(laneReqs, Request{In: in, Out: out, Slots: 1})
	}
	_, tdm, err := ScheduleGreedy(p, tdmReqs)
	if err != nil {
		t.Fatal(err)
	}
	lane := AllocateLanes(5, 4, laneReqs)
	if tdm.Probes <= 4*lane.Probes {
		t.Fatalf("TDM probes %d vs lane probes %d: expected >4x gap",
			tdm.Probes, lane.Probes)
	}
}
