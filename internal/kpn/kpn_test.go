package kpn

import "testing"

func valid() *Graph {
	return &Graph{
		Name: "test",
		Processes: []Process{
			{Name: "a"}, {Name: "b"}, {Name: "c"},
		},
		Channels: []Channel{
			{Name: "ab", From: "a", To: "b", BandwidthMbps: 100, Class: GT},
			{Name: "bc", From: "b", To: "c", BandwidthMbps: 50, Class: GT},
			{Name: "ctl", From: "c", To: "a", BandwidthMbps: 1, Class: BE},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Graph){
		"no name":        func(g *Graph) { g.Name = "" },
		"no processes":   func(g *Graph) { g.Processes = nil },
		"empty process":  func(g *Graph) { g.Processes[0].Name = "" },
		"dup process":    func(g *Graph) { g.Processes[1].Name = "a" },
		"unknown from":   func(g *Graph) { g.Channels[0].From = "zz" },
		"unknown to":     func(g *Graph) { g.Channels[0].To = "zz" },
		"self loop":      func(g *Graph) { g.Channels[0].To = "a" },
		"zero bandwidth": func(g *Graph) { g.Channels[0].BandwidthMbps = 0 },
		"neg bandwidth":  func(g *Graph) { g.Channels[0].BandwidthMbps = -1 },
	}
	for name, mut := range cases {
		g := valid()
		mut(g)
		if g.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBandwidthAccounting(t *testing.T) {
	g := valid()
	if got := g.TotalBandwidthMbps(GT); got != 150 {
		t.Fatalf("GT total = %v", got)
	}
	if got := g.TotalBandwidthMbps(BE); got != 1 {
		t.Fatalf("BE total = %v", got)
	}
	if got := g.BEFraction(); got != 1.0/151 {
		t.Fatalf("BE fraction = %v", got)
	}
	if got := g.MaxChannelMbps(); got != 100 {
		t.Fatalf("max channel = %v", got)
	}
	if got := len(g.GTChannels()); got != 2 {
		t.Fatalf("GT channels = %d", got)
	}
}

func TestBEFractionEmptyGraph(t *testing.T) {
	g := &Graph{Name: "empty", Processes: []Process{{Name: "a"}}}
	if g.BEFraction() != 0 {
		t.Fatal("empty graph BE fraction should be 0")
	}
	if g.MaxChannelMbps() != 0 {
		t.Fatal("empty graph max channel should be 0")
	}
}

func TestDegreeAndLookup(t *testing.T) {
	g := valid()
	if d := g.Degree("b"); d != 2 {
		t.Fatalf("degree(b) = %d", d)
	}
	if d := g.Degree("zz"); d != 0 {
		t.Fatalf("degree(zz) = %d", d)
	}
	if _, ok := g.Process("a"); !ok {
		t.Fatal("Process(a) not found")
	}
	if _, ok := g.Process("zz"); ok {
		t.Fatal("Process(zz) found")
	}
}

func TestClassString(t *testing.T) {
	if GT.String() != "GT" || BE.String() != "BE" {
		t.Fatal("class names wrong")
	}
}
