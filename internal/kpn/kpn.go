// Package kpn models applications as Kahn-like process graphs, the
// programming model of the paper's multi-tile SoC (Section 1: "the
// application is represented as a graph with communicating functional
// processes"). Processes are mapped onto tiles at run time by the CCN; the
// channels between them are mapped onto circuit-switched connections with
// guaranteed throughput, or onto the best-effort network for low-rate
// control traffic.
package kpn

import "fmt"

// Class is the paper's traffic taxonomy (Section 3.3, after Rijpkema et
// al.): guaranteed throughput or best effort.
type Class int

const (
	// GT is guaranteed-throughput traffic: the network must provide
	// guaranteed bandwidth and bounded latency (the streaming majority).
	GT Class = iota
	// BE is best-effort traffic: control, interrupts and configuration
	// data, assumed to be less than 5% of the total (Section 3.3).
	BE
)

// String returns the class name.
func (c Class) String() string {
	if c == GT {
		return "GT"
	}
	return "BE"
}

// Process is one functional process of the application graph.
type Process struct {
	// Name identifies the process (e.g. "FFT").
	Name string
	// Kind hints at the tile type that executes the process most
	// efficiently (DSP, FPGA, ASIC, GPP, DSRH); informational.
	Kind string
}

// Channel is a directed communication stream between two processes.
type Channel struct {
	// Name labels the channel (e.g. the paper's edge numbers).
	Name string
	// From and To are process names.
	From, To string
	// BandwidthMbps is the required bandwidth in Mbit/s.
	BandwidthMbps float64
	// Class is GT for streaming data, BE for control.
	Class Class
	// Block, when true, marks block-based communication (OFDM symbols);
	// false is sample-streaming (UMTS). Informational, from Section 3.3.
	Block bool
}

// Graph is an application: processes plus channels.
type Graph struct {
	// Name identifies the application.
	Name string
	// Processes are the graph nodes.
	Processes []Process
	// Channels are the graph edges.
	Channels []Channel
}

// Process returns the named process, if present.
func (g *Graph) Process(name string) (Process, bool) {
	for _, p := range g.Processes {
		if p.Name == name {
			return p, true
		}
	}
	return Process{}, false
}

// Validate checks referential integrity: channel endpoints exist, names
// are unique, bandwidths are positive.
func (g *Graph) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("kpn: graph without name")
	}
	if len(g.Processes) == 0 {
		return fmt.Errorf("kpn: graph %q has no processes", g.Name)
	}
	seen := map[string]bool{}
	for _, p := range g.Processes {
		if p.Name == "" {
			return fmt.Errorf("kpn: process without name in %q", g.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("kpn: duplicate process %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, c := range g.Channels {
		if !seen[c.From] {
			return fmt.Errorf("kpn: channel %q from unknown process %q", c.Name, c.From)
		}
		if !seen[c.To] {
			return fmt.Errorf("kpn: channel %q to unknown process %q", c.Name, c.To)
		}
		if c.From == c.To {
			return fmt.Errorf("kpn: channel %q is a self loop", c.Name)
		}
		if c.BandwidthMbps <= 0 {
			return fmt.Errorf("kpn: channel %q has non-positive bandwidth", c.Name)
		}
	}
	return nil
}

// TotalBandwidthMbps sums the bandwidth of all channels of the class.
func (g *Graph) TotalBandwidthMbps(class Class) float64 {
	var t float64
	for _, c := range g.Channels {
		if c.Class == class {
			t += c.BandwidthMbps
		}
	}
	return t
}

// GTChannels returns the guaranteed-throughput channels.
func (g *Graph) GTChannels() []Channel {
	var out []Channel
	for _, c := range g.Channels {
		if c.Class == GT {
			out = append(out, c)
		}
	}
	return out
}

// MaxChannelMbps returns the largest single-channel GT bandwidth — the
// sizing driver for lanes per link (Section 5.1: "The tables of section 3
// can be used to determine the width and number of lanes").
func (g *Graph) MaxChannelMbps() float64 {
	var m float64
	for _, c := range g.Channels {
		if c.Class == GT && c.BandwidthMbps > m {
			m = c.BandwidthMbps
		}
	}
	return m
}

// BEFraction returns BE bandwidth over total bandwidth; the paper assumes
// this stays below 5%.
func (g *Graph) BEFraction() float64 {
	be, gt := g.TotalBandwidthMbps(BE), g.TotalBandwidthMbps(GT)
	if be+gt == 0 {
		return 0
	}
	return be / (be + gt)
}

// Degree returns how many channels touch the named process.
func (g *Graph) Degree(name string) int {
	d := 0
	for _, c := range g.Channels {
		if c.From == name || c.To == name {
			d++
		}
	}
	return d
}
