package cellcache

import (
	"bytes"
	"testing"
)

// FuzzEntryRoundTrip drives the on-disk entry framing from both ends:
// any payload must survive encode→decode byte-exactly, and any byte
// string fed straight to DecodeEntry must either decode cleanly and
// re-encode to a canonical frame or be rejected — never panic, never
// return a payload that fails its own checksum.
func FuzzEntryRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{})
	f.Add([]byte("payload"))
	f.Add(EncodeEntry([]byte("framed")))
	f.Add(EncodeEntry(nil))
	f.Add([]byte(entryMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Forward: encode(data) must decode back to data.
		enc := EncodeEntry(data)
		dec, err := DecodeEntry(enc)
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(data), err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip changed payload (%d bytes)", len(data))
		}

		// Backward: data as a frame either decodes (and the decoded
		// payload re-frames to data, since the framing is canonical) or
		// errors out gracefully.
		if payload, err := DecodeEntry(data); err == nil {
			if !bytes.Equal(EncodeEntry(payload), data) {
				t.Fatalf("accepted non-canonical frame (%d bytes)", len(data))
			}
		}
	})
}
