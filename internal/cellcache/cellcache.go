// Package cellcache is a content-addressed store for encoded sweep-cell
// results. Keys are SHA-256 digests of canonical key material (the
// fully-resolved scenario, its seed and a code-version fingerprint —
// derived by the caller); values are opaque encoded payloads. Because a
// sweep cell's bytes are a pure function of that key material, a hit can
// be substituted for a simulation run without changing a single output
// byte — the store never needs to validate payloads against anything but
// its own integrity framing.
//
// The store is two-level: a bounded in-memory LRU in front of an optional
// on-disk directory. Disk entries are written atomically (temp file +
// rename) and framed with a magic, version, length and CRC32 so a
// truncated or corrupted file degrades to a miss, never to a wrong
// result.
package cellcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// Key addresses one cached payload: the SHA-256 of the caller's canonical
// key material.
type Key [sha256.Size]byte

// KeyOf digests canonical key material into a Key.
func KeyOf(material []byte) Key { return sha256.Sum256(material) }

// String renders the key as lowercase hex (also the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Stats counts the store's traffic since construction.
type Stats struct {
	// Hits and Misses count Get outcomes (a disk hit counts as a hit).
	Hits, Misses uint64
	// Puts counts stored payloads.
	Puts uint64
}

// DefaultMaxEntries bounds the in-memory LRU when the caller passes a
// non-positive capacity.
const DefaultMaxEntries = 4096

// Store is a bounded in-memory LRU, optionally backed by a directory.
// All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	cap   int
	mem   map[Key]*list.Element
	lru   list.List // front = most recent; values are *entry
	dir   string
	stats Stats
}

// entry is one resident cache line.
type entry struct {
	k Key
	v []byte
}

// New returns a memory-only store holding at most maxEntries payloads.
func New(maxEntries int) *Store {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	s := &Store{cap: maxEntries, mem: make(map[Key]*list.Element)}
	s.lru.Init()
	return s
}

// NewDir returns a store backed by dir (created if missing). Evicted and
// restarted entries survive on disk; reads promote them back into memory.
func NewDir(dir string, maxEntries int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cellcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: %w", err)
	}
	s := New(maxEntries)
	s.dir = dir
	return s, nil
}

// Dir returns the backing directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Get returns the payload stored under k. The boolean reports whether the
// key was found (in memory or on disk); the returned slice is a copy the
// caller may keep.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[k]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		return clone(el.Value.(*entry).v), true
	}
	if s.dir != "" {
		if v, err := s.readDisk(k); err == nil {
			s.insert(k, v)
			s.stats.Hits++
			return clone(v), true
		}
	}
	s.stats.Misses++
	return nil, false
}

// Put stores payload under k, overwriting any previous value. The store
// keeps its own copy. Disk write failures are swallowed: the cache is an
// accelerator, never a correctness dependency.
func (s *Store) Put(k Key, payload []byte) {
	v := clone(payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	if el, ok := s.mem[k]; ok {
		el.Value.(*entry).v = v
		s.lru.MoveToFront(el)
	} else {
		s.insert(k, v)
	}
	if s.dir != "" {
		s.writeDisk(k, v)
	}
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of payloads resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// MetricsInto publishes the store's traffic counters and occupancy into
// the registry as gauges (a nil registry is a no-op). Gauges, not
// counters: the store is shared across runs, so each snapshot reports
// the store's lifetime totals at that moment rather than accumulating
// them again per run.
func (s *Store) MetricsInto(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := s.Stats()
	reg.Gauge("cellcache.hits").Set(int64(st.Hits))
	reg.Gauge("cellcache.misses").Set(int64(st.Misses))
	reg.Gauge("cellcache.puts").Set(int64(st.Puts))
	reg.Gauge("cellcache.entries").Set(int64(s.Len()))
}

// insert adds a fresh entry and evicts past capacity. Callers hold mu.
func (s *Store) insert(k Key, v []byte) {
	s.mem[k] = s.lru.PushFront(&entry{k: k, v: v})
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		delete(s.mem, back.Value.(*entry).k)
		s.lru.Remove(back)
	}
}

// path returns the on-disk file for k.
func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.String()+".cell") }

// readDisk loads and verifies one entry file.
func (s *Store) readDisk(k Key) ([]byte, error) {
	b, err := os.ReadFile(s.path(k))
	if err != nil {
		return nil, err
	}
	return DecodeEntry(b)
}

// writeDisk persists one entry atomically: a unique temp file in the same
// directory, then rename. A concurrent writer of the same key races to an
// identical payload (content addressing), so last-rename-wins is safe.
func (s *Store) writeDisk(k Key, v []byte) {
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(EncodeEntry(v))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, s.path(k)); err != nil {
		os.Remove(name)
	}
}

// Entry framing: magic "nocc", a format version byte, the payload length,
// the payload's CRC32 (IEEE) and the payload itself. Length and checksum
// make truncation and bit rot detectable, so DecodeEntry fails closed.
const (
	entryMagic   = "nocc"
	entryVersion = 1
	entryHeader  = len(entryMagic) + 1 + 4 + 4
)

// EncodeEntry frames a payload for disk.
func EncodeEntry(payload []byte) []byte {
	out := make([]byte, 0, entryHeader+len(payload))
	out = append(out, entryMagic...)
	out = append(out, entryVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// DecodeEntry unframes a disk entry, verifying magic, version, length and
// checksum. Any mismatch — short file, trailing garbage, flipped bit —
// returns an error, which the store treats as a miss.
func DecodeEntry(b []byte) ([]byte, error) {
	if len(b) < entryHeader {
		return nil, fmt.Errorf("cellcache: entry truncated at %d bytes", len(b))
	}
	if string(b[:len(entryMagic)]) != entryMagic {
		return nil, errors.New("cellcache: bad entry magic")
	}
	if v := b[len(entryMagic)]; v != entryVersion {
		return nil, fmt.Errorf("cellcache: unsupported entry version %d", v)
	}
	n := binary.LittleEndian.Uint32(b[len(entryMagic)+1:])
	sum := binary.LittleEndian.Uint32(b[len(entryMagic)+5:])
	payload := b[entryHeader:]
	if uint64(len(payload)) != uint64(n) {
		return nil, fmt.Errorf("cellcache: entry length %d, want %d", len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, errors.New("cellcache: entry checksum mismatch")
	}
	return clone(payload), nil
}

// clone copies a byte slice (nil-preserving for empty payload symmetry).
func clone(b []byte) []byte {
	if len(b) == 0 {
		return []byte{}
	}
	return append([]byte(nil), b...)
}
