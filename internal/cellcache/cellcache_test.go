package cellcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMemoryGetPut(t *testing.T) {
	s := New(8)
	k := KeyOf([]byte("cell-a"))
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(k, []byte("payload"))
	v, ok := s.Get(k)
	if !ok || string(v) != "payload" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReturnedSliceIsACopy(t *testing.T) {
	s := New(8)
	k := KeyOf([]byte("k"))
	orig := []byte("abc")
	s.Put(k, orig)
	orig[0] = 'X' // caller mutates after Put
	v, _ := s.Get(k)
	if string(v) != "abc" {
		t.Fatalf("Put did not copy: %q", v)
	}
	v[0] = 'Y' // caller mutates the returned slice
	v2, _ := s.Get(k)
	if string(v2) != "abc" {
		t.Fatalf("Get did not copy: %q", v2)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(2)
	ka, kb, kc := KeyOf([]byte("a")), KeyOf([]byte("b")), KeyOf([]byte("c"))
	s.Put(ka, []byte("A"))
	s.Put(kb, []byte("B"))
	s.Get(ka) // promote a
	s.Put(kc, []byte("C"))
	if _, ok := s.Get(kb); ok {
		t.Fatal("least-recent entry survived eviction")
	}
	if _, ok := s.Get(ka); !ok {
		t.Fatal("promoted entry evicted")
	}
	if _, ok := s.Get(kc); !ok {
		t.Fatal("fresh entry evicted")
	}
}

func TestDiskRoundTripAndPromotion(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("disk"))
	s.Put(k, []byte("persisted"))

	// A second store over the same directory sees the entry.
	s2, err := NewDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.Get(k)
	if !ok || string(v) != "persisted" {
		t.Fatalf("disk read got %q ok=%v", v, ok)
	}
	// The read promoted the entry into memory: corrupting the file now
	// must not affect the memory hit.
	if err := os.WriteFile(filepath.Join(dir, k.String()+".cell"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(k); !ok || string(v) != "persisted" {
		t.Fatalf("memory hit after promotion got %q ok=%v", v, ok)
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDir(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf([]byte("corrupt"))
	good := EncodeEntry([]byte("payload"))
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:entryHeader-1],
		"badmagic":  append([]byte("XXXX"), good[4:]...),
		"badver":    append(append([]byte(entryMagic), 99), good[5:]...),
		"truncated": good[:len(good)-2],
		"bitflip": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 1
			return b
		}(),
	}
	for name, b := range cases {
		if err := os.WriteFile(s.path(k), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("%s: corrupt entry served as a hit", name)
		}
	}
}

func TestEntryRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)} {
		got, err := DecodeEntry(EncodeEntry(payload))
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload (%d bytes)", len(payload))
		}
	}
}

func TestKeyOfIsStable(t *testing.T) {
	a, b := KeyOf([]byte("material")), KeyOf([]byte("material"))
	if a != b {
		t.Fatal("same material, different keys")
	}
	if a == KeyOf([]byte("material2")) {
		t.Fatal("different material, same key")
	}
}
