package packetsw

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

func TestParamsDefaults(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.InputVCs() != 20 {
		t.Fatalf("input VCs = %d, want 20 (fair comparison with 20 lanes)", p.InputVCs())
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []Params{
		{Ports: 1, VCs: 4, Depth: 8, PhitBits: 16},
		{Ports: 5, VCs: 0, Depth: 8, PhitBits: 16},
		{Ports: 5, VCs: 4, Depth: 0, PhitBits: 16},
		{Ports: 5, VCs: 4, Depth: 8, PhitBits: 2},
		{Ports: 5, VCs: 4, Depth: 8, PhitBits: 64},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d accepted %+v", i, p)
		}
	}
}

func TestKindHelpers(t *testing.T) {
	if !Head.Opens() || !HeadTail.Opens() || Body.Opens() || Tail.Opens() {
		t.Fatal("Opens wrong")
	}
	if !Tail.Closes() || !HeadTail.Closes() || Head.Closes() || Body.Closes() {
		t.Fatal("Closes wrong")
	}
	for _, k := range []Kind{Invalid, Head, Body, Tail, HeadTail, Kind(9)} {
		if k.String() == "" {
			t.Fatalf("Kind(%d) renders empty", int(k))
		}
	}
}

func TestMakePacket(t *testing.T) {
	fl := MakePacket(2, HeadData(core.East), []uint16{1, 2, 3})
	if len(fl) != 4 {
		t.Fatalf("packet length %d", len(fl))
	}
	if fl[0].Kind != Head || fl[1].Kind != Body || fl[2].Kind != Body || fl[3].Kind != Tail {
		t.Fatalf("flit kinds wrong: %v", fl)
	}
	for _, f := range fl {
		if f.VC != 2 {
			t.Fatal("VC not propagated")
		}
	}
	single := MakePacket(0, HeadData(core.North), nil)
	if len(single) != 1 || single[0].Kind != HeadTail {
		t.Fatalf("empty payload should make a HeadTail flit: %v", single)
	}
	if PortRoute(single[0].Data) != core.North {
		t.Fatal("route did not survive")
	}
}

// inject feeds whole packets into the router's tile port as fast as the
// FIFOs accept, via a sim.Func stimulus.
type injector struct {
	r     *Router
	queue []Flit
}

func (in *injector) eval() {
	for len(in.queue) > 0 {
		if !in.r.Inject(in.queue[0]) {
			return
		}
		in.queue = in.queue[1:]
	}
}

func TestSingleRouterTileLoopback(t *testing.T) {
	// Inject a packet at the tile port routed to... the tile port is the
	// only ejection point of a standalone router, but routing back to the
	// input port is forbidden in the CS router, not in the PS router's
	// model; still, use North->Tile via an external wire to exercise a
	// real traversal.
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	// Wire North input from an external register we drive.
	var northIn Flit
	r.ConnectIn(core.North, &northIn)
	w := sim.NewWorld()
	w.Add(r)
	pkt := MakePacket(1, HeadData(core.Tile), []uint16{0xAAAA, 0x5555})
	i := 0
	w.Add(&sim.Func{OnEval: func() {
		if i < len(pkt) {
			northIn = pkt[i]
			i++
		} else {
			northIn = Flit{}
		}
	}})
	if !w.RunUntil(func() bool { return r.PacketsEjected() == 1 }, 100) {
		t.Fatal("packet not delivered")
	}
	fl := r.Drain()
	if len(fl) != 3 {
		t.Fatalf("ejected %d flits, want 3", len(fl))
	}
	if fl[1].Data != 0xAAAA || fl[2].Data != 0x5555 {
		t.Fatalf("payload corrupted: %v", fl)
	}
	if r.Dropped() != 0 {
		t.Fatal("drops in a trivial transfer")
	}
}

func TestInjectAndRouteToOutput(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	w := sim.NewWorld()
	w.Add(r)
	inj := &injector{r: r, queue: MakePacket(0, HeadData(core.East), []uint16{7, 8})}
	w.Add(&sim.Func{OnEval: inj.eval})
	var seen []Flit
	w.Add(&sim.Func{OnEval: func() {
		if f := r.Out[core.East]; f.Valid() {
			seen = append(seen, f)
		}
	}})
	w.Run(50)
	if len(seen) != 3 {
		t.Fatalf("East emitted %d flits, want 3", len(seen))
	}
	if seen[0].Kind != Head || seen[2].Kind != Tail {
		t.Fatalf("flit order wrong: %v", seen)
	}
}

func TestWormholeOrderWithinVC(t *testing.T) {
	// Two packets on the same VC must not interleave.
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	w := sim.NewWorld()
	w.Add(r)
	q := append(MakePacket(0, HeadData(core.East), []uint16{1, 2}),
		MakePacket(0, HeadData(core.South), []uint16{3, 4})...)
	inj := &injector{r: r, queue: q}
	w.Add(&sim.Func{OnEval: inj.eval})
	var east, south []Flit
	w.Add(&sim.Func{OnEval: func() {
		if f := r.Out[core.East]; f.Valid() {
			east = append(east, f)
		}
		if f := r.Out[core.South]; f.Valid() {
			south = append(south, f)
		}
	}})
	w.Run(60)
	if len(east) != 3 || len(south) != 3 {
		t.Fatalf("east %d flits, south %d flits", len(east), len(south))
	}
	if east[1].Data != 1 || east[2].Data != 2 || south[1].Data != 3 || south[2].Data != 4 {
		t.Fatalf("payload order broken: %v / %v", east, south)
	}
}

func TestVCsInterleaveAtSharedOutput(t *testing.T) {
	// Two streams on different VCs to the same output port time-multiplex
	// flit by flit — the collision behaviour of the paper's Figure 10
	// discussion.
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var westIn Flit
	r.ConnectIn(core.West, &westIn)
	w := sim.NewWorld()
	w.Add(r)
	// Stream A: tile VC0 -> East. Stream B: west VC1 -> East.
	injA := &injector{r: r}
	for i := 0; i < 5; i++ {
		injA.queue = append(injA.queue, MakePacket(0, HeadData(core.East), []uint16{uint16(i)})...)
	}
	w.Add(&sim.Func{OnEval: injA.eval})
	bFlits := []Flit{}
	for i := 0; i < 5; i++ {
		bFlits = append(bFlits, MakePacket(1, HeadData(core.East), []uint16{uint16(0x100 + i)})...)
	}
	bi := 0
	w.Add(&sim.Func{OnEval: func() {
		if bi < len(bFlits) {
			westIn = bFlits[bi]
			bi++
		} else {
			westIn = Flit{}
		}
	}})
	var fromTile, fromWest int
	w.Add(&sim.Func{OnEval: func() {
		f := r.Out[core.East]
		if !f.Valid() {
			return
		}
		if f.VC == 0 {
			fromTile++
		} else {
			fromWest++
		}
	}})
	w.Run(80)
	if fromTile != 10 || fromWest != 10 {
		t.Fatalf("East carried %d tile + %d west flits, want 10+10", fromTile, fromWest)
	}
}

func TestBackpressureViaCredits(t *testing.T) {
	// Two routers in series; the downstream tile is the sink. The
	// upstream may never overflow the downstream FIFO.
	p := DefaultParams()
	a := NewRouter(p, PortRoute)
	b := NewRouter(p, func(d uint16) core.Port { return core.Tile })
	// a.East -> b.West.
	b.ConnectIn(core.West, &a.Out[core.East])
	for v := 0; v < p.VCs; v++ {
		a.ConnectCreditIn(core.East, v, &b.CreditOut[int(core.West)][v])
	}
	w := sim.NewWorld()
	w.Add(a, b)
	inj := &injector{r: a}
	for i := 0; i < 30; i++ {
		inj.queue = append(inj.queue, MakePacket(0, HeadData(core.East), []uint16{uint16(i), uint16(i + 1)})...)
	}
	w.Add(&sim.Func{OnEval: inj.eval})
	if !w.RunUntil(func() bool { return b.PacketsEjected() == 30 }, 2000) {
		t.Fatalf("delivered %d/30 packets", b.PacketsEjected())
	}
	if b.Dropped() != 0 {
		t.Fatalf("credit protocol failed: %d drops", b.Dropped())
	}
	if a.CreditViolations() != 0 || b.CreditViolations() != 0 {
		t.Fatal("credit violations")
	}
}

func TestCreditsThrottleWhenDownstreamBlocked(t *testing.T) {
	// Downstream routes everything to East but East is not consumed by
	// anyone... actually with nothing connected downstream-of-downstream,
	// flits leave the output register freely. To create blocking, fill a
	// VC whose credits never return.
	p := DefaultParams()
	a := NewRouter(p, PortRoute)
	b := NewRouter(p, PortRoute)
	b.ConnectIn(core.West, &a.Out[core.East])
	for v := 0; v < p.VCs; v++ {
		a.ConnectCreditIn(core.East, v, &b.CreditOut[int(core.West)][v])
	}
	// b routes to East. Attach a credit wire to b's East that never
	// pulses: b may send Depth flits, then VC0 blocks, b's West FIFO
	// fills, and a must stop sending.
	never := false
	for v := 0; v < p.VCs; v++ {
		b.ConnectCreditIn(core.East, v, &never)
	}
	w := sim.NewWorld()
	w.Add(a, b)
	inj := &injector{r: a}
	for i := 0; i < 20; i++ {
		inj.queue = append(inj.queue, MakePacket(0, HeadData(core.East), []uint16{uint16(i)})...)
	}
	w.Add(&sim.Func{OnEval: inj.eval})
	w.Run(500)
	if b.Dropped() != 0 {
		t.Fatalf("backpressure failed: %d drops at b", b.Dropped())
	}
	// a may fill b's forwarding budget (Depth credits consumed at b's
	// East) plus b's input FIFO (Depth), plus a couple of in-flight
	// registers — but no more.
	if sent := a.FlitsRouted(); sent > uint64(2*p.Depth)+4 {
		t.Fatalf("a sent %d flits into a blocked path", sent)
	}
	// And it must actually have been throttled: 40 flits were offered.
	if sent := a.FlitsRouted(); sent >= 40 {
		t.Fatalf("a was never throttled (%d flits)", sent)
	}
}

func TestLatencyAccounting(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var northIn Flit
	r.ConnectIn(core.North, &northIn)
	w := sim.NewWorld()
	w.Add(r)
	sent := false
	w.Add(&sim.Func{OnEval: func() {
		if !sent {
			northIn = Flit{Kind: HeadTail, VC: 0, Data: HeadData(core.Tile),
				InjectCycle: r.Cycle()}
			sent = true
		} else {
			northIn = Flit{}
		}
	}})
	w.Run(20)
	if r.PacketsEjected() != 1 {
		t.Fatalf("ejected %d", r.PacketsEjected())
	}
	if l := r.AvgLatency(); l < 1 || l > 5 {
		t.Fatalf("single-hop latency %.1f cycles, implausible", l)
	}
	if (NewRouter(p, PortRoute)).AvgLatency() != 0 {
		t.Fatal("AvgLatency of idle router should be 0")
	}
}

func TestPowerIdleOffsetDominates(t *testing.T) {
	// The packet-switched router's buffers are clocked whether or not
	// data moves: idle dynamic power is high (Fig. 9's tall bars even in
	// Scenario I).
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	run := func(load bool) power.Breakdown {
		r := NewRouter(p, PortRoute)
		m := power.NewMeter(d, lib, 25)
		r.BindMeter(m)
		w := sim.NewWorld()
		w.Add(r)
		if load {
			inj := &injector{r: r}
			for i := 0; i < 200; i++ {
				inj.queue = append(inj.queue,
					MakePacket(0, HeadData(core.East), []uint16{uint16(i * 7)})...)
			}
			w.Add(&sim.Func{OnEval: inj.eval})
		}
		w.Run(2000)
		return m.Report("ps")
	}
	idle, loaded := run(false), run(true)
	if loaded.DynamicUW() <= idle.DynamicUW() {
		t.Fatal("load did not increase dynamic power")
	}
	if ratio := idle.DynamicUW() / loaded.DynamicUW(); ratio < 0.6 {
		t.Fatalf("offset ratio %.2f: PS router should be offset dominated", ratio)
	}
}

func TestNetlistMatchesTable4(t *testing.T) {
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	area := d.AreaMM2(lib)
	if area < 0.18*0.8 || area > 0.18*1.2 {
		t.Errorf("PS area %.4f mm², paper 0.1800 (±20%%)", area)
	}
	f := d.MaxFreqMHz(lib)
	if f < 507*0.8 || f > 507*1.2 {
		t.Errorf("PS fmax %.0f MHz, paper 507 (±20%%)", f)
	}
	for _, b := range []string{BlockCrossbar, BlockBuffering, BlockArbitration, BlockMisc} {
		if _, ok := d.Block(b); !ok {
			t.Errorf("missing Table 4 block %q", b)
		}
	}
	// Census consistency: the netlist's clock energy equals ClockFJ.
	if got, want := d.ClockEnergyPerCycle(lib), ClockFJ(p, lib); got != want {
		t.Fatalf("census mismatch: netlist %.1f fJ, behavioural %.1f fJ", got, want)
	}
	// Table 4 bandwidth: 16 bit × 507 MHz ≈ 8.1 Gb/s.
	if bw := LinkBandwidthGbps(p, 507); bw < 8.0 || bw > 8.2 {
		t.Errorf("link bandwidth %.2f Gb/s, want ~8.1", bw)
	}
}

func TestInjectChecksVCRange(t *testing.T) {
	r := NewRouter(DefaultParams(), PortRoute)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Inject(Flit{Kind: HeadTail, VC: 7})
}

func TestInjectRejectsInvalidAndFull(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	if r.Inject(Flit{}) {
		t.Fatal("accepted invalid flit")
	}
	n := 0
	for r.Inject(Flit{Kind: Body, VC: 0, Data: 1}) {
		n++
		if n > p.Depth {
			t.Fatalf("accepted %d flits into a depth-%d FIFO", n, p.Depth)
		}
	}
	if n != p.Depth {
		t.Fatalf("accepted %d staged flits, want %d", n, p.Depth)
	}
	if r.InjectReady(0) {
		t.Fatal("InjectReady true on full staged FIFO")
	}
	if !r.InjectReady(1) {
		t.Fatal("InjectReady false on empty VC")
	}
}

func TestNewRouterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil route")
		}
	}()
	NewRouter(DefaultParams(), nil)
}

func TestFlitWireBitsProperty(t *testing.T) {
	// Distinct flits that differ in data differ in wire bits — toggle
	// counting sees real transitions.
	f := func(a, b uint16, k1, k2 uint8) bool {
		fa := Flit{Kind: Kind(k1%4 + 1), VC: 0, Data: a}
		fb := Flit{Kind: Kind(k2%4 + 1), VC: 0, Data: b}
		if fa.Kind == fb.Kind && a == b {
			return fa.wireBits() == fb.wireBits()
		}
		return fa.wireBits() != fb.wireBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
