package packetsw

import (
	"math"

	"repro/internal/netlist"
	"repro/internal/stdcell"
)

// Block names of the packet-switched router design, matching Table 4's
// area breakdown rows.
const (
	BlockCrossbar    = "crossbar"
	BlockBuffering   = "buffering"
	BlockArbitration = "arbitration"
	BlockMisc        = "misc"
)

// flitBits returns the width of a buffered flit: the phit plus 2 sideband
// type bits.
func (p Params) flitBits() int { return p.PhitBits + 2 }

// routeBits returns the bits of one route register.
func (p Params) routeBits() int {
	b := 0
	for 1<<uint(b) < p.Ports {
		b++
	}
	return b
}

// creditBits returns the width of one credit counter.
func (p Params) creditBits() int {
	return int(math.Ceil(math.Log2(float64(p.Depth)+1))) + 1
}

// fillBits returns the width of one FIFO fill counter, matching
// netlist.ShiftFIFO.
func (p Params) fillBits() int {
	return int(math.Ceil(math.Log2(float64(p.Depth)+1))) + 1
}

// arbPtrBits returns the width of one switch-allocator pointer.
func (p Params) arbPtrBits() int {
	b := 0
	for 1<<uint(b) < p.InputVCs() {
		b++
	}
	return b
}

// ControlRegBits returns the discrete flip-flop census of the router
// (everything except the FIFO storage): output registers, route and credit
// state, FIFO fill counters, arbitration pointers and handshake misc. The
// behavioural model and the structural netlist share this census so the
// power meter's clock energy is consistent with the area roll-up.
func ControlRegBits(p Params) int {
	outRegs := p.Ports * (p.flitBits() + 2) // flit + VC id sideband
	routeRegs := p.InputVCs() * p.routeBits()
	creditRegs := p.InputVCs() * p.creditBits()
	fillCtrs := p.InputVCs() * p.fillBits()
	arb := p.Ports * p.arbPtrBits()
	vcDemux := p.InputVCs() // per-VC busy/active bit
	const misc = 30
	return outRegs + routeRegs + creditRegs + fillCtrs + arb + vcDemux + misc
}

// BufferBits returns the FIFO storage census: Ports × VCs × Depth flits.
func BufferBits(p Params) int {
	return p.InputVCs() * p.Depth * p.flitBits()
}

// Netlist returns the structural netlist of the virtual-channel router,
// organized into the same blocks as Table 4's breakdown for the
// packet-switched router.
func Netlist(p Params, lib stdcell.Lib) *netlist.Design {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	d := &netlist.Design{Name: "packet-switched router"}

	// Buffering: one shift-style FIFO per input VC.
	buf := netlist.Component{Name: BlockBuffering}
	for i := 0; i < p.InputVCs(); i++ {
		buf = buf.Add(netlist.ShiftFIFO("", p.flitBits(), p.Depth))
	}
	buf.Name = BlockBuffering
	d.AddBlock(buf)

	// Crossbar: the InputVCs:1 switch per output port plus the control
	// state the paper's breakdown folds into this row — route registers,
	// credit counters, VC input concentrators and output VC demux.
	xbar := netlist.Crossbar(lib, BlockCrossbar, p.InputVCs(), p.Ports, p.flitBits()+2)
	xbar.DFFs += p.InputVCs() * (p.routeBits() + p.creditBits() + 1)
	// Input concentrators (VCs:1 per port) and credit/demux decode.
	xbar.CombGE += netlist.MuxTreeGE(lib, p.VCs)*float64(p.Ports*p.flitBits()) +
		float64(p.InputVCs())*35
	d.AddBlock(xbar)

	// Arbitration: one round-robin switch allocator per output port.
	arb := netlist.Component{Name: BlockArbitration}
	for o := 0; o < p.Ports; o++ {
		arb = arb.Add(netlist.RoundRobinArbiter("", p.InputVCs()))
	}
	arb.Name = BlockArbitration
	d.AddBlock(arb)

	// Misc: handshake glue and the tile-interface logic.
	d.AddBlock(netlist.Component{Name: BlockMisc, DFFs: 30, CombGE: 200})

	// Critical path: route compute + VC concentrator, the switch
	// allocation (priority arbitration over 20 requesters), the switch
	// traversal and FIFO access — roughly twice the circuit-switched
	// router's depth, matching the 507-vs-1075 MHz ratio of Table 4.
	d.CriticalPathFO4 = 2.7 + // route / VC mux
		2.5*math.Log2(float64(p.InputVCs())) + // switch allocation
		netlist.MuxTreeDepthFO4(p.InputVCs()) + // switch traversal
		4.0 + // FIFO access
		4.3 // wiring

	return d
}

// LinkBandwidthGbps returns the raw bandwidth of one link direction at the
// given clock (Table 4: 16 bit × 507 MHz = 8.1 Gb/s).
func LinkBandwidthGbps(p Params, freqMHz float64) float64 {
	return float64(p.PhitBits) * freqMHz * 1e6 / 1e9
}

// ClockFJ returns the per-cycle clock energy of the router's sequential
// cells — the whole census, every cycle: the paper's packet-switched
// baseline has no clock gating.
func ClockFJ(p Params, lib stdcell.Lib) float64 {
	return float64(ControlRegBits(p))*lib.EClkDFF + float64(BufferBits(p))*lib.EClkBufBit
}
