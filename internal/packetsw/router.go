package packetsw

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
)

// Router is the cycle-accurate virtual-channel wormhole router. Unlike the
// circuit-switched router it buffers flits per input VC, computes a route
// per packet and arbitrates for the switch per flit, time multiplexing
// concurrent streams onto shared output ports.
type Router struct {
	// P are the design parameters.
	P Params

	// Out holds the registered output flit per port; a downstream router
	// or the tile sink reads it. An Invalid kind means no flit this cycle.
	Out []Flit
	// CreditOut holds the registered credit-return pulses towards the
	// upstream router on each port, one per VC: true for one cycle per
	// flit removed from the corresponding input FIFO.
	CreditOut [][]bool

	// Route decides the output port of a packet from its head-flit data.
	Route RouteFunc

	inSrc    []*Flit   // upstream output registers, per port
	creditIn [][]*bool // downstream credit pulses, per output port per VC

	fifos     [][][]Flit // [port][vc] input buffer
	routed    [][]bool   // [port][vc] packet in progress
	routeTo   [][]core.Port
	credits   [][]int // [outPort][vc] downstream buffer slots available
	rrPtr     []int   // per output port, round-robin position over input VCs
	lastGrant []int   // per output port, last granted input VC (-1 none)
	// outOwner locks an (output port, VC) pair to one input VC for the
	// duration of a packet — the wormhole discipline that keeps flits of
	// different packets from interleaving within one virtual channel.
	outOwner [][]int

	// next state
	nextOut    []Flit
	pops       []popOp
	pushes     []pushOp
	injStaged  []Flit
	nextCredit [][]bool
	poppedScr  []bool // scratch: input VCs popped this cycle

	cycle uint64

	// statistics
	flitsRouted      uint64
	packetsEjected   uint64
	latencySum       uint64
	dropped          uint64
	creditViolations uint64
	ejected          []Flit

	// power
	meter       *power.Meter
	lastWritten [][]uint32 // last value written per FIFO, for write toggles
	lastRead    [][]uint32 // last value read per FIFO, for read-path toggles

	// activity tracking (sim.Quiescer): buffered counts flits across all
	// input FIFOs and outActive records whether the last commit left any
	// output or credit register driven, so the idle poll only has to scan
	// the external input and credit wires.
	buffered  int
	outActive bool
	wake      func()
}

type popOp struct{ port, vc int }
type pushOp struct {
	port int
	f    Flit
}

// NewRouter returns an idle router using the given routing function.
func NewRouter(p Params, route RouteFunc) *Router {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if route == nil {
		panic("packetsw: nil route function")
	}
	r := &Router{P: p, Route: route}
	r.Out = make([]Flit, p.Ports)
	r.nextOut = make([]Flit, p.Ports)
	r.inSrc = make([]*Flit, p.Ports)
	r.rrPtr = make([]int, p.Ports)
	r.lastGrant = make([]int, p.Ports)
	for o := range r.lastGrant {
		r.lastGrant[o] = -1
	}
	dim2 := func() [][]bool {
		m := make([][]bool, p.Ports)
		for i := range m {
			m[i] = make([]bool, p.VCs)
		}
		return m
	}
	r.CreditOut = dim2()
	r.nextCredit = dim2()
	r.routed = dim2()
	r.outOwner = make([][]int, p.Ports)
	for o := range r.outOwner {
		r.outOwner[o] = make([]int, p.VCs)
		for v := range r.outOwner[o] {
			r.outOwner[o][v] = -1
		}
	}
	r.creditIn = make([][]*bool, p.Ports)
	r.fifos = make([][][]Flit, p.Ports)
	r.routeTo = make([][]core.Port, p.Ports)
	r.credits = make([][]int, p.Ports)
	r.lastWritten = make([][]uint32, p.Ports)
	r.lastRead = make([][]uint32, p.Ports)
	for i := 0; i < p.Ports; i++ {
		r.creditIn[i] = make([]*bool, p.VCs)
		r.fifos[i] = make([][]Flit, p.VCs)
		r.routeTo[i] = make([]core.Port, p.VCs)
		r.credits[i] = make([]int, p.VCs)
		r.lastWritten[i] = make([]uint32, p.VCs)
		r.lastRead[i] = make([]uint32, p.VCs)
		for v := 0; v < p.VCs; v++ {
			r.credits[i][v] = p.Depth
		}
	}
	return r
}

// ConnectIn wires input port p to read flits from the upstream output
// register src.
func (r *Router) ConnectIn(p core.Port, src *Flit) { r.inSrc[p] = src }

// ConnectCreditIn wires the credit pulse of output port p, VC v to the
// downstream router's CreditOut register.
func (r *Router) ConnectCreditIn(p core.Port, vc int, src *bool) {
	r.creditIn[p][vc] = src
}

// BindMeter attaches a power meter. The packet-switched router has no
// clock gating: every register and buffer bit is clocked every cycle, the
// source of its large dynamic offset.
func (r *Router) BindMeter(m *power.Meter) { r.meter = m }

// Inject stages a flit into the tile-port input FIFO of the flit's VC,
// returning false if the FIFO has no room (the tile must retry). Call
// during Eval.
func (r *Router) Inject(f Flit) bool {
	if !f.Valid() {
		return false
	}
	if f.VC < 0 || f.VC >= r.P.VCs {
		panic(fmt.Sprintf("packetsw: inject on VC %d", f.VC))
	}
	staged := 0
	for _, s := range r.injStaged {
		if s.VC == f.VC {
			staged++
		}
	}
	if len(r.fifos[core.Tile][f.VC])+staged >= r.P.Depth {
		return false
	}
	f.InjectCycle = r.cycle
	r.injStaged = append(r.injStaged, f)
	if r.wake != nil {
		r.wake()
	}
	return true
}

// SetWake implements sim.Waker: an injected flit re-activates a skipped
// router in the cycle it is staged, so it enters the tile FIFO at the same
// clock edge as under the naive kernel.
func (r *Router) SetWake(fn func()) { r.wake = fn }

// Quiescent implements sim.Quiescer: the router is skippable only when its
// FIFOs and injection stage are empty, its output and credit registers are
// idle, and no upstream flit or downstream credit pulse is arriving. A
// wormhole route held open across an idle gap (routed/outOwner state)
// needs no per-cycle work, so it does not count as activity.
func (r *Router) Quiescent() bool {
	if r.buffered != 0 || len(r.injStaged) != 0 || r.outActive {
		return false
	}
	for port := 0; port < r.P.Ports; port++ {
		if r.inSrc[port] != nil && r.inSrc[port].Valid() {
			return false
		}
		for v := 0; v < r.P.VCs; v++ {
			if r.creditIn[port][v] != nil && *r.creditIn[port][v] {
				return false
			}
		}
	}
	return true
}

// IdleTick implements sim.IdleTicker: a skipped cycle still advances the
// router's cycle counter (flit timestamps reference it) and charges the
// ungated clock network — the packet-switched router has no clock gating,
// the source of its large dynamic power offset.
func (r *Router) IdleTick() { r.IdleWindow(1) }

// IdleWindow implements sim.IdleWindower: n idle cycles advance the cycle
// counter and charge n ungated clock ticks in one O(1) meter extension,
// so the event kernel can fast-forward idle windows across this router.
func (r *Router) IdleWindow(n uint64) {
	if r.meter != nil {
		r.meter.TickN(n)
	}
	r.cycle += n
}

// EjectedPending returns the number of tile-port flits waiting for Drain —
// the activity an injection/ejection pump must account for in its own
// quiescence decision.
func (r *Router) EjectedPending() int { return len(r.ejected) }

// InputBacklog returns the current occupancy of VC v's input FIFO at
// port p. A feeder deciding whether to present a flit must add any
// flit it presented on the register in the previous cycle (that flit
// is pushed at this cycle's Commit, so it is not yet counted here) and
// compare against Params.Depth — the accounting hardware would get
// from the credit path.
func (r *Router) InputBacklog(p core.Port, vc int) int {
	return len(r.fifos[p][vc])
}

// InjectReady reports whether VC v of the tile port can accept a flit.
func (r *Router) InjectReady(vc int) bool {
	staged := 0
	for _, s := range r.injStaged {
		if s.VC == vc {
			staged++
		}
	}
	return len(r.fifos[core.Tile][vc])+staged < r.P.Depth
}

// Drain returns and clears the flits ejected at the tile port since the
// last call.
func (r *Router) Drain() []Flit {
	e := r.ejected
	r.ejected = nil
	return e
}

// FlitsRouted returns the number of flits that traversed the switch.
func (r *Router) FlitsRouted() uint64 { return r.flitsRouted }

// PacketsEjected returns the number of packets delivered at the tile port.
func (r *Router) PacketsEjected() uint64 { return r.packetsEjected }

// AvgLatency returns the mean head-to-eject latency in cycles of ejected
// packets, or 0 if none were delivered.
func (r *Router) AvgLatency() float64 {
	if r.packetsEjected == 0 {
		return 0
	}
	return float64(r.latencySum) / float64(r.packetsEjected)
}

// Dropped returns flits lost to input-FIFO overflow — zero while the
// credit protocol is intact.
func (r *Router) Dropped() uint64 { return r.dropped }

// CreditViolations returns credit returns beyond the FIFO depth — zero
// while the protocol is intact.
func (r *Router) CreditViolations() uint64 { return r.creditViolations }

// Cycle returns the router's elapsed clock cycles.
func (r *Router) Cycle() uint64 { return r.cycle }

// headRoute returns the output port of the packet at the head of FIFO
// (p,v), and whether one exists.
func (r *Router) headRoute(p, v int) (core.Port, bool) {
	q := r.fifos[p][v]
	if len(q) == 0 {
		return 0, false
	}
	if q[0].Kind.Opens() {
		return r.Route(q[0].Data), true
	}
	if r.routed[p][v] {
		return r.routeTo[p][v], true
	}
	// A body flit without an open packet is a protocol error.
	panic(fmt.Sprintf("packetsw: body flit at head of idle VC %d.%d", p, v))
}

// Eval implements sim.Clocked: switch allocation, credit bookkeeping and
// input sampling.
func (r *Router) Eval() {
	p := r.P
	r.pops = r.pops[:0]
	r.pushes = r.pushes[:0]

	// Sample incoming flits from upstream output registers.
	for port := 0; port < p.Ports; port++ {
		if r.inSrc[port] == nil {
			continue
		}
		if f := *r.inSrc[port]; f.Valid() {
			r.pushes = append(r.pushes, pushOp{port: port, f: f})
		}
	}

	// Switch allocation: per output port, round-robin over input VCs.
	if r.poppedScr == nil {
		r.poppedScr = make([]bool, p.InputVCs())
	}
	popped := r.poppedScr
	for i := range popped {
		popped[i] = false
	}
	for out := 0; out < p.Ports; out++ {
		r.nextOut[out] = Flit{}
		n := p.InputVCs()
		granted := -1
		for i := 1; i <= n; i++ {
			idx := (r.rrPtr[out] + i) % n
			port, vc := idx/p.VCs, idx%p.VCs
			if port == out || popped[idx] {
				continue
			}
			dst, ok := r.headRoute(port, vc)
			if !ok || int(dst) != out {
				continue
			}
			// Wormhole discipline: the output VC is owned by one packet
			// until its tail passes; new packets may only claim a free
			// output VC.
			owner := r.outOwner[out][vc]
			head := r.fifos[port][vc][0]
			if head.Kind.Opens() {
				if owner != -1 && owner != idx {
					continue
				}
			} else if owner != idx {
				continue
			}
			// Credit check: the tile output is an always-ready sink (the
			// 16-bit tile interface consumes a flit per cycle), and an
			// output with no credit wire attached is a testbench sink.
			if core.Port(out) != core.Tile && r.creditIn[out][vc] != nil &&
				r.credits[out][vc] <= 0 {
				continue
			}
			granted = idx
			break
		}
		if granted < 0 {
			continue
		}
		port, vc := granted/p.VCs, granted%p.VCs
		popped[granted] = true
		r.nextOut[out] = r.fifos[port][vc][0]
		r.pops = append(r.pops, popOp{port: port, vc: vc})
		r.rrPtr[out] = granted
		if r.meter != nil && granted != r.lastGrant[out] {
			// Arbitration state and switch select lines switch — the
			// extra control activity of time multiplexing the paper
			// observes when streams collide at an output port.
			r.meter.AddToggles(power.ToggleGate, 8)
			r.meter.AddToggles(power.ToggleReg, 2)
		}
		r.lastGrant[out] = granted
	}
}

// Commit implements sim.Clocked.
func (r *Router) Commit() {
	p := r.P

	if r.meter != nil {
		r.accountDatapath()
	}

	// Retire granted flits: pop FIFOs, update routes, emit credits.
	for o := range r.nextCredit {
		for v := range r.nextCredit[o] {
			r.nextCredit[o][v] = false
		}
	}
	for _, op := range r.pops {
		q := r.fifos[op.port][op.vc]
		f := q[0]
		r.fifos[op.port][op.vc] = q[1:]
		r.buffered--
		r.nextCredit[op.port][op.vc] = true
		r.flitsRouted++
		if f.Kind.Opens() {
			r.routed[op.port][op.vc] = true
			r.routeTo[op.port][op.vc] = r.Route(f.Data)
		}
		if f.Kind.Closes() {
			r.routed[op.port][op.vc] = false
		}
		out := int(r.routeTo[op.port][op.vc])
		if f.Kind.Opens() {
			out = int(r.Route(f.Data))
		}
		// Wormhole ownership of the output VC for this packet.
		switch {
		case f.Kind == Head:
			r.outOwner[out][f.VC] = op.port*p.VCs + op.vc
		case f.Kind.Closes():
			r.outOwner[out][f.VC] = -1
		}
		// Output credit consumption (not for the tile or testbench sinks).
		if core.Port(out) != core.Tile && r.creditIn[out][f.VC] != nil {
			r.credits[out][f.VC]--
		}
	}

	// Credit returns from downstream.
	for o := 0; o < p.Ports; o++ {
		for v := 0; v < p.VCs; v++ {
			if r.creditIn[o][v] != nil && *r.creditIn[o][v] {
				if r.credits[o][v] >= p.Depth {
					r.creditViolations++
				} else {
					r.credits[o][v]++
				}
				if r.meter != nil {
					r.meter.AddToggles(power.ToggleReg, 1)
				}
			}
		}
	}

	// Incoming flits enter the input FIFOs.
	for _, op := range r.pushes {
		r.pushFIFO(op.port, op.f)
	}
	for _, f := range r.injStaged {
		r.pushFIFO(int(core.Tile), f)
	}
	r.injStaged = r.injStaged[:0]

	// Latch outputs; deliver the tile ejection.
	outActive := false
	for o := 0; o < p.Ports; o++ {
		r.Out[o] = r.nextOut[o]
		if r.Out[o].Valid() {
			outActive = true
		}
		for v := 0; v < p.VCs; v++ {
			r.CreditOut[o][v] = r.nextCredit[o][v]
			if r.nextCredit[o][v] {
				outActive = true
			}
		}
	}
	r.outActive = outActive
	if f := r.Out[core.Tile]; f.Valid() {
		r.ejected = append(r.ejected, f)
		if f.Kind.Closes() {
			r.packetsEjected++
			r.latencySum += r.cycle - f.InjectCycle
		}
	}

	if r.meter != nil {
		r.meter.Tick()
	}
	r.cycle++
}

func (r *Router) pushFIFO(port int, f Flit) {
	if len(r.fifos[port][f.VC]) >= r.P.Depth {
		r.dropped++
		return
	}
	if r.meter != nil {
		w := f.wireBits()
		r.meter.AddToggles(power.ToggleBufBit,
			bitvec.Hamming32(w, r.lastWritten[port][f.VC]))
		r.lastWritten[port][f.VC] = w
	}
	r.fifos[port][f.VC] = append(r.fifos[port][f.VC], f)
	r.buffered++
}

var (
	_ sim.Clocked      = (*Router)(nil)
	_ sim.Quiescer     = (*Router)(nil)
	_ sim.IdleTicker   = (*Router)(nil)
	_ sim.IdleWindower = (*Router)(nil)
	_ sim.Waker        = (*Router)(nil)
)

// accountDatapath records output register, link, switch-traversal and FIFO
// read-path toggles for this cycle's flit movements.
func (r *Router) accountDatapath() {
	for o := 0; o < r.P.Ports; o++ {
		d := bitvec.Hamming32(r.Out[o].wireBits(), r.nextOut[o].wireBits())
		if d == 0 {
			continue
		}
		r.meter.AddToggles(power.ToggleReg, d)
		if core.Port(o) == core.Tile {
			r.meter.AddToggles(power.ToggleGate, d)
		} else {
			r.meter.AddToggles(power.ToggleLink, d)
		}
		// Traversal of the switch multiplexer tree.
		r.meter.AddToggles(power.ToggleGate, 2*d)
	}
	for _, op := range r.pops {
		w := r.fifos[op.port][op.vc][0].wireBits()
		r.meter.AddToggles(power.ToggleGate,
			bitvec.Hamming32(w, r.lastRead[op.port][op.vc]))
		r.lastRead[op.port][op.vc] = w
	}
}
