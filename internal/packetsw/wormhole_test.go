package packetsw

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/sim"
)

// drive feeds a fixed flit sequence into a port, one flit per cycle.
func drive(w *sim.World, slot *Flit, seq []Flit) {
	i := 0
	w.Add(&sim.Func{OnEval: func() {
		if i < len(seq) {
			*slot = seq[i]
			i++
		} else {
			*slot = Flit{}
		}
	}})
}

func TestWormholeOutputVCLockedUntilTail(t *testing.T) {
	// Two multi-flit packets on the SAME VC from different inputs to the
	// same output: their flits must not interleave — the output VC is
	// owned until the tail passes (wormhole discipline).
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var north, west Flit
	r.ConnectIn(core.North, &north)
	r.ConnectIn(core.West, &west)
	w := sim.NewWorld()
	w.Add(r)
	pa := MakePacket(0, HeadData(core.East), []uint16{0xA1, 0xA2, 0xA3})
	pb := MakePacket(0, HeadData(core.East), []uint16{0xB1, 0xB2, 0xB3})
	drive(w, &north, pa)
	drive(w, &west, pb)
	var seen []Flit
	w.Add(&sim.Func{OnEval: func() {
		if f := r.Out[core.East]; f.Valid() {
			seen = append(seen, f)
		}
	}})
	w.Run(60)
	if len(seen) != 8 {
		t.Fatalf("East emitted %d flits, want 8", len(seen))
	}
	// Group check: once a head passes, all its packet's flits precede the
	// other packet's head.
	firstOwner := seen[0].Data // 0xA1's head data is the route; check bodies
	_ = firstOwner
	var current uint16
	for _, f := range seen {
		switch f.Kind {
		case Head:
			current = 0
		case Body, Tail:
			if current == 0 {
				current = f.Data & 0xF0
			} else if f.Data&0xF0 != current {
				t.Fatalf("packets interleaved on one VC: %v", seen)
			}
		}
	}
}

func TestDifferentVCsMayInterleaveBetweenPackets(t *testing.T) {
	// Packets on different VCs to the same output interleave flit by flit
	// — that is the virtual-channel router's entire point, and the source
	// of the collision power the paper discusses.
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var north, west Flit
	r.ConnectIn(core.North, &north)
	r.ConnectIn(core.West, &west)
	w := sim.NewWorld()
	w.Add(r)
	drive(w, &north, MakePacket(0, HeadData(core.East), []uint16{1, 2, 3, 4, 5}))
	drive(w, &west, MakePacket(1, HeadData(core.East), []uint16{6, 7, 8, 9, 10}))
	var vcs []int
	w.Add(&sim.Func{OnEval: func() {
		if f := r.Out[core.East]; f.Valid() {
			vcs = append(vcs, f.VC)
		}
	}})
	w.Run(60)
	switches := 0
	for i := 1; i < len(vcs); i++ {
		if vcs[i] != vcs[i-1] {
			switches++
		}
	}
	if switches < 4 {
		t.Fatalf("VCs barely interleaved (%d switches in %v)", switches, vcs)
	}
}

func TestSaturatedInputDropsAreCounted(t *testing.T) {
	// An open-loop source faster than the drain must overflow the input
	// FIFO and be counted — drops never pass silently.
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var north Flit
	r.ConnectIn(core.North, &north)
	w := sim.NewWorld()
	w.Add(r)
	// Two flits offered per cycle is impossible; instead saturate one VC
	// while its output is blocked by a never-pulsing credit wire.
	never := false
	for v := 0; v < p.VCs; v++ {
		r.ConnectCreditIn(core.East, v, &never)
	}
	w.Add(&sim.Func{OnEval: func() {
		north = Flit{Kind: HeadTail, VC: 0, Data: HeadData(core.East)}
	}})
	w.Run(100)
	if r.Dropped() == 0 {
		t.Fatal("overflow not detected")
	}
	// Credits stopped the switch after Depth flits.
	if r.FlitsRouted() > uint64(p.Depth) {
		t.Fatalf("%d flits crossed a credit-blocked output", r.FlitsRouted())
	}
}

func TestRoundRobinFairnessUnderSaturation(t *testing.T) {
	// Three saturating VCs into one output: round-robin must serve them
	// within a few percent of each other.
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var north, west, south Flit
	r.ConnectIn(core.North, &north)
	r.ConnectIn(core.West, &west)
	r.ConnectIn(core.South, &south)
	w := sim.NewWorld()
	w.Add(r)
	w.Add(&sim.Func{OnEval: func() {
		north = Flit{Kind: HeadTail, VC: 0, Data: HeadData(core.East)}
		west = Flit{Kind: HeadTail, VC: 1, Data: HeadData(core.East)}
		south = Flit{Kind: HeadTail, VC: 2, Data: HeadData(core.East)}
	}})
	counts := map[int]int{}
	w.Add(&sim.Func{OnEval: func() {
		if f := r.Out[core.East]; f.Valid() {
			counts[f.VC]++
		}
	}})
	w.Run(600)
	total := counts[0] + counts[1] + counts[2]
	if total < 500 {
		t.Fatalf("output underutilized: %d flits in 600 cycles", total)
	}
	for vc, c := range counts {
		share := float64(c) / float64(total)
		if share < 0.30 || share > 0.37 {
			t.Errorf("VC %d share %.3f, want ~1/3", vc, share)
		}
	}
}

func TestBackgroundNoiseDoesNotCorruptPayloads(t *testing.T) {
	// Property: a measured packet stream delivered through a router
	// carrying random cross traffic arrives bit-exact and in order.
	rng := bitvec.NewXorShift64(4242)
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var north, west Flit
	r.ConnectIn(core.North, &north)
	r.ConnectIn(core.West, &west)
	w := sim.NewWorld()
	w.Add(r)
	// Measured stream: North VC0 -> Tile, 3-word packets.
	var queue []Flit
	for i := 0; i < 30; i++ {
		base := uint16(i * 16)
		queue = append(queue, MakePacket(0, HeadData(core.Tile),
			[]uint16{base, base + 1, base + 2})...)
	}
	// One flit every other cycle: together with the noise share the tile
	// output stays below saturation, as credit flow control would ensure
	// in a closed-loop network (the drive here is open loop).
	qi, cyc := 0, 0
	w.Add(&sim.Func{OnEval: func() {
		north = Flit{}
		if qi < len(queue) && cyc%2 == 0 {
			north = queue[qi]
			qi++
		}
		cyc++
	}})
	// Noise: random single-flit packets West VC1..3 -> random outputs.
	w.Add(&sim.Func{OnEval: func() {
		west = Flit{}
		if rng.Bool(0.7) {
			dst := core.Port(rng.Intn(4) + 1) // not Tile... East..West + North
			if dst == core.West {
				dst = core.Tile
			}
			west = Flit{Kind: HeadTail, VC: rng.Intn(3) + 1,
				Data: HeadData(dst)}
		}
	}})
	var payload []uint16
	w.Add(&sim.Func{OnEval: func() {
		for _, f := range r.Drain() {
			if f.VC == 0 && (f.Kind == Body || f.Kind == Tail) {
				payload = append(payload, f.Data)
			}
		}
	}})
	w.Run(800)
	if len(payload) != 90 {
		t.Fatalf("delivered %d payload words, want 90", len(payload))
	}
	for i, d := range payload {
		want := uint16(i/3*16 + i%3)
		if d != want {
			t.Fatalf("payload[%d] = %#x, want %#x", i, d, want)
		}
	}
}
