package packetsw

import (
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/stdcell"
)

// BenchmarkRouterStepSaturated measures the Eval/Commit rate with three
// saturating virtual channels contending for one output.
func BenchmarkRouterStepSaturated(b *testing.B) {
	p := DefaultParams()
	r := NewRouter(p, PortRoute)
	var north, west, south Flit
	r.ConnectIn(core.North, &north)
	r.ConnectIn(core.West, &west)
	r.ConnectIn(core.South, &south)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		north = Flit{Kind: HeadTail, VC: 0, Data: HeadData(core.East)}
		west = Flit{Kind: HeadTail, VC: 1, Data: HeadData(core.East)}
		south = Flit{Kind: HeadTail, VC: 2, Data: HeadData(core.East)}
		r.Eval()
		r.Commit()
	}
}

// BenchmarkRouterStepMetered measures the same with power accounting.
func BenchmarkRouterStepMetered(b *testing.B) {
	p := DefaultParams()
	lib := stdcell.Default013()
	r := NewRouter(p, PortRoute)
	r.BindMeter(power.NewMeter(Netlist(p, lib), lib, 25))
	var north Flit
	r.ConnectIn(core.North, &north)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		north = Flit{Kind: HeadTail, VC: 0, Data: HeadData(core.East)}
		r.Eval()
		r.Commit()
	}
}

// BenchmarkNetlist measures building the structural design (area model).
func BenchmarkNetlist(b *testing.B) {
	p := DefaultParams()
	lib := stdcell.Default013()
	for i := 0; i < b.N; i++ {
		d := Netlist(p, lib)
		if d.AreaMM2(lib) <= 0 {
			b.Fatal("empty design")
		}
	}
}
