// Package packetsw implements the paper's comparison baseline: a
// packet-switched virtual-channel wormhole router after Kavaldjiev et al.
// ("A virtual channel router for on-chip networks", IEEE SOCC 2004), the
// router the circuit-switched proposal is evaluated against in Table 4 and
// Figures 9–10.
//
// The router has five bidirectional ports of 16-bit phits and four virtual
// channels per input port, each with its own flit FIFO. Routing is
// computed per packet at the head flit; the switch is allocated per flit by
// a round-robin arbiter per output port; flow control between routers is
// credit based. In contrast to the circuit-switched router, concurrent
// streams to the same output port are time multiplexed — the source of the
// extra control switching the paper observes in its Figure 10 discussion.
//
// The model is cycle accurate and bit accurate, and reports its activity
// (buffer writes, switch traversals, output register and link toggles,
// arbitration grant changes) to an optional power.Meter.
package packetsw

import (
	"fmt"

	"repro/internal/core"
)

// Params are the design parameters of the virtual-channel router.
type Params struct {
	// Ports is the number of bidirectional ports (5, as in the paper).
	Ports int
	// VCs is the number of virtual channels per input port (4, chosen by
	// the paper to make the comparison with 4 lanes fair).
	VCs int
	// Depth is the per-VC FIFO depth in flits.
	Depth int
	// PhitBits is the link width in bits (16, as in the paper).
	PhitBits int
}

// DefaultParams returns the paper's configuration: 5 ports, 16-bit links,
// 4 virtual channels with 8-flit FIFOs.
func DefaultParams() Params {
	return Params{Ports: 5, VCs: 4, Depth: 8, PhitBits: 16}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Ports < 2:
		return fmt.Errorf("packetsw: need at least 2 ports, have %d", p.Ports)
	case p.VCs < 1:
		return fmt.Errorf("packetsw: need at least 1 VC, have %d", p.VCs)
	case p.Depth < 1:
		return fmt.Errorf("packetsw: need FIFO depth >= 1, have %d", p.Depth)
	case p.PhitBits < 4 || p.PhitBits > 32:
		return fmt.Errorf("packetsw: phit width %d out of range", p.PhitBits)
	}
	return nil
}

// InputVCs returns the total number of input virtual channels (20 in the
// paper), the switch's requester count.
func (p Params) InputVCs() int { return p.Ports * p.VCs }

// Kind classifies a flit within its packet.
type Kind uint8

// Flit kinds. A single-flit packet is head and tail at once.
const (
	// Invalid marks an empty flit slot (no flit on the wire this cycle).
	Invalid Kind = iota
	// Head opens a packet and carries the routing information.
	Head
	// Body carries payload.
	Body
	// Tail closes a packet.
	Tail
	// HeadTail is a single-flit packet.
	HeadTail
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Invalid:
		return "invalid"
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Opens reports whether the flit starts a packet.
func (k Kind) Opens() bool { return k == Head || k == HeadTail }

// Closes reports whether the flit ends a packet.
func (k Kind) Closes() bool { return k == Tail || k == HeadTail }

// Flit is one link transfer: the 16-bit phit plus the sideband type and VC
// identifier.
type Flit struct {
	// Kind is the flit type (2 sideband bits on the wire).
	Kind Kind
	// VC is the virtual channel the flit travels on.
	VC int
	// Data is the phit. For head flits it carries the route field.
	Data uint16

	// InjectCycle is a measurement-only annotation (not hardware) used by
	// the benchmarks to compute packet latency.
	InjectCycle uint64
}

// Valid reports whether the slot carries a flit.
func (f Flit) Valid() bool { return f.Kind != Invalid }

// wireBits returns the bits of the flit visible on a link, for toggle
// counting: the phit plus 2 type bits and the VC id.
func (f Flit) wireBits() uint32 {
	return uint32(f.Data) | uint32(f.Kind&3)<<16 | uint32(f.VC&3)<<18
}

// RouteFunc computes the output port for a packet from its head-flit data.
// Single-router benchmarks decode a port index; mesh routers use XY
// routing closures.
type RouteFunc func(headData uint16) core.Port

// PortRoute decodes the paper's single-router benchmark format: the
// destination output port in the low 3 bits of the head flit.
func PortRoute(headData uint16) core.Port { return core.Port(headData & 7) }

// HeadData builds a head-flit payload for PortRoute.
func HeadData(dst core.Port) uint16 { return uint16(dst) & 7 }

// MakePacket builds a packet of flits on the given VC: a head flit carrying
// route data followed by the payload. A packet with no payload is a single
// HeadTail flit.
func MakePacket(vc int, route uint16, payload []uint16) []Flit {
	if len(payload) == 0 {
		return []Flit{{Kind: HeadTail, VC: vc, Data: route}}
	}
	fl := make([]Flit, 0, len(payload)+1)
	fl = append(fl, Flit{Kind: Head, VC: vc, Data: route})
	for i, d := range payload {
		k := Body
		if i == len(payload)-1 {
			k = Tail
		}
		fl = append(fl, Flit{Kind: k, VC: vc, Data: d})
	}
	return fl
}
