package apps

import (
	"fmt"

	"repro/internal/kpn"
)

// UMTSParams are the W-CDMA parameters of the paper's rake receiver
// (Fig. 3 / Table 2).
type UMTSParams struct {
	// ChipRateMcps is the W-CDMA chip rate in Mchip/s (3.84).
	ChipRateMcps float64
	// Oversampling is the front-end oversampling factor (2: Table 2's
	// 61.44 Mbit/s per finger = 3.84 M × 2 × 8 bits).
	Oversampling int
	// ChipBits is the quantization per chip or coefficient ("every chip
	// or coefficient is represented by 8 bits").
	ChipBits int
	// Fingers is the number of rake fingers (N).
	Fingers int
	// SF is the spreading factor.
	SF int
	// BitsPerSymbol is the downlink modulation (2 for QPSK, 4 for QAM-16).
	BitsPerSymbol int
}

// DefaultUMTS returns the paper's example configuration: 4 rake fingers at
// spreading factor 4 with QPSK (~320 Mbit/s total).
func DefaultUMTS() UMTSParams {
	return UMTSParams{
		ChipRateMcps: 3.84, Oversampling: 2, ChipBits: 8,
		Fingers: 4, SF: 4, BitsPerSymbol: 2,
	}
}

// Validate checks the parameters.
func (u UMTSParams) Validate() error {
	switch {
	case u.ChipRateMcps <= 0:
		return fmt.Errorf("apps: non-positive chip rate")
	case u.Oversampling < 1:
		return fmt.Errorf("apps: oversampling < 1")
	case u.ChipBits < 1:
		return fmt.Errorf("apps: chip quantization < 1 bit")
	case u.Fingers < 1:
		return fmt.Errorf("apps: need at least one rake finger")
	case u.SF < 1:
		return fmt.Errorf("apps: spreading factor < 1")
	case u.BitsPerSymbol < 1:
		return fmt.Errorf("apps: bits per symbol < 1")
	}
	return nil
}

// ChipsPerFingerMbps returns the oversampled chip stream into one finger
// (Table 2 edge 2: 61.44 Mbit/s).
func (u UMTSParams) ChipsPerFingerMbps() float64 {
	return u.ChipRateMcps * float64(u.Oversampling) * float64(u.ChipBits)
}

// ScramblingMbps returns the scrambling-code stream (Table 2 edge 3:
// 7.68 Mbit/s — complex ±1 chips, 2 bits per chip).
func (u UMTSParams) ScramblingMbps() float64 {
	return u.ChipRateMcps * 2
}

// MRCCoefficientMbps returns the maximal-ratio-combining coefficient
// stream per finger (Table 2 edge 4: 61.44/SF Mbit/s).
func (u UMTSParams) MRCCoefficientMbps() float64 {
	return u.ChipsPerFingerMbps() / float64(u.SF)
}

// ReceivedBitsMbps returns the demapped bit stream: symbol rate
// (ChipRate/SF) × bits per symbol (Table 2 edge 5: 7.68/SF for QPSK,
// 15.36/SF for QAM-16).
func (u UMTSParams) ReceivedBitsMbps() float64 {
	return u.ChipRateMcps / float64(u.SF) * float64(u.BitsPerSymbol)
}

// TotalMbps returns the aggregate bandwidth of the receiver's streams: the
// paper's "total communication bandwidth for processing 4 RAKE fingers
// with a spreading factor of 4 is ~320 Mbit/s".
func (u UMTSParams) TotalMbps() float64 {
	return float64(u.Fingers)*u.ChipsPerFingerMbps() +
		u.ScramblingMbps() +
		float64(u.Fingers)*u.MRCCoefficientMbps() +
		u.ReceivedBitsMbps()
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	// Stream names the edge.
	Stream string
	// Edge is the paper's edge number.
	Edge int
	// Mbps is the computed bandwidth.
	Mbps float64
	// PaperMbps is the paper's printed value (for SF=4 rows the paper
	// prints the formula; we evaluate it).
	PaperMbps float64
}

// Table2 computes the paper's Table 2 from the W-CDMA parameters.
func Table2(u UMTSParams) []Table2Row {
	return []Table2Row{
		{Stream: "Chips (per finger)", Edge: 2, Mbps: u.ChipsPerFingerMbps(), PaperMbps: 61.44},
		{Stream: "Scrambling code", Edge: 3, Mbps: u.ScramblingMbps(), PaperMbps: 7.68},
		{Stream: "MRC coefficient (per finger)", Edge: 4, Mbps: u.MRCCoefficientMbps(), PaperMbps: 61.44 / float64(u.SF)},
		{Stream: "Received bits", Edge: 5, Mbps: u.ReceivedBitsMbps(), PaperMbps: 3.84 * float64(u.BitsPerSymbol) / float64(u.SF)},
	}
}

// UMTSGraph returns the Fig. 3 process network: pulse shaping feeding N
// de-scrambling/de-spreading fingers, the scrambling-code generator, the
// channel estimation producing MRC coefficients, maximal ratio combining
// and de-mapping. Communication is streaming (sample by sample), the
// paper's second traffic style.
func UMTSGraph(u UMTSParams) *kpn.Graph {
	if err := u.Validate(); err != nil {
		panic(err)
	}
	g := &kpn.Graph{
		Name: "UMTS W-CDMA rake receiver",
		Processes: []kpn.Process{
			{Name: "PulseShaping", Kind: "ASIC"},
			{Name: "Scrambling", Kind: "ASIC"},
			{Name: "ChannelEst", Kind: "DSP"},
			{Name: "MRC", Kind: "DSRH"},
			{Name: "Demapping", Kind: "DSP"},
			{Name: "Control", Kind: "GPP"},
		},
	}
	for f := 1; f <= u.Fingers; f++ {
		name := fmt.Sprintf("Finger%d", f)
		g.Processes = append(g.Processes, kpn.Process{Name: name, Kind: "DSRH"})
		g.Channels = append(g.Channels,
			kpn.Channel{
				Name: fmt.Sprintf("chips-%d", f), From: "PulseShaping", To: name,
				BandwidthMbps: u.ChipsPerFingerMbps(), Class: kpn.GT,
			},
			kpn.Channel{
				Name: fmt.Sprintf("mrc-%d", f), From: "ChannelEst", To: name,
				BandwidthMbps: u.MRCCoefficientMbps(), Class: kpn.GT,
			},
			kpn.Channel{
				Name: fmt.Sprintf("comb-%d", f), From: name, To: "MRC",
				BandwidthMbps: u.ChipsPerFingerMbps() / float64(u.SF), Class: kpn.GT,
			},
		)
	}
	g.Channels = append(g.Channels,
		kpn.Channel{Name: "scramble", From: "Scrambling", To: "PulseShaping",
			BandwidthMbps: u.ScramblingMbps(), Class: kpn.GT},
		kpn.Channel{Name: "bits", From: "MRC", To: "Demapping",
			BandwidthMbps: u.ReceivedBitsMbps(), Class: kpn.GT},
		kpn.Channel{Name: "ctl", From: "Control", To: "ChannelEst",
			BandwidthMbps: 0.5, Class: kpn.BE},
	)
	return g
}
