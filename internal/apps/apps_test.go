package apps

import (
	"math"
	"testing"

	"repro/internal/kpn"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	// Table 1 must fall out of the OFDM standard parameters exactly.
	h := DefaultHiperLAN()
	approx(t, "sample rate", h.SampleRateMsps(), 20)
	approx(t, "S/P -> prefix removal", h.InputMbps(), 640)
	approx(t, "prefix removal -> FFT", h.AfterPrefixMbps(), 512)
	approx(t, "FFT -> channel eq", h.AfterFFTMbps(), 416)
	approx(t, "channel eq -> demap", h.AfterEqualizerMbps(), 384)
	approx(t, "hard bits BPSK", h.HardBitsMbps(Modulation{Name: "BPSK", BitsPerCarrier: 1}), 12)
	approx(t, "hard bits QAM-64", h.HardBitsMbps(Modulation{Name: "QAM-64", BitsPerCarrier: 6}), 72)
	for _, row := range Table1(h) {
		if math.Abs(row.Mbps-row.PaperMbps) > 1e-9 {
			t.Errorf("Table 1 row %q: computed %.2f, paper %.2f", row.Stream, row.Mbps, row.PaperMbps)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	u := DefaultUMTS()
	approx(t, "chips per finger", u.ChipsPerFingerMbps(), 61.44)
	approx(t, "scrambling code", u.ScramblingMbps(), 7.68)
	approx(t, "MRC coefficient", u.MRCCoefficientMbps(), 61.44/4)
	approx(t, "received bits QPSK", u.ReceivedBitsMbps(), 7.68/4)
	qam := u
	qam.BitsPerSymbol = 4
	approx(t, "received bits QAM-16", qam.ReceivedBitsMbps(), 15.36/4)
	for _, row := range Table2(u) {
		if math.Abs(row.Mbps-row.PaperMbps) > 1e-9 {
			t.Errorf("Table 2 row %q: computed %.3f, paper %.3f", row.Stream, row.Mbps, row.PaperMbps)
		}
	}
}

func TestUMTSTotalMatchesPaperExample(t *testing.T) {
	// "the total communication bandwidth for processing 4 RAKE fingers
	// with a spreading factor (SF) of 4 is ~320 Mbit/s"
	u := DefaultUMTS()
	total := u.TotalMbps()
	if total < 310 || total < 300 || total > 330 {
		t.Fatalf("UMTS total = %.1f Mbit/s, paper says ~320", total)
	}
}

func TestHiperLANGraphValid(t *testing.T) {
	g := HiperLANGraph(DefaultHiperLAN(), HiperLANModulations()[3])
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The heaviest channel is the 640 Mbit/s front end.
	if g.MaxChannelMbps() != 640 {
		t.Fatalf("max channel = %v, want 640", g.MaxChannelMbps())
	}
	// BE traffic is a small minority (< 5%, Section 3.3).
	if f := g.BEFraction(); f <= 0 || f >= 0.05 {
		t.Fatalf("BE fraction = %v, want (0, 0.05)", f)
	}
}

func TestUMTSGraphValid(t *testing.T) {
	u := DefaultUMTS()
	g := UMTSGraph(u)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// One finger process per configured finger.
	fingers := 0
	for _, p := range g.Processes {
		if len(p.Name) >= 6 && p.Name[:6] == "Finger" {
			fingers++
		}
	}
	if fingers != u.Fingers {
		t.Fatalf("graph has %d fingers, want %d", fingers, u.Fingers)
	}
	// Streaming class dominates.
	if g.TotalBandwidthMbps(kpn.GT) < 300 {
		t.Fatalf("GT bandwidth = %v, want > 300", g.TotalBandwidthMbps(kpn.GT))
	}
}

func TestUMTSGraphScalesWithFingers(t *testing.T) {
	small, big := DefaultUMTS(), DefaultUMTS()
	big.Fingers = 8
	gs, gb := UMTSGraph(small), UMTSGraph(big)
	if gb.TotalBandwidthMbps(kpn.GT) <= gs.TotalBandwidthMbps(kpn.GT) {
		t.Fatal("more fingers must need more bandwidth")
	}
}

func TestDRMIsThousandTimesLess(t *testing.T) {
	h := HiperLANGraph(DefaultHiperLAN(), HiperLANModulations()[3])
	d := DRMGraph()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ratio := h.TotalBandwidthMbps(kpn.GT) / d.TotalBandwidthMbps(kpn.GT)
	if math.Abs(ratio-DRMScale) > 1e-6 {
		t.Fatalf("HiperLAN/DRM bandwidth ratio = %v, want %v", ratio, float64(DRMScale))
	}
	// DRM fits in a fraction of one lane even at low clocks.
	if d.MaxChannelMbps() > 1 {
		t.Fatalf("DRM max channel = %v Mbit/s, expected sub-Mbit/s", d.MaxChannelMbps())
	}
}

func TestUMTSValidateRejects(t *testing.T) {
	bad := []UMTSParams{
		{ChipRateMcps: 0, Oversampling: 2, ChipBits: 8, Fingers: 1, SF: 4, BitsPerSymbol: 2},
		{ChipRateMcps: 3.84, Oversampling: 0, ChipBits: 8, Fingers: 1, SF: 4, BitsPerSymbol: 2},
		{ChipRateMcps: 3.84, Oversampling: 2, ChipBits: 0, Fingers: 1, SF: 4, BitsPerSymbol: 2},
		{ChipRateMcps: 3.84, Oversampling: 2, ChipBits: 8, Fingers: 0, SF: 4, BitsPerSymbol: 2},
		{ChipRateMcps: 3.84, Oversampling: 2, ChipBits: 8, Fingers: 1, SF: 0, BitsPerSymbol: 2},
		{ChipRateMcps: 3.84, Oversampling: 2, ChipBits: 8, Fingers: 1, SF: 4, BitsPerSymbol: 0},
	}
	for i, u := range bad {
		if u.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestModulationLadder(t *testing.T) {
	mods := HiperLANModulations()
	if len(mods) != 4 {
		t.Fatalf("modulations = %d", len(mods))
	}
	for i := 1; i < len(mods); i++ {
		if mods[i].BitsPerCarrier <= mods[i-1].BitsPerCarrier {
			t.Fatal("modulation ladder not increasing")
		}
	}
}
