// Package apps models the three wireless applications whose communication
// requirements drive the paper's NoC design (Section 3): the HiperLAN/2
// baseband receiver (Fig. 2 / Table 1), the UMTS W-CDMA rake receiver
// (Fig. 3 / Table 2) and Digital Radio Mondiale (DRM), whose block diagram
// is similar to HiperLAN/2 at a factor 1000 lower bandwidth.
//
// All bandwidths are derived from the standards' parameters, not
// hard-coded, so Tables 1 and 2 are *computed* by the reproduction and can
// be checked against the paper.
package apps

import (
	"fmt"

	"repro/internal/kpn"
)

// HiperLANParams are the OFDM parameters of the HiperLAN/2 physical layer
// (ETSI TS 101 475) behind Table 1.
type HiperLANParams struct {
	// SymbolPeriodUS is the OFDM symbol period in µs (4 µs: 80 samples at
	// 20 Msample/s).
	SymbolPeriodUS float64
	// SamplesPerSymbol is the OFDM symbol length including the cyclic
	// prefix (80).
	SamplesPerSymbol int
	// FFTSize is the FFT length (64); prefix removal keeps FFTSize of the
	// SamplesPerSymbol samples.
	FFTSize int
	// UsedCarriers is the number of occupied sub-carriers (52).
	UsedCarriers int
	// DataCarriers is the number of data sub-carriers (48; the other 4
	// are pilots).
	DataCarriers int
	// SampleBits is the quantization per complex sample: 16-bit I plus
	// 16-bit Q ("based on 16 bits quantization").
	SampleBits int
}

// DefaultHiperLAN returns the standard's parameters.
func DefaultHiperLAN() HiperLANParams {
	return HiperLANParams{
		SymbolPeriodUS:   4,
		SamplesPerSymbol: 80,
		FFTSize:          64,
		UsedCarriers:     52,
		DataCarriers:     48,
		SampleBits:       32,
	}
}

// Modulation is an OFDM sub-carrier modulation.
type Modulation struct {
	// Name is the scheme (BPSK ... QAM-64).
	Name string
	// BitsPerCarrier is the bits carried per sub-carrier per symbol.
	BitsPerCarrier int
}

// HiperLANModulations returns the schemes of Table 1's hard-bits row:
// BPSK (12 Mbit/s) up to QAM-64 (72 Mbit/s).
func HiperLANModulations() []Modulation {
	return []Modulation{
		{Name: "BPSK", BitsPerCarrier: 1},
		{Name: "QPSK", BitsPerCarrier: 2},
		{Name: "QAM-16", BitsPerCarrier: 4},
		{Name: "QAM-64", BitsPerCarrier: 6},
	}
}

// SampleRateMsps returns the front-end sample rate in Msample/s
// (80 samples / 4 µs = 20 Msample/s).
func (h HiperLANParams) SampleRateMsps() float64 {
	return float64(h.SamplesPerSymbol) / h.SymbolPeriodUS
}

// InputMbps returns the serial-to-parallel input bandwidth: sample rate ×
// complex sample width (Table 1: 640 Mbit/s).
func (h HiperLANParams) InputMbps() float64 {
	return h.SampleRateMsps() * float64(h.SampleBits)
}

// AfterPrefixMbps returns the bandwidth after cyclic-prefix removal: only
// FFTSize of SamplesPerSymbol samples continue (Table 1: 512 Mbit/s).
func (h HiperLANParams) AfterPrefixMbps() float64 {
	return h.InputMbps() * float64(h.FFTSize) / float64(h.SamplesPerSymbol)
}

// AfterFFTMbps returns the bandwidth after the FFT, which discards unused
// carriers: UsedCarriers of FFTSize (Table 1: 416 Mbit/s).
func (h HiperLANParams) AfterFFTMbps() float64 {
	return h.AfterPrefixMbps() * float64(h.UsedCarriers) / float64(h.FFTSize)
}

// AfterEqualizerMbps returns the bandwidth into the demapper: data
// carriers only (Table 1: 384 Mbit/s).
func (h HiperLANParams) AfterEqualizerMbps() float64 {
	return h.AfterFFTMbps() * float64(h.DataCarriers) / float64(h.UsedCarriers)
}

// HardBitsMbps returns the demapped bit rate for a modulation (Table 1:
// 12 Mbit/s BPSK up to 72 Mbit/s QAM-64).
func (h HiperLANParams) HardBitsMbps(m Modulation) float64 {
	return float64(h.DataCarriers*m.BitsPerCarrier) / h.SymbolPeriodUS
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	// Edges is the paper's edge-group label.
	Edges string
	// Stream describes the producing and consuming blocks.
	Stream string
	// Mbps is the required bandwidth.
	Mbps float64
	// PaperMbps is the value printed in the paper.
	PaperMbps float64
}

// Table1 computes the paper's Table 1 from the standard's parameters,
// using QAM-64 for the hard-bits row's upper bound.
func Table1(h HiperLANParams) []Table1Row {
	return []Table1Row{
		{Edges: "1-2", Stream: "S/P -> Pre-fix removal", Mbps: h.InputMbps(), PaperMbps: 640},
		{Edges: "3-4", Stream: "Pre-fix removal -> FFT", Mbps: h.AfterPrefixMbps(), PaperMbps: 512},
		{Edges: "5-6", Stream: "FFT -> Channel eq.", Mbps: h.AfterFFTMbps(), PaperMbps: 416},
		{Edges: "7", Stream: "Channel eq. -> De-map", Mbps: h.AfterEqualizerMbps(), PaperMbps: 384},
		{Edges: "8 (BPSK)", Stream: "Hard bits", Mbps: h.HardBitsMbps(HiperLANModulations()[0]), PaperMbps: 12},
		{Edges: "8 (QAM-64)", Stream: "Hard bits", Mbps: h.HardBitsMbps(HiperLANModulations()[3]), PaperMbps: 72},
	}
}

// HiperLANGraph returns the Fig. 2 process network with Table 1's channel
// bandwidths. The paper's per-edge numbering between the offset-correction
// sub-blocks is ambiguous in the text, so channels connect the major
// pipeline stages at the bandwidths of Table 1's rows; the sync-and-control
// process attaches over best-effort channels.
func HiperLANGraph(h HiperLANParams, m Modulation) *kpn.Graph {
	g := &kpn.Graph{
		Name: "HiperLAN/2 baseband",
		Processes: []kpn.Process{
			{Name: "S/P", Kind: "ASIC"},
			{Name: "FreqOffset", Kind: "DSRH"},
			{Name: "PrefixRemoval", Kind: "ASIC"},
			{Name: "FFT", Kind: "DSRH"},
			{Name: "PhaseOffset", Kind: "DSRH"},
			{Name: "ChannelEq", Kind: "DSRH"},
			{Name: "Demapping", Kind: "DSP"},
			{Name: "Sync", Kind: "GPP"},
		},
		Channels: []kpn.Channel{
			{Name: "1", From: "S/P", To: "FreqOffset", BandwidthMbps: h.InputMbps(), Class: kpn.GT, Block: true},
			{Name: "2", From: "FreqOffset", To: "PrefixRemoval", BandwidthMbps: h.InputMbps(), Class: kpn.GT, Block: true},
			{Name: "3", From: "PrefixRemoval", To: "FFT", BandwidthMbps: h.AfterPrefixMbps(), Class: kpn.GT, Block: true},
			{Name: "4", From: "FFT", To: "PhaseOffset", BandwidthMbps: h.AfterFFTMbps(), Class: kpn.GT, Block: true},
			{Name: "5", From: "PhaseOffset", To: "ChannelEq", BandwidthMbps: h.AfterFFTMbps(), Class: kpn.GT, Block: true},
			{Name: "7", From: "ChannelEq", To: "Demapping", BandwidthMbps: h.AfterEqualizerMbps(), Class: kpn.GT, Block: true},
			{Name: "8", From: "Demapping", To: "Sync", BandwidthMbps: h.HardBitsMbps(m), Class: kpn.GT, Block: true},
			{Name: "ctl", From: "Sync", To: "FreqOffset", BandwidthMbps: 1, Class: kpn.BE},
		},
	}
	return g
}

// DRMScale is the bandwidth ratio between HiperLAN/2 and DRM (Section 3:
// "the communication requirements are a factor 1000 less").
const DRMScale = 1000

// DRMGraph returns the Digital Radio Mondiale process network: the
// HiperLAN/2 topology with all bandwidths scaled down by DRMScale.
func DRMGraph() *kpn.Graph {
	h := DefaultHiperLAN()
	g := HiperLANGraph(h, Modulation{Name: "QAM-64", BitsPerCarrier: 6})
	g.Name = "DRM receiver"
	for i := range g.Channels {
		g.Channels[i].BandwidthMbps /= DRMScale
		if g.Channels[i].BandwidthMbps <= 0 {
			panic(fmt.Sprintf("apps: DRM channel %q scaled to zero", g.Channels[i].Name))
		}
	}
	return g
}
