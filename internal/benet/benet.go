// Package benet implements the paper's best-effort (BE) network: a
// packet-switched mesh (reusing the virtual-channel router of
// internal/packetsw with XY routing) that carries the low-rate traffic the
// paper excludes from the circuit-switched data network — control,
// interrupts and, most importantly, the 10-bit crossbar configuration
// commands the CCN sends to the routers (Section 5.1: "The configuration
// interface is connected to the separate BE network").
package benet

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
)

// HeadDataXY encodes a mesh destination in a head flit: X in bits 0–3,
// Y in bits 4–7.
func HeadDataXY(c mesh.Coord) uint16 {
	if c.X < 0 || c.X > 15 || c.Y < 0 || c.Y > 15 {
		panic(fmt.Sprintf("benet: coordinate %v exceeds the 4-bit address fields", c))
	}
	return uint16(c.X) | uint16(c.Y)<<4
}

// DecodeXY is the inverse of HeadDataXY.
func DecodeXY(d uint16) mesh.Coord {
	return mesh.Coord{X: int(d & 0xF), Y: int(d >> 4 & 0xF)}
}

// RouteXY returns the dimension-ordered routing function for a router at
// the given coordinate: first correct X (East/West), then Y (South/North),
// then eject at the tile port.
func RouteXY(here mesh.Coord) packetsw.RouteFunc {
	return func(head uint16) core.Port {
		dst := DecodeXY(head)
		switch {
		case dst.X > here.X:
			return core.East
		case dst.X < here.X:
			return core.West
		case dst.Y > here.Y:
			return core.South
		case dst.Y < here.Y:
			return core.North
		default:
			return core.Tile
		}
	}
}

// Message is one BE payload delivered between tiles.
type Message struct {
	// Src and Dst are the endpoints.
	Src, Dst mesh.Coord
	// Payload are the 16-bit data words.
	Payload []uint16
	// SentCycle and RecvCycle time-stamp the transfer.
	SentCycle, RecvCycle uint64
}

// Network is a W×H best-effort mesh.
type Network struct {
	// W and H are the grid dimensions.
	W, H int
	// P are the router parameters.
	P packetsw.Params

	routers []*packetsw.Router
	world   *sim.World
	sched   *scheduler

	sendQ    [][]packetsw.Flit // per node, flits waiting for injection
	inflight map[uint16][]Message
	recv     []Message
}

// New builds a W×H best-effort mesh with XY routing. World options select
// the simulation kernel (default: the activity-tracked gated kernel, which
// skips routers with no buffered flits or arriving traffic).
func New(w, h int, p packetsw.Params, wopts ...sim.WorldOption) *Network {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("benet: invalid size %dx%d", w, h))
	}
	n := &Network{
		W: w, H: h, P: p,
		world:    sim.NewWorld(wopts...),
		sendQ:    make([][]packetsw.Flit, w*h),
		inflight: make(map[uint16][]Message),
	}
	// The burst scheduler releases SendAt messages at their due cycle. It
	// is registered first so a release is visible to every pump of the
	// same cycle, exactly like an external Send just before the step.
	n.sched = &scheduler{net: n}
	n.world.Add(n.sched)
	n.routers = make([]*packetsw.Router, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			n.routers[y*w+x] = packetsw.NewRouter(p, RouteXY(mesh.Coord{X: x, Y: y}))
			n.world.Add(n.routers[y*w+x])
		}
	}
	// Wire links and credit returns in both directions.
	wire := func(a *packetsw.Router, aPort core.Port, b *packetsw.Router, bPort core.Port) {
		b.ConnectIn(bPort, &a.Out[aPort])
		for v := 0; v < p.VCs; v++ {
			a.ConnectCreditIn(aPort, v, &b.CreditOut[bPort][v])
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r := n.router(mesh.Coord{X: x, Y: y})
			if x+1 < w {
				e := n.router(mesh.Coord{X: x + 1, Y: y})
				wire(r, core.East, e, core.West)
				wire(e, core.West, r, core.East)
			}
			if y+1 < h {
				s := n.router(mesh.Coord{X: x, Y: y + 1})
				wire(r, core.South, s, core.North)
				wire(s, core.North, r, core.South)
			}
		}
	}
	// Injection and ejection glue per node. Pumps are first-class
	// components, not bare sim.Funcs, so the activity-tracked kernels can
	// skip a node whose injection queue is empty and whose router has
	// nothing ejected — on a quiet mesh the whole world then quiesces and
	// the event kernel fast-forwards to the next scheduled burst.
	for i := range n.routers {
		n.world.Add(&pump{net: n, idx: i})
	}
	return n
}

// pump is the per-node injection/ejection glue component.
type pump struct {
	net *Network
	idx int
}

// Eval implements sim.Clocked.
func (p *pump) Eval() { p.net.pump(p.idx) }

// Commit implements sim.Clocked.
func (p *pump) Commit() {}

// Quiescent implements sim.Quiescer: nothing queued for injection and
// nothing ejected awaiting drain. The router's own quiescence (and its
// Inject wake) covers flits in flight.
func (p *pump) Quiescent() bool {
	return len(p.net.sendQ[p.idx]) == 0 && p.net.routers[p.idx].EjectedPending() == 0
}

// IdleTick implements sim.IdleTicker: the pump keeps no per-cycle state,
// so idle replay is a no-op, declared explicitly to satisfy the Quiescer
// contract checked by nocvet.
func (p *pump) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (p *pump) IdleWindow(n uint64) {}

// scheduler releases messages queued with SendAt when their cycle comes.
// It is the BE network's event source: quiescent between bursts, and a
// sim.Timed so the event kernel knows the next release cycle and can
// fast-forward the idle window between configuration bursts instead of
// polling it cycle by cycle.
type scheduler struct {
	net     *Network
	pending []scheduledSend // sorted by cycle, insertion order within one
}

type scheduledSend struct {
	cycle uint64
	msg   Message
}

// Eval implements sim.Clocked: release every message due this cycle.
func (s *scheduler) Eval() {
	now := s.net.world.Cycle()
	for len(s.pending) > 0 && s.pending[0].cycle <= now {
		msg := s.pending[0].msg
		s.pending = s.pending[1:]
		s.net.Send(msg)
	}
}

// Commit implements sim.Clocked.
func (s *scheduler) Commit() {}

// Quiescent implements sim.Quiescer: no release is due this cycle.
func (s *scheduler) Quiescent() bool {
	return len(s.pending) == 0 || s.pending[0].cycle > s.net.world.Cycle()
}

// NextEvent implements sim.Timed: the earliest scheduled release.
func (s *scheduler) NextEvent() (uint64, bool) {
	if len(s.pending) == 0 {
		return 0, false
	}
	return s.pending[0].cycle, true
}

// IdleTick implements sim.IdleTicker: between bursts the scheduler keeps
// no per-cycle state (pending releases are keyed by absolute cycle), so
// idle replay is a no-op, declared explicitly to satisfy the Quiescer
// contract checked by nocvet.
func (s *scheduler) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (s *scheduler) IdleWindow(n uint64) {}

var (
	_ sim.Quiescer = (*pump)(nil)
	_ sim.Quiescer = (*scheduler)(nil)
	_ sim.Timed    = (*scheduler)(nil)
)

func (n *Network) router(c mesh.Coord) *packetsw.Router { return n.routers[c.Y*n.W+c.X] }

// Router exposes the BE router at a coordinate (e.g. to bind power meters).
func (n *Network) Router(c mesh.Coord) *packetsw.Router {
	if c.X < 0 || c.X >= n.W || c.Y < 0 || c.Y >= n.H {
		panic(fmt.Sprintf("benet: %v outside %dx%d", c, n.W, n.H))
	}
	return n.router(c)
}

// World returns the network's simulation world so callers can co-simulate
// stimulus.
func (n *Network) World() *sim.World { return n.world }

// Send queues a message for delivery; it is segmented into a wormhole
// packet (head flit with the XY address, one flit per payload word). VC 0
// carries all BE traffic in this model.
func (n *Network) Send(msg Message) {
	if len(msg.Payload) == 0 {
		panic("benet: empty message")
	}
	msg.SentCycle = n.Cycle()
	src := msg.Src.Y*n.W + msg.Src.X
	flits := packetsw.MakePacket(0, HeadDataXY(msg.Dst), msg.Payload)
	// Messages are matched to arrivals in send order per destination.
	key := HeadDataXY(msg.Dst)
	n.inflight[key] = append(n.inflight[key], msg)
	for i := range flits {
		flits[i].InjectCycle = n.Cycle()
	}
	n.sendQ[src] = append(n.sendQ[src], flits...)
}

// SendAt schedules a message for release at the given absolute cycle —
// the shape of the CCN's configuration bursts, which are planned ahead of
// time and sparse. Between releases the scheduler is quiescent and
// reports the next due cycle to the kernel, so the event kernel
// fast-forwards the dead window instead of polling it. It panics on a
// cycle already in the past; the current cycle is allowed and releases on
// the next step.
func (n *Network) SendAt(cycle uint64, msg Message) {
	if len(msg.Payload) == 0 {
		panic("benet: empty message")
	}
	if cycle < n.Cycle() {
		panic(fmt.Sprintf("benet: SendAt(%d) is in the past (cycle %d)", cycle, n.Cycle()))
	}
	s := n.sched
	at := sort.Search(len(s.pending), func(i int) bool {
		return s.pending[i].cycle > cycle
	})
	s.pending = slices.Insert(s.pending, at, scheduledSend{cycle: cycle, msg: msg})
}

// pump injects queued flits and collects ejected packets at node idx.
func (n *Network) pump(idx int) {
	r := n.routers[idx]
	for len(n.sendQ[idx]) > 0 && r.Inject(n.sendQ[idx][0]) {
		n.sendQ[idx] = n.sendQ[idx][1:]
	}
	here := mesh.Coord{X: idx % n.W, Y: idx / n.W}
	for _, f := range r.Drain() {
		if f.Kind.Closes() {
			n.complete(here)
		}
	}
}

// complete matches a finished packet at dst to the oldest in-flight
// message addressed there and records its delivery.
func (n *Network) complete(dst mesh.Coord) {
	key := HeadDataXY(dst)
	msgs := n.inflight[key]
	if len(msgs) == 0 {
		return
	}
	m := msgs[0]
	n.inflight[key] = msgs[1:]
	m.RecvCycle = n.Cycle()
	n.recv = append(n.recv, m)
}

// Step advances the network one cycle.
func (n *Network) Step() { n.world.Step() }

// Run advances the network n cycles through the world's kernel, so the
// event kernel may fast-forward quiet windows between scheduled bursts.
func (n *Network) Run(cycles int) { n.world.Run(cycles) }

// Cycle returns the elapsed cycles.
func (n *Network) Cycle() uint64 { return n.world.Cycle() }

// Delivered returns and clears the messages delivered so far.
func (n *Network) Delivered() []Message {
	d := n.recv
	n.recv = nil
	return d
}

// Pending returns the number of messages not yet delivered, including
// SendAt messages still waiting for their release cycle.
func (n *Network) Pending() int {
	p := len(n.sched.pending)
	for _, msgs := range n.inflight {
		p += len(msgs)
	}
	for _, q := range n.sendQ {
		if len(q) > 0 {
			p++ // at least one message still queued at this node
		}
	}
	return p
}
