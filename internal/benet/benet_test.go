package benet

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packetsw"
	"repro/internal/sim"
)

func TestHeadDataXYRoundTrip(t *testing.T) {
	f := func(x, y uint8) bool {
		c := mesh.Coord{X: int(x % 16), Y: int(y % 16)}
		return DecodeXY(HeadDataXY(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized coordinate accepted")
		}
	}()
	HeadDataXY(mesh.Coord{X: 16, Y: 0})
}

func TestRouteXY(t *testing.T) {
	r := RouteXY(mesh.Coord{X: 2, Y: 2})
	cases := map[mesh.Coord]core.Port{
		{X: 4, Y: 2}: core.East,
		{X: 0, Y: 7}: core.West, // X corrected first
		{X: 2, Y: 5}: core.South,
		{X: 2, Y: 0}: core.North,
		{X: 2, Y: 2}: core.Tile,
	}
	for dst, want := range cases {
		if got := r(HeadDataXY(dst)); got != want {
			t.Errorf("route to %v = %v, want %v", dst, got, want)
		}
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	n := New(4, 4, packetsw.DefaultParams())
	n.Send(Message{
		Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 3, Y: 2},
		Payload: []uint16{0x3FF},
	})
	for i := 0; i < 200 && n.Pending() > 0; i++ {
		n.Step()
	}
	d := n.Delivered()
	if len(d) != 1 {
		t.Fatalf("delivered %d messages", len(d))
	}
	if d[0].RecvCycle <= d[0].SentCycle {
		t.Fatal("latency not recorded")
	}
	// 5 hops, wormhole: latency is a handful of cycles per hop.
	if lat := d[0].RecvCycle - d[0].SentCycle; lat > 60 {
		t.Fatalf("latency %d cycles for 5 hops, too slow", lat)
	}
}

func TestManyMessagesAllArrive(t *testing.T) {
	n := New(4, 4, packetsw.DefaultParams())
	const msgs = 40
	for i := 0; i < msgs; i++ {
		n.Send(Message{
			Src:     mesh.Coord{X: i % 4, Y: (i / 4) % 4},
			Dst:     mesh.Coord{X: 3 - i%4, Y: 3 - (i/4)%4},
			Payload: []uint16{uint16(i), uint16(i + 1)},
		})
	}
	for i := 0; i < 5000 && n.Pending() > 0; i++ {
		n.Step()
	}
	if got := len(n.Delivered()); got != msgs {
		t.Fatalf("delivered %d/%d", got, msgs)
	}
	// No router dropped anything (credits intact).
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if d := n.Router(mesh.Coord{X: x, Y: y}).Dropped(); d != 0 {
				t.Fatalf("router (%d,%d) dropped %d flits", x, y, d)
			}
		}
	}
}

func TestSamePairOrderPreserved(t *testing.T) {
	// Wormhole routing on one VC preserves order between a fixed pair.
	n := New(3, 1, packetsw.DefaultParams())
	for i := 0; i < 10; i++ {
		n.Send(Message{
			Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 2, Y: 0},
			Payload: []uint16{uint16(100 + i)},
		})
	}
	for i := 0; i < 2000 && n.Pending() > 0; i++ {
		n.Step()
	}
	d := n.Delivered()
	if len(d) != 10 {
		t.Fatalf("delivered %d/10", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i].SentCycle < d[i-1].SentCycle {
			t.Fatal("delivery order violates send order")
		}
	}
}

func TestSendPanicsOnEmptyPayload(t *testing.T) {
	n := New(2, 2, packetsw.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("empty message accepted")
		}
	}()
	n.Send(Message{Src: mesh.Coord{}, Dst: mesh.Coord{X: 1}, Payload: nil})
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 2, packetsw.DefaultParams())
}

func TestRouterAccessorBounds(t *testing.T) {
	n := New(2, 2, packetsw.DefaultParams())
	if n.Router(mesh.Coord{X: 1, Y: 1}) == nil {
		t.Fatal("router missing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Router(mesh.Coord{X: 2, Y: 0})
}

// burstPlan returns a deterministic sparse burst schedule: one 4-word
// message roughly every gap cycles, alternating corners.
func burstPlan(n int, gap uint64) []struct {
	cycle    uint64
	src, dst mesh.Coord
} {
	plan := make([]struct {
		cycle    uint64
		src, dst mesh.Coord
	}, n)
	for i := range plan {
		plan[i].cycle = uint64(i+1) * gap
		plan[i].src = mesh.Coord{X: i % 4, Y: (i / 4) % 4}
		plan[i].dst = mesh.Coord{X: 3 - i%4, Y: 3 - (i/4)%4}
		if plan[i].src == plan[i].dst {
			plan[i].dst.X = (plan[i].dst.X + 1) % 4
		}
	}
	return plan
}

// TestSendAtKernelEquivalence: a schedule of sparse configuration bursts
// delivers identical messages with identical timestamps under all three
// kernels — while the event kernel fast-forwards the dead windows the
// others poll through.
func TestSendAtKernelEquivalence(t *testing.T) {
	type delivery struct {
		dst  [2]int
		sent uint64
		recv uint64
	}
	const cycles = 20000
	run := func(k sim.Kernel) ([]delivery, uint64) {
		n := New(4, 4, packetsw.DefaultParams(), sim.WithKernel(k))
		for _, b := range burstPlan(24, 800) {
			n.SendAt(b.cycle, Message{Src: b.src, Dst: b.dst,
				Payload: []uint16{1, 2, 3, 4}})
		}
		n.Run(cycles)
		var out []delivery
		for _, m := range n.Delivered() {
			out = append(out, delivery{
				dst: [2]int{m.Dst.X, m.Dst.Y}, sent: m.SentCycle, recv: m.RecvCycle,
			})
		}
		_, ffCycles := n.World().FastForwards()
		return out, ffCycles
	}
	ref, _ := run(sim.KernelGated)
	if len(ref) != 24 {
		t.Fatalf("gated kernel delivered %d of 24 bursts", len(ref))
	}
	for _, k := range []sim.Kernel{sim.KernelNaive, sim.KernelEvent} {
		got, ff := run(k)
		if len(got) != len(ref) {
			t.Fatalf("%v delivered %d, gated %d", k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%v delivery %d differs: %+v vs gated %+v", k, i, got[i], ref[i])
			}
		}
		if k == sim.KernelEvent && ff < cycles/2 {
			t.Fatalf("event kernel fast-forwarded only %d of %d cycles", ff, cycles)
		}
	}
}

// TestSendAtValidation: empty payloads and past cycles are rejected; the
// current cycle is legal and releases on the next step.
func TestSendAtValidation(t *testing.T) {
	n := New(2, 2, packetsw.DefaultParams())
	n.Run(10)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s accepted", name)
			}
		}()
		f()
	}
	msg := Message{Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 1, Y: 1},
		Payload: []uint16{7}}
	mustPanic("past cycle", func() { n.SendAt(5, msg) })
	mustPanic("empty payload", func() {
		n.SendAt(20, Message{Src: msg.Src, Dst: msg.Dst})
	})
	n.SendAt(n.Cycle(), msg) // current cycle: releases on the next step
	for i := 0; i < 100 && n.Pending() > 0; i++ {
		n.Step()
	}
	if d := n.Delivered(); len(d) != 1 || d[0].SentCycle != 10 {
		t.Fatalf("current-cycle SendAt: deliveries %+v", d)
	}
}
