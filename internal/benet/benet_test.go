package benet

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packetsw"
)

func TestHeadDataXYRoundTrip(t *testing.T) {
	f := func(x, y uint8) bool {
		c := mesh.Coord{X: int(x % 16), Y: int(y % 16)}
		return DecodeXY(HeadDataXY(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized coordinate accepted")
		}
	}()
	HeadDataXY(mesh.Coord{X: 16, Y: 0})
}

func TestRouteXY(t *testing.T) {
	r := RouteXY(mesh.Coord{X: 2, Y: 2})
	cases := map[mesh.Coord]core.Port{
		{X: 4, Y: 2}: core.East,
		{X: 0, Y: 7}: core.West, // X corrected first
		{X: 2, Y: 5}: core.South,
		{X: 2, Y: 0}: core.North,
		{X: 2, Y: 2}: core.Tile,
	}
	for dst, want := range cases {
		if got := r(HeadDataXY(dst)); got != want {
			t.Errorf("route to %v = %v, want %v", dst, got, want)
		}
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	n := New(4, 4, packetsw.DefaultParams())
	n.Send(Message{
		Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 3, Y: 2},
		Payload: []uint16{0x3FF},
	})
	for i := 0; i < 200 && n.Pending() > 0; i++ {
		n.Step()
	}
	d := n.Delivered()
	if len(d) != 1 {
		t.Fatalf("delivered %d messages", len(d))
	}
	if d[0].RecvCycle <= d[0].SentCycle {
		t.Fatal("latency not recorded")
	}
	// 5 hops, wormhole: latency is a handful of cycles per hop.
	if lat := d[0].RecvCycle - d[0].SentCycle; lat > 60 {
		t.Fatalf("latency %d cycles for 5 hops, too slow", lat)
	}
}

func TestManyMessagesAllArrive(t *testing.T) {
	n := New(4, 4, packetsw.DefaultParams())
	const msgs = 40
	for i := 0; i < msgs; i++ {
		n.Send(Message{
			Src:     mesh.Coord{X: i % 4, Y: (i / 4) % 4},
			Dst:     mesh.Coord{X: 3 - i%4, Y: 3 - (i/4)%4},
			Payload: []uint16{uint16(i), uint16(i + 1)},
		})
	}
	for i := 0; i < 5000 && n.Pending() > 0; i++ {
		n.Step()
	}
	if got := len(n.Delivered()); got != msgs {
		t.Fatalf("delivered %d/%d", got, msgs)
	}
	// No router dropped anything (credits intact).
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if d := n.Router(mesh.Coord{X: x, Y: y}).Dropped(); d != 0 {
				t.Fatalf("router (%d,%d) dropped %d flits", x, y, d)
			}
		}
	}
}

func TestSamePairOrderPreserved(t *testing.T) {
	// Wormhole routing on one VC preserves order between a fixed pair.
	n := New(3, 1, packetsw.DefaultParams())
	for i := 0; i < 10; i++ {
		n.Send(Message{
			Src: mesh.Coord{X: 0, Y: 0}, Dst: mesh.Coord{X: 2, Y: 0},
			Payload: []uint16{uint16(100 + i)},
		})
	}
	for i := 0; i < 2000 && n.Pending() > 0; i++ {
		n.Step()
	}
	d := n.Delivered()
	if len(d) != 10 {
		t.Fatalf("delivered %d/10", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i].SentCycle < d[i-1].SentCycle {
			t.Fatal("delivery order violates send order")
		}
	}
}

func TestSendPanicsOnEmptyPayload(t *testing.T) {
	n := New(2, 2, packetsw.DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("empty message accepted")
		}
	}()
	n.Send(Message{Src: mesh.Coord{}, Dst: mesh.Coord{X: 1}, Payload: nil})
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 2, packetsw.DefaultParams())
}

func TestRouterAccessorBounds(t *testing.T) {
	n := New(2, 2, packetsw.DefaultParams())
	if n.Router(mesh.Coord{X: 1, Y: 1}) == nil {
		t.Fatal("router missing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Router(mesh.Coord{X: 2, Y: 0})
}
