package core

import "fmt"

// BlockTx sends whole data blocks (e.g. OFDM symbols, Section 3.1) over a
// transmit converter, marking the first word with SOB and the last with
// EOB in the 4-bit header — the in-band synchronization the paper adds
// the header for ("The circuit-switched network can handle synchronization
// of information in the data-packets").
type BlockTx struct {
	tx *TxConverter

	cur  []uint16
	pos  int
	sent uint64
}

// NewBlockTx wraps a transmit converter.
func NewBlockTx(tx *TxConverter) *BlockTx {
	if tx == nil {
		panic("core: nil converter")
	}
	return &BlockTx{tx: tx}
}

// Idle reports whether the previous block has been fully handed to the
// converter.
func (b *BlockTx) Idle() bool { return b.cur == nil }

// Start begins transmitting a block. It returns an error if a block is
// still in progress or the block is empty.
func (b *BlockTx) Start(block []uint16) error {
	if !b.Idle() {
		return fmt.Errorf("core: block still in progress (%d/%d words)", b.pos, len(b.cur))
	}
	if len(block) == 0 {
		return fmt.Errorf("core: empty block")
	}
	b.cur = block
	b.pos = 0
	return nil
}

// Pump pushes the next word if the converter can take it; call once per
// Eval phase. It reports whether the block completed this call.
func (b *BlockTx) Pump() bool {
	if b.cur == nil || !b.tx.Ready() {
		return false
	}
	hdr := HdrValid
	if b.pos == 0 {
		hdr |= HdrSOB
	}
	if b.pos == len(b.cur)-1 {
		hdr |= HdrEOB
	}
	if !b.tx.Push(Word{Hdr: hdr, Data: b.cur[b.pos]}) {
		return false
	}
	b.pos++
	if b.pos == len(b.cur) {
		b.cur = nil
		b.sent++
		return true
	}
	return false
}

// BlocksSent returns the number of completed blocks.
func (b *BlockTx) BlocksSent() uint64 { return b.sent }

// BlockRx reassembles blocks from a receive converter using the SOB/EOB
// header flags, detecting truncated or misframed blocks.
type BlockRx struct {
	rx *RxConverter

	cur      []uint16
	inBlock  bool
	done     [][]uint16
	received uint64
	framing  uint64
}

// NewBlockRx wraps a receive converter.
func NewBlockRx(rx *RxConverter) *BlockRx {
	if rx == nil {
		panic("core: nil converter")
	}
	return &BlockRx{rx: rx}
}

// Pump consumes available words; call once per Eval phase.
func (b *BlockRx) Pump() {
	for {
		w, ok := b.rx.Pop()
		if !ok {
			return
		}
		sob := w.Hdr&HdrSOB != 0
		eob := w.Hdr&HdrEOB != 0
		if sob {
			if b.inBlock {
				// Previous block never closed: framing error.
				b.framing++
				b.cur = nil
			}
			b.inBlock = true
		}
		if !b.inBlock {
			// Word outside any block: framing error.
			b.framing++
			continue
		}
		b.cur = append(b.cur, w.Data)
		if eob {
			b.done = append(b.done, b.cur)
			b.cur = nil
			b.inBlock = false
			b.received++
		}
	}
}

// Pop returns the oldest completed block, if any.
func (b *BlockRx) Pop() ([]uint16, bool) {
	if len(b.done) == 0 {
		return nil, false
	}
	blk := b.done[0]
	b.done = b.done[1:]
	return blk, true
}

// BlocksReceived returns the number of completed blocks.
func (b *BlockRx) BlocksReceived() uint64 { return b.received }

// FramingErrors counts SOB/EOB violations (lost or duplicated markers).
func (b *BlockRx) FramingErrors() uint64 { return b.framing }
