package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/power"
	"repro/internal/stdcell"
)

// FlowParams configure the window-counter flow control of Section 5.2.
type FlowParams struct {
	// UseAck enables the acknowledgement wire. Without it the source
	// streams freely and the destination is assumed to always consume
	// (the paper's base case before the ack extension).
	UseAck bool
	// WC is the source's window: the maximum number of unacknowledged
	// packets in flight.
	WC int
	// X is the acknowledgement batch: the destination raises the ack wire
	// for one cycle per X consumed packets. The paper requires X ≤ WC.
	X int
}

// DefaultFlow returns a blocking configuration with an 8-packet window
// acknowledged every 4 packets.
func DefaultFlow() FlowParams { return FlowParams{UseAck: true, WC: 8, X: 4} }

// Validate checks the flow-control parameters.
func (f FlowParams) Validate() error {
	if !f.UseAck {
		return nil
	}
	if f.WC < 1 {
		return fmt.Errorf("core: window counter %d < 1", f.WC)
	}
	if f.X < 1 || f.X > f.WC {
		return fmt.Errorf("core: ack batch X=%d outside 1..WC=%d", f.X, f.WC)
	}
	return nil
}

// TxConverter is the transmit half of the data converter (Fig. 5): it
// accepts 20-bit words from the 16-bit tile interface and serializes them
// onto one 4-bit lane, header nibble first, under window-counter flow
// control. Its output register feeds a tile-port input lane of the router.
type TxConverter struct {
	p    Params
	flow FlowParams

	// Out is the registered lane value the router's tile input lane reads.
	Out uint8
	// Enabled gates the converter: a disabled converter holds its lane
	// idle and (with clock gating) draws no clock energy.
	Enabled bool

	ackIn *bool // from the router's AckOut of this input lane

	// committed state
	shift   uint32 // remaining nibbles, top nibble next
	cnt     int    // nibbles still to emit (incl. the one in shift top)
	wc      int    // window counter
	pending *Word  // accepted word waiting for serialization
	staged  *Word  // word pushed this cycle, committed into pending

	// next state
	nextShift uint32
	nextCnt   int
	nextOut   uint8
	willLoad  bool
	ackSeen   bool

	// statistics
	sent         uint64
	stalledCount uint64
	wcViolations uint64

	meter *power.Meter
	wake  func()
}

// NewTxConverter returns an idle transmit converter.
func NewTxConverter(p Params, flow FlowParams) *TxConverter {
	mustFig6Format(p)
	if err := flow.Validate(); err != nil {
		panic(err)
	}
	wc := flow.WC
	if !flow.UseAck {
		wc = 0
	}
	return &TxConverter{p: p, flow: flow, wc: wc}
}

// ConnectAck wires the acknowledgement input (the router's AckOut register
// of the lane this converter feeds).
func (t *TxConverter) ConnectAck(src *bool) { t.ackIn = src }

// BindMeter attaches a power meter for the converter's activity.
func (t *TxConverter) BindMeter(m *power.Meter) { t.meter = m }

// Ready reports whether a new word can be pushed this cycle.
func (t *TxConverter) Ready() bool { return t.staged == nil && t.pending == nil }

// Push hands a word to the converter. It returns false (and drops nothing —
// the caller keeps the word) if the converter cannot accept it this cycle.
// Call during the Eval phase.
func (t *TxConverter) Push(w Word) bool {
	if !t.Enabled || !t.Ready() {
		return false
	}
	cp := w
	t.staged = &cp
	if t.wake != nil {
		t.wake()
	}
	return true
}

// SetWake implements sim.Waker: a pushed word re-activates a skipped
// converter in the cycle it is staged.
func (t *TxConverter) SetWake(fn func()) { t.wake = fn }

// Quiescent implements sim.Quiescer: true only when the converter holds no
// word in any stage, its output lane is idle and no acknowledgement is
// arriving (an ack replenishes the window counter, which is a state
// change).
func (t *TxConverter) Quiescent() bool {
	return t.staged == nil && t.pending == nil && t.cnt == 0 &&
		t.shift == 0 && t.Out == 0 && !(t.ackIn != nil && *t.ackIn)
}

// IdleTick implements sim.IdleTicker: an idle converter accrues no
// per-cycle state, so idle replay is a no-op, declared explicitly to
// satisfy the Quiescer contract checked by nocvet.
func (t *TxConverter) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (t *TxConverter) IdleWindow(n uint64) {}

// Window returns the current window counter value.
func (t *TxConverter) Window() int { return t.wc }

// Sent returns the number of fully serialized words.
func (t *TxConverter) Sent() uint64 { return t.sent }

// Stalled returns the number of cycles a pending word waited on the window.
func (t *TxConverter) Stalled() uint64 { return t.stalledCount }

// WindowViolations counts acknowledgements that would have pushed the
// window counter above WC — a protocol violation (more acks than packets).
func (t *TxConverter) WindowViolations() uint64 { return t.wcViolations }

// Eval implements sim.Clocked.
func (t *TxConverter) Eval() {
	t.ackSeen = t.ackIn != nil && *t.ackIn
	t.willLoad = false

	const topShift = 16 // top nibble of the 20-bit packet
	mask := uint32(1)<<20 - 1

	switch {
	case t.cnt > 1:
		t.nextOut = uint8(t.shift >> topShift & 0xF)
		t.nextShift = t.shift << 4 & mask
		t.nextCnt = t.cnt - 1
	case t.cnt == 1:
		t.nextOut = uint8(t.shift >> topShift & 0xF)
		if t.canLoad() {
			t.nextShift = t.pending.Pack()
			t.nextCnt = t.p.PacketNibbles()
			t.willLoad = true
		} else {
			t.nextShift = 0
			t.nextCnt = 0
		}
	default: // idle
		t.nextOut = 0
		if t.canLoad() {
			t.nextShift = t.pending.Pack()
			t.nextCnt = t.p.PacketNibbles()
			t.willLoad = true
		} else {
			t.nextShift = 0
			t.nextCnt = 0
		}
	}
	if t.pending != nil && !t.willLoad && t.cnt <= 1 {
		t.stalledCount++
	}
}

func (t *TxConverter) canLoad() bool {
	if !t.Enabled || t.pending == nil {
		return false
	}
	if t.flow.UseAck {
		// The ack arriving this very cycle replenishes the window in the
		// same clock edge that could start a new packet.
		w := t.wc
		if t.ackSeen {
			w += t.flow.X
		}
		return w > 0
	}
	return true
}

// Commit implements sim.Clocked.
func (t *TxConverter) Commit() {
	if t.meter != nil {
		flips := bitvec.Hamming32(t.shift, t.nextShift)
		outFlips := bitvec.Hamming16(uint16(t.Out), uint16(t.nextOut))
		t.meter.AddToggles(power.ToggleReg, flips+outFlips)
		t.meter.AddToggles(power.ToggleGate, outFlips) // short wire into the crossbar
	}

	if t.flow.UseAck {
		w := t.wc
		if t.ackSeen {
			w += t.flow.X
		}
		if t.willLoad {
			w--
		}
		if w > t.flow.WC {
			t.wcViolations++
			w = t.flow.WC
		}
		t.wc = w
	}
	if t.willLoad {
		t.pending = nil
		t.sent++
	}
	t.shift = t.nextShift
	t.cnt = t.nextCnt
	t.Out = t.nextOut
	if t.pending == nil && t.staged != nil {
		t.pending = t.staged
		t.staged = nil
	}
}

// mustFig6Format restricts the cycle-accurate converters to the paper's
// wire format of Fig. 6 (4-bit lanes carrying a 4-bit header and a 16-bit
// word in five transfers). Other geometries remain available to the
// structural area/frequency sweeps, which do not serialize data.
func mustFig6Format(p Params) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.LaneWidth != 4 || p.TileWidth != 16 {
		panic(fmt.Sprintf(
			"core: data converter models the Fig. 6 format (4-bit lanes, 16-bit words); got %d/%d",
			p.LaneWidth, p.TileWidth))
	}
}

// TxRegBits returns the transmit converter's sequential census for the
// area/power model: packet shift register, output register, nibble counter,
// window counter and handshake state.
func TxRegBits(p Params) int {
	return p.PacketBits() + p.LaneWidth + 3 + 8 + 2
}

// ClockFJ returns the clock energy this converter draws per cycle; with
// gating, a disabled converter draws none.
func (t *TxConverter) ClockFJ(lib stdcell.Lib, gated bool) float64 {
	if gated && !t.Enabled {
		return 0
	}
	return power.ClockEnergyFor(lib, TxRegBits(t.p), 0)
}

// RxConverter is the receive half of the data converter: it watches one
// tile-port output lane of the router, synchronizes on the first nibble
// with the VALID bit, reassembles 20-bit packets and presents words to the
// tile. Consumed words are acknowledged in batches of X over the reverse
// acknowledgement wire.
type RxConverter struct {
	p    Params
	flow FlowParams

	// AckOut is the registered acknowledgement wire towards the network;
	// the router's tile-port ConnectAckIn points here.
	AckOut bool
	// Enabled gates the converter like the transmit side.
	Enabled bool

	in *uint8 // the router's tile-port output lane register

	// committed state
	acc      uint32
	cnt      int
	buf      []Word // destination buffer (tile memory of capacity BufCap)
	bufCap   int
	unacked  int // consumed words not yet acknowledged
	ackHigh  int // remaining cycles to hold the ack wire high
	received uint64
	dropped  uint64

	// next state
	nextAcc  uint32
	nextCnt  int
	complete *Word
	popN     int // words consumed by the tile this cycle (staged)

	meter *power.Meter
	wake  func()
}

// NewRxConverter returns an idle receive converter whose destination buffer
// holds bufCap words. For overflow-free operation the paper's window
// mechanism requires WC ≤ bufCap.
func NewRxConverter(p Params, flow FlowParams, bufCap int) *RxConverter {
	mustFig6Format(p)
	if err := flow.Validate(); err != nil {
		panic(err)
	}
	if bufCap < 1 {
		panic("core: destination buffer must hold at least one word")
	}
	return &RxConverter{p: p, flow: flow, bufCap: bufCap}
}

// ConnectIn wires the converter to the router's tile-port output lane.
func (r *RxConverter) ConnectIn(src *uint8) { r.in = src }

// BindMeter attaches a power meter for the converter's activity.
func (r *RxConverter) BindMeter(m *power.Meter) { r.meter = m }

// Available returns the number of words waiting in the destination buffer.
func (r *RxConverter) Available() int { return len(r.buf) - r.popN }

// Peek returns the oldest buffered word without consuming it.
func (r *RxConverter) Peek() (Word, bool) {
	if r.popN < len(r.buf) {
		return r.buf[r.popN], true
	}
	return Word{}, false
}

// Pop consumes the oldest buffered word. Call during the Eval phase; the
// consumption (and its acknowledgement credit) commits at the clock edge.
func (r *RxConverter) Pop() (Word, bool) {
	w, ok := r.Peek()
	if ok {
		r.popN++
		if r.wake != nil {
			r.wake()
		}
	}
	return w, ok
}

// SetWake implements sim.Waker: a consumed word re-activates a skipped
// converter so the buffer trim and acknowledgement credit commit on time.
func (r *RxConverter) SetWake(fn func()) { r.wake = fn }

// Quiescent implements sim.Quiescer: true only when no packet is being
// reassembled, no pop is staged, the acknowledgement machinery is at rest
// and no valid nibble is arriving on the watched lane. Words parked in the
// destination buffer do not count as activity — they change nothing until
// the tile pops them, and Pop wakes the converter.
func (r *RxConverter) Quiescent() bool {
	if r.cnt != 0 || r.acc != 0 || r.popN != 0 || r.ackHigh > 0 || r.AckOut {
		return false
	}
	if r.Enabled && r.in != nil {
		nib := *r.in & uint8(1<<uint(r.p.LaneWidth)-1)
		if Header(nib)&HdrValid != 0 {
			return false
		}
	}
	return true
}

// IdleTick implements sim.IdleTicker: an idle receive converter accrues
// no per-cycle state, so idle replay is a no-op, declared explicitly to
// satisfy the Quiescer contract checked by nocvet.
func (r *RxConverter) IdleTick() {}

// IdleWindow implements sim.IdleWindower: any idle window replays to the
// same no-op, keeping event-kernel fast-forward O(1).
func (r *RxConverter) IdleWindow(n uint64) {}

// Received returns the number of completely reassembled words.
func (r *RxConverter) Received() uint64 { return r.received }

// Dropped returns the number of words lost to destination buffer overflow —
// zero whenever the window invariant WC ≤ bufCap holds.
func (r *RxConverter) Dropped() uint64 { return r.dropped }

// Eval implements sim.Clocked.
func (r *RxConverter) Eval() {
	r.complete = nil
	var nib uint8
	if r.in != nil {
		nib = *r.in & uint8(1<<uint(r.p.LaneWidth)-1)
	}
	if !r.Enabled {
		r.nextAcc, r.nextCnt = 0, 0
		return
	}
	if r.cnt == 0 {
		if Header(nib)&HdrValid != 0 {
			r.nextAcc = uint32(nib)
			r.nextCnt = 1
		} else {
			r.nextAcc, r.nextCnt = 0, 0
		}
		return
	}
	r.nextAcc = r.acc<<4 | uint32(nib)
	r.nextCnt = r.cnt + 1
	if r.nextCnt == r.p.PacketNibbles() {
		w := Unpack(r.nextAcc)
		r.complete = &w
		r.nextAcc, r.nextCnt = 0, 0
	}
}

// Commit implements sim.Clocked.
func (r *RxConverter) Commit() {
	if r.meter != nil {
		flips := bitvec.Hamming32(r.acc, r.nextAcc)
		if r.ackHigh > 0 != r.AckOut {
			flips++
		}
		r.meter.AddToggles(power.ToggleReg, flips)
	}

	r.acc = r.nextAcc
	r.cnt = r.nextCnt

	if r.popN > 0 {
		r.buf = r.buf[r.popN:]
		if r.flow.UseAck {
			r.unacked += r.popN
		}
		r.popN = 0
	}
	if r.complete != nil {
		r.received++
		if len(r.buf) >= r.bufCap {
			r.dropped++
		} else {
			r.buf = append(r.buf, *r.complete)
		}
		r.complete = nil
	}
	// Acknowledge every X consumed packets: one cycle high per batch.
	if r.ackHigh > 0 {
		r.ackHigh--
	}
	for r.flow.UseAck && r.unacked >= r.flow.X {
		r.unacked -= r.flow.X
		r.ackHigh++
	}
	r.AckOut = r.ackHigh > 0
}

// RxRegBits returns the receive converter's sequential census: packet
// accumulator, nibble counter, ack batching counter and the ack output
// register. The destination buffer is tile memory and is not part of the
// router's area or power (the paper's router has no buffering).
func RxRegBits(p Params) int {
	return p.PacketBits() + 3 + 8 + 1
}

// ClockFJ returns the clock energy this converter draws per cycle.
func (r *RxConverter) ClockFJ(lib stdcell.Lib, gated bool) float64 {
	if gated && !r.Enabled {
		return 0
	}
	return power.ClockEnergyFor(lib, RxRegBits(r.p), 0)
}

// ConverterRegBits returns the census of a full tile-interface data
// converter: one transmit and one receive converter per lane.
func ConverterRegBits(p Params) int {
	return p.LanesPerPort * (TxRegBits(p) + RxRegBits(p))
}
