package core

import (
	"testing"

	"repro/internal/bitvec"
)

// TestRouterMatchesReferenceModel drives the cycle-accurate router with
// random configurations and random lane data and checks every output lane
// against an independent one-line reference model: a configured output
// lane equals its selected input delayed by exactly one clock edge; a
// disabled lane is zero. This is the crossbar's entire functional
// contract, verified exhaustively under fuzz.
func TestRouterMatchesReferenceModel(t *testing.T) {
	p := DefaultParams()
	rng := bitvec.NewXorShift64(20240613)

	for trial := 0; trial < 20; trial++ {
		r := NewRouter(p)
		// Random input drivers for every lane.
		inputs := make([]uint8, p.TotalLanes())
		for g := range inputs {
			r.ConnectIn(g, &inputs[g])
		}
		// Random configuration: each output lane enabled with p=0.7,
		// selecting a random foreign lane.
		type laneCfg struct {
			enabled bool
			in      int // global input lane
		}
		cfg := make([]laneCfg, p.TotalLanes())
		for g := range cfg {
			if !rng.Bool(0.7) {
				continue
			}
			outPort := p.LaneOf(g).Port
			rel := rng.Intn(p.ForeignLanes())
			cfg[g] = laneCfg{enabled: true, in: p.InputLane(outPort, rel)}
			r.PushConfig(ConfigCmd{Out: g, Sel: LaneSel{Enable: true, In: rel}})
		}
		r.Eval()
		r.Commit() // configuration edge

		prev := make([]uint8, p.TotalLanes())
		for cycle := 0; cycle < 50; cycle++ {
			for g := range inputs {
				prev[g] = inputs[g]
				inputs[g] = uint8(rng.Intn(16))
			}
			// The router samples pre-edge values: capture them before
			// stepping. (inputs were just overwritten; the router reads
			// the new values during Eval, so expected = current inputs.)
			expect := make([]uint8, p.TotalLanes())
			for g, c := range cfg {
				if c.enabled {
					expect[g] = inputs[c.in] & 0xF
				}
			}
			r.Eval()
			r.Commit()
			for g := range cfg {
				if r.Out[g] != expect[g] {
					t.Fatalf("trial %d cycle %d lane %d: out %#x, reference %#x",
						trial, cycle, g, r.Out[g], expect[g])
				}
			}
		}
	}
}

// TestRouterReconfigurationMidStream verifies that switching an output
// lane to a different input takes effect exactly one edge after the
// configuration write and never glitches other lanes — the run-time
// adaptation the CCN performs "due to changes in the reception quality".
func TestRouterReconfigurationMidStream(t *testing.T) {
	p := DefaultParams()
	r := NewRouter(p)
	srcA, srcB := uint8(0xA), uint8(0x5)
	inA := LaneID{Port: West, Lane: 0}
	inB := LaneID{Port: North, Lane: 2}
	out := LaneID{Port: East, Lane: 1}
	other := LaneID{Port: South, Lane: 3}
	r.ConnectIn(p.Global(inA), &srcA)
	r.ConnectIn(p.Global(inB), &srcB)
	if err := r.Configure(Circuit{In: inA, Out: out}); err != nil {
		t.Fatal(err)
	}
	if err := r.Configure(Circuit{In: inA, Out: other}); err != nil {
		t.Fatal(err)
	}
	step(r)
	step(r)
	if r.Out[p.Global(out)] != 0xA {
		t.Fatal("initial circuit broken")
	}
	// Re-point `out` to source B; `other` keeps A.
	if err := r.Configure(Circuit{In: inB, Out: out}); err != nil {
		t.Fatal(err)
	}
	step(r) // write commits; data path still old this edge
	step(r) // first edge with new select
	if r.Out[p.Global(out)] != 0x5 {
		t.Fatalf("reconfigured lane = %#x, want 0x5", r.Out[p.Global(out)])
	}
	if r.Out[p.Global(other)] != 0xA {
		t.Fatalf("unrelated lane glitched: %#x", r.Out[p.Global(other)])
	}
}
