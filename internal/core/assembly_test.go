package core

import (
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stdcell"
)

// pair builds two assemblies A→B connected East(A)↔West(B), with a circuit
// from A's tile lane 0 to B's tile lane 0 — the smallest full network:
// converter, router, link, router, converter.
func pair(t *testing.T) (a, b *Assembly, w *sim.World) {
	t.Helper()
	p := DefaultParams()
	opt := DefaultAssemblyOptions()
	a, b = NewAssembly(p, opt), NewAssembly(p, opt)
	// Wire all East(A) → West(B) lanes and the reverse acks, and the
	// symmetric West(B) → East(A) direction.
	for l := 0; l < p.LanesPerPort; l++ {
		ae := p.Global(LaneID{Port: East, Lane: l})
		bw := p.Global(LaneID{Port: West, Lane: l})
		b.R.ConnectIn(bw, &a.R.Out[ae])
		a.R.ConnectAckIn(ae, &b.R.AckOut[bw])
		a.R.ConnectIn(ae, &b.R.Out[bw])
		b.R.ConnectAckIn(bw, &a.R.AckOut[ae])
	}
	if err := a.EstablishLocal(Circuit{In: LaneID{Port: Tile, Lane: 0}, Out: LaneID{Port: East, Lane: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := b.EstablishLocal(Circuit{In: LaneID{Port: West, Lane: 0}, Out: LaneID{Port: Tile, Lane: 0}}); err != nil {
		t.Fatal(err)
	}
	w = sim.NewWorld()
	w.Add(a, b)
	w.Step() // configuration edge
	return a, b, w
}

func TestEndToEndTileToTile(t *testing.T) {
	a, b, w := pair(t)
	const total = 50
	var got []Word
	pushed := 0
	w.Add(&sim.Func{OnEval: func() {
		if pushed < total && a.Tx[0].Ready() {
			if a.Tx[0].Push(DataWord(uint16(pushed * 3))) {
				pushed++
			}
		}
		if wd, ok := b.Rx[0].Pop(); ok {
			got = append(got, wd)
		}
	}})
	if !w.RunUntil(func() bool { return len(got) == total }, 5000) {
		t.Fatalf("received %d/%d words", len(got), total)
	}
	for i, wd := range got {
		if wd.Data != uint16(i*3) {
			t.Fatalf("word %d = %v, out of order", i, wd)
		}
	}
	if b.Rx[0].Dropped() != 0 {
		t.Fatalf("dropped %d", b.Rx[0].Dropped())
	}
	if a.Tx[0].WindowViolations() != 0 {
		t.Fatal("window violations across two-router circuit")
	}
}

func TestEndToEndFlowControlAcrossRouters(t *testing.T) {
	// A slow consumer at B must throttle the source at A through the
	// registered ack path across both routers, with zero drops.
	a, b, w := pair(t)
	pushed, consumed, cycle := 0, 0, 0
	w.Add(&sim.Func{OnEval: func() {
		if a.Tx[0].Ready() {
			if a.Tx[0].Push(DataWord(uint16(pushed))) {
				pushed++
			}
		}
		if cycle%23 == 0 { // much slower than the 5-cycle line rate
			if _, ok := b.Rx[0].Pop(); ok {
				consumed++
			}
		}
		cycle++
	}})
	w.Run(3000)
	if b.Rx[0].Dropped() != 0 {
		t.Fatalf("flow control failed: %d drops", b.Rx[0].Dropped())
	}
	if consumed < 100 {
		t.Fatalf("consumer starved: %d words", consumed)
	}
	// The source must have been throttled well below line rate.
	if a.Tx[0].Stalled() == 0 {
		t.Fatal("source never stalled despite slow consumer")
	}
}

func TestAssemblyPowerUngatedOffset(t *testing.T) {
	// The paper's key power observation: without clock gating the dynamic
	// power has a high offset — an idle router (Scenario I) consumes
	// almost as much dynamic power as a loaded one.
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	run := func(load bool) power.Breakdown {
		a := NewAssembly(p, DefaultAssemblyOptions())
		m := power.NewMeter(d, lib, 25)
		a.BindMeter(m, lib, false)
		w := sim.NewWorld()
		w.Add(a)
		if load {
			if err := a.EstablishLocal(Circuit{
				In:  LaneID{Port: Tile, Lane: 0},
				Out: LaneID{Port: East, Lane: 0},
			}); err != nil {
				t.Fatal(err)
			}
			n := 0
			w.Add(&sim.Func{OnEval: func() {
				if a.Tx[0].Ready() {
					if a.Tx[0].Push(DataWord(uint16(n * 0x1111))) {
						n++
					}
				}
			}})
		}
		w.Run(2000)
		return m.Report("x")
	}
	idle, loaded := run(false), run(true)
	if loaded.DynamicUW() <= idle.DynamicUW() {
		t.Fatal("load did not increase dynamic power at all")
	}
	// Offset domination: idle dynamic power is at least 60% of loaded.
	if ratio := idle.DynamicUW() / loaded.DynamicUW(); ratio < 0.6 {
		t.Fatalf("dynamic offset ratio %.2f, expected offset-dominated (>0.6)", ratio)
	}
}

func TestAssemblyClockGatingRemovesOffset(t *testing.T) {
	// With configuration-driven clock gating (the paper's future work),
	// the idle router's dynamic power drops dramatically.
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	run := func(gated bool) power.Breakdown {
		a := NewAssembly(p, DefaultAssemblyOptions())
		m := power.NewMeter(d, lib, 25)
		a.BindMeter(m, lib, gated)
		w := sim.NewWorld()
		w.Add(a)
		w.Run(1000)
		return m.Report("idle")
	}
	ungated, gated := run(false), run(true)
	if gated.DynamicUW() >= ungated.DynamicUW()/3 {
		t.Fatalf("gating saved too little: %.1f vs %.1f µW",
			gated.DynamicUW(), ungated.DynamicUW())
	}
	if gated.StaticUW != ungated.StaticUW {
		t.Fatal("gating must not change static power")
	}
}

func TestAssemblyGatedTickNeverExceedsBudget(t *testing.T) {
	// Even with every lane enabled, the gated clock energy must stay
	// within the meter's ungated budget (TickGated panics otherwise).
	p := DefaultParams()
	lib := stdcell.Default013()
	a := NewAssembly(p, DefaultAssemblyOptions())
	m := power.NewMeter(Netlist(p, lib), lib, 25)
	a.BindMeter(m, lib, true)
	// Enable every output lane and every converter.
	for g := 0; g < p.TotalLanes(); g++ {
		out := p.LaneOf(g)
		inPort := North
		if out.Port == North {
			inPort = South
		}
		if err := a.EstablishLocal(Circuit{
			In:  LaneID{Port: inPort, Lane: out.Lane},
			Out: out,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tx := range a.Tx {
		tx.Enabled = true
	}
	for _, rx := range a.Rx {
		rx.Enabled = true
	}
	w := sim.NewWorld()
	w.Add(a)
	w.Run(10) // panics if the census contract is broken
	if m.Cycles() != 10 {
		t.Fatalf("cycles = %d", m.Cycles())
	}
}

func TestLinkBandwidthMatchesTable4(t *testing.T) {
	p := DefaultParams()
	// Table 4: 16 bit × 1075 MHz = 17.2 Gb/s per link direction.
	if got := LinkBandwidthGbps(p, 1075); got < 17.1 || got > 17.3 {
		t.Fatalf("link bandwidth at 1075 MHz = %.2f Gb/s, want 17.2", got)
	}
	// Section 7.2: 80 Mbit/s per stream at 25 MHz.
	if got := LaneDataRateMbps(p, 25); got != 80 {
		t.Fatalf("lane data rate at 25 MHz = %v Mbit/s, want 80", got)
	}
}

func TestNetlistBlocksMatchTable4Rows(t *testing.T) {
	p := DefaultParams()
	lib := stdcell.Default013()
	d := Netlist(p, lib)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{BlockCrossbar, BlockConfiguration, BlockDataConverter} {
		if _, ok := d.Block(name); !ok {
			t.Errorf("netlist missing Table 4 block %q", name)
		}
	}
	// The paper's headline synthesis results: total ≈ 0.0506 mm² and
	// fmax ≈ 1075 MHz. The calibrated model must land in the right
	// neighbourhood (±25%).
	area := d.AreaMM2(lib)
	if area < 0.0506*0.75 || area > 0.0506*1.25 {
		t.Errorf("CS router area = %.4f mm², paper 0.0506 (±25%%)", area)
	}
	f := d.MaxFreqMHz(lib)
	if f < 1075*0.75 || f > 1075*1.25 {
		t.Errorf("CS router fmax = %.0f MHz, paper 1075 (±25%%)", f)
	}
}
