package core

import (
	"testing"
	"testing/quick"
)

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"total lanes", p.TotalLanes(), 20},
		{"foreign lanes (crossbar inputs)", p.ForeignLanes(), 16},
		{"packet nibbles", p.PacketNibbles(), 5},
		{"packet bits", p.PacketBits(), 20},
		{"select bits", p.SelBits(), 4},
		{"config bits per lane", p.ConfigBitsPerLane(), 5},
		{"config memory bits", p.ConfigBits(), 100},
		{"config command bits", p.ConfigWordBits(), 10},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (paper Section 5.1)", c.name, c.got, c.want)
		}
	}
}

func TestParamsValidateRejects(t *testing.T) {
	bad := []Params{
		{Ports: 1, LanesPerPort: 4, LaneWidth: 4, TileWidth: 16},
		{Ports: 5, LanesPerPort: 0, LaneWidth: 4, TileWidth: 16},
		{Ports: 5, LanesPerPort: 4, LaneWidth: 0, TileWidth: 16},
		{Ports: 5, LanesPerPort: 4, LaneWidth: 17, TileWidth: 16},
		{Ports: 5, LanesPerPort: 4, LaneWidth: 4, TileWidth: 0},
		{Ports: 5, LanesPerPort: 4, LaneWidth: 4, TileWidth: 33},
		{Ports: 5, LanesPerPort: 4, LaneWidth: 3, TileWidth: 16}, // not divisible
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestPortNames(t *testing.T) {
	want := map[Port]string{Tile: "Tile", North: "North", East: "East", South: "South", West: "West"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Port(%d) = %q, want %q", int(p), p.String(), s)
		}
	}
	if Port(9).String() == "" {
		t.Error("unknown port should render")
	}
}

func TestPortOpposite(t *testing.T) {
	pairs := map[Port]Port{North: South, South: North, East: West, West: East}
	for p, o := range pairs {
		if p.Opposite() != o {
			t.Errorf("%v.Opposite() = %v, want %v", p, p.Opposite(), o)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Tile.Opposite() should panic")
		}
	}()
	Tile.Opposite()
}

func TestGlobalLaneRoundTrip(t *testing.T) {
	p := DefaultParams()
	for g := 0; g < p.TotalLanes(); g++ {
		l := p.LaneOf(g)
		if p.Global(l) != g {
			t.Errorf("Global(LaneOf(%d)) = %d", g, p.Global(l))
		}
	}
	if g := p.Global(LaneID{Port: East, Lane: 2}); g != int(East)*4+2 {
		t.Fatalf("East.2 global = %d", g)
	}
}

func TestGlobalPanics(t *testing.T) {
	p := DefaultParams()
	for _, l := range []LaneID{{Port: Port(5), Lane: 0}, {Port: Tile, Lane: 4}, {Port: Tile, Lane: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Global(%v) should panic", l)
				}
			}()
			p.Global(l)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("LaneOf(20) should panic")
		}
	}()
	p.LaneOf(20)
}

func TestRelIndexRoundTrip(t *testing.T) {
	p := DefaultParams()
	for outP := 0; outP < p.Ports; outP++ {
		for inG := 0; inG < p.TotalLanes(); inG++ {
			in := p.LaneOf(inG)
			rel, err := p.RelIndex(Port(outP), in)
			if in.Port == Port(outP) {
				if err == nil {
					t.Errorf("RelIndex(%v, %v) should reject same port", Port(outP), in)
				}
				continue
			}
			if err != nil {
				t.Fatalf("RelIndex(%v, %v): %v", Port(outP), in, err)
			}
			if rel < 0 || rel >= p.ForeignLanes() {
				t.Fatalf("rel %d out of range", rel)
			}
			if got := p.InputLane(Port(outP), rel); got != inG {
				t.Errorf("InputLane(%v, %d) = %d, want %d", Port(outP), rel, got, inG)
			}
		}
	}
}

func TestRelIndexBijectionProperty(t *testing.T) {
	// For every output port, the 16 relative indices map to 16 distinct
	// foreign lanes — the crossbar is fully connected and non-aliasing.
	p := DefaultParams()
	for outP := 0; outP < p.Ports; outP++ {
		seen := map[int]bool{}
		for rel := 0; rel < p.ForeignLanes(); rel++ {
			g := p.InputLane(Port(outP), rel)
			if seen[g] {
				t.Fatalf("port %v: input lane %d selected twice", Port(outP), g)
			}
			seen[g] = true
			if p.LaneOf(g).Port == Port(outP) {
				t.Fatalf("port %v: rel %d maps to own port", Port(outP), rel)
			}
		}
	}
}

func TestInputLanePanics(t *testing.T) {
	p := DefaultParams()
	for _, rel := range []int{-1, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("InputLane(rel=%d) should panic", rel)
				}
			}()
			p.InputLane(Tile, rel)
		}()
	}
}

func TestNonDefaultGeometry(t *testing.T) {
	// Lane count/width are design-time parameters (Section 5.1); the
	// indexing must hold for other geometries too.
	p := Params{Ports: 5, LanesPerPort: 8, LaneWidth: 2, TileWidth: 16}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalLanes() != 40 || p.ForeignLanes() != 32 {
		t.Fatalf("geometry wrong: %d/%d", p.TotalLanes(), p.ForeignLanes())
	}
	if p.PacketNibbles() != 10 { // (4 header + 16 data) bits over 2-bit lanes
		t.Fatalf("packet nibbles = %d, want 10", p.PacketNibbles())
	}
	f := func(gRaw uint8) bool {
		g := int(gRaw) % p.TotalLanes()
		return p.Global(p.LaneOf(g)) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
